package lsl_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"lsl"
)

// TestPublicAPIEndToEnd drives the whole public surface: a depot, a
// target, a digested session through the cascade.
func TestPublicAPIEndToEnd(t *testing.T) {
	ln, err := lsl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan []byte, 1)
	go func() {
		sc, err := ln.Accept()
		if err != nil {
			return
		}
		defer sc.Close()
		data, err := io.ReadAll(sc)
		if err == nil && sc.Verified() {
			got <- data
		}
	}()

	dln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d := lsl.NewDepot(lsl.DepotConfig{})
	go d.Serve(dln)
	defer d.Close()

	payload := bytes.Repeat([]byte("logistical"), 20000)
	c, err := lsl.Dial(context.Background(),
		lsl.Route{Via: []string{dln.Addr().String()}, Target: ln.Addr().String()},
		lsl.WithDigest(), lsl.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-got:
		if !bytes.Equal(data, payload) {
			t.Fatal("payload mismatch")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timeout")
	}
	if d.Stats().Accepted != 1 {
		t.Fatal("depot did not carry the session")
	}
}

// TestPublicTransferAPI drives the self-healing surface end to end: a
// clean transfer through a depot, then one against a dead route that must
// classify, retry, and exhaust — all via the re-exported names.
func TestPublicTransferAPI(t *testing.T) {
	ln, err := lsl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan []byte, 1)
	go func() {
		for {
			sc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer sc.Close()
				data, err := io.ReadAll(sc)
				if err == nil && sc.Verified() {
					got <- data
				}
			}()
		}
	}()

	dln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d := lsl.NewDepot(lsl.DepotConfig{})
	go d.Serve(dln)
	defer d.Close()

	reg := lsl.NewMetricsRegistry()
	met := lsl.NewTransferMetrics(reg)
	payload := bytes.Repeat([]byte("heal"), 25000)
	res, err := lsl.Transfer(context.Background(),
		lsl.Route{Via: []string{dln.Addr().String()}, Target: ln.Addr().String()},
		bytes.NewReader(payload), int64(len(payload)),
		lsl.WithTransferMetrics(met))
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 1 || res.Retries != 0 {
		t.Fatalf("clean path took %d attempts, %d retries", res.Attempts, res.Retries)
	}
	select {
	case data := <-got:
		if !bytes.Equal(data, payload) {
			t.Fatal("payload mismatch")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timeout")
	}

	// A dead world exhausts the budget with a classified error.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	_, err = lsl.Transfer(context.Background(),
		lsl.Route{Target: deadAddr}, bytes.NewReader(payload), int64(len(payload)),
		lsl.WithTransferMetrics(met),
		lsl.WithTransferPolicy(lsl.TransferPolicy{
			MaxAttempts: 2,
			Backoff:     lsl.BackoffPolicy{Base: time.Millisecond, Max: 5 * time.Millisecond},
		}))
	if err == nil {
		t.Fatal("transfer to a dead target succeeded")
	}
	if !errors.Is(err, lsl.ErrTransferExhausted) {
		t.Fatalf("err = %v, want ErrTransferExhausted", err)
	}
	if lsl.TransferPermanent(err) {
		t.Fatal("an exhausted transient error must not classify as permanent")
	}
	if met.Retries.Value() != 1 {
		t.Fatalf("retries counter = %d, want 1", met.Retries.Value())
	}
}

// TestPublicSimAPI builds a custom two-hop cascade with the exported
// simulator types and checks conservation.
func TestPublicSimAPI(t *testing.T) {
	e := lsl.NewSimEngine(1)
	const msec = 1_000_000 // SimTime is nanoseconds
	f1 := lsl.NewSimLink(e, "f1", 1e8, 5*msec, 0, 0)
	r1 := lsl.NewSimLink(e, "r1", 0, 5*msec, 0, 0)
	f2 := lsl.NewSimLink(e, "f2", 1e8, 5*msec, 0, 0)
	r2 := lsl.NewSimLink(e, "r2", 0, 5*msec, 0, 0)
	hops := []lsl.SimHop{
		{Fwd: lsl.NewSimPath(e, f1), Rev: lsl.NewSimPath(e, r1), TCP: lsl.DefaultTCPConfig()},
		{Fwd: lsl.NewSimPath(e, f2), Rev: lsl.NewSimPath(e, r2), TCP: lsl.DefaultTCPConfig()},
	}
	res := lsl.RunSimCascade(e, hops, lsl.DefaultSessionConfig(), 1<<20)
	if res.Bytes != 1<<20 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
	if res.Mbps() <= 0 {
		t.Fatal("no throughput")
	}
}

// TestPublicScenarioAndFigures exercises the experiment surface.
func TestPublicScenarioAndFigures(t *testing.T) {
	if len(lsl.Scenarios()) != 4 {
		t.Fatal("want 4 scenarios")
	}
	if len(lsl.AllFigures()) != 27 {
		t.Fatal("want 27 figures")
	}
	spec, err := lsl.FigureByID("fig29")
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		return
	}
	spec.Sizes = spec.Sizes[:2]
	data, err := lsl.RunFigure(spec, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Rows) != 2 {
		t.Fatalf("rows=%d", len(data.Rows))
	}
}

// TestPublicPlanning exercises the route/forecast surface.
func TestPublicPlanning(t *testing.T) {
	g := lsl.NewGraph()
	g.AddNode(lsl.GraphNode{ID: "a"})
	g.AddNode(lsl.GraphNode{ID: "mid", Depot: true})
	g.AddNode(lsl.GraphNode{ID: "b"})
	g.AddDuplex("a", "mid", lsl.LinkMetrics{RTTSeconds: 0.03, BandwidthBps: 1e8, LossProb: 2e-4})
	g.AddDuplex("mid", "b", lsl.LinkMetrics{RTTSeconds: 0.03, BandwidthBps: 1e8, LossProb: 2e-4})
	plan, err := g.PlanTransfer("a", "b", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.UsesDepots() {
		t.Fatal("large lossy transfer should cascade")
	}

	s := lsl.NewForecastSeries("bw")
	for i := 0; i < 20; i++ {
		s.Observe(10)
	}
	if f := s.Forecast(); f < 9.9 || f > 10.1 {
		t.Fatalf("forecast=%v", f)
	}

	if got := lsl.MathisThroughputBps(1460, 0.064, 3e-4); got < 10e6 || got > 16e6 {
		t.Fatalf("mathis=%v", got)
	}
}

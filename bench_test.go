package lsl_test

// One benchmark per data figure of the paper's evaluation (Figures 3-29),
// plus ablation benchmarks for the design choices called out in DESIGN.md.
// Each figure bench regenerates the figure's data series at a reduced
// iteration count (cmd/lslbench reproduces them at full depth) and reports
// the headline numbers as custom metrics, so `go test -bench=.` doubles as
// the reproduction harness's smoke run.

import (
	"fmt"
	"strconv"
	"testing"

	"lsl"
)

const benchSeed = 42

// benchFigure regenerates figure id with the given iteration count and
// reports summary metrics.
func benchFigure(b *testing.B, id string, iters int) {
	b.Helper()
	spec, err := lsl.FigureByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var data lsl.FigureData
	for i := 0; i < b.N; i++ {
		data, err = lsl.RunFigure(spec, iters, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, data)
}

func reportFigure(b *testing.B, data lsl.FigureData) {
	b.Helper()
	switch data.Spec.Kind {
	case "rtt":
		for _, row := range data.Rows {
			v, _ := strconv.ParseFloat(row[1], 64)
			b.ReportMetric(v, metricName(row[0])+"_ms")
		}
	case "sweep":
		// Report the largest size's throughputs and the mean improvement.
		if n := len(data.Rows); n > 0 {
			last := data.Rows[n-1]
			d, _ := strconv.ParseFloat(last[1], 64)
			l, _ := strconv.ParseFloat(last[3], 64)
			b.ReportMetric(d, "direct_mbps")
			b.ReportMetric(l, "lsl_mbps")
			if d > 0 {
				b.ReportMetric((l/d-1)*100, "improvement_pct")
			}
		}
	case "seq":
		for _, row := range data.Rows {
			if len(row) >= 2 {
				v, _ := strconv.ParseFloat(row[1], 64)
				b.ReportMetric(v, metricName(row[0])+"_s")
			}
		}
	}
}

func metricName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ' || r == '-':
			out = append(out, '_')
		}
	}
	return string(out)
}

// ---- RTT bar charts ----

func BenchmarkFig03RTTCase1(b *testing.B) { benchFigure(b, "fig03", 2) }
func BenchmarkFig04RTTCase2(b *testing.B) { benchFigure(b, "fig04", 2) }
func BenchmarkFig09RTTCase3(b *testing.B) { benchFigure(b, "fig09", 2) }

// ---- bandwidth sweeps ----

func BenchmarkFig05SmallSweepCase1(b *testing.B) { benchFigure(b, "fig05", 3) }
func BenchmarkFig06LargeSweepCase1(b *testing.B) { benchFigure(b, "fig06", 2) }
func BenchmarkFig07SmallSweepCase2(b *testing.B) { benchFigure(b, "fig07", 3) }
func BenchmarkFig08LargeSweepCase2(b *testing.B) { benchFigure(b, "fig08", 1) }
func BenchmarkFig10WirelessSweep(b *testing.B)   { benchFigure(b, "fig10", 1) }
func BenchmarkFig28OSULargeSweep(b *testing.B)   { benchFigure(b, "fig28", 1) }
func BenchmarkFig29OSUSmallSweep(b *testing.B)   { benchFigure(b, "fig29", 3) }

// ---- sequence-number growth traces ----

func BenchmarkFig11SeqDirect64M(b *testing.B)     { benchFigure(b, "fig11", 3) }
func BenchmarkFig12SeqSub164M(b *testing.B)       { benchFigure(b, "fig12", 3) }
func BenchmarkFig13SeqSub264M(b *testing.B)       { benchFigure(b, "fig13", 3) }
func BenchmarkFig14SeqAvg64M(b *testing.B)        { benchFigure(b, "fig14", 3) }
func BenchmarkFig15Seq4MNoLoss(b *testing.B)      { benchFigure(b, "fig15", 5) }
func BenchmarkFig16Seq4MMedianLoss(b *testing.B)  { benchFigure(b, "fig16", 5) }
func BenchmarkFig17Seq4MMaxLoss(b *testing.B)     { benchFigure(b, "fig17", 5) }
func BenchmarkFig18Seq4MAvg(b *testing.B)         { benchFigure(b, "fig18", 5) }
func BenchmarkFig19Seq16MMinLoss(b *testing.B)    { benchFigure(b, "fig19", 3) }
func BenchmarkFig20Seq16MMedianLoss(b *testing.B) { benchFigure(b, "fig20", 3) }
func BenchmarkFig21Seq16MMaxLoss(b *testing.B)    { benchFigure(b, "fig21", 3) }
func BenchmarkFig22Seq16MAvg(b *testing.B)        { benchFigure(b, "fig22", 3) }
func BenchmarkFig23Seq64MMinLoss(b *testing.B)    { benchFigure(b, "fig23", 3) }
func BenchmarkFig24Seq64MMedianLoss(b *testing.B) { benchFigure(b, "fig24", 3) }
func BenchmarkFig25Seq64MMaxLoss(b *testing.B)    { benchFigure(b, "fig25", 3) }
func BenchmarkFig26Seq32MCase2(b *testing.B)      { benchFigure(b, "fig26", 2) }
func BenchmarkFig27SeqWireless(b *testing.B)      { benchFigure(b, "fig27", 1) }

// ---- ablation benchmarks (design choices from DESIGN.md §5) ----

// evenCascade builds a topology whose end-to-end path has the given total
// one-way propagation delay and loss, split evenly into n hops.
func evenCascade(seed int64, n int, totalOneWay lsl.SimTime, rate float64, lossTotal float64) (*lsl.SimEngine, []lsl.SimHop, *lsl.SimPath, *lsl.SimPath) {
	e := lsl.NewSimEngine(seed)
	cfg := lsl.DefaultTCPConfig()
	cfg.InitialSSThresh = 128 << 10
	perHopDelay := totalOneWay / lsl.SimTime(n)
	perHopLoss := lossTotal / float64(n)
	var hops []lsl.SimHop
	var fwdLinks, revLinks []*lsl.SimLink
	for i := 0; i < n; i++ {
		f := lsl.NewSimLink(e, fmt.Sprintf("f%d", i), rate, perHopDelay, 4<<20, perHopLoss)
		r := lsl.NewSimLink(e, fmt.Sprintf("r%d", i), 0, perHopDelay, 0, perHopLoss)
		fwdLinks = append(fwdLinks, f)
		revLinks = append(revLinks, r)
		hops = append(hops, lsl.SimHop{
			Fwd: lsl.NewSimPath(e, f), Rev: lsl.NewSimPath(e, r), TCP: cfg,
		})
	}
	rev := make([]*lsl.SimLink, n)
	for i := range revLinks {
		rev[n-1-i] = revLinks[i]
	}
	return e, hops, lsl.NewSimPath(e, fwdLinks...), lsl.NewSimPath(e, rev...)
}

// BenchmarkAblationDepotBuffer varies the depot forwarding buffer: the
// paper's claim is that small, short-lived buffers suffice.
func BenchmarkAblationDepotBuffer(b *testing.B) {
	for _, capBytes := range []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20} {
		b.Run(fmt.Sprintf("cap=%dK", capBytes>>10), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				e, hops, _, _ := evenCascade(benchSeed, 2, 30_000_000, 1e8, 4e-4)
				sess := lsl.DefaultSessionConfig()
				sess.Depot.BufferCap = capBytes
				mbps = lsl.RunSimCascade(e, hops, sess, 16<<20).Mbps()
			}
			b.ReportMetric(mbps, "lsl_mbps")
		})
	}
}

// BenchmarkAblationDepotCount splits a fixed path into 1-4 hops.
func BenchmarkAblationDepotCount(b *testing.B) {
	for _, n := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("hops=%d", n), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				e, hops, _, _ := evenCascade(benchSeed, n, 32_000_000, 1e8, 4e-4)
				mbps = lsl.RunSimCascade(e, hops, lsl.DefaultSessionConfig(), 16<<20).Mbps()
			}
			b.ReportMetric(mbps, "lsl_mbps")
		})
	}
}

// BenchmarkAblationDepotPlacement varies where on the path the single
// depot sits (fraction of the one-way delay before it).
func BenchmarkAblationDepotPlacement(b *testing.B) {
	for _, frac := range []float64{0.2, 0.5, 0.8} {
		b.Run(fmt.Sprintf("split=%.1f", frac), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				e := lsl.NewSimEngine(benchSeed)
				cfg := lsl.DefaultTCPConfig()
				cfg.InitialSSThresh = 128 << 10
				total := lsl.SimTime(32_000_000)
				d1 := lsl.SimTime(float64(total) * frac)
				d2 := total - d1
				mk := func(name string, d lsl.SimTime) (*lsl.SimLink, *lsl.SimLink) {
					return lsl.NewSimLink(e, name+".f", 1e8, d, 4<<20, 2e-4),
						lsl.NewSimLink(e, name+".r", 0, d, 0, 2e-4)
				}
				f1, r1 := mk("a", d1)
				f2, r2 := mk("b", d2)
				hops := []lsl.SimHop{
					{Fwd: lsl.NewSimPath(e, f1), Rev: lsl.NewSimPath(e, r1), TCP: cfg},
					{Fwd: lsl.NewSimPath(e, f2), Rev: lsl.NewSimPath(e, r2), TCP: cfg},
				}
				mbps = lsl.RunSimCascade(e, hops, lsl.DefaultSessionConfig(), 16<<20).Mbps()
			}
			b.ReportMetric(mbps, "lsl_mbps")
		})
	}
}

// BenchmarkAblationTCPKnobs toggles delayed ACKs, initial window and SACK.
func BenchmarkAblationTCPKnobs(b *testing.B) {
	cases := []struct {
		name string
		mut  func(*lsl.TCPConfig)
	}{
		{"baseline", func(c *lsl.TCPConfig) {}},
		{"no-delack", func(c *lsl.TCPConfig) { c.DelayedAcks = false }},
		{"iw4", func(c *lsl.TCPConfig) { c.InitialCwndSegments = 4 }},
		{"no-sack", func(c *lsl.TCPConfig) { c.DisableSACK = true }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				e, hops, _, _ := evenCascade(benchSeed, 2, 30_000_000, 1e8, 4e-4)
				for j := range hops {
					tc.mut(&hops[j].TCP)
					hops[j].TCP.InitialSSThresh = 128 << 10
				}
				mbps = lsl.RunSimCascade(e, hops, lsl.DefaultSessionConfig(), 16<<20).Mbps()
			}
			b.ReportMetric(mbps, "lsl_mbps")
		})
	}
}

// BenchmarkAblationSmallBuffers reproduces the paper's §IV-A remark that
// LSL's gains are more profound when end hosts have limited socket
// buffers (lightweight mobile devices): direct TCP is window-starved by
// the full-path BDP while each sublink only needs half.
func BenchmarkAblationSmallBuffers(b *testing.B) {
	for _, buf := range []int{64 << 10, 256 << 10, 8 << 20} {
		b.Run(fmt.Sprintf("buf=%dK", buf>>10), func(b *testing.B) {
			var direct, cascade float64
			for i := 0; i < b.N; i++ {
				e, hops, df, dr := evenCascade(benchSeed, 2, 30_000_000, 1e8, 0)
				cfg := hops[0].TCP
				cfg.SendBuf = buf
				cfg.RecvBuf = buf
				direct = lsl.RunSimDirect(e, df, dr, cfg, 16<<20).Mbps()
				e2, hops2, _, _ := evenCascade(benchSeed, 2, 30_000_000, 1e8, 0)
				for j := range hops2 {
					hops2[j].TCP.SendBuf = buf
					hops2[j].TCP.RecvBuf = buf
				}
				cascade = lsl.RunSimCascade(e2, hops2, lsl.DefaultSessionConfig(), 16<<20).Mbps()
			}
			b.ReportMetric(direct, "direct_mbps")
			b.ReportMetric(cascade, "lsl_mbps")
			if direct > 0 {
				b.ReportMetric((cascade/direct-1)*100, "improvement_pct")
			}
		})
	}
}

// BenchmarkAblationSetup compares confirmed (synchronous accept) and eager
// session establishment on a small transfer.
func BenchmarkAblationSetup(b *testing.B) {
	for _, eager := range []bool{false, true} {
		name := "confirmed"
		if eager {
			name = "eager"
		}
		b.Run(name, func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				e, hops, _, _ := evenCascade(benchSeed, 2, 30_000_000, 1e8, 0)
				sess := lsl.DefaultSessionConfig()
				sess.ConfirmedSetup = !eager
				mbps = lsl.RunSimCascade(e, hops, sess, 256<<10).Mbps()
			}
			b.ReportMetric(mbps, "lsl_mbps")
		})
	}
}

// ---- microbenchmarks of the real stack ----

// BenchmarkSimulatorEventRate measures raw simulated-transfer throughput
// (events are the simulator's unit of work).
func BenchmarkSimulatorEventRate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, hops, _, _ := evenCascade(int64(i), 2, 10_000_000, 1e8, 1e-4)
		lsl.RunSimCascade(e, hops, lsl.DefaultSessionConfig(), 4<<20)
	}
}

// BenchmarkExtensionParallelStreams compares the PSockets-style baseline
// (N parallel end-to-end connections, paper citation [22]) against the LSL
// cascade on a Case-1-like path: parallelism divides the loss penalty,
// cascading divides the RTT.
func BenchmarkExtensionParallelStreams(b *testing.B) {
	type variant struct {
		name string
		run  func(seed int64) float64
	}
	variants := []variant{
		{"direct-1", func(seed int64) float64 {
			e, _, df, dr := evenCascade(seed, 2, 30_000_000, 1e8, 4e-4)
			return lsl.RunSimDirect(e, df, dr, lsl.DefaultTCPConfig(), 32<<20).Mbps()
		}},
		{"psockets-4", func(seed int64) float64 {
			e, _, df, dr := evenCascade(seed, 2, 30_000_000, 1e8, 4e-4)
			return lsl.RunSimParallel(e, df, dr, lsl.DefaultTCPConfig(), 4, 32<<20).Mbps()
		}},
		{"lsl-cascade", func(seed int64) float64 {
			e, hops, _, _ := evenCascade(seed, 2, 30_000_000, 1e8, 4e-4)
			return lsl.RunSimCascade(e, hops, lsl.DefaultSessionConfig(), 32<<20).Mbps()
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = v.run(benchSeed)
			}
			b.ReportMetric(mbps, "mbps")
		})
	}
}

// BenchmarkHeadline measures the abstract's aggregate claim at reduced
// depth (cmd/lslbench -headline runs it at full depth).
func BenchmarkHeadline(b *testing.B) {
	var res lsl.HeadlineResult
	for i := 0; i < b.N; i++ {
		res = lsl.RunHeadline(1, benchSeed)
	}
	b.ReportMetric(res.Avg*100, "avg_improvement_pct")
	b.ReportMetric(res.Max*100, "max_improvement_pct")
}

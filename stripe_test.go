package lsl_test

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"testing"
	"time"

	"lsl"
	"lsl/internal/faultnet"
)

// TestStripedTransferThroughDepots stripes one logical stream over three
// sessions, each routed through its own depot — parallel TCP streams plus
// multi-path loose source routing in one transfer (paper §VII).
func TestStripedTransferThroughDepots(t *testing.T) {
	ln, err := lsl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const stripes = 3
	routes := make([]lsl.Route, stripes)
	for i := 0; i < stripes; i++ {
		dln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		d := lsl.NewDepot(lsl.DepotConfig{})
		go d.Serve(dln)
		defer d.Close()
		routes[i] = lsl.Route{Via: []string{dln.Addr().String()}, Target: ln.Addr().String()}
	}

	payload := make([]byte, 2<<20)
	rand.New(rand.NewSource(42)).Read(payload)

	type result struct {
		n   int64
		err error
		buf *bytes.Buffer
	}
	got := make(chan result, 1)
	go func() {
		var out bytes.Buffer
		n, err := lsl.StripedReceive(ln, stripes, &out)
		got <- result{n, err, &out}
	}()

	if err := lsl.StripedSend(context.Background(), routes,
		bytes.NewReader(payload), int64(len(payload)), 64<<10); err != nil {
		t.Fatal(err)
	}

	select {
	case r := <-got:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.n != int64(len(payload)) {
			t.Fatalf("received %d", r.n)
		}
		if !bytes.Equal(r.buf.Bytes(), payload) {
			t.Fatal("striped payload mismatch")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("timeout")
	}
}

// A mid-group accept failure must abort the whole group: StripedReceive
// returns the accept error AND tears down the sessions it had already
// attached, instead of leaking their goroutines against a stream that
// can never complete.
func TestStripedReceiveAbortsGroupOnAcceptError(t *testing.T) {
	ln, err := lsl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		n   int64
		err error
	}
	got := make(chan result, 1)
	go func() {
		var out bytes.Buffer
		n, rerr := lsl.StripedReceive(ln, 2, &out)
		got <- result{n, rerr}
	}()

	// First stripe attaches (Dial returning proves its accept completed)…
	c, err := lsl.Dial(context.Background(), lsl.Route{Target: ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// …then the listener dies before the second stripe arrives.
	ln.Close()

	select {
	case r := <-got:
		if r.err == nil {
			t.Fatalf("StripedReceive returned nil error for a half-accepted group (%d bytes)", r.n)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("StripedReceive hung on a mid-group accept error")
	}

	// The already-attached session was cancelled, not leaked: the sender
	// side observes the close instead of blocking forever.
	readDone := make(chan error, 1)
	go func() {
		_, rerr := c.Read(make([]byte, 1))
		readDone <- rerr
	}()
	select {
	case rerr := <-readDone:
		if rerr == nil {
			t.Fatal("attached session still readable after group abort")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("attached session leaked: sender read still blocked after group abort")
	}
}

// The public self-healing striped path: two depot routes, the first
// session through depot A is reset mid-flow, and StripedTransfer +
// StripedReceive still deliver byte-exact with the heal visible in the
// result.
func TestStripedTransferHealsViaPublicAPI(t *testing.T) {
	ln, err := lsl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	depots := make([]string, 2)
	for i := range depots {
		dln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		d := lsl.NewDepot(lsl.DepotConfig{})
		go d.Serve(dln)
		defer d.Close()
		depots[i] = dln.Addr().String()
	}
	routes := []lsl.Route{
		{Via: []string{depots[0]}, Target: ln.Addr().String()},
		{Via: []string{depots[1]}, Target: ln.Addr().String()},
	}

	payload := make([]byte, 2<<20)
	rand.New(rand.NewSource(43)).Read(payload)

	// Pace both first hops so the stripes share the flow, and reset the
	// first session through depot 0 after 200 KB; its redial is clean.
	fn := faultnet.New(nil)
	pace := 500 * time.Microsecond
	fn.Script(depots[0], faultnet.Step{WriteLatency: pace, ResetAfterBytes: 200_000})
	fn.Script(depots[1], faultnet.Step{WriteLatency: pace})

	type result struct {
		n   int64
		err error
		buf *bytes.Buffer
	}
	got := make(chan result, 1)
	go func() {
		var out bytes.Buffer
		n, rerr := lsl.StripedReceive(ln, len(routes), &out)
		got <- result{n, rerr, &out}
	}()

	res, err := lsl.StripedTransfer(context.Background(), routes,
		bytes.NewReader(payload), int64(len(payload)),
		lsl.WithTransferPolicy(lsl.TransferPolicy{
			MaxAttempts: 10,
			Backoff:     lsl.BackoffPolicy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
			JitterSeed:  1,
		}),
		lsl.WithTransferDialer(fn.DialContext),
		lsl.WithStripeFrameSize(32<<10),
		lsl.WithTransferLogf(t.Logf))
	if err != nil {
		t.Fatalf("striped transfer did not heal: %v", err)
	}
	if res.Heals < 1 {
		t.Fatalf("heals=%d, want >= 1", res.Heals)
	}

	select {
	case r := <-got:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.n != int64(len(payload)) || !bytes.Equal(r.buf.Bytes(), payload) {
			t.Fatalf("received %d bytes, mismatch with %d sent", r.n, len(payload))
		}
	case <-time.After(30 * time.Second):
		t.Fatal("timeout waiting for striped receive")
	}
}

func TestStripedSendNeedsRoutes(t *testing.T) {
	if err := lsl.StripedSend(context.Background(), nil, bytes.NewReader(nil), 0, 0); err == nil {
		t.Fatal("no routes accepted")
	}
}

// TestParallelStreamsPublicAPI exercises the simulator's PSockets baseline
// through the facade.
func TestParallelStreamsPublicAPI(t *testing.T) {
	e := lsl.NewSimEngine(1)
	const msec = 1_000_000
	f := lsl.NewSimLink(e, "f", 1e8, 20*msec, 0, 5e-4)
	r := lsl.NewSimLink(e, "r", 0, 20*msec, 0, 0)
	res := lsl.RunSimParallel(e, lsl.NewSimPath(e, f), lsl.NewSimPath(e, r),
		lsl.DefaultTCPConfig(), 4, 8<<20)
	if res.Bytes != 8<<20 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
}

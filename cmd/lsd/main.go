// Command lsd is the Logistical Session Layer depot daemon: an
// unprivileged user-level forwarding process (paper §IV-A). It accepts
// LSL session-open headers, dials the next hop of each session's loose
// source route, and relays bytes in both directions through a small
// bounded buffer.
//
// Usage:
//
//	lsd -listen :5000 [-buffer 262144] [-max-sessions 256] [-v]
//	lsd -listen :5000 -stats 10s     # print counters periodically
//	lsd -listen :5000 -admin :9090   # /metrics /healthz /sessions /debug/pprof
//	lsd -listen :5000 -drain 10s     # bound shutdown: drain, then cancel
//	lsd -listen :5000 -mux           # multiplex sessions over persistent trunks
//	lsd -listen :5000 -sockbuf 4194304  # 4 MiB socket buffers on every sublink
//	lsd -listen :5000 -graph overlay.txt -self denver -admin :9090
//	                                 # feed relay measurements into the live
//	                                 # logistics planner; forecasts at /plan
//	lsd -listen :5000 -graph overlay.txt -self denver \
//	    -gossip-peers chicago:5000,ncsa:5000
//	                                 # share edge forecasts with peer depots
//	                                 # by anti-entropy gossip
//	lsd -listen :5000 -state-dir /var/lib/lsd  # durable custody: staged
//	                                 # payloads journaled to disk, recovered
//	                                 # and redelivered after a restart
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"lsl"
	"lsl/internal/sizeparse"
)

func main() {
	var (
		listen      = flag.String("listen", ":5000", "address to accept LSL sessions on")
		admin       = flag.String("admin", "", "admin HTTP address for /metrics, /healthz, /sessions, /debug/pprof (empty = disabled)")
		buffer      = flag.Int("buffer", 256<<10, "per-direction relay buffer in bytes")
		maxSessions = flag.Int("max-sessions", 256, "concurrent session admission limit")
		drain       = flag.Duration("drain", 30*time.Second, "shutdown drain: in-flight sessions get this long before being cancelled (<0 = unbounded)")
		recent      = flag.Int("recent-sessions", 64, "finished sessions kept for /sessions")
		statsEvery  = flag.Duration("stats", 0, "print counters at this interval (0 = off)")
		dialTO      = flag.Duration("dial-timeout", 0, "next-hop connection establishment timeout (0 = default 10s)")
		stageRetry  = flag.Duration("stage-retry", 0, "staged redelivery backoff base (0 = default 2s)")
		stageRetMax = flag.Duration("stage-retry-max", 0, "staged redelivery backoff cap (0 = default 30s)")
		muxOn       = flag.Bool("mux", false, "multiplex sessions over persistent trunks: pool links to next hops and accept trunk links from upstream peers (non-mux peers still interoperate)")
		linkIdle    = flag.Duration("link-idle", 0, "close a next-hop trunk idle this long (0 = default 60s, <0 = keep forever)")
		linkMax     = flag.Int("link-max-streams", 0, "sessions per trunk before opening another link to the same next hop (0 = default 64)")
		sockBuf     = flag.Int("sockbuf", 0, "SO_SNDBUF/SO_RCVBUF for every accepted and dialed connection in bytes (0 = kernel default; TCP_NODELAY is always set)")
		graphF      = flag.String("graph", "", "overlay graph file (lslplan format): run a live logistics planner fed by this depot's relay measurements")
		selfNode    = flag.String("self", "", "this depot's node name in the -graph overlay")
		gossipPeers = flag.String("gossip-peers", "", "comma-separated peer depot addresses to exchange forecast gossip with (needs -graph/-self)")
		gossipEvery = flag.Duration("gossip-interval", 0, "mean time between gossip rounds (0 = default 5s); actual spacing is jittered")
		stateDir    = flag.String("state-dir", "", "durable state directory: staged payloads are journaled here and recovered after a restart; the logistics planner's forecasts persist here too (empty = in-memory custody only)")
		maxStage    = flag.String("max-stage", "", "largest staged payload accepted per session, e.g. 64M (empty = default 64M)")
		maxStageTot = flag.String("max-stage-total", "", "global custody budget across all staged sessions, e.g. 1G; beyond it new staged sessions are shed (empty = 4x -max-stage)")
		fsyncMode   = flag.String("fsync", "always", "custody journal fsync policy: always (durable across host crashes) or never (OS-buffered)")
		verbose     = flag.Bool("v", false, "log each session")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "lsd ", log.LstdFlags)

	var maxStageBytes, maxStageTotal int64
	if *maxStage != "" {
		n, err := sizeparse.Parse(*maxStage)
		if err != nil {
			logger.Fatalf("-max-stage: %v", err)
		}
		maxStageBytes = n
	}
	if *maxStageTot != "" {
		n, err := sizeparse.Parse(*maxStageTot)
		if err != nil {
			logger.Fatalf("-max-stage-total: %v", err)
		}
		maxStageTotal = n
	}
	fsync, err := lsl.ParseFsync(*fsyncMode)
	if err != nil {
		logger.Fatalf("-fsync: %v", err)
	}

	var journal *lsl.CustodyJournal
	if *stateDir != "" {
		journal, err = lsl.OpenCustody(*stateDir, lsl.CustodyConfig{Fsync: fsync, Logf: logger.Printf})
		if err != nil {
			logger.Fatalf("opening custody journal: %v", err)
		}
		if n := len(journal.Recovered()); n > 0 {
			logger.Printf("custody journal: recovered %d staged session(s), %d bytes", n, journal.LiveBytes())
		}
	}

	var planner *lsl.Planner
	if *graphF != "" {
		if *selfNode == "" {
			logger.Fatal("-graph needs -self (this depot's node name)")
		}
		f, err := os.Open(*graphF)
		if err != nil {
			logger.Fatal(err)
		}
		planner, err = lsl.PlannerFromOverlay(f, lsl.NodeID(*selfNode))
		f.Close()
		if err != nil {
			logger.Fatalf("building planner: %v", err)
		}
	}
	var plannerSnap string
	if planner != nil && *stateDir != "" {
		plannerSnap = filepath.Join(*stateDir, "planner.json")
		switch err := planner.LoadSnapshot(plannerSnap); {
		case err == nil:
			logger.Printf("planner: forecasts warm-started from %s", plannerSnap)
		case os.IsNotExist(err):
			// First boot on this state dir.
		default:
			logger.Printf("planner: ignoring snapshot: %v", err)
		}
	}
	cfg := lsl.DepotConfig{
		BufferSize:         *buffer,
		MaxSessions:        *maxSessions,
		DrainTimeout:       *drain,
		RecentSessions:     *recent,
		DialTimeout:        *dialTO,
		StageRetryInterval: *stageRetry,
		StageRetryMax:      *stageRetMax,
		Mux:                *muxOn,
		LinkIdleTimeout:    *linkIdle,
		LinkMaxStreams:     *linkMax,
		SockSndBuf:         *sockBuf,
		SockRcvBuf:         *sockBuf,
		MaxStageBytes:      maxStageBytes,
		MaxTotalStageBytes: maxStageTotal,
		Custody:            journal,
	}
	if *verbose {
		cfg.Logf = logger.Printf
	}
	// The gossiper is built after the depot (it rides the depot's trunk
	// dialer), but the depot's accept path needs the handler now — a
	// closure over the late-bound pointer breaks the cycle. Until the
	// gossiper exists, inbound LSLG connections are dropped.
	var gossiper *lsl.Gossiper
	if planner != nil {
		cfg.OnSessionEnd = planner.DepotHook()
		if *gossipPeers != "" {
			cfg.OnGossip = func(c net.Conn) {
				if gossiper != nil {
					gossiper.ServeConn(c)
				} else {
					c.Close()
				}
			}
		}
		// /plan keeps the planner view's shape and gains a "gossip"
		// section when gossip is on.
		cfg.PlanView = func() interface{} {
			v := struct {
				lsl.PlannerView
				Gossip *lsl.GossipStatus `json:"gossip,omitempty"`
			}{PlannerView: planner.Snapshot()}
			if gossiper != nil {
				st := gossiper.Status()
				v.Gossip = &st
			}
			return v
		}
	} else if *gossipPeers != "" {
		logger.Fatal("-gossip-peers needs -graph/-self (the planner supplies the observations to share)")
	}
	d := lsl.NewDepot(cfg)
	if planner != nil {
		// Render lsl_logistics_* next to the depot's own families on
		// /metrics.
		planner.SetMetrics(lsl.NewPlannerMetrics(d.Metrics()))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if planner != nil && *gossipPeers != "" {
		peers := strings.Split(*gossipPeers, ",")
		for i := range peers {
			peers[i] = strings.TrimSpace(peers[i])
		}
		g, err := lsl.NewGossiper(lsl.GossipConfig{
			Planner:  planner,
			Peers:    peers,
			Interval: *gossipEvery,
			Dial:     d.Dialer(), // ride warm mux trunks where they exist
			Metrics:  lsl.NewGossipMetrics(d.Metrics()),
			Logf:     logger.Printf,
		})
		if err != nil {
			logger.Fatalf("gossip: %v", err)
		}
		gossiper = g
		go gossiper.Run(ctx)
		logger.Printf("forecast gossip: %d peer(s), interval %s", len(peers), g.Status().Interval)
	}

	if *statsEvery > 0 {
		ticker := time.NewTicker(*statsEvery)
		go func() {
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					s := d.Stats()
					logger.Printf("sessions: active=%d accepted=%d completed=%d rejected(busy=%d route=%d proto=%d) dialfail=%d bytes(fwd=%d back=%d) maxbuf=%d",
						s.Active, s.Accepted, s.Completed, s.RejectedBusy, s.RejectedRoute, s.RejectedProto,
						s.DialFailures, s.BytesForward, s.BytesBackward, s.MaxBuffered)
				}
			}
		}()
	}

	var adminSrv *http.Server
	if *admin != "" {
		adminSrv = &http.Server{Addr: *admin, Handler: lsl.DepotAdminHandler(d)}
		go func() {
			logger.Printf("admin endpoint on %s (/metrics /healthz /sessions /plan /debug/pprof)", *admin)
			if err := adminSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("admin server: %v", err)
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() {
		logger.Printf("depot listening on %s (buffer=%d, max-sessions=%d)", *listen, *buffer, *maxSessions)
		serveErr <- d.ListenAndServe(*listen)
	}()

	select {
	case err := <-serveErr:
		if err != nil {
			logger.Fatalf("serve: %v", err)
		}
	case <-ctx.Done():
		logger.Printf("shutting down")
	}

	d.Close()
	if journal != nil {
		if err := journal.Close(); err != nil {
			logger.Printf("closing custody journal: %v", err)
		}
	}
	if plannerSnap != "" {
		if err := planner.SaveSnapshot(plannerSnap); err != nil {
			logger.Printf("saving planner snapshot: %v", err)
		} else {
			logger.Printf("planner: forecasts saved to %s", plannerSnap)
		}
	}
	if adminSrv != nil {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		adminSrv.Shutdown(shutdownCtx)
		cancel()
	}
}

// Command lsd is the Logistical Session Layer depot daemon: an
// unprivileged user-level forwarding process (paper §IV-A). It accepts
// LSL session-open headers, dials the next hop of each session's loose
// source route, and relays bytes in both directions through a small
// bounded buffer.
//
// Usage:
//
//	lsd -listen :5000 [-buffer 262144] [-max-sessions 256] [-v]
//	lsd -listen :5000 -stats 10s     # print counters periodically
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"lsl"
)

func main() {
	var (
		listen      = flag.String("listen", ":5000", "address to accept LSL sessions on")
		buffer      = flag.Int("buffer", 256<<10, "per-direction relay buffer in bytes")
		maxSessions = flag.Int("max-sessions", 256, "concurrent session admission limit")
		statsEvery  = flag.Duration("stats", 0, "print counters at this interval (0 = off)")
		verbose     = flag.Bool("v", false, "log each session")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "lsd ", log.LstdFlags)
	cfg := lsl.DepotConfig{
		BufferSize:  *buffer,
		MaxSessions: *maxSessions,
	}
	if *verbose {
		cfg.Logf = logger.Printf
	}
	d := lsl.NewDepot(cfg)

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				s := d.Stats()
				logger.Printf("sessions: active=%d accepted=%d completed=%d rejected(busy=%d route=%d proto=%d) bytes(fwd=%d back=%d)",
					s.Active, s.Accepted, s.Completed, s.RejectedBusy, s.RejectedRoute, s.RejectedProto,
					s.BytesForward, s.BytesBackward)
			}
		}()
	}

	logger.Printf("depot listening on %s (buffer=%d, max-sessions=%d)", *listen, *buffer, *maxSessions)
	if err := d.ListenAndServe(*listen); err != nil {
		logger.Fatalf("serve: %v", err)
	}
}

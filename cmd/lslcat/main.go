// Command lslcat is netcat for the Logistical Session Layer.
//
// Receive (session target):
//
//	lslcat -listen :7000 > received.bin
//
// Send stdin through a cascade of depots with end-to-end MD5 verification
// (digest requires -size, or use -file which infers it):
//
//	lslcat -route depot1:5000,depot2:5000 -target server:7000 -file big.iso
//	head -c 10M /dev/urandom | lslcat -target server:7000 -size 10485760
//
// Benchmark mode sends synthetic data and prints the achieved throughput:
//
//	lslcat -route depot:5000 -target server:7000 -bench 64M
//
// Self-healing mode retries transient failures with resume and routes
// around dead depots (needs a seekable source):
//
//	lslcat -route depot1:5000,depot2:5000 -target server:7000 -file big.iso -retries 8
//
// Auto-routing picks the cascade itself: give it an overlay graph (the
// lslplan format) and the local node's name, and the live logistics
// planner ranks candidate routes by forecast completion time, starts on
// the best one, and replans onto the next-best after failures:
//
//	lslcat -graph overlay.txt -from ucsb -auto-route -target server:7000 -file big.iso
//
// Striped mode carries one stream over N concurrent self-healing
// sessions; with -auto-route the planner places them on link-disjoint
// routes weighted by predicted throughput. The listener reassembles one
// group and exits:
//
//	lslcat -listen :7000 -stripes 3 > received.bin
//	lslcat -graph overlay.txt -from ucsb -auto-route -stripes 3 -target server:7000 -file big.iso
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"strings"
	"time"

	"lsl"
	"lsl/internal/sizeparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lslcat: ")
	var (
		listen  = flag.String("listen", "", "accept sessions on this address and copy payload to stdout")
		routeS  = flag.String("route", "", "comma-separated depot addresses (loose source route)")
		target  = flag.String("target", "", "final destination address")
		file    = flag.String("file", "", "send this file (enables digest, sets size)")
		sizeS   = flag.String("size", "", "payload size in bytes when sending from stdin")
		benchS  = flag.String("bench", "", "send this much synthetic data (e.g. 64M) and report throughput")
		eager   = flag.Bool("eager", false, "stream without waiting for the end-to-end accept")
		noDig   = flag.Bool("no-digest", false, "disable the end-to-end MD5 trailer")
		retries = flag.Int("retries", 0, "self-heal transient failures with up to this many re-dials (resume + failover; needs a seekable source: -file or -bench)")
		graphF  = flag.String("graph", "", "overlay graph file (lslplan format) for -auto-route")
		from    = flag.String("from", "", "this host's node name in the -graph overlay")
		autoRt  = flag.Bool("auto-route", false, "let the logistics planner choose and adapt the route (needs -graph and -from; implies the self-healing engine)")
		stripes = flag.Int("stripes", 1, "stripe the stream over this many concurrent self-healing sessions (send needs -file or -bench; listen reassembles one group and exits)")
		sockbuf = flag.String("sockbuf", "", "pin SO_SNDBUF/SO_RCVBUF to this size (e.g. 256K) on striped stripe dials; default keeps the kernel sizing")
		quiet   = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	var planner *lsl.Planner
	if *autoRt {
		if *graphF == "" || *from == "" {
			log.Fatal("-auto-route needs -graph and -from")
		}
		f, err := os.Open(*graphF)
		if err != nil {
			log.Fatal(err)
		}
		planner, err = lsl.PlannerFromOverlay(f, lsl.NodeID(*from))
		f.Close()
		if err != nil {
			log.Fatalf("building planner: %v", err)
		}
	}

	switch {
	case *listen != "" && *stripes > 1:
		runStripedTarget(*listen, *stripes, *quiet)
	case *listen != "":
		runTarget(*listen, *quiet)
	case *target != "":
		runSender(*routeS, *target, *file, *sizeS, *benchS, *sockbuf, *eager, *noDig, *retries, *stripes, *quiet, planner)
	default:
		log.Fatal("need -listen (receive) or -target (send); see -h")
	}
}

// runStripedTarget reassembles one stripe group onto stdout and exits.
func runStripedTarget(addr string, stripes int, quiet bool) {
	ln, err := lsl.Listen(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	if !quiet {
		log.Printf("listening on %s for a %d-stripe group", ln.Addr(), stripes)
	}
	start := time.Now()
	n, err := lsl.StripedReceive(ln, stripes, os.Stdout)
	if err != nil {
		log.Fatalf("striped receive failed after %d bytes: %v", n, err)
	}
	if !quiet {
		el := time.Since(start)
		log.Printf("striped group: %d bytes in %v = %.2f Mbit/s",
			n, el.Round(time.Millisecond), float64(n)*8/el.Seconds()/1e6)
	}
}

func runTarget(addr string, quiet bool) {
	ln, err := lsl.Listen(addr)
	if err != nil {
		log.Fatal(err)
	}
	if !quiet {
		log.Printf("listening on %s", ln.Addr())
	}
	for {
		sc, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		go func() {
			defer sc.Close()
			start := time.Now()
			n, err := io.Copy(os.Stdout, sc)
			el := time.Since(start)
			switch {
			case err != nil:
				log.Printf("session %s failed after %d bytes: %v", sc.SessionID(), n, err)
			case !quiet:
				verified := ""
				if sc.Digesting() && sc.Verified() {
					verified = " (MD5 verified)"
				}
				log.Printf("session %s: %d bytes in %v = %.2f Mbit/s%s",
					sc.SessionID(), n, el.Round(time.Millisecond),
					float64(n)*8/el.Seconds()/1e6, verified)
			}
		}()
	}
}

func runSender(routeS, target, file, sizeS, benchS, sockbuf string, eager, noDigest bool, retries, stripes int, quiet bool, planner *lsl.Planner) {
	route := lsl.Route{Target: target}
	if routeS != "" {
		route.Via = strings.Split(routeS, ",")
	}

	var src io.Reader
	var size int64 = -1
	switch {
	case benchS != "":
		n, err := sizeparse.Parse(benchS)
		if err != nil {
			log.Fatalf("bad -bench: %v", err)
		}
		size = n
		if retries > 0 || stripes > 1 {
			// The resilient engine re-reads the stream from the resume
			// offset (striping re-reads frames on reassignment), so the
			// synthetic payload must be random-access: hold it in memory
			// instead of streaming from the generator.
			buf, err := io.ReadAll(io.LimitReader(rand.New(rand.NewSource(1)), n))
			if err != nil {
				log.Fatal(err)
			}
			src = bytes.NewReader(buf)
		} else {
			src = io.LimitReader(rand.New(rand.NewSource(1)), n)
		}
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		st, err := f.Stat()
		if err != nil {
			log.Fatal(err)
		}
		size = st.Size()
		src = f
	default:
		src = os.Stdin
		if sizeS != "" {
			n, err := sizeparse.Parse(sizeS)
			if err != nil {
				log.Fatalf("bad -size: %v", err)
			}
			size = n
		}
	}

	if stripes > 1 {
		ra, ok := src.(io.ReaderAt)
		if !ok || size < 0 {
			log.Fatal("-stripes needs a sized, random-access source: use -file or -bench, not stdin")
		}
		if eager {
			log.Fatal("-stripes and -eager are mutually exclusive")
		}
		runStriped(route, ra, size, stripes, retries, sockbuf, quiet, planner)
		return
	}

	if retries > 0 || planner != nil {
		rs, ok := src.(io.ReadSeeker)
		if !ok {
			log.Fatal("-retries/-auto-route need a seekable source: use -file or -bench, not stdin")
		}
		if eager {
			log.Fatal("-retries/-auto-route and -eager are mutually exclusive (healing needs the resume handshake)")
		}
		runResilient(route, rs, size, retries, noDigest, quiet, planner)
		return
	}

	opts := []lsl.Option{}
	if size >= 0 {
		opts = append(opts, lsl.WithContentLength(size))
		if !noDigest {
			opts = append(opts, lsl.WithDigest())
		}
	} else if !noDigest && !quiet {
		log.Printf("note: unknown size, digest disabled (use -size or -file)")
	}
	if eager {
		opts = append(opts, lsl.WithEager())
	}

	start := time.Now()
	c, err := lsl.Dial(context.Background(), route, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	setup := time.Since(start)

	n, err := io.Copy(c, src)
	if err != nil {
		log.Fatalf("send: %v", err)
	}
	if err := c.CloseWrite(); err != nil {
		log.Fatal(err)
	}
	el := time.Since(start)
	if !quiet {
		hops := len(route.Via)
		fmt.Fprintf(os.Stderr,
			"lslcat: session %s: %d bytes via %d depot(s) in %v (setup %v) = %.2f Mbit/s\n",
			c.SessionID(), n, hops, el.Round(time.Millisecond), setup.Round(time.Millisecond),
			float64(n)*8/el.Seconds()/1e6)
	}
}

// runStriped sends src over stripes concurrent self-healing sessions.
// With a planner the sessions land on link-disjoint routes weighted by
// predicted throughput; without one, they share the given route.
func runStriped(route lsl.Route, src io.ReaderAt, size int64, stripes, retries int, sockbuf string, quiet bool, planner *lsl.Planner) {
	opts := []lsl.TransferOption{lsl.WithStripes(stripes)}
	if retries > 0 {
		opts = append(opts, lsl.WithTransferPolicy(lsl.TransferPolicy{MaxAttempts: retries + 1}))
	}
	if sockbuf != "" {
		b, err := sizeparse.Parse(sockbuf)
		if err != nil || b <= 0 || b > 1<<30 {
			log.Fatalf("bad -sockbuf %q", sockbuf)
		}
		opts = append(opts, lsl.WithStripeSocketBuffers(int(b), int(b)))
	}
	if planner != nil {
		opts = append(opts, lsl.WithPlanner(planner))
	}
	if !quiet {
		opts = append(opts, lsl.WithTransferLogf(log.Printf))
	}
	start := time.Now()
	res, err := lsl.StripedTransfer(context.Background(), []lsl.Route{route}, src, size, opts...)
	if err != nil {
		log.Fatalf("striped transfer: %v", err)
	}
	if !quiet {
		el := time.Since(start)
		fmt.Fprintf(os.Stderr,
			"lslcat: group %s: %d bytes over %d stripes in %v = %.2f Mbit/s (heals %d, replans %d, abandoned %d, rebalances %d, stolen %d, speculated %d, tail %v)\n",
			res.Group, res.Bytes, res.Stripes, el.Round(time.Millisecond),
			float64(res.Bytes)*8/el.Seconds()/1e6,
			res.Heals, res.Replans, res.Abandoned, res.Rebalances,
			res.FramesStolen, res.FramesSpeculated, res.Tail.Round(time.Millisecond))
		for i, r := range res.Routes {
			log.Printf("stripe %d: %d bytes via %v", i, res.StripeBytes[i], r.Hops())
		}
	}
}

// runResilient sends src through the self-healing transfer engine: every
// transient failure (reset, dead depot, timeout) is retried with resume,
// and a dead first-hop depot is dropped from the route. With a planner,
// the route itself comes from live forecasts and failover goes to the
// next-best predicted candidate instead.
func runResilient(route lsl.Route, src io.ReadSeeker, size int64, retries int, noDigest, quiet bool, planner *lsl.Planner) {
	var opts []lsl.TransferOption
	if retries > 0 {
		opts = append(opts, lsl.WithTransferPolicy(lsl.TransferPolicy{MaxAttempts: retries + 1}))
	}
	if planner != nil {
		opts = append(opts, lsl.WithPlanner(planner))
	}
	if noDigest {
		opts = append(opts, lsl.WithoutTransferDigest())
	}
	if !quiet {
		opts = append(opts, lsl.WithTransferLogf(log.Printf))
	}
	start := time.Now()
	res, err := lsl.Transfer(context.Background(), route, src, size, opts...)
	if err != nil {
		log.Fatalf("transfer: %v", err)
	}
	if !quiet {
		el := time.Since(start)
		fmt.Fprintf(os.Stderr,
			"lslcat: session %s: %d bytes via %d depot(s) in %v = %.2f Mbit/s (attempts %d, failovers %d)\n",
			res.Session, res.Bytes, len(res.Route.Via), el.Round(time.Millisecond),
			float64(res.Bytes)*8/el.Seconds()/1e6, res.Attempts, res.Failovers)
	}
}

// Command lslplan demonstrates the logistics decision: given a depot
// overlay graph with measured link performance, rank candidate session
// routes for a transfer by predicted completion time.
//
// The graph is described one edge per line on stdin or in -graph FILE:
//
//	# node lines:   node NAME [depot] [addr HOST:PORT]
//	# edge lines:   edge A B rtt_ms bandwidth_mbps loss
//	node ucsb addr ucsb.example:7000
//	node denver depot addr denver.example:5000
//	node uiuc addr uiuc.example:7000
//	edge ucsb denver 31 100 0.00025
//	edge denver uiuc 35 100 0.00025
//
//	lslplan -graph overlay.txt -src ucsb -dst uiuc -size 64M
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"lsl"
	"lsl/internal/overlay"
	"lsl/internal/sizeparse"
)

func main() {
	var (
		graphFile = flag.String("graph", "-", "overlay description file (- = stdin)")
		src       = flag.String("src", "", "source node")
		dst       = flag.String("dst", "", "destination node")
		sizeS     = flag.String("size", "64M", "transfer size")
	)
	flag.Parse()
	if *src == "" || *dst == "" {
		fmt.Fprintln(os.Stderr, "lslplan: need -src and -dst")
		os.Exit(2)
	}
	size, err := sizeparse.Parse(*sizeS)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lslplan: bad -size: %v\n", err)
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if *graphFile != "-" {
		f, err := os.Open(*graphFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lslplan:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	g, err := overlay.Parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lslplan:", err)
		os.Exit(1)
	}

	plans, err := g.RankCandidates(lsl.NodeID(*src), lsl.NodeID(*dst), size)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lslplan:", err)
		os.Exit(1)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "RANK\tROUTE\tPREDICTED\tVS DIRECT")
	for i, p := range plans {
		hops := make([]string, len(p.Hops))
		for j, h := range p.Hops {
			hops[j] = string(h)
		}
		fmt.Fprintf(w, "%d\t%s\t%.2fs\t%+.0f%%\n",
			i+1, strings.Join(hops, " -> "), p.PredictedSeconds, p.Improvement()*100)
	}
	w.Flush()

	best := plans[0]
	if best.UsesDepots() {
		if via, target, err := best.Addrs(g); err == nil {
			fmt.Printf("\nexecute: lslcat -route %s -target %s -bench %s\n",
				strings.Join(via, ","), target, *sizeS)
		}
	} else {
		fmt.Println("\nverdict: direct TCP predicted fastest; LSL not engaged for this transfer")
	}
}

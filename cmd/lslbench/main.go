// Command lslbench regenerates the data behind every figure of the
// paper's evaluation (Figures 3-29) on the deterministic simulator.
//
//	lslbench -fig 6               # one figure
//	lslbench -all                 # every figure
//	lslbench -fig 14 -plot        # include an ASCII rendering of the curves
//	lslbench -fig 28 -iters 120   # the paper's full iteration count
//	lslbench -list                # what exists
//
// Output is a table per figure with the same rows/series the paper plots;
// absolute values come from the calibrated simulator (see DESIGN.md §4),
// so shapes and ratios — not raw Abilene numbers — are the comparison
// target (EXPERIMENTS.md records both).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"lsl"
	"lsl/internal/trace"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure to regenerate (e.g. 6, fig06)")
		all      = flag.Bool("all", false, "regenerate every figure")
		list     = flag.Bool("list", false, "list figures and exit")
		headline = flag.Bool("headline", false, "measure the abstract's aggregate claim (avg ~40%, max 75%)")
		iters    = flag.Int("iters", 0, "iterations per configuration (0 = per-figure default)")
		seed     = flag.Int64("seed", 42, "simulation seed")
		plot     = flag.Bool("plot", false, "render curve figures as ASCII plots")
		outDir   = flag.String("out", "", "also write each figure's data as TSV into this directory")
	)
	flag.Parse()

	switch {
	case *list:
		listFigures()
	case *headline:
		it := *iters
		if it <= 0 {
			it = 5
		}
		res := lsl.RunHeadline(it, *seed)
		res.WriteTo(os.Stdout)
	case *all:
		for _, spec := range lsl.AllFigures() {
			run(spec, *iters, *seed, *plot, *outDir)
		}
	case *fig != "":
		spec, err := lsl.FigureByID(normalize(*fig))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		run(spec, *iters, *seed, *plot, *outDir)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func normalize(s string) string {
	s = strings.TrimPrefix(strings.ToLower(s), "figure")
	return strings.TrimSpace(s)
}

func listFigures() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ID\tSCENARIO\tKIND\tTITLE")
	for _, f := range lsl.AllFigures() {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", f.ID, f.Scenario, f.Kind, f.Title)
	}
	w.Flush()
}

func run(spec lsl.FigureSpec, iters int, seed int64, plot bool, outDir string) {
	fmt.Printf("== %s: %s [%s/%s] ==\n", spec.ID, spec.Title, spec.Scenario, spec.Kind)
	fmt.Printf("   paper: %s\n", spec.Expect)
	data, err := lsl.RunFigure(spec, iters, seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", spec.ID, err)
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "   "+strings.Join(data.Header, "\t"))
	for _, row := range data.Rows {
		fmt.Fprintln(w, "   "+strings.Join(row, "\t"))
	}
	w.Flush()
	if plot && len(data.Series) > 0 {
		fmt.Println(trace.PlotASCII(spec.ID, 72, 18, data.Series))
	}
	if outDir != "" {
		if err := writeTSV(outDir, data); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", spec.ID, err)
		}
	}
	fmt.Println()
}

func writeTSV(dir string, data lsl.FigureData) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(dir + "/" + data.Spec.ID + ".tsv")
	if err != nil {
		return err
	}
	defer f.Close()
	return data.WriteTSV(f)
}

package lsl

import (
	"io"

	"lsl/internal/gossip"
	"lsl/internal/logistics"
	"lsl/internal/nws"
	"lsl/internal/overlay"
	"lsl/internal/route"
	"lsl/internal/tcpmodel"
)

// The planning surface: depot graphs, forecasting, and the transfer-time
// objective that decides when to cascade.

// Graph is the depot overlay map used for planning.
type Graph = route.Graph

// GraphNode is a host or depot vertex.
type GraphNode = route.Node

// NodeID names a graph vertex.
type NodeID = route.NodeID

// LinkMetrics annotates a graph edge with forecast performance.
type LinkMetrics = route.Metrics

// Plan is a chosen session route with predicted completion time.
type Plan = route.Plan

// Forecaster predicts the next value of a measurement stream.
type Forecaster = nws.Forecaster

// ForecastSelector is the NWS-style dynamic predictor selector.
type ForecastSelector = nws.Selector

// ForecastSeries is a named measurement stream with its selector.
type ForecastSeries = nws.Series

// PathModel is the analytic per-hop TCP model used as the planning
// objective (Mathis steady state + slow-start episode model).
type PathModel = tcpmodel.PathParams

// NewGraph returns an empty planning graph.
func NewGraph() *Graph { return route.NewGraph() }

// NewForecastSeries builds a measurement stream with the default NWS
// predictor bank.
func NewForecastSeries(name string) *ForecastSeries { return nws.NewSeries(name) }

// NewForecastSelector builds a selector over the default predictor bank.
func NewForecastSelector() *ForecastSelector { return nws.NewSelector() }

// MathisThroughputBps is the macroscopic steady-state TCP bound
// MSS/RTT * C/sqrt(p), in bits per second.
func MathisThroughputBps(mssBytes int, rttSeconds, lossProb float64) float64 {
	return tcpmodel.MathisThroughputBps(mssBytes, rttSeconds, lossProb)
}

// CascadePredictSeconds estimates a cascaded transfer's completion time
// over the given per-hop models.
func CascadePredictSeconds(size int64, hops []PathModel, depotDelaySeconds float64) float64 {
	return tcpmodel.CascadeTransferSeconds(size, hops, depotDelaySeconds)
}

// ParseOverlay reads the textual depot-overlay format (see cmd/lslplan
// and internal/overlay) into a planning graph.
func ParseOverlay(r io.Reader) (*Graph, error) { return overlay.Parse(r) }

// --- live route selection (internal/logistics) ---

// Planner is the live logistics control plane: it owns a planning graph,
// keeps one NWS forecast series per (edge, metric) pair, ingests
// measurements from real transfers, and ranks candidate session routes by
// predicted completion time. Pass it to Transfer with WithPlanner to
// close the measure->forecast->plan->transfer loop.
type Planner = logistics.Planner

// PlannerMetrics is the planner's counter set (lsl_logistics_*): link
// observations, replans, and the winning predictors' mean squared error.
type PlannerMetrics = logistics.Metrics

// PlannerView is the planner's observable state (the depot admin /plan
// payload): nodes, per-edge live metrics with forecast provenance, and
// totals.
type PlannerView = logistics.View

// NewPlanner builds a live planner over g, planning from the named local
// node. The graph is owned by the planner from here on.
func NewPlanner(g *Graph, self NodeID) (*Planner, error) { return logistics.New(g, self) }

// PlannerFromOverlay parses an overlay description and builds a planner
// planning from self.
func PlannerFromOverlay(r io.Reader, self NodeID) (*Planner, error) {
	return logistics.FromOverlay(r, self)
}

// NewPlannerMetrics registers the lsl_logistics_* families on reg.
func NewPlannerMetrics(reg *MetricsRegistry) *PlannerMetrics { return logistics.NewMetrics(reg) }

// PlannerMetricsRegistry returns the process-wide registry behind
// planners that did not supply their own metrics.
func PlannerMetricsRegistry() *MetricsRegistry { return logistics.DefaultRegistry() }

// --- forecast gossip (internal/gossip) ---

// Gossiper shares the planner's edge observations with peer depots by
// periodic anti-entropy exchange, so every depot plans on what the whole
// fleet has measured — including routing around an edge only one depot
// saw die. Wire one up with NewGossiper, hand its ServeConn to
// DepotConfig.OnGossip, and run it with Run (or drive rounds explicitly
// with RunRound in tests).
type Gossiper = gossip.Gossiper

// GossipConfig configures a Gossiper: the planner to share, the peer
// depot addresses to exchange with, and the round cadence.
type GossipConfig = gossip.Config

// GossipMetrics is the gossiper's counter set (lsl_gossip_*).
type GossipMetrics = gossip.Metrics

// GossipStatus is the gossiper's diagnostic view, served under "gossip"
// in the depot's /plan JSON.
type GossipStatus = gossip.Status

// NewGossiper validates cfg and builds a Gossiper (no goroutines are
// started; call Run).
func NewGossiper(cfg GossipConfig) (*Gossiper, error) { return gossip.New(cfg) }

// NewGossipMetrics registers the lsl_gossip_* families on reg.
func NewGossipMetrics(reg *MetricsRegistry) *GossipMetrics { return gossip.NewMetrics(reg) }

package lsl

import (
	"lsl/internal/nws"
	"lsl/internal/route"
	"lsl/internal/tcpmodel"
)

// The planning surface: depot graphs, forecasting, and the transfer-time
// objective that decides when to cascade.

// Graph is the depot overlay map used for planning.
type Graph = route.Graph

// GraphNode is a host or depot vertex.
type GraphNode = route.Node

// NodeID names a graph vertex.
type NodeID = route.NodeID

// LinkMetrics annotates a graph edge with forecast performance.
type LinkMetrics = route.Metrics

// Plan is a chosen session route with predicted completion time.
type Plan = route.Plan

// Forecaster predicts the next value of a measurement stream.
type Forecaster = nws.Forecaster

// ForecastSelector is the NWS-style dynamic predictor selector.
type ForecastSelector = nws.Selector

// ForecastSeries is a named measurement stream with its selector.
type ForecastSeries = nws.Series

// PathModel is the analytic per-hop TCP model used as the planning
// objective (Mathis steady state + slow-start episode model).
type PathModel = tcpmodel.PathParams

// NewGraph returns an empty planning graph.
func NewGraph() *Graph { return route.NewGraph() }

// NewForecastSeries builds a measurement stream with the default NWS
// predictor bank.
func NewForecastSeries(name string) *ForecastSeries { return nws.NewSeries(name) }

// NewForecastSelector builds a selector over the default predictor bank.
func NewForecastSelector() *ForecastSelector { return nws.NewSelector() }

// MathisThroughputBps is the macroscopic steady-state TCP bound
// MSS/RTT * C/sqrt(p), in bits per second.
func MathisThroughputBps(mssBytes int, rttSeconds, lossProb float64) float64 {
	return tcpmodel.MathisThroughputBps(mssBytes, rttSeconds, lossProb)
}

// CascadePredictSeconds estimates a cascaded transfer's completion time
// over the given per-hop models.
func CascadePredictSeconds(size int64, hops []PathModel, depotDelaySeconds float64) float64 {
	return tcpmodel.CascadeTransferSeconds(size, hops, depotDelaySeconds)
}

module lsl

go 1.22

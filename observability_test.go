package lsl_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lsl"
)

// The public observability surface: a cascaded transfer's bytes must be
// visible through Depot.Sessions, Depot.Stats, and the admin handler's
// /metrics and /sessions endpoints.
func TestDepotObservabilityEndToEnd(t *testing.T) {
	payload := bytes.Repeat([]byte("scrape me"), 30000)

	ln, err := lsl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan bool, 1)
	go func() {
		sc, err := ln.Accept()
		if err != nil {
			return
		}
		defer sc.Close()
		data, err := io.ReadAll(sc)
		done <- err == nil && sc.Verified() && bytes.Equal(data, payload)
	}()

	d := lsl.NewDepot(lsl.DepotConfig{})
	go d.ListenAndServe("127.0.0.1:0")
	defer d.Close()
	waitDepot(t, d)
	depotAddr := d.Addr().String()

	c, err := lsl.Dial(context.Background(),
		lsl.Route{Via: []string{depotAddr}, Target: ln.Addr().String()},
		lsl.WithDigest(), lsl.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	c.CloseWrite()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("transfer corrupted")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("transfer timeout")
	}
	c.Close()

	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().Completed == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	st := d.Stats()
	if st.Completed != 1 || st.BytesForward < uint64(len(payload)) {
		t.Fatalf("stats: %+v", st)
	}
	if st.MaxBuffered <= 0 {
		t.Fatalf("relay high-water not tracked: %+v", st)
	}

	var sessions lsl.DepotSessions = d.Sessions()
	if len(sessions.Recent) != 1 || sessions.Recent[0].Outcome != "completed" {
		t.Fatalf("sessions: %+v", sessions)
	}
	if sessions.Recent[0].BytesForward < uint64(len(payload)) {
		t.Fatalf("recent session bytes: %+v", sessions.Recent[0])
	}

	h := lsl.DepotAdminHandler(d)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	exposition := rec.Body.String()
	for _, want := range []string{
		"# TYPE lsd_relay_bytes_total counter",
		`lsd_relay_bytes_total{direction="forward"}`,
		"# TYPE lsd_session_duration_seconds histogram",
		`lsd_session_duration_seconds_count{outcome="completed"} 1`,
		"lsd_sessions_completed_total 1",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("/metrics missing %q:\n%s", want, exposition)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/sessions", nil))
	var snap lsl.DepotSessions
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/sessions JSON: %v", err)
	}
	if len(snap.Recent) != 1 || snap.Recent[0].BytesForward < uint64(len(payload)) {
		t.Fatalf("/sessions: %+v", snap)
	}
}

func waitDepot(t *testing.T, d *lsl.Depot) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for d.Addr() == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if d.Addr() == nil {
		t.Fatal("depot never started")
	}
}

// Package overlay parses the textual depot-overlay description used by
// cmd/lslplan (and usable by deployment tooling): a line-oriented format
// declaring nodes (hosts and depots, optionally with dialable addresses)
// and duplex edges with RTT, bandwidth and loss annotations.
//
//	# comments and blank lines are ignored
//	node ucsb addr ucsb.example:7000
//	node denver depot addr denver.example:5000
//	node uiuc addr uiuc.example:7000
//	edge ucsb denver 31 100 0.00025   # rtt_ms bandwidth_mbps loss
//	edge denver uiuc 35 100 0.00025
package overlay

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"lsl/internal/route"
)

// Parse reads an overlay description into a planning graph.
func Parse(r io.Reader) (*route.Graph, error) {
	g := route.NewGraph()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "node":
			n, err := parseNode(f)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			g.AddNode(n)
		case "edge":
			from, to, m, err := parseEdge(f)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if err := g.AddDuplex(from, to, m); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", lineNo, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

func parseNode(f []string) (route.Node, error) {
	if len(f) < 2 {
		return route.Node{}, fmt.Errorf("node needs a name")
	}
	n := route.Node{ID: route.NodeID(f[1])}
	for i := 2; i < len(f); i++ {
		switch f[i] {
		case "depot":
			n.Depot = true
		case "addr":
			if i+1 >= len(f) {
				return route.Node{}, fmt.Errorf("addr needs a value")
			}
			i++
			n.Addr = f[i]
		default:
			return route.Node{}, fmt.Errorf("unknown node attribute %q", f[i])
		}
	}
	return n, nil
}

func parseEdge(f []string) (from, to route.NodeID, m route.Metrics, err error) {
	if len(f) != 6 {
		return "", "", m, fmt.Errorf("edge wants: edge A B rtt_ms bandwidth_mbps loss")
	}
	rtt, err1 := strconv.ParseFloat(f[3], 64)
	bw, err2 := strconv.ParseFloat(f[4], 64)
	loss, err3 := strconv.ParseFloat(f[5], 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return "", "", m, fmt.Errorf("bad edge numbers")
	}
	if rtt < 0 || bw < 0 || loss < 0 || loss >= 1 {
		return "", "", m, fmt.Errorf("edge values out of range")
	}
	return route.NodeID(f[1]), route.NodeID(f[2]), route.Metrics{
		RTTSeconds:   rtt / 1000,
		BandwidthBps: bw * 1e6,
		LossProb:     loss,
	}, nil
}

// Format renders a graph back into the textual form (diagnostics,
// round-trip tooling). Nodes are emitted sorted; edges are not recoverable
// from route.Graph's public surface, so Format covers nodes only and is
// primarily for listings.
func FormatNodes(g *route.Graph) string {
	var b strings.Builder
	for _, id := range g.Nodes() {
		n, _ := g.Node(id)
		fmt.Fprintf(&b, "node %s", n.ID)
		if n.Depot {
			b.WriteString(" depot")
		}
		if n.Addr != "" {
			fmt.Fprintf(&b, " addr %s", n.Addr)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

package overlay

import (
	"strings"
	"testing"
)

// FuzzOverlayParse throws arbitrary text at the overlay parser — it reads
// untrusted, operator-authored files — checking that it never panics and
// that anything it accepts round-trips its node declarations through
// FormatNodes.
func FuzzOverlayParse(f *testing.F) {
	f.Add("node a\nnode b depot addr h:1\nedge a b 10 100 0.001\n")
	f.Add("# comment\n\nnode x addr host:7000\n")
	f.Add("edge a b 1 2 0.5")
	f.Add("node")
	f.Add("edge a b -1 0 2")
	f.Add("bogus directive")
	f.Add("node a depot depot depot\nedge a a 0 0 0")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		// Comment stripping happens before parsing, so no accepted node
		// name or addr can contain '#': the node listing must re-parse.
		g2, err := Parse(strings.NewReader(FormatNodes(g)))
		if err != nil {
			t.Fatalf("reparse of formatted nodes failed: %v\ninput: %q", err, input)
		}
		if got, want := len(g2.Nodes()), len(g.Nodes()); got != want {
			t.Fatalf("round-trip node count = %d, want %d (input %q)", got, want, input)
		}
	})
}

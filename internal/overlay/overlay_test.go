package overlay

import (
	"strings"
	"testing"
)

const sample = `
# the paper's Case 1 overlay
node ucsb addr ucsb.example:7000
node denver depot addr denver.example:5000
node uiuc addr uiuc.example:7000
edge ucsb denver 31 100 0.00025
edge denver uiuc 35 100 0.00025   # trailing comment
`

func TestParseSample(t *testing.T) {
	g, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes()) != 3 {
		t.Fatalf("nodes=%v", g.Nodes())
	}
	n, ok := g.Node("denver")
	if !ok || !n.Depot || n.Addr != "denver.example:5000" {
		t.Fatalf("denver=%+v", n)
	}
	path, rtt, err := g.MinLatencyPath("ucsb", "uiuc")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || rtt < 0.065 || rtt > 0.067 {
		t.Fatalf("path=%v rtt=%v", path, rtt)
	}
}

func TestParsePlansEndToEnd(t *testing.T) {
	g, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := g.PlanTransfer("ucsb", "uiuc", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.UsesDepots() {
		t.Fatal("case1-like overlay should cascade for 64M")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"banana ucsb",                       // unknown directive
		"node",                              // missing name
		"node a frobnicate",                 // unknown attribute
		"node a addr",                       // addr without value
		"edge a b 1 2",                      // wrong arity
		"edge a b x 2 0",                    // bad number
		"edge a b 1 2 1.5",                  // loss out of range
		"node a\nedge a ghost 1 2 0.001",    // unknown endpoint
		"node a\nnode b\nedge a b -1 2 0.1", // negative rtt
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Fatalf("accepted %q", in)
		}
	}
}

func TestParseEmptyOK(t *testing.T) {
	g, err := Parse(strings.NewReader("\n# nothing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes()) != 0 {
		t.Fatal("phantom nodes")
	}
}

func TestFormatNodes(t *testing.T) {
	g, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	out := FormatNodes(g)
	if !strings.Contains(out, "node denver depot addr denver.example:5000") {
		t.Fatalf("format:\n%s", out)
	}
	// Round-trip: the node lines parse back.
	g2, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.Nodes()) != 3 {
		t.Fatal("round trip lost nodes")
	}
}

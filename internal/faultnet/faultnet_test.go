package faultnet

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// discardServer accepts connections and counts the bytes each delivers,
// reporting the per-connection totals on a channel.
func discardServer(t *testing.T) (addr string, counts chan int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	counts = make(chan int64, 16)
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				n, _ := io.Copy(io.Discard, nc)
				nc.Close()
				counts <- n
			}()
		}
	}()
	return ln.Addr().String(), counts
}

func TestScriptedRefusalThenCleanPassthrough(t *testing.T) {
	addr, _ := discardServer(t)
	n := New(nil)
	n.Script(addr, Step{RefuseDial: true})

	_, err := n.DialContext(context.Background(), "tcp", addr)
	if !errors.Is(err, ErrDialRefused) {
		t.Fatalf("want injected refusal, got %v", err)
	}
	nc, err := n.DialContext(context.Background(), "tcp", addr)
	if err != nil {
		t.Fatalf("second dial should pass through: %v", err)
	}
	nc.Close()
	if n.Dials(addr) != 2 {
		t.Fatalf("dials=%d", n.Dials(addr))
	}
}

func TestResetAfterExactByteCount(t *testing.T) {
	addr, counts := discardServer(t)
	n := New(nil)
	const cut = 1000
	n.Script(addr, Step{ResetAfterBytes: cut})

	nc, err := n.DialContext(context.Background(), "tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	buf := make([]byte, 4096)
	var sent int64
	var werr error
	for werr == nil {
		var w int
		w, werr = nc.Write(buf)
		sent += int64(w)
	}
	if !errors.Is(werr, ErrReset) {
		t.Fatalf("want injected reset, got %v", werr)
	}
	if sent != cut {
		t.Fatalf("wrote %d bytes before reset, want exactly %d", sent, cut)
	}
	select {
	case got := <-counts:
		if got != cut {
			t.Fatalf("server saw %d bytes, want %d", got, cut)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never saw the connection die")
	}
	if n.Resets() != 1 {
		t.Fatalf("resets=%d", n.Resets())
	}
}

func TestResetKillsReadsToo(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		// Keep the server side open; the injected reset must still
		// unblock the client's read.
		io.Copy(io.Discard, nc)
		nc.Close()
	}()
	n := New(nil)
	n.Script(ln.Addr().String(), Step{ResetAfterBytes: 10})
	nc, err := n.DialContext(context.Background(), "tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	readErr := make(chan error, 1)
	go func() {
		_, err := nc.Read(make([]byte, 1))
		readErr <- err
	}()
	if _, err := nc.Write(make([]byte, 64)); !errors.Is(err, ErrReset) {
		t.Fatalf("want reset, got %v", err)
	}
	select {
	case err := <-readErr:
		if err == nil {
			t.Fatal("read survived the reset")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read still blocked after reset")
	}
}

func TestStallBlocksUntilClose(t *testing.T) {
	addr, _ := discardServer(t)
	n := New(nil)
	n.Script(addr, Step{StallAfterBytes: 100})
	nc, err := n.DialContext(context.Background(), "tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := nc.Write(make([]byte, 500))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("stalled write returned early: %v", err)
	case <-time.After(100 * time.Millisecond):
		// Good: still wedged.
	}
	nc.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrStalled) {
			t.Fatalf("want ErrStalled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not release the stalled writer")
	}
}

func TestDialLatencyHonorsContext(t *testing.T) {
	addr, _ := discardServer(t)
	n := New(nil)
	n.Script(addr, Step{DialLatency: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := n.DialContext(ctx, "tcp", addr)
	if err == nil {
		t.Fatal("dial succeeded despite cancelled context")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("dial latency ignored context cancellation")
	}
}

func TestChaosDeterministicForSeed(t *testing.T) {
	cfg := ChaosConfig{
		Steps:          20,
		RefuseProb:     0.4,
		MaxResetBytes:  1 << 20,
		MaxDialLatency: 5 * time.Millisecond,
	}
	a := New(nil).Chaos("x:1", 99, cfg)
	b := New(nil).Chaos("x:1", 99, cfg)
	if len(a) != len(b) || len(a) != cfg.Steps {
		t.Fatalf("schedule lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := New(nil).Chaos("x:1", 100, cfg)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestExhaustedScriptIsClean(t *testing.T) {
	addr, counts := discardServer(t)
	n := New(nil)
	if n.Pending(addr) != 0 {
		t.Fatal("fresh network has pending steps")
	}
	nc, err := n.DialContext(context.Background(), "tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := nc.(*Conn); ok {
		t.Fatal("clean dial should not wrap the connection")
	}
	payload := make([]byte, 10_000)
	if _, err := nc.Write(payload); err != nil {
		t.Fatal(err)
	}
	nc.Close()
	select {
	case got := <-counts:
		if got != int64(len(payload)) {
			t.Fatalf("server saw %d bytes", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

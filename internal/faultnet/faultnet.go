// Package faultnet is a deterministic fault-injection harness for the
// session layer: a core.Dialer/net.Conn wrapper that injects connection
// refusals, mid-stream resets after an exact byte count, stalls, and
// latency from a scripted schedule. Every failure mode a flaky WAN can
// produce is reproducible byte-for-byte in a unit test, which is what
// makes the self-healing engine (internal/resilience) provable rather
// than "usually works".
//
// Faults are scripted per destination address and consumed one step per
// dial, in order; once an address's script is exhausted, dials pass
// through untouched. Chaos derives a whole schedule from a seed, so the
// same seed always produces the same fault sequence (run tests with
// -count=2 to prove schedule independence).
package faultnet

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"

	"lsl/internal/core"
)

// Injected errors. Both unwrap from the *net.OpError-shaped errors the
// harness returns, so errors.Is works through the session layer's wraps.
var (
	// ErrDialRefused is the injected equivalent of ECONNREFUSED.
	ErrDialRefused = errors.New("faultnet: connection refused (injected)")
	// ErrReset is the injected equivalent of ECONNRESET mid-stream.
	ErrReset = errors.New("faultnet: connection reset (injected)")
	// ErrStalled is returned once a stalled connection is torn down.
	ErrStalled = errors.New("faultnet: connection stalled (injected)")
)

// Step scripts the faults for one dial to an address. The zero Step is a
// clean passthrough.
type Step struct {
	// RefuseDial fails the dial immediately (the depot is down).
	RefuseDial bool
	// DialLatency delays the dial before it succeeds or refuses.
	DialLatency time.Duration
	// ResetAfterBytes kills the connection (both directions) once exactly
	// this many bytes have been written through it; 0 means never.
	ResetAfterBytes int64
	// StallAfterBytes blocks writes indefinitely after this many bytes —
	// the peer is alive but wedged. Unblocked only by Close; 0 = never.
	StallAfterBytes int64
	// WriteLatency delays each Write (per-chunk pacing).
	WriteLatency time.Duration
}

func (s Step) clean() bool { return s == Step{} }

// Network wraps an inner dialer with scripted faults. Safe for
// concurrent use.
type Network struct {
	next core.Dialer

	mu      sync.Mutex
	scripts map[string][]Step
	dials   map[string]int
	resets  int
}

// New builds a fault network in front of next (nil means the real
// net.Dialer).
func New(next core.Dialer) *Network {
	if next == nil {
		var d net.Dialer
		next = d.DialContext
	}
	return &Network{
		next:    next,
		scripts: make(map[string][]Step),
		dials:   make(map[string]int),
	}
}

// Script appends fault steps for addr; each subsequent dial to addr
// consumes one step, in order.
func (n *Network) Script(addr string, steps ...Step) {
	n.mu.Lock()
	n.scripts[addr] = append(n.scripts[addr], steps...)
	n.mu.Unlock()
}

// ChaosConfig bounds a seeded random fault schedule.
type ChaosConfig struct {
	// Steps is how many faulty dials to schedule before going clean.
	Steps int
	// RefuseProb is the probability a step refuses the dial outright;
	// otherwise the step resets mid-stream.
	RefuseProb float64
	// MaxResetBytes bounds the reset point (uniform in [1, MaxResetBytes]).
	MaxResetBytes int64
	// MaxDialLatency and MaxWriteLatency bound injected latency (0 = none).
	MaxDialLatency  time.Duration
	MaxWriteLatency time.Duration
}

// Chaos derives a deterministic fault schedule for addr from seed and
// scripts it, returning the generated steps so tests can assert on the
// exact schedule. The same (seed, cfg) always yields the same steps.
func (n *Network) Chaos(addr string, seed int64, cfg ChaosConfig) []Step {
	rng := rand.New(rand.NewSource(seed))
	steps := make([]Step, 0, cfg.Steps)
	for i := 0; i < cfg.Steps; i++ {
		var s Step
		if rng.Float64() < cfg.RefuseProb {
			s.RefuseDial = true
		} else if cfg.MaxResetBytes > 0 {
			s.ResetAfterBytes = 1 + rng.Int63n(cfg.MaxResetBytes)
		} else {
			s.RefuseDial = true // no reset budget: refusal is the only fault left
		}
		if cfg.MaxDialLatency > 0 {
			s.DialLatency = time.Duration(rng.Int63n(int64(cfg.MaxDialLatency) + 1))
		}
		if cfg.MaxWriteLatency > 0 {
			s.WriteLatency = time.Duration(rng.Int63n(int64(cfg.MaxWriteLatency) + 1))
		}
		steps = append(steps, s)
	}
	n.Script(addr, steps...)
	return steps
}

// DialContext implements core.Dialer with the scripted faults applied.
func (n *Network) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	n.mu.Lock()
	n.dials[addr]++
	var step Step
	if q := n.scripts[addr]; len(q) > 0 {
		step, n.scripts[addr] = q[0], q[1:]
	}
	n.mu.Unlock()
	if step.DialLatency > 0 {
		t := time.NewTimer(step.DialLatency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
	if step.RefuseDial {
		return nil, &net.OpError{Op: "dial", Net: network, Addr: fakeAddr(addr), Err: ErrDialRefused}
	}
	nc, err := n.next(ctx, network, addr)
	if err != nil || step.clean() {
		return nc, err
	}
	return &Conn{Conn: nc, net: n, step: step, unstall: make(chan struct{})}, nil
}

// Dials reports how many times addr has been dialed through the network.
func (n *Network) Dials(addr string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dials[addr]
}

// Resets reports how many injected mid-stream resets have fired.
func (n *Network) Resets() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.resets
}

// Pending reports how many unconsumed fault steps remain for addr.
func (n *Network) Pending(addr string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.scripts[addr])
}

// Conn is a faulty transport connection. The fault thresholds apply to
// the written (forward) byte stream — a reset also kills reads, exactly
// like a peer process dying.
type Conn struct {
	net.Conn
	net  *Network
	step Step

	mu      sync.Mutex
	written int64
	dead    bool

	stallOnce sync.Once
	closeOnce sync.Once
	unstall   chan struct{}
}

// Write applies latency, then writes up to the scripted reset/stall
// threshold. Crossing the reset point closes the underlying transport
// (both directions) and returns ErrReset; crossing the stall point
// blocks until Close.
func (c *Conn) Write(p []byte) (int, error) {
	if c.step.WriteLatency > 0 {
		time.Sleep(c.step.WriteLatency)
	}
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return 0, &net.OpError{Op: "write", Net: "tcp", Err: ErrReset}
	}
	allowed := int64(len(p))
	var fault error
	if c.step.ResetAfterBytes > 0 && c.written+allowed >= c.step.ResetAfterBytes {
		allowed = c.step.ResetAfterBytes - c.written
		fault = ErrReset
		c.dead = true
	} else if c.step.StallAfterBytes > 0 && c.written+allowed >= c.step.StallAfterBytes {
		allowed = c.step.StallAfterBytes - c.written
		fault = ErrStalled
	}
	c.written += allowed
	c.mu.Unlock()

	var n int
	var err error
	if allowed > 0 {
		n, err = c.Conn.Write(p[:allowed])
		if err != nil {
			return n, err
		}
	}
	switch fault {
	case nil:
		return n, nil
	case ErrReset:
		c.net.mu.Lock()
		c.net.resets++
		c.net.mu.Unlock()
		c.Conn.Close() // the peer sees the connection die too
		return n, &net.OpError{Op: "write", Net: "tcp", Err: ErrReset}
	default: // stall: wedge until Close tears us down
		<-c.unstall
		return n, &net.OpError{Op: "write", Net: "tcp", Err: ErrStalled}
	}
}

// Close tears the connection down and releases any stalled writer.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.unstall) })
	c.mu.Lock()
	c.dead = true
	c.mu.Unlock()
	return c.Conn.Close()
}

// CloseWrite forwards the half-close when the underlying transport
// supports it (the session layer uses it to propagate EOF).
func (c *Conn) CloseWrite() error {
	if cw, ok := c.Conn.(interface{ CloseWrite() error }); ok {
		return cw.CloseWrite()
	}
	return nil
}

// fakeAddr names the refused destination in the injected *net.OpError.
type fakeAddr string

func (a fakeAddr) Network() string { return "tcp" }
func (a fakeAddr) String() string  { return string(a) }

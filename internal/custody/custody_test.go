package custody

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"lsl/internal/wire"
)

func testEntry(total int64) Entry {
	return Entry{
		Session:    wire.NewSessionID(),
		Flags:      wire.FlagDigest,
		HopIndex:   0,
		Route:      []string{"depot:5000", "target:6000"},
		ContentLen: uint64(total),
		Total:      total,
	}
}

func stagePayload(t *testing.T, j *Journal, e Entry, payload []byte) {
	t.Helper()
	st, err := j.Stage(e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	e := testEntry(1234)
	e.Offset = 77
	var buf bytes.Buffer
	buf.Write(frameRecord(encodeAdmit(&e)))
	buf.Write(frameRecord(encodeDone(e.Session, true)))

	rec, err := ReadRecord(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Type != RecAdmit || rec.Entry.Session != e.Session ||
		rec.Entry.Total != 1234 || rec.Entry.Offset != 77 ||
		len(rec.Entry.Route) != 2 || rec.Entry.Route[1] != "target:6000" {
		t.Fatalf("admit mismatch: %+v", rec)
	}
	rec, err = ReadRecord(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Type != RecDone || rec.Session != e.Session || !rec.Delivered {
		t.Fatalf("done mismatch: %+v", rec)
	}
	if _, err := ReadRecord(&buf); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestStageCommitSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("durable"), 100)
	e := testEntry(int64(len(payload)))
	stagePayload(t, j, e, payload)
	if got := j.LiveBytes(); got != int64(len(payload)) {
		t.Fatalf("LiveBytes=%d want %d", got, len(payload))
	}
	j.Close()

	j2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rec := j2.Recovered()
	if len(rec) != 1 || rec[0].Session != e.Session || rec[0].Total != e.Total {
		t.Fatalf("recovered %+v", rec)
	}
	f, err := j2.OpenPayload(e.Session)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(f)
	f.Close()
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted across reopen")
	}
}

func TestCompleteRetiresEntry(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("short-lived")
	e := testEntry(int64(len(payload)))
	stagePayload(t, j, e, payload)
	if err := j.Complete(e.Session, true); err != nil {
		t.Fatal(err)
	}
	if j.Live() != 0 || j.LiveBytes() != 0 {
		t.Fatalf("live=%d bytes=%d after complete", j.Live(), j.LiveBytes())
	}
	if _, err := os.Stat(filepath.Join(dir, e.Session.String()+PayloadSuffix)); !os.IsNotExist(err) {
		t.Fatal("payload file survived Complete")
	}
	// Completing twice (and completing the unknown) is a no-op.
	if err := j.Complete(e.Session, false); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(j2.Recovered()) != 0 {
		t.Fatal("completed session recovered")
	}
}

func TestAbortLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	e := testEntry(100)
	st, err := j.Stage(e)
	if err != nil {
		t.Fatal(err)
	}
	st.Write([]byte("partial"))
	st.Abort()
	if j.Live() != 0 {
		t.Fatal("aborted stage went live")
	}
	if _, err := os.Stat(filepath.Join(dir, e.Session.String()+PayloadSuffix)); !os.IsNotExist(err) {
		t.Fatal("payload file survived Abort")
	}
}

func TestShortCommitRefused(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	e := testEntry(100)
	st, err := j.Stage(e)
	if err != nil {
		t.Fatal(err)
	}
	st.Write([]byte("only a few bytes"))
	if err := st.Commit(); err == nil {
		t.Fatal("short commit accepted")
	}
	if j.Live() != 0 {
		t.Fatal("short stage went live")
	}
}

// A torn tail — a record half-flushed by a crash mid-append — must not
// poison the valid prefix, and must be repaired (truncated) on Open.
func TestCorruptTailSkipped(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("survivor")
	e := testEntry(int64(len(payload)))
	stagePayload(t, j, e, payload)
	j.Close()

	// Append garbage: a plausible length prefix followed by junk.
	f, err := os.OpenFile(filepath.Join(dir, JournalName), os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0, 0, 0, 40, 0xde, 0xad, 0xbe, 0xef, 'j', 'u', 'n', 'k'})
	f.Close()

	j2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rec := j2.Recovered(); len(rec) != 1 || rec[0].Session != e.Session {
		t.Fatalf("recovered %+v", rec)
	}
	j2.Close()

	// The rewrite dropped the garbage: a third open sees a clean log.
	j3, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if len(j3.Recovered()) != 1 {
		t.Fatal("repaired journal did not survive a further reopen")
	}
}

// A journaled admit whose payload file is missing or short must be
// dropped: redelivering a truncated payload would fail end-to-end MD5
// anyway, and redelivering garbage is worse than delivering nothing.
func TestMissingPayloadDropped(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("will vanish")
	e := testEntry(int64(len(payload)))
	stagePayload(t, j, e, payload)
	e2 := testEntry(4)
	stagePayload(t, j, e2, []byte("keep"))
	j.Close()
	os.Remove(filepath.Join(dir, e.Session.String()+PayloadSuffix))

	j2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rec := j2.Recovered()
	if len(rec) != 1 || rec[0].Session != e2.Session {
		t.Fatalf("recovered %+v", rec)
	}
}

// Orphan payload files (payload written, admit record never journaled —
// a crash between the two) are removed by Open's compaction and never
// recovered.
func TestOrphanPayloadRemoved(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, wire.NewSessionID().String()+PayloadSuffix)
	if err := os.WriteFile(orphan, []byte("never admitted"), 0o600); err != nil {
		t.Fatal(err)
	}
	j, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(j.Recovered()) != 0 {
		t.Fatal("orphan recovered")
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan payload survived Open")
	}
}

func TestCompactionShrinksJournal(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Config{CompactEvery: 4, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	payload := []byte("churn")
	for i := 0; i < 8; i++ {
		e := testEntry(int64(len(payload)))
		stagePayload(t, j, e, payload)
		if err := j.Complete(e.Session, true); err != nil {
			t.Fatal(err)
		}
	}
	st, err := os.Stat(filepath.Join(dir, JournalName))
	if err != nil {
		t.Fatal(err)
	}
	// Everything was retired and the compaction threshold (4) tripped at
	// least once, so the log must be empty, not 8 admit+done pairs.
	if st.Size() != 0 {
		t.Fatalf("journal size %d after full churn, want 0", st.Size())
	}
}

func TestZeroByteEntry(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(0)
	stagePayload(t, j, e, nil)
	j.Close()
	j2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rec := j2.Recovered()
	if len(rec) != 1 || rec[0].Total != 0 {
		t.Fatalf("recovered %+v", rec)
	}
	f, err := j2.OpenPayload(e.Session)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got, _ := io.ReadAll(f); len(got) != 0 {
		t.Fatal("zero-byte payload grew bytes")
	}
}

func TestParseFsync(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"always", FsyncAlways, true},
		{"", FsyncAlways, true},
		{"never", FsyncNever, true},
		{"none", FsyncNever, true},
		{"sometimes", FsyncAlways, false},
	} {
		got, err := ParseFsync(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseFsync(%q) = %v, %v", tc.in, got, err)
		}
	}
}

func TestStageAfterCloseRefused(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := j.Stage(testEntry(1)); err != ErrClosed {
		t.Fatalf("Stage after Close: %v", err)
	}
	if err := j.Complete(wire.NewSessionID(), true); err != ErrClosed {
		t.Fatalf("Complete after Close: %v", err)
	}
}

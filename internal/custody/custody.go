// Package custody makes staged delivery crash-safe: a write-ahead journal
// records every payload a depot has taken into custody, so an
// acknowledged staged session survives a process crash or redeploy and
// resumes redelivery after restart.
//
// The paper's §III custody model ("the ultimate sending and receiving
// ports need not exist at the same time") is only trustworthy if an
// intermediary that has acknowledged a payload cannot silently lose it.
// The journal provides that guarantee with two on-disk structures under
// one state directory:
//
//   - per-session payload files (<session-hex>.payload), written and
//     fsynced before the session is journaled;
//   - an append-only journal (custody.journal) of length-prefixed,
//     CRC32-guarded records: an admit record carrying the session's
//     routing header fields once its payload is durable, and a done
//     record once the payload is delivered or abandoned.
//
// The commit protocol orders payload-then-journal: a crash between the
// two leaves an orphan payload file (removed by the next Open's
// compaction) but never a journaled session without its bytes. Open
// scans the journal, truncates a torn tail at the first corrupt record
// (a partially flushed append), drops entries whose payload file is
// missing or short, rewrites the journal with only live entries, and
// hands the survivors to the depot for re-admission.
package custody

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"lsl/internal/wire"
)

// Journal file layout constants.
const (
	// JournalName is the append-only record log inside the state dir.
	JournalName = "custody.journal"
	// PayloadSuffix names per-session payload spill files.
	PayloadSuffix = ".payload"
	// MaxRecordLen bounds one journal record body: a full open header's
	// worth of route bytes plus the fixed fields, with slack. The decoder
	// refuses anything larger before allocating.
	MaxRecordLen = wire.MaxHeaderLen + 128
	// recordHeaderLen is the per-record framing: u32 body length + u32
	// CRC32 (IEEE) of the body.
	recordHeaderLen = 8
)

// Record types.
const (
	// RecAdmit journals a session whose payload is durably on disk.
	RecAdmit = 1
	// RecDone retires an admit: the payload was delivered or abandoned.
	RecDone = 2
)

// Decode errors. ErrCorrupt (bad CRC, bad structure) and ErrTruncated
// (clean EOF mid-record) both mark the end of the journal's valid prefix.
var (
	ErrCorrupt   = errors.New("custody: corrupt journal record")
	ErrTruncated = errors.New("custody: truncated journal record")
	ErrClosed    = errors.New("custody: journal closed")
)

// FsyncPolicy selects how hard the journal pushes bytes to stable
// storage before acknowledging custody.
type FsyncPolicy int

const (
	// FsyncAlways syncs the payload file and the journal append before
	// the custody commit is acknowledged — a crash after the ACK cannot
	// lose the payload. The default.
	FsyncAlways FsyncPolicy = iota
	// FsyncNever skips fsync entirely: durable against process crashes
	// (the page cache survives) but not against power loss. For tests
	// and throwaway tiers.
	FsyncNever
)

// ParseFsync maps the operator-facing -fsync flag values.
func ParseFsync(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "", "always":
		return FsyncAlways, nil
	case "never", "none":
		return FsyncNever, nil
	}
	return FsyncAlways, fmt.Errorf("custody: unknown fsync policy %q (want always or never)", s)
}

// Entry is one custody session's journaled routing state — everything
// needed to rebuild the forwarding header and resume redelivery after a
// restart.
type Entry struct {
	Session    wire.SessionID
	Flags      uint16
	HopIndex   uint8
	Route      []string
	ContentLen uint64
	Offset     uint64
	// Total is the payload file size: content length plus the MD5
	// trailer when the session digests. The trailer is stored and
	// forwarded verbatim, so end-to-end integrity still verifies at the
	// ultimate receiver after a crash-restart cycle.
	Total int64
}

// validate mirrors the wire header limits so a journal can never admit
// an entry the forwarding path would refuse to encode.
func (e *Entry) validate() error {
	if len(e.Route) == 0 || len(e.Route) > wire.MaxRouteEntries {
		return fmt.Errorf("custody: bad route length %d", len(e.Route))
	}
	for _, a := range e.Route {
		if a == "" || len(a) > wire.MaxAddrLen {
			return fmt.Errorf("custody: bad route entry %q", a)
		}
	}
	if e.Total < 0 {
		return fmt.Errorf("custody: negative payload size %d", e.Total)
	}
	return nil
}

// Record is one decoded journal record.
type Record struct {
	Type byte
	// Entry is populated for RecAdmit records.
	Entry Entry
	// Session and Delivered are populated for RecDone records.
	Session   wire.SessionID
	Delivered bool
}

// encodeAdmit serializes an admit record body.
func encodeAdmit(e *Entry) []byte {
	n := 1 + 16 + 2 + 1 + 8 + 8 + 8 + 1
	for _, a := range e.Route {
		n += 2 + len(a)
	}
	body := make([]byte, 0, n)
	body = append(body, RecAdmit)
	body = append(body, e.Session[:]...)
	body = binary.BigEndian.AppendUint16(body, e.Flags)
	body = append(body, e.HopIndex)
	body = binary.BigEndian.AppendUint64(body, e.ContentLen)
	body = binary.BigEndian.AppendUint64(body, e.Offset)
	body = binary.BigEndian.AppendUint64(body, uint64(e.Total))
	body = append(body, uint8(len(e.Route)))
	for _, a := range e.Route {
		body = binary.BigEndian.AppendUint16(body, uint16(len(a)))
		body = append(body, a...)
	}
	return body
}

// encodeDone serializes a done record body.
func encodeDone(id wire.SessionID, delivered bool) []byte {
	body := make([]byte, 0, 18)
	body = append(body, RecDone)
	body = append(body, id[:]...)
	if delivered {
		body = append(body, 1)
	} else {
		body = append(body, 0)
	}
	return body
}

// admitFixedLen is the admit body before the route entries.
const admitFixedLen = 1 + 16 + 2 + 1 + 8 + 8 + 8 + 1

// decodeBody parses one record body. It never panics on malformed input
// and bounds every allocation by the already-checked body length.
func decodeBody(body []byte) (*Record, error) {
	if len(body) == 0 {
		return nil, ErrCorrupt
	}
	switch body[0] {
	case RecAdmit:
		if len(body) < admitFixedLen {
			return nil, ErrCorrupt
		}
		r := &Record{Type: RecAdmit}
		e := &r.Entry
		copy(e.Session[:], body[1:17])
		e.Flags = binary.BigEndian.Uint16(body[17:19])
		e.HopIndex = body[19]
		e.ContentLen = binary.BigEndian.Uint64(body[20:28])
		e.Offset = binary.BigEndian.Uint64(body[28:36])
		total := binary.BigEndian.Uint64(body[36:44])
		if total > uint64(1)<<62 {
			return nil, ErrCorrupt
		}
		e.Total = int64(total)
		routeN := int(body[44])
		rest := body[admitFixedLen:]
		if routeN == 0 || routeN > wire.MaxRouteEntries {
			return nil, ErrCorrupt
		}
		for i := 0; i < routeN; i++ {
			if len(rest) < 2 {
				return nil, ErrCorrupt
			}
			n := int(binary.BigEndian.Uint16(rest[:2]))
			rest = rest[2:]
			if n == 0 || n > wire.MaxAddrLen || len(rest) < n {
				return nil, ErrCorrupt
			}
			e.Route = append(e.Route, string(rest[:n]))
			rest = rest[n:]
		}
		if len(rest) != 0 {
			return nil, ErrCorrupt
		}
		if err := e.validate(); err != nil {
			return nil, ErrCorrupt
		}
		return r, nil
	case RecDone:
		if len(body) != 18 {
			return nil, ErrCorrupt
		}
		r := &Record{Type: RecDone, Delivered: body[17] == 1}
		copy(r.Session[:], body[1:17])
		return r, nil
	}
	return nil, ErrCorrupt
}

// ReadRecord reads and decodes one journal record from r. A clean EOF at
// a record boundary returns io.EOF; a record cut mid-frame returns
// ErrTruncated; a CRC mismatch or structural violation returns
// ErrCorrupt. The decoder never panics and never allocates more than
// MaxRecordLen for one record.
func ReadRecord(r io.Reader) (*Record, error) {
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return nil, ErrTruncated
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	sum := binary.BigEndian.Uint32(hdr[4:8])
	if n == 0 || n > MaxRecordLen {
		return nil, ErrCorrupt
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrTruncated
		}
		return nil, err
	}
	if crc32.ChecksumIEEE(body) != sum {
		return nil, ErrCorrupt
	}
	return decodeBody(body)
}

// frameRecord wraps a body with its length + CRC header.
func frameRecord(body []byte) []byte {
	out := make([]byte, recordHeaderLen+len(body))
	binary.BigEndian.PutUint32(out[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(body))
	copy(out[recordHeaderLen:], body)
	return out
}

// Config tunes a journal.
type Config struct {
	// Fsync selects the durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// CompactEvery rewrites the journal after this many done records
	// accumulate since the last compaction (0 = 256). Open always
	// compacts.
	CompactEvery int
	// Logf, when set, receives one line per recovery/repair event.
	Logf func(format string, args ...interface{})
}

// Journal is a custody write-ahead log rooted at one state directory.
// All methods are safe for concurrent use.
type Journal struct {
	dir string
	cfg Config

	mu        sync.Mutex
	f         *os.File
	live      map[wire.SessionID]Entry
	liveBytes int64
	dead      int
	recovered []Entry
	closed    bool
}

// Open loads (or creates) the journal under dir, repairs a torn tail,
// compacts retired entries, removes orphan payload files, and returns
// the journal with the surviving custody sessions available via
// Recovered.
func Open(dir string, cfg Config) (*Journal, error) {
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = 256
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	j := &Journal{dir: dir, cfg: cfg, live: make(map[wire.SessionID]Entry)}
	if err := j.recover(); err != nil {
		return nil, err
	}
	return j, nil
}

func (j *Journal) logf(format string, args ...interface{}) {
	if j.cfg.Logf != nil {
		j.cfg.Logf(format, args...)
	}
}

// Dir returns the journal's state directory.
func (j *Journal) Dir() string { return j.dir }

// recover scans the journal, validates payload files, and rewrites the
// log with only live entries.
func (j *Journal) recover() error {
	path := filepath.Join(j.dir, JournalName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDONLY, 0o600)
	if err != nil {
		return err
	}
	admits := make(map[wire.SessionID]Entry)
	var order []wire.SessionID
	for {
		rec, err := ReadRecord(f)
		if err == io.EOF {
			break
		}
		if err == ErrCorrupt || err == ErrTruncated {
			// A torn append: everything before it is valid, everything
			// after it is garbage from a mid-write crash. The compaction
			// rewrite below discards the tail.
			j.logf("custody: journal tail unreadable (%v), keeping valid prefix", err)
			break
		}
		if err != nil {
			f.Close()
			return err
		}
		switch rec.Type {
		case RecAdmit:
			if _, seen := admits[rec.Entry.Session]; !seen {
				order = append(order, rec.Entry.Session)
			}
			admits[rec.Entry.Session] = rec.Entry
		case RecDone:
			delete(admits, rec.Session)
		}
	}
	f.Close()
	// Keep only sessions whose payload file really holds every byte the
	// admit record promised: a short or missing file means the
	// payload-then-journal ordering was violated by outside interference
	// (manual deletion, disk trouble) — refuse to redeliver garbage.
	for _, id := range order {
		e, ok := admits[id]
		if !ok {
			continue
		}
		st, err := os.Stat(j.payloadPath(id))
		if err != nil || st.Size() != e.Total {
			j.logf("custody: dropping session %s: payload file invalid (%v)", id, err)
			delete(admits, id)
			os.Remove(j.payloadPath(id))
			continue
		}
		j.live[id] = e
		j.liveBytes += e.Total
		j.recovered = append(j.recovered, e)
	}
	sort.Slice(j.recovered, func(a, b int) bool {
		return j.recovered[a].Session.String() < j.recovered[b].Session.String()
	})
	if err := j.rewriteLocked(); err != nil {
		return err
	}
	j.removeOrphans()
	return nil
}

// removeOrphans deletes payload files with no live journal entry —
// sessions that crashed between payload write and journal append, or
// whose done record was journaled but whose unlink was lost.
func (j *Journal) removeOrphans() {
	ents, err := os.ReadDir(j.dir)
	if err != nil {
		return
	}
	for _, de := range ents {
		name := de.Name()
		if !strings.HasSuffix(name, PayloadSuffix) {
			continue
		}
		id, err := wire.ParseSessionID(strings.TrimSuffix(name, PayloadSuffix))
		if err != nil {
			continue
		}
		if _, ok := j.live[id]; !ok {
			j.logf("custody: removing orphan payload %s", name)
			os.Remove(filepath.Join(j.dir, name))
		}
	}
}

// rewriteLocked rebuilds the journal with one admit record per live
// session, atomically (write temp, fsync, rename), and reopens it for
// appending. Callers hold the lock or are single-threaded (Open).
func (j *Journal) rewriteLocked() error {
	path := filepath.Join(j.dir, JournalName)
	tmp := path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return err
	}
	ids := make([]wire.SessionID, 0, len(j.live))
	for id := range j.live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a].String() < ids[b].String() })
	for _, id := range ids {
		e := j.live[id]
		if _, err := tf.Write(frameRecord(encodeAdmit(&e))); err != nil {
			tf.Close()
			os.Remove(tmp)
			return err
		}
	}
	if j.cfg.Fsync == FsyncAlways {
		if err := tf.Sync(); err != nil {
			tf.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := tf.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	j.syncDir()
	if j.f != nil {
		j.f.Close()
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return err
	}
	j.f = f
	j.dead = 0
	return nil
}

// syncDir fsyncs the state directory so renames and unlinks are durable
// (best effort — some filesystems refuse directory fsync).
func (j *Journal) syncDir() {
	if j.cfg.Fsync != FsyncAlways {
		return
	}
	if df, err := os.Open(j.dir); err == nil {
		df.Sync()
		df.Close()
	}
}

// Recovered returns the custody sessions that survived the last Open,
// oldest journal order first. The caller (the depot) re-admits them and
// resumes redelivery.
func (j *Journal) Recovered() []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Entry, len(j.recovered))
	copy(out, j.recovered)
	return out
}

// LiveBytes reports the aggregate payload bytes currently journaled.
func (j *Journal) LiveBytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.liveBytes
}

// Live reports the number of sessions currently in custody.
func (j *Journal) Live() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.live)
}

func (j *Journal) payloadPath(id wire.SessionID) string {
	return filepath.Join(j.dir, id.String()+PayloadSuffix)
}

// Stager streams one session's payload to its spill file; Commit makes
// the custody durable (fsync payload, journal the admit record, fsync
// journal), Abort discards it. Exactly one of the two must be called.
type Stager struct {
	j    *Journal
	e    Entry
	f    *os.File
	n    int64
	done bool
}

// Stage opens a payload spill file for e. Bytes written through the
// returned Stager are not custody until Commit returns nil.
func (j *Journal) Stage(e Entry) (*Stager, error) {
	if err := e.validate(); err != nil {
		return nil, err
	}
	j.mu.Lock()
	closed := j.closed
	j.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	f, err := os.OpenFile(j.payloadPath(e.Session), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return nil, err
	}
	return &Stager{j: j, e: e, f: f}, nil
}

// Write appends payload bytes to the spill file.
func (s *Stager) Write(p []byte) (int, error) {
	n, err := s.f.Write(p)
	s.n += int64(n)
	return n, err
}

// Commit finishes the stage: the payload must be complete (Total bytes
// written), it is pushed to stable storage per the fsync policy, and the
// admit record lands in the journal. After Commit returns nil the
// session survives a crash.
func (s *Stager) Commit() error {
	if s.done {
		return errors.New("custody: stager already finished")
	}
	if s.n != s.e.Total {
		s.Abort()
		return fmt.Errorf("custody: short stage: %d of %d bytes", s.n, s.e.Total)
	}
	s.done = true
	if s.j.cfg.Fsync == FsyncAlways {
		if err := s.f.Sync(); err != nil {
			s.f.Close()
			os.Remove(s.j.payloadPath(s.e.Session))
			return err
		}
	}
	if err := s.f.Close(); err != nil {
		os.Remove(s.j.payloadPath(s.e.Session))
		return err
	}
	return s.j.admit(s.e)
}

// Abort discards the spill file; the session never entered custody.
func (s *Stager) Abort() {
	if s.done {
		return
	}
	s.done = true
	s.f.Close()
	os.Remove(s.j.payloadPath(s.e.Session))
}

// admit appends the admit record under the journal lock.
func (j *Journal) admit(e Entry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		os.Remove(j.payloadPath(e.Session))
		return ErrClosed
	}
	if _, err := j.f.Write(frameRecord(encodeAdmit(&e))); err != nil {
		os.Remove(j.payloadPath(e.Session))
		return err
	}
	if j.cfg.Fsync == FsyncAlways {
		if err := j.f.Sync(); err != nil {
			os.Remove(j.payloadPath(e.Session))
			return err
		}
	}
	j.live[e.Session] = e
	j.liveBytes += e.Total
	return nil
}

// Complete retires a custody session: a done record is journaled, the
// payload file is removed, and the journal compacts once enough retired
// records accumulate. Completing an unknown session is a no-op.
func (j *Journal) Complete(id wire.SessionID, delivered bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	e, ok := j.live[id]
	if !ok {
		return nil
	}
	if _, err := j.f.Write(frameRecord(encodeDone(id, delivered))); err != nil {
		return err
	}
	if j.cfg.Fsync == FsyncAlways {
		if err := j.f.Sync(); err != nil {
			return err
		}
	}
	delete(j.live, id)
	j.liveBytes -= e.Total
	os.Remove(j.payloadPath(id))
	j.dead++
	if j.dead >= j.cfg.CompactEvery {
		if err := j.rewriteLocked(); err != nil {
			return err
		}
	}
	return nil
}

// OpenPayload opens a custody session's payload file for one redelivery
// attempt. Each attempt opens its own handle, so the payload pins no
// heap between attempts — the journal file IS the custody buffer.
func (j *Journal) OpenPayload(id wire.SessionID) (*os.File, error) {
	return os.Open(j.payloadPath(id))
}

// Close releases the journal file handle. Live entries stay on disk for
// the next Open.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}

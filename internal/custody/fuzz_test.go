package custody

import (
	"bytes"
	"io"
	"testing"

	"lsl/internal/wire"
)

// FuzzReadJournalRecord drives the record decoder with arbitrary bytes:
// it must never panic, never allocate beyond MaxRecordLen, and anything
// it accepts must satisfy the same structural limits the forwarding
// path enforces — a corrupt journal may lose custody entries but can
// never resurrect an undeliverable one.
func FuzzReadJournalRecord(f *testing.F) {
	e := Entry{
		Session:    wire.SessionID{1, 2, 3},
		Flags:      wire.FlagDigest,
		Route:      []string{"a:1", "b:2", "c:3"},
		ContentLen: 512,
		Total:      528,
	}
	f.Add(frameRecord(encodeAdmit(&e)))
	f.Add(frameRecord(encodeDone(e.Session, true)))
	f.Add(frameRecord(encodeDone(e.Session, false)))
	// Truncated frames and corrupted checksums.
	full := frameRecord(encodeAdmit(&e))
	f.Add(full[:len(full)-3])
	f.Add(full[:5])
	flipped := append([]byte(nil), full...)
	flipped[6] ^= 0xff
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, raw []byte) {
		rec, err := ReadRecord(bytes.NewReader(raw))
		if err != nil {
			if rec != nil {
				t.Fatal("record returned alongside error")
			}
			return
		}
		switch rec.Type {
		case RecAdmit:
			if err := rec.Entry.validate(); err != nil {
				t.Fatalf("decoder accepted invalid entry: %v", err)
			}
			// Accepted records must survive a re-encode round trip.
			re, err := ReadRecord(bytes.NewReader(frameRecord(encodeAdmit(&rec.Entry))))
			if err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			if re.Entry.Session != rec.Entry.Session || re.Entry.Total != rec.Entry.Total ||
				len(re.Entry.Route) != len(rec.Entry.Route) {
				t.Fatal("re-encode mismatch")
			}
		case RecDone:
		default:
			t.Fatalf("decoder produced unknown record type %d", rec.Type)
		}
	})
}

// Fuzz the scan path end-to-end: arbitrary journal bytes must recover
// without panicking, and a valid prefix followed by garbage must keep
// the prefix.
func FuzzJournalScan(f *testing.F) {
	e := Entry{Session: wire.SessionID{9}, Route: []string{"x:1", "y:2"}, ContentLen: 4, Total: 4}
	valid := frameRecord(encodeAdmit(&e))
	f.Add(append(append([]byte(nil), valid...), 0xde, 0xad))
	f.Add([]byte("not a journal at all"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		r := bytes.NewReader(raw)
		for {
			_, err := ReadRecord(r)
			if err == io.EOF || err == ErrCorrupt || err == ErrTruncated {
				return
			}
			if err != nil {
				t.Fatalf("unexpected error class: %v", err)
			}
		}
	})
}

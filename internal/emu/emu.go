// Package emu provides userspace WAN emulation for the real LSL stack:
// TCP proxies on loopback that impose one-way propagation delay and a
// token-bucket rate limit in each direction. Examples and integration
// tests use it to give the cascaded-socket implementation wide-area
// characteristics without privileges (the kernel's own loopback TCP cannot
// otherwise exhibit meaningful latency).
//
// This substitutes for the paper's Abilene paths for *functional*
// purposes; the throughput experiments proper run on the deterministic
// simulator (internal/netsim and friends), because userspace shaping
// cannot inject packet loss into a kernel TCP flow without privileges.
package emu

import (
	"io"
	"net"
	"sync"
	"time"
)

// Shape describes one direction's emulated conditions.
type Shape struct {
	// Delay is the added one-way propagation delay.
	Delay time.Duration
	// RateBps caps throughput in bits per second (0 = unlimited).
	RateBps float64
	// ChunkSize is the shaping granularity (default 16 KiB).
	ChunkSize int
}

func (s Shape) withDefaults() Shape {
	if s.ChunkSize == 0 {
		s.ChunkSize = 16 << 10
	}
	return s
}

// Proxy is a shaping TCP relay: connections accepted on Addr are piped to
// Target with Up applied client→target and Down applied target→client.
type Proxy struct {
	Target string
	Up     Shape
	Down   Shape

	ln     net.Listener
	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewProxy builds a proxy toward target.
func NewProxy(target string, up, down Shape) *Proxy {
	return &Proxy{Target: target, Up: up.withDefaults(), Down: down.withDefaults()}
}

// Start binds a loopback port and begins relaying. It returns the
// listening address.
func (p *Proxy) Start() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	p.mu.Lock()
	p.ln = ln
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				p.handle(nc)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Addr returns the proxy's listening address ("" before Start).
func (p *Proxy) Addr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ln == nil {
		return ""
	}
	return p.ln.Addr().String()
}

// Close stops the proxy and waits for relays to finish.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	ln := p.ln
	p.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	p.wg.Wait()
}

func (p *Proxy) handle(client net.Conn) {
	server, err := net.Dial("tcp", p.Target)
	if err != nil {
		client.Close()
		return
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		shapedCopy(server, client, p.Up)
		halfClose(server)
	}()
	go func() {
		defer wg.Done()
		shapedCopy(client, server, p.Down)
		halfClose(client)
	}()
	wg.Wait()
	client.Close()
	server.Close()
}

func halfClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
}

// shapedCopy relays src to dst while imposing the shape: each chunk is
// released no earlier than its token-bucket send time, then written after
// the propagation delay. Delay is pipelined (it postpones the write, not
// the next read), so it models latency rather than throughput loss.
func shapedCopy(dst io.Writer, src io.Reader, s Shape) {
	s = s.withDefaults()
	type chunk struct {
		data []byte
		due  time.Time
	}
	// A small in-flight channel keeps the reader ahead of the writer by a
	// bounded amount — an emulated bandwidth-delay product.
	pipe := make(chan chunk, 64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for c := range pipe {
			if wait := time.Until(c.due); wait > 0 {
				time.Sleep(wait)
			}
			if _, err := dst.Write(c.data); err != nil {
				// Drain remaining chunks so the reader can exit.
				for range pipe {
				}
				return
			}
		}
	}()
	buf := make([]byte, s.ChunkSize)
	var nextSend time.Time
	for {
		n, err := src.Read(buf)
		if n > 0 {
			now := time.Now()
			if nextSend.Before(now) {
				nextSend = now
			}
			var txTime time.Duration
			if s.RateBps > 0 {
				txTime = time.Duration(float64(n*8) / s.RateBps * float64(time.Second))
			}
			release := nextSend.Add(txTime)
			nextSend = release
			// Apply backpressure when the emulated pipe is too far ahead.
			if ahead := time.Until(release); ahead > 200*time.Millisecond {
				time.Sleep(ahead - 200*time.Millisecond)
			}
			data := make([]byte, n)
			copy(data, buf[:n])
			pipe <- chunk{data: data, due: release.Add(s.Delay)}
		}
		if err != nil {
			break
		}
	}
	close(pipe)
	<-done
}

// Chain builds one proxy per hop address, returning the rewritten
// addresses: Chain(["a:1","b:2"], shape) yields proxy addresses that relay
// to a:1 and b:2 with the shape applied in both directions. Useful for
// giving every sublink of an LSL route its own emulated WAN segment.
func Chain(targets []string, up, down Shape) ([]string, []*Proxy, error) {
	addrs := make([]string, 0, len(targets))
	proxies := make([]*Proxy, 0, len(targets))
	for _, tgt := range targets {
		p := NewProxy(tgt, up, down)
		a, err := p.Start()
		if err != nil {
			for _, q := range proxies {
				q.Close()
			}
			return nil, nil, err
		}
		addrs = append(addrs, a)
		proxies = append(proxies, p)
	}
	return addrs, proxies, nil
}

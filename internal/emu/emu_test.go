package emu

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer returns the address of a TCP server that echoes all input.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(nc, nc)
				nc.Close()
			}()
		}
	}()
	return ln.Addr().String()
}

// sinkServer consumes everything and reports the byte count.
func sinkServer(t *testing.T) (string, chan int) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	counts := make(chan int, 4)
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				n, _ := io.Copy(io.Discard, nc)
				nc.Close()
				counts <- int(n)
			}()
		}
	}()
	return ln.Addr().String(), counts
}

func TestProxyPassesDataIntact(t *testing.T) {
	target := echoServer(t)
	p := NewProxy(target, Shape{}, Shape{})
	addr, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	msg := bytes.Repeat([]byte("0123456789"), 5000)
	go func() {
		nc.Write(msg)
		nc.(*net.TCPConn).CloseWrite()
	}()
	got, err := io.ReadAll(nc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo corrupted: %d vs %d bytes", len(got), len(msg))
	}
}

func TestProxyAddsLatency(t *testing.T) {
	target := echoServer(t)
	p := NewProxy(target, Shape{Delay: 30 * time.Millisecond}, Shape{Delay: 30 * time.Millisecond})
	addr, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	start := time.Now()
	nc.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(nc, buf); err != nil {
		t.Fatal(err)
	}
	rtt := time.Since(start)
	if rtt < 55*time.Millisecond {
		t.Fatalf("rtt %v, want >= ~60ms", rtt)
	}
	if rtt > 500*time.Millisecond {
		t.Fatalf("rtt %v unreasonably high", rtt)
	}
}

func TestProxyRateLimits(t *testing.T) {
	target, counts := sinkServer(t)
	// 8 Mbit/s up: 1 MB should take ~1s.
	p := NewProxy(target, Shape{RateBps: 8e6}, Shape{})
	addr, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1<<20)
	start := time.Now()
	if _, err := nc.Write(payload); err != nil {
		t.Fatal(err)
	}
	nc.(*net.TCPConn).CloseWrite()
	select {
	case n := <-counts:
		if n != len(payload) {
			t.Fatalf("sink got %d", n)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timeout")
	}
	elapsed := time.Since(start)
	nc.Close()
	if elapsed < 700*time.Millisecond {
		t.Fatalf("1MB at 8Mbit/s finished in %v; rate limit ineffective", elapsed)
	}
	if elapsed > 4*time.Second {
		t.Fatalf("took %v; shaper too slow", elapsed)
	}
}

func TestProxyHalfCloseForwardsEOF(t *testing.T) {
	target, counts := sinkServer(t)
	p := NewProxy(target, Shape{Delay: 5 * time.Millisecond}, Shape{})
	addr, _ := p.Start()
	defer p.Close()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Write([]byte("abc"))
	nc.(*net.TCPConn).CloseWrite()
	select {
	case n := <-counts:
		if n != 3 {
			t.Fatalf("n=%d", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("EOF not propagated")
	}
}

func TestChainBuildsPerHopProxies(t *testing.T) {
	t1 := echoServer(t)
	t2 := echoServer(t)
	addrs, proxies, err := Chain([]string{t1, t2}, Shape{Delay: time.Millisecond}, Shape{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, p := range proxies {
			p.Close()
		}
	}()
	if len(addrs) != 2 || addrs[0] == addrs[1] {
		t.Fatalf("addrs=%v", addrs)
	}
	for _, a := range addrs {
		nc, err := net.Dial("tcp", a)
		if err != nil {
			t.Fatal(err)
		}
		nc.Write([]byte("hi"))
		buf := make([]byte, 2)
		if _, err := io.ReadFull(nc, buf); err != nil || string(buf) != "hi" {
			t.Fatalf("chain echo failed: %v %q", err, buf)
		}
		nc.Close()
	}
}

func TestProxyCloseIdempotentAndUnblocks(t *testing.T) {
	target := echoServer(t)
	p := NewProxy(target, Shape{}, Shape{})
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		p.Close()
		p.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Close hung")
	}
}

// Package stats provides the small statistical toolkit used throughout the
// LSL reproduction: location and spread estimators over repeated experiment
// runs, percentiles, confidence intervals, and resampling of time series
// onto common grids so that per-run traces can be averaged the way the
// paper averages sequence-number growth curves.
//
// All functions operate on plain float64 slices and never mutate their
// inputs unless documented otherwise.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned (or causes NaN results) when an estimator that needs
// at least one sample is given none.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs (0 for an empty slice).
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the smallest element of xs, or NaN if xs is empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or NaN if xs is empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Variance returns the unbiased (n-1) sample variance of xs.
// It returns 0 for a single sample and NaN for an empty slice.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return 0
	}
	mu := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	v := Variance(xs)
	if math.IsNaN(v) {
		return v
	}
	return math.Sqrt(v)
}

// Median returns the median of xs without mutating it.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns NaN for an empty slice
// and clamps p into [0,100].
func Percentile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MeanCI returns the sample mean of xs together with the half-width of an
// approximate 95% confidence interval (1.96 standard errors). With fewer
// than two samples the half-width is 0.
func MeanCI(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	se := StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, 1.96 * se
}

// ArgMin returns the index of the smallest element of xs, or -1 if empty.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// ArgMax returns the index of the largest element of xs, or -1 if empty.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// ArgMedian returns the index of the element of xs closest to the median
// from below (the lower median element itself), or -1 if empty. This is the
// selection rule used for the paper's "median observed number of
// retransmissions" trace figures: pick an actual run, not an interpolation.
func ArgMedian(xs []float64) int {
	n := len(xs)
	if n == 0 {
		return -1
	}
	type kv struct {
		i int
		v float64
	}
	s := make([]kv, n)
	for i, x := range xs {
		s[i] = kv{i, x}
	}
	sort.Slice(s, func(a, b int) bool {
		if s[a].v != s[b].v {
			return s[a].v < s[b].v
		}
		return s[a].i < s[b].i
	})
	return s[(n-1)/2].i
}

// GeoMean returns the geometric mean of xs. All elements must be positive;
// a non-positive element yields NaN.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInterpInside(t *testing.T) {
	s := Series{{0, 0}, {10, 100}}
	almost(t, s.Interp(5), 50, 1e-12)
	almost(t, s.Interp(2.5), 25, 1e-12)
}

func TestInterpClampsOutside(t *testing.T) {
	s := Series{{1, 10}, {2, 20}}
	almost(t, s.Interp(0), 10, 0)
	almost(t, s.Interp(3), 20, 0)
}

func TestInterpEmptyNaN(t *testing.T) {
	var s Series
	if !math.IsNaN(s.Interp(1)) {
		t.Fatal("want NaN")
	}
}

func TestInterpExactPoints(t *testing.T) {
	s := Series{{0, 1}, {1, 4}, {2, 9}, {3, 16}}
	for _, p := range s {
		almost(t, s.Interp(p.X), p.Y, 1e-12)
	}
}

func TestInterpDuplicateX(t *testing.T) {
	s := Series{{0, 0}, {1, 5}, {1, 7}, {2, 7}}
	got := s.Interp(1)
	if got < 5-1e-9 || got > 7+1e-9 {
		t.Fatalf("duplicate-x interp out of range: %v", got)
	}
}

func TestMaxX(t *testing.T) {
	s := Series{{0, 0}, {4, 1}}
	almost(t, s.MaxX(), 4, 0)
	var e Series
	if !math.IsNaN(e.MaxX()) {
		t.Fatal("want NaN")
	}
}

func TestResampleGrid(t *testing.T) {
	s := Series{{0, 0}, {10, 10}}
	r := s.Resample(10, 11)
	if len(r) != 11 {
		t.Fatalf("len=%d", len(r))
	}
	for i, p := range r {
		almost(t, p.X, float64(i), 1e-9)
		almost(t, p.Y, float64(i), 1e-9)
	}
}

func TestResampleMinPoints(t *testing.T) {
	s := Series{{0, 1}, {1, 2}}
	r := s.Resample(1, 0)
	if len(r) != 2 {
		t.Fatalf("len=%d, want 2", len(r))
	}
}

func TestAverageSeriesIdentical(t *testing.T) {
	a := Series{{0, 0}, {2, 4}}
	avg := AverageSeries([]Series{a, a, a}, 5)
	almost(t, avg.Interp(1), 2, 1e-9)
	almost(t, avg.Interp(2), 4, 1e-9)
}

func TestAverageSeriesTwoLines(t *testing.T) {
	a := Series{{0, 0}, {2, 2}}
	b := Series{{0, 0}, {2, 6}}
	avg := AverageSeries([]Series{a, b}, 5)
	almost(t, avg.Interp(2), 4, 1e-9)
}

// The paper's Figure 14 flattening effect: a finished (short) run clamps at
// its final value while a longer run continues, so the average's tail slope
// drops but stays nonnegative.
func TestAverageSeriesClampTail(t *testing.T) {
	short := Series{{0, 0}, {1, 10}}
	long := Series{{0, 0}, {4, 10}}
	avg := AverageSeries([]Series{short, long}, 9)
	// At x=4: short clamps at 10, long at 10 -> avg 10.
	almost(t, avg[len(avg)-1].Y, 10, 1e-9)
	// At x=1: short=10, long=2.5 -> 6.25.
	almost(t, avg.Interp(1), 6.25, 1e-9)
	// Monotone nondecreasing.
	for i := 1; i < len(avg); i++ {
		if avg[i].Y < avg[i-1].Y-1e-9 {
			t.Fatalf("average not monotone at %d: %v < %v", i, avg[i].Y, avg[i-1].Y)
		}
	}
}

func TestAverageSeriesEmpty(t *testing.T) {
	if AverageSeries(nil, 5) != nil {
		t.Fatal("want nil")
	}
}

// Property: interpolation of a monotone series is monotone and bounded.
func TestInterpMonotoneProperty(t *testing.T) {
	f := func(ys []uint16, q1, q2 uint16) bool {
		if len(ys) < 2 {
			return true
		}
		s := make(Series, len(ys))
		acc := 0.0
		for i, y := range ys {
			acc += float64(y % 100)
			s[i] = Point{X: float64(i), Y: acc}
		}
		x1 := float64(q1) / 65535 * s.MaxX()
		x2 := float64(q2) / 65535 * s.MaxX()
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		v1, v2 := s.Interp(x1), s.Interp(x2)
		return v1 <= v2+1e-9 && v1 >= s[0].Y-1e-9 && v2 <= s[len(s)-1].Y+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

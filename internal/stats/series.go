package stats

import "math"

// Point is a single (x, y) sample of a time series.
type Point struct {
	X float64
	Y float64
}

// Series is an ordered list of points with non-decreasing X. The trace
// analysis code resamples per-run sequence-number curves into Series on a
// common grid so they can be averaged across iterations, mirroring the
// "Average" curves of the paper's Figures 11-14.
type Series []Point

// Interp returns the linearly interpolated Y value of s at x. Outside the
// domain it clamps to the first/last Y. An empty series returns NaN.
func (s Series) Interp(x float64) float64 {
	n := len(s)
	if n == 0 {
		return math.NaN()
	}
	if x <= s[0].X {
		return s[0].Y
	}
	if x >= s[n-1].X {
		return s[n-1].Y
	}
	// Binary search for the bracketing segment.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if s[mid].X <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	a, b := s[lo], s[hi]
	if b.X == a.X {
		return b.Y
	}
	frac := (x - a.X) / (b.X - a.X)
	return a.Y*(1-frac) + b.Y*frac
}

// MaxX returns the largest X in s, or NaN if empty.
func (s Series) MaxX() float64 {
	if len(s) == 0 {
		return math.NaN()
	}
	return s[len(s)-1].X
}

// Resample returns s evaluated on a uniform grid of n points spanning
// [0, xmax]. n must be >= 2.
func (s Series) Resample(xmax float64, n int) Series {
	if n < 2 {
		n = 2
	}
	out := make(Series, n)
	for i := 0; i < n; i++ {
		x := xmax * float64(i) / float64(n-1)
		out[i] = Point{X: x, Y: s.Interp(x)}
	}
	return out
}

// AverageSeries resamples every input series onto a common uniform grid
// spanning [0, max over series of MaxX] and returns the pointwise mean.
// Series that end before the grid point are clamped at their final value,
// which reproduces the flattening the paper notes at the tail of its
// averaged direct-TCP curve (Figure 14): finished runs hold their final
// sequence number while slower runs continue.
func AverageSeries(all []Series, gridN int) Series {
	if len(all) == 0 {
		return nil
	}
	var xmax float64
	for _, s := range all {
		if m := s.MaxX(); !math.IsNaN(m) && m > xmax {
			xmax = m
		}
	}
	if gridN < 2 {
		gridN = 2
	}
	out := make(Series, gridN)
	for i := 0; i < gridN; i++ {
		x := xmax * float64(i) / float64(gridN-1)
		var sum float64
		var cnt int
		for _, s := range all {
			y := s.Interp(x)
			if !math.IsNaN(y) {
				sum += y
				cnt++
			}
		}
		y := math.NaN()
		if cnt > 0 {
			y = sum / float64(cnt)
		}
		out[i] = Point{X: x, Y: y}
	}
	return out
}

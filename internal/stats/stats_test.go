package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("got %v, want %v (tol %v)", got, want, tol)
	}
}

func TestMeanBasic(t *testing.T) {
	almost(t, Mean([]float64{1, 2, 3, 4}), 2.5, 1e-12)
}

func TestMeanSingle(t *testing.T) {
	almost(t, Mean([]float64{7}), 7, 1e-12)
}

func TestMeanEmptyNaN(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("mean of empty should be NaN")
	}
}

func TestSum(t *testing.T) {
	almost(t, Sum([]float64{1.5, 2.5}), 4, 1e-12)
	almost(t, Sum(nil), 0, 1e-12)
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	almost(t, Min(xs), -1, 0)
	almost(t, Max(xs), 5, 0)
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("empty min/max should be NaN")
	}
}

func TestVarianceKnown(t *testing.T) {
	// Sample variance of {2,4,4,4,5,5,7,9} with n-1 is 32/7.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	almost(t, Variance(xs), 32.0/7.0, 1e-12)
}

func TestVarianceDegenerate(t *testing.T) {
	almost(t, Variance([]float64{42}), 0, 0)
	if !math.IsNaN(Variance(nil)) {
		t.Fatal("variance of empty should be NaN")
	}
}

func TestStdDevConstant(t *testing.T) {
	almost(t, StdDev([]float64{5, 5, 5, 5}), 0, 1e-12)
}

func TestMedianOdd(t *testing.T) {
	almost(t, Median([]float64{9, 1, 5}), 5, 1e-12)
}

func TestMedianEven(t *testing.T) {
	almost(t, Median([]float64{1, 2, 3, 10}), 2.5, 1e-12)
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentileEndpoints(t *testing.T) {
	xs := []float64{10, 20, 30}
	almost(t, Percentile(xs, 0), 10, 0)
	almost(t, Percentile(xs, 100), 30, 0)
	almost(t, Percentile(xs, 50), 20, 0)
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	almost(t, Percentile(xs, 25), 2.5, 1e-12)
}

func TestPercentileClamps(t *testing.T) {
	xs := []float64{1, 2}
	almost(t, Percentile(xs, -5), 1, 0)
	almost(t, Percentile(xs, 200), 2, 0)
}

func TestMeanCI(t *testing.T) {
	mean, hw := MeanCI([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	almost(t, mean, 5.5, 1e-12)
	if hw <= 0 {
		t.Fatalf("half-width should be positive, got %v", hw)
	}
	_, hw1 := MeanCI([]float64{3})
	almost(t, hw1, 0, 0)
}

func TestArgMinMax(t *testing.T) {
	xs := []float64{5, 2, 8, 2}
	if ArgMin(xs) != 1 {
		t.Fatalf("ArgMin = %d", ArgMin(xs))
	}
	if ArgMax(xs) != 2 {
		t.Fatalf("ArgMax = %d", ArgMax(xs))
	}
	if ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Fatal("empty should give -1")
	}
}

func TestArgMedianPicksActualElement(t *testing.T) {
	xs := []float64{10, 3, 7, 1, 9}
	i := ArgMedian(xs)
	if xs[i] != 7 {
		t.Fatalf("ArgMedian picked %v, want 7", xs[i])
	}
}

func TestArgMedianEven(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	i := ArgMedian(xs)
	if xs[i] != 2 { // lower median of {1,2,3,4}
		t.Fatalf("ArgMedian picked %v, want 2", xs[i])
	}
}

func TestGeoMean(t *testing.T) {
	almost(t, GeoMean([]float64{1, 4}), 2, 1e-12)
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Fatal("GeoMean with nonpositive should be NaN")
	}
}

// Property: for any sample, Min <= Percentile(p) <= Max and percentiles are
// monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1 := Percentile(xs, p1)
		v2 := Percentile(xs, p2)
		return v1 <= v2+1e-9 && v1 >= Min(xs)-1e-9 && v2 <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the mean lies between min and max.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Percentile agrees with direct sorting at rank points.
func TestPercentileRankPointsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		sorted := make([]float64, n)
		copy(sorted, xs)
		sort.Float64s(sorted)
		for i := 0; i < n; i++ {
			p := 100 * float64(i) / float64(max(n-1, 1))
			got := Percentile(xs, p)
			if math.Abs(got-sorted[i]) > 1e-9 {
				t.Fatalf("trial %d: percentile(%v)=%v want %v", trial, p, got, sorted[i])
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package depot

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"lsl/internal/core"
	"lsl/internal/wire"
)

// holdTarget accepts connections, completes the session handshake, and
// then holds every connection open without reading payload or closing —
// a receiver that never lets the relay drain.
func holdTarget(t *testing.T) (addr string, release func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				hdr, err := wire.ReadOpenHeader(nc)
				if err != nil {
					return
				}
				nc.Write((&wire.AcceptFrame{Code: wire.CodeOK, Session: hdr.Session}).Encode())
				<-hold
			}()
		}
	}()
	var once bool
	return ln.Addr().String(), func() {
		if !once {
			once = true
			close(hold)
			ln.Close()
		}
	}
}

// Close under load: relays mid-stream and a staged delivery mid-retry
// must not pin shutdown past the drain timeout — they are cancelled,
// recorded with the "canceled" outcome, and Close returns promptly.
func TestDepotCloseCancelsInFlightSessions(t *testing.T) {
	targetAddr, release := holdTarget(t)
	defer release()
	d, depotAddr := runDepot(t, Config{
		DrainTimeout:       200 * time.Millisecond,
		DialTimeout:        300 * time.Millisecond,
		StageRetryInterval: 100 * time.Millisecond,
		StageDeadline:      time.Hour, // only cancellation may stop the retries
	})

	// Two relay sessions mid-stream against a receiver that never drains.
	for i := 0; i < 2; i++ {
		nc := openThrough(t, depotAddr, targetAddr)
		defer nc.Close()
		if _, err := wire.ReadAcceptFrame(nc); err != nil {
			t.Fatal(err)
		}
		if _, err := nc.Write([]byte("mid-stream payload")); err != nil {
			t.Fatal(err)
		}
	}

	// One staged session whose next hop is unreachable: the delivery
	// goroutine loops dial-fail -> backoff when Close arrives.
	payload := bytes.Repeat([]byte("stuck"), 1000)
	c, err := core.Dial(context.Background(),
		core.Route{Via: []string{depotAddr}, Target: "127.0.0.1:1"},
		core.WithStaged(), core.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	c.Write(payload)
	c.CloseWrite()
	c.Close()
	waitFor := time.Now().Add(5 * time.Second)
	for d.Stats().Staged == 0 && time.Now().Before(waitFor) {
		time.Sleep(10 * time.Millisecond)
	}
	if d.Stats().Staged != 1 {
		t.Fatalf("staged session never took custody: %+v", d.Stats())
	}

	start := time.Now()
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	elapsed := time.Since(start)
	// Drain timeout plus teardown slack; without cancellation the staged
	// retry loop alone would pin Close for the full stage deadline.
	if elapsed > 3*time.Second {
		t.Fatalf("Close took %v, want < 3s", elapsed)
	}

	st := d.Stats()
	if st.Canceled != 3 {
		t.Fatalf("canceled=%d, want 3 (2 relays + 1 staged): %+v", st.Canceled, st)
	}
	if st.Active != 0 {
		t.Fatalf("active=%d after Close", st.Active)
	}

	snap := d.Sessions()
	if len(snap.Live) != 0 {
		t.Fatalf("live sessions survived Close: %+v", snap.Live)
	}
	var canceledRelay, canceledStaged int
	for _, info := range snap.Recent {
		if info.Outcome != OutcomeCanceled {
			continue
		}
		switch info.Kind {
		case KindRelay:
			canceledRelay++
		case KindStaged:
			canceledStaged++
		}
	}
	if canceledRelay != 2 || canceledStaged != 1 {
		t.Fatalf("ring canceled outcomes: relay=%d staged=%d (recent: %+v)",
			canceledRelay, canceledStaged, snap.Recent)
	}

	// The metrics surface agrees with the ring.
	var buf bytes.Buffer
	if err := d.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("lsd_sessions_canceled_total 3")) {
		t.Fatalf("canceled counter missing from metrics:\n%s", buf.String())
	}
}

// A depot with nothing in flight must close instantly, well inside the
// drain timeout, and report no cancellations.
func TestDepotCloseIdleIsImmediate(t *testing.T) {
	d, _ := runDepot(t, Config{DrainTimeout: 10 * time.Second})
	start := time.Now()
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("idle Close took %v", elapsed)
	}
	if got := d.Stats().Canceled; got != 0 {
		t.Fatalf("canceled=%d on idle close", got)
	}
	// Close is idempotent.
	if err := d.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

package depot

import (
	"bytes"
	"context"
	"io"
	"net"
	"testing"
	"time"

	"lsl/internal/wire"
)

// rawTarget accepts one TCP connection, reads an open header, replies with
// an accept frame, then echoes everything it reads back, reversed in
// framing terms (just an echo).
func rawTarget(t *testing.T) (addr string, received chan []byte) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	received = make(chan []byte, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		hdr, err := wire.ReadOpenHeader(nc)
		if err != nil {
			return
		}
		nc.Write((&wire.AcceptFrame{Code: wire.CodeOK, Session: hdr.Session}).Encode())
		data, _ := io.ReadAll(nc)
		received <- data
	}()
	return ln.Addr().String(), received
}

func runDepot(t *testing.T, cfg Config) (*Depot, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d := New(cfg)
	go d.Serve(ln)
	t.Cleanup(func() { d.Close() })
	return d, ln.Addr().String()
}

func openThrough(t *testing.T, depotAddr, targetAddr string) net.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", depotAddr)
	if err != nil {
		t.Fatal(err)
	}
	hdr := &wire.OpenHeader{
		Session:    wire.NewSessionID(),
		Route:      []string{depotAddr, targetAddr},
		ContentLen: wire.UnknownLength,
	}
	enc, _ := hdr.Encode()
	if _, err := nc.Write(enc); err != nil {
		t.Fatal(err)
	}
	return nc
}

func TestDepotForwardsHeaderAndPayload(t *testing.T) {
	targetAddr, received := rawTarget(t)
	d, depotAddr := runDepot(t, Config{})
	nc := openThrough(t, depotAddr, targetAddr)
	defer nc.Close()
	// Accept frame relayed backward through the depot.
	acc, err := wire.ReadAcceptFrame(nc)
	if err != nil || acc.Code != wire.CodeOK {
		t.Fatalf("accept: %v %+v", err, acc)
	}
	payload := bytes.Repeat([]byte("abc"), 10000)
	nc.Write(payload)
	nc.(*net.TCPConn).CloseWrite()
	select {
	case got := <-received:
		if !bytes.Equal(got, payload) {
			t.Fatal("payload mismatch")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
	st := d.Stats()
	if st.Accepted != 1 {
		t.Fatalf("accepted=%d", st.Accepted)
	}
	if st.BytesForward < uint64(len(payload)) {
		t.Fatalf("bytes forward=%d", st.BytesForward)
	}
}

func TestDepotAdvancesHopIndex(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	hopIdx := make(chan uint8, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		hdr, err := wire.ReadOpenHeader(nc)
		if err != nil {
			return
		}
		hopIdx <- hdr.HopIndex
	}()
	_, depotAddr := runDepot(t, Config{})
	nc := openThrough(t, depotAddr, ln.Addr().String())
	defer nc.Close()
	select {
	case h := <-hopIdx:
		if h != 1 {
			t.Fatalf("hop index %d, want 1", h)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestDepotRejectsMalformedHeader(t *testing.T) {
	d, depotAddr := runDepot(t, Config{HandshakeTimeout: time.Second})
	nc, err := net.Dial("tcp", depotAddr)
	if err != nil {
		t.Fatal(err)
	}
	nc.Write([]byte("GET / HTTP/1.0\r\n\r\n"))
	buf := make([]byte, 1)
	nc.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("expected connection close")
	}
	nc.Close()
	if d.Stats().RejectedProto == 0 {
		t.Fatal("proto rejection not counted")
	}
}

func TestDepotRejectsFinalHopHeader(t *testing.T) {
	_, depotAddr := runDepot(t, Config{})
	nc, err := net.Dial("tcp", depotAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	hdr := &wire.OpenHeader{
		Session: wire.NewSessionID(),
		Route:   []string{depotAddr}, // depot is the final hop: misroute
	}
	enc, _ := hdr.Encode()
	nc.Write(enc)
	acc, err := wire.ReadAcceptFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Code != wire.CodeRejectRoute {
		t.Fatalf("code=%s", wire.CodeString(acc.Code))
	}
}

func TestDepotDialFailureRejects(t *testing.T) {
	d, depotAddr := runDepot(t, Config{DialTimeout: time.Second})
	nc := openThrough(t, depotAddr, "127.0.0.1:1")
	defer nc.Close()
	acc, err := wire.ReadAcceptFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Code != wire.CodeRejectRoute {
		t.Fatalf("code=%s", wire.CodeString(acc.Code))
	}
	if d.Stats().RejectedRoute != 1 {
		t.Fatal("route rejection not counted")
	}
	if d.Stats().DialFailures != 1 {
		t.Fatalf("dial failures = %d, want 1", d.Stats().DialFailures)
	}
	// The session ring distinguishes a dead next hop from a malformed
	// route even though both reject with the same wire code.
	deadline := time.Now().Add(5 * time.Second)
	for {
		recent := d.Sessions().Recent
		if len(recent) == 1 && recent[0].Outcome == OutcomeDialFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring outcome never became %q: %+v", OutcomeDialFailed, recent)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDepotAdmissionControl(t *testing.T) {
	targetAddr, _ := rawTarget(t)
	_, depotAddr := runDepot(t, Config{MaxSessions: 1})
	first := openThrough(t, depotAddr, targetAddr)
	defer first.Close()
	if _, err := wire.ReadAcceptFrame(first); err != nil {
		t.Fatal(err)
	}
	second := openThrough(t, depotAddr, targetAddr)
	defer second.Close()
	acc, err := wire.ReadAcceptFrame(second)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Code != wire.CodeRejectBusy {
		t.Fatalf("code=%s", wire.CodeString(acc.Code))
	}
}

func TestDepotCloseUnblocksServe(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d := New(Config{})
	served := make(chan error, 1)
	go func() { served <- d.Serve(ln) }()
	time.Sleep(50 * time.Millisecond)
	if d.Addr() == nil {
		t.Fatal("no addr after serve")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}

func TestDepotCustomDialer(t *testing.T) {
	targetAddr, received := rawTarget(t)
	dialed := make(chan string, 1)
	_, depotAddr := runDepot(t, Config{
		Dial: func(ctx context.Context, network, addr string) (net.Conn, error) {
			dialed <- addr
			var d net.Dialer
			return d.DialContext(ctx, network, addr)
		},
	})
	nc := openThrough(t, depotAddr, targetAddr)
	defer nc.Close()
	if _, err := wire.ReadAcceptFrame(nc); err != nil {
		t.Fatal(err)
	}
	nc.Write([]byte("z"))
	nc.(*net.TCPConn).CloseWrite()
	<-received
	select {
	case a := <-dialed:
		if a != targetAddr {
			t.Fatalf("dialed %s", a)
		}
	default:
		t.Fatal("custom dialer unused")
	}
}

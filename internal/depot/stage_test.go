package depot

import (
	"bytes"
	"context"
	"io"
	"net"
	"testing"
	"time"

	"lsl/internal/core"
	"lsl/internal/wire"
)

// stagedDepot builds a depot tuned for fast staged-delivery tests.
func stagedDepot(t *testing.T, cfg Config) (*Depot, string) {
	t.Helper()
	if cfg.StageRetryInterval == 0 {
		cfg.StageRetryInterval = 100 * time.Millisecond
	}
	if cfg.StageDeadline == 0 {
		cfg.StageDeadline = 10 * time.Second
	}
	return runDepot(t, cfg)
}

func TestStagedDeliveryWhileTargetOnline(t *testing.T) {
	payload := bytes.Repeat([]byte("stage"), 20000)
	done := make(chan bool, 1)
	target, err := core.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	go func() {
		sc, err := target.Accept()
		if err != nil {
			return
		}
		defer sc.Close()
		data, err := io.ReadAll(sc)
		done <- err == nil && sc.Verified() && bytes.Equal(data, payload)
	}()

	d, depotAddr := stagedDepot(t, Config{})
	c, err := core.Dial(context.Background(),
		core.Route{Via: []string{depotAddr}, Target: target.Addr().String()},
		core.WithStaged(), core.WithDigest(), core.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	c.Write(payload)
	c.CloseWrite()
	c.Close() // initiator disconnects immediately after upload

	select {
	case ok := <-done:
		if !ok {
			t.Fatal("staged payload corrupted or unverified")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timeout")
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().StagedDelivered == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	st := d.Stats()
	if st.Staged != 1 || st.StagedDelivered != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// The headline capability: the receiver is offline during the upload and
// appears later; the depot retries and delivers.
func TestStagedDeliveryToLateReceiver(t *testing.T) {
	payload := bytes.Repeat([]byte("later"), 10000)

	// Reserve an address, then close it so the first delivery attempts fail.
	tmp, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	targetAddr := tmp.Addr().String()
	tmp.Close()

	d, depotAddr := stagedDepot(t, Config{DialTimeout: 500 * time.Millisecond})
	c, err := core.Dial(context.Background(),
		core.Route{Via: []string{depotAddr}, Target: targetAddr},
		core.WithStaged(), core.WithDigest(), core.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	c.CloseWrite()
	c.Close() // sender is gone before the receiver ever existed

	// Let the depot fail at least one attempt, then bring the target up.
	time.Sleep(300 * time.Millisecond)
	ln, err := net.Listen("tcp", targetAddr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", targetAddr, err)
	}
	target := core.NewListener(ln)
	defer target.Close()
	done := make(chan bool, 1)
	go func() {
		sc, err := target.Accept()
		if err != nil {
			return
		}
		defer sc.Close()
		data, err := io.ReadAll(sc)
		done <- err == nil && sc.Verified() && bytes.Equal(data, payload)
	}()

	select {
	case ok := <-done:
		if !ok {
			t.Fatal("late delivery corrupted")
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("late delivery never happened (stats %+v)", d.Stats())
	}
	// At least one refused attempt preceded the successful one, and both
	// are visible in the staged-attempt and dial-failure counters.
	st := d.Stats()
	if st.StagedDeliveryAttempts < 2 {
		t.Fatalf("staged delivery attempts = %d, want >= 2", st.StagedDeliveryAttempts)
	}
	if st.DialFailures < 1 {
		t.Fatalf("dial failures = %d, want >= 1", st.DialFailures)
	}
}

func TestStagedRequiresContentLength(t *testing.T) {
	_, depotAddr := stagedDepot(t, Config{})
	nc, err := net.Dial("tcp", depotAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	hdr := &wire.OpenHeader{
		Session:    wire.NewSessionID(),
		Flags:      wire.FlagStaged,
		Route:      []string{depotAddr, "t:1"},
		ContentLen: wire.UnknownLength,
	}
	enc, _ := hdr.Encode()
	nc.Write(enc)
	acc, err := wire.ReadAcceptFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Code != wire.CodeRejectProto {
		t.Fatalf("code=%s", wire.CodeString(acc.Code))
	}
}

func TestStagedRejectsOversizedCustody(t *testing.T) {
	_, depotAddr := stagedDepot(t, Config{MaxStageBytes: 1024})
	nc, err := net.Dial("tcp", depotAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	hdr := &wire.OpenHeader{
		Session:    wire.NewSessionID(),
		Flags:      wire.FlagStaged,
		Route:      []string{depotAddr, "t:1"},
		ContentLen: 10 << 20,
	}
	enc, _ := hdr.Encode()
	nc.Write(enc)
	acc, err := wire.ReadAcceptFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Code != wire.CodeRejectBusy {
		t.Fatalf("code=%s", wire.CodeString(acc.Code))
	}
}

func TestStagedAbandonedAfterDeadline(t *testing.T) {
	d, depotAddr := stagedDepot(t, Config{
		DialTimeout:        200 * time.Millisecond,
		StageRetryInterval: 50 * time.Millisecond,
		StageDeadline:      300 * time.Millisecond,
	})
	payload := []byte("doomed payload")
	c, err := core.Dial(context.Background(),
		core.Route{Via: []string{depotAddr}, Target: "127.0.0.1:1"},
		core.WithStaged(), core.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	c.Write(payload)
	c.CloseWrite()
	c.Close()
	deadline := time.Now().Add(10 * time.Second)
	for d.Stats().StagedAborted == 0 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if d.Stats().StagedAborted != 1 {
		t.Fatalf("stats: %+v", d.Stats())
	}
}

func TestStagedDialValidation(t *testing.T) {
	_, err := core.Dial(context.Background(), core.Route{Target: "t:1"},
		core.WithStaged(), core.WithContentLength(10))
	if err == nil {
		t.Fatal("staged without depot accepted")
	}
	_, err = core.Dial(context.Background(), core.Route{Via: []string{"d:1"}, Target: "t:1"},
		core.WithStaged())
	if err == nil {
		t.Fatal("staged without length accepted")
	}
}

// Staged custody at depot 1 followed by a synchronous hop through depot 2.
func TestStagedThroughSecondDepot(t *testing.T) {
	payload := bytes.Repeat([]byte("two-hop"), 5000)
	target, err := core.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	done := make(chan bool, 1)
	go func() {
		sc, err := target.Accept()
		if err != nil {
			return
		}
		defer sc.Close()
		data, err := io.ReadAll(sc)
		done <- err == nil && bytes.Equal(data, payload)
	}()
	_, d2Addr := runDepot(t, Config{})
	_, d1Addr := stagedDepot(t, Config{})
	c, err := core.Dial(context.Background(),
		core.Route{Via: []string{d1Addr, d2Addr}, Target: target.Addr().String()},
		core.WithStaged(), core.WithDigest(), core.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	c.Write(payload)
	c.CloseWrite()
	c.Close()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("two-hop staged delivery failed")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timeout")
	}
}

package depot

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"lsl/internal/backoff"
	"lsl/internal/wire"
	"lsl/internal/xfer"
)

// Staged (asynchronous) sessions: the paper's §III observes that "the
// ultimate sending and receiving ports need not exist at the same time",
// with depots providing application-controlled buffering to potentially
// anonymous clients. A session opened with wire.FlagStaged is accepted by
// the first depot itself: it takes custody of the complete payload
// (bounded by MaxStageBytes), acknowledges the initiator, and then
// delivers the payload over the remaining route asynchronously, retrying
// while the downstream is unreachable. The end-to-end MD5 trailer is
// stored and forwarded verbatim, so integrity verification still happens
// at the ultimate receiver.
//
// The whole custody path hangs off the depot-root context: retry backoff
// selects on ctx.Done instead of sleeping, so Close's drain-then-cancel
// sequence bounds how long a mid-retry delivery can pin shutdown.

// stage-related configuration (part of Config).
const (
	// DefaultMaxStageBytes bounds one staged session's custody buffer.
	DefaultMaxStageBytes = 64 << 20
	// DefaultStageRetryInterval is the redelivery backoff base.
	DefaultStageRetryInterval = 2 * time.Second
	// DefaultStageRetryMax caps the exponential redelivery backoff.
	DefaultStageRetryMax = 30 * time.Second
	// DefaultStageDeadline is how long the depot tries before discarding.
	DefaultStageDeadline = 5 * time.Minute
)

// handleStaged runs the custody path for a staged session: read the whole
// stream, acknowledge, deliver in the background. The session stays in the
// live registry until delivery succeeds, is abandoned, or is cancelled by
// shutdown.
func (d *Depot) handleStaged(ctx context.Context, up netConnLike, hdr *wire.OpenHeader) {
	defer up.Close()
	start := time.Now()
	info := SessionInfo{
		ID:       hdr.Session.String(),
		Kind:     KindStaged,
		Peer:     stagedPeer(up),
		Hop:      int(hdr.HopIndex),
		RouteLen: len(hdr.Route),
		Started:  start,
	}
	if next, ok := hdr.NextHop(); ok {
		info.NextHop = next
	}
	fail := func(outcome string) {
		info.Outcome = outcome
		info.DurationSeconds = time.Since(start).Seconds()
		d.sessions.record(info)
		d.sessionDur.With(outcome).Observe(info.DurationSeconds)
	}

	length := int64(0)
	if hdr.ContentLen == wire.UnknownLength {
		d.rejectedProto.Inc()
		d.logf("depot: staged session %s needs a content length", hdr.Session)
		d.writeControl(up, &wire.AcceptFrame{Code: wire.CodeRejectProto, Session: hdr.Session})
		fail(OutcomeRejectedProto)
		return
	}
	length = int64(hdr.ContentLen)
	total := length
	if hdr.Flags&wire.FlagDigest != 0 {
		total += wire.DigestLen
	}
	if total > d.cfg.MaxStageBytes {
		d.rejectedBusy.Inc()
		d.logf("depot: staged session %s too large (%d > %d)", hdr.Session, total, d.cfg.MaxStageBytes)
		d.writeControl(up, &wire.AcceptFrame{Code: wire.CodeRejectBusy, Session: hdr.Session})
		fail(OutcomeRejectedBusy)
		return
	}

	// Custody accept: the depot itself acknowledges the session before the
	// payload flows (the initiator can then disconnect as soon as its
	// upload completes).
	if !d.writeControl(up, &wire.AcceptFrame{Code: wire.CodeOK, Session: hdr.Session}) {
		fail(OutcomeStagedUpFailed)
		return
	}
	// The custody buffer outlives this handler (it rides the delivery
	// goroutine), so it cannot come from the relay pool.
	buf := make([]byte, total)
	unwatch := closeOnDone(ctx, up)
	_, err := io.ReadFull(up, buf)
	unwatch()
	if err != nil {
		if ctx.Err() != nil {
			d.canceled.Inc()
			d.logf("depot: staged session %s upload canceled by shutdown", hdr.Session)
			fail(OutcomeCanceled)
			return
		}
		d.logf("depot: staged session %s upload failed: %v", hdr.Session, err)
		fail(OutcomeStagedUpFailed)
		return
	}
	d.staged.Inc()
	d.stagedBytes.Add(uint64(total))
	d.logf("depot: staged session %s in custody (%d bytes), delivering to %v",
		hdr.Session, total, hdr.RemainingHops()[1:])

	ls := d.sessions.add(info)
	ls.bytesFwd.Add(uint64(total))
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		if err := d.deliverStaged(ctx, hdr, buf); err != nil {
			if ctx.Err() != nil {
				d.canceled.Inc()
				d.finishStaged(ls, OutcomeCanceled, start)
				d.logf("depot: staged session %s canceled by shutdown: %v", hdr.Session, err)
				return
			}
			d.stagedAborted.Inc()
			d.finishStaged(ls, OutcomeStagedAborted, start)
			d.logf("depot: staged session %s abandoned: %v", hdr.Session, err)
			return
		}
		d.stagedDelivered.Inc()
		d.finishStaged(ls, OutcomeStagedDeliver, start)
		d.logf("depot: staged session %s delivered", hdr.Session)
	}()
}

// finishStaged retires a staged session's registry entry and observes its
// end-to-end custody duration.
func (d *Depot) finishStaged(ls *liveSession, outcome string, start time.Time) {
	dur := time.Since(start)
	d.sessions.finish(ls, outcome, dur)
	d.sessionDur.With(outcome).Observe(dur.Seconds())
}

// stagedPeer names the uploading peer when the transport exposes one.
func stagedPeer(c netConnLike) string {
	if ra, ok := c.(interface{ RemoteAddr() net.Addr }); ok && ra.RemoteAddr() != nil {
		return ra.RemoteAddr().String()
	}
	return ""
}

// deliverStaged pushes a custody buffer over the remaining route, retrying
// with capped exponential backoff until the stage deadline or
// cancellation. Jitter is seeded from the depot's RetryJitterSeed XOR the
// session ID: deterministic under test, but concurrent staged sessions
// that failed together spread out instead of retrying in lockstep against
// a receiver that is just coming back (the thundering-herd mode of the
// old fixed-interval retry).
func (d *Depot) deliverStaged(ctx context.Context, hdr *wire.OpenHeader, payload []byte) error {
	next, ok := hdr.NextHop()
	if !ok {
		return fmt.Errorf("staged session terminates at a depot")
	}
	fwd := *hdr
	fwd.HopIndex++
	fwd.Flags &^= wire.FlagStaged // downstream runs as an ordinary session
	enc, err := fwd.Encode()
	if err != nil {
		return err
	}
	pol := backoff.Policy{Base: d.cfg.StageRetryInterval, Max: d.cfg.StageRetryMax}
	rng := rand.New(rand.NewSource(d.cfg.RetryJitterSeed ^ int64(binary.BigEndian.Uint64(fwd.Session[:8]))))
	deadline := time.Now().Add(d.cfg.StageDeadline)
	attempt := 0
	for {
		attempt++
		d.stagedAttempts.Inc()
		err := d.attemptDelivery(ctx, next, enc, payload, fwd.Session)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return fmt.Errorf("depot shutting down: %w", err)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("gave up after %d attempts: %w", attempt, err)
		}
		d.logf("depot: staged session %s delivery attempt %d failed: %v", fwd.Session, attempt, err)
		// Backoff that shutdown can interrupt — never an uninterruptible
		// sleep on the drain path.
		if err := backoff.Sleep(ctx, pol.Delay(attempt, rng)); err != nil {
			return fmt.Errorf("depot shutting down: %w", err)
		}
	}
}

func (d *Depot) attemptDelivery(ctx context.Context, next string, hdr, payload []byte, id wire.SessionID) error {
	dctx, cancel := context.WithTimeout(ctx, d.cfg.DialTimeout)
	down, err := d.dialNext(dctx, next)
	cancel()
	if err != nil {
		d.nextHopDialFail.With(next).Inc()
		return err
	}
	defer down.Close()
	unwatch := closeOnDone(ctx, down)
	defer unwatch()
	if _, err := down.Write(hdr); err != nil {
		return err
	}
	// The downstream accept comes back through the new sublink.
	down.SetReadDeadline(time.Now().Add(d.cfg.HandshakeTimeout))
	acc, err := wire.ReadAcceptFrame(down)
	if err != nil {
		return fmt.Errorf("accept: %w", err)
	}
	if acc.Session != id {
		return fmt.Errorf("accept for wrong session")
	}
	if acc.Code != wire.CodeOK {
		return fmt.Errorf("rejected: %s", wire.CodeString(acc.Code))
	}
	down.SetReadDeadline(time.Time{})
	start := int64(0)
	if acc.Offset > 0 && acc.Offset < uint64(len(payload)) {
		start = int64(acc.Offset) // resumed delivery
	}
	if _, err := xfer.CopyCounted(down, bytes.NewReader(payload[start:]), d.bufs, xfer.CopyConfig{Ctx: ctx}); err != nil {
		return err
	}
	halfClose(down)
	// Wait for the receiver to finish (EOF on the backward channel) so a
	// mid-delivery crash is retried rather than silently dropped. The
	// drain error matters: a receiver dying here means the delivery is NOT
	// confirmed and must be retried, not counted as delivered.
	down.SetReadDeadline(time.Now().Add(d.cfg.HandshakeTimeout))
	if _, err := io.Copy(io.Discard, down); err != nil {
		return fmt.Errorf("confirm drain: %w", err)
	}
	return nil
}

// closeOnDone closes c when ctx fires so a blocked read unwinds; the
// returned stop function ends the watch.
func closeOnDone(ctx context.Context, c io.Closer) func() {
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			c.Close()
		case <-stop:
		}
	}()
	return func() { close(stop) }
}

// netConnLike is the subset of net.Conn the staged path needs (eases
// testing and matches the relay code).
type netConnLike interface {
	io.ReadWriteCloser
	SetReadDeadline(time.Time) error
	SetWriteDeadline(time.Time) error
	Write(p []byte) (int, error)
}

package depot

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"lsl/internal/backoff"
	"lsl/internal/custody"
	"lsl/internal/wire"
	"lsl/internal/xfer"
)

// Staged (asynchronous) sessions: the paper's §III observes that "the
// ultimate sending and receiving ports need not exist at the same time",
// with depots providing application-controlled buffering to potentially
// anonymous clients. A session opened with wire.FlagStaged is accepted by
// the first depot itself: it takes custody of the complete payload
// (bounded by MaxStageBytes per session and MaxTotalStageBytes across
// sessions), acknowledges the initiator, and then delivers the payload
// over the remaining route asynchronously, retrying while the downstream
// is unreachable. The end-to-end MD5 trailer is stored and forwarded
// verbatim, so integrity verification still happens at the ultimate
// receiver.
//
// Custody is durable when Config.Custody carries a write-ahead journal
// (internal/custody): the payload is spilled to a per-session file and
// journaled BEFORE the CodeCustody commit frame goes back to the
// initiator, redelivery attempts stream from the file (no heap pinned
// between attempts), and a restarted depot re-admits surviving journal
// entries and resumes redelivery where the dead process left off.
// Without a journal the payload lives in process memory and the commit
// frame only means "buffered" — a crash loses it.
//
// Admission is two-tier: a payload over MaxStageBytes is rejected busy
// (it can never fit), and a payload that would push aggregate custody
// past MaxTotalStageBytes is shed with the typed CodeRejectShed frame —
// explicit load shedding instead of OOMing under a burst of custody
// uploads.
//
// The whole custody path hangs off the depot-root context: retry backoff
// selects on ctx.Done instead of sleeping, so Close's drain-then-cancel
// sequence bounds how long a mid-retry delivery can pin shutdown. A
// cancelled delivery keeps its journal entry: it is exactly the state
// the next process recovers.

// stage-related configuration (part of Config).
const (
	// DefaultMaxStageBytes bounds one staged session's custody buffer.
	DefaultMaxStageBytes = 64 << 20
	// DefaultStageRetryInterval is the redelivery backoff base.
	DefaultStageRetryInterval = 2 * time.Second
	// DefaultStageRetryMax caps the exponential redelivery backoff.
	DefaultStageRetryMax = 30 * time.Second
	// DefaultStageDeadline is how long the depot tries before discarding.
	DefaultStageDeadline = 5 * time.Minute
	// DefaultTotalStageFactor sets MaxTotalStageBytes when unset: this
	// many sessions' worth of MaxStageBytes may be in custody at once.
	DefaultTotalStageFactor = 4
)

// payloadSource opens one redelivery attempt's view of a custody payload
// starting at offset. Journal-backed sources open the spill file per
// attempt, so a custody session pins no payload heap between attempts;
// memory-backed sources (no journal) wrap the buffered bytes.
type payloadSource interface {
	Open(offset int64) (io.ReadCloser, error)
}

// memSource is the in-memory custody buffer (journal-less depots).
type memSource []byte

func (m memSource) Open(offset int64) (io.ReadCloser, error) {
	if offset < 0 || offset > int64(len(m)) {
		return nil, fmt.Errorf("depot: custody offset %d out of range", offset)
	}
	return io.NopCloser(bytes.NewReader(m[offset:])), nil
}

// journalSource streams a custody payload from its write-ahead spill
// file.
type journalSource struct {
	j  *custody.Journal
	id wire.SessionID
}

func (s journalSource) Open(offset int64) (io.ReadCloser, error) {
	f, err := s.j.OpenPayload(s.id)
	if err != nil {
		return nil, err
	}
	if offset > 0 {
		if _, err := f.Seek(offset, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// handleStaged runs the custody path for a staged session: admit against
// both stage budgets, read the whole stream (durably when journaled),
// confirm custody, deliver in the background. The session stays in the
// live registry until delivery succeeds, is abandoned, or is cancelled by
// shutdown.
func (d *Depot) handleStaged(ctx context.Context, up netConnLike, hdr *wire.OpenHeader) {
	defer up.Close()
	start := time.Now()
	info := SessionInfo{
		ID:       hdr.Session.String(),
		Kind:     KindStaged,
		Peer:     stagedPeer(up),
		Hop:      int(hdr.HopIndex),
		RouteLen: len(hdr.Route),
		Started:  start,
	}
	if next, ok := hdr.NextHop(); ok {
		info.NextHop = next
	}
	fail := func(outcome string) {
		info.Outcome = outcome
		info.DurationSeconds = time.Since(start).Seconds()
		d.sessions.record(info)
		d.sessionDur.With(outcome).Observe(info.DurationSeconds)
	}

	if hdr.ContentLen == wire.UnknownLength {
		d.rejectedProto.Inc()
		d.logf("depot: staged session %s needs a content length", hdr.Session)
		d.writeControl(up, &wire.AcceptFrame{Code: wire.CodeRejectProto, Session: hdr.Session})
		fail(OutcomeRejectedProto)
		return
	}
	total := int64(hdr.ContentLen)
	if hdr.Flags&wire.FlagDigest != 0 {
		total += wire.DigestLen
	}
	if total > d.cfg.MaxStageBytes {
		d.rejectedBusy.Inc()
		d.logf("depot: staged session %s too large (%d > %d)", hdr.Session, total, d.cfg.MaxStageBytes)
		d.writeControl(up, &wire.AcceptFrame{Code: wire.CodeRejectBusy, Session: hdr.Session})
		fail(OutcomeRejectedBusy)
		return
	}
	// Global custody budget: reserve atomically (add, then check) so
	// concurrent custody uploads can never collectively overshoot, and
	// shed the excess with the typed frame instead of buffering toward
	// OOM. The gauge doubles as the live custody-bytes accounting.
	if d.custodyBytes.Add(total) > d.cfg.MaxTotalStageBytes {
		d.custodyBytes.Add(-total)
		d.stageShed.Inc()
		d.logf("depot: staged session %s shed: custody budget exhausted (%d in custody, limit %d)",
			hdr.Session, d.custodyBytes.Value(), d.cfg.MaxTotalStageBytes)
		d.writeControl(up, &wire.AcceptFrame{Code: wire.CodeRejectShed, Session: hdr.Session})
		fail(OutcomeStagedShed)
		return
	}
	release := func() { d.custodyBytes.Add(-total) }

	// Custody accept: the depot acknowledges admission before the payload
	// flows; durability is confirmed separately by the CodeCustody frame
	// once the payload is staged.
	if !d.writeControl(up, &wire.AcceptFrame{Code: wire.CodeOK, Session: hdr.Session}) {
		release()
		fail(OutcomeStagedUpFailed)
		return
	}

	src, err := d.stagePayload(ctx, up, hdr, total)
	if err != nil {
		release()
		if ctx.Err() != nil {
			d.canceled.Inc()
			d.logf("depot: staged session %s upload canceled by shutdown", hdr.Session)
			fail(OutcomeCanceled)
			return
		}
		d.logf("depot: staged session %s upload failed: %v", hdr.Session, err)
		fail(OutcomeStagedUpFailed)
		return
	}
	d.staged.Inc()
	d.stagedBytes.Add(uint64(total))
	// Custody commit: the payload is complete (and durable when
	// journaled) — tell the initiator it may hang up and discard its
	// copy. An initiator that already hung up just costs a logged write
	// failure; custody proceeds regardless.
	d.writeControl(up, &wire.AcceptFrame{Code: wire.CodeCustody, Session: hdr.Session})
	d.logf("depot: staged session %s in custody (%d bytes), delivering to %v",
		hdr.Session, total, hdr.RemainingHops()[1:])

	ls := d.sessions.add(info)
	ls.bytesFwd.Add(uint64(total))
	d.spawnDelivery(ctx, hdr, src, total, ls, start, release)
}

// stagePayload reads the complete custody payload from the initiator:
// into the write-ahead journal's spill file (committed before return)
// when one is configured, into process memory otherwise.
func (d *Depot) stagePayload(ctx context.Context, up netConnLike, hdr *wire.OpenHeader, total int64) (payloadSource, error) {
	unwatch := closeOnDone(ctx, up)
	defer unwatch()
	if d.cfg.Custody == nil {
		buf := make([]byte, total)
		if _, err := io.ReadFull(up, buf); err != nil {
			return nil, err
		}
		return memSource(buf), nil
	}
	st, err := d.cfg.Custody.Stage(custody.Entry{
		Session:    hdr.Session,
		Flags:      hdr.Flags,
		HopIndex:   hdr.HopIndex,
		Route:      hdr.Route,
		ContentLen: hdr.ContentLen,
		Offset:     hdr.Offset,
		Total:      total,
	})
	if err != nil {
		return nil, err
	}
	n, err := xfer.CopyCounted(st, io.LimitReader(up, total), d.bufs, xfer.CopyConfig{})
	if err != nil {
		st.Abort()
		return nil, err
	}
	if n != total {
		st.Abort()
		return nil, fmt.Errorf("short custody upload: %d of %d bytes: %w", n, total, io.ErrUnexpectedEOF)
	}
	if err := st.Commit(); err != nil {
		return nil, err
	}
	return journalSource{j: d.cfg.Custody, id: hdr.Session}, nil
}

// spawnDelivery runs the asynchronous redelivery loop for one custody
// session on its own goroutine and owns its terminal accounting: journal
// compaction on delivery/abort, journal retention on shutdown
// cancellation (that entry is precisely what the next process recovers),
// and the custody-budget release either way.
func (d *Depot) spawnDelivery(ctx context.Context, hdr *wire.OpenHeader, src payloadSource, total int64, ls *liveSession, start time.Time, release func()) {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		defer release()
		if err := d.deliverStaged(ctx, hdr, src, total); err != nil {
			if ctx.Err() != nil {
				d.canceled.Inc()
				d.finishStaged(ls, OutcomeCanceled, start)
				d.logf("depot: staged session %s canceled by shutdown: %v", hdr.Session, err)
				return
			}
			d.completeCustody(hdr.Session, false)
			d.stagedAborted.Inc()
			d.finishStaged(ls, OutcomeStagedAborted, start)
			d.logf("depot: staged session %s abandoned: %v", hdr.Session, err)
			return
		}
		d.completeCustody(hdr.Session, true)
		d.stagedDelivered.Inc()
		d.finishStaged(ls, OutcomeStagedDeliver, start)
		d.logf("depot: staged session %s delivered", hdr.Session)
	}()
}

// completeCustody retires a session's journal entry (no-op without a
// journal).
func (d *Depot) completeCustody(id wire.SessionID, delivered bool) {
	if d.cfg.Custody == nil {
		return
	}
	if err := d.cfg.Custody.Complete(id, delivered); err != nil {
		d.logf("depot: custody journal complete %s: %v", id, err)
	}
}

// recoverCustody re-admits every custody session that survived in the
// write-ahead journal: each one re-enters the registry and the custody
// budget (unconditionally — they were already acknowledged; new
// admissions shed first) and resumes redelivery with a fresh stage
// deadline.
func (d *Depot) recoverCustody() {
	if d.cfg.Custody == nil {
		return
	}
	for _, e := range d.cfg.Custody.Recovered() {
		hdr := &wire.OpenHeader{
			Flags:      e.Flags,
			Session:    e.Session,
			HopIndex:   e.HopIndex,
			Route:      e.Route,
			ContentLen: e.ContentLen,
			Offset:     e.Offset,
		}
		info := SessionInfo{
			ID:       hdr.Session.String(),
			Kind:     KindStaged,
			Peer:     "recovered",
			Hop:      int(hdr.HopIndex),
			RouteLen: len(hdr.Route),
			Started:  time.Now(),
		}
		if next, ok := hdr.NextHop(); ok {
			info.NextHop = next
		}
		total := e.Total
		d.custodyBytes.Add(total)
		d.stagedRecovered.Inc()
		ls := d.sessions.add(info)
		ls.bytesFwd.Add(uint64(total))
		d.logf("depot: recovered staged session %s from custody journal (%d bytes)", hdr.Session, total)
		d.spawnDelivery(d.root, hdr, journalSource{j: d.cfg.Custody, id: hdr.Session}, total, ls,
			info.Started, func() { d.custodyBytes.Add(-total) })
	}
}

// finishStaged retires a staged session's registry entry and observes its
// end-to-end custody duration.
func (d *Depot) finishStaged(ls *liveSession, outcome string, start time.Time) {
	dur := time.Since(start)
	d.sessions.finish(ls, outcome, dur)
	d.sessionDur.With(outcome).Observe(dur.Seconds())
}

// stagedPeer names the uploading peer when the transport exposes one.
func stagedPeer(c netConnLike) string {
	if ra, ok := c.(interface{ RemoteAddr() net.Addr }); ok && ra.RemoteAddr() != nil {
		return ra.RemoteAddr().String()
	}
	return ""
}

// deliverStaged pushes a custody payload over the remaining route,
// retrying with capped exponential backoff until the stage deadline or
// cancellation. Jitter is seeded from the depot's RetryJitterSeed XOR the
// session ID: deterministic under test, but concurrent staged sessions
// that failed together spread out instead of retrying in lockstep against
// a receiver that is just coming back (the thundering-herd mode of the
// old fixed-interval retry).
func (d *Depot) deliverStaged(ctx context.Context, hdr *wire.OpenHeader, src payloadSource, total int64) error {
	next, ok := hdr.NextHop()
	if !ok {
		return fmt.Errorf("staged session terminates at a depot")
	}
	fwd := *hdr
	fwd.HopIndex++
	fwd.Flags &^= wire.FlagStaged // downstream runs as an ordinary session
	enc, err := fwd.Encode()
	if err != nil {
		return err
	}
	pol := backoff.Policy{Base: d.cfg.StageRetryInterval, Max: d.cfg.StageRetryMax}
	rng := rand.New(rand.NewSource(d.cfg.RetryJitterSeed ^ int64(binary.BigEndian.Uint64(fwd.Session[:8]))))
	deadline := time.Now().Add(d.cfg.StageDeadline)
	attempt := 0
	for {
		attempt++
		d.stagedAttempts.Inc()
		err := d.attemptDelivery(ctx, next, enc, src, total, fwd.Session)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return fmt.Errorf("depot shutting down: %w", err)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("gave up after %d attempts: %w", attempt, err)
		}
		d.logf("depot: staged session %s delivery attempt %d failed: %v", fwd.Session, attempt, err)
		// Backoff that shutdown can interrupt — never an uninterruptible
		// sleep on the drain path.
		if err := backoff.Sleep(ctx, pol.Delay(attempt, rng)); err != nil {
			return fmt.Errorf("depot shutting down: %w", err)
		}
	}
}

func (d *Depot) attemptDelivery(ctx context.Context, next string, hdr []byte, src payloadSource, total int64, id wire.SessionID) error {
	dctx, cancel := context.WithTimeout(ctx, d.cfg.DialTimeout)
	down, err := d.dialNext(dctx, next)
	cancel()
	if err != nil {
		d.nextHopDialFail.With(next).Inc()
		return err
	}
	defer down.Close()
	unwatch := closeOnDone(ctx, down)
	defer unwatch()
	if _, err := down.Write(hdr); err != nil {
		return err
	}
	// The downstream accept comes back through the new sublink.
	down.SetReadDeadline(time.Now().Add(d.cfg.HandshakeTimeout))
	acc, err := wire.ReadAcceptFrame(down)
	if err != nil {
		return fmt.Errorf("accept: %w", err)
	}
	if acc.Session != id {
		return fmt.Errorf("accept for wrong session")
	}
	if acc.Code != wire.CodeOK {
		return fmt.Errorf("rejected: %s", wire.CodeString(acc.Code))
	}
	down.SetReadDeadline(time.Time{})
	start := int64(0)
	if acc.Offset > 0 && acc.Offset < uint64(total) {
		start = int64(acc.Offset) // resumed delivery
	}
	// The payload opens fresh per attempt: journal-backed custody streams
	// from the spill file, so nothing is pinned while the session sits in
	// retry backoff.
	payload, err := src.Open(start)
	if err != nil {
		return fmt.Errorf("custody payload: %w", err)
	}
	defer payload.Close()
	if _, err := xfer.CopyCounted(down, payload, d.bufs, xfer.CopyConfig{Ctx: ctx}); err != nil {
		return err
	}
	halfClose(down)
	// Wait for the receiver to finish (EOF on the backward channel) so a
	// mid-delivery crash is retried rather than silently dropped. The
	// drain error matters: a receiver dying here means the delivery is NOT
	// confirmed and must be retried, not counted as delivered.
	down.SetReadDeadline(time.Now().Add(d.cfg.HandshakeTimeout))
	if _, err := io.Copy(io.Discard, down); err != nil {
		return fmt.Errorf("confirm drain: %w", err)
	}
	return nil
}

// closeOnDone closes c when ctx fires so a blocked read unwinds; the
// returned stop function ends the watch.
func closeOnDone(ctx context.Context, c io.Closer) func() {
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			c.Close()
		case <-stop:
		}
	}()
	return func() { close(stop) }
}

// netConnLike is the subset of net.Conn the staged path needs (eases
// testing and matches the relay code).
type netConnLike interface {
	io.ReadWriteCloser
	SetReadDeadline(time.Time) error
	SetWriteDeadline(time.Time) error
	Write(p []byte) (int, error)
}

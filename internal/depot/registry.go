package depot

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Session outcomes recorded in the recent-session ring and used as the
// label on the per-outcome duration histogram.
const (
	OutcomeCompleted     = "completed"
	OutcomeCanceled      = "canceled"
	OutcomeRejectedBusy  = "rejected-busy"
	OutcomeRejectedRoute = "rejected-route"
	OutcomeRejectedProto = "rejected-proto"
	// OutcomeDialFailed marks relay sessions refused because the next hop
	// could not be dialed — distinct from rejected-route (a misrouted
	// header) so operators can tell a dead downstream from a bad route.
	OutcomeDialFailed     = "dial-failed"
	OutcomeStagedDeliver  = "staged-delivered"
	OutcomeStagedAborted  = "staged-aborted"
	OutcomeStagedUpFailed = "staged-upload-failed"
	// OutcomeStagedShed marks staged sessions refused because the global
	// custody budget (Config.MaxTotalStageBytes) was exhausted.
	OutcomeStagedShed = "staged-shed"
)

// Session kinds.
const (
	KindRelay  = "relay"
	KindStaged = "staged"
)

// SessionInfo is an operator-facing snapshot of one session, live or
// recently finished. Byte counts on live sessions are read mid-flight.
type SessionInfo struct {
	ID            string    `json:"id"`
	Kind          string    `json:"kind"`
	Peer          string    `json:"peer,omitempty"`
	NextHop       string    `json:"next_hop,omitempty"`
	Hop           int       `json:"hop"`
	RouteLen      int       `json:"route_len"`
	Started       time.Time `json:"started"`
	BytesForward  uint64    `json:"bytes_forward"`
	BytesBackward uint64    `json:"bytes_backward"`

	// Finished sessions only.
	Outcome         string  `json:"outcome,omitempty"`
	DurationSeconds float64 `json:"duration_seconds,omitempty"`
}

// Snapshot is the full observable session state of a depot: sessions
// relaying right now plus a bounded history of finished ones, newest
// first.
type Snapshot struct {
	Now    time.Time     `json:"now"`
	Live   []SessionInfo `json:"live"`
	Recent []SessionInfo `json:"recent"`
}

// liveSession is the registry's handle on an in-flight session. The
// relay goroutines bump the byte counters lock-free; everything else is
// immutable after registration.
type liveSession struct {
	info     SessionInfo // Started/ID/Kind/Peer/NextHop/Hop/RouteLen
	bytesFwd atomic.Uint64
	bytesBck atomic.Uint64
}

func (ls *liveSession) snapshot() SessionInfo {
	info := ls.info
	info.BytesForward = ls.bytesFwd.Load()
	info.BytesBackward = ls.bytesBck.Load()
	return info
}

// DefaultRecentSessions is the recent-session ring capacity when
// Config.RecentSessions is zero.
const DefaultRecentSessions = 64

// sessionRegistry tracks live sessions and a fixed-size ring of finished
// ones.
type sessionRegistry struct {
	mu     sync.Mutex
	live   map[*liveSession]struct{}
	recent []SessionInfo // ring, oldest at next
	next   int
	filled bool
	// onEnd observes every finished record (Config.OnSessionEnd); invoked
	// outside the registry lock.
	onEnd func(SessionInfo)
}

func newSessionRegistry(capacity int, onEnd func(SessionInfo)) *sessionRegistry {
	if capacity <= 0 {
		capacity = DefaultRecentSessions
	}
	return &sessionRegistry{
		live:   make(map[*liveSession]struct{}),
		recent: make([]SessionInfo, capacity),
		onEnd:  onEnd,
	}
}

// add registers an in-flight session and returns its handle.
func (r *sessionRegistry) add(info SessionInfo) *liveSession {
	ls := &liveSession{info: info}
	r.mu.Lock()
	r.live[ls] = struct{}{}
	r.mu.Unlock()
	return ls
}

// finish retires a live session into the ring with its outcome.
func (r *sessionRegistry) finish(ls *liveSession, outcome string, d time.Duration) {
	info := ls.snapshot()
	info.Outcome = outcome
	info.DurationSeconds = d.Seconds()
	r.mu.Lock()
	delete(r.live, ls)
	r.push(info)
	r.mu.Unlock()
	if r.onEnd != nil {
		r.onEnd(info)
	}
}

// record writes a session that never went live (a rejection) straight
// into the ring.
func (r *sessionRegistry) record(info SessionInfo) {
	r.mu.Lock()
	r.push(info)
	r.mu.Unlock()
	if r.onEnd != nil {
		r.onEnd(info)
	}
}

func (r *sessionRegistry) push(info SessionInfo) {
	r.recent[r.next] = info
	r.next++
	if r.next == len(r.recent) {
		r.next = 0
		r.filled = true
	}
}

// snapshot captures live and recent sessions; recent is newest-first.
func (r *sessionRegistry) snapshot() Snapshot {
	r.mu.Lock()
	s := Snapshot{Now: time.Now(), Live: make([]SessionInfo, 0, len(r.live))}
	for ls := range r.live {
		s.Live = append(s.Live, ls.snapshot())
	}
	n := r.next
	if r.filled {
		n = len(r.recent)
	}
	s.Recent = make([]SessionInfo, 0, n)
	for i := 0; i < n; i++ {
		// Walk backward from the most recently written slot.
		idx := (r.next - 1 - i + len(r.recent)) % len(r.recent)
		s.Recent = append(s.Recent, r.recent[idx])
	}
	r.mu.Unlock()
	// Stable order for live sessions: oldest first, ID as tiebreak.
	sort.Slice(s.Live, func(i, j int) bool {
		if !s.Live[i].Started.Equal(s.Live[j].Started) {
			return s.Live[i].Started.Before(s.Live[j].Started)
		}
		return s.Live[i].ID < s.Live[j].ID
	})
	return s
}

package depot

import (
	"bytes"
	"context"
	"crypto/md5"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lsl/internal/core"
	"lsl/internal/custody"
	"lsl/internal/wire"
)

// journalDepot builds a depot with a custody write-ahead journal rooted
// at dir and fast staged-retry timing.
func journalDepot(t *testing.T, dir string, cfg Config) (*Depot, *custody.Journal, string) {
	t.Helper()
	j, err := custody.Open(dir, custody.Config{Fsync: custody.FsyncNever, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Custody = j
	if cfg.StageRetryInterval == 0 {
		cfg.StageRetryInterval = 100 * time.Millisecond
	}
	if cfg.StageDeadline == 0 {
		cfg.StageDeadline = 30 * time.Second
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 300 * time.Millisecond
	}
	cfg.RetryJitterSeed = 42
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d := New(cfg)
	go d.Serve(ln)
	return d, j, ln.Addr().String()
}

// reserveAddr grabs a loopback address and releases it, so delivery
// attempts against it fail until the test rebinds it.
func reserveAddr(t *testing.T) string {
	t.Helper()
	tmp, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := tmp.Addr().String()
	tmp.Close()
	return addr
}

// The headline robustness guarantee: every staged payload the depot
// acknowledged with the custody-commit frame before a hard stop (no
// drain — a simulated crash) is delivered byte-exact, MD5-verified,
// after a new depot process recovers the same state dir; a payload whose
// upload never committed is never delivered; and a corrupted journal
// tail does not break recovery of the valid prefix.
func TestStagedCrashRecoveryDeliversAckedPayloads(t *testing.T) {
	dir := t.TempDir()
	targetAddr := reserveAddr(t) // offline during custody + crash

	d1, j1, depotAddr := journalDepot(t, dir, Config{})

	payloads := map[string][]byte{}
	for i, seed := range []string{"alpha", "bravo", "charlie"} {
		p := bytes.Repeat([]byte(seed), 4000+i*1000)
		payloads[string(p[:16])] = p
		c, err := core.Dial(context.Background(),
			core.Route{Via: []string{depotAddr}, Target: targetAddr},
			core.WithStaged(), core.WithDigest(), core.WithContentLength(int64(len(p))))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(p); err != nil {
			t.Fatal(err)
		}
		if err := c.CloseWrite(); err != nil {
			t.Fatal(err)
		}
		// The ACK that matters: the payload is durable from here on.
		if err := c.AwaitCustody(); err != nil {
			t.Fatalf("custody commit %d: %v", i, err)
		}
		c.Close()
	}

	// A fourth upload stalls mid-payload and never reaches the commit:
	// it must NOT survive the crash.
	ghost, err := core.Dial(context.Background(),
		core.Route{Via: []string{depotAddr}, Target: targetAddr},
		core.WithStaged(), core.WithContentLength(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	ghost.Write(bytes.Repeat([]byte("ghost"), 1000)) // 5000 of 1<<20 bytes
	defer ghost.Close()

	// Let redelivery fail at least once so the crash lands mid-retry.
	deadline := time.Now().Add(10 * time.Second)
	for d1.Stats().StagedDeliveryAttempts < 3 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if got := d1.Stats().StagedDeliveryAttempts; got < 3 {
		t.Fatalf("only %d delivery attempts before crash", got)
	}

	// Hard stop: no drain, no cleanup — the journal keeps the custody.
	d1.Kill()
	j1.Close()

	// Scribble a torn record onto the journal tail, as a crash mid-append
	// would: recovery must skip it without panicking.
	jf, err := os.OpenFile(filepath.Join(dir, custody.JournalName), os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	jf.Write([]byte{0, 0, 1, 0, 0xba, 0xad, 0xf0, 0x0d, 0x01, 0x02})
	jf.Close()

	// Restart on the same state dir.
	d2, j2, _ := journalDepot(t, dir, Config{})
	defer func() {
		d2.Close()
		j2.Close()
	}()
	if got := len(j2.Recovered()); got != 3 {
		t.Fatalf("recovered %d custody sessions, want 3", got)
	}
	if got := d2.Stats().StagedRecovered; got != 3 {
		t.Fatalf("StagedRecovered=%d, want 3", got)
	}
	if got := d2.Stats().CustodyBytes; got <= 0 {
		t.Fatalf("CustodyBytes=%d after recovery, want > 0", got)
	}

	// The receiver appears. Every ACKed payload must arrive byte-exact
	// with its end-to-end MD5 intact; the ghost must not.
	ln, err := net.Listen("tcp", targetAddr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", targetAddr, err)
	}
	target := core.NewListener(ln)
	defer target.Close()

	type delivery struct {
		data     []byte
		verified bool
	}
	got := make(chan delivery, 8)
	go func() {
		for {
			sc, err := target.Accept()
			if err != nil {
				return
			}
			go func() {
				defer sc.Close()
				data, err := io.ReadAll(sc)
				if err != nil {
					return
				}
				got <- delivery{data: data, verified: sc.Verified()}
			}()
		}
	}()

	seen := map[string]bool{}
	for len(seen) < 3 {
		select {
		case del := <-got:
			if !del.verified {
				t.Fatalf("recovered delivery failed MD5 verification (%d bytes, digest %x)",
					len(del.data), md5.Sum(del.data))
			}
			key := string(del.data[:16])
			want, ok := payloads[key]
			if !ok || !bytes.Equal(del.data, want) {
				t.Fatalf("recovered delivery does not match any staged payload (%d bytes)", len(del.data))
			}
			if seen[key] {
				t.Fatalf("payload %q delivered twice", key)
			}
			seen[key] = true
		case <-time.After(20 * time.Second):
			t.Fatalf("recovered deliveries stalled: %d of 3 arrived (stats %+v)", len(seen), d2.Stats())
		}
	}

	// The never-committed upload must not materialize.
	select {
	case del := <-got:
		t.Fatalf("unexpected extra delivery of %d bytes", len(del.data))
	case <-time.After(500 * time.Millisecond):
	}
	if j2.Live() != 0 {
		t.Fatalf("%d sessions still journaled after delivery", j2.Live())
	}
}

// Staged sessions beyond the global custody budget are refused with the
// typed shed frame, visible on lsl_stage_shed_total and the custody
// bytes gauge.
func TestStagedShedBeyondBudget(t *testing.T) {
	targetAddr := reserveAddr(t) // offline: custody stays resident
	d, depotAddr := stagedDepot(t, Config{
		MaxTotalStageBytes: 1000,
		DialTimeout:        200 * time.Millisecond,
		StageDeadline:      3 * time.Second,
		DrainTimeout:       5 * time.Second,
	})

	first, err := core.Dial(context.Background(),
		core.Route{Via: []string{depotAddr}, Target: targetAddr},
		core.WithStaged(), core.WithContentLength(600))
	if err != nil {
		t.Fatal(err)
	}
	first.Write(bytes.Repeat([]byte{'a'}, 600))
	first.CloseWrite()
	if err := first.AwaitCustody(); err != nil {
		t.Fatalf("first custody: %v", err)
	}
	first.Close()
	if got := d.Stats().CustodyBytes; got != 600 {
		t.Fatalf("CustodyBytes=%d, want 600", got)
	}

	// 600 + 600 > 1000: the second session must shed, not buffer.
	_, err = core.Dial(context.Background(),
		core.Route{Via: []string{depotAddr}, Target: targetAddr},
		core.WithStaged(), core.WithContentLength(600))
	if err == nil {
		t.Fatal("over-budget staged session accepted")
	}
	if !strings.Contains(err.Error(), wire.CodeString(wire.CodeRejectShed)) {
		t.Fatalf("shed rejection not typed: %v", err)
	}
	st := d.Stats()
	if st.StagedShed != 1 {
		t.Fatalf("StagedShed=%d, want 1", st.StagedShed)
	}
	if st.CustodyBytes != 600 {
		t.Fatalf("CustodyBytes=%d after shed, want still 600", st.CustodyBytes)
	}
	var metricsOut strings.Builder
	if err := d.Metrics().WritePrometheus(&metricsOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metricsOut.String(), "lsl_stage_shed_total 1") {
		t.Fatal("lsl_stage_shed_total not exported")
	}
	if !strings.Contains(metricsOut.String(), "lsl_custody_bytes 600") {
		t.Fatal("lsl_custody_bytes not exported")
	}

	// A session that fits the remaining headroom is still admitted.
	third, err := core.Dial(context.Background(),
		core.Route{Via: []string{depotAddr}, Target: targetAddr},
		core.WithStaged(), core.WithContentLength(300))
	if err != nil {
		t.Fatalf("within-budget session refused: %v", err)
	}
	third.Write(bytes.Repeat([]byte{'c'}, 300))
	third.CloseWrite()
	if err := third.AwaitCustody(); err != nil {
		t.Fatalf("third custody: %v", err)
	}
	third.Close()
}

// The custody budget releases when a delivery completes, so shedding is
// a function of live custody, not history.
func TestStagedBudgetReleasesAfterDelivery(t *testing.T) {
	payload := bytes.Repeat([]byte("cycle"), 100)
	d, depotAddr := stagedDepot(t, Config{MaxTotalStageBytes: int64(len(payload)) + 10})
	for i := 0; i < 3; i++ {
		target, err := core.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan []byte, 1)
		go func() {
			sc, err := target.Accept()
			if err != nil {
				return
			}
			defer sc.Close()
			data, _ := io.ReadAll(sc)
			done <- data
		}()
		c, err := core.Dial(context.Background(),
			core.Route{Via: []string{depotAddr}, Target: target.Addr().String()},
			core.WithStaged(), core.WithContentLength(int64(len(payload))))
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		c.Write(payload)
		c.CloseWrite()
		if err := c.AwaitCustody(); err != nil {
			t.Fatalf("round %d custody: %v", i, err)
		}
		c.Close()
		select {
		case data := <-done:
			if !bytes.Equal(data, payload) {
				t.Fatalf("round %d corrupted", i)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d timeout", i)
		}
		target.Close()
		deadline := time.Now().Add(5 * time.Second)
		for d.Stats().CustodyBytes != 0 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if got := d.Stats().CustodyBytes; got != 0 {
			t.Fatalf("round %d: CustodyBytes=%d not released", i, got)
		}
	}
	if got := d.Stats().StagedDelivered; got != 3 {
		t.Fatalf("StagedDelivered=%d, want 3", got)
	}
}

// Journal-backed staged delivery to an online receiver — the everyday
// path stays correct with durability on.
func TestStagedJournalDeliveryOnline(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("durable-path"), 3000)
	target, err := core.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	done := make(chan bool, 1)
	go func() {
		sc, err := target.Accept()
		if err != nil {
			return
		}
		defer sc.Close()
		data, err := io.ReadAll(sc)
		done <- err == nil && sc.Verified() && bytes.Equal(data, payload)
	}()

	d, j, depotAddr := journalDepot(t, dir, Config{})
	defer func() {
		d.Close()
		j.Close()
	}()
	c, err := core.Dial(context.Background(),
		core.Route{Via: []string{depotAddr}, Target: target.Addr().String()},
		core.WithStaged(), core.WithDigest(), core.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	c.Write(payload)
	c.CloseWrite()
	if err := c.AwaitCustody(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	select {
	case ok := <-done:
		if !ok {
			t.Fatal("journal-backed staged payload corrupted or unverified")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timeout")
	}
	deadline := time.Now().Add(5 * time.Second)
	for j.Live() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	// Delivered sessions compact out of the journal and the state dir.
	if j.Live() != 0 || j.LiveBytes() != 0 {
		t.Fatalf("journal still holds %d sessions / %d bytes after delivery", j.Live(), j.LiveBytes())
	}
}

package depot

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"
	"time"

	"lsl/internal/core"
	"lsl/internal/custody"
	"lsl/internal/wire"
)

// A staged payload of exactly MaxStageBytes is admitted; one byte more
// is refused busy — the per-session cap is inclusive.
func TestStagedMaxStageBytesBoundary(t *testing.T) {
	const capBytes = 4096
	d, depotAddr := stagedDepot(t, Config{MaxStageBytes: capBytes})

	target, err := core.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	got := make(chan int, 2)
	go func() {
		for {
			sc, err := target.Accept()
			if err != nil {
				return
			}
			go func() {
				defer sc.Close()
				data, err := io.ReadAll(sc)
				if err == nil {
					got <- len(data)
				}
			}()
		}
	}()

	// Exactly at the cap: accepted and delivered in full.
	exact, err := core.Dial(context.Background(),
		core.Route{Via: []string{depotAddr}, Target: target.Addr().String()},
		core.WithStaged(), core.WithContentLength(capBytes))
	if err != nil {
		t.Fatalf("payload of exactly MaxStageBytes refused: %v", err)
	}
	exact.Write(bytes.Repeat([]byte{'x'}, capBytes))
	exact.CloseWrite()
	if err := exact.AwaitCustody(); err != nil {
		t.Fatalf("custody at cap: %v", err)
	}
	exact.Close()
	select {
	case n := <-got:
		if n != capBytes {
			t.Fatalf("delivered %d bytes, want %d", n, capBytes)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("at-cap delivery timeout")
	}

	// One byte over: refused with the busy code before any upload.
	_, err = core.Dial(context.Background(),
		core.Route{Via: []string{depotAddr}, Target: target.Addr().String()},
		core.WithStaged(), core.WithContentLength(capBytes+1))
	if err == nil {
		t.Fatal("payload over MaxStageBytes accepted")
	}
	if !strings.Contains(err.Error(), wire.CodeString(wire.CodeRejectBusy)) {
		t.Fatalf("over-cap rejection not busy-typed: %v", err)
	}
	if st := d.Stats(); st.StagedDelivered != 1 {
		t.Fatalf("stats after boundary probe: %+v", st)
	}
}

// A zero-byte staged session is a legal custody object: it commits,
// journals, and delivers an empty verified stream.
func TestStagedZeroByteSession(t *testing.T) {
	dir := t.TempDir()
	target, err := core.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	done := make(chan bool, 1)
	go func() {
		sc, err := target.Accept()
		if err != nil {
			return
		}
		defer sc.Close()
		data, err := io.ReadAll(sc)
		done <- err == nil && len(data) == 0 && sc.Verified()
	}()

	d, j, depotAddr := journalDepot(t, dir, Config{})
	defer func() {
		d.Close()
		j.Close()
	}()
	c, err := core.Dial(context.Background(),
		core.Route{Via: []string{depotAddr}, Target: target.Addr().String()},
		core.WithStaged(), core.WithDigest(), core.WithContentLength(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitCustody(); err != nil {
		t.Fatalf("zero-byte custody: %v", err)
	}
	c.Close()

	select {
	case ok := <-done:
		if !ok {
			t.Fatal("zero-byte session not delivered empty and verified")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timeout")
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().StagedDelivered == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if st := d.Stats(); st.StagedDelivered != 1 || st.CustodyBytes != 0 {
		t.Fatalf("stats after zero-byte delivery: %+v", st)
	}
}

// Redelivery retries racing a depot Close drain must neither panic nor
// lose track of custody: the session ends canceled and, with a journal,
// its entry survives for the next process.
func TestStagedRedeliveryRacesClose(t *testing.T) {
	dir := t.TempDir()
	targetAddr := reserveAddr(t) // never comes up: retries always fail

	d, j, depotAddr := journalDepot(t, dir, Config{
		StageRetryInterval: 20 * time.Millisecond,
		StageDeadline:      time.Minute,
		DrainTimeout:       150 * time.Millisecond,
	})

	payload := bytes.Repeat([]byte("race"), 512)
	c, err := core.Dial(context.Background(),
		core.Route{Via: []string{depotAddr}, Target: targetAddr},
		core.WithStaged(), core.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	c.Write(payload)
	c.CloseWrite()
	if err := c.AwaitCustody(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Close mid-retry: the short drain expires while the delivery loop is
	// live, forcing the cancel path to race the backoff/dial machinery.
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().StagedDeliveryAttempts == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	d.Close()

	st := d.Stats()
	if st.StagedDelivered != 0 || st.StagedAborted != 0 {
		t.Fatalf("canceled session misclassified: %+v", st)
	}
	// Shutdown cancellation is not an abort: the journal keeps custody.
	if j.Live() != 1 {
		t.Fatalf("journal holds %d sessions after drain cancel, want 1", j.Live())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// And the survivor is recoverable.
	j2, err := custody.Open(dir, custody.Config{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := len(j2.Recovered()); got != 1 {
		t.Fatalf("recovered %d sessions, want 1", got)
	}
	if got := j2.Recovered()[0].Total; got != int64(len(payload)) {
		t.Fatalf("recovered total %d, want %d", got, len(payload))
	}
}

// Package depot implements lsd, the LSL depot daemon: an unprivileged
// user-level process that accepts session-open headers, dials the next hop
// of the loose source route, and then relays bytes in both directions
// between the two transport connections through a small bounded buffer —
// the "transport to transport binding based on the LSL header information"
// of the paper's §IV-A.
//
// The forward direction carries session payload; the backward direction
// carries the session-accept frame and any application replies, so the
// depot itself needs no knowledge of the session state machine beyond the
// open header. Admission control (the paper's §VII scalability note) caps
// concurrent sessions and rejects the excess with a busy code rather than
// degrading every flow.
//
// Bytes move through the shared data plane in internal/xfer: relay
// buffers come from a size-classed pool, so the per-session hot path
// performs no buffer allocation, and every copy is threaded with the
// session's live byte counters and the depot totals.
//
// Lifecycle is context-aware end to end: every session hangs off a
// depot-root context, and Close drains in-flight sessions for a bounded
// time (Config.DrainTimeout) before cancelling the remainder, which are
// recorded with the distinct "canceled" outcome.
//
// A depot is observable: every instance carries a metrics registry
// (Prometheus text format via Metrics), a live-session registry with a
// ring of recently finished sessions (Sessions), and an HTTP admin
// surface (AdminHandler) exposing both plus pprof.
package depot

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lsl/internal/core"
	"lsl/internal/custody"
	"lsl/internal/metrics"
	"lsl/internal/mux"
	"lsl/internal/sockopt"
	"lsl/internal/wire"
	"lsl/internal/xfer"
)

// Config tunes a depot.
type Config struct {
	// BufferSize is the per-direction relay buffer (default 256 KiB) — the
	// paper's "small, short-lived" intermediate allocation, now borrowed
	// from a size-classed pool instead of allocated per session.
	BufferSize int
	// MaxSessions caps concurrent sessions (0 = 256).
	MaxSessions int
	// DialTimeout bounds next-hop connection establishment (default 10s).
	DialTimeout time.Duration
	// HandshakeTimeout bounds the header read (default 15s).
	HandshakeTimeout time.Duration
	// WriteTimeout bounds depot-originated control-frame writes (accept
	// and reject frames) so a stalled peer cannot pin a handler goroutine
	// (default 5s).
	WriteTimeout time.Duration
	// DrainTimeout bounds Close: in-flight sessions get this long to
	// finish on their own before the depot cancels them (outcome
	// "canceled"). Zero means DefaultDrainTimeout; negative drains
	// without a bound.
	DrainTimeout time.Duration
	// RecentSessions sizes the finished-session ring kept for /sessions
	// (default 64).
	RecentSessions int
	// Dial overrides the next-hop dialer (tests, emulation).
	Dial core.Dialer
	// Logf, when set, receives one line per session event.
	Logf func(format string, args ...interface{})
	// MaxStageBytes bounds a staged (custody) session's payload.
	MaxStageBytes int64
	// MaxTotalStageBytes bounds aggregate staged custody bytes across all
	// sessions. A staged session that would push the total past this is
	// refused with the typed CodeRejectShed frame (load shedding) instead
	// of being buffered toward OOM. Zero means DefaultTotalStageFactor *
	// MaxStageBytes. Sessions recovered from the custody journal are
	// re-admitted even past the budget (they were already acknowledged);
	// new admissions shed first.
	MaxTotalStageBytes int64
	// Custody, when set, makes staged sessions durable: payloads spill to
	// per-session files under the journal's state dir and are journaled
	// (write-ahead, CRC-guarded) before the custody commit frame is sent,
	// so a depot crash or redeploy cannot drop an acknowledged payload.
	// On construction the depot re-admits the journal's surviving
	// sessions and resumes their redelivery. The journal is owned by the
	// caller: open it with custody.Open before New, close it after Close.
	Custody *custody.Journal
	// StageRetryInterval is the redelivery backoff *base* for staged
	// sessions; successive attempts back off exponentially from here.
	StageRetryInterval time.Duration
	// StageRetryMax caps the exponential redelivery backoff (default 30s).
	StageRetryMax time.Duration
	// RetryJitterSeed seeds redelivery jitter. Each staged session
	// decorrelates further with its session ID, so concurrent custody
	// sessions never retry in lockstep against a recovering receiver.
	// Zero draws a random per-depot seed; fix it for deterministic tests.
	RetryJitterSeed int64
	// StageDeadline bounds how long staged payloads are retried before
	// being discarded.
	StageDeadline time.Duration
	// Mux enables persistent inter-hop trunks: the depot accepts
	// multiplexed upstream links alongside classic connections
	// (dispatching on the first bytes — "LSLM" vs "LSL1" — so mixed
	// fleets interoperate) and keeps warm trunks to each distinct next
	// hop, skipping the per-session TCP handshake and cold congestion
	// window. Non-mux next hops transparently fall back to
	// one-connection-per-session.
	Mux bool
	// LinkIdleTimeout closes a next-hop trunk that has carried no
	// sessions for this long (default 60s; negative keeps trunks open
	// forever). Mux only.
	LinkIdleTimeout time.Duration
	// LinkMaxStreams opens a second trunk to the same next hop once one
	// carries this many concurrent sessions (default 64). Mux only.
	LinkMaxStreams int
	// SockSndBuf/SockRcvBuf override SO_SNDBUF/SO_RCVBUF on every
	// accepted and dialed transport connection (zero keeps kernel
	// defaults); TCP_NODELAY is always set on TCP sublinks.
	SockSndBuf int
	SockRcvBuf int
	// OnSessionEnd, when set, receives every finished session record
	// (including rejections) right after it enters the recent ring. The
	// logistics control plane uses this to feed per-next-hop relay
	// measurements into its forecasters. Called outside registry locks,
	// but synchronously on the session goroutine — keep it fast.
	OnSessionEnd func(SessionInfo)
	// PlanView, when set, is rendered as JSON on the admin /plan endpoint
	// (the logistics planner's forecast snapshot). Kept as an opaque
	// closure so the depot does not depend on the planner package.
	PlanView func() interface{}
	// OnGossip, when set, receives inbound forecast-gossip exchanges:
	// connections (classic or mux streams) whose first bytes carry the
	// LSLG magic are handed over whole instead of entering the session
	// path. The handler owns the connection and must close it. Kept as
	// an opaque callback so the depot does not depend on the gossip
	// package.
	OnGossip func(net.Conn)
}

// DefaultDrainTimeout is how long Close waits for in-flight sessions
// before cancelling them when Config.DrainTimeout is zero.
const DefaultDrainTimeout = 30 * time.Second

func (c Config) withDefaults() Config {
	if c.BufferSize == 0 {
		c.BufferSize = 256 << 10
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 256
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 10 * time.Second
	}
	if c.HandshakeTimeout == 0 {
		c.HandshakeTimeout = 15 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.RecentSessions == 0 {
		c.RecentSessions = DefaultRecentSessions
	}
	if c.Dial == nil {
		var d net.Dialer
		c.Dial = d.DialContext
	}
	if c.MaxStageBytes == 0 {
		c.MaxStageBytes = DefaultMaxStageBytes
	}
	if c.MaxTotalStageBytes == 0 {
		c.MaxTotalStageBytes = DefaultTotalStageFactor * c.MaxStageBytes
	}
	if c.StageRetryInterval == 0 {
		c.StageRetryInterval = DefaultStageRetryInterval
	}
	if c.StageRetryMax == 0 {
		c.StageRetryMax = DefaultStageRetryMax
	}
	if c.StageRetryMax < c.StageRetryInterval {
		c.StageRetryMax = c.StageRetryInterval
	}
	if c.RetryJitterSeed == 0 {
		c.RetryJitterSeed = time.Now().UnixNano()
	}
	if c.StageDeadline == 0 {
		c.StageDeadline = DefaultStageDeadline
	}
	return c
}

// Stats is a snapshot of depot counters.
type Stats struct {
	Accepted      uint64
	RejectedBusy  uint64
	RejectedRoute uint64
	RejectedProto uint64
	Completed     uint64
	// Canceled counts sessions (relay and staged) cut short by shutdown
	// after the drain timeout.
	Canceled      uint64
	BytesForward  uint64
	BytesBackward uint64
	Active        int64
	// MaxBuffered is the high-water mark of a single relay-buffer fill —
	// the largest read the relay loop has moved in one step, bounded by
	// the configured buffer size.
	MaxBuffered int64
	// ControlWriteFailures counts accept/reject frames dropped because the
	// peer stalled past the write deadline.
	ControlWriteFailures uint64
	// DialFailures counts next-hop dials that failed, summed across hops
	// (per-hop breakdown on lsd_next_hop_dial_failures_total).
	DialFailures uint64
	Staged       uint64
	// StagedDeliveryAttempts counts every staged delivery attempt,
	// retries included — attempts minus delivered is the live measure of
	// how hard the depot is fighting an unreachable downstream.
	StagedDeliveryAttempts uint64
	StagedDelivered        uint64
	StagedAborted          uint64
	StagedBytes            uint64
	// StagedShed counts staged sessions refused because the global
	// custody budget (MaxTotalStageBytes) was exhausted.
	StagedShed uint64
	// StagedRecovered counts custody sessions re-admitted from the
	// write-ahead journal after a restart.
	StagedRecovered uint64
	// CustodyBytes is the live aggregate of staged payload bytes
	// currently in custody (the budget gauge).
	CustodyBytes int64
}

// Histogram bucket bounds for the admin metrics.
var (
	durationBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 300}
	byteBuckets     = []float64{1 << 10, 16 << 10, 256 << 10, 4 << 20, 64 << 20, 1 << 30}
)

// Depot is a running daemon instance.
type Depot struct {
	cfg  Config
	bufs *xfer.Pool

	// root is the lifecycle context every session hangs off; cancel fires
	// when Close gives up draining.
	root   context.Context
	cancel context.CancelFunc

	reg      *metrics.Registry
	sessions *sessionRegistry

	accepted      *metrics.Counter
	rejectedBusy  *metrics.Counter
	rejectedRoute *metrics.Counter
	rejectedProto *metrics.Counter
	completed     *metrics.Counter
	canceled      *metrics.Counter
	bytesFwd      *metrics.Counter
	bytesBack     *metrics.Counter
	ctrlWriteFail *metrics.Counter
	active        *metrics.Gauge
	relayHigh     *metrics.Gauge
	sessionDur    *metrics.HistogramVec
	sessionBytes  *metrics.Histogram

	nextHopDialFail *metrics.CounterVec

	staged          *metrics.Counter
	stagedAttempts  *metrics.Counter
	stagedDelivered *metrics.Counter
	stagedAborted   *metrics.Counter
	stagedBytes     *metrics.Counter
	stagedRecovered *metrics.Counter
	stageShed       *metrics.Counter
	custodyBytes    *metrics.Gauge

	// Trunk state (cfg.Mux): warm links to next hops, accept-side link
	// accounting, and the drain signal that retires accept-side links on
	// Close once their sessions finish.
	nextHops    *mux.Pool
	linkOpened  *metrics.CounterVec
	linkReused  *metrics.CounterVec
	linkClosed  *metrics.CounterVec
	muxStreams  *metrics.Gauge
	muxHigh     *metrics.Gauge
	poolMetrics *mux.PoolMetrics
	drainCh     chan struct{}

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// New builds a depot with cfg.
func New(cfg Config) *Depot {
	cfg = cfg.withDefaults()
	reg := metrics.NewRegistry()
	root, cancel := context.WithCancel(context.Background())
	d := &Depot{
		cfg:      cfg,
		bufs:     xfer.PoolFor(cfg.BufferSize),
		root:     root,
		cancel:   cancel,
		reg:      reg,
		sessions: newSessionRegistry(cfg.RecentSessions, cfg.OnSessionEnd),
	}
	d.accepted = reg.Counter("lsd_sessions_accepted_total",
		"Sessions admitted and forwarded toward their next hop.")
	rejected := reg.CounterVec("lsd_sessions_rejected_total",
		"Sessions rejected, by reason.", "reason")
	d.rejectedBusy = rejected.With("busy")
	d.rejectedRoute = rejected.With("route")
	d.rejectedProto = rejected.With("proto")
	d.completed = reg.Counter("lsd_sessions_completed_total",
		"Relay sessions fully drained in both directions.")
	d.canceled = reg.Counter("lsd_sessions_canceled_total",
		"Sessions cancelled by shutdown after the drain timeout.")
	bytes := reg.CounterVec("lsd_relay_bytes_total",
		"Bytes relayed, by direction (forward is toward the target).", "direction")
	d.bytesFwd = bytes.With("forward")
	d.bytesBack = bytes.With("backward")
	d.ctrlWriteFail = reg.Counter("lsd_control_write_failures_total",
		"Accept/reject frames dropped because the peer stalled past the write deadline.")
	d.active = reg.Gauge("lsd_sessions_active",
		"Relay sessions in flight right now.")
	d.relayHigh = reg.Gauge("lsd_relay_buffer_high_water_bytes",
		"Largest single relay-buffer fill observed, bounded by the configured buffer size.")
	d.sessionDur = reg.HistogramVec("lsd_session_duration_seconds",
		"Session duration from header receipt to teardown, by outcome.", "outcome", durationBuckets)
	d.sessionBytes = reg.Histogram("lsd_session_bytes",
		"Bytes (both directions) moved by one finished relay session.", byteBuckets)
	d.nextHopDialFail = reg.CounterVec("lsd_next_hop_dial_failures_total",
		"Next-hop dial failures (relay and staged), by next-hop address.", "next_hop")
	d.staged = reg.Counter("lsd_staged_sessions_total",
		"Staged sessions taken into custody.")
	d.stagedAttempts = reg.Counter("lsd_staged_delivery_attempts_total",
		"Staged delivery attempts, redelivery retries included.")
	d.stagedDelivered = reg.Counter("lsd_staged_delivered_total",
		"Staged sessions delivered downstream.")
	d.stagedAborted = reg.Counter("lsd_staged_aborted_total",
		"Staged sessions abandoned past the stage deadline.")
	d.stagedBytes = reg.Counter("lsd_staged_bytes_total",
		"Bytes taken into staged custody.")
	d.stagedRecovered = reg.Counter("lsl_staged_recovered_total",
		"Custody sessions re-admitted from the write-ahead journal after a restart.")
	d.stageShed = reg.Counter("lsl_stage_shed_total",
		"Staged sessions refused because the global custody budget was exhausted.")
	d.custodyBytes = reg.Gauge("lsl_custody_bytes",
		"Staged payload bytes currently in custody, across all sessions.")
	d.drainCh = make(chan struct{})
	if cfg.Mux {
		d.linkOpened = reg.CounterVec("lsl_link_opened_total",
			"Trunks established (hello exchange completed), by side.", "side")
		d.linkReused = reg.CounterVec("lsl_link_reused_total",
			"Sessions carried on an already-open trunk instead of a fresh TCP connection, by side.", "side")
		d.linkClosed = reg.CounterVec("lsl_link_closed_total",
			"Trunks torn down (idle timeout, error, shutdown), by side.", "side")
		d.muxStreams = reg.Gauge("lsl_mux_streams",
			"Multiplexed session streams live right now (both sides).")
		d.muxHigh = reg.Gauge("lsl_mux_stream_high_water",
			"Most concurrent streams observed on any one trunk.")
		d.poolMetrics = &mux.PoolMetrics{
			LinkOpened:      d.linkOpened.With("dial"),
			LinkReused:      d.linkReused.With("dial"),
			LinkClosed:      d.linkClosed.With("dial"),
			Streams:         d.muxStreams,
			StreamHighWater: d.muxHigh,
		}
		d.nextHops = mux.NewPool(mux.PoolConfig{
			Dial:              mux.Dialer(cfg.Dial),
			IdleTimeout:       cfg.LinkIdleTimeout,
			MaxStreamsPerLink: cfg.LinkMaxStreams,
			SockSndBuf:        cfg.SockSndBuf,
			SockRcvBuf:        cfg.SockRcvBuf,
			Metrics:           d.poolMetrics,
			Logf:              cfg.Logf,
		})
	}
	// Surviving custody sessions resume redelivery immediately — they
	// only dial outward, so they need no listener to make progress.
	d.recoverCustody()
	return d
}

// dialNext opens the next-hop transport for one session: a stream on a
// warm trunk when mux is on (classic fallback for non-mux hops inside
// the pool), a fresh tuned connection otherwise.
func (d *Depot) dialNext(ctx context.Context, addr string) (net.Conn, error) {
	if d.nextHops != nil {
		return d.nextHops.DialContext(ctx, "tcp", addr)
	}
	nc, err := d.cfg.Dial(ctx, "tcp", addr)
	if err == nil {
		sockopt.Tune(nc, d.cfg.SockSndBuf, d.cfg.SockRcvBuf)
	}
	return nc, err
}

// Stats snapshots the counters.
func (d *Depot) Stats() Stats {
	return Stats{
		Accepted:               d.accepted.Value(),
		RejectedBusy:           d.rejectedBusy.Value(),
		RejectedRoute:          d.rejectedRoute.Value(),
		RejectedProto:          d.rejectedProto.Value(),
		Completed:              d.completed.Value(),
		Canceled:               d.canceled.Value(),
		BytesForward:           d.bytesFwd.Value(),
		BytesBackward:          d.bytesBack.Value(),
		Active:                 d.active.Value(),
		MaxBuffered:            d.relayHigh.Value(),
		ControlWriteFailures:   d.ctrlWriteFail.Value(),
		DialFailures:           d.nextHopDialFail.Sum(),
		Staged:                 d.staged.Value(),
		StagedDeliveryAttempts: d.stagedAttempts.Value(),
		StagedDelivered:        d.stagedDelivered.Value(),
		StagedAborted:          d.stagedAborted.Value(),
		StagedBytes:            d.stagedBytes.Value(),
		StagedShed:             d.stageShed.Value(),
		StagedRecovered:        d.stagedRecovered.Value(),
		CustodyBytes:           d.custodyBytes.Value(),
	}
}

// Metrics exposes the depot's metric registry (rendered by the admin
// handler's /metrics endpoint).
func (d *Depot) Metrics() *metrics.Registry { return d.reg }

// Sessions snapshots live sessions and the recently-finished ring.
func (d *Depot) Sessions() Snapshot { return d.sessions.snapshot() }

func (d *Depot) logf(format string, args ...interface{}) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// ListenAndServe binds addr and serves until Close.
func (d *Depot) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return d.Serve(ln)
}

// Serve runs the accept loop on ln until Close (or a permanent accept
// error). Each session runs on its own goroutine under the depot-root
// context.
func (d *Depot) Serve(ln net.Listener) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		ln.Close()
		return errors.New("depot: closed")
	}
	d.ln = ln
	d.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			d.mu.Lock()
			closed := d.closed
			d.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		sockopt.Tune(nc, d.cfg.SockSndBuf, d.cfg.SockRcvBuf)
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.handleConn(d.root, nc)
		}()
	}
}

// Addr returns the bound address once Serve has started.
func (d *Depot) Addr() net.Addr {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ln == nil {
		return nil
	}
	return d.ln.Addr()
}

// Close stops the accept loop, gives in-flight sessions (relays
// mid-stream and staged deliveries mid-retry) the drain timeout to finish
// on their own, then cancels the remainder via the root context and waits
// for them to unwind. Cancelled sessions are recorded with the "canceled"
// outcome, so Close returns within roughly the drain timeout plus one
// teardown round-trip. A second Close is a no-op.
func (d *Depot) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		d.wg.Wait()
		return nil
	}
	d.closed = true
	ln := d.ln
	d.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	// Start draining trunks on both sides: accept-side links refuse new
	// streams and close once their sessions finish; next-hop links
	// likewise retire as their relays complete.
	close(d.drainCh)
	if d.nextHops != nil {
		d.nextHops.Drain()
	}
	done := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(done)
	}()
	if d.cfg.DrainTimeout > 0 {
		timer := time.NewTimer(d.cfg.DrainTimeout)
		select {
		case <-done:
			timer.Stop()
		case <-timer.C:
			d.logf("depot: drain timeout %v expired, cancelling in-flight sessions", d.cfg.DrainTimeout)
			d.cancel()
		}
	}
	<-done
	d.cancel() // release the root context even on a clean drain
	if d.nextHops != nil {
		d.nextHops.Close()
	}
	return err
}

// Kill hard-stops the depot: the listener closes and the root context
// cancels immediately, with no drain — in-flight relays and staged
// deliveries are cut mid-stream, exactly as a crash or SIGKILL would cut
// them. Custody journal entries for undelivered staged sessions stay on
// disk for the next process to recover. Chaos drills and the
// crash-recovery tests use this; operators wanting a graceful stop use
// Close.
func (d *Depot) Kill() {
	d.mu.Lock()
	already := d.closed
	d.closed = true
	ln := d.ln
	d.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	d.cancel()
	d.wg.Wait()
	if !already && d.nextHops != nil {
		d.nextHops.Close()
	}
}

// writeControl writes an accept/reject frame under the control write
// deadline so a stalled peer cannot pin the handler, counting drops.
func (d *Depot) writeControl(c netConnLike, f *wire.AcceptFrame) bool {
	c.SetWriteDeadline(time.Now().Add(d.cfg.WriteTimeout))
	_, err := c.Write(f.Encode())
	c.SetWriteDeadline(time.Time{})
	if err != nil {
		d.ctrlWriteFail.Inc()
		d.logf("depot: session %s %s frame write failed: %v", f.Session, wire.CodeString(f.Code), err)
	}
	return err == nil
}

// reject writes a reject frame under the control write deadline and
// closes the transport.
func (d *Depot) reject(nc netConnLike, id wire.SessionID, code uint8) {
	d.writeControl(nc, &wire.AcceptFrame{Code: code, Session: id})
	nc.Close()
}

// sessionState names a relay session's position in its lifecycle. The
// transitions are linear — handshaking → dialing → relaying → done —
// with every failure jumping straight to done through session.finish.
type sessionState uint8

const (
	stateHandshaking sessionState = iota
	stateDialing
	stateRelaying
	stateDone
)

// session is one relay session moving through the depot's state machine.
// It owns both transports and funnels every exit — rejection, completion,
// cancellation — through the single finish path, so the admission slot,
// the ring entry, and the per-outcome histograms can never diverge.
type session struct {
	d     *Depot
	up    net.Conn
	down  net.Conn
	hdr   *wire.OpenHeader
	peer  string
	start time.Time
	state sessionState

	admitted bool
	ls       *liveSession
	canceled atomic.Bool
}

// handleConn dispatches one inbound transport connection: with mux
// enabled it probes the first four bytes — "LSLM" marks a trunk carrying
// many sessions, anything else (classic "LSL1" headers included) is
// handled as one per-session connection — so mux and non-mux peers share
// one listening port.
func (d *Depot) handleConn(ctx context.Context, nc net.Conn) {
	if !d.cfg.Mux {
		d.handle(ctx, nc)
		return
	}
	nc.SetReadDeadline(time.Now().Add(d.cfg.HandshakeTimeout))
	var magic [4]byte
	if _, err := io.ReadFull(nc, magic[:]); err != nil {
		d.logf("depot: probe read from %v: %v", nc.RemoteAddr(), err)
		nc.Close()
		return
	}
	if wire.IsMuxMagic(magic[:]) {
		d.serveLink(ctx, newPrefixConn(nc, magic[:]))
		return
	}
	nc.SetReadDeadline(time.Time{})
	d.handle(ctx, newPrefixConn(nc, magic[:]))
}

// serveLink runs one accept-side trunk: every stream the peer opens is
// handled as an ordinary session (same admission, registry, and metrics
// as a per-connection session). The link drains on Close — new streams
// refused, live sessions run to completion — and is torn down outright
// when the root context cancels.
func (d *Depot) serveLink(ctx context.Context, nc net.Conn) {
	link, err := mux.Server(nc, mux.LinkConfig{Logf: d.cfg.Logf})
	if err != nil {
		d.logf("depot: trunk handshake from %v: %v", nc.RemoteAddr(), err)
		nc.Close()
		return
	}
	d.linkOpened.With("accept").Inc()
	d.logf("depot: trunk established from %v", nc.RemoteAddr())
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			link.Close()
		case <-d.drainCh:
			link.Drain()
		case <-stop:
		}
	}()
	first := true
	for {
		st, err := link.AcceptStream()
		if err != nil {
			d.linkClosed.With("accept").Inc()
			d.logf("depot: trunk from %v closed: %v", nc.RemoteAddr(), err)
			return
		}
		if first {
			first = false
		} else {
			d.linkReused.With("accept").Inc()
		}
		d.muxStreams.Inc()
		d.muxHigh.SetMax(int64(link.HighWater()))
		d.wg.Add(1)
		go func(st *mux.Stream) {
			defer d.wg.Done()
			defer d.muxStreams.Dec()
			d.handle(ctx, st)
		}(st)
	}
}

// handle runs one inbound transport connection as a session — unless
// gossip is enabled and the first bytes carry the LSLG magic, in which
// case the whole connection is handed to the gossip handler. The probe
// happens here (not just in handleConn) so gossip exchanges arrive
// equally over classic connections and mux trunk streams.
func (d *Depot) handle(ctx context.Context, up net.Conn) {
	if d.cfg.OnGossip != nil {
		var magic [4]byte
		up.SetReadDeadline(time.Now().Add(d.cfg.HandshakeTimeout))
		if _, err := io.ReadFull(up, magic[:]); err != nil {
			up.Close()
			return
		}
		up.SetReadDeadline(time.Time{})
		if wire.IsGossipMagic(magic[:]) {
			d.cfg.OnGossip(newPrefixConn(up, magic[:]))
			return
		}
		up = newPrefixConn(up, magic[:])
	}
	s := &session{d: d, up: up, peer: remoteAddr(up), start: time.Now(), state: stateHandshaking}
	s.run(ctx)
}

// Dialer returns the depot's next-hop dialer: a stream on a warm mux
// trunk where one exists, a fresh transport connection otherwise. The
// gossip layer uses it so forecast exchanges ride the same trunks as
// sessions instead of paying their own handshakes.
func (d *Depot) Dialer() func(ctx context.Context, addr string) (net.Conn, error) {
	return d.dialNext
}

// prefixConn replays probed bytes ahead of the underlying conn's stream.
type prefixConn struct {
	net.Conn
	prefix []byte
}

func newPrefixConn(nc net.Conn, prefix []byte) net.Conn {
	return &prefixConn{Conn: nc, prefix: append([]byte(nil), prefix...)}
}

func (p *prefixConn) Read(b []byte) (int, error) {
	if len(p.prefix) > 0 {
		n := copy(b, p.prefix)
		p.prefix = p.prefix[n:]
		return n, nil
	}
	return p.Conn.Read(b)
}

// CloseWrite forwards half-close so EOF propagation still works through
// the wrapper.
func (p *prefixConn) CloseWrite() error {
	if cw, ok := p.Conn.(interface{ CloseWrite() error }); ok {
		return cw.CloseWrite()
	}
	return nil
}

func (s *session) run(ctx context.Context) {
	d := s.d
	if !s.handshake() {
		return
	}
	if s.hdr.Flags&wire.FlagStaged != 0 {
		d.handleStaged(ctx, s.up, s.hdr)
		return
	}
	if !s.admit() || !s.dial(ctx) {
		return
	}
	s.relay(ctx)
}

// handshake reads and validates the open header.
func (s *session) handshake() bool {
	d := s.d
	s.up.SetReadDeadline(time.Now().Add(d.cfg.HandshakeTimeout))
	hdr, err := wire.ReadOpenHeader(s.up)
	if err != nil {
		d.logf("depot: bad header from %v: %v", s.up.RemoteAddr(), err)
		s.fail(d.rejectedProto, OutcomeRejectedProto, 0)
		return false
	}
	s.up.SetReadDeadline(time.Time{})
	s.hdr = hdr
	if hdr.Final() {
		// We are the last hop in the route but run as a depot, not a
		// target: the initiator misrouted.
		s.fail(d.rejectedRoute, OutcomeRejectedRoute, wire.CodeRejectRoute)
		return false
	}
	return true
}

// admit reserves the admission slot atomically (increment, then check) so
// N concurrent opens against MaxSessions=k admit exactly k — a plain
// load-then-compare could over-admit under load.
func (s *session) admit() bool {
	d := s.d
	if d.active.Add(1) > int64(d.cfg.MaxSessions) {
		d.active.Dec()
		d.logf("depot: session %s rejected: busy", s.hdr.Session)
		s.fail(d.rejectedBusy, OutcomeRejectedBusy, wire.CodeRejectBusy)
		return false
	}
	s.admitted = true
	return true
}

// dial connects the next hop and forwards the header with the hop index
// advanced; on success the session goes live in the registry.
func (s *session) dial(ctx context.Context) bool {
	d := s.d
	s.state = stateDialing
	next, _ := s.hdr.NextHop()
	dctx, cancel := context.WithTimeout(ctx, d.cfg.DialTimeout)
	down, err := d.dialNext(dctx, next)
	cancel()
	if err != nil {
		d.nextHopDialFail.With(next).Inc()
		d.logf("depot: session %s next hop %s unreachable: %v", s.hdr.Session, next, err)
		s.fail(d.rejectedRoute, OutcomeDialFailed, wire.CodeRejectRoute)
		return false
	}
	s.down = down
	s.hdr.HopIndex++
	enc, err := s.hdr.Encode()
	if err != nil {
		s.fail(d.rejectedProto, OutcomeRejectedProto, wire.CodeRejectProto)
		return false
	}
	// Forward the header under the control write deadline: a next hop
	// that accepted the connection but stalled its receive window would
	// otherwise wedge this handler past DialTimeout.
	down.SetWriteDeadline(time.Now().Add(d.cfg.WriteTimeout))
	_, err = down.Write(enc)
	down.SetWriteDeadline(time.Time{})
	if err != nil {
		d.logf("depot: session %s header forward to %s failed: %v", s.hdr.Session, next, err)
		s.fail(d.rejectedRoute, OutcomeRejectedRoute, wire.CodeRejectRoute)
		return false
	}
	d.accepted.Inc()
	s.ls = d.sessions.add(SessionInfo{
		ID:       s.hdr.Session.String(),
		Kind:     KindRelay,
		Peer:     s.peer,
		NextHop:  next,
		Hop:      int(s.hdr.HopIndex),
		RouteLen: len(s.hdr.Route),
		Started:  s.start,
	})
	d.logf("depot: session %s %v -> %s (hop %d/%d)", s.hdr.Session, s.up.RemoteAddr(), next, s.hdr.HopIndex, len(s.hdr.Route))
	return true
}

// relay pumps both directions through the pooled data plane until both
// sides drain or the root context cancels the session. A watchdog closes
// the transports on cancellation so pumps blocked in Read unwind.
func (s *session) relay(ctx context.Context) {
	d := s.d
	s.state = stateRelaying
	unwatch := s.watchCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		s.pump(ctx, s.down, s.up, &s.ls.bytesFwd, d.bytesFwd) // forward: payload toward the target
		halfClose(s.down)
	}()
	go func() {
		defer wg.Done()
		s.pump(ctx, s.up, s.down, &s.ls.bytesBck, d.bytesBack) // backward: accept frame and replies
		halfClose(s.up)
	}()
	wg.Wait()
	unwatch()
	if s.canceled.Load() {
		d.canceled.Inc()
		s.finish(OutcomeCanceled, 0)
		d.logf("depot: session %s canceled by shutdown", s.hdr.Session)
		return
	}
	d.completed.Inc()
	s.finish(OutcomeCompleted, 0)
	d.logf("depot: session %s done in %v", s.hdr.Session, time.Since(s.start).Round(time.Millisecond))
}

// watchCancel tears both transports down when ctx fires so blocked reads
// and writes unwind promptly; the returned stop function ends the watch.
func (s *session) watchCancel(ctx context.Context) func() {
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			s.canceled.Store(true)
			s.up.Close()
			s.down.Close()
		case <-stop:
		}
	}()
	return func() { close(stop) }
}

// pump moves one direction through the shared data plane, crediting the
// session's live byte counter and the depot total as chunks land so
// /sessions shows in-flight progress, and tracking the buffer high-water
// mark.
func (s *session) pump(ctx context.Context, dst io.Writer, src io.Reader, live *atomic.Uint64, total *metrics.Counter) int64 {
	n, _ := xfer.CopyCounted(dst, src, s.d.bufs, xfer.CopyConfig{
		Counters:  []xfer.Adder{xfer.AtomicAdder{U: live}, total},
		HighWater: s.d.relayHigh,
		Ctx:       ctx,
	})
	return n
}

// fail bumps the rejection counter, emits the reject frame (code 0 means
// none — the peer never completed a handshake), and retires the session.
func (s *session) fail(counter *metrics.Counter, outcome string, code uint8) {
	counter.Inc()
	s.finish(outcome, code)
}

// finish is the single exit path for every session state: it releases the
// admission slot, writes the reject frame when asked, closes both
// transports, and records the ring entry plus the per-outcome duration
// histogram (and the session-bytes histogram once the session went live).
func (s *session) finish(outcome string, code uint8) {
	if s.state == stateDone {
		return
	}
	s.state = stateDone
	d := s.d
	if code != 0 {
		d.reject(s.up, s.hdr.Session, code)
	}
	s.up.Close()
	if s.down != nil {
		s.down.Close()
	}
	if s.admitted {
		d.active.Dec()
		s.admitted = false
	}
	dur := time.Since(s.start)
	if s.ls != nil {
		d.sessionBytes.Observe(float64(s.ls.bytesFwd.Load() + s.ls.bytesBck.Load()))
		d.sessions.finish(s.ls, outcome, dur)
	} else {
		info := SessionInfo{
			Kind:            KindRelay,
			Peer:            s.peer,
			Started:         s.start,
			Outcome:         outcome,
			DurationSeconds: dur.Seconds(),
		}
		if s.hdr != nil {
			info.ID = s.hdr.Session.String()
			info.Hop = int(s.hdr.HopIndex)
			info.RouteLen = len(s.hdr.Route)
			// A session that died before going live (typically a failed
			// next-hop dial) still names the hop it was bound for: the
			// logistics hook poisons that edge's loss forecast, and
			// without the address here a dead next hop would never be
			// fed back into planning.
			if next, ok := s.hdr.NextHop(); ok {
				info.NextHop = next
			}
		}
		d.sessions.record(info)
	}
	d.sessionDur.With(outcome).Observe(dur.Seconds())
}

// remoteAddr names a peer for session records (nil-safe).
func remoteAddr(c net.Conn) string {
	if c == nil || c.RemoteAddr() == nil {
		return ""
	}
	return c.RemoteAddr().String()
}

// halfClose propagates EOF without tearing down the reverse direction.
func halfClose(c net.Conn) {
	type closeWriter interface{ CloseWrite() error }
	if cw, ok := c.(closeWriter); ok {
		cw.CloseWrite()
	}
	// Without half-close support the caller's full Close (after both
	// directions finish) ends the connection.
}

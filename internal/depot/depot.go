// Package depot implements lsd, the LSL depot daemon: an unprivileged
// user-level process that accepts session-open headers, dials the next hop
// of the loose source route, and then relays bytes in both directions
// between the two transport connections through a small bounded buffer —
// the "transport to transport binding based on the LSL header information"
// of the paper's §IV-A.
//
// The forward direction carries session payload; the backward direction
// carries the session-accept frame and any application replies, so the
// depot itself needs no knowledge of the session state machine beyond the
// open header. Admission control (the paper's §VII scalability note) caps
// concurrent sessions and rejects the excess with a busy code rather than
// degrading every flow.
//
// A depot is observable: every instance carries a metrics registry
// (Prometheus text format via Metrics), a live-session registry with a
// ring of recently finished sessions (Sessions), and an HTTP admin
// surface (AdminHandler) exposing both plus pprof.
package depot

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lsl/internal/core"
	"lsl/internal/metrics"
	"lsl/internal/wire"
)

// Config tunes a depot.
type Config struct {
	// BufferSize is the per-direction relay buffer (default 256 KiB) — the
	// paper's "small, short-lived" intermediate allocation.
	BufferSize int
	// MaxSessions caps concurrent sessions (0 = 256).
	MaxSessions int
	// DialTimeout bounds next-hop connection establishment (default 10s).
	DialTimeout time.Duration
	// HandshakeTimeout bounds the header read (default 15s).
	HandshakeTimeout time.Duration
	// WriteTimeout bounds depot-originated control-frame writes (accept
	// and reject frames) so a stalled peer cannot pin a handler goroutine
	// (default 5s).
	WriteTimeout time.Duration
	// RecentSessions sizes the finished-session ring kept for /sessions
	// (default 64).
	RecentSessions int
	// Dial overrides the next-hop dialer (tests, emulation).
	Dial core.Dialer
	// Logf, when set, receives one line per session event.
	Logf func(format string, args ...interface{})
	// MaxStageBytes bounds a staged (custody) session's payload.
	MaxStageBytes int64
	// StageRetryInterval is the redelivery backoff for staged sessions.
	StageRetryInterval time.Duration
	// StageDeadline bounds how long staged payloads are retried before
	// being discarded.
	StageDeadline time.Duration
}

func (c Config) withDefaults() Config {
	if c.BufferSize == 0 {
		c.BufferSize = 256 << 10
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 256
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 10 * time.Second
	}
	if c.HandshakeTimeout == 0 {
		c.HandshakeTimeout = 15 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.RecentSessions == 0 {
		c.RecentSessions = DefaultRecentSessions
	}
	if c.Dial == nil {
		var d net.Dialer
		c.Dial = d.DialContext
	}
	if c.MaxStageBytes == 0 {
		c.MaxStageBytes = DefaultMaxStageBytes
	}
	if c.StageRetryInterval == 0 {
		c.StageRetryInterval = DefaultStageRetryInterval
	}
	if c.StageDeadline == 0 {
		c.StageDeadline = DefaultStageDeadline
	}
	return c
}

// Stats is a snapshot of depot counters.
type Stats struct {
	Accepted      uint64
	RejectedBusy  uint64
	RejectedRoute uint64
	RejectedProto uint64
	Completed     uint64
	BytesForward  uint64
	BytesBackward uint64
	Active        int64
	// MaxBuffered is the high-water mark of a single relay-buffer fill —
	// the largest read the relay loop has moved in one step, bounded by
	// the configured buffer size.
	MaxBuffered int64
	// ControlWriteFailures counts accept/reject frames dropped because the
	// peer stalled past the write deadline.
	ControlWriteFailures uint64
	Staged               uint64
	StagedDelivered      uint64
	StagedAborted        uint64
	StagedBytes          uint64
}

// Histogram bucket bounds for the admin metrics.
var (
	durationBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 300}
	byteBuckets     = []float64{1 << 10, 16 << 10, 256 << 10, 4 << 20, 64 << 20, 1 << 30}
)

// Depot is a running daemon instance.
type Depot struct {
	cfg Config

	reg      *metrics.Registry
	sessions *sessionRegistry

	accepted      *metrics.Counter
	rejectedBusy  *metrics.Counter
	rejectedRoute *metrics.Counter
	rejectedProto *metrics.Counter
	completed     *metrics.Counter
	bytesFwd      *metrics.Counter
	bytesBack     *metrics.Counter
	ctrlWriteFail *metrics.Counter
	active        *metrics.Gauge
	relayHigh     *metrics.Gauge
	sessionDur    *metrics.HistogramVec
	sessionBytes  *metrics.Histogram

	staged          *metrics.Counter
	stagedDelivered *metrics.Counter
	stagedAborted   *metrics.Counter
	stagedBytes     *metrics.Counter

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// New builds a depot with cfg.
func New(cfg Config) *Depot {
	cfg = cfg.withDefaults()
	reg := metrics.NewRegistry()
	d := &Depot{
		cfg:      cfg,
		reg:      reg,
		sessions: newSessionRegistry(cfg.RecentSessions),
	}
	d.accepted = reg.Counter("lsd_sessions_accepted_total",
		"Sessions admitted and forwarded toward their next hop.")
	rejected := reg.CounterVec("lsd_sessions_rejected_total",
		"Sessions rejected, by reason.", "reason")
	d.rejectedBusy = rejected.With("busy")
	d.rejectedRoute = rejected.With("route")
	d.rejectedProto = rejected.With("proto")
	d.completed = reg.Counter("lsd_sessions_completed_total",
		"Relay sessions fully drained in both directions.")
	bytes := reg.CounterVec("lsd_relay_bytes_total",
		"Bytes relayed, by direction (forward is toward the target).", "direction")
	d.bytesFwd = bytes.With("forward")
	d.bytesBack = bytes.With("backward")
	d.ctrlWriteFail = reg.Counter("lsd_control_write_failures_total",
		"Accept/reject frames dropped because the peer stalled past the write deadline.")
	d.active = reg.Gauge("lsd_sessions_active",
		"Relay sessions in flight right now.")
	d.relayHigh = reg.Gauge("lsd_relay_buffer_high_water_bytes",
		"Largest single relay-buffer fill observed, bounded by the configured buffer size.")
	d.sessionDur = reg.HistogramVec("lsd_session_duration_seconds",
		"Session duration from header receipt to teardown, by outcome.", "outcome", durationBuckets)
	d.sessionBytes = reg.Histogram("lsd_session_bytes",
		"Bytes (both directions) moved by one finished relay session.", byteBuckets)
	d.staged = reg.Counter("lsd_staged_sessions_total",
		"Staged sessions taken into custody.")
	d.stagedDelivered = reg.Counter("lsd_staged_delivered_total",
		"Staged sessions delivered downstream.")
	d.stagedAborted = reg.Counter("lsd_staged_aborted_total",
		"Staged sessions abandoned past the stage deadline.")
	d.stagedBytes = reg.Counter("lsd_staged_bytes_total",
		"Bytes taken into staged custody.")
	return d
}

// Stats snapshots the counters.
func (d *Depot) Stats() Stats {
	return Stats{
		Accepted:             d.accepted.Value(),
		RejectedBusy:         d.rejectedBusy.Value(),
		RejectedRoute:        d.rejectedRoute.Value(),
		RejectedProto:        d.rejectedProto.Value(),
		Completed:            d.completed.Value(),
		BytesForward:         d.bytesFwd.Value(),
		BytesBackward:        d.bytesBack.Value(),
		Active:               d.active.Value(),
		MaxBuffered:          d.relayHigh.Value(),
		ControlWriteFailures: d.ctrlWriteFail.Value(),
		Staged:               d.staged.Value(),
		StagedDelivered:      d.stagedDelivered.Value(),
		StagedAborted:        d.stagedAborted.Value(),
		StagedBytes:          d.stagedBytes.Value(),
	}
}

// Metrics exposes the depot's metric registry (rendered by the admin
// handler's /metrics endpoint).
func (d *Depot) Metrics() *metrics.Registry { return d.reg }

// Sessions snapshots live sessions and the recently-finished ring.
func (d *Depot) Sessions() Snapshot { return d.sessions.snapshot() }

func (d *Depot) logf(format string, args ...interface{}) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// ListenAndServe binds addr and serves until Close.
func (d *Depot) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return d.Serve(ln)
}

// Serve runs the accept loop on ln until Close (or a permanent accept
// error). Each session runs on its own goroutine pair.
func (d *Depot) Serve(ln net.Listener) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		ln.Close()
		return errors.New("depot: closed")
	}
	d.ln = ln
	d.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			d.mu.Lock()
			closed := d.closed
			d.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.handle(nc)
		}()
	}
}

// Addr returns the bound address once Serve has started.
func (d *Depot) Addr() net.Addr {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ln == nil {
		return nil
	}
	return d.ln.Addr()
}

// Close stops the accept loop and waits for in-flight sessions to finish.
func (d *Depot) Close() error {
	d.mu.Lock()
	d.closed = true
	ln := d.ln
	d.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	d.wg.Wait()
	return err
}

// writeControl writes an accept/reject frame under the control write
// deadline so a stalled peer cannot pin the handler, counting drops.
func (d *Depot) writeControl(c netConnLike, f *wire.AcceptFrame) bool {
	c.SetWriteDeadline(time.Now().Add(d.cfg.WriteTimeout))
	_, err := c.Write(f.Encode())
	c.SetWriteDeadline(time.Time{})
	if err != nil {
		d.ctrlWriteFail.Inc()
		d.logf("depot: session %s %s frame write failed: %v", f.Session, wire.CodeString(f.Code), err)
	}
	return err == nil
}

func (d *Depot) reject(nc net.Conn, id wire.SessionID, code uint8) {
	d.writeControl(nc, &wire.AcceptFrame{Code: code, Session: id})
	nc.Close()
}

// finishRejected records a session that never went live: ring entry plus
// the per-outcome duration histogram.
func (d *Depot) finishRejected(hdr *wire.OpenHeader, peer, outcome string, start time.Time) {
	dur := time.Since(start)
	info := SessionInfo{
		Kind:            KindRelay,
		Peer:            peer,
		Started:         start,
		Outcome:         outcome,
		DurationSeconds: dur.Seconds(),
	}
	if hdr != nil {
		info.ID = hdr.Session.String()
		info.Hop = int(hdr.HopIndex)
		info.RouteLen = len(hdr.Route)
	}
	d.sessions.record(info)
	d.sessionDur.With(outcome).Observe(dur.Seconds())
}

// handle runs one session: header, admission, next-hop dial, relay.
func (d *Depot) handle(up net.Conn) {
	start := time.Now()
	peer := remoteAddr(up)
	up.SetReadDeadline(time.Now().Add(d.cfg.HandshakeTimeout))
	hdr, err := wire.ReadOpenHeader(up)
	if err != nil {
		d.rejectedProto.Inc()
		d.logf("depot: bad header from %v: %v", up.RemoteAddr(), err)
		up.Close()
		d.finishRejected(nil, peer, OutcomeRejectedProto, start)
		return
	}
	up.SetReadDeadline(time.Time{})

	if hdr.Final() {
		// We are the last hop in the route but run as a depot, not a
		// target: the initiator misrouted.
		d.rejectedRoute.Inc()
		d.reject(up, hdr.Session, wire.CodeRejectRoute)
		d.finishRejected(hdr, peer, OutcomeRejectedRoute, start)
		return
	}
	if hdr.Flags&wire.FlagStaged != 0 {
		d.handleStaged(up, hdr)
		return
	}
	// Admission reserves the slot atomically (increment, then check) so N
	// concurrent opens against MaxSessions=k admit exactly k — a plain
	// load-then-compare could over-admit under load.
	if d.active.Add(1) > int64(d.cfg.MaxSessions) {
		d.active.Dec()
		d.rejectedBusy.Inc()
		d.logf("depot: session %s rejected: busy", hdr.Session)
		d.reject(up, hdr.Session, wire.CodeRejectBusy)
		d.finishRejected(hdr, peer, OutcomeRejectedBusy, start)
		return
	}

	next, _ := hdr.NextHop()
	ctx, cancel := context.WithTimeout(context.Background(), d.cfg.DialTimeout)
	down, err := d.cfg.Dial(ctx, "tcp", next)
	cancel()
	if err != nil {
		d.active.Dec()
		d.rejectedRoute.Inc()
		d.logf("depot: session %s next hop %s unreachable: %v", hdr.Session, next, err)
		d.reject(up, hdr.Session, wire.CodeRejectRoute)
		d.finishRejected(hdr, peer, OutcomeRejectedRoute, start)
		return
	}

	// Forward the header with the hop index advanced.
	hdr.HopIndex++
	enc, err := hdr.Encode()
	if err != nil {
		d.active.Dec()
		d.rejectedProto.Inc()
		d.reject(up, hdr.Session, wire.CodeRejectProto)
		down.Close()
		d.finishRejected(hdr, peer, OutcomeRejectedProto, start)
		return
	}
	if _, err := down.Write(enc); err != nil {
		d.active.Dec()
		d.rejectedRoute.Inc()
		d.reject(up, hdr.Session, wire.CodeRejectRoute)
		down.Close()
		d.finishRejected(hdr, peer, OutcomeRejectedRoute, start)
		return
	}

	d.accepted.Inc()
	ls := d.sessions.add(SessionInfo{
		ID:       hdr.Session.String(),
		Kind:     KindRelay,
		Peer:     peer,
		NextHop:  next,
		Hop:      int(hdr.HopIndex),
		RouteLen: len(hdr.Route),
		Started:  start,
	})
	d.logf("depot: session %s %v -> %s (hop %d/%d)", hdr.Session, up.RemoteAddr(), next, hdr.HopIndex, len(hdr.Route))

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		d.relay(down, up, &ls.bytesFwd, d.bytesFwd) // forward: payload toward the target
		halfClose(down)
	}()
	go func() {
		defer wg.Done()
		d.relay(up, down, &ls.bytesBck, d.bytesBack) // backward: accept frame and replies
		halfClose(up)
	}()
	wg.Wait()
	up.Close()
	down.Close()
	d.active.Dec()
	d.completed.Inc()
	dur := time.Since(start)
	d.sessionDur.With(OutcomeCompleted).Observe(dur.Seconds())
	d.sessionBytes.Observe(float64(ls.bytesFwd.Load() + ls.bytesBck.Load()))
	d.sessions.finish(ls, OutcomeCompleted, dur)
	d.logf("depot: session %s done in %v", hdr.Session, dur.Round(time.Millisecond))
}

// relay pumps src into dst through a bounded buffer, crediting each chunk
// to the session's live byte counter and the depot total as it moves so
// /sessions shows in-flight progress, and tracking the buffer high-water
// mark. Returns bytes moved.
func (d *Depot) relay(dst io.Writer, src io.Reader, session *atomic.Uint64, total *metrics.Counter) int64 {
	buf := make([]byte, d.cfg.BufferSize)
	var moved int64
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			d.relayHigh.SetMax(int64(n))
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return moved
			}
			moved += int64(n)
			session.Add(uint64(n))
			total.Add(uint64(n))
		}
		if rerr != nil {
			return moved
		}
	}
}

// remoteAddr names a peer for session records (nil-safe).
func remoteAddr(c net.Conn) string {
	if c == nil || c.RemoteAddr() == nil {
		return ""
	}
	return c.RemoteAddr().String()
}

// halfClose propagates EOF without tearing down the reverse direction.
func halfClose(c net.Conn) {
	type closeWriter interface{ CloseWrite() error }
	if cw, ok := c.(closeWriter); ok {
		cw.CloseWrite()
	}
	// Without half-close support the caller's full Close (after both
	// directions finish) ends the connection.
}

// Package depot implements lsd, the LSL depot daemon: an unprivileged
// user-level process that accepts session-open headers, dials the next hop
// of the loose source route, and then relays bytes in both directions
// between the two transport connections through a small bounded buffer —
// the "transport to transport binding based on the LSL header information"
// of the paper's §IV-A.
//
// The forward direction carries session payload; the backward direction
// carries the session-accept frame and any application replies, so the
// depot itself needs no knowledge of the session state machine beyond the
// open header. Admission control (the paper's §VII scalability note) caps
// concurrent sessions and rejects the excess with a busy code rather than
// degrading every flow.
package depot

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lsl/internal/core"
	"lsl/internal/wire"
)

// Config tunes a depot.
type Config struct {
	// BufferSize is the per-direction relay buffer (default 256 KiB) — the
	// paper's "small, short-lived" intermediate allocation.
	BufferSize int
	// MaxSessions caps concurrent sessions (0 = 256).
	MaxSessions int
	// DialTimeout bounds next-hop connection establishment (default 10s).
	DialTimeout time.Duration
	// HandshakeTimeout bounds the header read (default 15s).
	HandshakeTimeout time.Duration
	// Dial overrides the next-hop dialer (tests, emulation).
	Dial core.Dialer
	// Logf, when set, receives one line per session event.
	Logf func(format string, args ...interface{})
	// MaxStageBytes bounds a staged (custody) session's payload.
	MaxStageBytes int64
	// StageRetryInterval is the redelivery backoff for staged sessions.
	StageRetryInterval time.Duration
	// StageDeadline bounds how long staged payloads are retried before
	// being discarded.
	StageDeadline time.Duration
}

func (c Config) withDefaults() Config {
	if c.BufferSize == 0 {
		c.BufferSize = 256 << 10
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 256
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 10 * time.Second
	}
	if c.HandshakeTimeout == 0 {
		c.HandshakeTimeout = 15 * time.Second
	}
	if c.Dial == nil {
		var d net.Dialer
		c.Dial = d.DialContext
	}
	if c.MaxStageBytes == 0 {
		c.MaxStageBytes = DefaultMaxStageBytes
	}
	if c.StageRetryInterval == 0 {
		c.StageRetryInterval = DefaultStageRetryInterval
	}
	if c.StageDeadline == 0 {
		c.StageDeadline = DefaultStageDeadline
	}
	return c
}

// Stats is a snapshot of depot counters.
type Stats struct {
	Accepted        uint64
	RejectedBusy    uint64
	RejectedRoute   uint64
	RejectedProto   uint64
	Completed       uint64
	BytesForward    uint64
	BytesBackward   uint64
	Active          int64
	MaxBuffered     int64 // high-water mark of a single relay buffer in use
	Staged          uint64
	StagedDelivered uint64
	StagedAborted   uint64
	StagedBytes     uint64
}

// Depot is a running daemon instance.
type Depot struct {
	cfg Config

	accepted      atomic.Uint64
	rejectedBusy  atomic.Uint64
	rejectedRoute atomic.Uint64
	rejectedProto atomic.Uint64
	completed     atomic.Uint64
	bytesFwd      atomic.Uint64
	bytesBack     atomic.Uint64
	active        atomic.Int64

	staged          atomic.Uint64
	stagedDelivered atomic.Uint64
	stagedAborted   atomic.Uint64
	stagedBytes     atomic.Uint64

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// New builds a depot with cfg.
func New(cfg Config) *Depot {
	return &Depot{cfg: cfg.withDefaults()}
}

// Stats snapshots the counters.
func (d *Depot) Stats() Stats {
	return Stats{
		Accepted:        d.accepted.Load(),
		RejectedBusy:    d.rejectedBusy.Load(),
		RejectedRoute:   d.rejectedRoute.Load(),
		RejectedProto:   d.rejectedProto.Load(),
		Completed:       d.completed.Load(),
		BytesForward:    d.bytesFwd.Load(),
		BytesBackward:   d.bytesBack.Load(),
		Active:          d.active.Load(),
		MaxBuffered:     int64(d.cfg.BufferSize),
		Staged:          d.staged.Load(),
		StagedDelivered: d.stagedDelivered.Load(),
		StagedAborted:   d.stagedAborted.Load(),
		StagedBytes:     d.stagedBytes.Load(),
	}
}

func (d *Depot) logf(format string, args ...interface{}) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// ListenAndServe binds addr and serves until Close.
func (d *Depot) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return d.Serve(ln)
}

// Serve runs the accept loop on ln until Close (or a permanent accept
// error). Each session runs on its own goroutine pair.
func (d *Depot) Serve(ln net.Listener) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		ln.Close()
		return errors.New("depot: closed")
	}
	d.ln = ln
	d.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			d.mu.Lock()
			closed := d.closed
			d.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.handle(nc)
		}()
	}
}

// Addr returns the bound address once Serve has started.
func (d *Depot) Addr() net.Addr {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ln == nil {
		return nil
	}
	return d.ln.Addr()
}

// Close stops the accept loop and waits for in-flight sessions to finish.
func (d *Depot) Close() error {
	d.mu.Lock()
	d.closed = true
	ln := d.ln
	d.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	d.wg.Wait()
	return err
}

func (d *Depot) reject(nc net.Conn, id wire.SessionID, code uint8) {
	nc.Write((&wire.AcceptFrame{Code: code, Session: id}).Encode())
	nc.Close()
}

// handle runs one session: header, admission, next-hop dial, relay.
func (d *Depot) handle(up net.Conn) {
	up.SetReadDeadline(time.Now().Add(d.cfg.HandshakeTimeout))
	hdr, err := wire.ReadOpenHeader(up)
	if err != nil {
		d.rejectedProto.Add(1)
		d.logf("depot: bad header from %v: %v", up.RemoteAddr(), err)
		up.Close()
		return
	}
	up.SetReadDeadline(time.Time{})

	if hdr.Final() {
		// We are the last hop in the route but run as a depot, not a
		// target: the initiator misrouted.
		d.rejectedRoute.Add(1)
		d.reject(up, hdr.Session, wire.CodeRejectRoute)
		return
	}
	if hdr.Flags&wire.FlagStaged != 0 {
		d.handleStaged(up, hdr)
		return
	}
	if d.active.Load() >= int64(d.cfg.MaxSessions) {
		d.rejectedBusy.Add(1)
		d.logf("depot: session %s rejected: busy", hdr.Session)
		d.reject(up, hdr.Session, wire.CodeRejectBusy)
		return
	}

	next, _ := hdr.NextHop()
	ctx, cancel := context.WithTimeout(context.Background(), d.cfg.DialTimeout)
	down, err := d.cfg.Dial(ctx, "tcp", next)
	cancel()
	if err != nil {
		d.rejectedRoute.Add(1)
		d.logf("depot: session %s next hop %s unreachable: %v", hdr.Session, next, err)
		d.reject(up, hdr.Session, wire.CodeRejectRoute)
		return
	}

	// Forward the header with the hop index advanced.
	hdr.HopIndex++
	enc, err := hdr.Encode()
	if err != nil {
		d.rejectedProto.Add(1)
		d.reject(up, hdr.Session, wire.CodeRejectProto)
		down.Close()
		return
	}
	if _, err := down.Write(enc); err != nil {
		d.rejectedRoute.Add(1)
		d.reject(up, hdr.Session, wire.CodeRejectRoute)
		down.Close()
		return
	}

	d.accepted.Add(1)
	d.active.Add(1)
	d.logf("depot: session %s %v -> %s (hop %d/%d)", hdr.Session, up.RemoteAddr(), next, hdr.HopIndex, len(hdr.Route))
	start := time.Now()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		n := d.relay(down, up) // forward: payload toward the target
		d.bytesFwd.Add(uint64(n))
		halfClose(down)
	}()
	go func() {
		defer wg.Done()
		n := d.relay(up, down) // backward: accept frame and replies
		d.bytesBack.Add(uint64(n))
		halfClose(up)
	}()
	wg.Wait()
	up.Close()
	down.Close()
	d.active.Add(-1)
	d.completed.Add(1)
	d.logf("depot: session %s done in %v", hdr.Session, time.Since(start).Round(time.Millisecond))
}

// relay pumps src into dst through a bounded buffer, returning bytes moved.
func (d *Depot) relay(dst io.Writer, src io.Reader) int64 {
	buf := make([]byte, d.cfg.BufferSize)
	n, _ := io.CopyBuffer(dst, src, buf)
	return n
}

// halfClose propagates EOF without tearing down the reverse direction.
func halfClose(c net.Conn) {
	type closeWriter interface{ CloseWrite() error }
	if cw, ok := c.(closeWriter); ok {
		cw.CloseWrite()
	}
	// Without half-close support the caller's full Close (after both
	// directions finish) ends the connection.
}

package depot

import (
	"io"
	"net"
	"testing"

	"lsl/internal/wire"
)

// benchSink accepts raw transport connections, answers each open header
// with an accept frame, and discards the payload.
func benchSink(b *testing.B) string {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				hdr, err := wire.ReadOpenHeader(nc)
				if err != nil {
					return
				}
				nc.Write((&wire.AcceptFrame{Code: wire.CodeOK, Session: hdr.Session}).Encode())
				io.Copy(io.Discard, nc)
			}()
		}
	}()
	return ln.Addr().String()
}

func benchDepot(b *testing.B, cfg Config) (*Depot, string) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	d := New(cfg)
	go d.Serve(ln)
	b.Cleanup(func() { d.Close() })
	return d, ln.Addr().String()
}

func benchOpen(b *testing.B, depotAddr, targetAddr string) net.Conn {
	b.Helper()
	nc, err := net.Dial("tcp", depotAddr)
	if err != nil {
		b.Fatal(err)
	}
	hdr := &wire.OpenHeader{
		Session:    wire.NewSessionID(),
		Route:      []string{depotAddr, targetAddr},
		ContentLen: wire.UnknownLength,
	}
	enc, err := hdr.Encode()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := nc.Write(enc); err != nil {
		b.Fatal(err)
	}
	if _, err := wire.ReadAcceptFrame(nc); err != nil {
		b.Fatal(err)
	}
	return nc
}

// BenchmarkRelayThroughput measures the steady-state relay loop: one
// long-lived session pumps fixed chunks loopback initiator -> depot ->
// sink target. Per-op allocations must stay at zero — the relay loop
// itself may not allocate while bytes move.
func BenchmarkRelayThroughput(b *testing.B) {
	targetAddr := benchSink(b)
	_, depotAddr := benchDepot(b, Config{})
	nc := benchOpen(b, depotAddr, targetAddr)
	defer nc.Close()
	chunk := make([]byte, 64<<10)
	b.SetBytes(int64(len(chunk)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nc.Write(chunk); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// BenchmarkRelaySessionChurn opens and tears down one complete session
// per op — this is where per-session relay-buffer allocations show up
// (two fresh BufferSize buffers per session before the pool refactor).
func BenchmarkRelaySessionChurn(b *testing.B) {
	targetAddr := benchSink(b)
	_, depotAddr := benchDepot(b, Config{})
	chunk := make([]byte, 4<<10)
	b.SetBytes(int64(len(chunk)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nc := benchOpen(b, depotAddr, targetAddr)
		if _, err := nc.Write(chunk); err != nil {
			b.Fatal(err)
		}
		nc.Close()
	}
	b.StopTimer()
}

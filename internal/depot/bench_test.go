package depot

import (
	"context"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"lsl/internal/core"
	"lsl/internal/mux"
	"lsl/internal/wire"
)

// benchSink accepts raw transport connections, answers each open header
// with an accept frame, and discards the payload.
func benchSink(b *testing.B) string {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				hdr, err := wire.ReadOpenHeader(nc)
				if err != nil {
					return
				}
				nc.Write((&wire.AcceptFrame{Code: wire.CodeOK, Session: hdr.Session}).Encode())
				io.Copy(io.Discard, nc)
			}()
		}
	}()
	return ln.Addr().String()
}

func benchDepot(b *testing.B, cfg Config) (*Depot, string) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	d := New(cfg)
	go d.Serve(ln)
	b.Cleanup(func() { d.Close() })
	return d, ln.Addr().String()
}

func benchOpen(b *testing.B, depotAddr, targetAddr string) net.Conn {
	b.Helper()
	nc, err := net.Dial("tcp", depotAddr)
	if err != nil {
		b.Fatal(err)
	}
	hdr := &wire.OpenHeader{
		Session:    wire.NewSessionID(),
		Route:      []string{depotAddr, targetAddr},
		ContentLen: wire.UnknownLength,
	}
	enc, err := hdr.Encode()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := nc.Write(enc); err != nil {
		b.Fatal(err)
	}
	if _, err := wire.ReadAcceptFrame(nc); err != nil {
		b.Fatal(err)
	}
	return nc
}

// BenchmarkRelayThroughput measures the steady-state relay loop: one
// long-lived session pumps fixed chunks loopback initiator -> depot ->
// sink target. Per-op allocations must stay at zero — the relay loop
// itself may not allocate while bytes move.
func BenchmarkRelayThroughput(b *testing.B) {
	targetAddr := benchSink(b)
	_, depotAddr := benchDepot(b, Config{})
	nc := benchOpen(b, depotAddr, targetAddr)
	defer nc.Close()
	chunk := make([]byte, 64<<10)
	b.SetBytes(int64(len(chunk)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nc.Write(chunk); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// BenchmarkRelaySessionChurn opens and tears down one complete session
// per op — this is where per-session relay-buffer allocations show up
// (two fresh BufferSize buffers per session before the pool refactor).
func BenchmarkRelaySessionChurn(b *testing.B) {
	targetAddr := benchSink(b)
	_, depotAddr := benchDepot(b, Config{})
	chunk := make([]byte, 4<<10)
	b.SetBytes(int64(len(chunk)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nc := benchOpen(b, depotAddr, targetAddr)
		if _, err := nc.Write(chunk); err != nil {
			b.Fatal(err)
		}
		nc.Close()
	}
	b.StopTimer()
}

// sinkSession terminates one session transport: read the open header,
// acknowledge, discard the payload.
func sinkSession(c net.Conn) {
	defer c.Close()
	hdr, err := wire.ReadOpenHeader(c)
	if err != nil {
		return
	}
	c.Write((&wire.AcceptFrame{Code: wire.CodeOK, Session: hdr.Session}).Encode())
	io.Copy(io.Discard, c)
}

// muxSink is a session target that speaks both transports: classic
// one-connection-per-session and trunk links (each stream served as a
// session), dispatching on the 4-byte magic like the depot does.
func muxSink(b *testing.B) string {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				probe := make([]byte, 4)
				if _, err := io.ReadFull(nc, probe); err != nil {
					nc.Close()
					return
				}
				pc := newPrefixConn(nc, probe)
				if !wire.IsMuxMagic(probe) {
					sinkSession(pc)
					return
				}
				link, err := mux.Server(pc, mux.LinkConfig{})
				if err != nil {
					nc.Close()
					return
				}
				for {
					st, err := link.AcceptStream()
					if err != nil {
						return
					}
					go sinkSession(st)
				}
			}(nc)
		}
	}()
	return ln.Addr().String()
}

// churnOnce runs one complete cascade session: dial (or reuse a trunk
// to) the first depot, open end to end, push one small chunk, tear down.
func churnOnce(dial mux.Dialer, route []string, chunk []byte) error {
	nc, err := dial(context.Background(), "tcp", route[0])
	if err != nil {
		return err
	}
	defer nc.Close()
	hdr := &wire.OpenHeader{
		Session:    wire.NewSessionID(),
		Route:      route,
		ContentLen: wire.UnknownLength,
	}
	enc, err := hdr.Encode()
	if err != nil {
		return err
	}
	if _, err := nc.Write(enc); err != nil {
		return err
	}
	acc, err := wire.ReadAcceptFrame(nc)
	if err != nil {
		return err
	}
	if acc.Code != wire.CodeOK {
		return fmt.Errorf("rejected: %s", wire.CodeString(acc.Code))
	}
	_, err = nc.Write(chunk)
	return err
}

// benchConnectRTT models the round trip a TCP connect handshake costs
// on a real network path (loopback connects in ~30us, which hides
// exactly the latency persistent trunks exist to remove). Every
// transport dial in the churn benchmark — initiator's and both
// depots' — pays it; warm trunks pay it once per link instead of once
// per session.
const benchConnectRTT = 2 * time.Millisecond

// delayDial wraps the real dialer with the modeled connect round trip.
func delayDial(d time.Duration) mux.Dialer {
	var nd net.Dialer
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
		return nd.DialContext(ctx, network, addr)
	}
}

// BenchmarkCascadeSetupChurn measures session setup rate through a full
// cascade (initiator -> depot -> depot -> sink), one complete session
// per op, opens issued in parallel, with each fresh transport connect
// costing benchConnectRTT. The classic variant pays three connects per
// session, serialized along the chain; the mux variant rides warm
// trunks on every hop.
func BenchmarkCascadeSetupChurn(b *testing.B) {
	run := func(b *testing.B, useMux bool) {
		targetAddr := muxSink(b)
		cfg := Config{
			Mux:         useMux,
			MaxSessions: 8192,
			Dial:        core.Dialer(delayDial(benchConnectRTT)),
		}
		_, addr2 := benchDepot(b, cfg)
		_, addr1 := benchDepot(b, cfg)
		dial := delayDial(benchConnectRTT)
		if useMux {
			pool := mux.NewPool(mux.PoolConfig{Dial: dial})
			b.Cleanup(func() { pool.Close() })
			dial = pool.DialContext
		}
		route := []string{addr1, addr2, targetAddr}
		chunk := make([]byte, 1<<10)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := churnOnce(dial, route, chunk); err != nil {
					b.Error(err)
					return
				}
			}
		})
	}
	b.Run("classic", func(b *testing.B) { run(b, false) })
	b.Run("mux", func(b *testing.B) { run(b, true) })
}

package depot

import (
	"bytes"
	"context"
	"crypto/md5"
	"crypto/rand"
	"io"
	"net"
	"testing"
	"time"

	"lsl/internal/core"
	"lsl/internal/mux"
)

// startDepot runs a depot on loopback and tears it down with the test.
func startDepot(t *testing.T, cfg Config) (*Depot, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d := New(cfg)
	go d.Serve(ln)
	t.Cleanup(func() { d.Close() })
	return d, ln.Addr().String()
}

// startTarget runs a session target that verifies digests and records
// received payloads.
func startTarget(t *testing.T) (string, chan []byte) {
	t.Helper()
	l, err := core.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	got := make(chan []byte, 16)
	go func() {
		for {
			sc, err := l.Accept()
			if err != nil {
				return
			}
			go func(sc *core.ServerConn) {
				defer sc.Close()
				data, err := io.ReadAll(sc)
				if err != nil {
					return
				}
				got <- data
			}(sc)
		}
	}()
	return l.Addr().String(), got
}

func sendDigestPayload(t *testing.T, route core.Route, payload []byte, opts ...core.Option) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	opts = append([]core.Option{
		core.WithDigest(),
		core.WithContentLength(int64(len(payload))),
	}, opts...)
	c, err := core.Dial(ctx, route, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SendReader(bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	// Confirm: the cascade unwinds with EOF once the target drained.
	c.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.Copy(io.Discard, c); err != nil {
		t.Fatalf("confirm drain: %v", err)
	}
}

func expectPayload(t *testing.T, got chan []byte, want []byte) {
	t.Helper()
	select {
	case data := <-got:
		if md5.Sum(data) != md5.Sum(want) {
			t.Fatalf("payload corrupted: got %d bytes, want %d", len(data), len(want))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("target never received the payload")
	}
}

// TestMuxedCascadeEndToEnd sends a digest-verified payload through two
// mux-enabled depots over warm trunks, twice, and checks the second
// session reused the trunks instead of dialing.
func TestMuxedCascadeEndToEnd(t *testing.T) {
	targetAddr, got := startTarget(t)
	d2, addr2 := startDepot(t, Config{Mux: true})
	d1, addr1 := startDepot(t, Config{Mux: true})

	pool := mux.NewPool(mux.PoolConfig{})
	defer pool.Close()
	route := core.Route{Via: []string{addr1, addr2}, Target: targetAddr}

	payload := make([]byte, 512<<10)
	rand.Read(payload)
	for i := 0; i < 2; i++ {
		sendDigestPayload(t, route, payload, core.WithMux(pool))
		expectPayload(t, got, payload)
	}

	if got := d1.Stats().Completed; got != 2 {
		t.Fatalf("depot1 completed %d sessions, want 2", got)
	}
	// Both depots ran their sessions over trunks: the first depot saw an
	// accept-side trunk from the initiator and opened a dial-side trunk
	// to the second.
	if v := d1.linkOpened.With("accept").Value(); v != 1 {
		t.Errorf("depot1 accept-side trunks = %d, want 1", v)
	}
	if v := d1.linkOpened.With("dial").Value(); v != 1 {
		t.Errorf("depot1 dial-side trunks = %d, want 1", v)
	}
	if v := d1.linkReused.With("dial").Value(); v != 1 {
		t.Errorf("depot1 dial-side reuses = %d, want 1 (second session)", v)
	}
	// The target does not speak mux: depot2 fell back to classic there.
	if v := d2.linkOpened.With("dial").Value(); v != 0 {
		t.Errorf("depot2 opened %d trunks to a non-mux target, want 0", v)
	}
	// Registry recorded the muxed sessions with normal outcomes.
	snap := d1.Sessions()
	completed := 0
	for _, s := range snap.Recent {
		if s.Outcome == OutcomeCompleted {
			completed++
		}
	}
	if completed != 2 {
		t.Errorf("depot1 ring has %d completed sessions, want 2", completed)
	}
}

// TestMixedFleetInterop is the acceptance scenario: a mux client
// completes a digest-verified transfer through a depot running WITHOUT
// mux, then a mux depot, to a classic target. Every boundary exercises
// the version probe and fallback.
func TestMixedFleetInterop(t *testing.T) {
	targetAddr, got := startTarget(t)
	_, addr2 := startDepot(t, Config{Mux: true})
	d1, addr1 := startDepot(t, Config{}) // classic depot: no mux

	pool := mux.NewPool(mux.PoolConfig{})
	defer pool.Close()
	route := core.Route{Via: []string{addr1, addr2}, Target: targetAddr}

	payload := make([]byte, 256<<10)
	rand.Read(payload)
	// Two transfers: the first pays the failed probe against the classic
	// depot, the second comes straight from the negative cache.
	for i := 0; i < 2; i++ {
		sendDigestPayload(t, route, payload, core.WithMux(pool))
		expectPayload(t, got, payload)
	}
	if pool.Links() != 0 {
		t.Fatalf("client holds %d trunks to a classic depot, want 0", pool.Links())
	}
	if gotN := d1.Stats().Completed; gotN != 2 {
		t.Fatalf("classic depot completed %d sessions, want 2", gotN)
	}
}

// TestMuxDepotServesClassicClients checks the reverse direction of the
// mixed fleet: an old client with no mux support dials a mux-enabled
// depot with an ordinary per-session connection.
func TestMuxDepotServesClassicClients(t *testing.T) {
	targetAddr, got := startTarget(t)
	_, addr1 := startDepot(t, Config{Mux: true})

	payload := make([]byte, 64<<10)
	rand.Read(payload)
	route := core.Route{Via: []string{addr1}, Target: targetAddr}
	sendDigestPayload(t, route, payload) // no WithMux: classic dialing
	expectPayload(t, got, payload)
}

// TestMuxDepotDrainsTrunksOnClose opens a trunk, finishes its sessions,
// and checks Close returns promptly (the idle accept-side link must not
// pin the drain).
func TestMuxDepotDrainsTrunksOnClose(t *testing.T) {
	targetAddr, got := startTarget(t)
	d1, addr1 := startDepot(t, Config{Mux: true, DrainTimeout: 5 * time.Second})

	pool := mux.NewPool(mux.PoolConfig{})
	defer pool.Close()
	payload := []byte("drain me")
	route := core.Route{Via: []string{addr1}, Target: targetAddr}
	sendDigestPayload(t, route, payload, core.WithMux(pool))
	expectPayload(t, got, payload)

	start := time.Now()
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Close took %v with only an idle trunk open", elapsed)
	}
}

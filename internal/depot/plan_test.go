package depot

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// /plan is 404 until a planner view is wired in; with one it serves the
// view's JSON verbatim.
func TestAdminPlanView(t *testing.T) {
	d, _ := runDepot(t, Config{})
	code, _ := adminGET(t, AdminHandler(d), "/plan")
	if code != http.StatusNotFound {
		t.Fatalf("/plan without planner: status %d, want 404", code)
	}

	d2, _ := runDepot(t, Config{
		PlanView: func() interface{} {
			return map[string]interface{}{"self": "denver", "edges": 4}
		},
	})
	code, body := adminGET(t, AdminHandler(d2), "/plan")
	if code != http.StatusOK {
		t.Fatalf("/plan status %d", code)
	}
	var v struct {
		Self  string `json:"self"`
		Edges int    `json:"edges"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("/plan JSON: %v\n%s", err, body)
	}
	if v.Self != "denver" || v.Edges != 4 {
		t.Fatalf("/plan view: %+v", v)
	}
}

// OnSessionEnd fires for both retired live sessions and straight-to-ring
// records, outside the registry lock (re-entrancy must not deadlock).
func TestRegistryOnSessionEnd(t *testing.T) {
	var got []SessionInfo
	var r *sessionRegistry
	r = newSessionRegistry(2, func(info SessionInfo) {
		r.snapshot() // would deadlock if onEnd ran under the lock
		got = append(got, info)
	})

	ls := r.add(SessionInfo{ID: "live", Kind: KindRelay, NextHop: "next:1"})
	ls.bytesFwd.Store(42)
	r.finish(ls, OutcomeCompleted, 2*time.Second)
	r.record(SessionInfo{ID: "rejected", Outcome: OutcomeRejectedBusy})

	if len(got) != 2 {
		t.Fatalf("callbacks=%d, want 2", len(got))
	}
	if got[0].ID != "live" || got[0].Outcome != OutcomeCompleted ||
		got[0].BytesForward != 42 || got[0].DurationSeconds != 2 {
		t.Fatalf("finish callback: %+v", got[0])
	}
	if got[1].ID != "rejected" || got[1].Outcome != OutcomeRejectedBusy {
		t.Fatalf("record callback: %+v", got[1])
	}
}

// The depot plumbs Config.OnSessionEnd through to its registry.
func TestDepotInvokesOnSessionEnd(t *testing.T) {
	ended := make(chan SessionInfo, 4)
	d, depotAddr := runDepot(t, Config{
		OnSessionEnd: func(info SessionInfo) { ended <- info },
	})
	targetAddr, _ := rawTarget(t)
	nc := openThrough(t, depotAddr, targetAddr)
	nc.Close()

	select {
	case info := <-ended:
		if info.NextHop != targetAddr {
			t.Fatalf("session end: %+v", info)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnSessionEnd never fired")
	}
	_ = d
}

package depot

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"lsl/internal/wire"
)

// holdingTarget accepts every connection, replies with an accept frame,
// and holds the connection open until the test releases it.
func holdingTarget(t *testing.T) (addr string, release func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var conns []net.Conn
	done := make(chan struct{})
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, nc)
			mu.Unlock()
			go func() {
				hdr, err := wire.ReadOpenHeader(nc)
				if err != nil {
					nc.Close()
					return
				}
				nc.Write((&wire.AcceptFrame{Code: wire.CodeOK, Session: hdr.Session}).Encode())
				<-done
			}()
		}
	}()
	var once sync.Once
	release = func() {
		once.Do(func() {
			close(done)
			ln.Close()
			mu.Lock()
			for _, c := range conns {
				c.Close()
			}
			mu.Unlock()
		})
	}
	t.Cleanup(release)
	return ln.Addr().String(), release
}

// N concurrent opens against MaxSessions=k must admit exactly k and
// reject exactly N-k busy, with Stats and Sessions agreeing. Run under
// -race in CI.
func TestAdmissionControlConcurrent(t *testing.T) {
	const maxSessions = 4
	const opens = 16

	targetAddr, release := holdingTarget(t)
	d, depotAddr := runDepot(t, Config{MaxSessions: maxSessions})

	type result struct {
		code uint8
		err  error
	}
	results := make(chan result, opens)
	var conns sync.Map
	var wg sync.WaitGroup
	for i := 0; i < opens; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nc, err := net.Dial("tcp", depotAddr)
			if err != nil {
				results <- result{err: err}
				return
			}
			conns.Store(i, nc)
			hdr := &wire.OpenHeader{
				Session:    wire.NewSessionID(),
				Route:      []string{depotAddr, targetAddr},
				ContentLen: wire.UnknownLength,
			}
			enc, _ := hdr.Encode()
			if _, err := nc.Write(enc); err != nil {
				results <- result{err: err}
				return
			}
			nc.SetReadDeadline(time.Now().Add(10 * time.Second))
			acc, err := wire.ReadAcceptFrame(nc)
			if err != nil {
				results <- result{err: err}
				return
			}
			results <- result{code: acc.Code}
		}(i)
	}
	wg.Wait()
	close(results)

	accepted, busy := 0, 0
	for r := range results {
		switch {
		case r.err != nil:
			t.Fatalf("open failed: %v", r.err)
		case r.code == wire.CodeOK:
			accepted++
		case r.code == wire.CodeRejectBusy:
			busy++
		default:
			t.Fatalf("unexpected code %s", wire.CodeString(r.code))
		}
	}
	if accepted != maxSessions || busy != opens-maxSessions {
		t.Fatalf("accepted=%d busy=%d, want %d/%d", accepted, busy, maxSessions, opens-maxSessions)
	}

	// The admitted sessions are still relaying: Stats and /sessions must
	// agree on the same picture.
	st := d.Stats()
	if st.Accepted != maxSessions || st.RejectedBusy != opens-maxSessions {
		t.Fatalf("stats: %+v", st)
	}
	if st.Active != maxSessions {
		t.Fatalf("active=%d, want %d", st.Active, maxSessions)
	}
	snap := d.Sessions()
	if len(snap.Live) != maxSessions {
		t.Fatalf("live=%d, want %d", len(snap.Live), maxSessions)
	}
	rejectedRecent := 0
	for _, s := range snap.Recent {
		if s.Outcome == OutcomeRejectedBusy {
			rejectedRecent++
		}
	}
	if rejectedRecent != opens-maxSessions {
		t.Fatalf("recent busy=%d, want %d", rejectedRecent, opens-maxSessions)
	}

	// Release everything; the depot must drain back to zero and count the
	// completions.
	release()
	conns.Range(func(_, v interface{}) bool {
		v.(net.Conn).Close()
		return true
	})
	deadline := time.Now().Add(10 * time.Second)
	for d.Stats().Active != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	st = d.Stats()
	if st.Active != 0 {
		t.Fatalf("sessions never drained: %+v", st)
	}
	if st.Completed != maxSessions {
		t.Fatalf("completed=%d, want %d", st.Completed, maxSessions)
	}
	if len(d.Sessions().Live) != 0 {
		t.Fatalf("live sessions remain: %+v", d.Sessions().Live)
	}
}

// The recent ring keeps only the newest entries once it wraps.
func TestRecentSessionRingWraps(t *testing.T) {
	r := newSessionRegistry(3, nil)
	for i := 0; i < 5; i++ {
		r.record(SessionInfo{ID: fmt.Sprintf("s%d", i), Outcome: OutcomeRejectedBusy})
	}
	snap := r.snapshot()
	if len(snap.Recent) != 3 {
		t.Fatalf("recent=%d, want 3", len(snap.Recent))
	}
	// Newest first.
	for i, want := range []string{"s4", "s3", "s2"} {
		if snap.Recent[i].ID != want {
			t.Fatalf("recent[%d]=%s, want %s (all: %+v)", i, snap.Recent[i].ID, want, snap.Recent)
		}
	}
}

// A peer that never reads cannot pin the handler: the reject frame write
// must time out and be counted.
func TestRejectWriteDeadline(t *testing.T) {
	d := New(Config{WriteTimeout: 50 * time.Millisecond})
	us, them := net.Pipe()
	defer them.Close()
	done := make(chan struct{})
	go func() {
		// Nobody ever reads from `them`; the unbuffered pipe write can only
		// end via the deadline.
		d.reject(us, wire.NewSessionID(), wire.CodeRejectBusy)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("reject blocked past the write deadline")
	}
	if got := d.Stats().ControlWriteFailures; got != 1 {
		t.Fatalf("control write failures = %d, want 1", got)
	}
}

package depot

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"
	"time"

	"lsl/internal/core"
)

func adminGET(t *testing.T, h http.Handler, path string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// metricValue extracts one sample value from Prometheus exposition text.
func metricValue(t *testing.T, exposition []byte, sample string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(sample) + ` (\S+)$`)
	m := re.FindSubmatch(exposition)
	if m == nil {
		t.Fatalf("sample %q not found in exposition:\n%s", sample, exposition)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatalf("sample %q value %q: %v", sample, m[1], err)
	}
	return v
}

// End-to-end: a digested transfer cascades through the depot, and its
// bytes show up in both /metrics and /sessions.
func TestAdminEndToEndTransferObservable(t *testing.T) {
	payload := bytes.Repeat([]byte("observability"), 20000)
	target, err := core.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	done := make(chan bool, 1)
	go func() {
		sc, err := target.Accept()
		if err != nil {
			return
		}
		defer sc.Close()
		data, err := io.ReadAll(sc)
		done <- err == nil && sc.Verified() && bytes.Equal(data, payload)
	}()

	d, depotAddr := runDepot(t, Config{})
	h := AdminHandler(d)

	c, err := core.Dial(context.Background(),
		core.Route{Via: []string{depotAddr}, Target: target.Addr().String()},
		core.WithDigest(), core.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	c.CloseWrite()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("transfer corrupted")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("transfer timeout")
	}
	c.Close()

	// Session teardown is asynchronous to the transfer itself.
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().Completed == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	code, body := adminGET(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	fwd := metricValue(t, body, `lsd_relay_bytes_total{direction="forward"}`)
	if fwd < float64(len(payload)) {
		t.Errorf("forward bytes %v < payload %d", fwd, len(payload))
	}
	if v := metricValue(t, body, `lsd_relay_bytes_total{direction="backward"}`); v <= 0 {
		t.Errorf("backward bytes %v, want > 0 (accept frame)", v)
	}
	if v := metricValue(t, body, "lsd_sessions_accepted_total"); v != 1 {
		t.Errorf("accepted %v", v)
	}
	if v := metricValue(t, body, "lsd_sessions_completed_total"); v != 1 {
		t.Errorf("completed %v", v)
	}
	if v := metricValue(t, body, "lsd_sessions_active"); v != 0 {
		t.Errorf("active %v", v)
	}
	high := metricValue(t, body, "lsd_relay_buffer_high_water_bytes")
	if high <= 0 || high > 256<<10 {
		t.Errorf("relay high-water %v outside (0, bufferSize]", high)
	}
	if v := metricValue(t, body, `lsd_session_duration_seconds_count{outcome="completed"}`); v != 1 {
		t.Errorf("duration histogram count %v", v)
	}
	if v := metricValue(t, body, "lsd_session_bytes_count"); v != 1 {
		t.Errorf("session bytes histogram count %v", v)
	}

	code, body = adminGET(t, h, "/sessions")
	if code != http.StatusOK {
		t.Fatalf("/sessions status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/sessions JSON: %v\n%s", err, body)
	}
	if len(snap.Live) != 0 {
		t.Errorf("live sessions %d, want 0", len(snap.Live))
	}
	if len(snap.Recent) != 1 {
		t.Fatalf("recent sessions %d, want 1", len(snap.Recent))
	}
	got := snap.Recent[0]
	if got.Outcome != OutcomeCompleted {
		t.Errorf("outcome %q", got.Outcome)
	}
	if got.Kind != KindRelay {
		t.Errorf("kind %q", got.Kind)
	}
	if got.BytesForward < uint64(len(payload)) {
		t.Errorf("session bytes forward %d < payload %d", got.BytesForward, len(payload))
	}
	if got.BytesBackward == 0 {
		t.Error("session bytes backward 0")
	}
	if got.DurationSeconds <= 0 {
		t.Errorf("duration %v", got.DurationSeconds)
	}

	// Consistency between the two views.
	if st := d.Stats(); uint64(fwd) != st.BytesForward {
		t.Errorf("/metrics forward %v != Stats %d", fwd, st.BytesForward)
	}
}

func TestAdminHealthAndPprof(t *testing.T) {
	d, _ := runDepot(t, Config{})
	h := AdminHandler(d)
	code, body := adminGET(t, h, "/healthz")
	if code != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	code, _ = adminGET(t, h, "/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
}

// A live session must be visible in /sessions with in-flight byte counts.
func TestAdminShowsLiveSession(t *testing.T) {
	targetAddr, received := rawTarget(t)
	d, depotAddr := runDepot(t, Config{})
	nc := openThrough(t, depotAddr, targetAddr)
	defer nc.Close()
	if _, err := fmt.Fprint(nc, "hello depot"); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap := d.Sessions()
		if len(snap.Live) == 1 && snap.Live[0].BytesForward > 0 {
			live := snap.Live[0]
			if live.Kind != KindRelay || live.NextHop != targetAddr || live.Outcome != "" {
				t.Fatalf("live session: %+v", live)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("live session never visible: %+v", d.Sessions())
	_ = received
}

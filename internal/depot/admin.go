package depot

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// AdminHandler serves a depot's operational surface for scrapers and
// operators:
//
//	/metrics      Prometheus text exposition (counters, gauges, histograms)
//	/healthz      liveness probe ("ok")
//	/sessions     JSON snapshot of live sessions + the recent ring
//	/plan         JSON forecast snapshot of the logistics planner
//	              (404 when the depot runs without one)
//	/debug/pprof  the standard Go profiling endpoints
//
// The handler is safe to serve while the depot is relaying traffic; all
// reads are snapshots and never block session goroutines.
func AdminHandler(d *Depot) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		d.Metrics().WritePrometheus(w)
	})
	mux.HandleFunc("/sessions", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(d.Sessions())
	})
	mux.HandleFunc("/plan", func(w http.ResponseWriter, r *http.Request) {
		if d.cfg.PlanView == nil {
			http.Error(w, "no planner configured", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(d.cfg.PlanView())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

package metrics

import (
	"strings"
	"sync"
	"testing"
)

// Golden test for the exposition format: families sorted by name, label
// values sorted within a family, histograms cumulative with +Inf, sum,
// and count lines.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests handled.")
	c.Add(41)
	c.Inc()
	g := r.Gauge("test_active", "Active things.")
	g.Set(7)
	v := r.CounterVec("test_rejected_total", "Rejections by reason.", "reason")
	v.With("busy").Add(3)
	v.With("proto").Inc()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(10)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_active Active things.
# TYPE test_active gauge
test_active 7
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 11.05
test_latency_seconds_count 4
# HELP test_rejected_total Rejections by reason.
# TYPE test_rejected_total counter
test_rejected_total{reason="busy"} 3
test_rejected_total{reason="proto"} 1
# HELP test_requests_total Requests handled.
# TYPE test_requests_total counter
test_requests_total 42
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// Observations landing exactly on a bucket boundary belong to that bucket
// (le is inclusive), and buckets are cumulative.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{1, 1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 || bounds[0] != 1 || bounds[1] != 2 || bounds[2] != 4 {
		t.Fatalf("bounds = %v", bounds)
	}
	// cumulative: le=1 -> 2, le=2 -> 3, le=4 -> 5, +Inf -> 6
	want := []uint64{2, 3, 5, 6}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cum[%d] = %d, want %d (all: %v)", i, cum[i], w, cum)
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 16 {
		t.Errorf("sum = %v", h.Sum())
	}
}

// Bounds passed unsorted must still bucket correctly.
func TestHistogramSortsBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_h", "h", []float64{10, 1, 5})
	h.Observe(3)
	bounds, cum := h.Buckets()
	if bounds[0] != 1 || bounds[1] != 5 || bounds[2] != 10 {
		t.Fatalf("bounds = %v", bounds)
	}
	if cum[0] != 0 || cum[1] != 1 || cum[2] != 1 {
		t.Fatalf("cum = %v", cum)
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Fatalf("value = %d", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatalf("value = %d", g.Value())
	}
}

func TestFloatGauge(t *testing.T) {
	r := NewRegistry()
	g := r.FloatGauge("test_mse", "Forecast error.")
	if g.Value() != 0 {
		t.Fatalf("zero value = %v", g.Value())
	}
	g.Set(0.125)
	if g.Value() != 0.125 {
		t.Fatalf("value = %v", g.Value())
	}
	g.Set(3.5e-7)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# HELP test_mse Forecast error.\n# TYPE test_mse gauge\ntest_mse 3.5e-07\n"
	if sb.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// Concurrent increments across every metric type while a renderer runs;
// meaningful under -race, and the final counts must be exact.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_c", "c")
	g := r.Gauge("test_g", "g")
	v := r.CounterVec("test_v", "v", "k")
	h := r.HistogramVec("test_hv", "hv", "k", []float64{1, 10})

	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.SetMax(int64(i))
				v.With("a").Inc()
				v.With("b").Inc()
				h.With("a").Observe(float64(i % 20))
			}
		}(w)
	}
	// Render concurrently with the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	if c.Value() != workers*perWorker {
		t.Errorf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() < workers*perWorker {
		t.Errorf("gauge = %d", g.Value())
	}
	if v.With("a").Value() != workers*perWorker || v.With("b").Value() != workers*perWorker {
		t.Errorf("vec counts: a=%d b=%d", v.With("a").Value(), v.With("b").Value())
	}
	if h.With("a").Count() != workers*perWorker {
		t.Errorf("hist count = %d", h.With("a").Count())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate name")
		}
	}()
	r.Gauge("dup", "second")
}

// Package metrics is a dependency-free metrics registry for the depot
// and session paths: counters, gauges, and histograms that render in the
// Prometheus text exposition format (version 0.0.4), so any standard
// scraper can watch a long-lived lsd instance without pulling a client
// library into the module.
//
// All metric types are safe for concurrent use; the hot-path operations
// (Inc/Add/Observe/SetMax) are lock-free atomics so relay goroutines can
// update them per-read without contending.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d and returns the new value (useful for
// admission checks that reserve a slot atomically).
func (g *Gauge) Add(d int64) int64 { return g.v.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// SetMax raises the gauge to v if v exceeds the current value (a
// high-water mark).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a float-valued gauge for quantities that are not integer
// counts — forecast errors, ratios, seconds. Lock-free (float64 bits in
// an atomic word), like the integer metrics.
type FloatGauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the current value (0 before any Set).
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into cumulative buckets with fixed upper
// bounds, plus a running sum and count, matching the Prometheus histogram
// model.
type Histogram struct {
	bounds []float64       // sorted upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, or the +Inf bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reads the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the upper bounds and the cumulative count at each bound
// (the +Inf bucket equals Count).
func (h *Histogram) Buckets() ([]float64, []uint64) {
	cum := make([]uint64, len(h.counts))
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return h.bounds, cum
}

// CounterVec is a family of counters partitioned by one label.
type CounterVec struct {
	mu       sync.Mutex
	label    string
	children map[string]*Counter
}

// With returns the child counter for the label value, creating it on
// first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &Counter{}
		v.children[value] = c
	}
	return c
}

// Sum totals the family across all label values.
func (v *CounterVec) Sum() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	var total uint64
	for _, c := range v.children {
		total += c.Value()
	}
	return total
}

// GaugeVec is a family of gauges partitioned by one label.
type GaugeVec struct {
	mu       sync.Mutex
	label    string
	children map[string]*Gauge
}

// With returns the child gauge for the label value, creating it on
// first use.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.children[value]
	if !ok {
		g = &Gauge{}
		v.children[value] = g
	}
	return g
}

// Sum totals the family across all label values.
func (v *GaugeVec) Sum() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	var total int64
	for _, g := range v.children {
		total += g.Value()
	}
	return total
}

// HistogramVec is a family of histograms partitioned by one label.
type HistogramVec struct {
	mu       sync.Mutex
	label    string
	bounds   []float64
	children map[string]*Histogram
}

// With returns the child histogram for the label value, creating it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[value]
	if !ok {
		h = newHistogram(v.bounds)
		v.children[value] = h
	}
	return h
}

// family is one registered metric name: help, type, and either a single
// unlabeled metric or a labeled vec.
type family struct {
	name, help, typ string
	counter         *Counter
	gauge           *Gauge
	fgauge          *FloatGauge
	hist            *Histogram
	counterVec      *CounterVec
	gaugeVec        *GaugeVec
	histVec         *HistogramVec
}

// Registry holds registered metric families and renders them.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic("metrics: duplicate registration of " + f.name)
	}
	r.families[f.name] = f
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: "counter", counter: c})
	return c
}

// CounterVec registers and returns a counter family keyed by label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{label: label, children: make(map[string]*Counter)}
	r.register(&family{name: name, help: help, typ: "counter", counterVec: v})
	return v
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, typ: "gauge", gauge: g})
	return g
}

// FloatGauge registers and returns a float-valued gauge.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	g := &FloatGauge{}
	r.register(&family{name: name, help: help, typ: "gauge", fgauge: g})
	return g
}

// GaugeVec registers and returns a gauge family keyed by label.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	v := &GaugeVec{label: label, children: make(map[string]*Gauge)}
	r.register(&family{name: name, help: help, typ: "gauge", gaugeVec: v})
	return v
}

// Histogram registers and returns a histogram with the given upper
// bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(&family{name: name, help: help, typ: "histogram", hist: h})
	return h
}

// HistogramVec registers and returns a histogram family keyed by label.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	v := &HistogramVec{label: label, bounds: append([]float64(nil), bounds...), children: make(map[string]*Histogram)}
	r.register(&family{name: name, help: help, typ: "histogram", histVec: v})
	return v
}

// WritePrometheus renders every family in text exposition format, sorted
// by metric name (and label value within a family) so output is stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		switch {
		case f.counter != nil:
			fmt.Fprintf(bw, "%s %d\n", f.name, f.counter.Value())
		case f.gauge != nil:
			fmt.Fprintf(bw, "%s %d\n", f.name, f.gauge.Value())
		case f.fgauge != nil:
			fmt.Fprintf(bw, "%s %s\n", f.name, formatFloat(f.fgauge.Value()))
		case f.hist != nil:
			writeHistogram(bw, f.name, "", f.hist)
		case f.counterVec != nil:
			for _, child := range f.counterVec.sorted() {
				fmt.Fprintf(bw, "%s{%s=%q} %d\n", f.name, f.counterVec.label, child.value, child.c.Value())
			}
		case f.gaugeVec != nil:
			for _, child := range f.gaugeVec.sorted() {
				fmt.Fprintf(bw, "%s{%s=%q} %d\n", f.name, f.gaugeVec.label, child.value, child.g.Value())
			}
		case f.histVec != nil:
			for _, child := range f.histVec.sorted() {
				writeHistogram(bw, f.name, fmt.Sprintf("%s=%q", f.histVec.label, child.value), child.h)
			}
		}
	}
	return bw.Flush()
}

func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	bounds, cum := h.Buckets()
	for i, b := range bounds {
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, joinLabels(labels, "le="+strconv.Quote(formatFloat(b))), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, joinLabels(labels, `le="+Inf"`), cum[len(cum)-1])
	if labels != "" {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.Count())
	} else {
		fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	}
}

func joinLabels(existing, extra string) string {
	if existing == "" {
		return extra
	}
	return existing + "," + extra
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

type counterChild struct {
	value string
	c     *Counter
}

type gaugeChild struct {
	value string
	g     *Gauge
}

type histChild struct {
	value string
	h     *Histogram
}

// sorted snapshots a vec's children under its lock so rendering never
// races a concurrent With.
func (v *CounterVec) sorted() []counterChild {
	v.mu.Lock()
	out := make([]counterChild, 0, len(v.children))
	for lv, c := range v.children {
		out = append(out, counterChild{lv, c})
	}
	v.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].value < out[j].value })
	return out
}

func (v *GaugeVec) sorted() []gaugeChild {
	v.mu.Lock()
	out := make([]gaugeChild, 0, len(v.children))
	for lv, g := range v.children {
		out = append(out, gaugeChild{lv, g})
	}
	v.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].value < out[j].value })
	return out
}

func (v *HistogramVec) sorted() []histChild {
	v.mu.Lock()
	out := make([]histChild, 0, len(v.children))
	for lv, h := range v.children {
		out = append(out, histChild{lv, h})
	}
	v.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].value < out[j].value })
	return out
}

// Package resilience is the self-healing transfer engine: it drives a
// complete payload to a session target across a loose source route and
// keeps the session alive through the failures the paper's session layer
// exists to survive — a conversation "survives the replacement" of its
// transport connections.
//
// Transfer wraps core.Dial + Conn.SendReader in a classify/retry/failover
// loop:
//
//   - Errors are classified permanent (the session was actively refused,
//     or integrity is provably broken) or transient (dial failure, reset,
//     stall timeout, truncation). Only transient errors are retried.
//   - Retries re-dial with the same session ID and the resume flag, so
//     the target reports its confirmed offset and the transfer continues
//     from there; with digesting on, the skipped prefix is re-hashed so
//     the end-to-end MD5 still covers the complete stream.
//   - Backoff between attempts is capped exponential with seeded jitter
//     (internal/backoff), interruptible by the context.
//   - Repeated dial failures at the first hop are treated as a dead
//     depot: the engine fails over by dropping that depot from Route.Via
//     (the paper's loose source routes are advisory — the cascade
//     degrades rather than dies, eventually falling back to a direct
//     connection to the target).
//
// Recovery is observable: every retry, failover, and terminal outcome is
// counted in lsl_transfer_* metrics (package-default registry, or one the
// caller supplies), rendered in Prometheus text format exactly like the
// depot's /metrics endpoint.
package resilience

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"lsl/internal/backoff"
	"lsl/internal/core"
	"lsl/internal/metrics"
	"lsl/internal/wire"
)

// ErrExhausted wraps the last transient error once the attempt budget is
// spent.
var ErrExhausted = errors.New("resilience: retry attempts exhausted")

// errOffsetBeyondLength reports a target whose resume offset exceeds the
// declared content length — unrecoverable protocol disagreement.
var errOffsetBeyondLength = errors.New("resilience: target resume offset beyond content length")

// Policy tunes the retry loop. The zero value means the defaults.
type Policy struct {
	// MaxAttempts is the total session attempt budget, first try included
	// (default 8).
	MaxAttempts int
	// Backoff shapes the delay between attempts (default 100ms base
	// doubling to a 5s cap).
	Backoff backoff.Policy
	// FailoverAfter is how many consecutive first-hop dial failures mark
	// the head depot dead and drop it from the route (default 2; negative
	// disables failover).
	FailoverAfter int
	// JitterSeed seeds the backoff jitter; 0 derives the seed from the
	// session ID, so a pinned session retries on a reproducible schedule.
	JitterSeed int64
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.Backoff.Base <= 0 {
		p.Backoff.Base = 100 * time.Millisecond
	}
	if p.Backoff.Max <= 0 {
		p.Backoff.Max = 5 * time.Second
	}
	if p.FailoverAfter == 0 {
		p.FailoverAfter = 2
	}
	return p
}

// Result reports how a transfer was achieved.
type Result struct {
	// Session is the session ID shared by every sublink of the transfer.
	Session wire.SessionID
	// Attempts is the number of sessions dialed (1 = no faults).
	Attempts int
	// Retries is Attempts minus the first try.
	Retries int
	// Failovers counts depots dropped from the route as dead.
	Failovers int
	// Route is the route that carried the final, successful sublink.
	Route core.Route
	// Bytes is the payload size delivered end to end.
	Bytes int64
	// Duration is wall-clock time across all attempts.
	Duration time.Duration
}

// Metrics is the engine's counter set, registered on a metrics.Registry
// so recovery is observable through the same Prometheus text surface as
// the depot.
type Metrics struct {
	// Retries is lsl_transfer_retries_total.
	Retries *metrics.Counter
	// Failovers is lsl_transfer_failovers_total.
	Failovers *metrics.Counter
	// Transfers is lsl_transfers_total by terminal outcome
	// (delivered / rejected / exhausted / canceled).
	Transfers *metrics.CounterVec
}

// NewMetrics registers the lsl_transfer_* families on reg.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		Retries: reg.Counter("lsl_transfer_retries_total",
			"Transfer session re-dials after a transient failure."),
		Failovers: reg.Counter("lsl_transfer_failovers_total",
			"Depots dropped from a transfer's route as dead."),
		Transfers: reg.CounterVec("lsl_transfers_total",
			"Finished transfers, by terminal outcome.", "outcome"),
	}
}

// Transfer outcome labels on lsl_transfers_total.
const (
	OutcomeDelivered = "delivered"
	OutcomeRejected  = "rejected"
	OutcomeExhausted = "exhausted"
	OutcomeCanceled  = "canceled"
)

var (
	defaultOnce sync.Once
	defaultReg  *metrics.Registry
	defaultMet  *Metrics
	defaultSMet *StripedMetrics
)

// DefaultRegistry returns the process-wide registry holding the
// lsl_transfer_* and lsl_stripe_* metrics of transfers that did not
// supply their own sink (render it with WritePrometheus).
func DefaultRegistry() *metrics.Registry {
	defaultOnce.Do(func() {
		defaultReg = metrics.NewRegistry()
		defaultMet = NewMetrics(defaultReg)
		defaultSMet = NewStripedMetrics(defaultReg)
	})
	return defaultReg
}

func defaultMetrics() *Metrics {
	DefaultRegistry()
	return defaultMet
}

func defaultStripedMetrics() *StripedMetrics {
	DefaultRegistry()
	return defaultSMet
}

// Planner ranks candidate session routes by predicted completion time
// and learns from every attempt. Implemented by internal/logistics; the
// interface lives here so the engine depends only on the decision
// surface, not on the forecasting machinery behind it.
type Planner interface {
	// PlanRoutes returns candidate routes to the target address, best
	// predicted first. An error (or empty slice) makes the engine fall
	// back to the caller-provided route.
	PlanRoutes(target string, size int64) ([]core.Route, error)
	// ObserveSuccess feeds back a delivered attempt: payload bytes
	// streamed, attempt wall-time, and first-hop dial time (seconds).
	ObserveSuccess(route core.Route, bytes int64, seconds, dialSeconds float64)
	// ObserveFailure reports a failed attempt; hop is the dialable
	// address that failed, or "" when the failure cannot be attributed
	// to one hop.
	ObserveFailure(route core.Route, hop string)
	// RecordReplan counts a failover onto the next-best predicted route.
	RecordReplan()
}

// config collects per-transfer options.
type config struct {
	policy         Policy
	dial           core.Dialer
	digest         bool
	handshake      time.Duration
	confirmTimeout time.Duration
	session        wire.SessionID
	met            *Metrics
	logf           func(format string, args ...interface{})
	planner        Planner
	// striped-transfer knobs (see striped.go)
	stripes        int
	frameSize      int
	queueFrames    int
	rebalanceBytes int64
	stealThreshold float64
	inflightBytes  int64
	sockSnd        int
	sockRcv        int
	smet           *StripedMetrics
}

// Option tunes one Transfer call.
type Option func(*config)

// WithPolicy sets the retry/failover policy.
func WithPolicy(p Policy) Option { return func(c *config) { c.policy = p } }

// WithDialer injects the transport dialer (tests, fault injection,
// emulation).
func WithDialer(d core.Dialer) Option { return func(c *config) { c.dial = d } }

// WithoutDigest disables the end-to-end MD5 trailer (on by default —
// Transfer always knows the content length).
func WithoutDigest() Option { return func(c *config) { c.digest = false } }

// WithHandshakeTimeout bounds each attempt's session handshake.
func WithHandshakeTimeout(d time.Duration) Option { return func(c *config) { c.handshake = d } }

// WithConfirmTimeout bounds the post-payload drain that confirms the
// cascade unwound (default 30s; negative waits indefinitely).
func WithConfirmTimeout(d time.Duration) Option { return func(c *config) { c.confirmTimeout = d } }

// WithSession pins the session ID (otherwise one is drawn per transfer).
func WithSession(id wire.SessionID) Option { return func(c *config) { c.session = id } }

// WithMetrics directs the engine's counters at m instead of the package
// default registry (see NewMetrics).
func WithMetrics(m *Metrics) Option { return func(c *config) { c.met = m } }

// WithLogf receives one line per recovery event.
func WithLogf(f func(format string, args ...interface{})) Option {
	return func(c *config) { c.logf = f }
}

// WithPlanner drives route selection by pl: the transfer starts on the
// predicted-fastest candidate route to the target (the caller-provided
// Via list becomes a fallback), fails over to the next-best predicted
// route after a transient failure, and feeds every attempt's
// measurements back into the planner's forecasts.
func WithPlanner(pl Planner) Option { return func(c *config) { c.planner = pl } }

// Permanent reports whether err can never be fixed by retrying: the
// session was actively refused by a depot or the target (ErrRejected),
// integrity is provably broken (ErrDigestMismatch), the request itself is
// malformed, or the caller's context ended. Everything else — dial
// failures, resets, stalls, timeouts, truncation — is transient.
func Permanent(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, core.ErrRejected),
		errors.Is(err, core.ErrDigestMismatch),
		errors.Is(err, core.ErrNeedLength),
		errors.Is(err, errOffsetBeyondLength),
		errors.Is(err, wire.ErrBadRoute),
		errors.Is(err, context.Canceled):
		return true
	}
	return false
}

// Transfer delivers size bytes from src to route's target, healing
// transient failures automatically: re-dial with resume, capped
// exponential backoff with jitter, and failover around a dead first-hop
// depot. A negative size is measured by seeking src to its end. src must
// remain readable across attempts (SendReader seeks it to the resume
// offset on every retry).
//
// On success the returned Result describes the recovery work performed;
// on failure it still reports the attempts made, and the error is either
// permanent (classified by Permanent) or wraps ErrExhausted.
func Transfer(ctx context.Context, route core.Route, src io.ReadSeeker, size int64, opts ...Option) (*Result, error) {
	cfg := config{digest: true, confirmTimeout: 30 * time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	pol := cfg.policy.withDefaults()
	met := cfg.met
	if met == nil {
		met = defaultMetrics()
	}
	logf := cfg.logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	if err := route.Validate(); err != nil {
		return nil, err
	}
	if size < 0 {
		end, err := src.Seek(0, io.SeekEnd)
		if err != nil {
			return nil, fmt.Errorf("resilience: measuring source: %w", err)
		}
		size = end
	}

	id := cfg.session
	if id == (wire.SessionID{}) {
		id = wire.NewSessionID()
	}
	seed := pol.JitterSeed
	if seed == 0 {
		seed = int64(binary.BigEndian.Uint64(id[:8]))
	}
	rng := rand.New(rand.NewSource(seed))

	// Work on a private copy of the route: failover mutates Via.
	cur := core.Route{Via: append([]string(nil), route.Via...), Target: route.Target}
	if cfg.planner != nil {
		// Let the planner pick the opening route. Planning failures are
		// soft: the caller's route still works without forecasts.
		if routes, perr := cfg.planner.PlanRoutes(route.Target, size); perr == nil && len(routes) > 0 {
			cur = routes[0]
			logf("resilience: session %s planner chose route %v (%d candidates)", id, cur.Hops(), len(routes))
		} else if perr != nil {
			logf("resilience: session %s planner unavailable (%v); using provided route", id, perr)
		}
	}
	res := &Result{Session: id, Route: cur, Bytes: size}
	start := time.Now()
	finish := func(outcome string) {
		met.Transfers.With(outcome).Inc()
		res.Route = cur
		res.Duration = time.Since(start)
	}

	firstHopFails := 0
	var lastErr error
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		res.Attempts = attempt
		if attempt > 1 {
			res.Retries++
			met.Retries.Inc()
			if err := backoff.Sleep(ctx, pol.Backoff.Delay(attempt-1, rng)); err != nil {
				finish(OutcomeCanceled)
				return res, err
			}
		}
		st, err := attemptOnce(ctx, &cfg, cur, id, src, size)
		if err == nil {
			if cfg.planner != nil {
				cfg.planner.ObserveSuccess(cur, st.bytes, st.seconds, st.dialSeconds)
			}
			finish(OutcomeDelivered)
			return res, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			finish(OutcomeCanceled)
			return res, fmt.Errorf("resilience: session %s: %w", id, err)
		}
		if Permanent(err) {
			finish(OutcomeRejected)
			return res, fmt.Errorf("resilience: session %s: %w", id, err)
		}
		logf("resilience: session %s attempt %d/%d failed: %v", id, attempt, pol.MaxAttempts, err)

		var de *core.DialError
		dialFailed := errors.As(err, &de)
		if cfg.planner != nil {
			// Feed the failure back (a dial error names the dead hop; an
			// in-session failure poisons the whole route) and switch to
			// whatever the updated forecasts now rank best.
			failedHop := ""
			if dialFailed {
				failedHop = de.Hop
			}
			cfg.planner.ObserveFailure(cur, failedHop)
			if routes, perr := cfg.planner.PlanRoutes(cur.Target, size); perr == nil && len(routes) > 0 {
				if next := routes[0]; !sameRoute(next, cur) {
					cur = next
					res.Failovers++
					met.Failovers.Inc()
					cfg.planner.RecordReplan()
					logf("resilience: session %s replanned onto %v", id, cur.Hops())
				}
			}
			continue
		}

		// A dead first hop is a failover candidate: after FailoverAfter
		// consecutive dial failures against it, route around it.
		if dialFailed && len(cur.Via) > 0 && de.Hop == cur.Via[0] && pol.FailoverAfter > 0 {
			firstHopFails++
			if firstHopFails >= pol.FailoverAfter {
				dead := cur.Via[0]
				cur.Via = cur.Via[1:]
				firstHopFails = 0
				res.Failovers++
				met.Failovers.Inc()
				logf("resilience: session %s failing over around dead depot %s (route now %v)",
					id, dead, cur.Hops())
			}
		} else {
			firstHopFails = 0
		}
	}
	finish(OutcomeExhausted)
	return res, fmt.Errorf("resilience: session %s: %w after %d attempts: %w", id, ErrExhausted, res.Attempts, lastErr)
}

// sameRoute reports whether two routes dial the same hop sequence.
func sameRoute(a, b core.Route) bool {
	if a.Target != b.Target || len(a.Via) != len(b.Via) {
		return false
	}
	for i := range a.Via {
		if a.Via[i] != b.Via[i] {
			return false
		}
	}
	return true
}

// attemptStats are the measurements one attempt feeds back to a planner.
type attemptStats struct {
	bytes       int64   // payload bytes this attempt was responsible for
	seconds     float64 // attempt wall time
	dialSeconds float64 // first-hop transport dial time
}

// attemptOnce runs one complete session attempt: dial with resume, seek
// to the target's confirmed offset, stream the remainder, and drain the
// backward channel until the cascade unwinds (EOF), which is the signal
// that the target-side sublink fully consumed the stream.
func attemptOnce(ctx context.Context, cfg *config, route core.Route, id wire.SessionID, src io.ReadSeeker, size int64) (st attemptStats, err error) {
	opts := []core.Option{
		core.WithContentLength(size),
		core.WithSession(id),
		core.WithResume(),
	}
	if cfg.digest {
		opts = append(opts, core.WithDigest())
	}
	if cfg.dial != nil {
		opts = append(opts, core.WithDialer(cfg.dial))
	}
	if cfg.handshake > 0 {
		opts = append(opts, core.WithHandshakeTimeout(cfg.handshake))
	}
	start := time.Now()
	defer func() { st.seconds = time.Since(start).Seconds() }()
	c, err := core.Dial(ctx, route, opts...)
	if err != nil {
		return st, err
	}
	defer c.Close()
	st.dialSeconds = c.DialDuration().Seconds()
	if c.Offset() > size {
		return st, fmt.Errorf("%w: %d > %d", errOffsetBeyondLength, c.Offset(), size)
	}
	st.bytes = size - c.Offset()
	// SendReader positions src itself when resuming (offset > 0); at
	// offset 0 it streams from the current position, which after a failed
	// attempt is wherever the dead sublink stopped — rewind explicitly.
	if c.Offset() == 0 {
		if _, err := src.Seek(0, io.SeekStart); err != nil {
			return st, fmt.Errorf("rewind source: %w", err)
		}
	}
	if err := c.SendReader(src); err != nil {
		return st, fmt.Errorf("send: %w", err)
	}
	// Confirm: wait for the cascade to unwind. A depot dying after the
	// last payload byte but before the target drained it surfaces here as
	// an error, so the attempt is retried instead of falsely reported
	// delivered.
	if cfg.confirmTimeout > 0 {
		c.SetDeadline(time.Now().Add(cfg.confirmTimeout))
	}
	if _, err := io.Copy(io.Discard, c); err != nil {
		return st, fmt.Errorf("confirm drain: %w", err)
	}
	return st, nil
}

package resilience_test

import (
	"bytes"
	"context"
	"crypto/md5"
	"sync"
	"testing"
	"time"

	"lsl/internal/core"
	"lsl/internal/depot"
	"lsl/internal/faultnet"
	"lsl/internal/logistics"
	"lsl/internal/metrics"
	"lsl/internal/resilience"
	"lsl/internal/route"
	"lsl/internal/stripe"
)

// stripedTarget is a session target that reassembles a stripe group:
// every accepted session is fed into one stripe.Receiver on its own
// goroutine, per-stream errors are tolerated (a dead stripe's
// replacement arrives as a fresh session), and done fires once the
// logical stream is byte-complete.
type stripedTarget struct {
	l    *core.Listener
	recv *stripe.Receiver
	buf  bytes.Buffer
	done chan struct{}
	once sync.Once
}

func newStripedTarget(t *testing.T) *stripedTarget {
	t.Helper()
	l, err := core.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	st := &stripedTarget{l: l, done: make(chan struct{})}
	st.recv = stripe.NewReceiver(&st.buf)
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			sc, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				// Attach errors are expected: this stream may be the
				// half a faultnet reset left behind.
				if aerr := st.recv.Attach(sc); aerr != nil {
					t.Logf("striped target: stream error (tolerated): %v", aerr)
				}
				// Close unwinds the cascade so the sender's confirm
				// drain completes.
				sc.Close()
				if st.recv.Complete() {
					st.once.Do(func() { close(st.done) })
				}
			}()
		}
	}()
	return st
}

func (st *stripedTarget) addr() string { return st.l.Addr().String() }

func (st *stripedTarget) wait(t *testing.T, want []byte) {
	t.Helper()
	select {
	case <-st.done:
	case <-time.After(60 * time.Second):
		t.Fatalf("timeout: striped target has %d/%d bytes", st.recv.Written(), len(want))
	}
	got := st.buf.Bytes()
	if !bytes.Equal(got, want) {
		t.Fatalf("reassembled stream differs: got %d bytes, want %d", len(got), len(want))
	}
	if md5.Sum(got) != md5.Sum(want) {
		t.Fatal("end-to-end MD5 mismatch")
	}
}

// The striped acceptance case: the planner proposes three link-disjoint
// routes (two real depot cascades plus the direct path), the engine
// stripes one stream across them with predicted weights, and faultnet
// resets the fastest stripe mid-flow. The group must heal that stripe
// (redial, replay its in-flight frames), keep rebalancing weights from
// observed throughput, and deliver byte-exact — all visible in the
// lsl_stripe_* counters.
func TestStripedTransferHealsDeadStripe(t *testing.T) {
	st := newStripedTarget(t)
	depAAddr, _ := startDepot(t, depot.Config{DrainTimeout: 0})
	depBAddr, _ := startDepot(t, depot.Config{})
	payload := randBytes(4<<20, 21)

	// Planning graph over the live addresses. The direct edge has the
	// lowest RTT (so the direct candidate's router-level path is the
	// edge itself, link-disjoint from both cascades) but the least
	// bandwidth, so the depot cascades outrank it.
	g := route.NewGraph()
	g.AddNode(route.Node{ID: "client"})
	g.AddNode(route.Node{ID: "depA", Depot: true, Addr: depAAddr})
	g.AddNode(route.Node{ID: "depB", Depot: true, Addr: depBAddr})
	g.AddNode(route.Node{ID: "server", Addr: st.addr()})
	fast := route.Metrics{RTTSeconds: 0.005, BandwidthBps: 100e6, LossProb: 2.5e-4}
	mid := route.Metrics{RTTSeconds: 0.020, BandwidthBps: 50e6, LossProb: 2.5e-4}
	g.AddDuplex("client", "depA", fast)
	g.AddDuplex("depA", "server", fast)
	g.AddDuplex("client", "depB", mid)
	g.AddDuplex("depB", "server", mid)
	g.AddDuplex("client", "server", route.Metrics{RTTSeconds: 0.008, BandwidthBps: 20e6, LossProb: 2.5e-4})

	pl, err := logistics.New(g, "client")
	if err != nil {
		t.Fatal(err)
	}
	pl.SetMetrics(logistics.NewMetrics(metrics.NewRegistry()))

	// Sanity: three disjoint routes, predicted-fastest via depA.
	routes, weights, err := pl.PlanStripes(st.addr(), int64(len(payload)), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 3 {
		t.Fatalf("PlanStripes proposed %d routes, want 3: %+v", len(routes), routes)
	}
	if len(routes[0].Via) != 1 || routes[0].Via[0] != depAAddr {
		t.Fatalf("fastest stripe route %+v, want via depA %s", routes[0], depAAddr)
	}
	if weights[0] < weights[1] || weights[1] < weights[2] {
		t.Fatalf("stripe weights not descending: %v", weights)
	}

	// Pace every first-hop link so the group genuinely shares the flow
	// (unpaced loopback would let whichever stripe attaches first finish
	// the whole stream), and kill the predicted-fastest stripe mid-flow:
	// the first session through depA is reset after 300 KB. The redial
	// consumes no step and passes clean.
	fn := faultnet.New(nil)
	pace := 500 * time.Microsecond
	fn.Script(depAAddr, faultnet.Step{WriteLatency: pace, ResetAfterBytes: 300_000})
	fn.Script(depBAddr, faultnet.Step{WriteLatency: pace})
	fn.Script(st.addr(), faultnet.Step{WriteLatency: pace})

	smet := resilience.NewStripedMetrics(metrics.NewRegistry())
	res, err := resilience.StripedTransfer(context.Background(),
		[]core.Route{{Target: st.addr()}}, // planner overrides this
		bytes.NewReader(payload), int64(len(payload)),
		resilience.WithStripes(3),
		resilience.WithPolicy(fastPolicy()),
		resilience.WithDialer(fn.DialContext),
		resilience.WithPlanner(pl),
		resilience.WithFrameSize(32<<10),
		resilience.WithRebalanceBytes(256<<10),
		resilience.WithStripedMetrics(smet),
		resilience.WithLogf(t.Logf))
	if err != nil {
		t.Fatalf("striped transfer did not heal: %v", err)
	}
	st.wait(t, payload)

	if res.Stripes != 3 || len(res.StripeBytes) != 3 {
		t.Fatalf("result fan-out %d/%v, want 3 stripes", res.Stripes, res.StripeBytes)
	}
	var sum int64
	for _, b := range res.StripeBytes {
		sum += b
	}
	if sum != int64(len(payload)) {
		t.Fatalf("stripe bytes sum %d, want %d", sum, len(payload))
	}
	if res.Heals < 1 {
		t.Fatalf("heals=%d, want >= 1", res.Heals)
	}
	if res.Abandoned != 0 {
		t.Fatalf("abandoned=%d, want 0", res.Abandoned)
	}
	if res.FramesReassigned < 1 {
		t.Fatalf("frames reassigned=%d, want >= 1 after a mid-flow reset", res.FramesReassigned)
	}
	if res.Rebalances < 1 {
		t.Fatalf("rebalances=%d, want >= 1", res.Rebalances)
	}
	if got := smet.StripeHeals.Value(); got < 1 {
		t.Fatalf("lsl_stripe_stripe_heals_total=%d, want >= 1", got)
	}
	if got := smet.Rebalances.Value(); got < 1 {
		t.Fatalf("lsl_stripe_rebalances_total=%d, want >= 1", got)
	}
	if got := smet.FramesReassigned.Value(); got < 1 {
		t.Fatalf("lsl_stripe_frames_reassigned_total=%d, want >= 1", got)
	}
	if got := smet.Groups.Value(); got != 1 {
		t.Fatalf("lsl_stripe_groups_total=%d, want 1", got)
	}
}

// Plannerless striped transfer over explicit routes: two depot cascades,
// no faults, byte-exact delivery and per-stripe accounting.
func TestStripedTransferCleanPath(t *testing.T) {
	st := newStripedTarget(t)
	depAAddr, _ := startDepot(t, depot.Config{})
	depBAddr, _ := startDepot(t, depot.Config{})
	payload := randBytes(1<<20, 22)

	res, err := resilience.StripedTransfer(context.Background(),
		[]core.Route{
			{Via: []string{depAAddr}, Target: st.addr()},
			{Via: []string{depBAddr}, Target: st.addr()},
		},
		bytes.NewReader(payload), int64(len(payload)),
		resilience.WithPolicy(fastPolicy()),
		resilience.WithFrameSize(64<<10),
		resilience.WithStripedMetrics(resilience.NewStripedMetrics(metrics.NewRegistry())),
		resilience.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	st.wait(t, payload)
	if res.Stripes != 2 || res.Heals != 0 || res.Abandoned != 0 {
		t.Fatalf("clean path result %+v", res)
	}
	var sum int64
	for _, b := range res.StripeBytes {
		sum += b
	}
	if sum != int64(len(payload)) {
		t.Fatalf("stripe bytes sum %d, want %d", sum, len(payload))
	}
}

// The end-of-stream tail acceptance case: one of two stripes wedges —
// its connection stays up but writes block forever — with frames still
// queued and in flight. The group must steal the queued frames onto the
// healthy stripe, speculatively duplicate the wedged in-flight tail,
// supersede the dead weight, and confirm by receiver ack — byte-exact,
// with no frame double-counted in the per-stripe attribution.
func TestStripedTransferStealsFromStalledStripe(t *testing.T) {
	st := newStripedTarget(t)
	depAAddr, _ := startDepot(t, depot.Config{})
	depBAddr, _ := startDepot(t, depot.Config{})
	payload := randBytes(2<<20, 24)

	// Stripe 1's first session wedges after 400 KB: alive, paced slow,
	// never delivering another byte. Stripe 0 is paced but healthy.
	fn := faultnet.New(nil)
	fn.Script(depAAddr, faultnet.Step{WriteLatency: 200 * time.Microsecond})
	fn.Script(depBAddr, faultnet.Step{WriteLatency: time.Millisecond, StallAfterBytes: 400_000})

	smet := resilience.NewStripedMetrics(metrics.NewRegistry())
	res, err := resilience.StripedTransfer(context.Background(),
		[]core.Route{
			{Via: []string{depAAddr}, Target: st.addr()},
			{Via: []string{depBAddr}, Target: st.addr()},
		},
		bytes.NewReader(payload), int64(len(payload)),
		resilience.WithPolicy(fastPolicy()),
		resilience.WithDialer(fn.DialContext),
		resilience.WithFrameSize(32<<10),
		// A fixed in-flight budget keeps frames queued on the wedged
		// stripe (deterministic steal bait) instead of adapting down.
		resilience.WithInflightBytes(256<<10),
		resilience.WithStripedMetrics(smet),
		resilience.WithLogf(t.Logf))
	if err != nil {
		t.Fatalf("striped transfer did not reclaim the stalled tail: %v", err)
	}
	st.wait(t, payload)

	if res.FramesStolen < 1 {
		t.Fatalf("frames stolen=%d, want >= 1", res.FramesStolen)
	}
	if res.FramesSpeculated < 1 {
		t.Fatalf("frames speculated=%d, want >= 1 (the wedged in-flight frame)", res.FramesSpeculated)
	}
	if res.Superseded < 1 {
		t.Fatalf("superseded=%d, want >= 1 — the wedged stripe cannot end on its own", res.Superseded)
	}
	if !res.Confirmed {
		t.Fatal("group should confirm via receiver ack")
	}
	var sum int64
	for _, b := range res.StripeBytes {
		if b < 0 {
			t.Fatalf("negative stripe attribution: %v", res.StripeBytes)
		}
		sum += b
	}
	if sum != int64(len(payload)) {
		t.Fatalf("stripe bytes sum %d, want %d — a duplicate was double-counted (%v)",
			sum, len(payload), res.StripeBytes)
	}
	if got := smet.FramesStolen.Value(); got < 1 {
		t.Fatalf("lsl_stripe_frames_stolen_total=%d, want >= 1", got)
	}
	if got := smet.FramesSpeculated.Value(); got < 1 {
		t.Fatalf("lsl_stripe_frames_speculated_total=%d, want >= 1", got)
	}
	if got := smet.Tail.Count(); got != 1 {
		t.Fatalf("lsl_stripe_tail_ns count=%d, want 1 observation", got)
	}
	if res.Heals != 0 {
		t.Fatalf("heals=%d, want 0 — supersession must not trigger a redial", res.Heals)
	}
}

// A stripe whose depot refuses every dial is abandoned after its budget
// and the survivors deliver its share.
func TestStripedTransferAbandonsHopelessStripe(t *testing.T) {
	st := newStripedTarget(t)
	depAddr, _ := startDepot(t, depot.Config{})
	payload := randBytes(600_000, 23)

	pol := fastPolicy()
	pol.MaxAttempts = 3
	// Keep plannerless failover from dropping the dead depot and dialing
	// the target directly — this case wants the budget to run out.
	pol.FailoverAfter = 100
	fn := faultnet.New(nil)
	deadDepot := "127.0.0.1:1" // nothing listens here
	fn.Script(deadDepot,
		faultnet.Step{RefuseDial: true},
		faultnet.Step{RefuseDial: true},
		faultnet.Step{RefuseDial: true})

	res, err := resilience.StripedTransfer(context.Background(),
		[]core.Route{
			{Via: []string{depAddr}, Target: st.addr()},
			{Via: []string{deadDepot}, Target: st.addr()},
		},
		bytes.NewReader(payload), int64(len(payload)),
		resilience.WithPolicy(pol),
		resilience.WithDialer(fn.DialContext),
		resilience.WithFrameSize(32<<10),
		resilience.WithStripedMetrics(resilience.NewStripedMetrics(metrics.NewRegistry())),
		resilience.WithLogf(t.Logf))
	if err != nil {
		t.Fatalf("group should survive an abandoned stripe: %v", err)
	}
	st.wait(t, payload)
	if res.Abandoned != 1 {
		t.Fatalf("abandoned=%d, want 1", res.Abandoned)
	}
	if res.StripeBytes[1] != 0 {
		t.Fatalf("dead stripe carried %d bytes, want 0", res.StripeBytes[1])
	}
	if res.StripeBytes[0] != int64(len(payload)) {
		t.Fatalf("surviving stripe carried %d, want all %d", res.StripeBytes[0], len(payload))
	}
}

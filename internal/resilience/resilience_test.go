package resilience_test

import (
	"bytes"
	"context"
	"crypto/md5"
	"errors"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"lsl/internal/backoff"
	"lsl/internal/core"
	"lsl/internal/depot"
	"lsl/internal/faultnet"
	"lsl/internal/metrics"
	"lsl/internal/mux"
	"lsl/internal/resilience"
)

// fastPolicy keeps retry tests quick and deterministic.
func fastPolicy() resilience.Policy {
	return resilience.Policy{
		MaxAttempts:   10,
		Backoff:       backoff.Policy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
		FailoverAfter: 2,
		JitterSeed:    1,
	}
}

// verifyingTarget is a session target that reassembles a session's
// payload across sublinks (resume fragments arrive in accept order) and
// reports the full stream once a sublink completes with the digest
// verified.
type verifyingTarget struct {
	l    *core.Listener
	mu   sync.Mutex
	data bytes.Buffer
	done chan []byte
}

func newVerifyingTarget(t *testing.T) *verifyingTarget {
	t.Helper()
	l, err := core.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	vt := &verifyingTarget{l: l, done: make(chan []byte, 1)}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			sc, err := l.Accept()
			if err != nil {
				return
			}
			// Sublinks are handled sequentially: a resumed sublink only
			// exists after its predecessor died, and fragment order must
			// match arrival order for reassembly.
			frag, rerr := io.ReadAll(sc)
			vt.mu.Lock()
			vt.data.Write(frag)
			if rerr == nil && sc.Verified() {
				full := append([]byte(nil), vt.data.Bytes()...)
				select {
				case vt.done <- full:
				default:
				}
			}
			vt.mu.Unlock()
			sc.Close()
		}
	}()
	return vt
}

func (vt *verifyingTarget) addr() string { return vt.l.Addr().String() }

func (vt *verifyingTarget) wait(t *testing.T, want []byte) {
	t.Helper()
	select {
	case got := <-vt.done:
		if !bytes.Equal(got, want) {
			t.Fatalf("reassembled stream differs: got %d bytes, want %d", len(got), len(want))
		}
		if md5.Sum(got) != md5.Sum(want) {
			t.Fatal("end-to-end MD5 mismatch")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("timeout waiting for verified delivery")
	}
}

func startDepot(t *testing.T, cfg depot.Config) (string, *depot.Depot) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d := depot.New(cfg)
	go d.Serve(ln)
	t.Cleanup(func() { d.Close() })
	return ln.Addr().String(), d
}

func randBytes(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestTransferCleanPath(t *testing.T) {
	vt := newVerifyingTarget(t)
	dep, _ := startDepot(t, depot.Config{})
	payload := randBytes(300_000, 1)

	res, err := resilience.Transfer(context.Background(),
		core.Route{Via: []string{dep}, Target: vt.addr()},
		bytes.NewReader(payload), int64(len(payload)),
		resilience.WithPolicy(fastPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	vt.wait(t, payload)
	if res.Attempts != 1 || res.Retries != 0 || res.Failovers != 0 {
		t.Fatalf("clean transfer did recovery work: %+v", res)
	}
	if res.Bytes != int64(len(payload)) {
		t.Fatalf("bytes=%d", res.Bytes)
	}
}

// The deterministic healing case: the first two sublinks are reset at
// exact byte counts by the fault harness; the engine resumes each time
// and the digest still verifies end to end.
func TestTransferHealsInjectedMidStreamResets(t *testing.T) {
	vt := newVerifyingTarget(t)
	payload := randBytes(2<<20, 2)

	fn := faultnet.New(nil)
	fn.Script(vt.addr(),
		faultnet.Step{ResetAfterBytes: 400_000},
		faultnet.Step{ResetAfterBytes: 900_000},
	)

	reg := metrics.NewRegistry()
	met := resilience.NewMetrics(reg)
	res, err := resilience.Transfer(context.Background(),
		core.Route{Target: vt.addr()},
		bytes.NewReader(payload), int64(len(payload)),
		resilience.WithPolicy(fastPolicy()),
		resilience.WithDialer(fn.DialContext),
		resilience.WithMetrics(met),
		resilience.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	vt.wait(t, payload)
	if res.Attempts != 3 || res.Retries != 2 {
		t.Fatalf("result: %+v", res)
	}
	if got := met.Retries.Value(); got != 2 {
		t.Fatalf("lsl_transfer_retries_total=%d, want 2", got)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "lsl_transfer_retries_total 2") {
		t.Fatalf("metrics text missing retry count:\n%s", sb.String())
	}
}

// The acceptance-criteria case: a real depot is killed mid-transfer. The
// engine re-dials, finds the depot dead, fails over by dropping it from
// the route, and finishes the delivery through the surviving depot with
// the end-to-end digest intact — zero manual resume calls.
func TestTransferFailsOverKilledDepot(t *testing.T) {
	vt := newVerifyingTarget(t)
	payload := randBytes(4<<20, 3)

	// Pace the first-hop writes so the kill lands mid-stream
	// (~16 chunks of 256KiB, 2ms apiece gives a ~32ms window).
	fn := faultnet.New(nil)

	dep1Cfg := depot.Config{DrainTimeout: time.Millisecond}
	dep1Addr, dep1 := startDepot(t, dep1Cfg)
	dep2Addr, _ := startDepot(t, depot.Config{})
	fn.Script(dep1Addr, faultnet.Step{WriteLatency: 2 * time.Millisecond})

	// Kill depot 1 once it has relayed a quarter of the payload.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for dep1.Stats().BytesForward < uint64(len(payload)/4) {
			time.Sleep(time.Millisecond)
		}
		dep1.Close() // cancels the in-flight relay and refuses new dials
	}()

	reg := metrics.NewRegistry()
	met := resilience.NewMetrics(reg)
	res, err := resilience.Transfer(context.Background(),
		core.Route{Via: []string{dep1Addr, dep2Addr}, Target: vt.addr()},
		bytes.NewReader(payload), int64(len(payload)),
		resilience.WithPolicy(fastPolicy()),
		resilience.WithDialer(fn.DialContext),
		resilience.WithMetrics(met),
		resilience.WithLogf(t.Logf))
	if err != nil {
		t.Fatalf("transfer did not heal: %v", err)
	}
	<-killed
	vt.wait(t, payload)

	if res.Retries == 0 {
		t.Fatal("no retries recorded for a killed depot")
	}
	if res.Failovers != 1 {
		t.Fatalf("failovers=%d, want 1", res.Failovers)
	}
	wantVia := []string{dep2Addr}
	if len(res.Route.Via) != 1 || res.Route.Via[0] != wantVia[0] {
		t.Fatalf("final route %v, want via %v", res.Route.Via, wantVia)
	}
	if got := met.Retries.Value(); got != uint64(res.Retries) {
		t.Fatalf("lsl_transfer_retries_total=%d, result says %d", got, res.Retries)
	}
	if got := met.Failovers.Value(); got != 1 {
		t.Fatalf("lsl_transfer_failovers_total=%d", got)
	}
	if got := met.Transfers.With(resilience.OutcomeDelivered).Value(); got != 1 {
		t.Fatalf("delivered=%d", got)
	}
}

// A seeded chaos schedule: refusals and resets mixed, still heals. Run
// with -count=2 to prove the schedule is reproducible.
func TestTransferSurvivesChaosSchedule(t *testing.T) {
	vt := newVerifyingTarget(t)
	payload := randBytes(1<<20, 4)

	fn := faultnet.New(nil)
	steps := fn.Chaos(vt.addr(), 1234, faultnet.ChaosConfig{
		Steps:         4,
		RefuseProb:    0.5,
		MaxResetBytes: int64(len(payload)) - 1,
	})
	res, err := resilience.Transfer(context.Background(),
		core.Route{Target: vt.addr()},
		bytes.NewReader(payload), int64(len(payload)),
		resilience.WithPolicy(fastPolicy()),
		resilience.WithDialer(fn.DialContext),
		resilience.WithLogf(t.Logf))
	if err != nil {
		t.Fatalf("chaos schedule %+v defeated the engine: %v", steps, err)
	}
	vt.wait(t, payload)
	// Resume shrinks each successive sublink, so a late reset threshold
	// may never fire — the engine can finish before consuming every step.
	if res.Attempts < 2 || res.Attempts > len(steps)+1 {
		t.Fatalf("attempts=%d, want in [2, %d] (schedule %+v)", res.Attempts, len(steps)+1, steps)
	}
	if res.Retries != res.Attempts-1 {
		t.Fatalf("retries=%d attempts=%d", res.Retries, res.Attempts)
	}
}

func TestTransferPermanentRejectionStopsRetrying(t *testing.T) {
	// A depot whose next hop is unreachable rejects the session: that is
	// an active refusal (ErrRejected), classified permanent.
	dep, _ := startDepot(t, depot.Config{DialTimeout: 200 * time.Millisecond})
	payload := randBytes(1000, 5)
	res, err := resilience.Transfer(context.Background(),
		core.Route{Via: []string{dep}, Target: "127.0.0.1:1"},
		bytes.NewReader(payload), int64(len(payload)),
		resilience.WithPolicy(fastPolicy()))
	if !errors.Is(err, core.ErrRejected) {
		t.Fatalf("want ErrRejected, got %v", err)
	}
	if res.Attempts != 1 {
		t.Fatalf("permanent error retried: %+v", res)
	}
}

func TestTransferExhaustsAgainstDeadWorld(t *testing.T) {
	// Nothing listens anywhere; every attempt is a transient dial failure
	// until the budget runs out.
	payload := randBytes(100, 6)
	pol := fastPolicy()
	pol.MaxAttempts = 3
	pol.FailoverAfter = -1 // no Via to drop anyway
	res, err := resilience.Transfer(context.Background(),
		core.Route{Target: "127.0.0.1:1"},
		bytes.NewReader(payload), int64(len(payload)),
		resilience.WithPolicy(pol))
	if !errors.Is(err, resilience.ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts=%d", res.Attempts)
	}
}

func TestTransferCancelledMidBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	pol := fastPolicy()
	pol.Backoff = backoff.Policy{Base: 10 * time.Second, Max: 10 * time.Second}
	payload := randBytes(100, 7)
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := resilience.Transfer(ctx,
		core.Route{Target: "127.0.0.1:1"},
		bytes.NewReader(payload), int64(len(payload)),
		resilience.WithPolicy(pol))
	if err == nil {
		t.Fatal("transfer succeeded against a dead target")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
}

func TestTransferMeasuresSizeWhenNegative(t *testing.T) {
	vt := newVerifyingTarget(t)
	payload := randBytes(123_456, 8)
	res, err := resilience.Transfer(context.Background(),
		core.Route{Target: vt.addr()},
		bytes.NewReader(payload), -1,
		resilience.WithPolicy(fastPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != int64(len(payload)) {
		t.Fatalf("measured %d bytes", res.Bytes)
	}
	vt.wait(t, payload)
}

func TestPermanentClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{core.ErrRejected, true},
		{core.ErrDigestMismatch, true},
		{context.Canceled, true},
		{io.ErrUnexpectedEOF, false},
		{errors.New("connection reset by peer"), false},
		{&core.DialError{Hop: "x:1", Err: errors.New("refused")}, false},
	}
	for _, c := range cases {
		if got := resilience.Permanent(c.err); got != c.want {
			t.Errorf("Permanent(%v)=%v, want %v", c.err, got, c.want)
		}
	}
}

// The persistent-trunk acceptance case: the session rides a multiplexed
// stream on a pooled TCP link, and that link is killed at an exact byte
// count mid-transfer. The pool detects the dead trunk, the engine
// re-dials with resume (which opens a replacement trunk), and the
// payload arrives byte-exact with the end-to-end digest verified.
func TestTransferHealsKilledTrunk(t *testing.T) {
	vt := newVerifyingTarget(t)
	dep, _ := startDepot(t, depot.Config{Mux: true})
	payload := randBytes(2<<20, 9)

	fn := faultnet.New(nil)
	fn.Script(dep, faultnet.Step{ResetAfterBytes: 600_000})

	reg := metrics.NewRegistry()
	pm := &mux.PoolMetrics{
		LinkOpened: reg.Counter("lsl_link_opened_total", "Trunks established."),
		LinkClosed: reg.Counter("lsl_link_closed_total", "Trunks torn down."),
	}
	pool := mux.NewPool(mux.PoolConfig{Dial: fn.DialContext, Metrics: pm, Logf: t.Logf})
	defer pool.Close()

	res, err := resilience.Transfer(context.Background(),
		core.Route{Via: []string{dep}, Target: vt.addr()},
		bytes.NewReader(payload), int64(len(payload)),
		resilience.WithPolicy(fastPolicy()),
		resilience.WithDialer(pool.DialContext),
		resilience.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	vt.wait(t, payload)
	if res.Attempts != 2 || res.Retries != 1 {
		t.Fatalf("trunk kill should cost exactly one retry: %+v", res)
	}
	if fn.Resets() != 1 {
		t.Fatalf("injected resets = %d, want 1", fn.Resets())
	}
	// The healed attempt rode a fresh trunk: original plus replacement.
	if got := pm.LinkOpened.Value(); got != 2 {
		t.Fatalf("lsl_link_opened_total = %d, want 2", got)
	}
}

// Striped self-healing transfers: one logical stream over N concurrent
// sessions on (ideally) link-disjoint routes, scheduled by the weighted
// credit dispatcher of internal/stripe and healed per stripe with the
// same classify/backoff/redial machinery single-path Transfer uses. A
// stripe that dies mid-flow is re-dialed — after a replan onto the
// next-best disjoint route when a planner is attached — and the frames it
// had in flight are reassigned; a stripe whose attempt budget runs out is
// abandoned and its share flows through the survivors. Delivery is
// confirmed per stripe by the cascade unwinding, with a replay path for
// stripes whose confirmation fails after the data phase.

package resilience

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"lsl/internal/backoff"
	"lsl/internal/core"
	"lsl/internal/metrics"
	"lsl/internal/stripe"
	"lsl/internal/wire"
)

// StripePlanner extends Planner with disjoint multi-path planning.
// Implemented by internal/logistics; a plain Planner still works with
// StripedTransfer (replans use PlanRoutes), it just cannot propose
// link-disjoint route sets or predicted stripe weights.
type StripePlanner interface {
	Planner
	// PlanStripes returns up to k edge-disjoint routes to the target,
	// best predicted first, with a predicted-throughput weight for each.
	PlanStripes(target string, size int64, k int) ([]core.Route, []float64, error)
}

// StripedMetrics is the striped engine's counter set.
type StripedMetrics struct {
	// Groups is lsl_stripe_groups_total.
	Groups *metrics.Counter
	// Rebalances is lsl_stripe_rebalances_total.
	Rebalances *metrics.Counter
	// StripeHeals is lsl_stripe_stripe_heals_total.
	StripeHeals *metrics.Counter
	// FramesReassigned is lsl_stripe_frames_reassigned_total.
	FramesReassigned *metrics.Counter
	// FramesStolen is lsl_stripe_frames_stolen_total.
	FramesStolen *metrics.Counter
	// FramesSpeculated is lsl_stripe_frames_speculated_total.
	FramesSpeculated *metrics.Counter
	// Tail is lsl_stripe_tail_ns: time each group spent between the frame
	// source running dry and the last stripe draining.
	Tail *metrics.Histogram
	// QueuedBytes is lsl_stripe_queued_bytes: each stripe index's
	// currently committed (queued + in-flight + unacknowledged) bytes,
	// sampled while a group is running.
	QueuedBytes *metrics.GaugeVec
}

// NewStripedMetrics registers the lsl_stripe_* families on reg.
func NewStripedMetrics(reg *metrics.Registry) *StripedMetrics {
	return &StripedMetrics{
		Groups: reg.Counter("lsl_stripe_groups_total",
			"Striped transfer groups started."),
		Rebalances: reg.Counter("lsl_stripe_rebalances_total",
			"Mid-flow stripe weight recomputations from observed throughput."),
		StripeHeals: reg.Counter("lsl_stripe_stripe_heals_total",
			"Individual stripes re-attached after a mid-flow failure."),
		FramesReassigned: reg.Counter("lsl_stripe_frames_reassigned_total",
			"Frames requeued off dead or abandoned stripes."),
		FramesStolen: reg.Counter("lsl_stripe_frames_stolen_total",
			"Queued frames migrated off slow stripes at end-of-stream."),
		FramesSpeculated: reg.Counter("lsl_stripe_frames_speculated_total",
			"Tail frames duplicated onto faster stripes speculatively."),
		Tail: reg.Histogram("lsl_stripe_tail_ns",
			"End-of-stream tail per group: frame source dry to group drained (ns).",
			[]float64{1e6, 5e6, 10e6, 25e6, 50e6, 100e6, 250e6, 1e9, 5e9}),
		QueuedBytes: reg.GaugeVec("lsl_stripe_queued_bytes",
			"Committed (queued + in-flight + unacked) bytes per stripe index.",
			"stripe"),
	}
}

// WithStripes sets the stripe count (default: one per provided route).
func WithStripes(n int) Option { return func(c *config) { c.stripes = n } }

// WithFrameSize sets the striping granularity in bytes.
func WithFrameSize(n int) Option { return func(c *config) { c.frameSize = n } }

// WithQueueFrames bounds frames queued per stripe ahead of its writer.
func WithQueueFrames(n int) Option { return func(c *config) { c.queueFrames = n } }

// WithRebalanceBytes recomputes stripe weights from observed throughput
// every n bytes written (<= 0 disables mid-flow rebalancing).
func WithRebalanceBytes(n int64) Option { return func(c *config) { c.rebalanceBytes = n } }

// WithStripedMetrics directs the lsl_stripe_* counters at m instead of
// the package default registry.
func WithStripedMetrics(m *StripedMetrics) Option { return func(c *config) { c.smet = m } }

// WithStealThreshold sets the rate ratio a fast stripe must hold over a
// slow one before end-of-stream work stealing and tail speculation kick
// in (default stripe.DefaultStealThreshold; negative disables tail
// reclamation entirely).
func WithStealThreshold(v float64) Option { return func(c *config) { c.stealThreshold = v } }

// WithInflightBytes bounds each stripe's unacknowledged bytes: > 0 is a
// fixed per-stripe budget, 0 (default) adapts one from the receiver's
// acked throughput, negative keeps only the legacy QueueFrames bound.
func WithInflightBytes(n int64) Option { return func(c *config) { c.inflightBytes = n } }

// WithSockBuffers pins SO_SNDBUF/SO_RCVBUF (bytes) on every striped
// stripe dial; 0 keeps the kernel default. Shrinking the send buffer
// caps how much a slow path can absorb ahead of delivery — the kernel's
// contribution to the end-of-stream tail.
func WithSockBuffers(snd, rcv int) Option {
	return func(c *config) { c.sockSnd, c.sockRcv = snd, rcv }
}

// StripedResult reports how a striped transfer was achieved.
type StripedResult struct {
	// Group identifies the stripe group (not a session ID: each stripe
	// session draws its own).
	Group wire.SessionID
	// Stripes is the group fan-out.
	Stripes int
	// Routes is the final route each stripe delivered over.
	Routes []core.Route
	// StripeBytes is the payload bytes each stripe carried.
	StripeBytes []int64
	// Bytes is the logical stream length.
	Bytes int64
	// Heals counts stripes successfully re-attached after a failure.
	Heals int
	// Replans counts stripes moved onto a different route.
	Replans int
	// Abandoned counts stripes whose budget ran out (their frames were
	// delivered by the survivors).
	Abandoned int
	// Rebalances counts mid-flow weight recomputations.
	Rebalances int64
	// FramesReassigned counts frames requeued off dead stripes.
	FramesReassigned int64
	// FramesStolen counts queued frames migrated off slow stripes at
	// end-of-stream.
	FramesStolen int64
	// FramesSpeculated counts tail frames duplicated onto faster stripes.
	FramesSpeculated int64
	// Superseded counts wedged stripes retired with their frames
	// re-delivered elsewhere.
	Superseded int
	// Confirmed reports whether the receiver acked the whole stream as
	// flushed (in which case StripeBytes is the receiver's attribution of
	// which stripe landed each byte first).
	Confirmed bool
	// Tail is how long the group spent between the frame source running
	// dry and the last stripe draining.
	Tail time.Duration
	// Duration is wall-clock time for the whole group.
	Duration time.Duration
}

// stripeCtl is the engine's per-stripe mutable state, guarded by the
// engine mutex.
type stripeCtl struct {
	route       core.Route
	conn        *core.Conn
	ackDone     chan error // current conn's ack reader exit status
	dialSeconds float64
	attempts    int // session dials consumed from the per-stripe budget
	dialFails   int // consecutive first-hop dial failures (plannerless failover)
	rng         *rand.Rand
	lastErr     error
}

func routeKey(r core.Route) string {
	return strings.Join(r.Via, ",") + "|" + r.Target
}

// StripedTransfer delivers size bytes from src over len(routes) (or
// WithStripes(n)) concurrent stripe sessions and heals individual
// stripes through transient failures. With a StripePlanner attached
// (WithPlanner), the provided routes become a fallback: the planner
// proposes up to n edge-disjoint routes with predicted throughput
// weights, stripes map onto them cyclically, and every stripe's fate is
// fed back into the forecasts. Every route must name the same target.
//
// src must support concurrent ReadAt (frames are re-read on reassignment
// and replay). The MD5 digest trailer is not used — integrity rides on
// per-frame offsets, TCP checksums, and the receiver's completeness
// check; pair with an end-to-end digest at a higher layer if required.
func StripedTransfer(ctx context.Context, routes []core.Route, src io.ReaderAt, size int64, opts ...Option) (*StripedResult, error) {
	cfg := config{confirmTimeout: 30 * time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	pol := cfg.policy.withDefaults()
	smet := cfg.smet
	if smet == nil {
		smet = defaultStripedMetrics()
	}
	logf := cfg.logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	if len(routes) == 0 {
		return nil, fmt.Errorf("resilience: striped transfer needs at least one route")
	}
	target := routes[0].Target
	for _, r := range routes {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		if r.Target != target {
			return nil, fmt.Errorf("resilience: stripe routes disagree on target (%s vs %s)", r.Target, target)
		}
	}
	if size < 0 {
		return nil, fmt.Errorf("resilience: striped transfer needs a known size")
	}
	n := cfg.stripes
	if n <= 0 {
		n = len(routes)
	}
	if n > stripe.MaxStripes {
		return nil, fmt.Errorf("resilience: %d stripes over limit %d", n, stripe.MaxStripes)
	}

	// Let the planner propose disjoint routes and weights; the caller's
	// routes remain the fallback when planning is unavailable.
	var weights []float64
	if sp, ok := cfg.planner.(StripePlanner); ok {
		if pr, pw, perr := sp.PlanStripes(target, size, n); perr == nil && len(pr) > 0 {
			routes, weights = pr, pw
			logf("resilience: striped planner proposed %d disjoint routes for %d stripes", len(pr), n)
		} else if perr != nil {
			logf("resilience: striped planner unavailable (%v); using provided routes", perr)
		}
	}

	group := cfg.session
	if group == (wire.SessionID{}) {
		group = wire.NewSessionID()
	}
	seed := pol.JitterSeed
	if seed == 0 {
		seed = int64(binary.BigEndian.Uint64(group[:8]))
	}

	// Map stripes onto routes cyclically; stripes sharing a route split
	// its predicted weight.
	shares := make([]int, len(routes))
	for i := 0; i < n; i++ {
		shares[i%len(routes)]++
	}
	ctls := make([]*stripeCtl, n)
	stripeWeights := make([]float64, n)
	for i := 0; i < n; i++ {
		r := routes[i%len(routes)]
		ctls[i] = &stripeCtl{
			route: core.Route{Via: append([]string(nil), r.Via...), Target: r.Target},
			rng:   rand.New(rand.NewSource(seed + int64(i)*7919)),
		}
		w := 1.0
		if len(weights) > 0 && weights[i%len(weights)] > 0 {
			w = weights[i%len(weights)] / float64(shares[i%len(routes)])
		}
		stripeWeights[i] = w
	}

	res := &StripedResult{Group: group, Stripes: n, Bytes: size}
	smet.Groups.Inc()
	start := time.Now()

	type downEvent struct {
		idx int
		err error
	}
	var emu sync.Mutex // guards ctls fields and res counters

	// Each stripe can die at most once per attach and attach at most
	// MaxAttempts times, so the channel never blocks the scheduler.
	downCh := make(chan downEvent, n*(pol.MaxAttempts+2))
	snd, err := stripe.NewSender(group, src, size, n, stripe.SenderConfig{
		FrameSize:      cfg.frameSize,
		Weights:        stripeWeights,
		QueueFrames:    cfg.queueFrames,
		RebalanceBytes: cfg.rebalanceBytes,
		Acks:           true,
		StealThreshold: cfg.stealThreshold,
		InflightBytes:  cfg.inflightBytes,
		OnStripeDown:   func(i int, err error) { downCh <- downEvent{i, err} },
		OnRebalance:    func([]float64) { smet.Rebalances.Inc() },
		OnReassign:     func(_, frames int) { smet.FramesReassigned.Add(uint64(frames)) },
		OnSteal: func(_, _, frames int) {
			smet.FramesStolen.Add(uint64(frames))
		},
		OnSpeculate: func(_, _, frames int) {
			smet.FramesSpeculated.Add(uint64(frames))
		},
		OnSuperseded: func(i int) {
			// The wedged write only returns once its connection dies;
			// the retired worker then self-retires on its stale
			// generation, so no down event or heal follows.
			emu.Lock()
			if sc := ctls[i]; sc.conn != nil {
				sc.conn.Close()
				sc.conn = nil
			}
			emu.Unlock()
		},
		Logf: logf,
	})
	if err != nil {
		return nil, err
	}

	dialStripe := func(r core.Route) (*core.Conn, error) {
		opts := []core.Option{core.WithSession(wire.NewSessionID())}
		if cfg.dial != nil {
			opts = append(opts, core.WithDialer(cfg.dial))
		}
		if cfg.handshake > 0 {
			opts = append(opts, core.WithHandshakeTimeout(cfg.handshake))
		}
		if cfg.sockSnd > 0 || cfg.sockRcv > 0 {
			opts = append(opts, core.WithSocketBuffers(cfg.sockSnd, cfg.sockRcv))
		}
		return core.Dial(ctx, r, opts...)
	}

	// readAcks owns conn c's backward channel for stripe idx, stream
	// generation gen: every delivery report feeds the scheduler's flow
	// control and tail reclamation, and the reader's exit status (io.EOF
	// once the cascade unwinds cleanly) lands on done for the confirm
	// phase to collect.
	readAcks := func(idx, gen int, c *core.Conn, done chan error) {
		for {
			a, rerr := stripe.ReadAck(c)
			if rerr != nil {
				done <- rerr
				return
			}
			snd.Ack(idx, gen, a)
		}
	}

	// replanStripe moves a stripe whose route keeps failing onto the best
	// candidate no other stripe is using; without a planner it falls back
	// to dropping a dead first-hop depot, like single-path failover.
	replanStripe := func(idx int) {
		sc := ctls[idx]
		var cand []core.Route
		if sp, ok := cfg.planner.(StripePlanner); ok {
			if rs, _, perr := sp.PlanStripes(target, size, 0); perr == nil {
				cand = rs
			}
		} else if cfg.planner != nil {
			if rs, perr := cfg.planner.PlanRoutes(target, size); perr == nil {
				cand = rs
			}
		}
		emu.Lock()
		defer emu.Unlock()
		if len(cand) > 0 {
			used := make(map[string]bool)
			for j, other := range ctls {
				if j != idx {
					used[routeKey(other.route)] = true
				}
			}
			next := cand[0]
			for _, c := range cand {
				if !used[routeKey(c)] {
					next = c
					break
				}
			}
			if !sameRoute(next, sc.route) {
				logf("resilience: group %s stripe %d replanned %v -> %v",
					group, idx, sc.route.Hops(), next.Hops())
				sc.route = next
				sc.dialFails = 0
				res.Replans++
				cfg.planner.RecordReplan()
			}
			return
		}
		if cfg.planner == nil && pol.FailoverAfter > 0 &&
			sc.dialFails >= pol.FailoverAfter && len(sc.route.Via) > 0 {
			dead := sc.route.Via[0]
			sc.route.Via = sc.route.Via[1:]
			sc.dialFails = 0
			res.Replans++
			logf("resilience: group %s stripe %d failing over around dead depot %s", group, idx, dead)
		}
	}

	// healStripe dials stripe idx (initial attach or heal) within the
	// stripe's attempt budget, abandoning it when the budget runs out.
	healStripe := func(idx int, isHeal bool) {
		sc := ctls[idx]
		for {
			if ctx.Err() != nil {
				snd.Abandon(idx, ctx.Err())
				return
			}
			emu.Lock()
			if sc.attempts >= pol.MaxAttempts {
				err := sc.lastErr
				res.Abandoned++
				emu.Unlock()
				logf("resilience: group %s stripe %d abandoned after %d attempts", group, idx, pol.MaxAttempts)
				snd.Abandon(idx, err)
				return
			}
			sc.attempts++
			attempt := sc.attempts
			r := sc.route
			emu.Unlock()
			if attempt > 1 {
				if err := backoff.Sleep(ctx, pol.Backoff.Delay(attempt-1, sc.rng)); err != nil {
					snd.Abandon(idx, err)
					return
				}
			}
			c, derr := dialStripe(r)
			if derr != nil {
				emu.Lock()
				sc.lastErr = derr
				emu.Unlock()
				if Permanent(derr) {
					emu.Lock()
					res.Abandoned++
					emu.Unlock()
					snd.Abandon(idx, derr)
					return
				}
				hop := ""
				var de *core.DialError
				if errors.As(derr, &de) {
					hop = de.Hop
				}
				emu.Lock()
				if len(r.Via) > 0 && hop == r.Via[0] {
					sc.dialFails++
				} else {
					sc.dialFails = 0
				}
				emu.Unlock()
				if cfg.planner != nil {
					cfg.planner.ObserveFailure(r, hop)
				}
				logf("resilience: group %s stripe %d dial %v failed (attempt %d/%d): %v",
					group, idx, r.Hops(), attempt, pol.MaxAttempts, derr)
				replanStripe(idx)
				continue
			}
			ackDone := make(chan error, 1)
			emu.Lock()
			sc.conn = c
			sc.ackDone = ackDone
			sc.dialFails = 0
			sc.dialSeconds = c.DialDuration().Seconds()
			emu.Unlock()
			gen, aerr := snd.AttachGen(idx, c)
			if aerr != nil {
				// Abandoned (or already live) while we were dialing.
				c.Close()
				return
			}
			go readAcks(idx, gen, c, ackDone)
			if isHeal {
				smet.StripeHeals.Inc()
				emu.Lock()
				res.Heals++
				emu.Unlock()
				logf("resilience: group %s stripe %d healed onto %v", group, idx, r.Hops())
			}
			return
		}
	}

	runDone := make(chan error, 1)
	go func() { runDone <- snd.Run(ctx) }()

	// Sample each stripe's committed bytes into the queued-bytes gauge
	// while the group runs; zero the children on the way out so a stuck
	// gauge cannot outlive its group.
	sampleStop := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				for i, qb := range snd.QueuedBytes() {
					smet.QueuedBytes.With(strconv.Itoa(i)).Set(qb)
				}
			case <-sampleStop:
				for i := 0; i < n; i++ {
					smet.QueuedBytes.With(strconv.Itoa(i)).Set(0)
				}
				return
			}
		}
	}()
	defer func() { close(sampleStop); sampleWG.Wait() }()

	var healWG sync.WaitGroup
	for i := 0; i < n; i++ {
		healWG.Add(1)
		go func(idx int) {
			defer healWG.Done()
			healStripe(idx, false)
		}(i)
	}

	closeAll := func() {
		emu.Lock()
		defer emu.Unlock()
		for _, sc := range ctls {
			if sc.conn != nil {
				sc.conn.Close()
				sc.conn = nil
			}
		}
	}
	finish := func() {
		emu.Lock()
		defer emu.Unlock()
		res.Rebalances = snd.Rebalances()
		res.FramesReassigned = snd.Reassigned()
		res.FramesStolen = snd.Stolen()
		res.FramesSpeculated = snd.Speculated()
		res.Superseded = int(snd.Superseded())
		res.Confirmed = snd.Confirmed()
		res.Tail = snd.TailDuration()
		if res.Confirmed {
			// The receiver's attribution: which stripe landed each byte
			// first, speculative duplicates excluded.
			res.StripeBytes = snd.AcceptedBytes()
		} else {
			res.StripeBytes = snd.StripeBytes()
		}
		res.Routes = make([]core.Route, n)
		for i, sc := range ctls {
			res.Routes[i] = sc.route
		}
		res.Duration = time.Since(start)
	}

	var runErr error
events:
	for {
		select {
		case ev := <-downCh:
			emu.Lock()
			sc := ctls[ev.idx]
			if sc.conn != nil {
				sc.conn.Close()
				sc.conn = nil
			}
			route := sc.route
			emu.Unlock()
			logf("resilience: group %s stripe %d died mid-stream: %v", group, ev.idx, ev.err)
			if cfg.planner != nil {
				// A mid-session break cannot be attributed to one hop.
				cfg.planner.ObserveFailure(route, "")
			}
			replanStripe(ev.idx)
			healWG.Add(1)
			go func(idx int) {
				defer healWG.Done()
				healStripe(idx, true)
			}(ev.idx)
		case runErr = <-runDone:
			break events
		}
	}
	healWG.Wait()
	if runErr != nil {
		closeAll()
		finish()
		return res, fmt.Errorf("resilience: group %s: %w", group, runErr)
	}

	// Confirm each stripe's delivery. The backward channel belongs to the
	// stripe's ack reader, so the drain half-closes and then waits for the
	// reader to see the cascade unwind (io.EOF) — or for the receiver's
	// flushed-everything ack, whichever lands first. A stripe that cannot
	// confirm is replayed in full onto a fresh session (the receiver drops
	// the duplicates).
	confirmStripe := func(idx int) error {
		sc := ctls[idx]
		emu.Lock()
		c := sc.conn
		done := sc.ackDone
		emu.Unlock()
		if c == nil {
			// Abandoned or superseded; its bytes were confirmed via the
			// survivors.
			return nil
		}
		drain := func(c *core.Conn, done chan error) error {
			if err := c.CloseWrite(); err != nil {
				return err
			}
			if cfg.confirmTimeout > 0 {
				c.SetDeadline(time.Now().Add(cfg.confirmTimeout))
			}
			select {
			case derr := <-done:
				if errors.Is(derr, io.EOF) {
					return nil
				}
				return derr
			case <-snd.ConfirmedChan():
				return nil
			}
		}
		// A replayed session has no standing ack reader: pump the acks
		// inline (generation -1 updates only the group-level flushed and
		// attribution state, never a live stripe's rate) until the unwind.
		replayDrain := func(c *core.Conn) error {
			if err := c.CloseWrite(); err != nil {
				return err
			}
			if cfg.confirmTimeout > 0 {
				c.SetDeadline(time.Now().Add(cfg.confirmTimeout))
			}
			for {
				a, rerr := stripe.ReadAck(c)
				if rerr != nil {
					if errors.Is(rerr, io.EOF) {
						return nil
					}
					return rerr
				}
				snd.Ack(idx, -1, a)
			}
		}
		err := drain(c, done)
		if err == nil {
			return nil
		}
		logf("resilience: group %s stripe %d confirm failed: %v", group, idx, err)
		for {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			emu.Lock()
			if sc.attempts >= pol.MaxAttempts {
				emu.Unlock()
				return fmt.Errorf("stripe %d: %w: confirm: %w", idx, ErrExhausted, err)
			}
			sc.attempts++
			attempt := sc.attempts
			r := sc.route
			emu.Unlock()
			if serr := backoff.Sleep(ctx, pol.Backoff.Delay(attempt-1, sc.rng)); serr != nil {
				return serr
			}
			c2, derr := dialStripe(r)
			if derr != nil {
				err = derr
				if Permanent(derr) {
					return derr
				}
				if cfg.planner != nil {
					hop := ""
					var de *core.DialError
					if errors.As(derr, &de) {
						hop = de.Hop
					}
					cfg.planner.ObserveFailure(r, hop)
				}
				replanStripe(idx)
				continue
			}
			if rerr := snd.ReplayStripe(idx, c2); rerr != nil {
				c2.Close()
				err = rerr
				if cfg.planner != nil {
					cfg.planner.ObserveFailure(r, "")
				}
				continue
			}
			if derr := replayDrain(c2); derr != nil {
				c2.Close()
				err = derr
				continue
			}
			emu.Lock()
			if sc.conn != nil {
				sc.conn.Close()
			}
			sc.conn = c2
			sc.ackDone = nil
			emu.Unlock()
			smet.StripeHeals.Inc()
			emu.Lock()
			res.Heals++
			emu.Unlock()
			logf("resilience: group %s stripe %d confirmed via replay", group, idx)
			return nil
		}
	}
	// With the receiver's flushed-everything ack already in hand there is
	// nothing left to confirm: every byte is delivered and attributed, so
	// skip the per-stripe unwind (and with it any wait on a slow path's
	// buffered backlog — the whole point of the tail work).
	if snd.Confirmed() {
		logf("resilience: group %s confirmed by receiver ack", group)
	} else {
		confErrs := make(chan error, n)
		var confWG sync.WaitGroup
		for i := 0; i < n; i++ {
			confWG.Add(1)
			go func(idx int) {
				defer confWG.Done()
				if err := confirmStripe(idx); err != nil {
					confErrs <- fmt.Errorf("resilience: group %s: %w", group, err)
				}
			}(i)
		}
		confWG.Wait()
		close(confErrs)
		if err := <-confErrs; err != nil {
			closeAll()
			finish()
			return res, err
		}
	}

	if cfg.planner != nil {
		sb := snd.StripeBytes()
		if snd.Confirmed() {
			sb = snd.AcceptedBytes()
		}
		dur := time.Since(start).Seconds()
		emu.Lock()
		for i, sc := range ctls {
			if sb[i] > 0 {
				cfg.planner.ObserveSuccess(sc.route, sb[i], dur, sc.dialSeconds)
			}
		}
		emu.Unlock()
	}
	closeAll()
	finish()
	if res.Tail > 0 {
		smet.Tail.Observe(float64(res.Tail.Nanoseconds()))
	}
	return res, nil
}

package resilience_test

import (
	"bytes"
	"context"
	"testing"

	"lsl/internal/core"
	"lsl/internal/depot"
	"lsl/internal/faultnet"
	"lsl/internal/logistics"
	"lsl/internal/metrics"
	"lsl/internal/resilience"
	"lsl/internal/route"
)

// The logistics acceptance case: two real depots front the same target,
// the overlay graph predicts depA's path faster, and the fault harness
// resets depA's path mid-stream. The engine must open on the predicted
// route, feed the failure back into the forecasts, replan onto depB's
// path, and deliver byte-exact — with the degraded edge's loss forecast
// visibly poisoned afterwards.
func TestTransferReplansOntoPredictedAlternate(t *testing.T) {
	vt := newVerifyingTarget(t)
	depAAddr, _ := startDepot(t, depot.Config{DrainTimeout: 0})
	depBAddr, _ := startDepot(t, depot.Config{})
	payload := randBytes(4<<20, 11)

	// Planning graph over the live addresses: depA's path has 5ms legs at
	// 100 Mbps, depB's 40ms legs at 50 Mbps. No direct edge — a "direct"
	// TCP candidate still exists but rides the same physical edges.
	g := route.NewGraph()
	g.AddNode(route.Node{ID: "client"})
	g.AddNode(route.Node{ID: "depA", Depot: true, Addr: depAAddr})
	g.AddNode(route.Node{ID: "depB", Depot: true, Addr: depBAddr})
	g.AddNode(route.Node{ID: "server", Addr: vt.addr()})
	fast := route.Metrics{RTTSeconds: 0.005, BandwidthBps: 100e6, LossProb: 2.5e-4}
	slow := route.Metrics{RTTSeconds: 0.040, BandwidthBps: 50e6, LossProb: 2.5e-4}
	g.AddDuplex("client", "depA", fast)
	g.AddDuplex("depA", "server", fast)
	g.AddDuplex("client", "depB", slow)
	g.AddDuplex("depB", "server", slow)

	pl, err := logistics.New(g, "client")
	if err != nil {
		t.Fatal(err)
	}
	lmet := logistics.NewMetrics(metrics.NewRegistry())
	pl.SetMetrics(lmet)

	// Sanity: the fresh forecasts rank depA's cascade first.
	routes, err := pl.PlanRoutes(vt.addr(), int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) == 0 || len(routes[0].Via) != 1 || routes[0].Via[0] != depAAddr {
		t.Fatalf("initial plan %+v, want via depA %s", routes, depAAddr)
	}

	// Degrade the predicted-faster path: the first session through depA is
	// reset mid-stream.
	fn := faultnet.New(nil)
	fn.Script(depAAddr, faultnet.Step{ResetAfterBytes: 150_000})

	res, err := resilience.Transfer(context.Background(),
		core.Route{Target: vt.addr()}, // planner overrides this
		bytes.NewReader(payload), int64(len(payload)),
		resilience.WithPolicy(fastPolicy()),
		resilience.WithDialer(fn.DialContext),
		resilience.WithPlanner(pl),
		resilience.WithLogf(t.Logf))
	if err != nil {
		t.Fatalf("planned transfer did not heal: %v", err)
	}
	vt.wait(t, payload)

	if len(res.Route.Via) != 1 || res.Route.Via[0] != depBAddr {
		t.Fatalf("final route via %v, want the alternate depot %s", res.Route.Via, depBAddr)
	}
	if res.Failovers < 1 {
		t.Fatalf("failovers=%d, want >= 1", res.Failovers)
	}
	if got := lmet.Replans.Value(); got < 1 {
		t.Fatalf("lsl_logistics_replans_total=%d, want >= 1", got)
	}
	if got := lmet.Observations.Value(); got == 0 {
		t.Fatal("no observations fed back")
	}
	// The reset poisoned the degraded path's edges.
	if _, lossFc, ok := pl.EdgeState("client", "depA"); !ok || lossFc < 0.4 {
		t.Fatalf("client->depA loss forecast %v (ok=%v), want >= 0.4", lossFc, ok)
	}
	// The surviving path stayed clean and absorbed the success feedback.
	if m, _, _ := pl.EdgeState("client", "depB"); m.LossProb >= 0.4 {
		t.Fatalf("surviving edge poisoned: %v", m.LossProb)
	}
}

// With a planner that cannot plan (unknown target), the engine falls
// back to the caller's route and the transfer still completes.
func TestTransferPlannerFallsBackOnUnknownTarget(t *testing.T) {
	vt := newVerifyingTarget(t)
	dep, _ := startDepot(t, depot.Config{})
	payload := randBytes(200_000, 12)

	g := route.NewGraph()
	g.AddNode(route.Node{ID: "client"})
	g.AddNode(route.Node{ID: "elsewhere", Addr: "elsewhere:1"})
	g.AddEdge("client", "elsewhere", route.Metrics{RTTSeconds: 0.01, BandwidthBps: 1e8, LossProb: 1e-4})
	pl, err := logistics.New(g, "client")
	if err != nil {
		t.Fatal(err)
	}
	pl.SetMetrics(logistics.NewMetrics(metrics.NewRegistry()))

	res, err := resilience.Transfer(context.Background(),
		core.Route{Via: []string{dep}, Target: vt.addr()},
		bytes.NewReader(payload), int64(len(payload)),
		resilience.WithPolicy(fastPolicy()),
		resilience.WithPlanner(pl),
		resilience.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	vt.wait(t, payload)
	if len(res.Route.Via) != 1 || res.Route.Via[0] != dep {
		t.Fatalf("fallback route %v, want caller's via %s", res.Route.Via, dep)
	}
}

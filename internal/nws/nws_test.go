package nws

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func feed(f Forecaster, vs ...float64) {
	for _, v := range vs {
		f.Update(v)
	}
}

func TestLastValue(t *testing.T) {
	f := &lastValue{}
	if !math.IsNaN(f.Forecast()) {
		t.Fatal("empty should be NaN")
	}
	feed(f, 1, 2, 3)
	if f.Forecast() != 3 {
		t.Fatalf("got %v", f.Forecast())
	}
}

func TestRunningMean(t *testing.T) {
	f := &runningMean{}
	feed(f, 2, 4, 6)
	if f.Forecast() != 4 {
		t.Fatalf("got %v", f.Forecast())
	}
}

func TestSlidingMeanWindow(t *testing.T) {
	f := NewSlidingMean(3)
	feed(f, 100, 1, 2, 3) // 100 falls out of the window
	if got := f.Forecast(); got != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestSlidingMedianOddEven(t *testing.T) {
	f := NewSlidingMedian(5)
	feed(f, 1, 9, 5)
	if got := f.Forecast(); got != 5 {
		t.Fatalf("odd: %v", got)
	}
	f2 := NewSlidingMedian(4)
	feed(f2, 1, 2, 3, 10)
	if got := f2.Forecast(); got != 2.5 {
		t.Fatalf("even: %v", got)
	}
}

func TestSlidingMedianRobustToSpike(t *testing.T) {
	f := NewSlidingMedian(5)
	feed(f, 10, 10, 1000, 10, 10)
	if got := f.Forecast(); got != 10 {
		t.Fatalf("median should shrug off the spike: %v", got)
	}
}

func TestExpSmooth(t *testing.T) {
	f := NewExpSmooth(0.5)
	feed(f, 10)
	if f.Forecast() != 10 {
		t.Fatal("first value seeds the smoother")
	}
	feed(f, 20)
	if f.Forecast() != 15 {
		t.Fatalf("got %v", f.Forecast())
	}
}

func TestForecasterNames(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range DefaultBank() {
		n := f.Name()
		if n == "" || seen[n] {
			t.Fatalf("bad or duplicate name %q", n)
		}
		seen[n] = true
	}
}

func TestSelectorEmpty(t *testing.T) {
	s := NewSelector()
	if !math.IsNaN(s.Forecast()) {
		t.Fatal("empty selector should be NaN")
	}
}

func TestSelectorPicksLastForTrend(t *testing.T) {
	// On a steadily rising series the last-value predictor has the lowest
	// squared error among the bank.
	s := NewSelector()
	for i := 0; i < 200; i++ {
		s.Update(float64(i))
	}
	if s.BestName() != "last" {
		t.Fatalf("best=%s", s.BestName())
	}
	if got := s.Forecast(); got != 199 {
		t.Fatalf("forecast=%v", got)
	}
}

func TestSelectorPicksAveragerForNoise(t *testing.T) {
	// On i.i.d. noise around a constant, averaging beats last-value.
	s := NewSelector()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		s.Update(50 + rng.NormFloat64()*5)
	}
	errs := s.Errors()
	if errs[s.BestName()] > errs["last"] {
		t.Fatalf("selected %s with error above last-value", s.BestName())
	}
	if got := s.Forecast(); math.Abs(got-50) > 3 {
		t.Fatalf("forecast=%v want ~50", got)
	}
}

// The NWS selection invariant: the selected predictor's cumulative error
// is minimal over the bank.
func TestSelectorMinimalErrorProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		s := NewSelector()
		for _, v := range raw {
			s.Update(float64(v % 1000))
		}
		errs := s.Errors()
		best := errs[s.BestName()]
		for _, e := range errs {
			if best > e+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectorMSE(t *testing.T) {
	s := NewSelector()
	if !math.IsNaN(s.MSE()) {
		t.Fatal("empty MSE should be NaN")
	}
	for i := 0; i < 10; i++ {
		s.Update(5)
	}
	if got := s.MSE(); got > 2.6 { // first prediction error only
		t.Fatalf("constant series MSE=%v", got)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("bw:ucsb-denver")
	if s.Len() != 0 || !math.IsNaN(s.Last()) {
		t.Fatal("fresh series state")
	}
	s.Observe(10)
	s.Observe(12)
	if s.Len() != 2 || s.Last() != 12 {
		t.Fatalf("len=%d last=%v", s.Len(), s.Last())
	}
	if math.IsNaN(s.Forecast()) {
		t.Fatal("forecast should exist")
	}
}

func TestSelectorConcurrentSafe(t *testing.T) {
	s := NewSelector()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			s.Update(float64(i))
		}
		close(done)
	}()
	for i := 0; i < 1000; i++ {
		s.Forecast()
		s.BestName()
	}
	<-done
}

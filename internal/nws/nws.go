// Package nws implements Network Weather Service-style performance
// forecasting (Wolski, the paper's citation [32]): a bank of simple
// time-series predictors runs over each measurement stream, the bank
// tracks every predictor's cumulative error, and each forecast comes from
// whichever predictor has been most accurate so far — the NWS "dynamic
// predictor selection" idea.
//
// LSL clients and depots "are assumed to have network performance
// information available from a system such as the Network Weather
// Service, in order to make decisions about paths" (paper §III); package
// route consumes these forecasts.
package nws

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Forecaster consumes a measurement stream and predicts the next value.
type Forecaster interface {
	// Name identifies the method.
	Name() string
	// Update feeds one observation.
	Update(v float64)
	// Forecast predicts the next observation (NaN before any data).
	Forecast() float64
}

// ---- individual predictors ----

// lastValue predicts the most recent observation.
type lastValue struct{ v, n float64 }

func (f *lastValue) Name() string     { return "last" }
func (f *lastValue) Update(v float64) { f.v, f.n = v, f.n+1 }
func (f *lastValue) Forecast() float64 {
	if f.n == 0 {
		return math.NaN()
	}
	return f.v
}

// runningMean predicts the mean of the whole history.
type runningMean struct {
	sum float64
	n   int
}

func (f *runningMean) Name() string     { return "running-mean" }
func (f *runningMean) Update(v float64) { f.sum += v; f.n++ }
func (f *runningMean) Forecast() float64 {
	if f.n == 0 {
		return math.NaN()
	}
	return f.sum / float64(f.n)
}

// slidingWindow keeps the last w observations.
type slidingWindow struct {
	w    int
	buf  []float64
	next int
}

func newWindow(w int) *slidingWindow { return &slidingWindow{w: w, buf: make([]float64, 0, w)} }

func (f *slidingWindow) Update(v float64) {
	if len(f.buf) < f.w {
		f.buf = append(f.buf, v)
		return
	}
	f.buf[f.next] = v
	f.next = (f.next + 1) % f.w
}

func (f *slidingWindow) values() []float64 { return f.buf }

// slidingMean predicts the mean of the last w observations.
type slidingMean struct{ *slidingWindow }

// NewSlidingMean returns a mean-over-window predictor.
func NewSlidingMean(w int) Forecaster { return &slidingMean{newWindow(w)} }

func (f *slidingMean) Name() string { return fmt.Sprintf("mean-%d", f.w) }
func (f *slidingMean) Forecast() float64 {
	vs := f.values()
	if len(vs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// slidingMedian predicts the median of the last w observations — NWS's
// robust choice for loss-spiky series.
type slidingMedian struct{ *slidingWindow }

// NewSlidingMedian returns a median-over-window predictor.
func NewSlidingMedian(w int) Forecaster { return &slidingMedian{newWindow(w)} }

func (f *slidingMedian) Name() string { return fmt.Sprintf("median-%d", f.w) }
func (f *slidingMedian) Forecast() float64 {
	vs := f.values()
	if len(vs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(vs))
	copy(s, vs)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// expSmooth is exponential smoothing with gain alpha.
type expSmooth struct {
	alpha float64
	v     float64
	n     int
}

// NewExpSmooth returns an exponential-smoothing predictor.
func NewExpSmooth(alpha float64) Forecaster { return &expSmooth{alpha: alpha} }

func (f *expSmooth) Name() string { return fmt.Sprintf("exp-%.2f", f.alpha) }
func (f *expSmooth) Update(v float64) {
	if f.n == 0 {
		f.v = v
	} else {
		f.v = f.alpha*v + (1-f.alpha)*f.v
	}
	f.n++
}
func (f *expSmooth) Forecast() float64 {
	if f.n == 0 {
		return math.NaN()
	}
	return f.v
}

// ---- dynamic predictor selection ----

// Selector runs a bank of forecasters and answers with the one whose
// cumulative squared error over the stream so far is lowest.
type Selector struct {
	mu    sync.Mutex
	bank  []Forecaster
	sse   []float64
	count int
}

// DefaultBank mirrors the NWS predictor families: last value, running
// mean, sliding means/medians at several windows, exponential smoothing at
// several gains.
func DefaultBank() []Forecaster {
	return []Forecaster{
		&lastValue{},
		&runningMean{},
		NewSlidingMean(5),
		NewSlidingMean(10),
		NewSlidingMean(30),
		NewSlidingMedian(5),
		NewSlidingMedian(10),
		NewSlidingMedian(30),
		NewExpSmooth(0.1),
		NewExpSmooth(0.3),
		NewExpSmooth(0.5),
		NewExpSmooth(0.9),
	}
}

// NewSelector builds a selector over bank (DefaultBank if empty).
func NewSelector(bank ...Forecaster) *Selector {
	if len(bank) == 0 {
		bank = DefaultBank()
	}
	return &Selector{bank: bank, sse: make([]float64, len(bank))}
}

// Update scores every predictor against the new observation, then feeds it.
func (s *Selector) Update(v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, f := range s.bank {
		p := f.Forecast()
		if !math.IsNaN(p) {
			d := p - v
			s.sse[i] += d * d
		}
		f.Update(v)
	}
	s.count++
}

// best returns the index of the lowest-error predictor.
func (s *Selector) best() int {
	bi := 0
	for i := range s.sse {
		if s.sse[i] < s.sse[bi] {
			bi = i
		}
	}
	return bi
}

// Forecast returns the current best predictor's forecast (NaN before any
// observation).
func (s *Selector) Forecast() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return math.NaN()
	}
	return s.bank[s.best()].Forecast()
}

// BestName reports which predictor is currently winning.
func (s *Selector) BestName() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bank[s.best()].Name()
}

// MSE returns the winning predictor's mean squared error so far.
func (s *Selector) MSE() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return math.NaN()
	}
	return s.sse[s.best()] / float64(s.count)
}

// Errors exposes every predictor's cumulative squared error (for tests and
// diagnostics), keyed by name.
func (s *Selector) Errors() map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]float64, len(s.bank))
	for i, f := range s.bank {
		out[f.Name()] = s.sse[i]
	}
	return out
}

// Series is a named measurement stream with its selector — e.g. the
// forecast bandwidth of one candidate sublink.
type Series struct {
	Name     string
	Selector *Selector
	last     float64
	n        int
}

// NewSeries builds a named stream with the default bank.
func NewSeries(name string) *Series {
	return &Series{Name: name, Selector: NewSelector()}
}

// Observe records a measurement.
func (s *Series) Observe(v float64) {
	s.Selector.Update(v)
	s.last = v
	s.n++
}

// Forecast predicts the next measurement.
func (s *Series) Forecast() float64 { return s.Selector.Forecast() }

// Len reports the number of observations.
func (s *Series) Len() int { return s.n }

// Last returns the most recent observation.
func (s *Series) Last() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.last
}

package gossip_test

import (
	"bytes"
	"context"
	"crypto/md5"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"lsl/internal/backoff"
	"lsl/internal/core"
	"lsl/internal/depot"
	"lsl/internal/faultnet"
	"lsl/internal/gossip"
	"lsl/internal/logistics"
	"lsl/internal/metrics"
	"lsl/internal/resilience"
	"lsl/internal/route"
)

// pairGraph is a minimal two-depot overlay both ends of a unit-test
// exchange share.
func pairGraph() *route.Graph {
	g := route.NewGraph()
	g.AddNode(route.Node{ID: "depA", Depot: true, Addr: "depa:1"})
	g.AddNode(route.Node{ID: "depB", Depot: true, Addr: "depb:1"})
	g.AddNode(route.Node{ID: "server", Addr: "server:1"})
	m := route.Metrics{RTTSeconds: 0.01, BandwidthBps: 1e8, LossProb: 1e-4}
	g.AddDuplex("depA", "depB", m)
	g.AddDuplex("depA", "server", m)
	g.AddDuplex("depB", "server", m)
	return g
}

func newPlanner(t *testing.T, self route.NodeID) *logistics.Planner {
	t.Helper()
	p, err := logistics.New(pairGraph(), self)
	if err != nil {
		t.Fatal(err)
	}
	p.SetMetrics(logistics.NewMetrics(metrics.NewRegistry()))
	return p
}

// serveGossip runs a bare accept loop that hands every connection to g,
// standing in for the depot's LSLG dispatch.
func serveGossip(t *testing.T, g *gossip.Gossiper) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go g.ServeConn(c)
		}
	}()
	return ln.Addr().String()
}

func TestNewValidates(t *testing.T) {
	pl := newPlanner(t, "depA")
	if _, err := gossip.New(gossip.Config{Peers: []string{"x:1"}}); err == nil {
		t.Error("nil planner accepted")
	}
	if _, err := gossip.New(gossip.Config{Planner: pl}); err == nil {
		t.Error("empty peer set accepted")
	}
	if _, err := gossip.New(gossip.Config{Planner: pl, Peers: []string{"", ""}}); err == nil {
		t.Error("all-blank peer set accepted")
	}
	g, err := gossip.New(gossip.Config{Planner: pl, Peers: []string{"x:1", "x:1", "y:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if st := g.Status(); len(st.Peers) != 2 {
		t.Fatalf("duplicate peers kept: %+v", st.Peers)
	}
}

// One push-pull round moves knowledge both ways: the dialer learns the
// acceptor's observations from the delta, and the acceptor learns the
// dialer's from the reverse delta.
func TestExchangeMovesObservationsBothWays(t *testing.T) {
	plA, plB := newPlanner(t, "depA"), newPlanner(t, "depB")
	plA.ObserveLoss("depA", "server", logistics.DeadEdgeLoss)
	plB.ObserveBandwidth("depB", "server", 80e6)

	metA, metB := gossip.NewMetrics(metrics.NewRegistry()), gossip.NewMetrics(metrics.NewRegistry())
	gA, err := gossip.New(gossip.Config{Planner: plA, Peers: []string{"unused:1"}, Metrics: metA, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	addrA := serveGossip(t, gA)
	gB, err := gossip.New(gossip.Config{Planner: plB, Peers: []string{addrA}, Metrics: metB, Seed: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}

	if n := gB.RunRound(context.Background()); n != 1 {
		t.Fatalf("dialer merged %d, want 1", n)
	}
	// Dialer side: depA's poisoned loss arrived. The remote word lands in
	// the blended planning metrics (not the local NWS series, which stays
	// untouched by gossip).
	if m, _, ok := plB.EdgeState("depA", "server"); !ok || m.LossProb < 0.4 {
		t.Fatalf("depA->server planning loss at depB = %v (ok=%v), want >= 0.4", m.LossProb, ok)
	}
	// Acceptor side: depB's bandwidth observation arrived via the
	// reverse delta (ServeConn merges asynchronously from RunRound's
	// perspective — it finishes when the conn closes, so poll briefly).
	deadline := time.Now().Add(2 * time.Second)
	for plA.RemoteObsCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := plA.RemoteObsCount(); n != 1 {
		t.Fatalf("acceptor holds %d remote observations, want 1", n)
	}
	if metB.Rounds.Value() != 1 || metB.ObservationsMerged.Value() != 1 {
		t.Fatalf("dialer metrics rounds=%d merged=%d, want 1/1",
			metB.Rounds.Value(), metB.ObservationsMerged.Value())
	}
	if metA.ObservationsMerged.Value() != 1 {
		t.Fatalf("acceptor merged counter %d, want 1", metA.ObservationsMerged.Value())
	}
	if metB.PeersUnreachable.Value() != 0 {
		t.Fatalf("unreachable=%d on a clean exchange", metB.PeersUnreachable.Value())
	}

	// A second identical round is a no-op: anti-entropy has converged.
	if n := gB.RunRound(context.Background()); n != 0 {
		t.Fatalf("converged round merged %d, want 0", n)
	}
	st := gB.Status()
	if len(st.Peers) != 1 || st.Peers[0].Merged != 1 || st.Peers[0].Attempts != 2 || st.Peers[0].Fails != 0 {
		t.Fatalf("status %+v", st.Peers)
	}
	if st.RemoteObs != 1 {
		t.Fatalf("status remote_observations=%d, want 1", st.RemoteObs)
	}
}

// A dead peer costs one dial per backoff window, not one per round, and
// never an error: failures are absorbed into peer state.
func TestRoundBacksOffUnreachablePeer(t *testing.T) {
	// A listener that is already closed: connection refused, quickly.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	met := gossip.NewMetrics(metrics.NewRegistry())
	g, err := gossip.New(gossip.Config{
		Planner: newPlanner(t, "depA"),
		Peers:   []string{dead},
		Backoff: backoff.Policy{Base: time.Minute, Max: time.Minute},
		Metrics: met,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := g.RunRound(context.Background()); n != 0 {
		t.Fatalf("merged %d from a dead peer", n)
	}
	if met.PeersUnreachable.Value() != 1 {
		t.Fatalf("unreachable=%d, want 1", met.PeersUnreachable.Value())
	}
	// Immediately after, the peer is inside its backoff window: the next
	// round must skip it without dialing.
	if g.RunRound(context.Background()); met.PeersUnreachable.Value() != 1 {
		t.Fatalf("backoff window not honored: unreachable=%d", met.PeersUnreachable.Value())
	}
	st := g.Status()
	if st.Peers[0].Fails != 1 || st.Peers[0].LastError == "" || st.Peers[0].Attempts != 1 {
		t.Fatalf("peer status %+v", st.Peers[0])
	}
}

// Garbage on the accept side must neither panic nor wedge the handler.
func TestServeConnToleratesGarbage(t *testing.T) {
	g, err := gossip.New(gossip.Config{
		Planner:         newPlanner(t, "depA"),
		Peers:           []string{"unused:1"},
		ExchangeTimeout: 500 * time.Millisecond,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, payload := range [][]byte{
		nil,
		[]byte("GET / HTTP/1.1\r\n\r\n"),
		[]byte("LSLG\x01\x01\xff\xff\xff\xff\xff\xff"),
		bytes.Repeat([]byte{0xaa}, 4096),
	} {
		client, srv := net.Pipe()
		done := make(chan struct{})
		go func() { g.ServeConn(srv); close(done) }()
		if len(payload) > 0 {
			client.SetWriteDeadline(time.Now().Add(time.Second))
			client.Write(payload)
		}
		client.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("ServeConn wedged on %d-byte garbage", len(payload))
		}
	}
}

// Gossip exchanges ride mux trunks: with two mux depots, the dialer
// side uses the depot's trunk dialer, the exchange arrives as a mux
// stream, and the LSLG probe in the accept path still dispatches it to
// the gossip handler — while classic sessions keep relaying.
func TestGossipRidesMuxTrunks(t *testing.T) {
	plA, plB := newPlanner(t, "depA"), newPlanner(t, "depB")
	plA.ObserveLoss("depA", "server", logistics.DeadEdgeLoss)

	var gA, gB *gossip.Gossiper
	serve := func(g **gossip.Gossiper) func(net.Conn) {
		return func(c net.Conn) {
			if *g != nil {
				(*g).ServeConn(c)
			} else {
				c.Close()
			}
		}
	}
	addrA, _ := startDepot(t, depot.Config{Mux: true, OnGossip: serve(&gA)})
	_, depB := startDepot(t, depot.Config{Mux: true, OnGossip: serve(&gB)})

	var err error
	gA, err = gossip.New(gossip.Config{Planner: plA, Peers: []string{"unused:1"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gB, err = gossip.New(gossip.Config{
		Planner: plB, Peers: []string{addrA},
		Dial: depB.Dialer(), // a stream on a warm trunk, not a fresh conn
		Seed: 2, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := gB.RunRound(context.Background()); n != 1 {
		t.Fatalf("merged %d over mux trunk, want 1", n)
	}
	if m, _, ok := plB.EdgeState("depA", "server"); !ok || m.LossProb < 0.4 {
		t.Fatalf("poison did not arrive over the trunk: loss=%v ok=%v", m.LossProb, ok)
	}
	// A second round reuses the warm trunk and stays converged.
	if n := gB.RunRound(context.Background()); n != 0 {
		t.Fatalf("second trunk round merged %d, want 0", n)
	}
}

// Run gossips until canceled and stops promptly.
func TestRunStopsOnCancel(t *testing.T) {
	g, err := gossip.New(gossip.Config{
		Planner:  newPlanner(t, "depA"),
		Peers:    []string{"127.0.0.1:1"},
		Interval: 10 * time.Millisecond,
		Backoff:  backoff.Policy{Base: time.Hour, Max: time.Hour},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { g.Run(ctx); close(done) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}

// ---- the acceptance case ----

func fastPolicy() resilience.Policy {
	return resilience.Policy{
		MaxAttempts:   4,
		Backoff:       backoff.Policy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
		FailoverAfter: 2,
		JitterSeed:    1,
	}
}

func randBytes(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// verifyingTarget reassembles a session's payload across sublinks and
// reports the full stream once a sublink completes with the digest
// verified (same shape as the resilience acceptance harness).
type verifyingTarget struct {
	l    *core.Listener
	mu   sync.Mutex
	data bytes.Buffer
	done chan []byte
}

func newVerifyingTarget(t *testing.T) *verifyingTarget {
	t.Helper()
	l, err := core.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	vt := &verifyingTarget{l: l, done: make(chan []byte, 1)}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			sc, err := l.Accept()
			if err != nil {
				return
			}
			frag, rerr := io.ReadAll(sc)
			vt.mu.Lock()
			vt.data.Write(frag)
			if rerr == nil && sc.Verified() {
				full := append([]byte(nil), vt.data.Bytes()...)
				select {
				case vt.done <- full:
				default:
				}
			}
			vt.mu.Unlock()
			sc.Close()
		}
	}()
	return vt
}

func (vt *verifyingTarget) addr() string { return vt.l.Addr().String() }

func (vt *verifyingTarget) wait(t *testing.T, want []byte) {
	t.Helper()
	select {
	case got := <-vt.done:
		if !bytes.Equal(got, want) {
			t.Fatalf("reassembled stream differs: got %d bytes, want %d", len(got), len(want))
		}
		if md5.Sum(got) != md5.Sum(want) {
			t.Fatal("end-to-end MD5 mismatch")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("timeout waiting for verified delivery")
	}
}

func startDepot(t *testing.T, cfg depot.Config) (string, *depot.Depot) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d := depot.New(cfg)
	go d.Serve(ln)
	t.Cleanup(func() { d.Close() })
	return ln.Addr().String(), d
}

// clientGraph builds the overlay a client colocated with depot `ownID`
// plans over: its own depot and depA both reach the server, depA's
// path predicted faster — so every fresh planner ranks routes through
// edge E (depA -> server) first.
func clientGraph(self, ownID, ownAddr, depAAddr, serverAddr string) *route.Graph {
	g := route.NewGraph()
	g.AddNode(route.Node{ID: route.NodeID(self)})
	g.AddNode(route.Node{ID: "depA", Depot: true, Addr: depAAddr})
	g.AddNode(route.Node{ID: route.NodeID(ownID), Depot: true, Addr: ownAddr})
	g.AddNode(route.Node{ID: "server", Addr: serverAddr})
	fast := route.Metrics{RTTSeconds: 0.005, BandwidthBps: 100e6, LossProb: 2.5e-4}
	mid := route.Metrics{RTTSeconds: 0.030, BandwidthBps: 50e6, LossProb: 2.5e-4}
	g.AddDuplex(route.NodeID(self), "depA", fast)
	g.AddDuplex("depA", "server", fast) // edge E
	g.AddDuplex(route.NodeID(self), route.NodeID(ownID), mid)
	g.AddDuplex(route.NodeID(ownID), "server", mid)
	return g
}

// TestGossipConvergenceAcceptance is the end-to-end acceptance case:
// three depots, only depot A relays over edge E (depA -> server), and a
// fault harness kills E under depot A alone. Depots B and C never see
// the failure first-hand — within three gossip rounds they must learn
// it, stop ranking routes through E first, and a client of depot B must
// then deliver byte-exact over the alternate path with zero replans.
func TestGossipConvergenceAcceptance(t *testing.T) {
	vt := newVerifyingTarget(t)
	serverAddr := vt.addr()

	// Depot A: its dialer refuses the server, so its first relayed
	// session fails the next-hop dial and the depot hook poisons edge E
	// in A's own planner — first-hand knowledge, at exactly one depot.
	gA := route.NewGraph()
	gA.AddNode(route.Node{ID: "depA", Depot: true})
	gA.AddNode(route.Node{ID: "server", Addr: serverAddr})
	gA.AddEdge("depA", "server", route.Metrics{RTTSeconds: 0.005, BandwidthBps: 100e6, LossProb: 2.5e-4})
	plA, err := logistics.New(gA, "depA")
	if err != nil {
		t.Fatal(err)
	}
	plA.SetMetrics(logistics.NewMetrics(metrics.NewRegistry()))

	fn := faultnet.New(nil)
	fn.Script(serverAddr, faultnet.Step{RefuseDial: true}, faultnet.Step{RefuseDial: true})

	var gossiperA, gossiperB, gossiperC *gossip.Gossiper
	onGossip := func(g **gossip.Gossiper) func(net.Conn) {
		return func(c net.Conn) {
			if *g != nil {
				(*g).ServeConn(c)
			} else {
				c.Close()
			}
		}
	}
	depAAddr, _ := startDepot(t, depot.Config{
		Dial:         fn.DialContext,
		OnSessionEnd: plA.DepotHook(),
		OnGossip:     onGossip(&gossiperA),
	})
	depBAddr, depB := startDepot(t, depot.Config{OnGossip: onGossip(&gossiperB)})
	depCAddr, _ := startDepot(t, depot.Config{OnGossip: onGossip(&gossiperC)})

	// Depots B and C plan for their local clients; both rank edge E
	// first while it is healthy.
	plB, err := logistics.New(clientGraph("clientB", "depB", depBAddr, depAAddr, serverAddr), "clientB")
	if err != nil {
		t.Fatal(err)
	}
	lmetB := logistics.NewMetrics(metrics.NewRegistry())
	plB.SetMetrics(lmetB)
	plC, err := logistics.New(clientGraph("clientC", "depC", depCAddr, depAAddr, serverAddr), "clientC")
	if err != nil {
		t.Fatal(err)
	}
	plC.SetMetrics(logistics.NewMetrics(metrics.NewRegistry()))

	for name, pl := range map[string]*logistics.Planner{"B": plB, "C": plC} {
		routes, err := pl.PlanRoutes(serverAddr, 4<<20)
		if err != nil {
			t.Fatal(err)
		}
		if len(routes) == 0 || len(routes[0].Via) != 1 || routes[0].Via[0] != depAAddr {
			t.Fatalf("depot %s: fresh plan %+v, want via depA %s", name, routes, depAAddr)
		}
	}

	// Gossip overlay is a chain A <- B <- C: C never talks to A, so its
	// knowledge of E must arrive transitively through B. Exchanges ride
	// the depot listeners themselves (LSLG dispatch), and depot B's
	// gossiper dials through the depot's own trunk dialer.
	metB, metC := gossip.NewMetrics(depB.Metrics()), gossip.NewMetrics(metrics.NewRegistry())
	gossiperA, err = gossip.New(gossip.Config{Planner: plA, Peers: []string{depBAddr}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gossiperB, err = gossip.New(gossip.Config{
		Planner: plB, Peers: []string{depAAddr},
		Dial:    depB.Dialer(),
		Metrics: metB, Seed: 2, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	gossiperC, err = gossip.New(gossip.Config{
		Planner: plC, Peers: []string{depBAddr},
		Metrics: metC, Seed: 3, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Kill edge E under depot A: one client session relayed by A fails
	// its next-hop dial.
	_, err = resilience.Transfer(context.Background(),
		core.Route{Via: []string{depAAddr}, Target: serverAddr},
		bytes.NewReader(randBytes(10_000, 7)), 10_000,
		resilience.WithPolicy(resilience.Policy{
			MaxAttempts: 2,
			Backoff:     backoff.Policy{Base: 5 * time.Millisecond, Max: 10 * time.Millisecond},
			JitterSeed:  1,
		}))
	if err == nil {
		t.Fatal("probe transfer through depA succeeded; edge E was not killed")
	}
	// The depot hook runs on the session goroutine; wait for the poison
	// to land in A's planner.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, lossFc, ok := plA.EdgeState("depA", "server"); ok && lossFc >= 0.4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("depot A's planner never saw the dial failure")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Convergence: within <= 3 rounds both B and C must replan off E.
	ctx := context.Background()
	rounds := 0
	for rounds < 3 {
		rounds++
		gossiperB.RunRound(ctx) // B pulls from A
		gossiperC.RunRound(ctx) // C pulls from B
		if offE(t, plB, serverAddr, depAAddr) && offE(t, plC, serverAddr, depAAddr) {
			break
		}
	}
	if !offE(t, plB, serverAddr, depAAddr) {
		t.Fatalf("depot B still ranks edge E first after %d rounds", rounds)
	}
	if !offE(t, plC, serverAddr, depAAddr) {
		t.Fatalf("depot C still ranks edge E first after %d rounds", rounds)
	}
	t.Logf("converged in %d round(s)", rounds)
	if metB.ObservationsMerged.Value() == 0 {
		t.Fatal("depot B: lsl_gossip_observations_merged_total == 0")
	}
	if metC.ObservationsMerged.Value() == 0 {
		t.Fatal("depot C: lsl_gossip_observations_merged_total == 0")
	}
	// The depot's registry exports the gossip families.
	var prom strings.Builder
	if err := depB.Metrics().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "lsl_gossip_observations_merged_total") {
		t.Fatal("lsl_gossip_observations_merged_total not exported on depot B")
	}

	// A client of depot B now transfers: the plan must route over the
	// alternate path (its own depot), deliver byte-exact, and never
	// replan — the fleet routed around E before this client ever felt it.
	payload := randBytes(2<<20, 21)
	res, err := resilience.Transfer(context.Background(),
		core.Route{Target: serverAddr},
		bytes.NewReader(payload), int64(len(payload)),
		resilience.WithPolicy(fastPolicy()),
		resilience.WithPlanner(plB),
		resilience.WithLogf(t.Logf))
	if err != nil {
		t.Fatalf("post-convergence transfer: %v", err)
	}
	vt.wait(t, payload)
	if len(res.Route.Via) != 1 || res.Route.Via[0] != depBAddr {
		t.Fatalf("final route via %v, want the alternate depot %s", res.Route.Via, depBAddr)
	}
	if res.Attempts != 1 || res.Failovers != 0 {
		t.Fatalf("attempts=%d failovers=%d, want a first-try delivery", res.Attempts, res.Failovers)
	}
	if got := lmetB.Replans.Value(); got != 0 {
		t.Fatalf("lsl_logistics_replans_total=%d, want 0 (the fleet replanned before the client had to)", got)
	}
}

// offE reports whether pl's best route to target no longer crosses edge
// E (i.e. is not via depot A).
func offE(t *testing.T, pl *logistics.Planner, target, depAAddr string) bool {
	t.Helper()
	routes, err := pl.PlanRoutes(target, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) == 0 {
		t.Fatal("no routes planned")
	}
	for _, via := range routes[0].Via {
		if via == depAAddr {
			return false
		}
	}
	return true
}

// Package gossip shares the planner's edge observations between depots
// by anti-entropy exchange, closing the logistics loop fleet-wide: a
// depot only measures the edges its own sessions cross, but with gossip
// it also plans on what every other depot has measured — including
// failure-poisoned loss forecasts, so the whole overlay routes around a
// dead edge within a few rounds of the first depot noticing.
//
// Each round the gossiper picks a few peers (jittered interval, capped
// fanout) and runs a push-pull exchange over one connection framed with
// the LSLG wire format (internal/wire): the dialer sends a DIGEST of its
// shareable observations (keys, timestamps, and hop counts only — no
// values), the acceptor answers with a DELTA of the entries the dialer
// lacks or holds stale plus its own DIGEST, and the dialer closes the
// loop with the reverse DELTA. Merging is last-writer-wins per (edge,
// metric, origin) with a hop ceiling and staleness clamp — the planner's
// MergeRemote — so exchanges are idempotent and peer-order-independent,
// and a partitioned depot converges as soon as any path of gossip hops
// reconnects it.
//
// The gossiper never blocks the data plane: rounds run on their own
// goroutine, per-peer failures are absorbed into capped-exponential
// backoff (internal/backoff) rather than retried hot, and the accept
// side serves each exchange on the connection the depot hands it and
// nothing else.
package gossip

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"lsl/internal/backoff"
	"lsl/internal/logistics"
	"lsl/internal/metrics"
	"lsl/internal/wire"
)

// Defaults used when a Config field is zero.
const (
	DefaultInterval        = 5 * time.Second
	DefaultFanout          = 2
	DefaultDialTimeout     = 3 * time.Second
	DefaultExchangeTimeout = 5 * time.Second
)

// Metrics is the gossiper's counter set (lsl_gossip_*).
type Metrics struct {
	// Rounds is lsl_gossip_rounds_total.
	Rounds *metrics.Counter
	// ObservationsMerged is lsl_gossip_observations_merged_total.
	ObservationsMerged *metrics.Counter
	// PeersUnreachable is lsl_gossip_peers_unreachable_total.
	PeersUnreachable *metrics.Counter
	// RoundNS is lsl_gossip_round_ns.
	RoundNS *metrics.Histogram
}

// NewMetrics registers the lsl_gossip_* families on reg.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		Rounds: reg.Counter("lsl_gossip_rounds_total",
			"Anti-entropy gossip rounds attempted (one per dialed peer)."),
		ObservationsMerged: reg.Counter("lsl_gossip_observations_merged_total",
			"Remote edge observations folded into the local planner."),
		PeersUnreachable: reg.Counter("lsl_gossip_peers_unreachable_total",
			"Gossip exchanges abandoned because the peer could not be reached or the exchange failed."),
		RoundNS: reg.Histogram("lsl_gossip_round_ns",
			"Wall-clock duration of one gossip exchange, dial to merge (ns).",
			[]float64{1e6, 5e6, 10e6, 25e6, 50e6, 100e6, 250e6, 1e9, 5e9}),
	}
}

// Config configures a Gossiper. Planner and Peers are required; every
// other field has a usable zero value.
type Config struct {
	// Planner supplies the observations to share and absorbs the merged
	// remote knowledge.
	Planner *logistics.Planner
	// Peers are the depot gossip addresses to exchange with. The local
	// depot's own address may be present; exchanges that report the
	// planner's own node as Self are dropped harmlessly.
	Peers []string
	// Interval is the mean time between rounds (default 5s); actual
	// spacing is jittered uniformly over [0.5, 1.5) of it so depots
	// started together do not gossip in lockstep.
	Interval time.Duration
	// Fanout caps how many peers one round dials (default 2).
	Fanout int
	// Dial opens a connection to a peer. Defaults to a plain net dialer;
	// the depot passes its trunk-pool dialer so gossip rides warm
	// multiplexed trunks where they exist.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// DialTimeout bounds connection establishment (default 3s);
	// ExchangeTimeout bounds the whole framed exchange after that
	// (default 5s).
	DialTimeout     time.Duration
	ExchangeTimeout time.Duration
	// MaxBatch caps the observations offered or returned per frame
	// (default wire.MaxGossipEntries).
	MaxBatch int
	// Backoff shapes per-peer retry delays after failures (zero value:
	// 100ms doubling to 10s).
	Backoff backoff.Policy
	// Metrics receives the lsl_gossip_* counters when set.
	Metrics *Metrics
	// Logf, when set, receives one line per failed exchange.
	Logf func(format string, args ...interface{})
	// Seed makes peer selection and jitter deterministic in tests
	// (0 = seeded from the wall clock).
	Seed int64
}

// peerState tracks one peer's failure history for backoff.
type peerState struct {
	addr     string
	fails    int       // consecutive failures
	nextTry  time.Time // eligible again at
	lastOK   time.Time
	lastErr  string
	merged   uint64 // observations merged from this peer, lifetime
	attempts uint64
}

// Gossiper runs the anti-entropy rounds for one depot.
type Gossiper struct {
	cfg  Config
	self string

	mu    sync.Mutex
	rng   *rand.Rand
	peers []*peerState
	now   func() time.Time // injectable for tests
}

// New validates cfg and builds a Gossiper. It does not start any
// goroutines; call Run for the periodic loop or RunRound to drive rounds
// explicitly.
func New(cfg Config) (*Gossiper, error) {
	if cfg.Planner == nil {
		return nil, errors.New("gossip: Config.Planner is required")
	}
	if len(cfg.Peers) == 0 {
		return nil, errors.New("gossip: Config.Peers is empty")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = DefaultFanout
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.ExchangeTimeout <= 0 {
		cfg.ExchangeTimeout = DefaultExchangeTimeout
	}
	if cfg.MaxBatch <= 0 || cfg.MaxBatch > wire.MaxGossipEntries {
		cfg.MaxBatch = wire.MaxGossipEntries
	}
	if cfg.Dial == nil {
		var d net.Dialer
		cfg.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	g := &Gossiper{
		cfg:  cfg,
		self: string(cfg.Planner.Self()),
		rng:  rand.New(rand.NewSource(seed)),
		now:  time.Now,
	}
	seen := make(map[string]bool)
	for _, addr := range cfg.Peers {
		if addr == "" || seen[addr] {
			continue
		}
		seen[addr] = true
		g.peers = append(g.peers, &peerState{addr: addr})
	}
	if len(g.peers) == 0 {
		return nil, errors.New("gossip: Config.Peers has no usable addresses")
	}
	return g, nil
}

// Run gossips until ctx is done: one round, then a jittered interval,
// repeated. It never returns a non-ctx error — peer failures are
// absorbed into backoff state.
func (g *Gossiper) Run(ctx context.Context) {
	timer := time.NewTimer(g.jitter())
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		g.RunRound(ctx)
		timer.Reset(g.jitter())
	}
}

func (g *Gossiper) jitter() time.Duration {
	g.mu.Lock()
	f := 0.5 + g.rng.Float64() // [0.5, 1.5)
	g.mu.Unlock()
	return time.Duration(float64(g.cfg.Interval) * f)
}

// RunRound dials up to Fanout eligible peers and exchanges with each,
// sequentially (rounds are cheap; sequencing keeps the connection churn
// bounded). It returns the total number of observations merged, which
// tests use to drive convergence deterministically.
func (g *Gossiper) RunRound(ctx context.Context) int {
	targets := g.pickPeers()
	merged := 0
	for _, ps := range targets {
		if ctx.Err() != nil {
			break
		}
		n, err := g.exchangeWith(ctx, ps)
		merged += n
		g.settle(ps, n, err)
	}
	return merged
}

// pickPeers selects up to Fanout peers whose backoff window has passed,
// in random order.
func (g *Gossiper) pickPeers() []*peerState {
	g.mu.Lock()
	defer g.mu.Unlock()
	now := g.now()
	var eligible []*peerState
	for _, ps := range g.peers {
		if now.Before(ps.nextTry) {
			continue
		}
		eligible = append(eligible, ps)
	}
	g.rng.Shuffle(len(eligible), func(i, j int) {
		eligible[i], eligible[j] = eligible[j], eligible[i]
	})
	if len(eligible) > g.cfg.Fanout {
		eligible = eligible[:g.cfg.Fanout]
	}
	return eligible
}

// settle records one exchange's outcome in the peer's backoff state.
func (g *Gossiper) settle(ps *peerState, merged int, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ps.attempts++
	if m := g.cfg.Metrics; m != nil {
		m.Rounds.Inc()
		if merged > 0 {
			m.ObservationsMerged.Add(uint64(merged))
		}
	}
	now := g.now()
	if err != nil {
		ps.fails++
		ps.lastErr = err.Error()
		ps.nextTry = now.Add(g.cfg.Backoff.Delay(ps.fails, g.rng))
		if m := g.cfg.Metrics; m != nil {
			m.PeersUnreachable.Inc()
		}
		if g.cfg.Logf != nil {
			g.cfg.Logf("gossip: peer %s: %v (failure %d)", ps.addr, err, ps.fails)
		}
		return
	}
	ps.fails = 0
	ps.lastErr = ""
	ps.lastOK = now
	ps.merged += uint64(merged)
}

// exchangeWith runs the dialer side of one push-pull exchange.
func (g *Gossiper) exchangeWith(ctx context.Context, ps *peerState) (merged int, err error) {
	start := time.Now()
	defer func() {
		if m := g.cfg.Metrics; m != nil {
			m.RoundNS.Observe(float64(time.Since(start)))
		}
	}()
	dctx, cancel := context.WithTimeout(ctx, g.cfg.DialTimeout)
	conn, err := g.cfg.Dial(dctx, ps.addr)
	cancel()
	if err != nil {
		return 0, fmt.Errorf("dial: %w", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(g.cfg.ExchangeTimeout))

	mine := g.cfg.Planner.ExportObservations(g.cfg.MaxBatch)

	// 1. Offer our digest.
	if err := writeFrame(conn, &wire.GossipFrame{
		Kind: wire.GossipDigest, Self: g.self, Obs: toWire(mine),
	}); err != nil {
		return 0, fmt.Errorf("send digest: %w", err)
	}
	// 2. Their delta: what we lack.
	delta, err := wire.ReadGossipFrame(conn)
	if err != nil {
		return 0, fmt.Errorf("read delta: %w", err)
	}
	if delta.Kind != wire.GossipDelta {
		return 0, fmt.Errorf("peer sent %s, want delta", wire.GossipKindString(delta.Kind))
	}
	merged = g.cfg.Planner.MergeRemote(fromWire(delta.Obs))
	// 3. Their digest: what they hold.
	theirs, err := wire.ReadGossipFrame(conn)
	if err != nil {
		return merged, fmt.Errorf("read digest: %w", err)
	}
	if theirs.Kind != wire.GossipDigest {
		return merged, fmt.Errorf("peer sent %s, want digest", wire.GossipKindString(theirs.Kind))
	}
	// 4. Close the loop: send what they lack.
	want := selectDelta(mine, fromWire(theirs.Obs), g.cfg.MaxBatch)
	if err := writeFrame(conn, &wire.GossipFrame{
		Kind: wire.GossipDelta, Self: g.self, Obs: toWire(want),
	}); err != nil {
		return merged, fmt.Errorf("send delta: %w", err)
	}
	return merged, nil
}

// ServeConn runs the acceptor side of one exchange on conn (which the
// depot hands over after sniffing the LSLG magic) and closes it. Errors
// are absorbed: a malformed or abandoned exchange must never disturb the
// serving depot.
func (g *Gossiper) ServeConn(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(g.cfg.ExchangeTimeout))

	theirs, err := wire.ReadGossipFrame(conn)
	if err != nil || theirs.Kind != wire.GossipDigest {
		return
	}
	mine := g.cfg.Planner.ExportObservations(g.cfg.MaxBatch)
	// Answer with the entries their digest lacks or holds stale...
	want := selectDelta(mine, fromWire(theirs.Obs), g.cfg.MaxBatch)
	if err := writeFrame(conn, &wire.GossipFrame{
		Kind: wire.GossipDelta, Self: g.self, Obs: toWire(want),
	}); err != nil {
		return
	}
	// ...then our own digest, and merge the reverse delta.
	if err := writeFrame(conn, &wire.GossipFrame{
		Kind: wire.GossipDigest, Self: g.self, Obs: toWire(mine),
	}); err != nil {
		return
	}
	delta, err := wire.ReadGossipFrame(conn)
	if err != nil || delta.Kind != wire.GossipDelta {
		return
	}
	if n := g.cfg.Planner.MergeRemote(fromWire(delta.Obs)); n > 0 {
		if m := g.cfg.Metrics; m != nil {
			m.ObservationsMerged.Add(uint64(n))
		}
	}
}

// obsKey identifies one digest line: an (edge, metric, origin) tuple.
type obsKey struct {
	from, to, origin string
	metric           logistics.ObsMetric
}

// selectDelta picks the entries of mine that the peer's digest shows it
// lacks or holds stale: absent key, older timestamp, or same timestamp
// reachable in fewer hops after the transfer (the receiver stores at
// hops+1). Capped at max, newest first (mine is already sorted so).
func selectDelta(mine, theirDigest []logistics.EdgeObservation, max int) []logistics.EdgeObservation {
	have := make(map[obsKey]logistics.EdgeObservation, len(theirDigest))
	for _, o := range theirDigest {
		have[obsKey{o.From, o.To, o.Origin, o.Metric}] = o
	}
	var out []logistics.EdgeObservation
	for _, o := range mine {
		cur, ok := have[obsKey{o.From, o.To, o.Origin, o.Metric}]
		if ok {
			if cur.Time.After(o.Time) {
				continue
			}
			if cur.Time.Equal(o.Time) && int(cur.Hops) <= int(o.Hops)+1 {
				continue
			}
		}
		out = append(out, o)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// toWire converts planner observations to wire entries.
func toWire(obs []logistics.EdgeObservation) []wire.GossipObs {
	if len(obs) == 0 {
		return nil
	}
	out := make([]wire.GossipObs, 0, len(obs))
	for _, o := range obs {
		out = append(out, wire.GossipObs{
			From: o.From, To: o.To, Origin: o.Origin,
			Metric: uint8(o.Metric), Hops: o.Hops,
			TimeUnixNano: o.Time.UnixNano(),
			Value:        o.Value, Count: o.Count,
		})
	}
	return out
}

// fromWire converts wire entries back to planner observations. Entries
// with a non-positive timestamp decode to the zero time, which
// MergeRemote rejects.
func fromWire(obs []wire.GossipObs) []logistics.EdgeObservation {
	if len(obs) == 0 {
		return nil
	}
	out := make([]logistics.EdgeObservation, 0, len(obs))
	for _, o := range obs {
		var t time.Time
		if o.TimeUnixNano > 0 {
			t = time.Unix(0, o.TimeUnixNano)
		}
		out = append(out, logistics.EdgeObservation{
			From: o.From, To: o.To, Origin: o.Origin,
			Metric: logistics.ObsMetric(o.Metric), Hops: o.Hops,
			Time: t, Value: o.Value, Count: o.Count,
		})
	}
	return out
}

// writeFrame encodes and writes one frame.
func writeFrame(conn net.Conn, f *wire.GossipFrame) error {
	b, err := f.Encode()
	if err != nil {
		return err
	}
	_, err = conn.Write(b)
	return err
}

// PeerStatus is one peer's exchange history, for the /plan endpoint.
type PeerStatus struct {
	Addr       string `json:"addr"`
	Attempts   uint64 `json:"attempts"`
	Merged     uint64 `json:"merged"`
	Fails      int    `json:"consecutive_failures,omitempty"`
	LastError  string `json:"last_error,omitempty"`
	LastOKUnix int64  `json:"last_ok_unix,omitempty"`
}

// Status is the gossiper's diagnostic view, served under "gossip" in the
// depot's /plan JSON.
type Status struct {
	Self      string       `json:"self"`
	Interval  string       `json:"interval"`
	Fanout    int          `json:"fanout"`
	RemoteObs int          `json:"remote_observations"`
	Peers     []PeerStatus `json:"peers"`
}

// Status reports the gossiper's current peer and overlay state.
func (g *Gossiper) Status() Status {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := Status{
		Self:      g.self,
		Interval:  g.cfg.Interval.String(),
		Fanout:    g.cfg.Fanout,
		RemoteObs: g.cfg.Planner.RemoteObsCount(),
	}
	for _, ps := range g.peers {
		st := PeerStatus{
			Addr: ps.addr, Attempts: ps.attempts, Merged: ps.merged,
			Fails: ps.fails, LastError: ps.lastErr,
		}
		if !ps.lastOK.IsZero() {
			st.LastOKUnix = ps.lastOK.Unix()
		}
		s.Peers = append(s.Peers, st)
	}
	sort.Slice(s.Peers, func(i, j int) bool { return s.Peers[i].Addr < s.Peers[j].Addr })
	return s
}

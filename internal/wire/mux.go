// Mux framing: the on-the-wire format of persistent inter-hop trunks.
//
// A trunk is one long-lived TCP connection multiplexing many LSL sessions
// between a fixed pair of processes (initiator → first depot, or depot →
// next hop). It opens with a hello exchange — magic "LSLM", distinct in
// its fourth byte from the classic per-session magics "LSL1"/"LSLA", so an
// accepting peer can dispatch on the first four bytes of any inbound
// stream — and then carries a sequence of frames:
//
//	type(1) stream(4) length(4) payload(length)
//
//	OPEN   stream s exists from now on (opened by the link's dial side)
//	DATA   payload bytes for stream s (consumes send credit)
//	WINDOW 4-byte credit grant: the receiver drained payload, send more
//	CLOSE  half-close: no more DATA from the sender's direction (EOF)
//	RESET  abort stream s in both directions
//
// Flow control is per-stream credit: each side may have at most the
// hello-advertised window of un-acknowledged DATA outstanding per stream,
// so one fat session cannot head-of-line-starve every other session on
// the trunk. DATA payloads are additionally capped at MaxMuxPayload so a
// single frame cannot monopolize the link for long.
//
// Like the open-header decoder, the frame decoder is bounded: it never
// allocates more than MaxMuxPayload for a frame and never panics on
// malformed input.

package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MuxVersion is the trunk protocol version carried in the hello.
const MuxVersion = 1

// MagicMux opens every trunk in both directions.
var MagicMux = [4]byte{'L', 'S', 'L', 'M'}

// IsMuxMagic reports whether b begins a trunk hello (first 4 bytes).
func IsMuxMagic(b []byte) bool {
	return len(b) >= 4 && b[0] == 'L' && b[1] == 'S' && b[2] == 'L' && b[3] == 'M'
}

// Mux frame types.
const (
	MuxOpen uint8 = iota + 1
	MuxData
	MuxWindow
	MuxClose
	MuxReset
)

// Mux framing limits.
const (
	// MaxMuxPayload caps one DATA frame so a fat stream cannot hold the
	// trunk for long (latency bound for everyone else on the link).
	MaxMuxPayload = 64 << 10
	// MaxMuxWindow caps the advertised per-stream receive window.
	MaxMuxWindow = 64 << 20
	// MuxHelloLen is the fixed hello size: magic(4) version(1) window(4)
	// reserved(3).
	MuxHelloLen = 12
	// MuxFrameHeaderLen is the fixed frame header size: type(1) stream(4)
	// length(4).
	MuxFrameHeaderLen = 9
)

// Mux decode errors.
var (
	ErrBadMuxFrame  = errors.New("wire: invalid mux frame")
	ErrBadMuxWindow = errors.New("wire: invalid mux window")
)

// MuxHello is the trunk opening exchange: each side announces the
// per-stream receive window it grants the peer.
type MuxHello struct {
	Window uint32
}

// Encode serializes the hello.
func (h *MuxHello) Encode() []byte {
	out := make([]byte, MuxHelloLen)
	copy(out, MagicMux[:])
	out[4] = MuxVersion
	binary.BigEndian.PutUint32(out[5:9], h.Window)
	return out
}

// ReadMuxHello reads and validates a hello, magic included.
func ReadMuxHello(r io.Reader) (*MuxHello, error) {
	buf := make([]byte, MuxHelloLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrTruncated
		}
		return nil, err
	}
	if !IsMuxMagic(buf) {
		return nil, ErrBadMagic
	}
	if buf[4] != MuxVersion {
		return nil, ErrBadVersion
	}
	h := &MuxHello{Window: binary.BigEndian.Uint32(buf[5:9])}
	if h.Window == 0 || h.Window > MaxMuxWindow {
		return nil, ErrBadMuxWindow
	}
	return h, nil
}

// MuxFrame is one decoded trunk frame.
type MuxFrame struct {
	Type    uint8
	Stream  uint32
	Payload []byte // DATA only; WINDOW credit is in Credit
	Credit  uint32 // WINDOW only
}

// AppendMuxFrame appends an encoded frame header plus payload to dst and
// returns the extended slice. The caller is responsible for honoring
// MaxMuxPayload.
func AppendMuxFrame(dst []byte, typ uint8, stream uint32, payload []byte) []byte {
	var hdr [MuxFrameHeaderLen]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:5], stream)
	binary.BigEndian.PutUint32(hdr[5:9], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// AppendMuxWindow appends an encoded WINDOW frame granting credit bytes.
func AppendMuxWindow(dst []byte, stream uint32, credit uint32) []byte {
	var pay [4]byte
	binary.BigEndian.PutUint32(pay[:], credit)
	return AppendMuxFrame(dst, MuxWindow, stream, pay[:])
}

// ReadMuxFrame reads and decodes one frame. Allocation is bounded by the
// declared payload length, which is validated against MaxMuxPayload before
// any payload allocation, so a malformed length cannot over-allocate.
func ReadMuxFrame(r io.Reader) (*MuxFrame, error) {
	var hdr [MuxFrameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, ErrTruncated
		}
		return nil, err // io.EOF passes through: clean end-of-link
	}
	f := &MuxFrame{
		Type:   hdr[0],
		Stream: binary.BigEndian.Uint32(hdr[1:5]),
	}
	length := binary.BigEndian.Uint32(hdr[5:9])
	switch f.Type {
	case MuxOpen, MuxClose, MuxReset:
		if length != 0 {
			return nil, fmt.Errorf("%w: %s frame with %d-byte payload", ErrBadMuxFrame, MuxTypeString(f.Type), length)
		}
	case MuxWindow:
		if length != 4 {
			return nil, fmt.Errorf("%w: WINDOW frame with %d-byte payload", ErrBadMuxFrame, length)
		}
		var pay [4]byte
		if _, err := io.ReadFull(r, pay[:]); err != nil {
			return nil, ErrTruncated
		}
		f.Credit = binary.BigEndian.Uint32(pay[:])
		if f.Credit == 0 || f.Credit > MaxMuxWindow {
			return nil, ErrBadMuxWindow
		}
	case MuxData:
		if length == 0 || length > MaxMuxPayload {
			return nil, fmt.Errorf("%w: DATA frame length %d", ErrBadMuxFrame, length)
		}
		f.Payload = make([]byte, length)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return nil, ErrTruncated
		}
	default:
		return nil, fmt.Errorf("%w: unknown type %d", ErrBadMuxFrame, f.Type)
	}
	if f.Stream == 0 {
		return nil, fmt.Errorf("%w: stream id 0", ErrBadMuxFrame)
	}
	return f, nil
}

// MuxTypeString names a frame type for diagnostics.
func MuxTypeString(t uint8) string {
	switch t {
	case MuxOpen:
		return "OPEN"
	case MuxData:
		return "DATA"
	case MuxWindow:
		return "WINDOW"
	case MuxClose:
		return "CLOSE"
	case MuxReset:
		return "RESET"
	default:
		return fmt.Sprintf("type-%d", t)
	}
}

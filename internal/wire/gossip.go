// Gossip framing: the on-the-wire format of the depot-to-depot forecast
// exchange (internal/gossip).
//
// A gossip exchange is a short conversation between two depots' logistics
// planners, carried over one transport connection (a fresh TCP connection
// or a stream on an existing mux trunk — the accept side dispatches on the
// magic "LSLG", distinct in its fourth byte from "LSL1"/"LSLA"/"LSLM").
// Two frame kinds implement a classic anti-entropy push-pull:
//
//	DIGEST  the sender's per-(edge, metric, origin) observation summary
//	        *keys* — who measured what edge, how many hops ago, and when —
//	        without values. Small; lets the peer compute exactly the
//	        entries the sender is missing.
//	DELTA   full observations (key + forecast value + sample count) the
//	        sender believes the peer lacks or holds stale.
//
// The dialer opens with its DIGEST; the acceptor answers with a DELTA of
// what the dialer is behind on plus its own DIGEST; the dialer closes the
// exchange with the reverse DELTA. Merging is idempotent (last-writer-wins
// by observation timestamp), so duplicate deliveries are harmless.
//
// Like every other LSL decoder, the gossip decoder is bounded: the body
// length is validated against MaxGossipBody before any allocation, entry
// counts against MaxGossipEntries, and malformed input returns an error —
// never a panic.

package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// GossipVersion is the gossip protocol version carried in every frame.
const GossipVersion = 1

// MagicGossip opens every gossip frame.
var MagicGossip = [4]byte{'L', 'S', 'L', 'G'}

// IsGossipMagic reports whether b begins a gossip frame (first 4 bytes).
func IsGossipMagic(b []byte) bool {
	return len(b) >= 4 && b[0] == 'L' && b[1] == 'S' && b[2] == 'L' && b[3] == 'G'
}

// Gossip frame kinds.
const (
	// GossipDigest carries observation keys only (no values).
	GossipDigest uint8 = 1
	// GossipDelta carries full observations.
	GossipDelta uint8 = 2
)

// Gossip framing limits.
const (
	// MaxGossipEntries bounds the observations in one frame.
	MaxGossipEntries = 2048
	// MaxGossipBody bounds one frame's body (everything after the fixed
	// header), so a malformed length cannot over-allocate.
	MaxGossipBody = 256 << 10
	// MaxGossipMetric is the highest valid metric id (0 = rtt,
	// 1 = bandwidth, 2 = loss).
	MaxGossipMetric = 2
	// gossipFixedLen: magic(4) version(1) kind(1) count(2) bodyLen(4).
	gossipFixedLen = 12
)

// ErrBadGossipFrame reports a structurally invalid gossip frame.
var ErrBadGossipFrame = errors.New("wire: invalid gossip frame")

// GossipObs is one per-(edge, metric) observation summary with
// provenance: which node measured it (Origin), how many depot-to-depot
// transfers it has undergone (Hops), and when the newest underlying
// measurement happened (TimeUnixNano). Value and Count travel only in
// DELTA frames; a DIGEST carries the key and freshness alone.
type GossipObs struct {
	From, To string // directed edge, overlay node names
	Origin   string // node that measured it
	Metric   uint8  // 0 rtt, 1 bandwidth, 2 loss
	Hops     uint8  // gossip transfers since the origin (0 = origin-local)
	// TimeUnixNano is the newest underlying observation's wall-clock time.
	TimeUnixNano int64
	// Value is the forecast summary (DELTA only).
	Value float64
	// Count is the observation count behind the summary (DELTA only).
	Count uint32
}

// GossipFrame is one decoded gossip frame.
type GossipFrame struct {
	Kind uint8
	Self string // sender's overlay node name
	Obs  []GossipObs
}

func validGossipName(s string) bool { return s != "" && len(s) <= MaxAddrLen }

// Encode serializes the frame.
func (f *GossipFrame) Encode() ([]byte, error) {
	if f.Kind != GossipDigest && f.Kind != GossipDelta {
		return nil, fmt.Errorf("%w: kind %d", ErrBadGossipFrame, f.Kind)
	}
	if !validGossipName(f.Self) {
		return nil, fmt.Errorf("%w: bad self %q", ErrBadGossipFrame, f.Self)
	}
	if len(f.Obs) > MaxGossipEntries {
		return nil, fmt.Errorf("%w: %d entries exceeds %d", ErrTooLarge, len(f.Obs), MaxGossipEntries)
	}
	var body bytes.Buffer
	writeStr := func(s string) {
		var u16 [2]byte
		binary.BigEndian.PutUint16(u16[:], uint16(len(s)))
		body.Write(u16[:])
		body.WriteString(s)
	}
	writeStr(f.Self)
	var u32 [4]byte
	var u64 [8]byte
	for i := range f.Obs {
		o := &f.Obs[i]
		if !validGossipName(o.From) || !validGossipName(o.To) || !validGossipName(o.Origin) {
			return nil, fmt.Errorf("%w: bad entry names", ErrBadGossipFrame)
		}
		if o.Metric > MaxGossipMetric {
			return nil, fmt.Errorf("%w: metric %d", ErrBadGossipFrame, o.Metric)
		}
		writeStr(o.From)
		writeStr(o.To)
		writeStr(o.Origin)
		body.WriteByte(o.Metric)
		body.WriteByte(o.Hops)
		binary.BigEndian.PutUint64(u64[:], uint64(o.TimeUnixNano))
		body.Write(u64[:])
		if f.Kind == GossipDelta {
			if math.IsNaN(o.Value) || math.IsInf(o.Value, 0) {
				return nil, fmt.Errorf("%w: non-finite value", ErrBadGossipFrame)
			}
			binary.BigEndian.PutUint64(u64[:], math.Float64bits(o.Value))
			body.Write(u64[:])
			binary.BigEndian.PutUint32(u32[:], o.Count)
			body.Write(u32[:])
		}
	}
	if body.Len() > MaxGossipBody {
		return nil, ErrTooLarge
	}
	out := make([]byte, gossipFixedLen, gossipFixedLen+body.Len())
	copy(out, MagicGossip[:])
	out[4] = GossipVersion
	out[5] = f.Kind
	binary.BigEndian.PutUint16(out[6:8], uint16(len(f.Obs)))
	binary.BigEndian.PutUint32(out[8:12], uint32(body.Len()))
	return append(out, body.Bytes()...), nil
}

// ReadGossipFrame reads and decodes one gossip frame from r. Allocation
// is bounded by the declared body length, validated against MaxGossipBody
// before any body allocation. A clean EOF before the first byte passes
// through as io.EOF.
func ReadGossipFrame(r io.Reader) (*GossipFrame, error) {
	var fixed [gossipFixedLen]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, ErrTruncated
		}
		return nil, err // io.EOF passes through: clean end of exchange
	}
	if !IsGossipMagic(fixed[:]) {
		return nil, ErrBadMagic
	}
	if fixed[4] != GossipVersion {
		return nil, ErrBadVersion
	}
	f := &GossipFrame{Kind: fixed[5]}
	if f.Kind != GossipDigest && f.Kind != GossipDelta {
		return nil, fmt.Errorf("%w: kind %d", ErrBadGossipFrame, f.Kind)
	}
	count := int(binary.BigEndian.Uint16(fixed[6:8]))
	bodyLen := int(binary.BigEndian.Uint32(fixed[8:12]))
	if count > MaxGossipEntries || bodyLen > MaxGossipBody {
		return nil, ErrTooLarge
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, ErrTruncated
	}
	readStr := func() (string, bool) {
		if len(body) < 2 {
			return "", false
		}
		n := int(binary.BigEndian.Uint16(body[:2]))
		body = body[2:]
		if n == 0 || n > MaxAddrLen || len(body) < n {
			return "", false
		}
		s := string(body[:n])
		body = body[n:]
		return s, true
	}
	var ok bool
	if f.Self, ok = readStr(); !ok {
		return nil, fmt.Errorf("%w: bad self", ErrBadGossipFrame)
	}
	for i := 0; i < count; i++ {
		var o GossipObs
		if o.From, ok = readStr(); !ok {
			return nil, fmt.Errorf("%w: bad entry edge", ErrBadGossipFrame)
		}
		if o.To, ok = readStr(); !ok {
			return nil, fmt.Errorf("%w: bad entry edge", ErrBadGossipFrame)
		}
		if o.Origin, ok = readStr(); !ok {
			return nil, fmt.Errorf("%w: bad entry origin", ErrBadGossipFrame)
		}
		if len(body) < 10 {
			return nil, ErrTruncated
		}
		o.Metric = body[0]
		o.Hops = body[1]
		if o.Metric > MaxGossipMetric {
			return nil, fmt.Errorf("%w: metric %d", ErrBadGossipFrame, o.Metric)
		}
		o.TimeUnixNano = int64(binary.BigEndian.Uint64(body[2:10]))
		body = body[10:]
		if f.Kind == GossipDelta {
			if len(body) < 12 {
				return nil, ErrTruncated
			}
			o.Value = math.Float64frombits(binary.BigEndian.Uint64(body[:8]))
			o.Count = binary.BigEndian.Uint32(body[8:12])
			body = body[12:]
			if math.IsNaN(o.Value) || math.IsInf(o.Value, 0) {
				return nil, fmt.Errorf("%w: non-finite value", ErrBadGossipFrame)
			}
		}
		f.Obs = append(f.Obs, o)
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadGossipFrame, len(body))
	}
	return f, nil
}

// GossipKindString names a frame kind for diagnostics.
func GossipKindString(k uint8) string {
	switch k {
	case GossipDigest:
		return "DIGEST"
	case GossipDelta:
		return "DELTA"
	default:
		return fmt.Sprintf("kind-%d", k)
	}
}

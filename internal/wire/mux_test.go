package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestMuxHelloRoundTrip(t *testing.T) {
	h := &MuxHello{Window: 256 << 10}
	enc := h.Encode()
	if len(enc) != MuxHelloLen {
		t.Fatalf("hello length %d, want %d", len(enc), MuxHelloLen)
	}
	if !IsMuxMagic(enc) {
		t.Fatal("hello does not start with the mux magic")
	}
	got, err := ReadMuxHello(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if got.Window != h.Window {
		t.Fatalf("window %d, want %d", got.Window, h.Window)
	}
}

func TestMuxHelloRejectsMalformed(t *testing.T) {
	good := (&MuxHello{Window: 1 << 20}).Encode()
	cases := []struct {
		name string
		mut  func([]byte)
		want error
	}{
		{"bad magic", func(b []byte) { b[3] = '1' }, ErrBadMagic},
		{"bad version", func(b []byte) { b[4] = 99 }, ErrBadVersion},
		{"zero window", func(b []byte) { copy(b[5:9], []byte{0, 0, 0, 0}) }, ErrBadMuxWindow},
		{"oversized window", func(b []byte) { copy(b[5:9], []byte{0xff, 0xff, 0xff, 0xff}) }, ErrBadMuxWindow},
	}
	for _, c := range cases {
		b := append([]byte(nil), good...)
		c.mut(b)
		if _, err := ReadMuxHello(bytes.NewReader(b)); !errors.Is(err, c.want) {
			t.Errorf("%s: err=%v, want %v", c.name, err, c.want)
		}
	}
	if _, err := ReadMuxHello(bytes.NewReader(good[:7])); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated hello: err=%v, want %v", err, ErrTruncated)
	}
}

func TestMuxFrameRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte{0xab}, 1000)
	cases := []struct {
		typ     uint8
		payload []byte
	}{
		{MuxOpen, nil},
		{MuxData, payload},
		{MuxClose, nil},
		{MuxReset, nil},
	}
	for _, c := range cases {
		enc := AppendMuxFrame(nil, c.typ, 7, c.payload)
		f, err := ReadMuxFrame(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("%s: %v", MuxTypeString(c.typ), err)
		}
		if f.Type != c.typ || f.Stream != 7 || !bytes.Equal(f.Payload, c.payload) {
			t.Fatalf("%s: lossy round trip: %+v", MuxTypeString(c.typ), f)
		}
	}
	enc := AppendMuxWindow(nil, 3, 65536)
	f, err := ReadMuxFrame(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != MuxWindow || f.Stream != 3 || f.Credit != 65536 {
		t.Fatalf("WINDOW round trip: %+v", f)
	}
}

func TestMuxFrameRejectsMalformed(t *testing.T) {
	frame := func(typ uint8, stream uint32, payload []byte) []byte {
		return AppendMuxFrame(nil, typ, stream, payload)
	}
	cases := []struct {
		name string
		raw  []byte
	}{
		{"unknown type", frame(42, 1, nil)},
		{"stream zero", frame(MuxData, 0, []byte("x"))},
		{"OPEN with payload", frame(MuxOpen, 1, []byte("x"))},
		{"CLOSE with payload", frame(MuxClose, 1, []byte("x"))},
		{"RESET with payload", frame(MuxReset, 1, []byte("x"))},
		{"WINDOW wrong length", frame(MuxWindow, 1, []byte{1, 2})},
		{"WINDOW zero credit", frame(MuxWindow, 1, []byte{0, 0, 0, 0})},
		{"DATA empty", frame(MuxData, 1, nil)},
		{"truncated header", []byte{MuxData, 0, 0}},
		{"truncated payload", frame(MuxData, 1, []byte("hello"))[:11]},
	}
	for _, c := range cases {
		if _, err := ReadMuxFrame(bytes.NewReader(c.raw)); err == nil {
			t.Errorf("%s: decoder accepted malformed frame", c.name)
		}
	}
}

// TestMuxFrameOversizedLengthDoesNotAllocate proves a hostile length
// field is rejected before any payload allocation.
func TestMuxFrameOversizedLengthDoesNotAllocate(t *testing.T) {
	raw := []byte{MuxData, 0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff} // 4 GiB claim
	if _, err := ReadMuxFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadMuxFrame) {
		t.Fatalf("err=%v, want %v", err, ErrBadMuxFrame)
	}
}

func TestMuxFrameCleanEOF(t *testing.T) {
	if _, err := ReadMuxFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty link: err=%v, want io.EOF", err)
	}
	if _, err := ReadMuxFrame(bytes.NewReader([]byte{MuxData, 0})); !errors.Is(err, ErrTruncated) {
		t.Fatalf("mid-header cut: err=%v, want %v", err, ErrTruncated)
	}
}

// FuzzReadMuxHello: the hello decoder must never panic, and anything it
// accepts must re-encode to the same bytes.
func FuzzReadMuxHello(f *testing.F) {
	f.Add((&MuxHello{Window: 1 << 16}).Encode())
	f.Add([]byte("LSLMxxxxxxxx"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		h, err := ReadMuxHello(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// Reserved bytes re-encode as zero, so compare through a second
		// decode rather than byte-for-byte.
		h2, err := ReadMuxHello(bytes.NewReader(h.Encode()))
		if err != nil {
			t.Fatalf("re-encoded hello does not decode: %v", err)
		}
		if h2.Window != h.Window {
			t.Fatal("lossy hello round trip")
		}
	})
}

// FuzzReadMuxFrame drives the frame decoder with arbitrary bytes; it
// must never panic or over-allocate, and accepted frames must re-encode
// losslessly.
func FuzzReadMuxFrame(f *testing.F) {
	f.Add(AppendMuxFrame(nil, MuxOpen, 1, nil))
	f.Add(AppendMuxFrame(nil, MuxData, 2, []byte("payload")))
	f.Add(AppendMuxWindow(nil, 3, 4096))
	f.Add([]byte{MuxData, 0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		fr, err := ReadMuxFrame(bytes.NewReader(raw))
		if err != nil {
			return
		}
		if len(fr.Payload) > MaxMuxPayload {
			t.Fatalf("decoder allocated %d-byte payload", len(fr.Payload))
		}
		var enc []byte
		if fr.Type == MuxWindow {
			enc = AppendMuxWindow(nil, fr.Stream, fr.Credit)
		} else {
			enc = AppendMuxFrame(nil, fr.Type, fr.Stream, fr.Payload)
		}
		if !bytes.Equal(enc, raw[:len(enc)]) {
			t.Fatal("lossy frame round trip")
		}
	})
}

// FuzzReadAcceptFrame: same contract for the backward-channel accept
// decoder.
func FuzzReadAcceptFrame(f *testing.F) {
	acc := &AcceptFrame{Code: CodeOK, Session: NewSessionID(), Offset: 12345}
	f.Add(acc.Encode())
	f.Add([]byte("LSLAgarbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		a, err := ReadAcceptFrame(bytes.NewReader(raw))
		if err != nil {
			return
		}
		enc := a.Encode()
		b, err := ReadAcceptFrame(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("re-encoded accept does not decode: %v", err)
		}
		if *b != *a {
			t.Fatal("lossy accept round trip")
		}
	})
}

package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

func sampleGossipObs() []GossipObs {
	return []GossipObs{
		{From: "denver", To: "chicago", Origin: "denver", Metric: 0, Hops: 0, TimeUnixNano: 1700000000000000001, Value: 0.012, Count: 9},
		{From: "chicago", To: "ncsa", Origin: "denver", Metric: 1, Hops: 1, TimeUnixNano: 1700000000000000002, Value: 95e6, Count: 4},
		{From: "denver", To: "ncsa", Origin: "utk", Metric: 2, Hops: 2, TimeUnixNano: 1700000000000000003, Value: 0.5, Count: 1},
	}
}

func TestGossipFrameRoundTrip(t *testing.T) {
	for _, kind := range []uint8{GossipDigest, GossipDelta} {
		f := &GossipFrame{Kind: kind, Self: "denver", Obs: sampleGossipObs()}
		enc, err := f.Encode()
		if err != nil {
			t.Fatalf("%s: %v", GossipKindString(kind), err)
		}
		if !IsGossipMagic(enc) {
			t.Fatalf("%s: missing gossip magic", GossipKindString(kind))
		}
		got, err := ReadGossipFrame(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("%s: decode: %v", GossipKindString(kind), err)
		}
		want := *f
		if kind == GossipDigest {
			// Digest frames strip values and counts on the wire.
			want.Obs = append([]GossipObs(nil), f.Obs...)
			for i := range want.Obs {
				want.Obs[i].Value = 0
				want.Obs[i].Count = 0
			}
		}
		if got.Kind != want.Kind || got.Self != want.Self || !reflect.DeepEqual(got.Obs, want.Obs) {
			t.Fatalf("%s: round trip mismatch\n got %+v\nwant %+v", GossipKindString(kind), got, &want)
		}
	}
}

func TestGossipFrameEmptyDelta(t *testing.T) {
	f := &GossipFrame{Kind: GossipDelta, Self: "a"}
	enc, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadGossipFrame(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if got.Self != "a" || len(got.Obs) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestGossipFrameEncodeRejects(t *testing.T) {
	cases := []struct {
		name string
		f    GossipFrame
	}{
		{"bad kind", GossipFrame{Kind: 9, Self: "a"}},
		{"empty self", GossipFrame{Kind: GossipDigest}},
		{"empty edge name", GossipFrame{Kind: GossipDelta, Self: "a", Obs: []GossipObs{{To: "b", Origin: "a"}}}},
		{"bad metric", GossipFrame{Kind: GossipDelta, Self: "a", Obs: []GossipObs{{From: "x", To: "b", Origin: "a", Metric: 7}}}},
		{"nan value", GossipFrame{Kind: GossipDelta, Self: "a", Obs: []GossipObs{{From: "x", To: "b", Origin: "a", Value: math.NaN()}}}},
		{"too many entries", GossipFrame{Kind: GossipDigest, Self: "a", Obs: make([]GossipObs, MaxGossipEntries+1)}},
	}
	for _, c := range cases {
		if _, err := c.f.Encode(); err == nil {
			t.Errorf("%s: encode accepted", c.name)
		}
	}
}

func TestGossipFrameDecodeRejectsMalformed(t *testing.T) {
	good, err := (&GossipFrame{Kind: GossipDelta, Self: "denver", Obs: sampleGossipObs()}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	mut := func(name string, f func([]byte) []byte, want error) {
		b := f(append([]byte(nil), good...))
		if _, err := ReadGossipFrame(bytes.NewReader(b)); err == nil || (want != nil && !errors.Is(err, want)) {
			t.Errorf("%s: err=%v, want %v", name, err, want)
		}
	}
	mut("bad magic", func(b []byte) []byte { b[3] = 'X'; return b }, ErrBadMagic)
	mut("bad version", func(b []byte) []byte { b[4] = 99; return b }, ErrBadVersion)
	mut("bad kind", func(b []byte) []byte { b[5] = 0; return b }, ErrBadGossipFrame)
	mut("oversized body", func(b []byte) []byte { b[8], b[9], b[10], b[11] = 0xff, 0xff, 0xff, 0xff; return b }, ErrTooLarge)
	mut("truncated body", func(b []byte) []byte { return b[:len(b)-4] }, ErrTruncated)
	mut("trailing bytes", func(b []byte) []byte {
		// Declare one fewer entry than the body actually carries.
		b[6], b[7] = 0, 2
		return b
	}, ErrBadGossipFrame)

	if _, err := ReadGossipFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: err=%v, want io.EOF", err)
	}
	if _, err := ReadGossipFrame(bytes.NewReader(good[:6])); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated header: err=%v, want %v", err, ErrTruncated)
	}
}

// FuzzReadGossipFrame drives the gossip decoder with arbitrary bytes; it
// must never panic and never allocate beyond the declared bounds, and
// anything it accepts must re-encode decodably.
func FuzzReadGossipFrame(f *testing.F) {
	for _, kind := range []uint8{GossipDigest, GossipDelta} {
		if enc, err := (&GossipFrame{Kind: kind, Self: "denver", Obs: sampleGossipObs()}).Encode(); err == nil {
			f.Add(enc)
		}
	}
	f.Add([]byte("LSLG"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadGossipFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		enc, err := fr.Encode()
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		if _, err := ReadGossipFrame(bytes.NewReader(enc)); err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
	})
}

package wire

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func sampleHeader() *OpenHeader {
	return &OpenHeader{
		Flags:      FlagDigest,
		Session:    NewSessionID(),
		HopIndex:   0,
		Route:      []string{"depot1:5000", "depot2:5000", "server:6000"},
		ContentLen: 1 << 20,
		Offset:     0,
	}
}

func TestOpenRoundTrip(t *testing.T) {
	h := sampleHeader()
	enc, err := h.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadOpenHeader(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if got.Flags != h.Flags || got.Session != h.Session || got.HopIndex != h.HopIndex ||
		got.ContentLen != h.ContentLen || got.Offset != h.Offset {
		t.Fatalf("mismatch: %+v vs %+v", got, h)
	}
	if len(got.Route) != 3 || got.Route[2] != "server:6000" {
		t.Fatalf("route: %v", got.Route)
	}
}

func TestOpenRoundTripUnknownLength(t *testing.T) {
	h := sampleHeader()
	h.ContentLen = UnknownLength
	enc, _ := h.Encode()
	got, err := ReadOpenHeader(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if got.ContentLen != UnknownLength {
		t.Fatalf("content len %x", got.ContentLen)
	}
}

func TestHeaderFollowedByPayload(t *testing.T) {
	h := sampleHeader()
	enc, _ := h.Encode()
	stream := append(append([]byte{}, enc...), []byte("payload-bytes")...)
	r := bytes.NewReader(stream)
	if _, err := ReadOpenHeader(r); err != nil {
		t.Fatal(err)
	}
	rest, _ := io.ReadAll(r)
	if string(rest) != "payload-bytes" {
		t.Fatalf("payload disturbed: %q", rest)
	}
}

func TestNextHopProgression(t *testing.T) {
	h := sampleHeader()
	next, ok := h.NextHop()
	if !ok || next != "depot2:5000" {
		t.Fatalf("next=%q ok=%v", next, ok)
	}
	if h.Final() {
		t.Fatal("not final yet")
	}
	h.HopIndex = 2
	if _, ok := h.NextHop(); ok {
		t.Fatal("no next hop at target")
	}
	if !h.Final() {
		t.Fatal("should be final")
	}
}

func TestRemainingHops(t *testing.T) {
	h := sampleHeader()
	h.HopIndex = 1
	rem := h.RemainingHops()
	if len(rem) != 2 || rem[0] != "depot2:5000" {
		t.Fatalf("remaining=%v", rem)
	}
}

func TestValidateRejectsBadRoutes(t *testing.T) {
	h := sampleHeader()
	h.Route = nil
	if err := h.Validate(); err == nil {
		t.Fatal("empty route")
	}
	h = sampleHeader()
	h.Route = make([]string, MaxRouteEntries+1)
	for i := range h.Route {
		h.Route[i] = "a:1"
	}
	if err := h.Validate(); err == nil {
		t.Fatal("too many hops")
	}
	h = sampleHeader()
	h.Route = []string{strings.Repeat("x", MaxAddrLen+1)}
	if err := h.Validate(); err == nil {
		t.Fatal("oversized addr")
	}
	h = sampleHeader()
	h.HopIndex = 3
	if err := h.Validate(); err == nil {
		t.Fatal("hop index out of range")
	}
}

func TestDecodeBadMagic(t *testing.T) {
	enc, _ := sampleHeader().Encode()
	enc[0] = 'X'
	if _, err := ReadOpenHeader(bytes.NewReader(enc)); err != ErrBadMagic {
		t.Fatalf("err=%v", err)
	}
}

func TestDecodeBadVersion(t *testing.T) {
	enc, _ := sampleHeader().Encode()
	enc[4] = 99
	if _, err := ReadOpenHeader(bytes.NewReader(enc)); err != ErrBadVersion {
		t.Fatalf("err=%v", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	enc, _ := sampleHeader().Encode()
	for _, cut := range []int{0, 3, 10, openFixedLen - 1, openFixedLen + 1, len(enc) - 1} {
		if _, err := ReadOpenHeader(bytes.NewReader(enc[:cut])); err == nil {
			t.Fatalf("cut=%d accepted", cut)
		}
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		ReadOpenHeader(bytes.NewReader(raw))
		ReadAcceptFrame(bytes.NewReader(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(flags uint16, hop uint8, n uint8, contentLen, offset uint64, addrSeed uint8) bool {
		nr := int(n%MaxRouteEntries) + 1
		route := make([]string, nr)
		for i := range route {
			route[i] = strings.Repeat(string(rune('a'+(int(addrSeed)+i)%26)), int(addrSeed)%40+1) + ":1"
		}
		h := &OpenHeader{
			Flags:      flags,
			Session:    NewSessionID(),
			HopIndex:   hop % uint8(nr),
			Route:      route,
			ContentLen: contentLen,
			Offset:     offset,
		}
		enc, err := h.Encode()
		if err != nil {
			return false
		}
		got, err := ReadOpenHeader(bytes.NewReader(enc))
		if err != nil {
			return false
		}
		if got.Flags != h.Flags || got.Session != h.Session || got.HopIndex != h.HopIndex ||
			got.ContentLen != h.ContentLen || got.Offset != h.Offset || len(got.Route) != nr {
			return false
		}
		for i := range route {
			if got.Route[i] != route[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAcceptRoundTrip(t *testing.T) {
	a := &AcceptFrame{Code: CodeOK, Session: NewSessionID(), Offset: 123456}
	got, err := ReadAcceptFrame(bytes.NewReader(a.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != a.Code || got.Session != a.Session || got.Offset != a.Offset {
		t.Fatalf("mismatch: %+v", got)
	}
}

func TestAcceptBadMagic(t *testing.T) {
	a := &AcceptFrame{Code: CodeOK}
	enc := a.Encode()
	enc[1] = 'x'
	if _, err := ReadAcceptFrame(bytes.NewReader(enc)); err != ErrBadMagic {
		t.Fatalf("err=%v", err)
	}
}

func TestSessionIDHex(t *testing.T) {
	id := NewSessionID()
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("hex len %d", len(s))
	}
	back, err := ParseSessionID(s)
	if err != nil || back != id {
		t.Fatalf("roundtrip failed: %v", err)
	}
	if _, err := ParseSessionID("zz"); err == nil {
		t.Fatal("bad hex accepted")
	}
}

func TestSessionIDsUnique(t *testing.T) {
	seen := map[SessionID]bool{}
	for i := 0; i < 100; i++ {
		id := NewSessionID()
		if seen[id] {
			t.Fatal("duplicate session id")
		}
		seen[id] = true
	}
}

func TestCodeString(t *testing.T) {
	if CodeString(CodeRejectShed) != "custody-shed" || CodeString(CodeCustody) != "custody-committed" {
		t.Fatal("custody code names wrong")
	}
	if CodeString(CodeOK) != "ok" || CodeString(CodeRejectBusy) != "busy" {
		t.Fatal("code names")
	}
	if !strings.Contains(CodeString(200), "200") {
		t.Fatal("unknown code")
	}
}

func TestHeaderLenFieldConsistent(t *testing.T) {
	enc, _ := sampleHeader().Encode()
	claimed := int(enc[7])<<8 | int(enc[8])
	if claimed != len(enc) {
		t.Fatalf("headerLen field %d != %d", claimed, len(enc))
	}
}

// FuzzReadOpenHeader drives the decoder with arbitrary bytes; it must
// never panic, and anything it accepts must re-encode losslessly.
func FuzzReadOpenHeader(f *testing.F) {
	enc, _ := sampleHeader().Encode()
	f.Add(enc)
	f.Add([]byte("LSL1garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		h, err := ReadOpenHeader(bytes.NewReader(raw))
		if err != nil {
			return
		}
		enc, err := h.Encode()
		if err != nil {
			t.Fatalf("decoded header does not re-encode: %v", err)
		}
		h2, err := ReadOpenHeader(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("re-encoded header does not decode: %v", err)
		}
		if h2.Session != h.Session || len(h2.Route) != len(h.Route) {
			t.Fatal("lossy round trip")
		}
	})
}

// Package wire defines the LSL on-the-wire protocol: the session-open
// header that rides at the front of every sublink's TCP stream, the
// accept/reject frames that travel back through the cascade, and the MD5
// integrity trailer exchanged between end systems.
//
// The paper's architecture (§III): a session is identified by a 128-bit
// session identifier; the path through the network is an initiator-
// specified "loose source route" through some number of session-layer
// routers (depots); an MD5 digest over the complete stream guards
// end-to-end integrity (data corruption surviving TCP checksums is a real
// phenomenon — the paper cites Paxson).
//
// All integers are big-endian. The header is bounded (MaxHeaderLen) and
// the decoder never panics on malformed input.
package wire

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
)

// Protocol constants.
const (
	// Version is the protocol version carried in every frame.
	Version = 1
	// MaxRouteEntries bounds loose-source-route length.
	MaxRouteEntries = 16
	// MaxAddrLen bounds one route entry.
	MaxAddrLen = 255
	// MaxHeaderLen bounds the whole encoded open header.
	MaxHeaderLen = 4096
	// DigestLen is the MD5 trailer size.
	DigestLen = 16
	// UnknownLength marks a stream of unspecified content length.
	UnknownLength = ^uint64(0)
)

var (
	magicOpen   = [4]byte{'L', 'S', 'L', '1'}
	magicAccept = [4]byte{'L', 'S', 'L', 'A'}
)

// Errors returned by decoders.
var (
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrTruncated  = errors.New("wire: truncated frame")
	ErrTooLarge   = errors.New("wire: frame exceeds limits")
	ErrBadRoute   = errors.New("wire: invalid route")
)

// Flag bits in the open header.
const (
	// FlagDigest requests end-to-end MD5 verification (requires a known
	// content length so the receiver can find the trailer).
	FlagDigest uint16 = 1 << 0
	// FlagResume asks the listener to report its received offset so the
	// initiator can continue an interrupted session.
	FlagResume uint16 = 1 << 1
	// FlagEager tells depots the initiator will stream without waiting
	// for the end-to-end accept.
	FlagEager uint16 = 1 << 2
	// FlagStaged asks the first depot to take custody: it accepts the
	// session itself, stores the complete payload, and delivers it onward
	// asynchronously — the paper's "the ultimate sending and receiving
	// ports need not exist at the same time". Requires a known content
	// length.
	FlagStaged uint16 = 1 << 3
)

// SessionID is the 128-bit session identifier.
type SessionID [16]byte

// NewSessionID draws a random identifier.
func NewSessionID() SessionID {
	var id SessionID
	if _, err := rand.Read(id[:]); err != nil {
		// crypto/rand failing is unrecoverable; fall back to zero ID
		// rather than panicking inside a library.
		return SessionID{}
	}
	return id
}

// String renders the ID as lowercase hex.
func (id SessionID) String() string { return hex.EncodeToString(id[:]) }

// ParseSessionID parses the hex form produced by String.
func ParseSessionID(s string) (SessionID, error) {
	var id SessionID
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(id) {
		return id, fmt.Errorf("wire: bad session id %q", s)
	}
	copy(id[:], b)
	return id, nil
}

// OpenHeader is the session-open frame sent at the front of each sublink
// stream. Route holds the remaining hops *including* the final target;
// HopIndex is the position of the next hop to dial, advanced by each depot
// as it forwards the header.
type OpenHeader struct {
	Flags      uint16
	Session    SessionID
	HopIndex   uint8
	Route      []string
	ContentLen uint64 // UnknownLength for open-ended streams
	Offset     uint64 // resume offset (bytes already delivered end-to-end)
}

// RemainingHops returns the hops not yet traversed, including the target.
func (h *OpenHeader) RemainingHops() []string {
	if int(h.HopIndex) >= len(h.Route) {
		return nil
	}
	return h.Route[h.HopIndex:]
}

// NextHop returns the address the receiving depot should dial and whether
// one exists (false means the receiver is the final target).
func (h *OpenHeader) NextHop() (string, bool) {
	i := int(h.HopIndex) + 1
	if i < len(h.Route) {
		return h.Route[i], true
	}
	return "", false
}

// Final reports whether the receiver of this header is the session target.
func (h *OpenHeader) Final() bool {
	return int(h.HopIndex) >= len(h.Route)-1
}

// Validate checks structural limits before encoding.
func (h *OpenHeader) Validate() error {
	if len(h.Route) == 0 || len(h.Route) > MaxRouteEntries {
		return ErrBadRoute
	}
	if int(h.HopIndex) >= len(h.Route) {
		return ErrBadRoute
	}
	for _, a := range h.Route {
		if a == "" || len(a) > MaxAddrLen {
			return ErrBadRoute
		}
	}
	return nil
}

// fixed part: magic(4) version(1) flags(2) headerLen(2) session(16)
// hopIndex(1) routeLen(1) contentLen(8) offset(8) = 43 bytes.
const openFixedLen = 43

// Encode serializes the header.
func (h *OpenHeader) Encode() ([]byte, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Write(magicOpen[:])
	buf.WriteByte(Version)
	var u16 [2]byte
	binary.BigEndian.PutUint16(u16[:], h.Flags)
	buf.Write(u16[:])
	buf.Write([]byte{0, 0}) // headerLen placeholder
	buf.Write(h.Session[:])
	buf.WriteByte(h.HopIndex)
	buf.WriteByte(uint8(len(h.Route)))
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], h.ContentLen)
	buf.Write(u64[:])
	binary.BigEndian.PutUint64(u64[:], h.Offset)
	buf.Write(u64[:])
	for _, a := range h.Route {
		binary.BigEndian.PutUint16(u16[:], uint16(len(a)))
		buf.Write(u16[:])
		buf.WriteString(a)
	}
	out := buf.Bytes()
	if len(out) > MaxHeaderLen {
		return nil, ErrTooLarge
	}
	binary.BigEndian.PutUint16(out[7:9], uint16(len(out)))
	return out, nil
}

// ReadOpenHeader reads and decodes an open header from r.
func ReadOpenHeader(r io.Reader) (*OpenHeader, error) {
	fixed := make([]byte, openFixedLen)
	if _, err := io.ReadFull(r, fixed); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrTruncated
		}
		return nil, err
	}
	if !bytes.Equal(fixed[:4], magicOpen[:]) {
		return nil, ErrBadMagic
	}
	if fixed[4] != Version {
		return nil, ErrBadVersion
	}
	h := &OpenHeader{Flags: binary.BigEndian.Uint16(fixed[5:7])}
	total := int(binary.BigEndian.Uint16(fixed[7:9]))
	if total < openFixedLen || total > MaxHeaderLen {
		return nil, ErrTooLarge
	}
	copy(h.Session[:], fixed[9:25])
	h.HopIndex = fixed[25]
	routeLen := int(fixed[26])
	h.ContentLen = binary.BigEndian.Uint64(fixed[27:35])
	h.Offset = binary.BigEndian.Uint64(fixed[35:43])
	if routeLen == 0 || routeLen > MaxRouteEntries {
		return nil, ErrBadRoute
	}
	rest := make([]byte, total-openFixedLen)
	if _, err := io.ReadFull(r, rest); err != nil {
		return nil, ErrTruncated
	}
	for i := 0; i < routeLen; i++ {
		if len(rest) < 2 {
			return nil, ErrTruncated
		}
		n := int(binary.BigEndian.Uint16(rest[:2]))
		rest = rest[2:]
		if n == 0 || n > MaxAddrLen || len(rest) < n {
			return nil, ErrBadRoute
		}
		h.Route = append(h.Route, string(rest[:n]))
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, ErrBadRoute
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return h, nil
}

// Accept codes.
const (
	CodeOK uint8 = iota
	// CodeRejectBusy is sent by a depot refusing admission.
	CodeRejectBusy
	// CodeRejectRoute is sent when the next hop cannot be reached.
	CodeRejectRoute
	// CodeRejectProto is sent on malformed or unsupported headers.
	CodeRejectProto
	// CodeRejectShed is sent by a depot refusing a staged session because
	// its global custody budget (aggregate staged bytes across all
	// sessions) is exhausted — load shedding, distinct from the
	// per-session busy rejection so initiators can tell "this payload is
	// too big" from "the depot is full right now, try another".
	CodeRejectShed
	// CodeCustody confirms a staged session is durably in the depot's
	// custody: with a write-ahead journal configured it is sent only
	// after the payload and its journal record are on stable storage, so
	// an initiator that has seen this frame may discard its copy.
	CodeCustody
)

// AcceptFrame travels backward through the cascade once the final target
// has the session open. Offset reports the target's already-received byte
// count (non-zero only for resumed sessions).
type AcceptFrame struct {
	Code    uint8
	Session SessionID
	Offset  uint64
}

// acceptLen: magic(4) version(1) code(1) session(16) offset(8) = 30.
const acceptLen = 30

// Encode serializes the accept frame.
func (a *AcceptFrame) Encode() []byte {
	out := make([]byte, acceptLen)
	copy(out, magicAccept[:])
	out[4] = Version
	out[5] = a.Code
	copy(out[6:22], a.Session[:])
	binary.BigEndian.PutUint64(out[22:30], a.Offset)
	return out
}

// ReadAcceptFrame reads and decodes an accept frame from r.
func ReadAcceptFrame(r io.Reader) (*AcceptFrame, error) {
	buf := make([]byte, acceptLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrTruncated
		}
		return nil, err
	}
	if !bytes.Equal(buf[:4], magicAccept[:]) {
		return nil, ErrBadMagic
	}
	if buf[4] != Version {
		return nil, ErrBadVersion
	}
	a := &AcceptFrame{Code: buf[5]}
	copy(a.Session[:], buf[6:22])
	a.Offset = binary.BigEndian.Uint64(buf[22:30])
	return a, nil
}

// CodeString names an accept code for diagnostics.
func CodeString(c uint8) string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeRejectBusy:
		return "busy"
	case CodeRejectRoute:
		return "route-unreachable"
	case CodeRejectProto:
		return "protocol-error"
	case CodeRejectShed:
		return "custody-shed"
	case CodeCustody:
		return "custody-committed"
	default:
		return fmt.Sprintf("code-%d", c)
	}
}

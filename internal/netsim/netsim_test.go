package netsim

import (
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("now=%v", e.Now())
	}
}

func TestScheduleAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	var fired Time
	e.Schedule(5*Millisecond, func() { fired = e.Now() })
	e.Run()
	if fired != 5*Millisecond {
		t.Fatalf("fired at %v", fired)
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(3*Millisecond, func() { order = append(order, 3) })
	e.Schedule(1*Millisecond, func() { order = append(order, 1) })
	e.Schedule(2*Millisecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order=%v", order)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("not FIFO at same timestamp: %v", order)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.Schedule(-5*Second, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Fatalf("ran=%v now=%v", ran, e.Now())
	}
}

func TestAtInPastRunsNow(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10*Millisecond, func() {
		e.At(5*Millisecond, func() {
			if e.Now() != 10*Millisecond {
				t.Fatalf("past event ran at %v", e.Now())
			}
		})
	})
	e.Run()
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Schedule(1*Millisecond, func() { count++ })
	e.Schedule(10*Millisecond, func() { count++ })
	e.RunUntil(5 * Millisecond)
	if count != 1 {
		t.Fatalf("count=%d", count)
	}
	if e.Now() != 5*Millisecond {
		t.Fatalf("now=%v", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending=%d", e.Pending())
	}
}

func TestRunWhileStops(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 0; i < 100; i++ {
		e.Schedule(Time(i)*Millisecond, func() { count++ })
	}
	e.RunWhile(func() bool { return count < 10 })
	if count != 10 {
		t.Fatalf("count=%d", count)
	}
}

func TestCascadedScheduling(t *testing.T) {
	e := NewEngine(1)
	depth := 0
	var recur func()
	recur = func() {
		depth++
		if depth < 50 {
			e.Schedule(Millisecond, recur)
		}
	}
	e.Schedule(Millisecond, recur)
	e.Run()
	if depth != 50 {
		t.Fatalf("depth=%d", depth)
	}
	if e.Now() != 50*Millisecond {
		t.Fatalf("now=%v", e.Now())
	}
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Fatalf("FromSeconds wrong: %v", FromSeconds(1.5))
	}
	if got := (250 * Millisecond).Seconds(); got != 0.25 {
		t.Fatalf("Seconds()=%v", got)
	}
	if got := (2 * Millisecond).Millis(); got != 2 {
		t.Fatalf("Millis()=%v", got)
	}
}

func TestLinkDeliveryDelay(t *testing.T) {
	e := NewEngine(1)
	// 8 Mbit/s -> 1000 bytes takes 1ms serialization; +4ms propagation.
	l := NewLink(e, "l", 8e6, 4*Millisecond, 0, 0)
	var at Time
	l.Send(1000, func() { at = e.Now() })
	e.Run()
	if at != 5*Millisecond {
		t.Fatalf("delivered at %v, want 5ms", at)
	}
}

func TestLinkInfiniteRate(t *testing.T) {
	e := NewEngine(1)
	l := NewLink(e, "l", 0, 3*Millisecond, 0, 0)
	var at Time
	l.Send(1<<20, func() { at = e.Now() })
	e.Run()
	if at != 3*Millisecond {
		t.Fatalf("delivered at %v", at)
	}
}

func TestLinkSerializationQueueing(t *testing.T) {
	e := NewEngine(1)
	l := NewLink(e, "l", 8e6, 0, 0, 0) // 1000B = 1ms
	var times []Time
	for i := 0; i < 3; i++ {
		l.Send(1000, func() { times = append(times, e.Now()) })
	}
	e.Run()
	want := []Time{1 * Millisecond, 2 * Millisecond, 3 * Millisecond}
	for i, w := range want {
		if times[i] != w {
			t.Fatalf("times=%v", times)
		}
	}
}

func TestLinkDropTail(t *testing.T) {
	e := NewEngine(1)
	l := NewLink(e, "l", 8e6, 0, 2500, 0)
	accepted := 0
	for i := 0; i < 5; i++ {
		if l.Send(1000, func() {}) {
			accepted++
		}
	}
	// First packet starts serializing immediately; backlog grows by ~1000
	// per extra packet. Queue cap 2500 bytes allows first + 2 queued.
	if accepted != 3 {
		t.Fatalf("accepted=%d want 3", accepted)
	}
	if l.Stats.QueueDrops != 2 {
		t.Fatalf("drops=%d", l.Stats.QueueDrops)
	}
	e.Run()
	if l.Stats.Delivered != 3 {
		t.Fatalf("delivered=%d", l.Stats.Delivered)
	}
}

func TestLinkQueueDrainsOverTime(t *testing.T) {
	e := NewEngine(1)
	l := NewLink(e, "l", 8e6, 0, 1500, 0)
	if !l.Send(1000, func() {}) {
		t.Fatal("first send should be accepted")
	}
	if !l.Send(1000, func() {}) {
		t.Fatal("second send fits in queue")
	}
	if l.Send(1000, func() {}) {
		t.Fatal("third send should be dropped")
	}
	e.RunUntil(1500 * Microsecond) // first fully sent, second half-sent
	if !l.Send(1000, func() {}) {
		t.Fatal("after drain, send should succeed")
	}
}

func TestLinkRandomLossCountsAndConsumesCapacity(t *testing.T) {
	e := NewEngine(42)
	l := NewLink(e, "l", 8e9, 0, 0, 0.5)
	delivered := 0
	const n = 2000
	for i := 0; i < n; i++ {
		l.Send(1000, func() { delivered++ })
	}
	e.Run()
	if l.Stats.RandomLoss == 0 {
		t.Fatal("expected some random loss")
	}
	if got := l.Stats.RandomLoss + l.Stats.Delivered; got != n {
		t.Fatalf("loss+delivered=%d want %d", got, n)
	}
	frac := float64(l.Stats.RandomLoss) / n
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("loss fraction %v far from 0.5", frac)
	}
}

func TestLinkDeterminism(t *testing.T) {
	run := func(seed int64) (uint64, Time) {
		e := NewEngine(seed)
		l := NewLink(e, "l", 8e6, Millisecond, 4000, 0.1)
		var last Time
		for i := 0; i < 500; i++ {
			e.Schedule(Time(i)*100*Microsecond, func() {
				l.Send(500, func() { last = e.Now() })
			})
		}
		e.Run()
		return l.Stats.Delivered, last
	}
	d1, t1 := run(7)
	d2, t2 := run(7)
	if d1 != d2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", d1, t1, d2, t2)
	}
	d3, _ := run(8)
	if d3 == 0 {
		t.Fatal("sanity: other seed delivered nothing")
	}
}

func TestPathTraversesAllLinks(t *testing.T) {
	e := NewEngine(1)
	a := NewLink(e, "a", 0, 2*Millisecond, 0, 0)
	b := NewLink(e, "b", 0, 3*Millisecond, 0, 0)
	p := NewPath(e, a, b)
	var at Time
	p.Send(100, func() { at = e.Now() })
	e.Run()
	if at != 5*Millisecond {
		t.Fatalf("at=%v", at)
	}
	if p.PropDelay() != 5*Millisecond {
		t.Fatalf("prop=%v", p.PropDelay())
	}
}

func TestPathLossAtAnyHopDiscards(t *testing.T) {
	e := NewEngine(3)
	a := NewLink(e, "a", 0, 0, 0, 1.0) // always loses
	b := NewLink(e, "b", 0, 0, 0, 0)
	p := NewPath(e, a, b)
	delivered := false
	p.Send(100, func() { delivered = true })
	e.Run()
	if delivered {
		t.Fatal("packet should have been lost at first hop")
	}
	if b.Stats.Packets != 0 {
		t.Fatal("second hop should never see the packet")
	}
}

func TestPathBottleneck(t *testing.T) {
	e := NewEngine(1)
	p := NewPath(e,
		NewLink(e, "fast", 1e9, 0, 0, 0),
		NewLink(e, "slow", 5e6, 0, 0, 0),
		NewLink(e, "inf", 0, 0, 0, 0),
	)
	if p.BottleneckBps() != 5e6 {
		t.Fatalf("bottleneck=%v", p.BottleneckBps())
	}
}

func TestPathLossProbCombines(t *testing.T) {
	e := NewEngine(1)
	p := NewPath(e,
		NewLink(e, "a", 0, 0, 0, 0.1),
		NewLink(e, "b", 0, 0, 0, 0.1),
	)
	want := 1 - 0.9*0.9
	if got := p.LossProb(); got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("loss=%v want %v", got, want)
	}
}

func TestEmptyPathDeliversImmediately(t *testing.T) {
	e := NewEngine(1)
	p := NewPath(e)
	done := false
	p.Send(10, func() { done = true })
	e.Run()
	if !done || e.Now() != 0 {
		t.Fatalf("done=%v now=%v", done, e.Now())
	}
}

// Property: delivery time on a lossless path equals sum of propagation
// delays plus sum of serialization times when the path is idle.
func TestPathDelayProperty(t *testing.T) {
	f := func(rates []uint32, delays []uint16, size uint16) bool {
		n := len(rates)
		if n == 0 || n > 6 || len(delays) < n || size == 0 {
			return true
		}
		e := NewEngine(1)
		links := make([]*Link, n)
		var want Time
		sz := int(size)
		for i := 0; i < n; i++ {
			rate := float64(rates[i]%1000+1) * 1e5 // 0.1..100 Mbps
			d := Time(delays[i]%50) * Millisecond
			links[i] = NewLink(e, "l", rate, d, 0, 0)
			want += d + Time(float64(sz*8)/rate*float64(Second))
		}
		p := NewPath(e, links...)
		var got Time = -1
		p.Send(sz, func() { got = e.Now() })
		e.Run()
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return got >= 0 && diff <= Time(n+1) // rounding slack per hop
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBacklogHighWaterMark(t *testing.T) {
	e := NewEngine(1)
	l := NewLink(e, "l", 8e6, 0, 0, 0)
	for i := 0; i < 4; i++ {
		l.Send(1000, func() {})
	}
	if l.Stats.MaxBacklog < 2000 {
		t.Fatalf("max backlog %d too small", l.Stats.MaxBacklog)
	}
	e.Run()
	if l.Backlog() != 0 {
		t.Fatalf("backlog after drain = %d", l.Backlog())
	}
}

package netsim

// LinkStats counts a link's traffic for analysis and tests.
type LinkStats struct {
	Packets    uint64 // packets accepted for transmission
	Bytes      uint64 // bytes accepted for transmission
	QueueDrops uint64 // packets dropped because the drop-tail queue was full
	RandomLoss uint64 // packets lost to the Bernoulli wire-loss process
	Delivered  uint64 // packets that reached the far end
	MaxBacklog int    // high-water mark of queued bytes
}

// Link models one unidirectional hop: a serializing transmitter feeding a
// propagation delay, with a drop-tail output queue and optional random
// loss. The queue is modeled implicitly: the transmitter's busy horizon
// determines the backlog, and a packet that would push the backlog past
// QueueCap bytes is dropped.
type Link struct {
	Name string

	// RateBps is the serialization rate in bits per second. Zero means
	// infinitely fast (no serialization delay, no queueing).
	RateBps float64

	// Delay is the one-way propagation delay.
	Delay Time

	// QueueCap is the drop-tail queue capacity in bytes (backlog awaiting
	// serialization). Zero means unlimited.
	QueueCap int

	// LossProb is the probability that a transmitted packet is lost on the
	// wire (checked after queueing, so lost packets still consumed link
	// capacity, like corruption on a real link).
	LossProb float64

	Stats LinkStats

	engine    *Engine
	busyUntil Time
	queued    int // bytes waiting behind the packet in service
}

// NewLink builds a link attached to engine e.
func NewLink(e *Engine, name string, rateBps float64, delay Time, queueCap int, lossProb float64) *Link {
	return &Link{Name: name, RateBps: rateBps, Delay: delay, QueueCap: queueCap, LossProb: lossProb, engine: e}
}

// txTime returns the serialization time for size bytes.
func (l *Link) txTime(size int) Time {
	if l.RateBps <= 0 {
		return 0
	}
	return Time(float64(size*8) / l.RateBps * float64(Second))
}

// Backlog returns the bytes queued behind the packet currently being
// serialized (the classic drop-tail queue occupancy, excluding the packet
// in service).
func (l *Link) Backlog() int { return l.queued }

// Send offers a packet of size bytes to the link. deliver runs at the far
// end after serialization and propagation unless the packet is dropped
// (queue overflow) or lost (random loss). The return value reports whether
// the packet was accepted into the queue; random loss still returns true,
// as the sender cannot observe it.
func (l *Link) Send(size int, deliver func()) bool {
	now := l.engine.Now()
	start := l.busyUntil
	if start < now {
		start = now
	}
	if start > now { // packet must wait: it occupies the queue until service starts
		if l.QueueCap > 0 && l.queued+size > l.QueueCap {
			l.Stats.QueueDrops++
			return false
		}
		l.queued += size
		l.engine.At(start, func() { l.queued -= size })
	}
	done := start + l.txTime(size)
	l.busyUntil = done
	l.Stats.Packets++
	l.Stats.Bytes += uint64(size)
	if l.queued > l.Stats.MaxBacklog {
		l.Stats.MaxBacklog = l.queued
	}
	if l.LossProb > 0 && l.engine.Rand().Float64() < l.LossProb {
		l.Stats.RandomLoss++
		return true
	}
	l.engine.At(done+l.Delay, func() {
		l.Stats.Delivered++
		deliver()
	})
	return true
}

// Path is an ordered sequence of links from one host to another. A packet
// sent on a path traverses every link in order; loss at any hop discards
// it. Paths are cheap descriptors: many paths may share links, which is how
// the experiment topologies make the direct route and the LSL sublinks
// contend for the same bottlenecks.
type Path struct {
	Links  []*Link
	engine *Engine
}

// NewPath builds a path over links (all must belong to e).
func NewPath(e *Engine, links ...*Link) *Path {
	return &Path{Links: links, engine: e}
}

// Send pushes a packet of size bytes through every link in order and runs
// deliver when it emerges from the last one. Dropped or lost packets simply
// never deliver.
func (p *Path) Send(size int, deliver func()) {
	p.sendFrom(0, size, deliver)
}

func (p *Path) sendFrom(i int, size int, deliver func()) {
	if i >= len(p.Links) {
		deliver()
		return
	}
	p.Links[i].Send(size, func() {
		p.sendFrom(i+1, size, deliver)
	})
}

// PropDelay returns the sum of the links' propagation delays (no
// serialization or queueing), the floor of the one-way latency.
func (p *Path) PropDelay() Time {
	var d Time
	for _, l := range p.Links {
		d += l.Delay
	}
	return d
}

// BottleneckBps returns the lowest finite link rate on the path, or 0 if
// every link is infinitely fast.
func (p *Path) BottleneckBps() float64 {
	var min float64
	for _, l := range p.Links {
		if l.RateBps > 0 && (min == 0 || l.RateBps < min) {
			min = l.RateBps
		}
	}
	return min
}

// LossProb returns the probability that a packet survives no hop, i.e. the
// combined independent Bernoulli loss across links.
func (p *Path) LossProb() float64 {
	survive := 1.0
	for _, l := range p.Links {
		survive *= 1 - l.LossProb
	}
	return 1 - survive
}

// Engine returns the engine the path is bound to.
func (p *Path) Engine() *Engine { return p.engine }

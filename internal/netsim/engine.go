// Package netsim is a deterministic discrete-event network simulator: a
// virtual clock with an event heap, plus links that model serialization
// rate, propagation delay, drop-tail queueing, and random (Bernoulli)
// segment loss.
//
// It is the substrate on which the TCP model (internal/tcpsim) and the
// cascaded-session model (internal/lslsim) are built. The paper's testbed —
// Abilene wide-area paths between UCSB, UIUC, UF, OSU and UTK — is
// reproduced as netsim topologies in internal/experiments.
//
// Determinism: all randomness flows from the engine's seeded source, and
// events scheduled for the same instant fire in scheduling order, so a
// given seed always produces an identical simulation.
package netsim

import (
	"container/heap"
	"math/rand"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time int64

// Convenient durations in simulated time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts a simulated time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts a simulated time to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts floating-point seconds into simulated Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is the simulation core: a clock and a pending-event heap.
// It is not safe for concurrent use; simulations are single-goroutine by
// design so that runs are reproducible.
type Engine struct {
	now  Time
	heap eventHeap
	seq  uint64
	rng  *rand.Rand

	// Processed counts events executed, useful for cost accounting in
	// benchmarks.
	Processed uint64
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule runs fn after delay d (clamped to >= 0) of simulated time.
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// At runs fn at absolute simulated time t (no earlier than now).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.heap, event{at: t, seq: e.seq, fn: fn})
}

// Step executes the single earliest pending event. It reports whether an
// event was executed (false means the heap is empty).
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(event)
	e.now = ev.at
	e.Processed++
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t. Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Time) {
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunWhile executes events until cond() reports false or no events remain.
// cond is evaluated before each event.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// Pending reports the number of events waiting in the heap.
func (e *Engine) Pending() int { return len(e.heap) }

package tcpmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMathisKnownValue(t *testing.T) {
	// MSS 1460B, RTT 64ms, p=3e-4: ~12.9 Mbps.
	got := MathisThroughputBps(1460, 0.064, 3e-4) / 1e6
	if got < 11 || got < 0 || got > 15 {
		t.Fatalf("mathis=%v Mbps", got)
	}
}

func TestMathisRTTInverse(t *testing.T) {
	a := MathisThroughputBps(1460, 0.100, 1e-3)
	b := MathisThroughputBps(1460, 0.050, 1e-3)
	if math.Abs(b/a-2) > 1e-9 {
		t.Fatalf("halving RTT should double Mathis bound: %v vs %v", a, b)
	}
}

func TestMathisLossSqrt(t *testing.T) {
	a := MathisThroughputBps(1460, 0.1, 4e-4)
	b := MathisThroughputBps(1460, 0.1, 1e-4)
	if math.Abs(b/a-2) > 1e-9 {
		t.Fatalf("quartering loss should double bound: %v vs %v", a, b)
	}
}

func TestMathisNoLossInfinite(t *testing.T) {
	if !math.IsInf(MathisThroughputBps(1460, 0.1, 0), 1) {
		t.Fatal("zero loss should be unbounded")
	}
}

func TestSteadyCappedByBottleneck(t *testing.T) {
	p := PathParams{RTTSeconds: 0.064, BottleneckBps: 5e6, LossProb: 1e-6, MSSBytes: 1460}
	if got := p.SteadyBps(); got != 5e6 {
		t.Fatalf("steady=%v", got)
	}
}

func TestSteadyCappedByLoss(t *testing.T) {
	p := PathParams{RTTSeconds: 0.064, BottleneckBps: 1e9, LossProb: 3e-4, MSSBytes: 1460}
	if got := p.SteadyBps(); got >= 1e9 || got < 5e6 {
		t.Fatalf("steady=%v", got)
	}
}

func TestTransferTimeMonotoneInSize(t *testing.T) {
	p := PathParams{RTTSeconds: 0.064, BottleneckBps: 5e7, LossProb: 1e-4, MSSBytes: 1460, DelayedAcks: true}
	prev := 0.0
	for _, size := range []int64{32 << 10, 256 << 10, 1 << 20, 16 << 20, 64 << 20} {
		got := p.TransferSeconds(size)
		if got <= prev {
			t.Fatalf("transfer time not monotone at %d: %v <= %v", size, got, prev)
		}
		prev = got
	}
}

func TestTransferThroughputRisesWithSize(t *testing.T) {
	p := PathParams{RTTSeconds: 0.064, BottleneckBps: 5e7, LossProb: 0, MSSBytes: 1460, DelayedAcks: true}
	small := p.TransferBps(32 << 10)
	large := p.TransferBps(64 << 20)
	if small >= large {
		t.Fatalf("slow start amortization missing: small=%v large=%v", small, large)
	}
	if large > 5e7*1.01 {
		t.Fatalf("throughput above bottleneck: %v", large)
	}
}

func TestSmallTransferRTTDominated(t *testing.T) {
	p := PathParams{RTTSeconds: 0.064, BottleneckBps: 1e9, LossProb: 0, MSSBytes: 1460, DelayedAcks: true}
	got := p.TransferSeconds(32 << 10)
	// Setup 1.5 RTT + a few slow-start rounds: between 3 and 10 RTTs.
	if got < 3*0.064 || got > 10*0.064 {
		t.Fatalf("32K transfer %v s, want RTT-dominated", got)
	}
}

func TestShorterRTTFasterTransfer(t *testing.T) {
	long := PathParams{RTTSeconds: 0.064, BottleneckBps: 5e7, LossProb: 3e-4, MSSBytes: 1460, DelayedAcks: true}
	short := long
	short.RTTSeconds = 0.032
	if short.TransferSeconds(16<<20) >= long.TransferSeconds(16<<20) {
		t.Fatal("shorter RTT must be faster")
	}
}

// The paper's core claim in model form: for large transfers on a lossy
// long-RTT path, a two-hop cascade with half-RTT sublinks beats direct.
func TestCascadeBeatsDirectLargeLossy(t *testing.T) {
	direct := PathParams{RTTSeconds: 0.064, BottleneckBps: 5e7, LossProb: 3e-4, MSSBytes: 1460, DelayedAcks: true}
	sub := PathParams{RTTSeconds: 0.032, BottleneckBps: 5e7, LossProb: 1.5e-4, MSSBytes: 1460, DelayedAcks: true}
	size := int64(64 << 20)
	dt := direct.TransferSeconds(size)
	ct := CascadeTransferSeconds(size, []PathParams{sub, sub}, 0.001)
	if ct >= dt {
		t.Fatalf("cascade (%v) should beat direct (%v) at 64MB", ct, dt)
	}
}

// ...and the flip side: at tiny sizes the serialized dual setup makes the
// cascade slower (paper Figure 5's 32K point).
func TestCascadeLosesSmallTransfers(t *testing.T) {
	direct := PathParams{RTTSeconds: 0.064, BottleneckBps: 5e7, LossProb: 0, MSSBytes: 1460, DelayedAcks: true}
	sub := PathParams{RTTSeconds: 0.035, BottleneckBps: 5e7, LossProb: 0, MSSBytes: 1460, DelayedAcks: true}
	size := int64(8 << 10)
	dt := direct.TransferSeconds(size)
	ct := CascadeTransferSeconds(size, []PathParams{sub, sub}, 0.005)
	if ct <= dt {
		t.Fatalf("cascade (%v) should lose to direct (%v) at 8K", ct, dt)
	}
}

func TestCascadeSingleHopEqualsDirect(t *testing.T) {
	p := PathParams{RTTSeconds: 0.05, BottleneckBps: 1e7, LossProb: 1e-4, MSSBytes: 1460}
	d := p.TransferSeconds(1 << 20)
	c := CascadeTransferSeconds(1<<20, []PathParams{p}, 0.01)
	if d != c {
		t.Fatalf("single-hop cascade %v != direct %v", c, d)
	}
}

func TestCascadeEmptyZero(t *testing.T) {
	if CascadeTransferSeconds(1<<20, nil, 0) != 0 {
		t.Fatal("empty cascade should be 0")
	}
}

func TestZeroSize(t *testing.T) {
	p := PathParams{RTTSeconds: 0.05, BottleneckBps: 1e7, MSSBytes: 1460}
	if p.TransferSeconds(0) != 0 {
		t.Fatal("zero size should take zero time")
	}
	if p.TransferBps(0) != 0 {
		t.Fatal("zero size bps")
	}
}

func TestDefaults(t *testing.T) {
	p := PathParams{RTTSeconds: 0.05}
	if p.mss() != 1460 || p.iw() != 2 {
		t.Fatalf("defaults wrong: mss=%d iw=%v", p.mss(), p.iw())
	}
	if p.growthFactor() != 2 {
		t.Fatal("no delayed acks -> factor 2")
	}
	p.DelayedAcks = true
	if p.growthFactor() != 1.5 {
		t.Fatal("delayed acks -> 1.5")
	}
}

// Property: transfer time is monotone nonincreasing in bottleneck rate and
// nondecreasing in RTT.
func TestTransferMonotonicityProperty(t *testing.T) {
	f := func(rttMs uint16, bwA, bwB uint32, sizeKB uint16) bool {
		rtt := float64(rttMs%200+1) / 1000
		a := float64(bwA%1000+1) * 1e5
		b := float64(bwB%1000+1) * 1e5
		if a > b {
			a, b = b, a
		}
		size := int64(sizeKB%2048+1) << 10
		slow := PathParams{RTTSeconds: rtt, BottleneckBps: a, MSSBytes: 1460, DelayedAcks: true}
		fast := PathParams{RTTSeconds: rtt, BottleneckBps: b, MSSBytes: 1460, DelayedAcks: true}
		if fast.TransferSeconds(size) > slow.TransferSeconds(size)+1e-9 {
			return false
		}
		longer := PathParams{RTTSeconds: rtt * 2, BottleneckBps: a, MSSBytes: 1460, DelayedAcks: true}
		return slow.TransferSeconds(size) <= longer.TransferSeconds(size)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

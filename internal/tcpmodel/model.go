// Package tcpmodel provides closed-form TCP performance estimates used two
// ways in this reproduction:
//
//  1. As the objective function for LSL path planning (internal/route):
//     deciding whether detouring a session through a depot chain is
//     predicted to beat the direct connection for a given transfer size,
//     exactly the "network logistics" decision the paper's session layer
//     exists to make.
//  2. As an independent cross-check on the simulator: steady-state
//     throughput under random loss should track the Mathis et al.
//     macroscopic model (the paper's citation [25]), and small-transfer
//     times should track the slow-start episode model.
package tcpmodel

import "math"

// MathisThroughputBps returns the classic macroscopic steady-state TCP
// throughput bound  MSS/RTT * C/sqrt(p)  in bits per second, with
// C = sqrt(3/2) ≈ 1.22 (delayed-ACK variants lower C; this is the standard
// headline constant). rttSeconds must be > 0; p in (0,1].
func MathisThroughputBps(mssBytes int, rttSeconds, lossProb float64) float64 {
	if rttSeconds <= 0 || lossProb <= 0 {
		return math.Inf(1)
	}
	c := math.Sqrt(1.5)
	return float64(mssBytes*8) / rttSeconds * c / math.Sqrt(lossProb)
}

// PathParams describes one TCP hop (direct path or LSL sublink) for the
// analytic models.
type PathParams struct {
	RTTSeconds    float64 // round-trip propagation + typical queueing
	BottleneckBps float64 // lowest link rate on the hop
	LossProb      float64 // per-segment random loss probability
	MSSBytes      int
	InitialWindow int  // segments; default 2
	DelayedAcks   bool // halves slow-start growth rate
}

func (p PathParams) mss() int {
	if p.MSSBytes <= 0 {
		return 1460
	}
	return p.MSSBytes
}

func (p PathParams) iw() float64 {
	if p.InitialWindow <= 0 {
		return 2
	}
	return float64(p.InitialWindow)
}

// growthFactor is the slow-start per-RTT multiplier: 2 with ACK-per-segment,
// 1.5 with delayed ACKs.
func (p PathParams) growthFactor() float64 {
	if p.DelayedAcks {
		return 1.5
	}
	return 2
}

// SteadyBps returns the sustainable throughput of the hop: the bottleneck
// rate capped by the Mathis loss/RTT bound.
func (p PathParams) SteadyBps() float64 {
	s := MathisThroughputBps(p.mss(), p.RTTSeconds, p.LossProb)
	if p.BottleneckBps > 0 && p.BottleneckBps < s {
		return p.BottleneckBps
	}
	return s
}

// SlowStartSeconds estimates the time for slow start to lift the window
// from the initial window to the window that sustains rate SteadyBps, i.e.
// the RTT-clocked ramp the paper's §V traces make visible.
func (p PathParams) SlowStartSeconds() float64 {
	target := p.SteadyBps() * p.RTTSeconds / 8 // window in bytes at steady rate
	w0 := p.iw() * float64(p.mss())
	if target <= w0 {
		return p.RTTSeconds
	}
	rounds := math.Log(target/w0) / math.Log(p.growthFactor())
	return rounds * p.RTTSeconds
}

// TransferSeconds estimates the completion time of a size-byte transfer on
// the hop: connection setup (1.5 RTT: SYN, SYN-ACK, first data flight
// reaching the receiver half an RTT later is folded into the ramp), the
// slow-start ramp, then steady-state draining. It integrates the
// exponential ramp exactly rather than assuming instant window growth,
// which is what makes small transfers RTT-dominated (paper Figures 5/7/29).
func (p PathParams) TransferSeconds(size int64) float64 {
	if size <= 0 {
		return 0
	}
	rtt := p.RTTSeconds
	g := p.growthFactor()
	mss := float64(p.mss())
	steadyBytesPerRTT := p.SteadyBps() * rtt / 8

	setup := 1.5 * rtt
	sent := 0.0
	w := p.iw() * mss
	t := setup
	// Slow-start rounds: each RTT delivers the current window, then the
	// window multiplies by g, until the per-RTT delivery reaches the
	// steady-state rate or the transfer completes.
	for w < steadyBytesPerRTT {
		if sent+w >= float64(size) {
			// Fraction of the final round.
			frac := (float64(size) - sent) / w
			return t + frac*rtt + 0.5*rtt // +0.5 RTT for last bytes to land
		}
		sent += w
		t += rtt
		w *= g
	}
	remaining := float64(size) - sent
	if remaining > 0 {
		t += remaining / (p.SteadyBps() / 8)
	}
	return t + 0.5*rtt
}

// TransferBps returns the average throughput implied by TransferSeconds.
func (p PathParams) TransferBps(size int64) float64 {
	s := p.TransferSeconds(size)
	if s <= 0 {
		return 0
	}
	return float64(size) * 8 / s
}

// DepotChunkBytes is the depot store-and-forward granularity assumed by
// the cascade model (matching lslsim's default ChunkSize).
const DepotChunkBytes = 64 << 10

// CascadeTransferSeconds estimates a cascaded (LSL) transfer over the given
// sublinks with per-depot forwarding latency depotDelay (seconds per
// traversal) and a serialized session setup: the initiator dials hop 1,
// the depot dials hop 2, and so on, then a session-accept confirmation
// returns end-to-end before data flows (the synchronous connection case in
// the paper's §IV).
//
// In steady state the cascade drains at the minimum of the hops' rates;
// the pipeline fill adds each hop's ramp only once. The model approximates
// the cascade time as: serialized setup + the slowest hop's transfer time
// computed at the cascade's bottleneck steady rate + downstream fill
// latency.
func CascadeTransferSeconds(size int64, hops []PathParams, depotDelay float64) float64 {
	if len(hops) == 0 {
		return 0
	}
	if len(hops) == 1 {
		return hops[0].TransferSeconds(size)
	}
	// Serialized connection setup: 1.5 RTT per hop plus depot processing,
	// plus a half-RTT-per-hop accept confirmation returning to the source.
	setup := 0.0
	for _, h := range hops {
		setup += 1.5*h.RTTSeconds + depotDelay
	}
	for _, h := range hops {
		setup += 0.5 * h.RTTSeconds
	}
	// The cascade's sustainable rate is the per-hop minimum.
	bottleneck := math.Inf(1)
	for _, h := range hops {
		if s := h.SteadyBps(); s < bottleneck {
			bottleneck = s
		}
	}
	// Depots forward in store-and-forward chunks (DepotChunkBytes): a
	// transfer no larger than one chunk gets no pipelining at all — the
	// hops run strictly in sequence. This is what makes very small LSL
	// transfers lose to direct TCP (paper Figure 5's 32K point).
	if size <= DepotChunkBytes {
		total := setup
		for _, h := range hops {
			total += h.TransferSeconds(size) - 1.5*h.RTTSeconds + depotDelay
		}
		return total
	}
	// The slowest individual hop (its own ramp at its own RTT) dominates
	// the streaming phase; downstream hops add fill latency of half their
	// RTT plus depot forwarding.
	worst := 0.0
	for i, h := range hops {
		hh := h
		if hh.BottleneckBps == 0 || bottleneck < hh.BottleneckBps {
			hh.BottleneckBps = bottleneck
		}
		tr := hh.TransferSeconds(size) - 1.5*hh.RTTSeconds // setup counted separately
		fill := 0.0
		for j, g := range hops {
			if j != i {
				fill += 0.5*g.RTTSeconds + depotDelay
			}
		}
		if tr+fill > worst {
			worst = tr + fill
		}
	}
	return setup + worst
}

// CascadeTransferBps returns the average throughput implied by
// CascadeTransferSeconds.
func CascadeTransferBps(size int64, hops []PathParams, depotDelay float64) float64 {
	s := CascadeTransferSeconds(size, hops, depotDelay)
	if s <= 0 {
		return 0
	}
	return float64(size) * 8 / s
}

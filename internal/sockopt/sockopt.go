// Package sockopt applies the paper's §V socket tuning to LSL transport
// connections: TCP_NODELAY on every sublink (session opens are
// latency-bound small writes; Nagle only adds delayed-ACK stalls), and
// optional SO_SNDBUF/SO_RCVBUF overrides, which is what the paper
// hand-tuned per hop to claw back throughput on high
// bandwidth-delay-product paths.
//
// Tune is safe on any net.Conn: non-TCP transports (test pipes, the WAN
// emulator, mux streams) are left untouched.
package sockopt

import "net"

// Tune applies TCP-level socket options to c when it is a *net.TCPConn:
// TCP_NODELAY always, and the send/receive buffer sizes when positive.
// Errors are ignored — tuning is advisory; the kernel may clamp or refuse
// sizes — and non-TCP conns are a no-op.
func Tune(c net.Conn, sndBuf, rcvBuf int) {
	tc, ok := c.(*net.TCPConn)
	if !ok {
		return
	}
	tc.SetNoDelay(true)
	if sndBuf > 0 {
		tc.SetWriteBuffer(sndBuf)
	}
	if rcvBuf > 0 {
		tc.SetReadBuffer(rcvBuf)
	}
}

package core

import (
	"crypto/md5"
	"crypto/subtle"
	"fmt"
	"hash"
	"io"
	"net"
	"sync"
	"time"

	"lsl/internal/sockopt"
	"lsl/internal/wire"
)

// sessionState is the target-side per-session record that makes resumption
// work: how many payload bytes have arrived so far and the running digest
// over them. It survives the transport connection that carried them.
type sessionState struct {
	received int64
	hash     hash.Hash
	updated  time.Time
}

// DefaultSessionTTL is how long interrupted-session resume state is
// retained when Listener.SessionTTL is left zero at Listen/NewListener
// time.
const DefaultSessionTTL = 15 * time.Minute

// Listener accepts LSL sessions at a session target.
type Listener struct {
	ln net.Listener

	mu        sync.Mutex
	sessions  map[wire.SessionID]*sessionState
	lastSweep time.Time

	// HandshakeTimeout bounds the header read per connection (default 15s).
	HandshakeTimeout time.Duration
	// MaxSessions bounds the resume table.
	MaxSessions int
	// SessionTTL bounds how long an interrupted session's resume state is
	// retained: entries idle longer than this are swept, so abandoned
	// sessions cannot permanently occupy MaxSessions slots and block new
	// resumable sessions. Non-positive disables the sweep (completed
	// sessions are still deleted eagerly).
	SessionTTL time.Duration
	// SockSndBuf/SockRcvBuf override SO_SNDBUF/SO_RCVBUF on accepted
	// sublinks (zero keeps kernel defaults); TCP_NODELAY is always set.
	SockSndBuf int
	SockRcvBuf int
}

// Listen starts an LSL target listener on addr.
func Listen(addr string) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewListener(ln), nil
}

// NewListener wraps an existing net.Listener (tests, emulation).
func NewListener(ln net.Listener) *Listener {
	return &Listener{
		ln:               ln,
		sessions:         make(map[wire.SessionID]*sessionState),
		HandshakeTimeout: 15 * time.Second,
		MaxSessions:      1024,
		SessionTTL:       DefaultSessionTTL,
	}
}

// Addr returns the bound address.
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

// Close stops accepting.
func (l *Listener) Close() error { return l.ln.Close() }

// Accept blocks for the next valid session. Transport connections whose
// headers are malformed or mis-routed are rejected and skipped.
func (l *Listener) Accept() (*ServerConn, error) {
	for {
		nc, err := l.ln.Accept()
		if err != nil {
			return nil, err
		}
		sockopt.Tune(nc, l.SockSndBuf, l.SockRcvBuf)
		sc, err := l.handshake(nc)
		if err != nil {
			nc.Close()
			continue // a bad client must not kill the accept loop
		}
		return sc, nil
	}
}

func (l *Listener) handshake(nc net.Conn) (*ServerConn, error) {
	nc.SetDeadline(time.Now().Add(l.HandshakeTimeout))
	hdr, err := wire.ReadOpenHeader(nc)
	if err != nil {
		return nil, err
	}
	if !hdr.Final() {
		// We are a target, not a depot: refuse to forward.
		nc.Write((&wire.AcceptFrame{Code: wire.CodeRejectRoute, Session: hdr.Session}).Encode())
		return nil, fmt.Errorf("lsl: non-final header at target (hop %d of %d)", hdr.HopIndex, len(hdr.Route))
	}

	st := l.sessionFor(hdr)
	acc := &wire.AcceptFrame{Code: wire.CodeOK, Session: hdr.Session, Offset: uint64(st.received)}
	if _, err := nc.Write(acc.Encode()); err != nil {
		return nil, err
	}
	nc.SetDeadline(time.Time{})

	sc := &ServerConn{nc: nc, hdr: hdr, l: l, st: st}
	if hdr.Flags&wire.FlagDigest != 0 {
		if hdr.ContentLen == wire.UnknownLength {
			return nil, ErrNeedLength
		}
		sc.remaining = int64(hdr.ContentLen) - st.received
	} else {
		sc.remaining = -1
	}
	return sc, nil
}

// sessionFor finds or creates the resumable state for a header.
func (l *Listener) sessionFor(hdr *wire.OpenHeader) *sessionState {
	now := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sweepLocked(now)
	if st, ok := l.sessions[hdr.Session]; ok && hdr.Flags&wire.FlagResume != 0 {
		st.updated = now
		return st
	}
	st := &sessionState{updated: now}
	if hdr.Flags&wire.FlagDigest != 0 {
		st.hash = md5.New()
	}
	if len(l.sessions) >= l.MaxSessions {
		// Evict the stalest entry to bound memory.
		var oldest wire.SessionID
		var when time.Time
		first := true
		for id, s := range l.sessions {
			if first || s.updated.Before(when) {
				oldest, when, first = id, s.updated, false
			}
		}
		delete(l.sessions, oldest)
	}
	l.sessions[hdr.Session] = st
	return st
}

// sweepLocked evicts resume entries idle past SessionTTL. It runs during
// handshakes (no background goroutine to manage), rate-limited to once
// per quarter-TTL unless the table is at capacity — then it always runs,
// so stale entries can never starve a new resumable session.
func (l *Listener) sweepLocked(now time.Time) {
	if l.SessionTTL <= 0 {
		return
	}
	if now.Sub(l.lastSweep) < l.SessionTTL/4 && len(l.sessions) < l.MaxSessions {
		return
	}
	l.lastSweep = now
	for id, s := range l.sessions {
		if now.Sub(s.updated) > l.SessionTTL {
			delete(l.sessions, id)
		}
	}
}

// ResumeStates reports how many interrupted sessions currently hold
// resumable state (observability and tests).
func (l *Listener) ResumeStates() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.sessions)
}

func (l *Listener) dropSession(id wire.SessionID) {
	l.mu.Lock()
	delete(l.sessions, id)
	l.mu.Unlock()
}

// ServerConn is the target's end of one session sublink.
type ServerConn struct {
	nc  net.Conn
	hdr *wire.OpenHeader
	l   *Listener
	st  *sessionState

	remaining int64 // payload bytes left before the trailer; -1 = no digest
	verified  bool
	failed    error
}

// SessionID returns the session identifier.
func (s *ServerConn) SessionID() wire.SessionID { return s.hdr.Session }

// Route returns the loose source route the initiator specified.
func (s *ServerConn) Route() []string { return s.hdr.Route }

// ContentLength returns the declared payload size, or -1 when unknown.
func (s *ServerConn) ContentLength() int64 {
	if s.hdr.ContentLen == wire.UnknownLength {
		return -1
	}
	return int64(s.hdr.ContentLen)
}

// Received returns the total payload bytes received across the session's
// lifetime (including earlier sublinks of a resumed session).
func (s *ServerConn) Received() int64 {
	s.l.mu.Lock()
	defer s.l.mu.Unlock()
	return s.st.received
}

// Digesting reports whether end-to-end MD5 verification is active.
func (s *ServerConn) Digesting() bool { return s.remaining >= 0 }

// Read returns payload bytes. With digesting active it stops at the
// declared content length, consumes and verifies the MD5 trailer, and then
// returns io.EOF on success or ErrDigestMismatch on corruption.
func (s *ServerConn) Read(p []byte) (int, error) {
	if s.failed != nil {
		return 0, s.failed
	}
	if s.remaining == 0 {
		if err := s.finishDigest(); err != nil {
			return 0, err
		}
		return 0, io.EOF
	}
	if s.remaining > 0 && int64(len(p)) > s.remaining {
		p = p[:s.remaining]
	}
	n, err := s.nc.Read(p)
	if n > 0 {
		if s.st.hash != nil {
			s.st.hash.Write(p[:n])
		}
		s.l.mu.Lock()
		s.st.received += int64(n)
		s.st.updated = time.Now()
		s.l.mu.Unlock()
		if s.remaining > 0 {
			s.remaining -= int64(n)
		}
	}
	if err == io.EOF && s.remaining > 0 {
		return n, fmt.Errorf("lsl: stream truncated %d bytes early", s.remaining)
	}
	if err == io.EOF && s.remaining < 0 {
		// Unverified stream completed; forget the session.
		s.l.dropSession(s.hdr.Session)
	}
	if err == nil && s.remaining == 0 {
		if derr := s.finishDigest(); derr != nil {
			return n, derr
		}
		return n, nil
	}
	return n, err
}

func (s *ServerConn) finishDigest() error {
	if s.verified || s.st.hash == nil {
		return nil
	}
	trailer := make([]byte, wire.DigestLen)
	if _, err := io.ReadFull(s.nc, trailer); err != nil {
		s.failed = fmt.Errorf("lsl: reading digest trailer: %w", err)
		return s.failed
	}
	sum := s.st.hash.Sum(nil)
	if subtle.ConstantTimeCompare(sum, trailer) != 1 {
		s.failed = ErrDigestMismatch
		// The state is poisoned: the offset says everything landed but the
		// hash is wrong, so no resume can ever verify. Delete it so a fresh
		// retry of the session starts clean instead of inheriting the
		// corruption.
		s.l.dropSession(s.hdr.Session)
		return s.failed
	}
	s.verified = true
	s.l.dropSession(s.hdr.Session)
	return nil
}

// Verified reports whether the digest trailer matched (only meaningful
// after Read returned io.EOF with digesting enabled).
func (s *ServerConn) Verified() bool { return s.verified }

// Write sends backward-channel bytes toward the initiator.
func (s *ServerConn) Write(p []byte) (int, error) { return s.nc.Write(p) }

// Close tears the sublink down. Session state is retained for resumption
// unless the stream completed.
func (s *ServerConn) Close() error { return s.nc.Close() }

// RemoteAddr returns the upstream hop's address.
func (s *ServerConn) RemoteAddr() net.Addr { return s.nc.RemoteAddr() }

// Package core implements the Logistical Session Layer endpoints over real
// TCP: Dial opens a session across a loose source route of depots, Listen
// accepts sessions at the target. The interface deliberately mirrors the
// socket idiom the paper describes ("a similar programming interface to
// that provided by the Unix socket abstraction"): a session behaves like a
// net.Conn, but the conversation may be carried by multiple cascaded
// transport connections and survives their replacement (resume).
//
// Protocol flow (synchronous mode):
//
//	initiator            depot(s)                target
//	   |--- TCP connect --->|                        |
//	   |--- OpenHeader ---->|--- TCP connect ------->|
//	   |                    |--- OpenHeader(hop+1)-->|
//	   |<-- AcceptFrame ----|<-- AcceptFrame --------|
//	   |=== payload ======> |=== payload ==========> |
//	   |--- MD5 trailer --->|----------------------->| verify
//
// Everything rides ordinary TCP streams; depots relay bytes in both
// directions, so the accept frame and any application replies flow
// backward through the same cascade.
package core

import (
	"context"
	"crypto/md5"
	"errors"
	"fmt"
	"hash"
	"io"
	"net"
	"time"

	"lsl/internal/mux"
	"lsl/internal/sockopt"
	"lsl/internal/wire"
	"lsl/internal/xfer"
)

// Errors surfaced by the session layer.
var (
	ErrRejected       = errors.New("lsl: session rejected")
	ErrDigestMismatch = errors.New("lsl: end-to-end MD5 digest mismatch")
	ErrClosedWrite    = errors.New("lsl: write after CloseWrite")
	ErrNeedLength     = errors.New("lsl: digest requires a known content length")
)

// DialError reports a failure to establish the session's first transport
// connection; Hop names the address that could not be reached. Resilient
// callers (internal/resilience) use errors.As to tell a dead first hop —
// a candidate for route failover — from an in-session failure.
type DialError struct {
	Hop string
	Err error
}

func (e *DialError) Error() string { return fmt.Sprintf("lsl: dial first hop %s: %v", e.Hop, e.Err) }

// Unwrap exposes the transport error for errors.Is chains.
func (e *DialError) Unwrap() error { return e.Err }

// Route is a loose source route: the depots to traverse, in order, then
// the final target.
type Route struct {
	Via    []string
	Target string
}

// Hops returns the full hop list including the target.
func (r Route) Hops() []string {
	out := make([]string, 0, len(r.Via)+1)
	out = append(out, r.Via...)
	out = append(out, r.Target)
	return out
}

// Validate checks the route against protocol limits.
func (r Route) Validate() error {
	if r.Target == "" {
		return fmt.Errorf("lsl: route has no target")
	}
	h := &wire.OpenHeader{Route: r.Hops()}
	return h.Validate()
}

// Dialer matches net.Dialer.DialContext, injectable for tests and for the
// WAN emulator.
type Dialer func(ctx context.Context, network, addr string) (net.Conn, error)

// Options tune a session.
type Options struct {
	// Digest enables the end-to-end MD5 trailer. Requires ContentLength.
	Digest bool
	// ContentLength declares the payload size; <0 means unknown (stream).
	ContentLength int64
	// Eager streams payload without waiting for the end-to-end accept
	// (the cascade absorbs data while the tail is still dialing).
	Eager bool
	// Session forces a session ID (used with Resume); zero means random.
	Session wire.SessionID
	// Resume asks the target to report its received offset; the caller
	// continues from there (see Conn.Offset and SendReader).
	Resume bool
	// Staged asks the first depot to take custody of the payload and
	// deliver it asynchronously (the receiver need not be reachable while
	// the initiator uploads). Requires ContentLength and at least one
	// depot in the route.
	Staged bool
	// HandshakeTimeout bounds header/accept exchanges (default 15s).
	HandshakeTimeout time.Duration
	// Dial overrides the transport dialer.
	Dial Dialer
	// Pool, when set, carries the session's first sublink as a stream on
	// a warm trunk to the first hop (see internal/mux): no TCP handshake
	// and no cold congestion window when a trunk is already open. Peers
	// that do not speak the trunk protocol transparently fall back to a
	// per-session connection.
	Pool *mux.Pool
	// SockSndBuf/SockRcvBuf override SO_SNDBUF/SO_RCVBUF on the first
	// sublink when it is a direct TCP connection (the paper's §V
	// hand-tuning); zero keeps kernel defaults. Trunk connections take
	// their sizes from the pool's own config.
	SockSndBuf int
	SockRcvBuf int
}

// Option mutates Options.
type Option func(*Options)

// WithDigest enables end-to-end MD5 verification.
func WithDigest() Option { return func(o *Options) { o.Digest = true } }

// WithContentLength declares the payload size in bytes.
func WithContentLength(n int64) Option { return func(o *Options) { o.ContentLength = n } }

// WithEager disables the synchronous end-to-end accept wait.
func WithEager() Option { return func(o *Options) { o.Eager = true } }

// WithSession pins the session identifier (for resumption).
func WithSession(id wire.SessionID) Option { return func(o *Options) { o.Session = id } }

// WithResume marks the session as a resumption of an earlier one.
func WithResume() Option { return func(o *Options) { o.Resume = true } }

// WithStaged requests depot custody: the first depot accepts the session,
// stores the complete upload, and delivers it onward asynchronously.
func WithStaged() Option { return func(o *Options) { o.Staged = true } }

// WithHandshakeTimeout bounds the session handshake.
func WithHandshakeTimeout(d time.Duration) Option {
	return func(o *Options) { o.HandshakeTimeout = d }
}

// WithDialer injects a transport dialer (tests, emulation).
func WithDialer(d Dialer) Option { return func(o *Options) { o.Dial = d } }

// WithMux rides the session over p's warm trunk to the first hop instead
// of a fresh per-session TCP connection (falling back transparently when
// the hop does not speak the trunk protocol).
func WithMux(p *mux.Pool) Option { return func(o *Options) { o.Pool = p } }

// WithSocketBuffers overrides SO_SNDBUF/SO_RCVBUF on the session's first
// sublink (zero keeps the kernel default for that direction). TCP_NODELAY
// is always set on direct sublinks regardless of this option.
func WithSocketBuffers(snd, rcv int) Option {
	return func(o *Options) { o.SockSndBuf, o.SockRcvBuf = snd, rcv }
}

func buildOptions(opts []Option) Options {
	o := Options{ContentLength: -1, HandshakeTimeout: 15 * time.Second}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// closeWriter is implemented by *net.TCPConn and by the emulator's conns.
type closeWriter interface{ CloseWrite() error }

// Conn is the initiator's end of a session.
type Conn struct {
	nc   net.Conn
	id   wire.SessionID
	opts Options

	hash        hash.Hash
	written     int64
	startOffset int64
	wclosed     bool
	// pending is the encoded open header staged for coalescing with the
	// first payload write (eager sessions only; nil once flushed).
	pending []byte

	// dialDur and acceptDur time the first-hop transport dial and the
	// end-to-end accept round trip — the raw RTT observations the live
	// logistics planner (internal/logistics) feeds into its forecasters.
	dialDur   time.Duration
	acceptDur time.Duration
}

// Dial opens a session along route. With Options.Eager unset it blocks
// until the end-to-end accept returns through the cascade.
func Dial(ctx context.Context, route Route, opts ...Option) (*Conn, error) {
	o := buildOptions(opts)
	if err := route.Validate(); err != nil {
		return nil, err
	}
	if o.Digest && o.ContentLength < 0 {
		return nil, ErrNeedLength
	}
	if o.Staged {
		if o.ContentLength < 0 {
			return nil, ErrNeedLength
		}
		if len(route.Via) == 0 {
			return nil, fmt.Errorf("lsl: staged sessions need at least one depot")
		}
	}
	dial := o.Dial
	if dial == nil {
		var d net.Dialer
		dial = d.DialContext
	}
	hops := route.Hops()
	var nc net.Conn
	var err error
	dialStart := time.Now()
	if o.Pool != nil {
		// Warm trunk when available: no TCP handshake, no cold congestion
		// window. The pool falls back to a classic connection for
		// non-trunk peers on its own.
		nc, err = o.Pool.DialContext(ctx, "tcp", hops[0])
	} else {
		nc, err = dial(ctx, "tcp", hops[0])
		if err == nil {
			sockopt.Tune(nc, o.SockSndBuf, o.SockRcvBuf)
		}
	}
	dialDur := time.Since(dialStart)
	if err != nil {
		return nil, &DialError{Hop: hops[0], Err: err}
	}
	id := o.Session
	if id == (wire.SessionID{}) {
		id = wire.NewSessionID()
	}
	var flags uint16
	if o.Digest {
		flags |= wire.FlagDigest
	}
	if o.Resume {
		flags |= wire.FlagResume
	}
	if o.Eager {
		flags |= wire.FlagEager
	}
	if o.Staged {
		flags |= wire.FlagStaged
	}
	contentLen := wire.UnknownLength
	if o.ContentLength >= 0 {
		contentLen = uint64(o.ContentLength)
	}
	hdr := &wire.OpenHeader{
		Flags:      flags,
		Session:    id,
		HopIndex:   0,
		Route:      hops,
		ContentLen: contentLen,
	}
	enc, err := hdr.Encode()
	if err != nil {
		nc.Close()
		return nil, err
	}
	deadline := time.Now().Add(o.HandshakeTimeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	nc.SetDeadline(deadline)
	c := &Conn{nc: nc, id: id, opts: o, dialDur: dialDur}
	if o.Digest {
		c.hash = md5.New()
	}
	if o.Eager {
		// Stage the header instead of writing it now: the first payload
		// Write coalesces it into one segment (net.Buffers), so an eager
		// session open is one packet, not a tiny header packet followed
		// by a delayed-ACK stall before the payload.
		c.pending = enc
	} else if _, err := nc.Write(enc); err != nil {
		nc.Close()
		return nil, fmt.Errorf("lsl: send header: %w", err)
	}
	if !o.Eager {
		acceptStart := time.Now()
		acc, err := wire.ReadAcceptFrame(nc)
		c.acceptDur = time.Since(acceptStart)
		if err != nil {
			nc.Close()
			return nil, fmt.Errorf("lsl: waiting for session accept: %w", err)
		}
		if acc.Session != id {
			nc.Close()
			return nil, fmt.Errorf("lsl: accept for wrong session %s", acc.Session)
		}
		if acc.Code != wire.CodeOK {
			nc.Close()
			return nil, fmt.Errorf("%w: %s", ErrRejected, wire.CodeString(acc.Code))
		}
		c.startOffset = int64(acc.Offset)
	}
	nc.SetDeadline(time.Time{})
	return c, nil
}

// SessionID returns the 128-bit session identifier.
func (c *Conn) SessionID() wire.SessionID { return c.id }

// Offset returns the target's already-received byte count reported in the
// accept (non-zero only for resumed sessions).
func (c *Conn) Offset() int64 { return c.startOffset }

// DialDuration returns how long the first-hop transport dial took — a
// first-hop RTT proxy the logistics planner folds into its forecasts.
func (c *Conn) DialDuration() time.Duration { return c.dialDur }

// AcceptDuration returns how long the end-to-end accept took to return
// through the cascade after the open header was sent (zero for eager
// sessions, which never wait for it).
func (c *Conn) AcceptDuration() time.Duration { return c.acceptDur }

// Written returns the session's logical stream position: bytes written on
// this sublink plus, after SendReader on a resumed session, the prefix the
// target had already confirmed.
func (c *Conn) Written() int64 { return c.written }

// Write sends payload bytes toward the target. The first write of an
// eager session carries the staged open header in the same segment
// (writev via net.Buffers), so a session open plus its first payload
// bytes cost one packet on the wire.
func (c *Conn) Write(p []byte) (int, error) {
	if c.wclosed {
		return 0, ErrClosedWrite
	}
	var n int
	var err error
	if c.pending != nil {
		n, err = c.writeCoalesced(p)
	} else {
		n, err = c.nc.Write(p)
	}
	if n > 0 {
		if c.hash != nil {
			c.hash.Write(p[:n])
		}
		c.written += int64(n)
	}
	return n, err
}

// writeCoalesced sends the staged open header and p as one gathered
// write, returning the count of payload bytes (header excluded).
func (c *Conn) writeCoalesced(p []byte) (int, error) {
	hdrLen := len(c.pending)
	bufs := net.Buffers{c.pending, p}
	total, err := bufs.WriteTo(c.nc)
	c.pending = nil // one shot: a partial write means a dead transport
	n := int(total) - hdrLen
	if n < 0 {
		n = 0
	}
	return n, err
}

// flushPending writes the staged header on its own (an eager session
// that reads or half-closes before its first payload write).
func (c *Conn) flushPending() error {
	if c.pending == nil {
		return nil
	}
	enc := c.pending
	c.pending = nil
	if _, err := c.nc.Write(enc); err != nil {
		return fmt.Errorf("lsl: send header: %w", err)
	}
	return nil
}

// Read receives backward-channel bytes from the target.
func (c *Conn) Read(p []byte) (int, error) {
	if err := c.flushPending(); err != nil {
		return 0, err
	}
	return c.nc.Read(p)
}

// CloseWrite finishes the forward stream: it appends the MD5 trailer when
// digesting and half-closes the transport so EOF propagates through the
// cascade.
func (c *Conn) CloseWrite() error {
	if c.wclosed {
		return nil
	}
	c.wclosed = true
	if err := c.flushPending(); err != nil {
		return err
	}
	if c.hash != nil {
		if _, err := c.nc.Write(c.hash.Sum(nil)); err != nil {
			return fmt.Errorf("lsl: send digest trailer: %w", err)
		}
	}
	if cw, ok := c.nc.(closeWriter); ok {
		return cw.CloseWrite()
	}
	return nil
}

// AwaitCustody blocks until the first depot confirms the staged payload
// is in its custody (the CodeCustody frame the depot sends after it has
// the complete payload — durably journaled when it runs with a custody
// write-ahead state dir). Call it after CloseWrite on a staged session:
// once AwaitCustody returns nil the initiator may discard its copy, as
// the payload survives a depot crash and redelivers after restart.
// Returns an error for non-staged sessions, rejections, or a depot that
// dies before committing.
func (c *Conn) AwaitCustody() error {
	if !c.opts.Staged {
		return errors.New("lsl: AwaitCustody on a non-staged session")
	}
	if err := c.flushPending(); err != nil {
		return err
	}
	c.nc.SetReadDeadline(time.Now().Add(c.opts.HandshakeTimeout))
	defer c.nc.SetReadDeadline(time.Time{})
	acc, err := wire.ReadAcceptFrame(c.nc)
	if err != nil {
		return fmt.Errorf("lsl: waiting for custody commit: %w", err)
	}
	if acc.Session != c.id {
		return fmt.Errorf("lsl: custody commit for wrong session %s", acc.Session)
	}
	if acc.Code != wire.CodeCustody {
		return fmt.Errorf("%w: %s", ErrRejected, wire.CodeString(acc.Code))
	}
	return nil
}

// Close tears the session's first sublink down.
func (c *Conn) Close() error { return c.nc.Close() }

// LocalAddr implements net.Conn-style addressing.
func (c *Conn) LocalAddr() net.Addr { return c.nc.LocalAddr() }

// RemoteAddr returns the first hop's address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// SetDeadline applies to the underlying first sublink.
func (c *Conn) SetDeadline(t time.Time) error { return c.nc.SetDeadline(t) }

// sendBufferSize is the SendReader copy buffer — the same default size
// class the depot relay uses, so both ends share one buffer pool.
const sendBufferSize = 256 << 10

// SendReader streams size bytes from r (which must match the session's
// ContentLength when digesting), honoring a resume offset: it seeks to the
// target's confirmed offset and, when digesting, re-hashes the skipped
// prefix so the end-to-end digest still covers the complete stream. It
// finishes with CloseWrite. The copy runs through the pooled data plane
// (internal/xfer), so repeated sends perform no buffer allocation.
func (c *Conn) SendReader(r io.ReadSeeker) error {
	if c.startOffset > 0 {
		if c.hash != nil {
			if _, err := r.Seek(0, io.SeekStart); err != nil {
				return err
			}
			if _, err := io.CopyN(c.hash, r, c.startOffset); err != nil {
				return fmt.Errorf("lsl: rehash resumed prefix: %w", err)
			}
		} else if _, err := r.Seek(c.startOffset, io.SeekStart); err != nil {
			return err
		}
		// The skipped prefix counts as written stream position either way,
		// so Written reports the logical offset, not just this sublink's
		// bytes.
		c.written = c.startOffset
	}
	if _, err := xfer.CopyCounted(c, r, xfer.PoolFor(sendBufferSize), xfer.CopyConfig{}); err != nil {
		return err
	}
	return c.CloseWrite()
}

package core_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"lsl/internal/core"
	"lsl/internal/depot"
	"lsl/internal/wire"
)

func TestDialHandshakeTimeoutAgainstSilentPeer(t *testing.T) {
	// A listener that accepts but never speaks LSL: Dial must give up
	// within the handshake timeout rather than hanging.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			_ = nc // hold it open silently
		}
	}()
	start := time.Now()
	_, err = core.Dial(context.Background(), core.Route{Target: ln.Addr().String()},
		core.WithHandshakeTimeout(500*time.Millisecond))
	if err == nil {
		t.Fatal("dial should fail against a silent peer")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout not honored")
	}
}

func TestDialContextDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			if nc, err := ln.Accept(); err == nil {
				_ = nc
			} else {
				return
			}
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = core.Dial(ctx, core.Route{Target: ln.Addr().String()})
	if err == nil || time.Since(start) > 5*time.Second {
		t.Fatalf("context deadline ignored: err=%v", err)
	}
}

func TestSendReaderFreshSession(t *testing.T) {
	payload := randBytes(150_000, 77)
	done := make(chan bool, 1)
	addr, _ := startTarget(t, func(sc *core.ServerConn) {
		defer sc.Close()
		_, err := io.Copy(io.Discard, sc)
		done <- err == nil && sc.Verified()
	})
	c, err := core.Dial(context.Background(), core.Route{Target: addr},
		core.WithDigest(), core.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SendReader(bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("stream not verified")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestTruncatedStreamDetected(t *testing.T) {
	// Initiator declares 1000 bytes, sends 500, closes: the target must
	// report truncation, not silently accept.
	errs := make(chan error, 1)
	addr, _ := startTarget(t, func(sc *core.ServerConn) {
		defer sc.Close()
		_, err := io.Copy(io.Discard, sc)
		errs <- err
	})
	c, err := core.Dial(context.Background(), core.Route{Target: addr},
		core.WithDigest(), core.WithContentLength(1000))
	if err != nil {
		t.Fatal(err)
	}
	c.Write(make([]byte, 500))
	c.Close() // abort without trailer
	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("truncation not detected")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestResumeWithoutPriorSessionStartsAtZero(t *testing.T) {
	addr, _, _ := collectTarget(t)
	c, err := core.Dial(context.Background(), core.Route{Target: addr},
		core.WithSession(wire.NewSessionID()), core.WithResume())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Offset() != 0 {
		t.Fatalf("fresh resume offset=%d", c.Offset())
	}
	c.CloseWrite()
}

func TestListenerSessionTableBounded(t *testing.T) {
	l, err := core.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.MaxSessions = 4
	go func() {
		for {
			sc, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				// Hold sessions open un-finished so their resumable state
				// stays in the table.
				time.Sleep(2 * time.Second)
				sc.Close()
			}()
		}
	}()
	// Open more resumable sessions than the table admits; all must work.
	for i := 0; i < 10; i++ {
		c, err := core.Dial(context.Background(), core.Route{Target: l.Addr().String()},
			core.WithResume(), core.WithSession(wire.NewSessionID()))
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		c.Write([]byte("x"))
		c.Close()
	}
}

func TestDepotChainPartialFailureSurfacesAsRejection(t *testing.T) {
	// depot1 -> depot2 where depot2 is down: the rejection must propagate
	// back to the initiator through depot1.
	d2ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := d2ln.Addr().String()
	d2ln.Close() // now nothing listens there

	d1ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d1 := depot.New(depot.Config{DialTimeout: time.Second})
	go d1.Serve(d1ln)
	defer d1.Close()

	_, err = core.Dial(context.Background(),
		core.Route{Via: []string{d1ln.Addr().String(), deadAddr}, Target: "127.0.0.1:1"},
		core.WithHandshakeTimeout(5*time.Second))
	if !errors.Is(err, core.ErrRejected) {
		t.Fatalf("want rejection through the chain, got %v", err)
	}
}

func TestRouteHopLimitEnforced(t *testing.T) {
	route := core.Route{Target: "t:1"}
	for i := 0; i < wire.MaxRouteEntries; i++ {
		route.Via = append(route.Via, "d:1")
	}
	if err := route.Validate(); err == nil {
		t.Fatal("oversized route accepted")
	}
}

func TestLargeTransferThroughDepotLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("moves 32MB through loopback")
	}
	addr, _ := startTarget(t, func(sc *core.ServerConn) {
		defer sc.Close()
		io.Copy(io.Discard, sc)
	})
	dep, d := startDepot(t, depot.Config{})
	payload := randBytes(32<<20, 5)
	c, err := core.Dial(context.Background(),
		core.Route{Via: []string{dep}, Target: addr},
		core.WithDigest(), core.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for d.Stats().BytesForward < uint64(len(payload)) && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if got := d.Stats().BytesForward; got < uint64(len(payload)) {
		t.Fatalf("depot forwarded %d of %d", got, len(payload))
	}
}

package core_test

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"lsl/internal/core"
	"lsl/internal/depot"
	"lsl/internal/faultnet"
	"lsl/internal/wire"
)

// deadAddr reserves a port and releases it, yielding an address that
// refuses connections.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestDialRefusedFirstHopIsDialError(t *testing.T) {
	fn := faultnet.New(nil)
	dead := deadAddr(t)
	fn.Script(dead, faultnet.Step{RefuseDial: true})

	_, err := core.Dial(context.Background(),
		core.Route{Via: []string{dead}, Target: "127.0.0.1:9"},
		core.WithDialer(fn.DialContext), core.WithEager(),
		core.WithContentLength(4))
	if err == nil {
		t.Fatal("dial against a refusing depot succeeded")
	}
	var de *core.DialError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v (%T), want *core.DialError", err, err)
	}
	if de.Hop != dead {
		t.Fatalf("DialError.Hop = %q, want %q", de.Hop, dead)
	}
	if !errors.Is(err, faultnet.ErrDialRefused) {
		t.Fatalf("err = %v, want to unwrap to faultnet.ErrDialRefused", err)
	}
	if fn.Dials(dead) != 1 {
		t.Fatalf("dials = %d, want 1", fn.Dials(dead))
	}
}

func TestEagerDialAgainstRejectingCascade(t *testing.T) {
	// The depot is up but its next hop refuses connections. Eager mode
	// means Dial returns before the cascade has finished dialing — the
	// rejection must then surface on the backward channel instead of
	// hanging the initiator.
	dep, _ := startDepot(t, depot.Config{DialTimeout: 2 * time.Second})
	payload := randBytes(10_000, 50)
	c, err := core.Dial(context.Background(),
		core.Route{Via: []string{dep}, Target: deadAddr(t)},
		core.WithEager(), core.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatalf("eager dial must succeed before the cascade resolves: %v", err)
	}
	defer c.Close()

	// The depot absorbs some payload while dialing, then rejects. The
	// reject frame arrives on the backward channel.
	c.SetDeadline(time.Now().Add(10 * time.Second))
	c.Write(payload)
	c.CloseWrite()
	acc, err := wire.ReadAcceptFrame(c)
	if err != nil {
		t.Fatalf("reading reject frame from cascade: %v", err)
	}
	if acc.Code != wire.CodeRejectRoute {
		t.Fatalf("accept code = %s, want %s",
			wire.CodeString(acc.Code), wire.CodeString(wire.CodeRejectRoute))
	}
	if acc.Session != c.SessionID() {
		t.Fatal("reject frame names the wrong session")
	}
}

func TestEagerWritesFailFastOnCrashingCascade(t *testing.T) {
	// The first hop resets mid-stream (a crashing depot, injected
	// deterministically). Eager writes must surface the reset as an
	// error promptly rather than blocking or silently dropping bytes.
	addr, _, _ := collectTarget(t)
	fn := faultnet.New(nil)
	const resetAt = 64 << 10
	fn.Script(addr, faultnet.Step{ResetAfterBytes: resetAt})

	payload := randBytes(1<<20, 51)
	c, err := core.Dial(context.Background(), core.Route{Target: addr},
		core.WithDialer(fn.DialContext), core.WithEager(),
		core.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	written, start := 0, time.Now()
	var werr error
	for written < len(payload) {
		n, err := c.Write(payload[written:])
		written += n
		if err != nil {
			werr = err
			break
		}
	}
	if werr == nil {
		t.Fatal("writes past the injected reset never failed")
	}
	if !errors.Is(werr, faultnet.ErrReset) {
		t.Fatalf("write error = %v, want faultnet.ErrReset", werr)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("reset took %v to surface", elapsed)
	}
	// The wrapper delivers exactly the scripted prefix before resetting:
	// the session header plus resetAt bytes minus what the header used.
	if written >= len(payload) || written == 0 {
		t.Fatalf("written = %d of %d, want a strict mid-stream prefix", written, len(payload))
	}
	if fn.Resets() != 1 {
		t.Fatalf("resets = %d, want 1", fn.Resets())
	}
}

func TestEagerDialRefusedMidCascadeDoesNotHang(t *testing.T) {
	// Two depots; the second is scripted dead for every dial. The first
	// depot's relay must reject the session (its dial to the next hop
	// fails) and tear the sublink down so the eager initiator's drain
	// unblocks — no stuck goroutines, no indefinite hang.
	dead := deadAddr(t)
	dep, d := startDepot(t, depot.Config{DialTimeout: 2 * time.Second})
	payload := randBytes(10_000, 52)
	c, err := core.Dial(context.Background(),
		core.Route{Via: []string{dep, dead}, Target: "127.0.0.1:9"},
		core.WithEager(), core.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(10 * time.Second))
	c.Write(payload)
	c.CloseWrite()
	// Drain the backward channel: the rejection unwinds it. EOF or a
	// connection error are both fine (the depot may RST while the eager
	// payload is still in flight) — what must not happen is a hang, which
	// the deadline above converts into a timeout error we can detect.
	if _, err := io.Copy(io.Discard, c); err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			t.Fatalf("backward drain hung until the deadline: %v", err)
		}
	}
	if d.Stats().DialFailures == 0 {
		t.Fatal("depot recorded no next-hop dial failures")
	}
}

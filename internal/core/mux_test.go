package core_test

import (
	"bytes"
	"context"
	"crypto/md5"
	"io"
	"net"
	"testing"
	"time"

	"lsl/internal/core"
	"lsl/internal/depot"
	"lsl/internal/mux"
	"lsl/internal/wire"
)

// TestEagerFirstWriteCarriesHeader proves the eager dial stages the open
// header and the first payload write delivers header, payload, and digest
// trailer in order with correct accounting.
func TestEagerFirstWriteCarriesHeader(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type serverResult struct {
		hdr     *wire.OpenHeader
		body    []byte
		trailer []byte
		err     error
	}
	done := make(chan serverResult, 1)
	payload := randBytes(100_000, 42)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			done <- serverResult{err: err}
			return
		}
		defer nc.Close()
		var r serverResult
		r.hdr, r.err = wire.ReadOpenHeader(nc)
		if r.err != nil {
			done <- r
			return
		}
		r.body = make([]byte, len(payload))
		if _, r.err = io.ReadFull(nc, r.body); r.err != nil {
			done <- r
			return
		}
		r.trailer = make([]byte, wire.DigestLen)
		_, r.err = io.ReadFull(nc, r.trailer)
		done <- r
	}()

	c, err := core.Dial(context.Background(),
		core.Route{Target: ln.Addr().String()},
		core.WithEager(), core.WithDigest(),
		core.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n, err := c.Write(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Written counts payload only — the coalesced header must not inflate
	// the stream position (resume offsets depend on it).
	if n != len(payload) || c.Written() != int64(len(payload)) {
		t.Fatalf("write accounting: n=%d written=%d, want %d", n, c.Written(), len(payload))
	}
	if err := c.CloseWrite(); err != nil {
		t.Fatal(err)
	}

	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.hdr.Flags&wire.FlagEager == 0 {
		t.Fatal("header lost the eager flag")
	}
	if !bytes.Equal(r.body, payload) {
		t.Fatal("payload corrupted through the coalesced write")
	}
	sum := md5.Sum(payload)
	if !bytes.Equal(r.trailer, sum[:]) {
		t.Fatal("digest trailer mismatch")
	}
}

// TestEagerReadFlushesStagedHeader covers the other first-use path: an
// eager session that reads the backward channel before writing any
// payload must still deliver the open header first.
func TestEagerReadFlushesStagedHeader(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		if _, err := wire.ReadOpenHeader(nc); err != nil {
			return
		}
		nc.Write([]byte("pong"))
	}()

	c, err := core.Dial(context.Background(),
		core.Route{Target: ln.Addr().String()}, core.WithEager())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "pong" {
		t.Fatalf("backward channel read %q", buf)
	}
}

// TestDialWithMuxFallsBackAgainstClassicTarget dials a plain session
// target through a link pool: the probe fails, the pool falls back to a
// classic connection, and the session works end to end with no trunk
// left behind.
func TestDialWithMuxFallsBackAgainstClassicTarget(t *testing.T) {
	addr, got, errs := collectTarget(t)
	pool := mux.NewPool(mux.PoolConfig{Logf: t.Logf})
	defer pool.Close()

	payload := randBytes(64_000, 7)
	c, err := core.Dial(context.Background(), core.Route{Target: addr},
		core.WithMux(pool), core.WithDigest(),
		core.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-got:
		if !bytes.Equal(data, payload) {
			t.Fatal("payload mismatch")
		}
	case err := <-errs:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
	if pool.Links() != 0 {
		t.Fatalf("pool kept %d trunks to a classic target", pool.Links())
	}
}

// TestDialWithMuxEagerThroughDepot combines the two new dial paths: an
// eager session with a staged header, over a multiplexed stream from the
// pool, relayed by a mux depot — digest verified at the target.
func TestDialWithMuxEagerThroughDepot(t *testing.T) {
	addr, got, errs := collectTarget(t)
	dep, _ := startDepot(t, depot.Config{Mux: true})
	pool := mux.NewPool(mux.PoolConfig{Logf: t.Logf})
	defer pool.Close()

	payload := randBytes(500_000, 8)
	for i := 0; i < 2; i++ {
		c, err := core.Dial(context.Background(),
			core.Route{Via: []string{dep}, Target: addr},
			core.WithMux(pool), core.WithEager(), core.WithDigest(),
			core.WithContentLength(int64(len(payload))))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(payload); err != nil {
			t.Fatal(err)
		}
		if err := c.CloseWrite(); err != nil {
			t.Fatal(err)
		}
		select {
		case data := <-got:
			if !bytes.Equal(data, payload) {
				t.Fatal("payload mismatch")
			}
		case err := <-errs:
			t.Fatal(err)
		case <-time.After(10 * time.Second):
			t.Fatal("timeout")
		}
		c.Close()
	}
	if pool.Links() != 1 {
		t.Fatalf("pool holds %d trunks to the depot, want 1 warm trunk", pool.Links())
	}
}

package core_test

import (
	"bytes"
	"context"
	"io"
	"testing"
	"time"

	"lsl/internal/core"
	"lsl/internal/wire"
)

// interrupt opens a resumable digested session, writes part of the
// payload, and kills the transport, leaving resume state at the target.
func interrupt(t *testing.T, addr string, payload []byte) wire.SessionID {
	t.Helper()
	id := wire.NewSessionID()
	c, err := core.Dial(context.Background(), core.Route{Target: addr},
		core.WithDigest(), core.WithContentLength(int64(len(payload))),
		core.WithSession(id), core.WithResume())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(payload[:len(payload)/2]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the bytes land and be counted
	c.Close()
	return id
}

// waitStates polls until the listener's resume table reaches want.
func waitStates(t *testing.T, l *core.Listener, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if l.ResumeStates() == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("resume table stuck at %d states, want %d", l.ResumeStates(), want)
}

func TestResumeTableEvictsByTTL(t *testing.T) {
	addr, l := startTarget(t, func(sc *core.ServerConn) {
		io.Copy(io.Discard, sc)
		sc.Close()
	})
	// The TTL must comfortably exceed the time to set up all three
	// interrupted sessions, or the sweep riding their own handshakes
	// evicts the early ones before the assertion.
	l.SessionTTL = 400 * time.Millisecond

	payload := randBytes(10_000, 40)
	for i := 0; i < 3; i++ {
		interrupt(t, addr, payload)
	}
	waitStates(t, l, 3)

	// Age every entry past the TTL, then trigger a sweep with a fresh
	// handshake: the stale three must go; the new session completes and
	// deletes itself, leaving an empty table.
	time.Sleep(500 * time.Millisecond)
	c, err := core.Dial(context.Background(), core.Route{Target: addr},
		core.WithContentLength(4))
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("ping"))
	c.CloseWrite()
	io.Copy(io.Discard, c) // wait for the target to finish the stream
	c.Close()
	waitStates(t, l, 0)
}

func TestStaleEntriesDoNotBlockResumableSessions(t *testing.T) {
	// The regression this guards: with no TTL, MaxSessions stale entries
	// would evict each other one-at-a-time but the table stays full of
	// zombies; with the sweep, a full table of expired entries clears in
	// one handshake.
	addr, l := startTarget(t, func(sc *core.ServerConn) {
		io.Copy(io.Discard, sc)
		sc.Close()
	})
	l.MaxSessions = 4
	l.SessionTTL = 500 * time.Millisecond

	payload := randBytes(10_000, 41)
	for i := 0; i < 4; i++ {
		interrupt(t, addr, payload)
	}
	waitStates(t, l, 4)
	time.Sleep(600 * time.Millisecond)

	// A new resumable session must get a slot and, after interruption,
	// still find its own state there (the zombies are gone, not it).
	id := interrupt(t, addr, payload)
	waitStates(t, l, 1)

	c, err := core.Dial(context.Background(), core.Route{Target: addr},
		core.WithDigest(), core.WithContentLength(int64(len(payload))),
		core.WithSession(id), core.WithResume())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Offset() <= 0 {
		t.Fatalf("resume offset %d: the fresh session's state was evicted instead of the zombies", c.Offset())
	}
	if err := c.SendReader(bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	// Completion must delete the entry without waiting for the TTL.
	waitStates(t, l, 0)
}

func TestCompletedSessionDeletesStateImmediately(t *testing.T) {
	addr, l := startTarget(t, func(sc *core.ServerConn) {
		io.Copy(io.Discard, sc)
		sc.Close()
	})
	l.SessionTTL = time.Hour // only the completion-time delete can clear it

	payload := randBytes(50_000, 42)
	c, err := core.Dial(context.Background(), core.Route{Target: addr},
		core.WithDigest(), core.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	c.Write(payload)
	c.CloseWrite()
	io.Copy(io.Discard, c)
	c.Close()
	waitStates(t, l, 0)
}

package core_test

import (
	"bytes"
	"context"
	"crypto/md5"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"lsl/internal/core"
	"lsl/internal/depot"
	"lsl/internal/wire"
)

// startDepot launches a depot on loopback and returns its address.
func startDepot(t *testing.T, cfg depot.Config) (addr string, d *depot.Depot) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d = depot.New(cfg)
	go d.Serve(ln)
	t.Cleanup(func() { d.Close() })
	return ln.Addr().String(), d
}

// startTarget launches an LSL listener whose accepted sessions are handed
// to fn on a goroutine.
func startTarget(t *testing.T, fn func(*core.ServerConn)) (addr string, l *core.Listener) {
	t.Helper()
	l, err := core.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			sc, err := l.Accept()
			if err != nil {
				return
			}
			go fn(sc)
		}
	}()
	t.Cleanup(func() { l.Close() })
	return l.Addr().String(), l
}

func randBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// echoTarget collects the payload and reports it on a channel.
func collectTarget(t *testing.T) (addr string, got chan []byte, errs chan error) {
	got = make(chan []byte, 4)
	errs = make(chan error, 4)
	addr, _ = startTarget(t, func(sc *core.ServerConn) {
		defer sc.Close()
		data, err := io.ReadAll(sc)
		if err != nil {
			errs <- err
			return
		}
		got <- data
	})
	return
}

func TestDirectSessionNoDepot(t *testing.T) {
	addr, got, errs := collectTarget(t)
	payload := randBytes(100_000, 1)
	c, err := core.Dial(context.Background(), core.Route{Target: addr},
		core.WithDigest(), core.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-got:
		if !bytes.Equal(data, payload) {
			t.Fatal("payload mismatch")
		}
	case err := <-errs:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
	c.Close()
}

func TestSingleDepotSession(t *testing.T) {
	addr, got, errs := collectTarget(t)
	dep, _ := startDepot(t, depot.Config{})
	payload := randBytes(1<<20, 2)
	c, err := core.Dial(context.Background(),
		core.Route{Via: []string{dep}, Target: addr},
		core.WithDigest(), core.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	c.CloseWrite()
	select {
	case data := <-got:
		if !bytes.Equal(data, payload) {
			t.Fatal("payload mismatch through depot")
		}
	case err := <-errs:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("timeout")
	}
	c.Close()
}

func TestThreeDepotCascade(t *testing.T) {
	addr, got, errs := collectTarget(t)
	d1, _ := startDepot(t, depot.Config{})
	d2, _ := startDepot(t, depot.Config{})
	d3, _ := startDepot(t, depot.Config{})
	payload := randBytes(512_000, 3)
	c, err := core.Dial(context.Background(),
		core.Route{Via: []string{d1, d2, d3}, Target: addr},
		core.WithDigest(), core.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	c.Write(payload)
	c.CloseWrite()
	select {
	case data := <-got:
		if !bytes.Equal(data, payload) {
			t.Fatal("payload mismatch through 3-depot cascade")
		}
	case err := <-errs:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("timeout")
	}
	c.Close()
}

func TestDigestDetectsCorruption(t *testing.T) {
	// A corrupting "depot" flips one payload byte; the target must detect
	// the end-to-end digest mismatch even though every TCP hop was clean.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	targetAddr, _, errs := collectTarget(t)
	go func() {
		up, err := ln.Accept()
		if err != nil {
			return
		}
		hdr, err := wire.ReadOpenHeader(up)
		if err != nil {
			up.Close()
			return
		}
		next, _ := hdr.NextHop()
		down, err := net.Dial("tcp", next)
		if err != nil {
			up.Close()
			return
		}
		hdr.HopIndex++
		enc, _ := hdr.Encode()
		down.Write(enc)
		go io.Copy(up, down)
		// Corrupt the 1000th payload byte.
		buf := make([]byte, 4096)
		var seen int
		for {
			n, err := up.Read(buf)
			if n > 0 {
				if seen <= 1000 && seen+n > 1000 {
					buf[1000-seen] ^= 0xFF
				}
				seen += n
				down.Write(buf[:n])
			}
			if err != nil {
				if tc, ok := down.(*net.TCPConn); ok {
					tc.CloseWrite()
				}
				return
			}
		}
	}()

	payload := randBytes(100_000, 4)
	c, err := core.Dial(context.Background(),
		core.Route{Via: []string{ln.Addr().String()}, Target: targetAddr},
		core.WithDigest(), core.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	c.Write(payload)
	c.CloseWrite()
	select {
	case err := <-errs:
		if !errors.Is(err, core.ErrDigestMismatch) {
			t.Fatalf("want digest mismatch, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("corruption not detected")
	}
	c.Close()
}

func TestBackwardChannel(t *testing.T) {
	addr, _ := startTarget(t, func(sc *core.ServerConn) {
		defer sc.Close()
		io.ReadAll(sc)
		sc.Write([]byte("ack-from-target"))
	})
	dep, _ := startDepot(t, depot.Config{})
	payload := []byte("hello across the cascade")
	c, err := core.Dial(context.Background(),
		core.Route{Via: []string{dep}, Target: addr},
		core.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	c.Write(payload)
	c.CloseWrite()
	reply, err := io.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "ack-from-target" {
		t.Fatalf("reply=%q", reply)
	}
	c.Close()
}

func TestSessionIDPropagates(t *testing.T) {
	ids := make(chan wire.SessionID, 1)
	addr, _ := startTarget(t, func(sc *core.ServerConn) {
		ids <- sc.SessionID()
		io.ReadAll(sc)
		sc.Close()
	})
	dep, _ := startDepot(t, depot.Config{})
	c, err := core.Dial(context.Background(), core.Route{Via: []string{dep}, Target: addr})
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("x"))
	c.CloseWrite()
	select {
	case id := <-ids:
		if id != c.SessionID() {
			t.Fatalf("session id mismatch: %s vs %s", id, c.SessionID())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
	c.Close()
}

func TestRouteRecordedAtTarget(t *testing.T) {
	routes := make(chan []string, 1)
	addr, _ := startTarget(t, func(sc *core.ServerConn) {
		routes <- sc.Route()
		io.ReadAll(sc)
		sc.Close()
	})
	dep, _ := startDepot(t, depot.Config{})
	c, err := core.Dial(context.Background(), core.Route{Via: []string{dep}, Target: addr})
	if err != nil {
		t.Fatal(err)
	}
	c.CloseWrite()
	select {
	case r := <-routes:
		if len(r) != 2 || r[0] != dep || r[1] != addr {
			t.Fatalf("route=%v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
	c.Close()
}

func TestDepotBusyRejection(t *testing.T) {
	addr, _ := startTarget(t, func(sc *core.ServerConn) {
		io.Copy(io.Discard, sc)
		sc.Close()
	})
	dep, _ := startDepot(t, depot.Config{MaxSessions: 1})
	// Occupy the only slot with a long-lived session.
	c1, err := core.Dial(context.Background(), core.Route{Via: []string{dep}, Target: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	// The second session must be rejected as busy.
	_, err = core.Dial(context.Background(), core.Route{Via: []string{dep}, Target: addr},
		core.WithHandshakeTimeout(3*time.Second))
	if err == nil || !errors.Is(err, core.ErrRejected) {
		t.Fatalf("want busy rejection, got %v", err)
	}
}

func TestDepotRouteUnreachable(t *testing.T) {
	dep, d := startDepot(t, depot.Config{DialTimeout: time.Second})
	_, err := core.Dial(context.Background(),
		core.Route{Via: []string{dep}, Target: "127.0.0.1:1"}, // nothing listens
		core.WithHandshakeTimeout(5*time.Second))
	if err == nil || !errors.Is(err, core.ErrRejected) {
		t.Fatalf("want route rejection, got %v", err)
	}
	if d.Stats().RejectedRoute == 0 {
		t.Fatal("depot should count the route rejection")
	}
}

func TestTargetRejectsMisroutedHeader(t *testing.T) {
	// A header whose route continues past this listener must be refused.
	l, err := core.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go l.Accept()
	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	hdr := &wire.OpenHeader{
		Session: wire.NewSessionID(),
		Route:   []string{l.Addr().String(), "elsewhere:1"},
	}
	enc, _ := hdr.Encode()
	nc.Write(enc)
	acc, err := wire.ReadAcceptFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Code != wire.CodeRejectRoute {
		t.Fatalf("code=%v", wire.CodeString(acc.Code))
	}
}

func TestEagerDialDoesNotWait(t *testing.T) {
	addr, got, _ := collectTarget(t)
	dep, _ := startDepot(t, depot.Config{})
	payload := randBytes(10_000, 5)
	c, err := core.Dial(context.Background(),
		core.Route{Via: []string{dep}, Target: addr},
		core.WithEager(), core.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	c.Write(payload)
	c.CloseWrite()
	select {
	case data := <-got:
		if !bytes.Equal(data, payload) {
			t.Fatal("eager payload mismatch")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
	c.Close()
}

func TestResumeAfterInterruption(t *testing.T) {
	// The mobility case from the paper's §III: the transport connection
	// dies mid-transfer; the initiator re-dials with the same session ID
	// and continues from the target's confirmed offset, and the end-to-end
	// digest still verifies.
	payload := randBytes(400_000, 6)
	// The first (interrupted) sublink legitimately ends with a truncation
	// error; only a verified completion counts.
	done := make(chan struct{}, 2)
	addr, _ := startTarget(t, func(sc *core.ServerConn) {
		defer sc.Close()
		if _, err := io.Copy(io.Discard, sc); err == nil && sc.Verified() {
			done <- struct{}{}
		}
	})

	id := wire.NewSessionID()
	c1, err := core.Dial(context.Background(), core.Route{Target: addr},
		core.WithDigest(), core.WithContentLength(int64(len(payload))),
		core.WithSession(id), core.WithResume())
	if err != nil {
		t.Fatal(err)
	}
	// Send half, then kill the transport abruptly.
	half := len(payload) / 2
	if _, err := c1.Write(payload[:half]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let bytes land
	c1.Close()
	time.Sleep(100 * time.Millisecond)

	c2, err := core.Dial(context.Background(), core.Route{Target: addr},
		core.WithDigest(), core.WithContentLength(int64(len(payload))),
		core.WithSession(id), core.WithResume())
	if err != nil {
		t.Fatal(err)
	}
	off := c2.Offset()
	if off <= 0 || off > int64(half) {
		t.Fatalf("resume offset %d, want in (0,%d]", off, half)
	}
	if err := c2.SendReader(bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("timeout waiting for verified resumed completion")
	}
	c2.Close()
}

// SendReader on a resumed session without a digest must skip the
// confirmed prefix AND count it as written: Written reports the logical
// stream position, exactly as on the digest path.
func TestSendReaderResumeAccountingWithoutDigest(t *testing.T) {
	payload := randBytes(100_000, 7)
	half := int64(len(payload) / 2)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan []byte, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		hdr, err := wire.ReadOpenHeader(nc)
		if err != nil {
			return
		}
		// Claim half the payload already landed in an earlier sublink.
		nc.Write((&wire.AcceptFrame{Code: wire.CodeOK, Session: hdr.Session, Offset: uint64(half)}).Encode())
		data, _ := io.ReadAll(nc)
		got <- data
	}()
	c, err := core.Dial(context.Background(), core.Route{Target: ln.Addr().String()},
		core.WithResume())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Offset() != half {
		t.Fatalf("offset=%d, want %d", c.Offset(), half)
	}
	if err := c.SendReader(bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-got:
		if !bytes.Equal(data, payload[half:]) {
			t.Fatal("resumed suffix mismatch")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
	if c.Written() != int64(len(payload)) {
		t.Fatalf("Written()=%d, want %d (the confirmed prefix must count)", c.Written(), len(payload))
	}
}

func TestConcurrentSessionsThroughOneDepot(t *testing.T) {
	addr, _ := startTarget(t, func(sc *core.ServerConn) {
		defer sc.Close()
		io.Copy(io.Discard, sc)
	})
	dep, d := startDepot(t, depot.Config{MaxSessions: 64})
	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := randBytes(64_000, int64(100+i))
			c, err := core.Dial(context.Background(),
				core.Route{Via: []string{dep}, Target: addr},
				core.WithDigest(), core.WithContentLength(int64(len(payload))))
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if _, err := c.Write(payload); err != nil {
				errs <- err
				return
			}
			if err := c.CloseWrite(); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := d.Stats().Accepted; got != n {
		t.Fatalf("depot accepted %d, want %d", got, n)
	}
}

func TestDialValidatesRoute(t *testing.T) {
	if _, err := core.Dial(context.Background(), core.Route{}); err == nil {
		t.Fatal("empty route accepted")
	}
	if _, err := core.Dial(context.Background(), core.Route{Target: "x:1"},
		core.WithDigest()); !errors.Is(err, core.ErrNeedLength) {
		t.Fatalf("digest without length: %v", err)
	}
}

func TestWriteAfterCloseWriteFails(t *testing.T) {
	addr, _, _ := collectTarget(t)
	c, err := core.Dial(context.Background(), core.Route{Target: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.CloseWrite()
	if _, err := c.Write([]byte("x")); !errors.Is(err, core.ErrClosedWrite) {
		t.Fatalf("err=%v", err)
	}
}

func TestDigestMatchesStdlibMD5(t *testing.T) {
	// White-box check that the wire trailer is the plain MD5 of the stream.
	payload := randBytes(10_000, 7)
	want := md5.Sum(payload)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	trailer := make(chan []byte, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		hdr, err := wire.ReadOpenHeader(nc)
		if err != nil {
			return
		}
		nc.Write((&wire.AcceptFrame{Code: wire.CodeOK, Session: hdr.Session}).Encode())
		body := make([]byte, len(payload))
		io.ReadFull(nc, body)
		tr := make([]byte, wire.DigestLen)
		io.ReadFull(nc, tr)
		trailer <- tr
	}()
	c, err := core.Dial(context.Background(), core.Route{Target: ln.Addr().String()},
		core.WithDigest(), core.WithContentLength(int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	c.Write(payload)
	c.CloseWrite()
	select {
	case tr := <-trailer:
		if !bytes.Equal(tr, want[:]) {
			t.Fatal("trailer is not plain MD5 of the stream")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
	c.Close()
}

package stripe

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"lsl/internal/wire"
)

// gateWriter passes through a fixed byte budget, then blocks every write
// until Close — a path that wedges without erroring, like a remote whose
// kernel buffers filled while the far side stopped draining.
type gateWriter struct {
	mu     sync.Mutex
	w      io.Writer
	budget int
	gate   chan struct{}
	once   sync.Once
}

func newGateWriter(w io.Writer, budget int) *gateWriter {
	return &gateWriter{w: w, budget: budget, gate: make(chan struct{})}
}

func (g *gateWriter) Write(p []byte) (int, error) {
	g.mu.Lock()
	if g.budget >= len(p) {
		g.budget -= len(p)
		g.mu.Unlock()
		return g.w.Write(p)
	}
	g.mu.Unlock()
	<-g.gate
	return 0, errors.New("gated writer closed")
}

func (g *gateWriter) Close() { g.once.Do(func() { close(g.gate) }) }

// delayWriter adds a fixed delay per write, making two stripes' measured
// rates deterministic and equal.
type delayWriter struct {
	w     io.Writer
	delay time.Duration
}

func (d *delayWriter) Write(p []byte) (int, error) {
	time.Sleep(d.delay)
	return d.w.Write(p)
}

// TestSenderTailReclamation wedges one of two stripes mid-transfer and
// expects the full reclamation cascade: its queued frames are stolen, its
// sent-but-unconfirmed and in-flight frames are speculatively duplicated
// on the fast stripe, and the wedged stripe is finally superseded — with
// the reassembled stream byte-exact and StripeBytes still summing to the
// stream length.
func TestSenderTailReclamation(t *testing.T) {
	payload := make([]byte, 64<<10)
	rand.New(rand.NewSource(31)).Read(payload)
	const fs = 4 << 10

	var out bytes.Buffer
	recv := NewReceiver(&out)

	snd, err := NewSender(wire.NewSessionID(), bytes.NewReader(payload), int64(len(payload)), 2,
		SenderConfig{FrameSize: fs, QueueFrames: 4, StuckTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	// Stripe 0 flows normally.
	pr0, pw0 := io.Pipe()
	fastErr := make(chan error, 1)
	go func() { fastErr <- recv.Attach(pr0) }()
	if err := snd.Attach(0, pw0); err != nil {
		t.Fatal(err)
	}

	// Stripe 1 delivers its group header and exactly one frame, then
	// wedges: the write blocks without returning.
	pr1, pw1 := io.Pipe()
	gate := newGateWriter(pw1, groupHeaderLen+frameHeaderLen+fs)
	go func() { recv.Attach(pr1) }() // dies when the pipe is torn down; tolerated
	if err := snd.Attach(1, gate); err != nil {
		t.Fatal(err)
	}
	// The engine's OnSuperseded closes the wedged connection; model that.
	snd.onSuperseded = func(i int) {
		if i != 1 {
			t.Errorf("superseded stripe %d, want 1", i)
		}
		gate.Close()
		pw1.CloseWithError(errors.New("superseded"))
	}

	if err := snd.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-fastErr; err != nil {
		t.Fatalf("fast stripe: %v", err)
	}
	if !recv.Complete() {
		t.Fatalf("incomplete: %d of %d", recv.Written(), len(payload))
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("payload mismatch after reclamation")
	}
	if snd.Stolen() < 1 {
		t.Fatalf("stolen %d, want >= 1", snd.Stolen())
	}
	if snd.Speculated() < 1 {
		t.Fatalf("speculated %d, want >= 1", snd.Speculated())
	}
	if snd.Superseded() != 1 {
		t.Fatalf("superseded %d, want 1", snd.Superseded())
	}
	var sum int64
	for _, b := range snd.StripeBytes() {
		if b < 0 {
			t.Fatalf("negative stripe bytes: %v", snd.StripeBytes())
		}
		sum += b
	}
	if sum != int64(len(payload)) {
		t.Fatalf("stripe bytes sum %d, want %d (%v)", sum, len(payload), snd.StripeBytes())
	}
	if d := snd.TailDuration(); d <= 0 {
		t.Fatalf("tail duration %v, want > 0", d)
	}
}

// TestSenderSymmetricNoSteal: two stripes of identical measured rate must
// never trigger stealing or speculation — reclamation is for provably
// asymmetric paths only.
func TestSenderSymmetricNoSteal(t *testing.T) {
	payload := make([]byte, 256<<10)
	rand.New(rand.NewSource(32)).Read(payload)

	var out bytes.Buffer
	recv := NewReceiver(&out)
	snd, err := NewSender(wire.NewSessionID(), bytes.NewReader(payload), int64(len(payload)), 2,
		SenderConfig{FrameSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	attachErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		pr, pw := io.Pipe()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if aerr := recv.Attach(pr); aerr != nil {
				attachErrs <- aerr
			}
		}()
		if err := snd.Attach(i, &delayWriter{w: pw, delay: 2 * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	if err := snd.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(attachErrs)
	for aerr := range attachErrs {
		t.Fatal(aerr)
	}
	if !recv.Complete() || !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("stream corrupted")
	}
	if snd.Stolen() != 0 || snd.Speculated() != 0 || snd.Superseded() != 0 {
		t.Fatalf("symmetric paths reclaimed: stolen %d speculated %d superseded %d",
			snd.Stolen(), snd.Speculated(), snd.Superseded())
	}
}

// TestSenderAckConfirm runs a full duplex transfer: the receiver acks on
// each stream's backward channel, the sender's in-flight budget adapts,
// and the group confirms by ack — with the receiver's attribution summing
// to the stream length.
func TestSenderAckConfirm(t *testing.T) {
	payload := make([]byte, 256<<10)
	rand.New(rand.NewSource(33)).Read(payload)

	var out bytes.Buffer
	recv := NewReceiver(&out)
	recv.SetAckEvery(8 << 10)

	snd, err := NewSender(wire.NewSessionID(), bytes.NewReader(payload), int64(len(payload)), 2,
		SenderConfig{FrameSize: 8 << 10, Acks: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	attachErrs := make(chan error, 2)
	var conns []net.Conn
	for i := 0; i < 2; i++ {
		client, server := net.Pipe()
		conns = append(conns, client, server)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if aerr := recv.Attach(server); aerr != nil {
				attachErrs <- aerr
			}
		}()
		gen, aerr := snd.AttachGen(i, client)
		if aerr != nil {
			t.Fatal(aerr)
		}
		go func(idx, gen int, c net.Conn) {
			for {
				a, rerr := ReadAck(c)
				if rerr != nil {
					return
				}
				snd.Ack(idx, gen, a)
			}
		}(i, gen, client)
	}
	if err := snd.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(attachErrs)
	for aerr := range attachErrs {
		t.Fatal(aerr)
	}
	for _, c := range conns {
		c.Close()
	}
	if !recv.Complete() || !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("stream corrupted")
	}
	if !snd.Confirmed() {
		t.Fatal("group not confirmed by ack")
	}
	select {
	case <-snd.ConfirmedChan():
	default:
		t.Fatal("ConfirmedChan not closed")
	}
	var sum int64
	for _, b := range snd.AcceptedBytes() {
		sum += b
	}
	if sum != int64(len(payload)) {
		t.Fatalf("accepted bytes sum %d, want %d (%v)", sum, len(payload), snd.AcceptedBytes())
	}
}

// TestSenderInflightBudget exercises the byte-budget eligibility math
// directly: once a stripe's generation has acked, its unacknowledged
// commitment against the configured budget — not the frame-count bound —
// decides whether it may take more work.
func TestSenderInflightBudget(t *testing.T) {
	snd, err := NewSender(wire.NewSessionID(), bytes.NewReader(make([]byte, 1<<20)), 1<<20, 2,
		SenderConfig{FrameSize: 4 << 10, QueueFrames: 4, InflightBytes: 10000, Acks: true})
	if err != nil {
		t.Fatal(err)
	}
	st := snd.stripes[0]
	snd.mu.Lock()
	defer snd.mu.Unlock()
	st.state = stripeLive

	// Before the first ack, the legacy frame-count bound governs.
	if !snd.eligibleLocked(st, 4096) {
		t.Fatal("empty pre-ack stripe must be eligible")
	}
	st.queue = []frame{{0, 1}, {1, 1}, {2, 1}, {3, 1}}
	if snd.eligibleLocked(st, 4096) {
		t.Fatal("full pre-ack queue must not be eligible")
	}
	st.queue = nil

	// After an ack, the byte budget governs: 8000 unacked of a 10000
	// budget leaves no room for a 4096-byte frame...
	st.genAcked = true
	st.pipeWritten = 8000
	st.ackSeen = 0
	if snd.eligibleLocked(st, 4096) {
		t.Fatalf("commitment %d of budget 10000 must block a 4096 frame", snd.commitmentLocked(st))
	}
	// ...until the receiver drains enough of it.
	st.ackSeen = 6000
	if !snd.eligibleLocked(st, 4096) {
		t.Fatalf("commitment %d of budget 10000 must admit a 4096 frame", snd.commitmentLocked(st))
	}

	// The adaptive budget is acked-rate × horizon, clamped to at least
	// two frames.
	st2 := snd.stripes[1]
	snd.inflightBytes = 0
	st2.ackBps = 100 << 20
	if b := snd.budgetLocked(st2); b != int64(float64(100<<20)*defaultInflightHorizon.Seconds()) {
		t.Fatalf("adaptive budget %d", b)
	}
	st2.ackBps = 1 // ~0 → clamps to 2 frames
	if b := snd.budgetLocked(st2); b != 2*int64(snd.frameSize) {
		t.Fatalf("budget floor %d, want %d", b, 2*snd.frameSize)
	}
}

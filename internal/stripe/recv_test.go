package stripe

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"lsl/internal/wire"
)

func TestReadFrameRejectsOversized(t *testing.T) {
	var s bytes.Buffer
	var hdr [frameHeaderLen]byte
	hdr[8], hdr[9], hdr[10], hdr[11] = 0xff, 0xff, 0xff, 0xff
	s.Write(hdr[:])
	if _, _, err := readFrame(&s); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

// TestReceiverPendingCap stalls stripe 0 (its frames never arrive) while
// stripe 1 races ahead; once stripe 1's out-of-order frames exceed the
// configured limit the group must fail with ErrPendingOverflow instead of
// buffering without bound.
func TestReceiverPendingCap(t *testing.T) {
	recv := NewReceiver(io.Discard)
	recv.SetMaxPending(64 << 10)
	gh := &GroupHeader{Group: wire.NewSessionID(), Index: 1, Count: 2, TotalLen: 1 << 20}
	var s bytes.Buffer
	s.Write(gh.Encode())
	chunk := make([]byte, 16<<10)
	// Stripe 0 owns [0, 16K) and never delivers it, so nothing can flush.
	for off := int64(16 << 10); off < 1<<20; off += 16 << 10 {
		writeFrame(&s, uint64(off), chunk)
	}
	err := recv.Attach(&s)
	if !errors.Is(err, ErrPendingOverflow) {
		t.Fatalf("got %v, want ErrPendingOverflow", err)
	}
}

// TestReceiverPendingCapLiveStall runs the same scenario over live pipes
// with a Sender: one attach goroutine never reads, the other stripe keeps
// delivering until the receiver's cap trips.
func TestReceiverPendingCapLiveStall(t *testing.T) {
	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(20)).Read(payload)
	recv := NewReceiver(io.Discard)
	recv.SetMaxPending(32 << 10)

	snd, err := NewSender(wire.NewSessionID(), bytes.NewReader(payload), int64(len(payload)), 2,
		SenderConfig{FrameSize: 8 << 10, QueueFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Stripe 0 stalls: attached to the sender, never drained to the
	// receiver.
	stallR, stallW := io.Pipe()
	defer stallR.Close()
	if err := snd.Attach(0, stallW); err != nil {
		t.Fatal(err)
	}
	// Stripe 1 flows normally.
	pr, pw := io.Pipe()
	if err := snd.Attach(1, pw); err != nil {
		t.Fatal(err)
	}
	go snd.Run(context.Background())

	attachErr := make(chan error, 1)
	go func() { attachErr <- recv.Attach(pr) }()
	select {
	case err := <-attachErr:
		if !errors.Is(err, ErrPendingOverflow) {
			t.Fatalf("got %v, want ErrPendingOverflow", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("receiver buffered past its pending cap without failing")
	}
}

// TestReceiverUnlimitedPending: SetMaxPending(0) restores the old
// unbounded behavior.
func TestReceiverUnlimitedPending(t *testing.T) {
	var out bytes.Buffer
	recv := NewReceiver(&out)
	recv.SetMaxPending(0)
	gh := &GroupHeader{Group: wire.NewSessionID(), Index: 0, Count: 1, TotalLen: 64 << 10}
	var s bytes.Buffer
	s.Write(gh.Encode())
	chunk := make([]byte, 16<<10)
	// Deliver everything out of order, then the head, then the end.
	for off := int64(48 << 10); off >= 0; off -= 16 << 10 {
		writeFrame(&s, uint64(off), chunk)
	}
	writeFrame(&s, 64<<10, nil)
	if err := recv.Attach(&s); err != nil {
		t.Fatal(err)
	}
	if !recv.Complete() {
		t.Fatal("incomplete")
	}
}

// TestReceiverStripeDeathReattach covers the heal protocol from the
// receiver's side: a stripe dies mid-stream, a replacement stream for the
// same index re-sends the group header, replays the dead generation's
// frames, delivers the rest, and ends — Complete() must come true with
// byte-exact output.
func TestReceiverStripeDeathReattach(t *testing.T) {
	payload := make([]byte, 16<<10)
	rand.New(rand.NewSource(21)).Read(payload)
	const fs = 4 << 10
	var out bytes.Buffer
	recv := NewReceiver(&out)
	gh := &GroupHeader{Group: wire.NewSessionID(), Index: 0, Count: 2, TotalLen: uint64(len(payload))}

	// First stream: frames [0,4K) and [8K,12K), then the stripe dies
	// (stream truncated mid-frame-header).
	var s1 bytes.Buffer
	s1.Write(gh.Encode())
	writeFrame(&s1, 0, payload[0:fs])
	writeFrame(&s1, 2*fs, payload[2*fs:3*fs])
	s1.Write([]byte{0, 0, 0}) // torn frame header
	if err := recv.Attach(&s1); err == nil {
		t.Fatal("truncated stripe stream accepted")
	}
	if recv.Complete() {
		t.Fatal("complete too early")
	}

	// Replacement stream, same index: duplicate group header, replays
	// both frames (no acks, so the healer cannot know what arrived),
	// then carries the remaining ranges and the end frame.
	var s2 bytes.Buffer
	s2.Write(gh.Encode())
	writeFrame(&s2, 0, payload[0:fs])
	writeFrame(&s2, 2*fs, payload[2*fs:3*fs])
	writeFrame(&s2, fs, payload[fs:2*fs])
	writeFrame(&s2, 3*fs, payload[3*fs:])
	writeFrame(&s2, uint64(len(payload)), nil)
	if err := recv.Attach(&s2); err != nil {
		t.Fatalf("replacement stream rejected: %v", err)
	}
	if !recv.Complete() {
		t.Fatalf("incomplete after heal: %d of %d", recv.Written(), len(payload))
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("payload mismatch after heal")
	}
}

// TestReceiverRejectsCorruptReplay: a "replay" whose boundaries do not
// match any flushed or pending frame is corruption, not healing.
func TestReceiverRejectsCorruptReplay(t *testing.T) {
	recv := NewReceiver(io.Discard)
	gh := &GroupHeader{Group: wire.NewSessionID(), Index: 0, Count: 1, TotalLen: 64}
	var s1 bytes.Buffer
	s1.Write(gh.Encode())
	writeFrame(&s1, 0, make([]byte, 32))
	s1.Write([]byte{0})
	if err := recv.Attach(&s1); err == nil {
		t.Fatal("truncated stream accepted")
	}
	// Same flushed range, different frame boundaries.
	var s2 bytes.Buffer
	s2.Write(gh.Encode())
	writeFrame(&s2, 8, make([]byte, 16))
	if err := recv.Attach(&s2); !errors.Is(err, ErrFrameOverlap) {
		t.Fatalf("got %v, want ErrFrameOverlap", err)
	}
	// A pending frame replayed with a different length is also corrupt.
	recv2 := NewReceiver(io.Discard)
	var s3 bytes.Buffer
	s3.Write(gh.Encode())
	writeFrame(&s3, 16, make([]byte, 16)) // pending (head missing)
	writeFrame(&s3, 16, make([]byte, 8))  // same offset, new length
	if err := recv2.Attach(&s3); !errors.Is(err, ErrFrameOverlap) {
		t.Fatalf("got %v, want ErrFrameOverlap", err)
	}
}

// TestReceiverSpeculativeDuplicates models tail speculation: two live
// stripes concurrently deliver exact duplicates of the same tail frames
// (different stripe indexes, same group). The first copy wins, the stream
// is byte-exact, and the receiver's attribution counts every byte exactly
// once.
func TestReceiverSpeculativeDuplicates(t *testing.T) {
	payload := make([]byte, 64<<10)
	rand.New(rand.NewSource(23)).Read(payload)
	const fs = 8 << 10
	var out bytes.Buffer
	recv := NewReceiver(&out)
	group := wire.NewSessionID()

	// Stripe 0 carries the whole stream; stripe 1 speculatively
	// duplicates the last two frames and ends.
	var s0 bytes.Buffer
	s0.Write((&GroupHeader{Group: group, Index: 0, Count: 2, TotalLen: uint64(len(payload))}).Encode())
	for off := 0; off < len(payload); off += fs {
		writeFrame(&s0, uint64(off), payload[off:off+fs])
	}
	writeFrame(&s0, uint64(len(payload)), nil)
	var s1 bytes.Buffer
	s1.Write((&GroupHeader{Group: group, Index: 1, Count: 2, TotalLen: uint64(len(payload))}).Encode())
	for off := len(payload) - 2*fs; off < len(payload); off += fs {
		writeFrame(&s1, uint64(off), payload[off:off+fs])
	}
	writeFrame(&s1, uint64(len(payload)), nil)

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, stream := range [][]byte{s0.Bytes(), s1.Bytes()} {
		wg.Add(1)
		go func(b []byte) {
			defer wg.Done()
			if err := recv.Attach(bytes.NewReader(b)); err != nil {
				errs <- err
			}
		}(stream)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if !recv.Complete() || !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("speculative duplicates corrupted the stream")
	}
	var sum int64
	for _, b := range recv.AcceptedBytes() {
		sum += b
	}
	if sum != int64(len(payload)) {
		t.Fatalf("accepted sum %d, want %d (double-counted duplicate?)", sum, len(payload))
	}
}

// TestReceiverRejectsCorruptDuplicateAcrossStripes: a second stripe
// replaying an overlapping range with different frame boundaries is
// corruption even when it arrives on a different live stripe index.
func TestReceiverRejectsCorruptDuplicateAcrossStripes(t *testing.T) {
	recv := NewReceiver(io.Discard)
	group := wire.NewSessionID()
	var s0 bytes.Buffer
	s0.Write((&GroupHeader{Group: group, Index: 0, Count: 2, TotalLen: 64}).Encode())
	writeFrame(&s0, 16, make([]byte, 16)) // pending (head missing)
	s0.Write([]byte{0})
	if err := recv.Attach(&s0); err == nil {
		t.Fatal("truncated stream accepted")
	}
	var s1 bytes.Buffer
	s1.Write((&GroupHeader{Group: group, Index: 1, Count: 2, TotalLen: 64}).Encode())
	writeFrame(&s1, 16, make([]byte, 8)) // same offset, different length
	if err := recv.Attach(&s1); !errors.Is(err, ErrFrameOverlap) {
		t.Fatalf("got %v, want ErrFrameOverlap", err)
	}
}

// rwStream glues a stream's forward (read) and backward (write) channels
// together the way a duplex session does, for ack tests.
type rwStream struct {
	io.Reader
	w io.Writer
}

func (s *rwStream) Write(p []byte) (int, error) { return s.w.Write(p) }

// TestReceiverAcks: a stream opened with the ack-requesting header gets
// cadence acks, and the final ack reports the whole stream flushed with
// per-stripe attribution.
func TestReceiverAcks(t *testing.T) {
	payload := make([]byte, 64<<10)
	rand.New(rand.NewSource(24)).Read(payload)
	const fs = 8 << 10
	var out bytes.Buffer
	recv := NewReceiver(&out)
	recv.SetAckEvery(16 << 10)

	var s bytes.Buffer
	s.Write((&GroupHeader{Group: wire.NewSessionID(), Index: 0, Count: 1,
		TotalLen: uint64(len(payload)), Acks: true}).Encode())
	for off := 0; off < len(payload); off += fs {
		writeFrame(&s, uint64(off), payload[off:off+fs])
	}
	writeFrame(&s, uint64(len(payload)), nil)

	var back bytes.Buffer
	if err := recv.Attach(&rwStream{Reader: &s, w: &back}); err != nil {
		t.Fatal(err)
	}
	if !recv.Complete() || !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("stream corrupted")
	}
	var acks []*Ack
	for back.Len() > 0 {
		a, err := ReadAck(&back)
		if err != nil {
			t.Fatalf("ack stream: %v", err)
		}
		acks = append(acks, a)
	}
	if len(acks) < 2 {
		t.Fatalf("got %d acks, want cadence acks plus the final one", len(acks))
	}
	last := acks[len(acks)-1]
	if last.Flushed != int64(len(payload)) {
		t.Fatalf("final flushed %d, want %d", last.Flushed, len(payload))
	}
	if last.Seen != int64(len(payload)) {
		t.Fatalf("final seen %d, want %d", last.Seen, len(payload))
	}
	if len(last.Accepted) != 1 || last.Accepted[0] != int64(len(payload)) {
		t.Fatalf("final accepted %v", last.Accepted)
	}
	// A classic "LSLS" stream must get no acks at all.
	recv2 := NewReceiver(io.Discard)
	var s2 bytes.Buffer
	s2.Write((&GroupHeader{Group: wire.NewSessionID(), Index: 0, Count: 1, TotalLen: 8}).Encode())
	writeFrame(&s2, 0, make([]byte, 8))
	writeFrame(&s2, 8, nil)
	var back2 bytes.Buffer
	if err := recv2.Attach(&rwStream{Reader: &s2, w: &back2}); err != nil {
		t.Fatal(err)
	}
	if back2.Len() != 0 {
		t.Fatalf("ackless stream got %d backward bytes", back2.Len())
	}
}

// TestReceiverConcurrentReplays hammers the dedup path: many goroutines
// replay overlapping copies of the same stripe stream.
func TestReceiverConcurrentReplays(t *testing.T) {
	payload := make([]byte, 128<<10)
	rand.New(rand.NewSource(22)).Read(payload)
	var out bytes.Buffer
	recv := NewReceiver(&out)
	gh := &GroupHeader{Group: wire.NewSessionID(), Index: 0, Count: 1, TotalLen: uint64(len(payload))}
	stream := func() []byte {
		var s bytes.Buffer
		s.Write(gh.Encode())
		for off := 0; off < len(payload); off += 8 << 10 {
			writeFrame(&s, uint64(off), payload[off:off+8<<10])
		}
		writeFrame(&s, uint64(len(payload)), nil)
		return s.Bytes()
	}()
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := recv.Attach(bytes.NewReader(stream)); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if !recv.Complete() || !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("concurrent replays corrupted the stream")
	}
}

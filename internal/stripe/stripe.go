// Package stripe implements the paper's §VII future work: session-layer
// framing and parallel TCP streams. A striped transfer carries one logical
// byte stream over N concurrent LSL sessions ("stripes"), each of which
// may take a different loose source route — combining the PSockets-style
// parallel-socket idea the paper cites with LSL's multi-path routing.
//
// Framing rides *on top of* ordinary sessions, keeping the wire protocol
// of package wire untouched: each stripe stream begins with a group
// header naming the stripe group (the logical transfer) and this stripe's
// index, and then carries length-prefixed frames tagged with their offset
// in the logical stream. The receiver reassembles frames by offset.
//
// Layout per stripe stream:
//
//	group header: magic "LSLS" | version u8 | group [16] | index u8 | count u8 | totalLen u64
//	frame:        offset u64 | length u32 | payload...
//	(a zero-length frame marks the stripe's end)
//
// A sender that wants delivery acknowledgements opens its streams with
// magic "LSLT" instead; the receiver then emits compact ack records on
// each stream's backward channel:
//
//	ack: magic "LSLA" | flushed u64 | seen u64 | count u8 | accepted u64 × count
//
// flushed is the group-wide contiguous prefix, seen is how many payload
// bytes this particular stream has delivered (duplicates included — it
// measures pipe drain, not contribution), and accepted[i] is how many
// non-duplicate payload bytes stripe index i has contributed so far.
// "LSLS" streams get no acks, keeping old senders compatible.
package stripe

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"lsl/internal/wire"
)

// Limits and sizes.
const (
	// MaxStripes bounds the fan-out of one group.
	MaxStripes = 32
	// DefaultFrameSize is the striping granularity.
	DefaultFrameSize = 256 << 10
	// MaxFrameSize bounds a frame's declared payload length. The frame
	// length field arrives from the network; without a cap a corrupt or
	// hostile stream could make the receiver allocate 4 GiB per frame.
	MaxFrameSize = 8 << 20
	// DefaultMaxPending bounds the receiver's out-of-order reassembly
	// buffer: a fast stripe running ahead of the contiguous prefix may
	// buffer at most this many bytes before the group is failed.
	DefaultMaxPending = 256 << 20
	// DefaultAckEvery is how many delivered payload bytes a receiver lets
	// pass on one stream between ack records (when acks are on at all).
	DefaultAckEvery = 64 << 10
	// groupHeaderLen: magic(4) version(1) group(16) index(1) count(1) total(8).
	groupHeaderLen = 31
	frameHeaderLen = 12
	// ackFixedLen: magic(4) flushed(8) seen(8) count(1).
	ackFixedLen = 21
)

var (
	magicStripe = [4]byte{'L', 'S', 'L', 'S'}
	// magicStripeAck marks a stream whose sender understands ack records
	// on the backward channel. Old receivers reject it (they only know
	// "LSLS"), so senders must be told explicitly that the peer is
	// ack-capable — see SenderConfig.Acks.
	magicStripeAck = [4]byte{'L', 'S', 'L', 'T'}
	magicAck       = [4]byte{'L', 'S', 'L', 'A'}
)

// Errors.
var (
	ErrBadGroupHeader = errors.New("stripe: bad group header")
	ErrFrameOverlap   = errors.New("stripe: overlapping or duplicate frame")
	ErrShortStream    = errors.New("stripe: stream ended before declared length")
	// ErrFrameTooLarge reports a frame whose declared length exceeds
	// MaxFrameSize — the stream is corrupt or hostile.
	ErrFrameTooLarge = errors.New("stripe: frame length over MaxFrameSize")
	// ErrPendingOverflow reports that out-of-order frames beyond the
	// contiguous prefix exceeded the receiver's pending-bytes limit
	// (one stripe is running too far ahead of a stalled one).
	ErrPendingOverflow = errors.New("stripe: pending reassembly buffer over limit")
	// ErrBadAck reports a malformed ack record on the backward channel.
	ErrBadAck = errors.New("stripe: bad ack record")
)

// GroupHeader opens each stripe stream.
type GroupHeader struct {
	Group    wire.SessionID // identifies the logical transfer
	Index    uint8          // this stripe's number
	Count    uint8          // total stripes in the group
	TotalLen uint64         // logical stream length
	// Acks marks the sender as ack-capable: the receiver should emit Ack
	// records on this stream's backward channel. Encoded as the "LSLT"
	// magic instead of "LSLS".
	Acks bool
}

// Encode serializes the group header.
func (g *GroupHeader) Encode() []byte {
	out := make([]byte, groupHeaderLen)
	if g.Acks {
		copy(out, magicStripeAck[:])
	} else {
		copy(out, magicStripe[:])
	}
	out[4] = wire.Version
	copy(out[5:21], g.Group[:])
	out[21] = g.Index
	out[22] = g.Count
	binary.BigEndian.PutUint64(out[23:31], g.TotalLen)
	return out
}

// ReadGroupHeader decodes a group header from r. Both the classic "LSLS"
// magic and the ack-requesting "LSLT" are accepted; the latter sets Acks.
func ReadGroupHeader(r io.Reader) (*GroupHeader, error) {
	buf := make([]byte, groupHeaderLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadGroupHeader, err)
	}
	acks := false
	switch string(buf[:4]) {
	case string(magicStripe[:]):
	case string(magicStripeAck[:]):
		acks = true
	default:
		return nil, ErrBadGroupHeader
	}
	if buf[4] != wire.Version {
		return nil, ErrBadGroupHeader
	}
	g := &GroupHeader{Index: buf[21], Count: buf[22], Acks: acks}
	copy(g.Group[:], buf[5:21])
	g.TotalLen = binary.BigEndian.Uint64(buf[23:31])
	if g.Count == 0 || g.Count > MaxStripes || g.Index >= g.Count {
		return nil, ErrBadGroupHeader
	}
	return g, nil
}

// Ack is one delivery report from the receiver, flowing backward along a
// stripe stream. Flushed is the group-wide contiguous prefix; Seen counts
// the payload bytes this particular stream has carried (duplicates
// included), which is what a sender needs for in-flight accounting; and
// Accepted[i] is stripe index i's non-duplicate contribution so far.
type Ack struct {
	Flushed  int64
	Seen     int64
	Accepted []int64
}

// Encode serializes the ack record.
func (a *Ack) Encode() []byte {
	out := make([]byte, ackFixedLen+8*len(a.Accepted))
	copy(out, magicAck[:])
	binary.BigEndian.PutUint64(out[4:12], uint64(a.Flushed))
	binary.BigEndian.PutUint64(out[12:20], uint64(a.Seen))
	out[20] = uint8(len(a.Accepted))
	for i, v := range a.Accepted {
		binary.BigEndian.PutUint64(out[ackFixedLen+8*i:], uint64(v))
	}
	return out
}

// ReadAck decodes one ack record from r. All counts come off the network,
// so they are bounds-checked: at most MaxStripes per-stripe entries and
// no value may overflow int64.
func ReadAck(r io.Reader) (*Ack, error) {
	buf := make([]byte, ackFixedLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	if string(buf[:4]) != string(magicAck[:]) {
		return nil, ErrBadAck
	}
	flushed := binary.BigEndian.Uint64(buf[4:12])
	seen := binary.BigEndian.Uint64(buf[12:20])
	n := int(buf[20])
	if n > MaxStripes || flushed > 1<<62 || seen > 1<<62 {
		return nil, ErrBadAck
	}
	a := &Ack{Flushed: int64(flushed), Seen: int64(seen)}
	if n > 0 {
		body := make([]byte, 8*n)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadAck, err)
		}
		a.Accepted = make([]int64, n)
		for i := range a.Accepted {
			v := binary.BigEndian.Uint64(body[8*i:])
			if v > 1<<62 {
				return nil, ErrBadAck
			}
			a.Accepted[i] = int64(v)
		}
	}
	return a, nil
}

// writeFrame emits one offset-tagged frame.
func writeFrame(w io.Writer, offset uint64, payload []byte) error {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint64(hdr[0:8], offset)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame header and returns (offset, length). The
// length field is untrusted network input: anything above MaxFrameSize is
// rejected before a buffer of that size can be allocated.
func readFrame(r io.Reader) (uint64, uint32, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, err
	}
	off := binary.BigEndian.Uint64(hdr[0:8])
	length := binary.BigEndian.Uint32(hdr[8:12])
	if length > MaxFrameSize {
		return 0, 0, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, length, MaxFrameSize)
	}
	return off, length, nil
}

// Send stripes src (of length total) across the given writers, frame by
// frame round-robin, and finishes each stripe with an end frame. Writers
// are typically core.Conn sessions dialed over different routes. frameSize
// <= 0 uses DefaultFrameSize.
//
// Frames are distributed round-robin synchronously; with similarly fast
// stripes this keeps them evenly loaded, and a slow stripe naturally
// backpressures only its share.
func Send(group wire.SessionID, writers []io.Writer, src io.Reader, total int64, frameSize int) error {
	n := len(writers)
	if n == 0 || n > MaxStripes {
		return fmt.Errorf("stripe: %d stripes out of range", n)
	}
	if frameSize <= 0 {
		frameSize = DefaultFrameSize
	}
	if frameSize > MaxFrameSize {
		frameSize = MaxFrameSize
	}
	for i, w := range writers {
		gh := &GroupHeader{Group: group, Index: uint8(i), Count: uint8(n), TotalLen: uint64(total)}
		if _, err := w.Write(gh.Encode()); err != nil {
			return fmt.Errorf("stripe %d: group header: %w", i, err)
		}
	}
	buf := make([]byte, frameSize)
	var offset int64
	idx := 0
	for offset < total {
		want := int64(frameSize)
		if rem := total - offset; rem < want {
			want = rem
		}
		m, err := io.ReadFull(src, buf[:want])
		if m > 0 {
			if werr := writeFrame(writers[idx], uint64(offset), buf[:m]); werr != nil {
				return fmt.Errorf("stripe %d: %w", idx, werr)
			}
			offset += int64(m)
			idx = (idx + 1) % n
		}
		if err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return fmt.Errorf("%w: source ended at %d of %d", ErrShortStream, offset, total)
			}
			return err
		}
	}
	for i, w := range writers {
		if err := writeFrame(w, uint64(total), nil); err != nil {
			return fmt.Errorf("stripe %d: end frame: %w", i, err)
		}
	}
	return nil
}

// Receiver reassembles one stripe group into a contiguous stream. Attach
// may be called concurrently from one goroutine per stripe; reassembly is
// serialized internally.
//
// The receiver survives stripe death: a replacement stream for the same
// stripe index may attach at any time (it re-sends the group header), and
// frames it replays that the receiver already holds — flushed or pending —
// are dropped silently. This is what makes sender-side stripe healing
// possible without per-frame acknowledgements.
type Receiver struct {
	mu      sync.Mutex
	Header  *GroupHeader // from the first stripe attached
	total   int64
	written int64
	// pending frames beyond the contiguous prefix, keyed by offset.
	pending      map[int64][]byte
	pendingBytes int64
	maxPending   int64
	// flushed records each flushed frame's offset -> length so a healed
	// stripe's exact replays can be told apart from corrupt overlaps.
	flushed map[int64]int32
	// accepted[i] counts stripe index i's non-duplicate payload bytes, for
	// ack attribution. Allocated when the first header arrives.
	accepted []int64
	ackEvery int64
	out      io.Writer
	joined   int
}

// NewReceiver builds a reassembler writing the logical stream into out.
// The out-of-order buffer is capped at DefaultMaxPending bytes; tune it
// with SetMaxPending.
func NewReceiver(out io.Writer) *Receiver {
	return &Receiver{
		pending:    make(map[int64][]byte),
		flushed:    make(map[int64]int32),
		maxPending: DefaultMaxPending,
		ackEvery:   DefaultAckEvery,
		out:        out,
	}
}

// SetAckEvery tunes how many delivered payload bytes pass on one stream
// between ack records (streams opened with the ack-requesting header
// always additionally ack their end frame and group completion). n <= 0
// restores DefaultAckEvery. Call before attaching streams.
func (r *Receiver) SetAckEvery(n int64) {
	if n <= 0 {
		n = DefaultAckEvery
	}
	r.mu.Lock()
	r.ackEvery = n
	r.mu.Unlock()
}

// SetMaxPending bounds the bytes buffered beyond the contiguous prefix
// (frames from fast stripes waiting on a slow one). Ingesting past the
// limit fails the group with ErrPendingOverflow. n <= 0 removes the
// limit. Call before attaching streams.
func (r *Receiver) SetMaxPending(n int64) {
	r.mu.Lock()
	r.maxPending = n
	r.mu.Unlock()
}

// Attach consumes one stripe stream (blocking) and feeds its frames into
// the reassembler. Call it once per stripe, typically on its own
// goroutine.
//
// If the stream's group header requests acks ("LSLT") and the stream is
// also an io.Writer (an LSL session is), Attach writes Ack records back
// every SetAckEvery delivered bytes, at the stream's end frame, and at
// the moment this stream's frame completes the whole group. Ack write
// errors stop further acks on this stream but do not fail reassembly —
// the sender degrades to its ackless behavior.
func (r *Receiver) Attach(stream io.Reader) error {
	gh, err := ReadGroupHeader(stream)
	if err != nil {
		return err
	}
	if err := r.register(gh); err != nil {
		return err
	}
	var ackW io.Writer
	if gh.Acks {
		ackW, _ = stream.(io.Writer)
	}
	var seen, lastAcked int64
	sendAck := func() {
		if ackW == nil {
			return
		}
		r.mu.Lock()
		a := Ack{Flushed: r.written, Seen: seen, Accepted: append([]int64(nil), r.accepted...)}
		r.mu.Unlock()
		if _, err := ackW.Write(a.Encode()); err != nil {
			ackW = nil
		}
		lastAcked = seen
	}
	for {
		off, length, err := readFrame(stream)
		if err != nil {
			return fmt.Errorf("stripe %d: %w", gh.Index, err)
		}
		if length == 0 {
			if int64(off) != r.total {
				return fmt.Errorf("stripe %d: end frame at %d, want %d", gh.Index, off, r.total)
			}
			sendAck()
			return nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(stream, payload); err != nil {
			return fmt.Errorf("stripe %d: frame body: %w", gh.Index, err)
		}
		seen += int64(length)
		completed, err := r.ingest(int(gh.Index), int64(off), payload)
		if err != nil {
			return err
		}
		if completed || (ackW != nil && seen-lastAcked >= r.ackCadence()) {
			sendAck()
		}
	}
}

func (r *Receiver) ackCadence() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ackEvery
}

// register validates stripe membership against the first-seen group.
func (r *Receiver) register(gh *GroupHeader) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.Header == nil {
		r.Header = gh
		r.total = int64(gh.TotalLen)
		r.accepted = make([]int64, gh.Count)
	} else {
		if gh.Group != r.Header.Group || gh.Count != r.Header.Count || gh.TotalLen != r.Header.TotalLen {
			return fmt.Errorf("stripe: inconsistent group header on stripe %d", gh.Index)
		}
	}
	r.joined++
	return nil
}

// ingest adds a frame from stripe index idx, flushing any newly
// contiguous prefix. It reports whether this frame just completed the
// group (the caller acks that moment immediately).
//
// Replays are tolerated: healing a dead stripe re-sends every frame of its
// last generation, and tail speculation deliberately duplicates a slow
// stripe's final frames on a fast one — so a frame wholly inside the
// flushed prefix, or equal in length to a buffered pending frame at the
// same offset, is silently dropped (and NOT attributed to idx: credit
// goes to whichever stripe landed the bytes first). Partial overlaps
// still fail — frame boundaries are fixed when the sender dispatches
// them, so a mismatched boundary means corruption, not healing.
func (r *Receiver) ingest(idx int, off int64, payload []byte) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if off < r.written {
		if n, ok := r.flushed[off]; ok && int(n) == len(payload) {
			return false, nil // exact replay of an already-flushed frame
		}
		return false, ErrFrameOverlap
	}
	if prev, ok := r.pending[off]; ok {
		if len(prev) == len(payload) {
			return false, nil // replay of a buffered frame
		}
		return false, ErrFrameOverlap
	}
	if idx < len(r.accepted) {
		r.accepted[idx] += int64(len(payload))
	}
	if off == r.written {
		if _, err := r.out.Write(payload); err != nil {
			return false, err
		}
		r.flushed[off] = int32(len(payload))
		r.written += int64(len(payload))
		for {
			next, ok := r.pending[r.written]
			if !ok {
				break
			}
			delete(r.pending, r.written)
			r.pendingBytes -= int64(len(next))
			if _, err := r.out.Write(next); err != nil {
				return false, err
			}
			r.flushed[r.written] = int32(len(next))
			r.written += int64(len(next))
		}
		return r.written == r.total, nil
	}
	if r.maxPending > 0 && r.pendingBytes+int64(len(payload)) > r.maxPending {
		return false, fmt.Errorf("%w: %d + %d > %d", ErrPendingOverflow,
			r.pendingBytes, len(payload), r.maxPending)
	}
	r.pending[off] = payload
	r.pendingBytes += int64(len(payload))
	return false, nil
}

// AcceptedBytes returns each stripe index's non-duplicate contribution to
// the reassembled stream so far (nil before the first header arrives).
func (r *Receiver) AcceptedBytes() []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int64(nil), r.accepted...)
}

// Complete reports whether the whole logical stream has been written out.
func (r *Receiver) Complete() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.Header != nil && r.written == r.total && len(r.pending) == 0
}

// Written returns the contiguous bytes flushed so far.
func (r *Receiver) Written() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.written
}

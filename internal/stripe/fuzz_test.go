package stripe

import (
	"bytes"
	"testing"

	"lsl/internal/wire"
)

// FuzzReadGroupHeader must never panic or accept a header that violates
// the stripe invariants (count in [1,MaxStripes], index < count).
func FuzzReadGroupHeader(f *testing.F) {
	g := &GroupHeader{Group: wire.NewSessionID(), Index: 1, Count: 3, TotalLen: 1 << 30}
	f.Add(g.Encode())
	f.Add([]byte("LSLS"))
	f.Add(make([]byte, groupHeaderLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		gh, err := ReadGroupHeader(bytes.NewReader(data))
		if err != nil {
			return
		}
		if gh.Count == 0 || gh.Count > MaxStripes || gh.Index >= gh.Count {
			t.Fatalf("invalid header accepted: %+v", gh)
		}
		// Accepted headers must re-encode to the bytes they came from.
		if !bytes.Equal(gh.Encode(), data[:groupHeaderLen]) {
			t.Fatalf("re-encode mismatch: %+v", gh)
		}
	})
}

// FuzzReadStripeFrame must never panic and must never hand back a length
// above MaxFrameSize — that length is fed to make([]byte, n) by callers.
func FuzzReadStripeFrame(f *testing.F) {
	var ok bytes.Buffer
	writeFrame(&ok, 4096, []byte("payload"))
	f.Add(ok.Bytes())
	var huge bytes.Buffer
	writeFrame(&huge, 0, nil)
	huge.Bytes()[8] = 0xff // length 0xff000000: over MaxFrameSize
	f.Add(huge.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, length, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if length > MaxFrameSize {
			t.Fatalf("oversized frame length %d accepted", length)
		}
	})
}

package stripe

import (
	"bytes"
	"testing"

	"lsl/internal/wire"
)

// FuzzReadGroupHeader must never panic or accept a header that violates
// the stripe invariants (count in [1,MaxStripes], index < count).
func FuzzReadGroupHeader(f *testing.F) {
	g := &GroupHeader{Group: wire.NewSessionID(), Index: 1, Count: 3, TotalLen: 1 << 30}
	f.Add(g.Encode())
	f.Add([]byte("LSLS"))
	f.Add(make([]byte, groupHeaderLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		gh, err := ReadGroupHeader(bytes.NewReader(data))
		if err != nil {
			return
		}
		if gh.Count == 0 || gh.Count > MaxStripes || gh.Index >= gh.Count {
			t.Fatalf("invalid header accepted: %+v", gh)
		}
		// Accepted headers must re-encode to the bytes they came from.
		if !bytes.Equal(gh.Encode(), data[:groupHeaderLen]) {
			t.Fatalf("re-encode mismatch: %+v", gh)
		}
	})
}

// FuzzReadAck must never panic, never accept more than MaxStripes
// per-stripe entries, and never hand back a negative byte count — every
// value comes off the network and feeds scheduler arithmetic.
func FuzzReadAck(f *testing.F) {
	ok := &Ack{Flushed: 1 << 30, Seen: 12345, Accepted: []int64{1, 2, 3}}
	f.Add(ok.Encode())
	f.Add((&Ack{}).Encode())
	f.Add([]byte("LSLA"))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := ReadAck(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(a.Accepted) > MaxStripes {
			t.Fatalf("%d accepted entries over MaxStripes", len(a.Accepted))
		}
		if a.Flushed < 0 || a.Seen < 0 {
			t.Fatalf("negative counts accepted: %+v", a)
		}
		for _, v := range a.Accepted {
			if v < 0 {
				t.Fatalf("negative accepted entry: %+v", a)
			}
		}
		// Accepted records must re-encode to the bytes they came from.
		enc := a.Encode()
		if !bytes.Equal(enc, data[:len(enc)]) {
			t.Fatalf("re-encode mismatch: %+v", a)
		}
	})
}

// FuzzReadStripeFrame must never panic and must never hand back a length
// above MaxFrameSize — that length is fed to make([]byte, n) by callers.
func FuzzReadStripeFrame(f *testing.F) {
	var ok bytes.Buffer
	writeFrame(&ok, 4096, []byte("payload"))
	f.Add(ok.Bytes())
	var huge bytes.Buffer
	writeFrame(&huge, 0, nil)
	huge.Bytes()[8] = 0xff // length 0xff000000: over MaxFrameSize
	f.Add(huge.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, length, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if length > MaxFrameSize {
			t.Fatalf("oversized frame length %d accepted", length)
		}
	})
}

package stripe

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// This file is the end-of-stream tail reclamation layer of the Sender.
//
// The striped dispatcher's historic weakness is the tail: once the frame
// source runs dry, whatever the slowest stripe is still holding drains at
// that stripe's rate while the fast stripes idle. Kernel and relay
// buffers make it worse — the write-side EWMA measures how fast the local
// pipe *accepts* bytes, not how fast the path *delivers* them, so a slow
// path happily hoards megabytes it will take seconds to flush.
//
// Three cooperating mechanisms close the gap, all safe because the
// receiver's flushed-boundary dedup drops exact duplicate frames:
//
//   - work stealing: queued-but-unwritten frames migrate from the
//     slowest live stripe to a faster one with free budget;
//   - speculative tail replication: an idle fast stripe duplicates a
//     slow stripe's sent-but-unconfirmed (or wedged in-flight) final
//     frames, and whichever copy lands first wins;
//   - adaptive in-flight bounding: with receiver acks flowing, each
//     stripe's unacknowledged bytes are capped near its acked-throughput
//     bandwidth-delay product, so the hoard can never build up.
//
// A stripe whose write has wedged outright (no error, no progress) is
// *superseded* once every frame it owns is covered by another stripe's
// duplicate or the receiver's flushed prefix: its ownership migrates to
// the coverer, the stripe is retired, and the engine closes its
// connection to unblock the wedged writer.

// Ack feeds one receiver delivery report (from stripe index's backward
// channel, stream generation gen) into the scheduler. Safe to call
// concurrently with Run from per-connection reader goroutines.
func (s *Sender) Ack(index, gen int, a *Ack) {
	if a == nil {
		return
	}
	s.mu.Lock()
	if index < 0 || index >= len(s.stripes) {
		s.mu.Unlock()
		return
	}
	now := time.Now()
	s.acksObserved = true
	s.lastAckProgress = now
	if a.Flushed > s.ackedFlushed {
		s.ackedFlushed = a.Flushed
		s.pruneFlushedLocked(a.Flushed)
	}
	var confirm bool
	if a.Flushed >= s.total && !s.confirmed {
		s.confirmed = true
		confirm = true
	}
	st := s.stripes[index]
	if gen == st.gen && a.Seen > st.ackSeen {
		if !st.genAcked {
			// First ack of the generation anchors the measurement window;
			// the bytes before it include handshake idle and say nothing
			// about drain rate.
			st.genAcked = true
			st.ackWinAt, st.ackWinSeen = now, a.Seen
		} else if dt := now.Sub(st.ackWinAt).Seconds(); dt >= minAckRateWindow.Seconds() {
			bps := float64(a.Seen-st.ackWinSeen) / dt
			if st.ackBps == 0 {
				st.ackBps = bps
			} else {
				st.ackBps = 0.7*st.ackBps + 0.3*bps
			}
			st.ackWinAt, st.ackWinSeen = now, a.Seen
		}
		st.ackSeen = a.Seen
		st.lastAckAt = now
	}
	for i, v := range a.Accepted {
		if i < len(s.ackAccepted) && v > s.ackAccepted[i] {
			s.ackAccepted[i] = v
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	if confirm {
		close(s.confirmCh)
	}
}

// pruneFlushedLocked drops sent-list entries wholly inside the
// receiver's contiguous prefix: those frames are delivered, keep their
// byte credit, and no longer need replay or speculation.
func (s *Sender) pruneFlushedLocked(flushed int64) {
	for _, st := range s.stripes {
		if len(st.sent) == 0 {
			continue
		}
		kept := st.sent[:0]
		for _, f := range st.sent {
			if f.off+int64(f.n) > flushed {
				kept = append(kept, f)
			}
		}
		st.sent = kept
	}
}

// effRateLocked is the stripe's best-known delivery rate: 0 for a wedged
// write, the receiver-acked drain rate when available, else the
// write-side EWMA.
func (s *Sender) effRateLocked(st *stripeState) float64 {
	if s.writeStuckLocked(st) {
		return 0
	}
	if st.genAcked && st.ackBps > 0 {
		return st.ackBps
	}
	return st.ewmaBps
}

// writeStuckLocked reports a frame write that has blocked longer than
// the stuck timeout — the path is wedged, not merely slow.
func (s *Sender) writeStuckLocked(st *stripeState) bool {
	return st.inflight && s.stuckTimeout > 0 && time.Since(st.writeStart) > s.stuckTimeout
}

// commitmentLocked is how many payload bytes the stripe is already
// responsible for pushing: unacknowledged pipe contents plus everything
// queued (speculative duplicates included) and in flight.
func (s *Sender) commitmentLocked(st *stripeState) int64 {
	c := st.pipeWritten - st.ackSeen
	if st.inflight {
		c += int64(st.cur.n)
	}
	for _, f := range st.queue {
		c += int64(f.n)
	}
	for _, sf := range st.specq {
		c += int64(sf.n)
	}
	return c
}

// budgetLocked is the stripe's in-flight byte allowance: the configured
// fixed cap, or an adaptive acked-throughput × horizon clamp bounded to
// [2 frames, maxInflightBudget].
func (s *Sender) budgetLocked(st *stripeState) int64 {
	if s.inflightBytes > 0 {
		return s.inflightBytes
	}
	rate := st.ackBps
	if rate <= 0 {
		rate = st.ewmaBps
	}
	b := int64(rate * defaultInflightHorizon.Seconds())
	if min := 2 * int64(s.frameSize); b < min {
		b = min
	}
	if b > maxInflightBudget {
		b = maxInflightBudget
	}
	return b
}

// capacityLocked returns how many more frames and bytes the stripe may
// take on right now. Until the stripe's stream has acked at least once
// (or when byte budgets are disabled), the legacy frame-count bound
// governs; after that, the byte budget does. The adaptive budget
// additionally waits for a measured drain rate — sizing it off the
// write-side EWMA would let relay buffers that swallow writes instantly
// inflate the budget without bound.
func (s *Sender) capacityLocked(st *stripeState) (frames int, bytes int64) {
	if st.state != stripeLive {
		return 0, 0
	}
	if s.inflightBytes < 0 || !st.genAcked || (s.inflightBytes == 0 && st.ackBps == 0) {
		q := len(st.queue) + len(st.specq)
		if st.inflight {
			q++
		}
		return s.queueFrames - q, math.MaxInt64
	}
	return math.MaxInt32, s.budgetLocked(st) - s.commitmentLocked(st)
}

// eligibleLocked reports whether the stripe may take one more frame of n
// bytes.
func (s *Sender) eligibleLocked(st *stripeState, n int) bool {
	frames, bytes := s.capacityLocked(st)
	return frames > 0 && bytes >= int64(n)
}

// mayEndLocked gates the end frame. In ack mode, workers keep their
// stripes live through the tail — available as speculation thieves —
// until the receiver confirms the whole group (or stops acking, so the
// classic unwind still terminates against a silent peer). A short
// stream can run its source dry before the first ack ever arrives —
// the dispatch burst outruns the feedback loop — so "no acks yet" is
// not treated as a silent peer until a full stuck timeout has passed
// since the tail began.
func (s *Sender) mayEndLocked() bool {
	if !s.acks || s.confirmed {
		return true
	}
	if !s.acksObserved {
		return !s.tailStart.IsZero() && time.Since(s.tailStart) > s.stuckTimeout
	}
	return time.Since(s.lastAckProgress) > s.stuckTimeout
}

// stealLocked migrates queued-but-unwritten frames from the slowest live
// stripe to the fastest one with free budget. Only provably useful moves
// happen: the victim's measured rate must trail the thief's by the steal
// threshold (or its write must be wedged), so symmetric paths never
// steal. Returns the callback to fire outside the lock, or nil.
func (s *Sender) stealLocked() func() {
	victim := -1
	var vRate float64
	for i, st := range s.stripes {
		if st.state != stripeLive || len(st.queue) == 0 {
			continue
		}
		r := s.effRateLocked(st)
		if victim < 0 || r < vRate {
			victim, vRate = i, r
		}
	}
	if victim < 0 {
		return nil
	}
	vs := s.stripes[victim]
	vStuck := s.writeStuckLocked(vs)
	if !vStuck && vRate <= 0 {
		return nil // unmeasured, not provably slow
	}
	thief := -1
	var tRate float64
	for i, st := range s.stripes {
		if i == victim || st.state != stripeLive {
			continue
		}
		r := s.effRateLocked(st)
		if r <= 0 {
			continue
		}
		if !vStuck && r < s.stealThreshold*vRate {
			continue
		}
		if !s.eligibleLocked(st, vs.queue[len(vs.queue)-1].n) {
			continue
		}
		if thief < 0 || r > tRate {
			thief, tRate = i, r
		}
	}
	if thief < 0 {
		return nil
	}
	ts := s.stripes[thief]
	frames, bytes := s.capacityLocked(ts)
	cut := len(vs.queue)
	for cut > 0 && frames > 0 {
		n := int64(vs.queue[cut-1].n)
		if n > bytes {
			break
		}
		bytes -= n
		frames--
		cut--
	}
	moved := len(vs.queue) - cut
	if moved == 0 {
		return nil
	}
	ts.queue = append(ts.queue, vs.queue[cut:]...)
	vs.queue = vs.queue[:cut]
	s.stolen += int64(moved)
	cb := s.onSteal
	logf := s.logf
	return func() {
		if logf != nil {
			logf("stripe steal: %d queued frames %d -> %d", moved, victim, thief)
		}
		if cb != nil {
			cb(victim, thief, moved)
		}
	}
}

// speculateLocked lets an idle fast stripe duplicate a slow stripe's
// unconfirmed tail — its wedged in-flight frame and sent-but-unflushed
// frames. The receiver drops whichever copy arrives second, so the only
// cost is redundant bytes on the fast path; the gain is not waiting for
// the slow path to drain what it already swallowed.
func (s *Sender) speculateLocked() func() {
	for v, vs := range s.stripes {
		if !victimHoldsFrames(vs.state) {
			continue
		}
		tail := s.unconfirmedTailLocked(vs)
		if len(tail) == 0 {
			continue
		}
		vStuck := s.writeStuckLocked(vs)
		vRate := s.effRateLocked(vs)
		if !vStuck && vRate <= 0 {
			continue
		}
		var tailBytes int64
		for _, f := range tail {
			tailBytes += int64(f.n)
		}
		thief := -1
		var tRate float64
		for t, ts := range s.stripes {
			if t == v || ts.state != stripeLive || len(ts.queue) > 0 || len(ts.specq) > 0 {
				continue
			}
			r := s.effRateLocked(ts)
			if r <= 0 {
				continue
			}
			if !vStuck {
				// Against a merely-slow (not wedged) victim, duplication
				// costs real bandwidth, so it demands proof: both sides
				// must have receiver-measured drain rates. The write-side
				// EWMA rates local buffer acceptance, not delivery — on a
				// buffered path it reads in memcpy units and would happily
				// elect the slow stripe as the "fast" thief.
				if !ts.genAcked || ts.ackBps <= 0 || !vs.genAcked || vs.ackBps <= 0 {
					continue
				}
				if r < s.stealThreshold*vRate {
					continue
				}
				// Only duplicate when the thief would land the tail before
				// the victim drains its own backlog.
				tCost := float64(s.commitmentLocked(ts)+tailBytes) / r
				vCost := float64(s.commitmentLocked(vs)) / vRate
				if tCost >= vCost {
					continue
				}
			}
			if thief < 0 || r > tRate {
				thief, tRate = t, r
			}
		}
		if thief < 0 {
			continue
		}
		ts := s.stripes[thief]
		// Take only what the thief has capacity for, and take the
		// SUFFIX: a live victim drains its pipe forward from the lowest
		// offset, so a thief covering the same bytes front-to-back
		// merely races it byte for byte. Covering from the back makes
		// the two meet in the middle — the tail clears at their
		// combined rate. (Later rounds pick up whatever is left.)
		// Without acks nothing ever prunes the sent list, so this cap
		// is also what keeps ackless speculation from duplicating a
		// slow stripe's entire history at once.
		frames, bytes := s.capacityLocked(ts)
		take, takeBytes := 0, int64(0)
		for i := len(tail) - 1; i >= 0; i-- {
			n := int64(tail[i].n)
			if take >= frames || takeBytes+n > bytes {
				break
			}
			take++
			takeBytes += n
		}
		if take == 0 {
			continue
		}
		tail = tail[len(tail)-take:]
		for _, f := range tail {
			ts.specq = append(ts.specq, specFrame{frame: f, victim: v, victimGen: vs.gen})
			s.specPending[f.off] = true
		}
		s.speculated += int64(len(tail))
		moved := len(tail)
		cb := s.onSpeculate
		logf := s.logf
		victim := v
		th := thief
		return func() {
			if logf != nil {
				logf("stripe speculate: %d tail frames of %d duplicated on %d", moved, victim, th)
			}
			if cb != nil {
				cb(victim, th, moved)
			}
		}
	}
	return nil
}

// unconfirmedTailLocked lists the victim's frames the receiver has not
// flushed and no thief is already covering, ascending by offset: the
// wedged in-flight frame (a full duplicate of a partially-written frame
// is safe — the receiver never ingests a partial) plus unpruned sent
// frames.
func (s *Sender) unconfirmedTailLocked(vs *stripeState) []frame {
	var tail []frame
	add := func(f frame) {
		if f.off+int64(f.n) <= s.ackedFlushed {
			return
		}
		if s.specPending[f.off] {
			return
		}
		if _, ok := s.specDone[f.off]; ok {
			return
		}
		tail = append(tail, f)
	}
	if vs.inflight && !vs.curSpec {
		add(vs.cur)
	}
	for _, f := range vs.sent {
		add(f)
	}
	sort.Slice(tail, func(i, j int) bool { return tail[i].off < tail[j].off })
	return tail
}

// supersedeLocked retires a wedged stripe whose every frame is covered —
// by the receiver's flushed prefix or by a live thief's completed
// duplicate. Ownership of the covered frames migrates to the coverer
// (keeping StripeBytes summing to the stream length), leftover queued
// frames requeue, and the engine is told to close the wedged connection.
func (s *Sender) supersedeLocked() func() {
	for v, vs := range s.stripes {
		if vs.state != stripeLive || !s.writeStuckLocked(vs) {
			continue
		}
		type migration struct {
			f     frame
			rec   specRec
			byRec bool
		}
		var migrate []migration
		covered := true
		check := func(f frame, victimOwned bool) {
			if !covered {
				return
			}
			if f.off+int64(f.n) <= s.ackedFlushed {
				// Delivered. An in-flight frame was never credited, so give
				// the victim its credit now; sent frames already have it.
				if !victimOwned {
					migrate = append(migrate, migration{f: f})
				}
				return
			}
			rec, ok := s.specDone[f.off]
			if !ok || rec.victim != v || rec.victimGen != vs.gen || rec.n != f.n {
				covered = false
				return
			}
			ts := s.stripes[rec.thief]
			if ts.gen != rec.thiefGen || !victimHoldsFrames(ts.state) {
				covered = false
				return
			}
			migrate = append(migrate, migration{f: f, rec: rec, byRec: true})
		}
		if vs.inflight && !vs.curSpec {
			check(vs.cur, false)
		}
		for _, f := range vs.sent {
			check(f, true)
		}
		if !covered {
			continue
		}
		// Apply: migrate covered frames to their coverers, requeue the
		// untouched queue, retire the stripe.
		for _, m := range migrate {
			if !m.byRec {
				vs.bytes += int64(m.f.n) // in-flight frame the victim landed
				continue
			}
			ts := s.stripes[m.rec.thief]
			ts.sent = append(ts.sent, m.f)
			ts.bytes += int64(m.f.n)
			delete(s.specDone, m.f.off)
		}
		for _, f := range vs.sent {
			if f.off+int64(f.n) > s.ackedFlushed {
				vs.bytes -= int64(f.n) // ownership moved to the thief
			}
		}
		vs.sent = nil
		if vs.inflight {
			vs.inflight = false
			vs.curSpec = false
		}
		for _, sf := range vs.specq {
			delete(s.specPending, sf.off)
		}
		vs.specq = nil
		requeued := len(vs.queue)
		s.requeue = append(s.requeue, vs.queue...)
		vs.queue = nil
		if requeued > 0 {
			s.reassigned += int64(requeued)
			if s.phase == phaseEnd {
				s.phase = phaseData
			}
		}
		vs.gen++ // retire the wedged worker when its write finally returns
		vs.state = stripeSuperseded
		vs.lastErr = fmt.Errorf("stripe %d: write wedged for %v; superseded", v, s.stuckTimeout)
		s.superseded++
		cb := s.onSuperseded
		reassign := s.onReassign
		logf := s.logf
		victim := v
		return func() {
			if logf != nil {
				logf("stripe %d superseded: wedged write, all frames covered (%d requeued)", victim, requeued)
			}
			if cb != nil {
				cb(victim)
			}
			if reassign != nil && requeued > 0 {
				reassign(victim, requeued)
			}
		}
	}
	return nil
}

// Stolen returns how many queued frames have migrated off slow stripes
// at end-of-stream.
func (s *Sender) Stolen() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stolen
}

// Speculated returns how many tail frames have been queued as
// speculative duplicates on faster stripes.
func (s *Sender) Speculated() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.speculated
}

// Superseded returns how many wedged stripes were retired with their
// frames re-delivered elsewhere.
func (s *Sender) Superseded() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.superseded
}

// Confirmed reports whether the receiver has acked the whole stream as
// flushed (only possible in ack mode).
func (s *Sender) Confirmed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.confirmed
}

// ConfirmedChan is closed when the receiver confirms full delivery.
func (s *Sender) ConfirmedChan() <-chan struct{} {
	return s.confirmCh
}

// AcceptedBytes returns the receiver-attributed per-stripe contribution
// from the latest ack: exactly which stripe index landed each byte
// first, duplicates excluded. Sums to the stream length once Confirmed.
func (s *Sender) AcceptedBytes() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int64(nil), s.ackAccepted...)
}

// TailDuration reports how long the run spent between the frame source
// running dry and the group draining (0 until Run returns success).
func (s *Sender) TailDuration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tailDur
}

// QueuedBytes returns each stripe's currently committed bytes — queued,
// speculative, and in-flight frames plus unacknowledged pipe contents —
// the quantity the in-flight budget bounds.
func (s *Sender) QueuedBytes() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int64, len(s.stripes))
	for i, st := range s.stripes {
		out[i] = s.commitmentLocked(st)
	}
	return out
}

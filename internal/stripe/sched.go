package stripe

import (
	"context"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"lsl/internal/wire"
)

// This file replaces the synchronous round-robin Send loop with a
// scheduler: a weighted-credit dispatcher feeds one writer goroutine per
// stripe, weights adjust mid-flow from observed per-stripe throughput
// (TCP-Trunking-style proportional splitting instead of round-robin), and
// a stripe's unacknowledged frames are reassigned when it dies. Send is
// kept as the simple one-shot path; Sender is the engine the resilience
// layer drives.

// Stripe lifecycle states.
const (
	stripeIdle       = iota // declared but never attached
	stripeLive              // attached, worker dispatching frames
	stripeEnding            // worker committed to writing its end frame
	stripeFinished          // end frame delivered
	stripeDead              // write failed; awaiting heal (re-Attach) or Abandon
	stripeAbandoned         // given up; its frames were reassigned
	stripeSuperseded        // write wedged; every frame re-delivered elsewhere
)

// Scheduler phases.
const (
	phaseData = iota // frames still being dispatched
	phaseEnd         // all data written; stripes draining end frames
)

// DefaultQueueFrames bounds how many frames may be queued/inflight per
// stripe; small values keep the dispatcher's credit decisions responsive
// to backpressure from a slowing path.
const DefaultQueueFrames = 4

// Tail-reclamation tuning (see steal.go).
const (
	// DefaultStealThreshold is the rate ratio a thief must have over a
	// victim before queued frames migrate or sent frames are speculated.
	DefaultStealThreshold = 1.5
	// DefaultStuckTimeout is how long one frame write may block before
	// the stripe is treated as wedged (rate 0) and, once every one of its
	// frames is covered by another stripe, superseded outright.
	DefaultStuckTimeout = 750 * time.Millisecond
	// defaultInflightHorizon sizes the adaptive per-stripe in-flight byte
	// budget: acked-throughput × horizon, a bandwidth-delay-product-style
	// clamp on how much a slow path may hoard. It must comfortably exceed
	// the ack feedback latency (delivery bursts batch acks on loaded
	// hosts), and because every stripe's budget drains in the same wall
	// time — one horizon — the end-of-stream pipes empty concurrently.
	defaultInflightHorizon = 45 * time.Millisecond
	// minAckRateWindow is the shortest interval ackBps may be measured
	// over. Acks often arrive in bursts (relay scheduling, coalescing);
	// rating individual inter-ack gaps would swing between near-zero and
	// absurd, so the drain rate is measured across windows at least this
	// long.
	minAckRateWindow = 25 * time.Millisecond
	// maintenanceTick re-evaluates time-based conditions (stuck writes,
	// ack staleness) while the dispatcher would otherwise sleep.
	maintenanceTick = 15 * time.Millisecond
	// maxInflightBudget caps the adaptive budget regardless of rate.
	maxInflightBudget = 64 << 20
)

type frame struct {
	off int64
	n   int
}

// specFrame is a speculative duplicate queued on a thief stripe: a copy
// of a frame the victim stripe has sent (or is wedged mid-write on) but
// the receiver has not yet confirmed.
type specFrame struct {
	frame
	victim    int
	victimGen int
}

// specRec records one completed speculative write, keyed by frame offset
// in Sender.specDone. Coverage is only valid while both generations
// still stand.
type specRec struct {
	victim    int
	victimGen int
	thief     int
	thiefGen  int
	n         int
}

// SenderConfig tunes a Sender. The zero value is usable.
type SenderConfig struct {
	// FrameSize is the striping granularity (default DefaultFrameSize,
	// capped at MaxFrameSize).
	FrameSize int
	// Weights gives each stripe's initial relative share (e.g. the
	// planner's predicted per-route throughput). Missing or
	// non-positive entries default to 1.
	Weights []float64
	// QueueFrames bounds frames queued+inflight per stripe (default
	// DefaultQueueFrames).
	QueueFrames int
	// RebalanceBytes recomputes weights from observed per-stripe
	// throughput every time this many bytes have been written. <= 0
	// disables mid-flow rebalancing.
	RebalanceBytes int64
	// OnStripeDown fires (off the scheduler lock) when a stripe's
	// write fails; the callback must not block for long and must not
	// call back into the Sender.
	OnStripeDown func(index int, err error)
	// OnRebalance fires with the new weight vector after each
	// throughput-driven rebalance.
	OnRebalance func(weights []float64)
	// OnReassign fires when a dead stripe's frames are requeued for
	// other stripes.
	OnReassign func(index, frames int)
	// Acks opens stripe streams with the ack-requesting "LSLT" header so
	// an ack-capable receiver reports delivery on the backward channel
	// (feed the records in via Sender.Ack). Old receivers reject "LSLT",
	// so only enable against peers known to run this version.
	Acks bool
	// StealThreshold is the thief/victim rate ratio gating end-of-stream
	// work stealing and tail speculation. 0 means DefaultStealThreshold;
	// negative disables stealing, speculation, and supersession.
	StealThreshold float64
	// InflightBytes bounds each stripe's unacknowledged bytes once acks
	// are flowing: >0 is a fixed per-stripe budget, 0 derives one
	// adaptively from acked throughput (rate × a short horizon,
	// BDP-style), and negative keeps the legacy QueueFrames frame-count
	// bound only. Without acks the frame-count bound always governs.
	InflightBytes int64
	// StuckTimeout is how long one frame write may block before the
	// stripe counts as wedged (default DefaultStuckTimeout).
	StuckTimeout time.Duration
	// OnSteal fires after queued frames migrate from a slow stripe to a
	// faster one at end-of-stream.
	OnSteal func(victim, thief, frames int)
	// OnSpeculate fires after a thief queues duplicates of a victim's
	// unconfirmed tail frames.
	OnSpeculate func(victim, thief, frames int)
	// OnSuperseded fires when a wedged stripe is retired because every
	// one of its frames was re-delivered elsewhere; the engine should
	// close the stripe's connection to unblock the wedged write.
	OnSuperseded func(index int)
	// Logf, if set, receives debug lines.
	Logf func(format string, args ...any)
}

type stripeState struct {
	state      int
	gen        int // bumped each Attach/Abandon; stale workers self-retire
	w          io.Writer
	queue      []frame // dispatched, not yet picked up by the worker
	specq      []specFrame
	inflight   bool
	cur        frame     // frame the worker is writing right now
	curSpec    bool      // cur is a speculative duplicate a victim still owns
	writeStart time.Time // when the in-flight frame write began
	sent       []frame   // frames written this generation (replayed on death)
	bytes      int64     // payload bytes successfully written, all generations
	weight     float64
	credit     float64
	ewmaBps    float64 // write-side throughput (local pipe acceptance)
	// Ack-side accounting, reset each generation.
	pipeWritten int64 // payload bytes written into this gen's stream
	ackSeen     int64 // receiver-reported bytes drained from this gen
	genAcked    bool
	ackBps      float64 // receiver-observed drain throughput EWMA
	lastAckAt   time.Time
	ackWinAt    time.Time // start of the current rate-measurement window
	ackWinSeen  int64     // ackSeen at the window start
	attachedAt  time.Time
	lastErr     error
}

// Sender stripes src (of length total) across up to `stripes` attached
// streams. The zero value is not usable; construct with NewSender, Attach
// each stream (possibly concurrently with Run), and call Run once.
//
// Dispatching is deficit-round-robin: each eligible stripe accrues credit
// proportional to its weight, and the frame goes to the stripe with the
// most accumulated credit. A stripe whose queue is full accrues nothing,
// so a stalling path sheds load to its peers instead of stalling the
// group. There are no per-frame acknowledgements: when a stripe dies,
// every frame of its current generation is requeued (the receiver drops
// exact duplicates), and a replacement stream for the same index may be
// attached at any time.
type Sender struct {
	group wire.SessionID
	src   io.ReaderAt
	total int64

	frameSize      int
	queueFrames    int
	rebalanceBytes int64
	acks           bool
	stealThreshold float64 // < 0: reclamation disabled
	inflightBytes  int64
	stuckTimeout   time.Duration
	onStripeDown   func(int, error)
	onRebalance    func([]float64)
	onReassign     func(int, int)
	onSteal        func(int, int, int)
	onSpeculate    func(int, int, int)
	onSuperseded   func(int)
	logf           func(string, ...any)

	mu      sync.Mutex
	cond    *sync.Cond
	stripes []*stripeState
	phase   int
	nextOff int64
	requeue []frame
	written int64 // payload bytes written across all stripes

	sinceRebalance int64
	rebalances     int64
	reassigned     int64
	stolen         int64
	speculated     int64
	superseded     int64

	// Speculative-duplicate bookkeeping, keyed by frame offset.
	specPending map[int64]bool    // queued on some thief, not yet written
	specDone    map[int64]specRec // written by a thief, unconfirmed

	// Receiver feedback (ack mode).
	ackedFlushed    int64
	ackAccepted     []int64
	acksObserved    bool
	lastAckProgress time.Time
	confirmed       bool
	confirmCh       chan struct{}

	tailStart time.Time // first moment the frame source ran dry
	tailDur   time.Duration

	running bool
	done    bool
	failErr error
}

// NewSender builds a scheduler for one stripe group.
func NewSender(group wire.SessionID, src io.ReaderAt, total int64, stripes int, cfg SenderConfig) (*Sender, error) {
	if stripes <= 0 || stripes > MaxStripes {
		return nil, fmt.Errorf("stripe: %d stripes out of range", stripes)
	}
	if total < 0 {
		return nil, fmt.Errorf("stripe: negative total %d", total)
	}
	fs := cfg.FrameSize
	if fs <= 0 {
		fs = DefaultFrameSize
	}
	if fs > MaxFrameSize {
		fs = MaxFrameSize
	}
	qf := cfg.QueueFrames
	if qf <= 0 {
		qf = DefaultQueueFrames
	}
	steal := cfg.StealThreshold
	if steal == 0 {
		steal = DefaultStealThreshold
	}
	stuck := cfg.StuckTimeout
	if stuck <= 0 {
		stuck = DefaultStuckTimeout
	}
	s := &Sender{
		group:          group,
		src:            src,
		total:          total,
		frameSize:      fs,
		queueFrames:    qf,
		rebalanceBytes: cfg.RebalanceBytes,
		acks:           cfg.Acks,
		stealThreshold: steal,
		inflightBytes:  cfg.InflightBytes,
		stuckTimeout:   stuck,
		onStripeDown:   cfg.OnStripeDown,
		onRebalance:    cfg.OnRebalance,
		onReassign:     cfg.OnReassign,
		onSteal:        cfg.OnSteal,
		onSpeculate:    cfg.OnSpeculate,
		onSuperseded:   cfg.OnSuperseded,
		logf:           cfg.Logf,
		stripes:        make([]*stripeState, stripes),
		specPending:    make(map[int64]bool),
		specDone:       make(map[int64]specRec),
		ackAccepted:    make([]int64, stripes),
		confirmCh:      make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := range s.stripes {
		w := 1.0
		if i < len(cfg.Weights) && cfg.Weights[i] > 0 {
			w = cfg.Weights[i]
		}
		s.stripes[i] = &stripeState{state: stripeIdle, weight: w}
	}
	return s, nil
}

// Attach hands stripe `index` a fresh stream and starts (or restarts) its
// writer. Valid on an idle stripe (initial attach) or a dead one (heal);
// the new worker re-sends the group header and receives the dead
// generation's requeued frames through normal dispatch.
func (s *Sender) Attach(index int, w io.Writer) error {
	_, err := s.AttachGen(index, w)
	return err
}

// AttachGen is Attach returning the new stream's generation, which a
// per-connection ack reader passes to Ack so reports from a dead
// stream's leftovers can never be credited to its replacement.
func (s *Sender) AttachGen(index int, w io.Writer) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if index < 0 || index >= len(s.stripes) {
		return 0, fmt.Errorf("stripe: attach index %d out of range", index)
	}
	st := s.stripes[index]
	switch st.state {
	case stripeIdle, stripeDead:
	case stripeAbandoned:
		return 0, fmt.Errorf("stripe %d: attach after abandon", index)
	case stripeSuperseded:
		return 0, fmt.Errorf("stripe %d: attach after supersession", index)
	default:
		return 0, fmt.Errorf("stripe %d: already attached", index)
	}
	st.gen++
	st.w = w
	st.state = stripeLive
	st.credit = 0
	st.lastErr = nil
	st.pipeWritten = 0
	st.ackSeen = 0
	st.genAcked = false
	st.ackBps = 0
	st.lastAckAt = time.Time{}
	st.ackWinAt = time.Time{}
	st.ackWinSeen = 0
	st.attachedAt = time.Now()
	go s.worker(index, st.gen)
	s.cond.Broadcast()
	return st.gen, nil
}

// Abandon permanently retires a stripe (heal budget exhausted): its
// outstanding frames are requeued for the surviving stripes and no
// replacement may attach.
func (s *Sender) Abandon(index int, err error) {
	s.mu.Lock()
	if index < 0 || index >= len(s.stripes) {
		s.mu.Unlock()
		return
	}
	st := s.stripes[index]
	switch st.state {
	case stripeAbandoned, stripeFinished:
		s.mu.Unlock()
		return
	}
	st.gen++ // retire any live worker
	n := s.requeueStripeLocked(st)
	st.state = stripeAbandoned
	if err != nil {
		st.lastErr = err
	}
	fire := s.onReassign
	if s.done || n == 0 {
		fire = nil
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	if fire != nil {
		fire(index, n)
	}
}

// requeueStripeLocked moves a stripe's whole current generation —
// inflight frame, queued frames, and frames already written but not
// end-confirmed — back onto the global requeue, and reopens the data
// phase if it had closed. The written-but-unconfirmed frames come off
// the stripe's byte count: they died with the connection, and whichever
// stripe rewrites them gets the credit, so StripeBytes always sums to
// the delivered stream length.
//
// Speculative duplicates this stripe was carrying for a victim are
// dropped, not requeued — the victim still owns those frames, and
// requeuing a duplicate would double-deliver the credit. Any coverage
// this stripe provided as a thief, or held as a victim, is invalidated.
func (s *Sender) requeueStripeLocked(st *stripeState) int {
	index := -1
	for i, other := range s.stripes {
		if other == st {
			index = i
			break
		}
	}
	n := 0
	if st.inflight {
		if !st.curSpec {
			s.requeue = append(s.requeue, st.cur)
			n++
		}
		st.inflight = false
		st.curSpec = false
	}
	for _, sf := range st.specq {
		delete(s.specPending, sf.off)
	}
	st.specq = nil
	for off, rec := range s.specDone {
		if rec.thief == index || rec.victim == index {
			delete(s.specDone, off)
		}
	}
	s.requeue = append(s.requeue, st.queue...)
	n += len(st.queue)
	st.queue = nil
	for _, f := range st.sent {
		st.bytes -= int64(f.n)
	}
	s.requeue = append(s.requeue, st.sent...)
	n += len(st.sent)
	st.sent = nil
	if n > 0 {
		s.reassigned += int64(n)
		if s.phase == phaseEnd {
			s.phase = phaseData
		}
	}
	return n
}

// stripeDown records a write failure: the stripe becomes dead, its
// generation's frames are requeued, and the OnStripeDown/OnReassign
// callbacks fire so a healing engine can dial a replacement.
func (s *Sender) stripeDown(index, gen int, err error) {
	s.mu.Lock()
	st := s.stripes[index]
	if st.gen != gen || s.done {
		s.mu.Unlock()
		return
	}
	st.state = stripeDead
	st.lastErr = err
	n := s.requeueStripeLocked(st)
	down, reassign := s.onStripeDown, s.onReassign
	s.cond.Broadcast()
	s.mu.Unlock()
	if s.logf != nil {
		s.logf("stripe %d down after %d reassigned frames: %v", index, n, err)
	}
	if down != nil {
		down(index, err)
	}
	if reassign != nil && n > 0 {
		reassign(index, n)
	}
}

// fail aborts the whole group (source read error, context cancellation).
func (s *Sender) fail(err error) {
	s.mu.Lock()
	if s.failErr == nil && !s.done {
		s.failErr = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// worker drains one stripe's queue onto its stream. It retires itself
// when its generation is superseded by a re-Attach or Abandon.
func (s *Sender) worker(index, gen int) {
	st := s.stripes[index]
	s.mu.Lock()
	w := st.w
	s.mu.Unlock()

	gh := &GroupHeader{
		Group:    s.group,
		Index:    uint8(index),
		Count:    uint8(len(s.stripes)),
		TotalLen: uint64(s.total),
		Acks:     s.acks,
	}
	if _, err := w.Write(gh.Encode()); err != nil {
		s.stripeDown(index, gen, fmt.Errorf("group header: %w", err))
		return
	}

	for {
		s.mu.Lock()
		var f frame
		var isSpec bool
		var specVictim, specVictimGen int
	pick:
		for {
			if st.gen != gen || s.failErr != nil || s.done {
				s.mu.Unlock()
				return
			}
			if len(st.queue) > 0 {
				f = st.queue[0]
				st.queue = st.queue[1:]
				break
			}
			for len(st.specq) > 0 {
				sf := st.specq[0]
				st.specq = st.specq[1:]
				delete(s.specPending, sf.off)
				// A victim that died, healed, or was superseded since the
				// duplicate was queued no longer owns this frame: skip it.
				vs := s.stripes[sf.victim]
				if vs.gen != sf.victimGen || !victimHoldsFrames(vs.state) {
					continue
				}
				f = sf.frame
				isSpec, specVictim, specVictimGen = true, sf.victim, sf.victimGen
				break pick
			}
			if s.phase == phaseEnd && !st.inflight && s.mayEndLocked() {
				// Commit to the end frame before unlocking so the
				// dispatcher cannot hand this stripe more data if
				// another stripe's death reopens the data phase.
				st.state = stripeEnding
				s.cond.Broadcast()
				s.mu.Unlock()
				if err := writeFrame(w, uint64(s.total), nil); err != nil {
					s.stripeDown(index, gen, fmt.Errorf("end frame: %w", err))
					return
				}
				s.mu.Lock()
				if st.gen == gen {
					st.state = stripeFinished
					s.cond.Broadcast()
				}
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
		}
		st.inflight = true
		st.cur = f
		st.curSpec = isSpec
		st.writeStart = time.Now()
		s.cond.Broadcast() // queue slot freed
		s.mu.Unlock()

		buf := make([]byte, f.n)
		if _, err := s.src.ReadAt(buf, f.off); err != nil {
			// A source failure dooms every stripe, not just this one.
			s.fail(fmt.Errorf("stripe: read source at %d: %w", f.off, err))
			return
		}
		start := time.Now()
		err := writeFrame(w, uint64(f.off), buf)
		elapsed := time.Since(start)
		if err != nil {
			s.stripeDown(index, gen, err)
			return
		}

		var rebalanced []float64
		s.mu.Lock()
		if st.gen != gen {
			// Abandon requeued cur already; the duplicate the receiver
			// may see is dropped there.
			s.mu.Unlock()
			return
		}
		st.inflight = false
		st.curSpec = false
		st.pipeWritten += int64(f.n)
		s.written += int64(f.n)
		if isSpec {
			// The duplicate is on the wire, but the frame still belongs to
			// its victim: record coverage, never credit the thief's sent
			// list, so StripeBytes cannot double-count. Attribution moves
			// only if the victim is later superseded.
			vs := s.stripes[specVictim]
			if vs.gen == specVictimGen && victimHoldsFrames(vs.state) {
				s.specDone[f.off] = specRec{
					victim: specVictim, victimGen: specVictimGen,
					thief: index, thiefGen: gen, n: f.n,
				}
			}
		} else {
			st.sent = append(st.sent, f)
			st.bytes += int64(f.n)
		}
		if sec := elapsed.Seconds(); sec > 0 {
			bps := float64(f.n) / sec
			if st.ewmaBps == 0 {
				st.ewmaBps = bps
			} else {
				st.ewmaBps = 0.7*st.ewmaBps + 0.3*bps
			}
		}
		s.sinceRebalance += int64(f.n)
		if s.rebalanceBytes > 0 && s.sinceRebalance >= s.rebalanceBytes {
			rebalanced = s.rebalanceLocked()
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		if rebalanced != nil && s.onRebalance != nil {
			s.onRebalance(rebalanced)
		}
	}
}

// victimHoldsFrames reports whether a stripe in the given state still
// owns its sent-but-unconfirmed frames (so duplicating them helps).
func victimHoldsFrames(state int) bool {
	switch state {
	case stripeLive, stripeEnding, stripeFinished:
		return true
	}
	return false
}

// rebalanceLocked resets each live stripe's weight to its observed
// throughput, so the credit dispatcher tracks what the paths are
// actually delivering rather than what the planner predicted. The
// receiver-acked drain rate is preferred when available: the write-side
// EWMA measures local pipe acceptance, which kernel and relay buffering
// can inflate far beyond what the path delivers.
func (s *Sender) rebalanceLocked() []float64 {
	s.sinceRebalance = 0
	sampled := false
	for _, st := range s.stripes {
		if st.state == stripeLive && (st.ackBps > 0 || st.ewmaBps > 0) {
			sampled = true
			break
		}
	}
	if !sampled {
		return nil
	}
	out := make([]float64, len(s.stripes))
	for i, st := range s.stripes {
		if st.state == stripeLive {
			if st.ackBps > 0 {
				st.weight = st.ackBps
			} else if st.ewmaBps > 0 {
				st.weight = st.ewmaBps
			}
		}
		out[i] = st.weight
	}
	s.rebalances++
	if s.logf != nil {
		s.logf("stripe rebalance #%d: weights %v", s.rebalances, out)
	}
	return out
}

// pickStripeLocked runs the deficit-round-robin credit round for a frame
// of n bytes and returns the chosen stripe index, or -1 if no live stripe
// has queue space.
func (s *Sender) pickStripeLocked(n int) int {
	var elig []int
	maxW := 0.0
	for i, st := range s.stripes {
		if s.eligibleLocked(st, n) {
			elig = append(elig, i)
			if st.weight > maxW {
				maxW = st.weight
			}
		}
	}
	if len(elig) == 0 {
		return -1
	}
	if maxW <= 0 {
		maxW = 1
	}
	need := float64(n)
	for rounds := 0; ; rounds++ {
		best, bestCredit := -1, math.Inf(-1)
		for _, i := range elig {
			if c := s.stripes[i].credit; c >= need && c > bestCredit {
				best, bestCredit = i, c
			}
		}
		if best >= 0 {
			s.stripes[best].credit -= need
			return best
		}
		// Top up: the heaviest stripe gains a full frame per round, so
		// this terminates quickly; the bound is sheer paranoia.
		for _, i := range elig {
			w := s.stripes[i].weight
			if w <= 0 {
				w = 1e-3
			}
			s.stripes[i].credit += w / maxW * need
		}
		if rounds > 1<<20 {
			return elig[0]
		}
	}
}

// Run dispatches every frame, then drains end frames, returning once all
// stripes have either finished or been abandoned with their frames
// delivered elsewhere. It may be called once.
func (s *Sender) Run(ctx context.Context) error {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return fmt.Errorf("stripe: Run called twice")
	}
	s.running = true
	s.mu.Unlock()

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			s.fail(ctx.Err())
		case <-stop:
		}
	}()
	if s.stealThreshold >= 0 || s.acks {
		// Stuck-write detection, ack staleness, and the end-frame gate are
		// time-based; nudge the dispatcher while it would otherwise sleep.
		go func() {
			t := time.NewTicker(maintenanceTick)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					s.cond.Broadcast()
				case <-stop:
					return
				}
			}
		}()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.failErr != nil {
			s.done = true
			s.cond.Broadcast()
			return s.failErr
		}
		var f frame
		have := false
		if len(s.requeue) > 0 {
			f, have = s.requeue[0], true
		} else if s.nextOff < s.total {
			n := s.frameSize
			if rem := s.total - s.nextOff; rem < int64(n) {
				n = int(rem)
			}
			f, have = frame{off: s.nextOff, n: n}, true
		}
		if have {
			if i := s.pickStripeLocked(f.n); i >= 0 {
				if len(s.requeue) > 0 {
					s.requeue = s.requeue[1:]
				} else {
					s.nextOff += int64(f.n)
				}
				s.stripes[i].queue = append(s.stripes[i].queue, f)
				s.cond.Broadcast()
				continue
			}
			if s.stuckLocked() {
				s.done = true
				s.cond.Broadcast()
				return fmt.Errorf("stripe: frames remain but every stripe is finished or abandoned (%w)", s.firstStripeErrLocked())
			}
			// Frames exist but no stripe has budget. A wedged stripe whose
			// every frame is already covered elsewhere can still be retired
			// here, freeing the group to make progress.
			if s.runMaintenance(false) {
				continue
			}
			s.cond.Wait()
			continue
		}
		// The frame source is dry: the end-of-stream tail begins. Reclaim
		// work from slow stripes before settling into the end phase.
		if s.tailStart.IsZero() {
			s.tailStart = time.Now()
		}
		if s.runMaintenance(true) {
			continue
		}
		if s.phase == phaseData && s.quiescentLocked() {
			s.phase = phaseEnd
			s.cond.Broadcast()
			continue
		}
		if s.phase == phaseEnd && s.drainedLocked() {
			s.done = true
			s.tailDur = time.Since(s.tailStart)
			s.cond.Broadcast()
			return nil
		}
		s.cond.Wait()
	}
}

// runMaintenance runs one round of tail reclamation — steal, supersede,
// speculate, in that order of preference — firing any callback outside
// the lock. It is called with s.mu held and returns with it held; a true
// return means state changed and the dispatch loop should re-evaluate.
// Stealing and speculation only make sense once the frame source is dry
// (sourceDry); supersession helps whenever a wedged stripe blocks the
// group.
func (s *Sender) runMaintenance(sourceDry bool) bool {
	if s.stealThreshold < 0 {
		return false
	}
	var cb func()
	if sourceDry {
		cb = s.stealLocked()
	}
	if cb == nil {
		cb = s.supersedeLocked()
	}
	if cb == nil && sourceDry {
		cb = s.speculateLocked()
	}
	if cb == nil {
		return false
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	cb()
	s.mu.Lock()
	return true
}

// quiescentLocked reports that every payload byte has been written by
// some stripe: nothing queued, nothing inflight, nothing requeued.
func (s *Sender) quiescentLocked() bool {
	if s.nextOff < s.total || len(s.requeue) > 0 {
		return false
	}
	for _, st := range s.stripes {
		if len(st.queue) > 0 || st.inflight {
			return false
		}
	}
	return true
}

// drainedLocked reports that every stripe reached a terminal state.
func (s *Sender) drainedLocked() bool {
	for _, st := range s.stripes {
		switch st.state {
		case stripeFinished, stripeAbandoned, stripeSuperseded:
		default:
			return false
		}
	}
	return true
}

// stuckLocked reports that no stripe can ever make progress again:
// none idle (could attach), live, ending (could still die and heal), or
// dead (could be healed).
func (s *Sender) stuckLocked() bool {
	for _, st := range s.stripes {
		switch st.state {
		case stripeIdle, stripeLive, stripeEnding, stripeDead:
			return false
		}
	}
	return true
}

func (s *Sender) firstStripeErrLocked() error {
	for _, st := range s.stripes {
		if st.lastErr != nil {
			return st.lastErr
		}
	}
	return fmt.Errorf("no stripe error recorded")
}

// ReplayStripe re-sends stripe index's final generation — group header,
// every frame it had written, and the end frame — onto a fresh stream.
// It is the post-Run heal path: if confirming a stripe's delivery fails
// after Run returned, the caller dials a replacement and replays; the
// receiver drops whatever it already holds.
func (s *Sender) ReplayStripe(index int, w io.Writer) error {
	s.mu.Lock()
	if index < 0 || index >= len(s.stripes) {
		s.mu.Unlock()
		return fmt.Errorf("stripe: replay index %d out of range", index)
	}
	st := s.stripes[index]
	frames := append([]frame(nil), st.sent...)
	s.mu.Unlock()

	gh := &GroupHeader{
		Group:    s.group,
		Index:    uint8(index),
		Count:    uint8(len(s.stripes)),
		TotalLen: uint64(s.total),
		Acks:     s.acks,
	}
	if _, err := w.Write(gh.Encode()); err != nil {
		return fmt.Errorf("stripe %d replay: group header: %w", index, err)
	}
	buf := make([]byte, s.frameSize)
	for _, f := range frames {
		if f.n > len(buf) {
			buf = make([]byte, f.n)
		}
		if _, err := s.src.ReadAt(buf[:f.n], f.off); err != nil {
			return fmt.Errorf("stripe %d replay: read source at %d: %w", index, f.off, err)
		}
		if err := writeFrame(w, uint64(f.off), buf[:f.n]); err != nil {
			return fmt.Errorf("stripe %d replay: %w", index, err)
		}
	}
	if err := writeFrame(w, uint64(s.total), nil); err != nil {
		return fmt.Errorf("stripe %d replay: end frame: %w", index, err)
	}
	return nil
}

// SetWeight overrides one stripe's dispatch weight mid-flow.
func (s *Sender) SetWeight(index int, w float64) {
	s.mu.Lock()
	if index >= 0 && index < len(s.stripes) && w > 0 {
		s.stripes[index].weight = w
	}
	s.mu.Unlock()
}

// Weights returns the current per-stripe dispatch weights.
func (s *Sender) Weights() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.stripes))
	for i, st := range s.stripes {
		out[i] = st.weight
	}
	return out
}

// StripeBytes returns payload bytes delivered per stripe: frames a dead
// connection took down are credited to the stripe that rewrote them, so
// after a complete run the values sum to the stream length.
func (s *Sender) StripeBytes() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int64, len(s.stripes))
	for i, st := range s.stripes {
		out[i] = st.bytes
	}
	return out
}

// Written returns total payload bytes written across all stripes
// (replayed frames count once per write).
func (s *Sender) Written() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.written
}

// Rebalances returns how many throughput-driven weight recomputations
// have happened.
func (s *Sender) Rebalances() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rebalances
}

// Reassigned returns how many frames have been requeued off dead or
// abandoned stripes.
func (s *Sender) Reassigned() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reassigned
}

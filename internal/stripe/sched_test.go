package stripe

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lsl/internal/wire"
)

var errInjectedWrite = errors.New("injected write failure")

// failAfter refuses writes once n bytes have passed through, and poisons
// the pipe's read side so the receiver sees the break too.
type failAfter struct {
	pw *io.PipeWriter
	n  int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n-len(p) < 0 {
		f.pw.CloseWithError(errInjectedWrite)
		return 0, errInjectedWrite
	}
	f.n -= len(p)
	return f.pw.Write(p)
}

// slowWriter adds a fixed delay per write so per-frame throughput samples
// are measurable on any clock.
type slowWriter struct {
	buf   bytes.Buffer
	delay time.Duration
}

func (s *slowWriter) Write(p []byte) (int, error) {
	time.Sleep(s.delay)
	return s.buf.Write(p)
}

func TestSenderRoundTrip(t *testing.T) {
	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(11)).Read(payload)

	const n = 3
	var out bytes.Buffer
	recv := NewReceiver(&out)
	snd, err := NewSender(wire.NewSessionID(), bytes.NewReader(payload), int64(len(payload)), n,
		SenderConfig{FrameSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	attachErrs := make(chan error, n)
	for i := 0; i < n; i++ {
		pr, pw := io.Pipe()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if aerr := recv.Attach(pr); aerr != nil {
				attachErrs <- aerr
			}
		}()
		if err := snd.Attach(i, pw); err != nil {
			t.Fatal(err)
		}
	}
	if err := snd.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(attachErrs)
	for aerr := range attachErrs {
		t.Fatal(aerr)
	}
	if !recv.Complete() {
		t.Fatalf("incomplete: %d of %d", recv.Written(), len(payload))
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("payload mismatch")
	}
	var sum int64
	for _, b := range snd.StripeBytes() {
		if b == 0 {
			t.Fatal("a stripe carried no bytes")
		}
		sum += b
	}
	if sum != int64(len(payload)) {
		t.Fatalf("stripe bytes sum %d, want %d", sum, len(payload))
	}
}

func TestSenderEmptyPayload(t *testing.T) {
	var out bytes.Buffer
	recv := NewReceiver(&out)
	snd, err := NewSender(wire.NewSessionID(), bytes.NewReader(nil), 0, 2, SenderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		pr, pw := io.Pipe()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if aerr := recv.Attach(pr); aerr != nil {
				t.Error(aerr)
			}
		}()
		if err := snd.Attach(i, pw); err != nil {
			t.Fatal(err)
		}
	}
	if err := snd.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !recv.Complete() {
		t.Fatal("empty transfer incomplete")
	}
}

// TestSenderHealsDeadStripe kills one stripe mid-flow, attaches a
// replacement stream for the same index, and expects the requeued frames
// to arrive byte-exact through the healed stripe.
func TestSenderHealsDeadStripe(t *testing.T) {
	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(12)).Read(payload)

	var out bytes.Buffer
	recv := NewReceiver(&out)
	downCh := make(chan int, 8)
	snd, err := NewSender(wire.NewSessionID(), bytes.NewReader(payload), int64(len(payload)), 3,
		SenderConfig{
			FrameSize:    8 << 10,
			QueueFrames:  2,
			OnStripeDown: func(i int, err error) { downCh <- i },
		})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	attach := func(i, failAt int) {
		pr, pw := io.Pipe()
		var w io.Writer = pw
		if failAt > 0 {
			w = &failAfter{pw: pw, n: failAt}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			recv.Attach(pr) // the dying stripe's error is expected
		}()
		if err := snd.Attach(i, w); err != nil {
			t.Error(err)
		}
	}
	attach(0, 0)
	attach(1, 200<<10) // dies partway through
	attach(2, 0)

	runErr := make(chan error, 1)
	go func() { runErr <- snd.Run(context.Background()) }()

	select {
	case idx := <-downCh:
		if idx != 1 {
			t.Errorf("stripe %d down, expected 1", idx)
		}
		attach(idx, 0) // heal with a fresh stream
	case <-time.After(10 * time.Second):
		t.Fatal("stripe never died")
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Run hung after heal")
	}
	wg.Wait()
	if !recv.Complete() {
		t.Fatalf("incomplete after heal: %d of %d", recv.Written(), len(payload))
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("payload mismatch after heal")
	}
	if snd.Reassigned() == 0 {
		t.Fatal("death reassigned no frames")
	}
}

// TestSenderAbandonRedistributes gives up on a dead stripe entirely; the
// survivors must deliver its frames.
func TestSenderAbandonRedistributes(t *testing.T) {
	payload := make([]byte, 512<<10)
	rand.New(rand.NewSource(13)).Read(payload)

	var out bytes.Buffer
	recv := NewReceiver(&out)
	downCh := make(chan int, 8)
	snd, err := NewSender(wire.NewSessionID(), bytes.NewReader(payload), int64(len(payload)), 2,
		SenderConfig{
			FrameSize:    8 << 10,
			QueueFrames:  2,
			OnStripeDown: func(i int, err error) { downCh <- i },
		})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	attach := func(i, failAt int) {
		pr, pw := io.Pipe()
		var w io.Writer = pw
		if failAt > 0 {
			w = &failAfter{pw: pw, n: failAt}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			recv.Attach(pr)
		}()
		if err := snd.Attach(i, w); err != nil {
			t.Error(err)
		}
	}
	attach(0, 0)
	attach(1, 64<<10)

	runErr := make(chan error, 1)
	go func() { runErr <- snd.Run(context.Background()) }()
	select {
	case idx := <-downCh:
		snd.Abandon(idx, errInjectedWrite)
	case <-time.After(10 * time.Second):
		t.Fatal("stripe never died")
	}
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !recv.Complete() || !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("survivor did not deliver the abandoned stripe's frames")
	}
	if err := snd.Attach(1, &bytes.Buffer{}); err == nil {
		t.Fatal("attach after abandon accepted")
	}
}

// TestSenderAllAbandonedFails: once every stripe is gone with frames
// outstanding, Run must fail instead of hanging.
func TestSenderAllAbandonedFails(t *testing.T) {
	payload := make([]byte, 256<<10)
	rand.New(rand.NewSource(14)).Read(payload)
	snd, err := NewSender(wire.NewSessionID(), bytes.NewReader(payload), int64(len(payload)), 1,
		SenderConfig{FrameSize: 8 << 10, QueueFrames: 1})
	if err != nil {
		t.Fatal(err)
	}
	pr, pw := io.Pipe()
	fw := &failAfter{pw: pw, n: 32 << 10}
	go io.Copy(io.Discard, pr)
	if err := snd.Attach(0, fw); err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- snd.Run(context.Background()) }()
	time.Sleep(50 * time.Millisecond) // let it die
	snd.Abandon(0, nil)
	select {
	case err := <-runErr:
		if err == nil {
			t.Fatal("Run returned nil with undelivered frames")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run hung with every stripe abandoned")
	}
}

func TestSenderContextCancel(t *testing.T) {
	payload := make([]byte, 1<<20)
	snd, err := NewSender(wire.NewSessionID(), bytes.NewReader(payload), int64(len(payload)), 1,
		SenderConfig{FrameSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	pr, pw := io.Pipe()
	defer pr.Close()
	if err := snd.Attach(0, pw); err != nil {
		t.Fatal(err)
	}
	// Nobody reads pr, so the worker blocks on the pipe; cancel must
	// still unblock Run.
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- snd.Run(ctx) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-runErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run ignored cancellation")
	}
}

// TestSenderWeightedDispatch checks the credit dispatcher splits load
// proportionally to the configured weights. QueueFrames exceeds the total
// frame count so per-stripe backpressure never constrains eligibility and
// the credit math alone decides the split.
func TestSenderWeightedDispatch(t *testing.T) {
	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(15)).Read(payload)
	var b0, b1 bytes.Buffer
	snd, err := NewSender(wire.NewSessionID(), bytes.NewReader(payload), int64(len(payload)), 2,
		SenderConfig{FrameSize: 16 << 10, Weights: []float64{3, 1}, QueueFrames: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := snd.Attach(0, &b0); err != nil {
		t.Fatal(err)
	}
	if err := snd.Attach(1, &b1); err != nil {
		t.Fatal(err)
	}
	if err := snd.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	sb := snd.StripeBytes()
	if sb[0] < 2*sb[1] {
		t.Fatalf("weight 3:1 produced split %d:%d", sb[0], sb[1])
	}
	// The streams must still reassemble.
	var out bytes.Buffer
	recv := NewReceiver(&out)
	if err := recv.Attach(&b1); err != nil {
		t.Fatal(err)
	}
	if err := recv.Attach(&b0); err != nil {
		t.Fatal(err)
	}
	if !recv.Complete() || !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("weighted streams did not reassemble")
	}
}

// TestSenderRebalances drives enough bytes through asymmetric stripes to
// trigger throughput-driven weight recomputation.
func TestSenderRebalances(t *testing.T) {
	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(16)).Read(payload)
	fast := &slowWriter{delay: 200 * time.Microsecond}
	slow := &slowWriter{delay: 2 * time.Millisecond}
	var calls atomic.Int64
	snd, err := NewSender(wire.NewSessionID(), bytes.NewReader(payload), int64(len(payload)), 2,
		SenderConfig{
			FrameSize:      16 << 10,
			RebalanceBytes: 128 << 10,
			OnRebalance:    func([]float64) { calls.Add(1) },
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := snd.Attach(0, fast); err != nil {
		t.Fatal(err)
	}
	if err := snd.Attach(1, slow); err != nil {
		t.Fatal(err)
	}
	if err := snd.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if snd.Rebalances() == 0 || calls.Load() == 0 {
		t.Fatalf("no rebalance recorded (rebalances=%d calls=%d)", snd.Rebalances(), calls.Load())
	}
	// Rebalanced weights must favor the faster stripe.
	w := snd.Weights()
	if w[0] <= w[1] {
		t.Fatalf("rebalance did not favor the fast stripe: %v", w)
	}
	sb := snd.StripeBytes()
	if sb[0] <= sb[1] {
		t.Fatalf("fast stripe carried %d <= slow stripe %d", sb[0], sb[1])
	}
	var out bytes.Buffer
	recv := NewReceiver(&out)
	if err := recv.Attach(&fast.buf); err != nil {
		t.Fatal(err)
	}
	if err := recv.Attach(&slow.buf); err != nil {
		t.Fatal(err)
	}
	if !recv.Complete() || !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("rebalanced streams did not reassemble")
	}
}

// TestReplayStripeDedup replays a finished stripe onto a fresh stream —
// the receiver must drop every duplicate and stay complete.
func TestReplayStripeDedup(t *testing.T) {
	payload := make([]byte, 256<<10)
	rand.New(rand.NewSource(17)).Read(payload)
	var b0, b1 bytes.Buffer
	snd, err := NewSender(wire.NewSessionID(), bytes.NewReader(payload), int64(len(payload)), 2,
		SenderConfig{FrameSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	snd.Attach(0, &b0)
	snd.Attach(1, &b1)
	if err := snd.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	recv := NewReceiver(&out)
	if err := recv.Attach(&b0); err != nil {
		t.Fatal(err)
	}
	if err := recv.Attach(&b1); err != nil {
		t.Fatal(err)
	}
	if !recv.Complete() {
		t.Fatal("incomplete before replay")
	}
	var replay bytes.Buffer
	if err := snd.ReplayStripe(0, &replay); err != nil {
		t.Fatal(err)
	}
	if err := recv.Attach(&replay); err != nil {
		t.Fatalf("replayed stream rejected: %v", err)
	}
	if !recv.Complete() || !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("replay corrupted the reassembled stream")
	}
}

func TestSenderRunTwice(t *testing.T) {
	snd, err := NewSender(wire.NewSessionID(), bytes.NewReader(nil), 0, 1, SenderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	snd.Attach(0, &b)
	if err := snd.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := snd.Run(context.Background()); err == nil {
		t.Fatal("second Run accepted")
	}
}

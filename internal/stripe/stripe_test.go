package stripe

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"testing/quick"

	"lsl/internal/wire"
)

func TestGroupHeaderRoundTrip(t *testing.T) {
	g := &GroupHeader{Group: wire.NewSessionID(), Index: 2, Count: 4, TotalLen: 123456789}
	got, err := ReadGroupHeader(bytes.NewReader(g.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Group != g.Group || got.Index != g.Index || got.Count != g.Count || got.TotalLen != g.TotalLen {
		t.Fatalf("mismatch: %+v", got)
	}
}

func TestGroupHeaderRejectsBad(t *testing.T) {
	g := &GroupHeader{Group: wire.NewSessionID(), Index: 0, Count: 2, TotalLen: 10}
	enc := g.Encode()
	enc[0] = 'X'
	if _, err := ReadGroupHeader(bytes.NewReader(enc)); err == nil {
		t.Fatal("bad magic accepted")
	}
	enc = g.Encode()
	enc[22] = 0 // count 0
	if _, err := ReadGroupHeader(bytes.NewReader(enc)); err == nil {
		t.Fatal("count 0 accepted")
	}
	enc = g.Encode()
	enc[21], enc[22] = 5, 3 // index >= count
	if _, err := ReadGroupHeader(bytes.NewReader(enc)); err == nil {
		t.Fatal("index >= count accepted")
	}
	if _, err := ReadGroupHeader(bytes.NewReader(enc[:10])); err == nil {
		t.Fatal("truncated accepted")
	}
}

// sendRecv stripes payload over n in-memory pipes and reassembles it.
func sendRecv(t *testing.T, payload []byte, n, frameSize int) []byte {
	t.Helper()
	writers := make([]io.Writer, n)
	readers := make([]io.Reader, n)
	for i := 0; i < n; i++ {
		pr, pw := io.Pipe()
		writers[i], readers[i] = pw, pr
	}
	var out bytes.Buffer
	recv := NewReceiver(&out)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(r io.Reader) {
			defer wg.Done()
			if err := recv.Attach(r); err != nil {
				errs <- err
			}
		}(readers[i])
	}
	if err := Send(wire.NewSessionID(), writers, bytes.NewReader(payload), int64(len(payload)), frameSize); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if !recv.Complete() {
		t.Fatalf("incomplete: written=%d of %d", recv.Written(), len(payload))
	}
	return out.Bytes()
}

func TestStripeRoundTripSingle(t *testing.T) {
	payload := make([]byte, 100_000)
	rand.New(rand.NewSource(1)).Read(payload)
	got := sendRecv(t, payload, 1, 8<<10)
	if !bytes.Equal(got, payload) {
		t.Fatal("mismatch")
	}
}

func TestStripeRoundTripFour(t *testing.T) {
	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(2)).Read(payload)
	got := sendRecv(t, payload, 4, 16<<10)
	if !bytes.Equal(got, payload) {
		t.Fatal("mismatch")
	}
}

func TestStripeOddSizes(t *testing.T) {
	for _, size := range []int{0, 1, 7, 8191, 8192, 8193, 100003} {
		payload := make([]byte, size)
		rand.New(rand.NewSource(int64(size))).Read(payload)
		got := sendRecv(t, payload, 3, 8192)
		if !bytes.Equal(got, payload) {
			t.Fatalf("size %d mismatch", size)
		}
	}
}

func TestStripePropertyRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw, frameRaw uint8, sizeRaw uint16) bool {
		n := int(nRaw%8) + 1
		frame := int(frameRaw)*16 + 64
		size := int(sizeRaw) * 7
		payload := make([]byte, size)
		rand.New(rand.NewSource(seed)).Read(payload)

		writers := make([]io.Writer, n)
		readers := make([]*bytes.Buffer, n)
		for i := range writers {
			readers[i] = &bytes.Buffer{}
			writers[i] = readers[i]
		}
		if err := Send(wire.NewSessionID(), writers, bytes.NewReader(payload), int64(size), frame); err != nil {
			return false
		}
		var out bytes.Buffer
		recv := NewReceiver(&out)
		// Attach in reverse order to exercise out-of-order reassembly.
		for i := n - 1; i >= 0; i-- {
			if err := recv.Attach(readers[i]); err != nil {
				return false
			}
		}
		return recv.Complete() && bytes.Equal(out.Bytes(), payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStripeShortSource(t *testing.T) {
	var sink bytes.Buffer
	err := Send(wire.NewSessionID(), []io.Writer{&sink}, bytes.NewReader([]byte("abc")), 10, 4)
	if err == nil {
		t.Fatal("short source accepted")
	}
}

func TestStripeTooMany(t *testing.T) {
	writers := make([]io.Writer, MaxStripes+1)
	for i := range writers {
		writers[i] = &bytes.Buffer{}
	}
	if err := Send(wire.NewSessionID(), writers, bytes.NewReader(nil), 0, 0); err == nil {
		t.Fatal("too many stripes accepted")
	}
	if err := Send(wire.NewSessionID(), nil, bytes.NewReader(nil), 0, 0); err == nil {
		t.Fatal("zero stripes accepted")
	}
}

func TestReceiverRejectsInconsistentGroup(t *testing.T) {
	recv := NewReceiver(io.Discard)
	g1 := &GroupHeader{Group: wire.NewSessionID(), Index: 0, Count: 2, TotalLen: 10}
	g2 := &GroupHeader{Group: wire.NewSessionID(), Index: 1, Count: 2, TotalLen: 10} // different group
	var s1 bytes.Buffer
	s1.Write(g1.Encode())
	writeFrame(&s1, 10, nil)
	if err := recv.Attach(&s1); err != nil {
		t.Fatal(err)
	}
	var s2 bytes.Buffer
	s2.Write(g2.Encode())
	if err := recv.Attach(&s2); err == nil {
		t.Fatal("inconsistent group accepted")
	}
}

func TestReceiverRejectsOverlap(t *testing.T) {
	recv := NewReceiver(io.Discard)
	g := &GroupHeader{Group: wire.NewSessionID(), Index: 0, Count: 1, TotalLen: 8}
	var s bytes.Buffer
	s.Write(g.Encode())
	writeFrame(&s, 0, []byte("abcd"))
	writeFrame(&s, 2, []byte("zz")) // overlaps written prefix
	err := recv.Attach(&s)
	if err == nil {
		t.Fatal("overlap accepted")
	}
}

// TestStripeOverRealSockets runs the framing across actual TCP
// connections with deliberately unbalanced stripes.
func TestStripeOverRealSockets(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	const n = 3
	payload := make([]byte, 600_000)
	rand.New(rand.NewSource(9)).Read(payload)

	var out bytes.Buffer
	recv := NewReceiver(&out)
	done := make(chan error, n)
	go func() {
		for i := 0; i < n; i++ {
			nc, err := ln.Accept()
			if err != nil {
				done <- err
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				done <- recv.Attach(nc)
			}(nc)
		}
	}()

	writers := make([]io.Writer, n)
	conns := make([]net.Conn, n)
	for i := 0; i < n; i++ {
		nc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = nc
		writers[i] = nc
	}
	if err := Send(wire.NewSessionID(), writers, bytes.NewReader(payload), int64(len(payload)), 32<<10); err != nil {
		t.Fatal(err)
	}
	for _, nc := range conns {
		nc.(*net.TCPConn).CloseWrite()
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("mismatch over sockets")
	}
	for _, nc := range conns {
		nc.Close()
	}
}

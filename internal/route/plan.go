package route

import (
	"fmt"
	"sort"

	"lsl/internal/tcpmodel"
)

// Plan is a chosen session route with its predicted completion time.
type Plan struct {
	// Hops is the node sequence of session-layer hops: source, zero or
	// more depots, destination. (Not the underlying router-level path.)
	Hops []NodeID
	// LegPaths holds the router-level node sequence of each session hop.
	LegPaths [][]NodeID
	// PredictedSeconds is the model's completion-time estimate.
	PredictedSeconds float64
	// DirectSeconds is the baseline direct-TCP estimate, for reporting the
	// expected improvement.
	DirectSeconds float64
}

// Improvement returns the predicted throughput gain of the plan over the
// direct connection (0.6 = +60%).
func (p Plan) Improvement() float64 {
	if p.PredictedSeconds <= 0 {
		return 0
	}
	return p.DirectSeconds/p.PredictedSeconds - 1
}

// UsesDepots reports whether the plan cascades through at least one depot.
func (p Plan) UsesDepots() bool { return len(p.Hops) > 2 }

// DepotDelaySeconds is the per-depot forwarding cost assumed by the
// planner (header parsing, buffer copy, dial).
const DepotDelaySeconds = 0.002

// PlanTransfer picks the best session route for a size-byte transfer from
// src to dst: it evaluates the direct connection and every single- and
// two-depot cascade over the graph's depot nodes, using the analytic TCP
// model on each leg's min-latency path. It returns the plan with the
// smallest predicted completion time (which may be the direct one — LSL is
// "voluntarily utilized ... can be employed selectively").
func (g *Graph) PlanTransfer(src, dst NodeID, size int64) (Plan, error) {
	directPath, _, err := g.MinLatencyPath(src, dst)
	if err != nil {
		return Plan{}, fmt.Errorf("route: no direct path %s->%s: %w", src, dst, err)
	}
	directLeg, err := g.legParams(directPath)
	if err != nil {
		return Plan{}, err
	}
	directSec := directLeg.TransferSeconds(size)

	best := Plan{
		Hops:             []NodeID{src, dst},
		LegPaths:         [][]NodeID{directPath},
		PredictedSeconds: directSec,
		DirectSeconds:    directSec,
	}

	depots := g.depotList(src, dst)
	// Single-depot cascades.
	for _, d := range depots {
		if plan, ok := g.tryCascade(src, dst, size, directSec, d); ok && plan.PredictedSeconds < best.PredictedSeconds {
			best = plan
		}
	}
	// Two-depot cascades.
	for i, d1 := range depots {
		for j, d2 := range depots {
			if i == j {
				continue
			}
			if plan, ok := g.tryCascade(src, dst, size, directSec, d1, d2); ok && plan.PredictedSeconds < best.PredictedSeconds {
				best = plan
			}
		}
	}
	return best, nil
}

func (g *Graph) depotList(src, dst NodeID) []NodeID {
	var out []NodeID
	for _, id := range g.Nodes() {
		n := g.nodes[id]
		if n.Depot && id != src && id != dst {
			out = append(out, id)
		}
	}
	return out
}

// tryCascade evaluates src -> via... -> dst.
func (g *Graph) tryCascade(src, dst NodeID, size int64, directSec float64, via ...NodeID) (Plan, bool) {
	hops := append(append([]NodeID{src}, via...), dst)
	var legs []tcpmodel.PathParams
	var legPaths [][]NodeID
	for i := 0; i+1 < len(hops); i++ {
		path, _, err := g.MinLatencyPath(hops[i], hops[i+1])
		if err != nil {
			return Plan{}, false
		}
		leg, err := g.legParams(path)
		if err != nil {
			return Plan{}, false
		}
		legs = append(legs, leg)
		legPaths = append(legPaths, path)
	}
	sec := tcpmodel.CascadeTransferSeconds(size, legs, DepotDelaySeconds)
	return Plan{
		Hops:             hops,
		LegPaths:         legPaths,
		PredictedSeconds: sec,
		DirectSeconds:    directSec,
	}, true
}

// Addrs resolves the plan's intermediate and final hops to dialable
// addresses (skipping the source), for execution against the real stack.
// Nodes without an Addr yield an error.
func (p Plan) Addrs(g *Graph) (via []string, target string, err error) {
	if len(p.Hops) < 2 {
		return nil, "", fmt.Errorf("route: degenerate plan")
	}
	for _, id := range p.Hops[1:] {
		n, ok := g.Node(id)
		if !ok || n.Addr == "" {
			return nil, "", fmt.Errorf("route: node %s has no address", id)
		}
		if id == p.Hops[len(p.Hops)-1] {
			target = n.Addr
		} else {
			via = append(via, n.Addr)
		}
	}
	return via, target, nil
}

// RankCandidates returns every evaluated plan (direct plus single- and
// two-depot cascades), sorted by predicted completion time — the
// candidate list consumed by the live planner (internal/logistics) and
// the diagnostic output of cmd/lslplan.
func (g *Graph) RankCandidates(src, dst NodeID, size int64) ([]Plan, error) {
	directPath, _, err := g.MinLatencyPath(src, dst)
	if err != nil {
		return nil, err
	}
	directLeg, err := g.legParams(directPath)
	if err != nil {
		return nil, err
	}
	directSec := directLeg.TransferSeconds(size)
	plans := []Plan{{
		Hops:             []NodeID{src, dst},
		LegPaths:         [][]NodeID{directPath},
		PredictedSeconds: directSec,
		DirectSeconds:    directSec,
	}}
	depots := g.depotList(src, dst)
	for _, d := range depots {
		if p, ok := g.tryCascade(src, dst, size, directSec, d); ok {
			plans = append(plans, p)
		}
	}
	for i, d1 := range depots {
		for j, d2 := range depots {
			if i == j {
				continue
			}
			if p, ok := g.tryCascade(src, dst, size, directSec, d1, d2); ok {
				plans = append(plans, p)
			}
		}
	}
	sort.Slice(plans, func(i, j int) bool {
		return plans[i].PredictedSeconds < plans[j].PredictedSeconds
	})
	return plans, nil
}

// Package route makes the "network logistics" decisions the session layer
// exists for (paper §I, §III): given a graph of hosts and depots annotated
// with measured or forecast link performance (package nws), it selects the
// loose source route — direct, or through one or more depots — that the
// analytic TCP model (package tcpmodel) predicts will finish a transfer of
// a given size soonest.
package route

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"lsl/internal/tcpmodel"
)

// NodeID names a host or depot.
type NodeID string

// Node is a graph vertex. Depot nodes may appear as intermediate session
// hops; plain hosts may only terminate sessions.
type Node struct {
	ID    NodeID
	Depot bool
	// Addr is the dialable address used when a plan is executed against
	// the real stack (host:port). Optional for pure planning.
	Addr string
}

// Metrics describes one directed edge's forecast performance.
type Metrics struct {
	RTTSeconds   float64 // round-trip time attributable to this edge
	BandwidthBps float64 // available bandwidth (0 = unknown/unlimited)
	LossProb     float64 // segment loss probability on this edge
}

// Edge is a directed link with metrics.
type Edge struct {
	From, To NodeID
	M        Metrics
}

// Graph is the depot overlay map.
type Graph struct {
	nodes map[NodeID]Node
	adj   map[NodeID][]Edge
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{nodes: map[NodeID]Node{}, adj: map[NodeID][]Edge{}}
}

// AddNode inserts or replaces a node.
func (g *Graph) AddNode(n Node) { g.nodes[n.ID] = n }

// Node looks a node up.
func (g *Graph) Node(id NodeID) (Node, bool) {
	n, ok := g.nodes[id]
	return n, ok
}

// Nodes returns all node IDs, sorted for determinism.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddEdge inserts a directed edge; both endpoints must exist.
func (g *Graph) AddEdge(from, to NodeID, m Metrics) error {
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("route: unknown node %s", from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("route: unknown node %s", to)
	}
	g.adj[from] = append(g.adj[from], Edge{From: from, To: to, M: m})
	return nil
}

// AddDuplex inserts the edge in both directions with the same metrics.
func (g *Graph) AddDuplex(a, b NodeID, m Metrics) error {
	if err := g.AddEdge(a, b, m); err != nil {
		return err
	}
	return g.AddEdge(b, a, m)
}

// SetEdge replaces the metrics of the directed edge from->to, inserting
// the edge if it does not exist yet. This is the live-update path: the
// logistics control plane (internal/logistics) folds fresh NWS forecasts
// into the planning graph between transfers.
func (g *Graph) SetEdge(from, to NodeID, m Metrics) error {
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("route: unknown node %s", from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("route: unknown node %s", to)
	}
	for i := range g.adj[from] {
		if g.adj[from][i].To == to {
			g.adj[from][i].M = m
			return nil
		}
	}
	g.adj[from] = append(g.adj[from], Edge{From: from, To: to, M: m})
	return nil
}

// Edges returns every directed edge, sorted by (From, To) for
// determinism.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for _, id := range g.Nodes() {
		out = append(out, g.adj[id]...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// ErrNoPath is returned when src cannot reach dst.
var ErrNoPath = errors.New("route: no path")

// MinLatencyPath runs Dijkstra on edge RTTs and returns the node sequence
// (inclusive of src and dst) and the summed RTT.
func (g *Graph) MinLatencyPath(src, dst NodeID) ([]NodeID, float64, error) {
	const inf = math.MaxFloat64
	dist := map[NodeID]float64{}
	prev := map[NodeID]NodeID{}
	visited := map[NodeID]bool{}
	for id := range g.nodes {
		dist[id] = inf
	}
	if _, ok := g.nodes[src]; !ok {
		return nil, 0, fmt.Errorf("route: unknown source %s", src)
	}
	if _, ok := g.nodes[dst]; !ok {
		return nil, 0, fmt.Errorf("route: unknown destination %s", dst)
	}
	dist[src] = 0
	for {
		// Linear extract-min: depot overlays are small.
		var u NodeID
		best := inf
		found := false
		for id, d := range dist {
			if !visited[id] && d < best {
				u, best, found = id, d, true
			}
		}
		if !found {
			break
		}
		if u == dst {
			break
		}
		visited[u] = true
		for _, e := range g.adj[u] {
			if nd := dist[u] + e.M.RTTSeconds; nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = u
			}
		}
	}
	if dist[dst] == inf {
		return nil, 0, ErrNoPath
	}
	return rebuild(prev, src, dst), dist[dst], nil
}

// WidestPath maximizes the bottleneck bandwidth from src to dst (edges
// with zero bandwidth are treated as unconstrained).
func (g *Graph) WidestPath(src, dst NodeID) ([]NodeID, float64, error) {
	width := map[NodeID]float64{}
	prev := map[NodeID]NodeID{}
	visited := map[NodeID]bool{}
	if _, ok := g.nodes[src]; !ok {
		return nil, 0, fmt.Errorf("route: unknown source %s", src)
	}
	if _, ok := g.nodes[dst]; !ok {
		return nil, 0, fmt.Errorf("route: unknown destination %s", dst)
	}
	width[src] = math.Inf(1)
	for {
		var u NodeID
		best := 0.0
		found := false
		for id, w := range width {
			if !visited[id] && w > best {
				u, best, found = id, w, true
			}
		}
		if !found {
			break
		}
		if u == dst {
			break
		}
		visited[u] = true
		for _, e := range g.adj[u] {
			bw := e.M.BandwidthBps
			if bw == 0 {
				bw = math.Inf(1)
			}
			w := math.Min(width[u], bw)
			if w > width[e.To] {
				width[e.To] = w
				prev[e.To] = u
			}
		}
	}
	if width[dst] == 0 {
		return nil, 0, ErrNoPath
	}
	return rebuild(prev, src, dst), width[dst], nil
}

func rebuild(prev map[NodeID]NodeID, src, dst NodeID) []NodeID {
	var rev []NodeID
	for at := dst; ; {
		rev = append(rev, at)
		if at == src {
			break
		}
		at = prev[at]
	}
	out := make([]NodeID, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// legParams aggregates the edges of a node sequence into one TCP hop for
// the analytic model: RTTs add, bandwidth bottlenecks, loss combines.
func (g *Graph) legParams(path []NodeID) (tcpmodel.PathParams, error) {
	p := tcpmodel.PathParams{MSSBytes: 1460, DelayedAcks: true}
	survive := 1.0
	for i := 0; i+1 < len(path); i++ {
		e, err := g.edge(path[i], path[i+1])
		if err != nil {
			return p, err
		}
		p.RTTSeconds += e.M.RTTSeconds
		if e.M.BandwidthBps > 0 && (p.BottleneckBps == 0 || e.M.BandwidthBps < p.BottleneckBps) {
			p.BottleneckBps = e.M.BandwidthBps
		}
		survive *= 1 - e.M.LossProb
	}
	p.LossProb = 1 - survive
	return p, nil
}

func (g *Graph) edge(from, to NodeID) (Edge, error) {
	for _, e := range g.adj[from] {
		if e.To == to {
			return e, nil
		}
	}
	return Edge{}, fmt.Errorf("route: no edge %s->%s", from, to)
}

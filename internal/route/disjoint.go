package route

// Multi-path enumeration for striped transfers: a stripe group wants its
// sessions on routes that do not share underlying links, so one congested
// or failing link degrades one stripe instead of all of them.

type dirEdge struct {
	from, to NodeID
}

// edgeSet collects the directed router-level edges a plan traverses
// across all of its session legs.
func (p Plan) edgeSet() map[dirEdge]struct{} {
	out := make(map[dirEdge]struct{})
	for _, path := range p.LegPaths {
		for i := 0; i+1 < len(path); i++ {
			out[dirEdge{path[i], path[i+1]}] = struct{}{}
		}
	}
	return out
}

// DisjointRoutes returns up to k candidate plans for a size-byte transfer
// src->dst whose router-level directed edges are pairwise disjoint,
// greedily admitted in predicted-completion-time order. The fastest
// candidate is always included, so the result is never empty when any
// route exists. k <= 0 removes the cap.
//
// Greedy admission over the ranked list is not a max-flow decomposition —
// it can return fewer paths than the graph supports — but it guarantees
// the paths it does return are the fastest mutually disjoint ones in
// ranking order, which is what stripe weighting wants.
func (g *Graph) DisjointRoutes(src, dst NodeID, size int64, k int) ([]Plan, error) {
	ranked, err := g.RankCandidates(src, dst, size)
	if err != nil {
		return nil, err
	}
	used := make(map[dirEdge]struct{})
	var out []Plan
	for _, p := range ranked {
		if k > 0 && len(out) >= k {
			break
		}
		edges := p.edgeSet()
		conflict := false
		for e := range edges {
			if _, ok := used[e]; ok {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		for e := range edges {
			used[e] = struct{}{}
		}
		out = append(out, p)
	}
	return out, nil
}

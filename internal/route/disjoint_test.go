package route

import "testing"

// multiPath builds a graph with three genuinely link-disjoint ways from
// src to dst: a direct edge, a cascade via depot d1, and a cascade via
// depot d2.
func multiPath() *Graph {
	g := NewGraph()
	for _, n := range []Node{{ID: "src"}, {ID: "d1", Depot: true}, {ID: "d2", Depot: true}, {ID: "dst"}} {
		g.AddNode(n)
	}
	// The direct edge has the lowest RTT (so the direct candidate's
	// router-level path is the direct edge itself, not a detour through
	// a depot's links) but the least bandwidth, so cascades outrank it.
	g.AddDuplex("src", "dst", Metrics{RTTSeconds: 0.008, BandwidthBps: 2e7})
	g.AddDuplex("src", "d1", Metrics{RTTSeconds: 0.005, BandwidthBps: 1e8})
	g.AddDuplex("d1", "dst", Metrics{RTTSeconds: 0.005, BandwidthBps: 1e8})
	g.AddDuplex("src", "d2", Metrics{RTTSeconds: 0.02, BandwidthBps: 5e7})
	g.AddDuplex("d2", "dst", Metrics{RTTSeconds: 0.02, BandwidthBps: 5e7})
	return g
}

func planEdges(t *testing.T, plans []Plan) []map[dirEdge]struct{} {
	t.Helper()
	out := make([]map[dirEdge]struct{}, len(plans))
	for i, p := range plans {
		out[i] = p.edgeSet()
	}
	return out
}

func TestDisjointRoutesAreDisjoint(t *testing.T) {
	g := multiPath()
	plans, err := g.DisjointRoutes("src", "dst", 100<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 3 {
		t.Fatalf("got %d plans, want 3 (d1 cascade, d2 cascade, direct)", len(plans))
	}
	sets := planEdges(t, plans)
	for i := range sets {
		for j := i + 1; j < len(sets); j++ {
			for e := range sets[i] {
				if _, ok := sets[j][e]; ok {
					t.Fatalf("plans %d and %d share edge %v", i, j, e)
				}
			}
		}
	}
	// Ranked order: fastest first.
	for i := 1; i < len(plans); i++ {
		if plans[i].PredictedSeconds < plans[i-1].PredictedSeconds {
			t.Fatalf("plans out of order: %v then %v",
				plans[i-1].PredictedSeconds, plans[i].PredictedSeconds)
		}
	}
}

func TestDisjointRoutesCap(t *testing.T) {
	g := multiPath()
	plans, err := g.DisjointRoutes("src", "dst", 100<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("k=2 returned %d plans", len(plans))
	}
}

// TestDisjointRoutesSharedLink: when every cascade funnels through one
// shared edge, only the best of them can be admitted alongside nothing
// else that reuses it.
func TestDisjointRoutesSharedLink(t *testing.T) {
	g := NewGraph()
	for _, n := range []Node{{ID: "src"}, {ID: "d1", Depot: true}, {ID: "d2", Depot: true}, {ID: "dst"}} {
		g.AddNode(n)
	}
	// Both depots sit behind the same src->hub-style edge pattern:
	// src->d1 is the only way out of src, so every route shares it.
	g.AddDuplex("src", "d1", Metrics{RTTSeconds: 0.005, BandwidthBps: 1e8})
	g.AddDuplex("d1", "d2", Metrics{RTTSeconds: 0.005, BandwidthBps: 1e8})
	g.AddDuplex("d1", "dst", Metrics{RTTSeconds: 0.01, BandwidthBps: 5e7})
	g.AddDuplex("d2", "dst", Metrics{RTTSeconds: 0.01, BandwidthBps: 5e7})
	plans, err := g.DisjointRoutes("src", "dst", 10<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 {
		for _, p := range plans {
			t.Logf("plan %v legs %v", p.Hops, p.LegPaths)
		}
		t.Fatalf("shared first hop admitted %d plans, want 1", len(plans))
	}
}

func TestDisjointRoutesBestAlwaysAdmitted(t *testing.T) {
	g := multiPath()
	ranked, err := g.RankCandidates("src", "dst", 100<<20)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := g.DisjointRoutes("src", "dst", 100<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 || plans[0].PredictedSeconds != ranked[0].PredictedSeconds {
		t.Fatalf("k=1 did not return the overall best plan")
	}
}

func TestDisjointRoutesNoPath(t *testing.T) {
	g := NewGraph()
	g.AddNode(Node{ID: "a"})
	g.AddNode(Node{ID: "b"})
	if _, err := g.DisjointRoutes("a", "b", 1<<20, 0); err == nil {
		t.Fatal("no-path graph accepted")
	}
}

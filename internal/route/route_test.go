package route

import (
	"errors"
	"math"
	"testing"
)

// diamond builds:  src --a-- mid1 --b-- dst
//
//	\---c--- mid2 --d---/
func diamond(a, b, c, d Metrics) *Graph {
	g := NewGraph()
	for _, n := range []Node{{ID: "src"}, {ID: "mid1", Depot: true}, {ID: "mid2", Depot: true}, {ID: "dst"}} {
		g.AddNode(n)
	}
	g.AddDuplex("src", "mid1", a)
	g.AddDuplex("mid1", "dst", b)
	g.AddDuplex("src", "mid2", c)
	g.AddDuplex("mid2", "dst", d)
	return g
}

func TestMinLatencyPicksShorter(t *testing.T) {
	g := diamond(
		Metrics{RTTSeconds: 0.01}, Metrics{RTTSeconds: 0.01},
		Metrics{RTTSeconds: 0.05}, Metrics{RTTSeconds: 0.05},
	)
	path, rtt, err := g.MinLatencyPath("src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[1] != "mid1" {
		t.Fatalf("path=%v", path)
	}
	if math.Abs(rtt-0.02) > 1e-12 {
		t.Fatalf("rtt=%v", rtt)
	}
}

func TestMinLatencyNoPath(t *testing.T) {
	g := NewGraph()
	g.AddNode(Node{ID: "a"})
	g.AddNode(Node{ID: "b"})
	if _, _, err := g.MinLatencyPath("a", "b"); !errors.Is(err, ErrNoPath) {
		t.Fatalf("err=%v", err)
	}
}

func TestMinLatencyUnknownNodes(t *testing.T) {
	g := NewGraph()
	g.AddNode(Node{ID: "a"})
	if _, _, err := g.MinLatencyPath("a", "zz"); err == nil {
		t.Fatal("unknown dst accepted")
	}
	if _, _, err := g.MinLatencyPath("zz", "a"); err == nil {
		t.Fatal("unknown src accepted")
	}
}

func TestWidestPathPicksFatter(t *testing.T) {
	g := diamond(
		Metrics{RTTSeconds: 0.01, BandwidthBps: 5e6}, Metrics{RTTSeconds: 0.01, BandwidthBps: 5e6},
		Metrics{RTTSeconds: 0.05, BandwidthBps: 1e8}, Metrics{RTTSeconds: 0.05, BandwidthBps: 1e8},
	)
	path, width, err := g.WidestPath("src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	if path[1] != "mid2" {
		t.Fatalf("path=%v", path)
	}
	if width != 1e8 {
		t.Fatalf("width=%v", width)
	}
}

func TestWidestPathBottleneckProperty(t *testing.T) {
	// The widest path's bottleneck must be >= any single alternative's.
	g := diamond(
		Metrics{BandwidthBps: 3e6, RTTSeconds: 0.01}, Metrics{BandwidthBps: 9e6, RTTSeconds: 0.01},
		Metrics{BandwidthBps: 7e6, RTTSeconds: 0.01}, Metrics{BandwidthBps: 4e6, RTTSeconds: 0.01},
	)
	_, width, err := g.WidestPath("src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	// alternatives: min(3,9)=3 and min(7,4)=4 -> widest is 4.
	if width != 4e6 {
		t.Fatalf("width=%v", width)
	}
}

func TestAddEdgeRequiresNodes(t *testing.T) {
	g := NewGraph()
	g.AddNode(Node{ID: "a"})
	if err := g.AddEdge("a", "ghost", Metrics{}); err == nil {
		t.Fatal("edge to unknown node accepted")
	}
	if err := g.AddEdge("ghost", "a", Metrics{}); err == nil {
		t.Fatal("edge from unknown node accepted")
	}
}

// paperGraph models Case 1: a lossy long-RTT direct path with a depot at
// the midpoint that halves each leg's RTT.
func paperGraph() *Graph {
	g := NewGraph()
	g.AddNode(Node{ID: "ucsb", Addr: "ucsb:7000"})
	g.AddNode(Node{ID: "denver", Depot: true, Addr: "denver:5000"})
	g.AddNode(Node{ID: "uiuc", Addr: "uiuc:7000"})
	g.AddDuplex("ucsb", "denver", Metrics{RTTSeconds: 0.031, BandwidthBps: 1e8, LossProb: 2.5e-4})
	g.AddDuplex("denver", "uiuc", Metrics{RTTSeconds: 0.035, BandwidthBps: 1e8, LossProb: 2.5e-4})
	return g
}

func TestPlanPrefersDepotForLargeTransfers(t *testing.T) {
	g := paperGraph()
	plan, err := g.PlanTransfer("ucsb", "uiuc", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.UsesDepots() {
		t.Fatalf("64MB plan should cascade: %+v", plan)
	}
	if plan.Hops[1] != "denver" {
		t.Fatalf("hops=%v", plan.Hops)
	}
	if plan.Improvement() <= 0 {
		t.Fatalf("improvement=%v", plan.Improvement())
	}
}

func TestPlanPrefersDirectForTinyTransfers(t *testing.T) {
	g := paperGraph()
	plan, err := g.PlanTransfer("ucsb", "uiuc", 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	if plan.UsesDepots() {
		t.Fatalf("8KB plan should stay direct: %+v", plan)
	}
	if plan.PredictedSeconds != plan.DirectSeconds {
		t.Fatal("direct plan must carry direct estimate")
	}
}

func TestPlanAddrs(t *testing.T) {
	g := paperGraph()
	plan, err := g.PlanTransfer("ucsb", "uiuc", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	via, target, err := plan.Addrs(g)
	if err != nil {
		t.Fatal(err)
	}
	if target != "uiuc:7000" {
		t.Fatalf("target=%s", target)
	}
	if len(via) != 1 || via[0] != "denver:5000" {
		t.Fatalf("via=%v", via)
	}
}

func TestPlanAddrsMissing(t *testing.T) {
	g := paperGraph()
	g.AddNode(Node{ID: "uiuc"}) // clobber the address
	plan, _ := g.PlanTransfer("ucsb", "uiuc", 64<<20)
	if _, _, err := plan.Addrs(g); err == nil {
		t.Fatal("missing addr should error")
	}
}

func TestRankCandidatesSorted(t *testing.T) {
	g := paperGraph()
	g.AddNode(Node{ID: "slowdepot", Depot: true, Addr: "slow:5000"})
	g.AddDuplex("ucsb", "slowdepot", Metrics{RTTSeconds: 0.2, BandwidthBps: 1e6, LossProb: 1e-3})
	g.AddDuplex("slowdepot", "uiuc", Metrics{RTTSeconds: 0.2, BandwidthBps: 1e6, LossProb: 1e-3})
	plans, err := g.RankCandidates("ucsb", "uiuc", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 3 {
		t.Fatalf("plans=%d", len(plans))
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].PredictedSeconds < plans[i-1].PredictedSeconds {
			t.Fatal("not sorted")
		}
	}
	// The worst plan must cascade through the slow depot (with two-depot
	// candidates enumerated, the very worst chains it with another hop).
	last := plans[len(plans)-1]
	viaSlow := false
	for _, h := range last.Hops[1 : len(last.Hops)-1] {
		if h == "slowdepot" {
			viaSlow = true
		}
	}
	if !viaSlow {
		t.Fatalf("worst plan: %v", last.Hops)
	}
}

func TestTwoDepotCascadeConsidered(t *testing.T) {
	// A chain where only src->d1->d2->dst has good legs.
	g := NewGraph()
	for _, n := range []Node{{ID: "s"}, {ID: "d1", Depot: true}, {ID: "d2", Depot: true}, {ID: "t"}} {
		g.AddNode(n)
	}
	leg := Metrics{RTTSeconds: 0.02, BandwidthBps: 1e8, LossProb: 2e-4}
	g.AddDuplex("s", "d1", leg)
	g.AddDuplex("d1", "d2", leg)
	g.AddDuplex("d2", "t", leg)
	plan, err := g.PlanTransfer("s", "t", 128<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Hops) != 4 {
		t.Fatalf("want two-depot cascade, got %v", plan.Hops)
	}
}

func TestLegParamsAggregation(t *testing.T) {
	g := paperGraph()
	path, _, err := g.MinLatencyPath("ucsb", "uiuc")
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.legParams(path)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.RTTSeconds-0.066) > 1e-9 {
		t.Fatalf("rtt=%v", p.RTTSeconds)
	}
	if p.BottleneckBps != 1e8 {
		t.Fatalf("bw=%v", p.BottleneckBps)
	}
	want := 1 - (1-2.5e-4)*(1-2.5e-4)
	if math.Abs(p.LossProb-want) > 1e-12 {
		t.Fatalf("loss=%v want %v", p.LossProb, want)
	}
}

func TestNodesSorted(t *testing.T) {
	g := NewGraph()
	g.AddNode(Node{ID: "zeta"})
	g.AddNode(Node{ID: "alpha"})
	ns := g.Nodes()
	if ns[0] != "alpha" || ns[1] != "zeta" {
		t.Fatalf("nodes=%v", ns)
	}
}

package experiments

import (
	"lsl/internal/lslsim"
	"lsl/internal/stats"
	"lsl/internal/trace"
)

// seedMix decorrelates per-iteration seeds across experiments while
// remaining fully deterministic for a given base seed.
func seedMix(base, iter, stream int64) int64 {
	x := uint64(base)*0x9E3779B97F4A7C15 + uint64(iter)*0xBF58476D1CE4E5B9 + uint64(stream)*0x94D049BB133111EB
	x ^= x >> 31
	return int64(x & 0x7FFFFFFFFFFFFFFF)
}

// RTTResult is one paper-style RTT bar chart (Figures 3, 4, 9): the
// average TCP-trace-measured RTT of each sublink, the direct end-to-end
// connection, and the sum of the sublinks.
type RTTResult struct {
	Sub1Ms, Sub2Ms, E2EMs, SumMs float64
}

// RunRTT measures trace-derived average RTTs over iters transfers of size
// bytes each, in both configurations.
func RunRTT(sc Scenario, size int64, iters int, baseSeed int64) RTTResult {
	var sub1, sub2, e2e []float64
	for i := 0; i < iters; i++ {
		t := sc.Build(seedMix(baseSeed, int64(i), 1))
		res := lslsim.RunCascade(t.E, t.Hops, t.Sess, size)
		if v := res.Traces[0].AvgRTTSeconds(); v > 0 {
			sub1 = append(sub1, v*1000)
		}
		if v := res.Traces[1].AvgRTTSeconds(); v > 0 {
			sub2 = append(sub2, v*1000)
		}

		t2 := sc.Build(seedMix(baseSeed, int64(i), 2))
		dres := lslsim.RunDirect(t2.E, t2.DirectFwd, t2.DirectRev, t2.TCP, size)
		if v := dres.Traces[0].AvgRTTSeconds(); v > 0 {
			e2e = append(e2e, v*1000)
		}
	}
	r := RTTResult{
		Sub1Ms: stats.Mean(sub1),
		Sub2Ms: stats.Mean(sub2),
		E2EMs:  stats.Mean(e2e),
	}
	r.SumMs = r.Sub1Ms + r.Sub2Ms
	return r
}

// SweepPoint is one x-position of a bandwidth-vs-size figure.
type SweepPoint struct {
	Size       int64
	DirectMbps float64
	DirectCI   float64 // 95% half-width
	LSLMbps    float64
	LSLCI      float64
}

// Improvement returns the LSL/direct throughput ratio minus one (e.g.
// +0.60 for the paper's "60 percent" claims).
func (p SweepPoint) Improvement() float64 {
	if p.DirectMbps <= 0 {
		return 0
	}
	return p.LSLMbps/p.DirectMbps - 1
}

// RunSweep measures mean throughput (paper methodology: wall-clock of the
// whole operation, iters iterations per size) for direct TCP and LSL at
// every size.
func RunSweep(sc Scenario, sizes []int64, iters int, baseSeed int64) []SweepPoint {
	out := make([]SweepPoint, 0, len(sizes))
	for si, size := range sizes {
		var direct, cascade []float64
		for i := 0; i < iters; i++ {
			td := sc.Build(seedMix(baseSeed, int64(i), int64(si)*4+1))
			dres := lslsim.RunDirect(td.E, td.DirectFwd, td.DirectRev, td.TCP, size)
			direct = append(direct, dres.Mbps())

			tl := sc.Build(seedMix(baseSeed, int64(i), int64(si)*4+2))
			lres := lslsim.RunCascade(tl.E, tl.Hops, tl.Sess, size)
			cascade = append(cascade, lres.Mbps())
		}
		dm, dci := stats.MeanCI(direct)
		lm, lci := stats.MeanCI(cascade)
		out = append(out, SweepPoint{Size: size, DirectMbps: dm, DirectCI: dci, LSLMbps: lm, LSLCI: lci})
	}
	return out
}

// SeqResult carries the per-run traces of a sequence-growth experiment:
// iters direct transfers and iters cascaded transfers of the same size.
type SeqResult struct {
	Size   int64
	Direct *trace.Set
	Sub1   *trace.Set
	Sub2   *trace.Set
}

// RunSeqTraces gathers the traces behind Figures 11-27. All cascade traces
// are origin-normalized to the session start so sublink 2's curve is
// plotted relative to sublink 1, as in the paper.
func RunSeqTraces(sc Scenario, size int64, iters int, baseSeed int64) SeqResult {
	res := SeqResult{
		Size:   size,
		Direct: &trace.Set{Name: "direct"},
		Sub1:   &trace.Set{Name: "sublink1"},
		Sub2:   &trace.Set{Name: "sublink2"},
	}
	for i := 0; i < iters; i++ {
		td := sc.Build(seedMix(baseSeed, int64(i), 11))
		dres := lslsim.RunDirect(td.E, td.DirectFwd, td.DirectRev, td.TCP, size)
		res.Direct.Runs = append(res.Direct.Runs, dres.Traces[0])
		res.Direct.Origins = append(res.Direct.Origins, dres.Start)

		tl := sc.Build(seedMix(baseSeed, int64(i), 12))
		lres := lslsim.RunCascade(tl.E, tl.Hops, tl.Sess, size)
		res.Sub1.Runs = append(res.Sub1.Runs, lres.Traces[0])
		res.Sub1.Origins = append(res.Sub1.Origins, lres.Start)
		res.Sub2.Runs = append(res.Sub2.Runs, lres.Traces[1])
		res.Sub2.Origins = append(res.Sub2.Origins, lres.Start)
	}
	return res
}

// CaseCurves extracts the (sublink1, sublink2, direct) curves for one of
// the paper's loss-selected comparison figures. which is "min", "median",
// "max" or "avg". For min/median/max the *cascade* run is selected by the
// total retransmissions across both sublinks, and the direct run by its
// own retransmission count, mirroring the paper's like-for-like loss
// comparison.
func (r SeqResult) CaseCurves(which string, gridN int) (sub1, sub2, direct stats.Series) {
	if which == "avg" {
		return r.Sub1.AverageCurve(gridN), r.Sub2.AverageCurve(gridN), r.Direct.AverageCurve(gridN)
	}
	// Joint retransmission count per cascade run.
	joint := make([]float64, len(r.Sub1.Runs))
	for i := range r.Sub1.Runs {
		joint[i] = float64(r.Sub1.Runs[i].Retransmissions() + r.Sub2.Runs[i].Retransmissions())
	}
	var li, di int
	switch which {
	case "min":
		li, di = stats.ArgMin(joint), r.Direct.MinLossRun()
	case "median":
		li, di = stats.ArgMedian(joint), r.Direct.MedianLossRun()
	case "max":
		li, di = stats.ArgMax(joint), r.Direct.MaxLossRun()
	default:
		li, di = 0, 0
	}
	sub1 = r.Sub1.Runs[li].SeqSeriesAt(r.Sub1.Origins[li])
	sub2 = r.Sub2.Runs[li].SeqSeriesAt(r.Sub2.Origins[li])
	direct = r.Direct.Runs[di].SeqSeriesAt(r.Direct.Origins[di])
	return
}

// FinishTimeSeconds returns when a curve reaches its final value — a proxy
// for transfer completion in the sequence plots.
func FinishTimeSeconds(s stats.Series) float64 {
	if len(s) == 0 {
		return 0
	}
	final := s[len(s)-1].Y
	for _, p := range s {
		if p.Y >= final-0.5 {
			return p.X
		}
	}
	return s[len(s)-1].X
}

package experiments

import (
	"strings"
	"testing"

	"lsl/internal/lslsim"
)

func TestScenarioRegistry(t *testing.T) {
	m := Scenarios()
	for _, name := range []string{"case1", "case2", "case3", "osu"} {
		sc, ok := m[name]
		if !ok {
			t.Fatalf("missing scenario %s", name)
		}
		if sc.Label == "" || sc.Build == nil {
			t.Fatalf("scenario %s incomplete", name)
		}
	}
	if _, err := ScenarioByName("nope"); err == nil {
		t.Fatal("unknown scenario should error")
	}
}

func TestTopologyShape(t *testing.T) {
	for name, sc := range Scenarios() {
		tp := sc.Build(1)
		if len(tp.Hops) != 2 {
			t.Fatalf("%s: hops=%d", name, len(tp.Hops))
		}
		if tp.DirectFwd.PropDelay() <= 0 {
			t.Fatalf("%s: no propagation delay", name)
		}
		// The LSL detour must not shorten the propagation path (the paper
		// does not route around anything).
		sum := tp.Hops[0].Fwd.PropDelay() + tp.Hops[1].Fwd.PropDelay()
		if sum < tp.DirectFwd.PropDelay() {
			t.Fatalf("%s: sublink propagation %v < direct %v", name, sum, tp.DirectFwd.PropDelay())
		}
	}
}

func TestSeedMixDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := int64(0); i < 50; i++ {
		for s := int64(0); s < 4; s++ {
			v := seedMix(42, i, s)
			if v < 0 {
				t.Fatal("negative seed")
			}
			if seen[v] {
				t.Fatalf("seed collision at i=%d s=%d", i, s)
			}
			seen[v] = true
		}
	}
	if seedMix(1, 2, 3) != seedMix(1, 2, 3) {
		t.Fatal("seedMix not deterministic")
	}
}

func TestRTTShapesMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r1 := RunRTT(Case1(), 2<<20, 2, 7)
	if r1.Sub1Ms <= 0 || r1.Sub2Ms <= 0 || r1.E2EMs <= 0 {
		t.Fatalf("case1 rtt zeros: %+v", r1)
	}
	// Figure 3: detour adds little (sum within ~15ms of e2e).
	if d := r1.SumMs - r1.E2EMs; d < 0 || d > 15 {
		t.Fatalf("case1 delta=%v want ~6ms", d)
	}
	// Sublinks must each be well under the end-to-end RTT.
	if r1.Sub1Ms >= r1.E2EMs || r1.Sub2Ms >= r1.E2EMs {
		t.Fatalf("sublink RTTs should be under e2e: %+v", r1)
	}

	// Figure 4: loaded depot inflates the sum by more (~20ms).
	r2 := RunRTT(Case2(), 2<<20, 2, 7)
	if d := r2.SumMs - r2.E2EMs; d < 10 || d > 40 {
		t.Fatalf("case2 delta=%v want ~20ms", d)
	}

	// Figure 9: the wired WAN sublink dominates.
	r3 := RunRTT(Case3(), 2<<20, 2, 7)
	if r3.Sub1Ms <= r3.Sub2Ms {
		t.Fatalf("case3 sub1 (%v) should exceed sub2 (%v)", r3.Sub1Ms, r3.Sub2Ms)
	}
}

func TestCase1SweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	pts := RunSweep(Case1(), []int64{32 << 10, 16 << 20}, 3, 11)
	// Figure 5's 32K point: dual connection setup makes LSL slower.
	if pts[0].Improvement() >= 0 {
		t.Fatalf("32K: LSL should lose; improvement %+.2f", pts[0].Improvement())
	}
	// Figure 6 regime: LSL clearly ahead for big transfers.
	if pts[1].Improvement() < 0.10 {
		t.Fatalf("16M: improvement %+.2f, want > +10%%", pts[1].Improvement())
	}
}

func TestWirelessSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	pts := RunSweep(Case3(), []int64{8 << 20}, 3, 13)
	if pts[0].Improvement() <= 0 {
		t.Fatalf("wireless: LSL should win at 8M, improvement %+.2f", pts[0].Improvement())
	}
	// Both are capped by the 5 Mbit/s wireless link.
	if pts[0].LSLMbps > 5.2 || pts[0].DirectMbps > 5.2 {
		t.Fatalf("throughput above wireless capacity: %+v", pts[0])
	}
}

func TestOSUGapPersists(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	pts := RunSweep(CaseOSU(), []int64{64 << 20}, 3, 17)
	if pts[0].Improvement() < 0.10 {
		t.Fatalf("OSU 64M improvement %+.2f, want strong persistent gap", pts[0].Improvement())
	}
}

func TestSeqTracesShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res := RunSeqTraces(Case1(), 16<<20, 4, 19)
	if len(res.Direct.Runs) != 4 || len(res.Sub1.Runs) != 4 || len(res.Sub2.Runs) != 4 {
		t.Fatal("missing runs")
	}
	s1, s2, d := res.CaseCurves("avg", 100)
	// Sublinks finish well before direct (Figure 22).
	f1, f2, fd := FinishTimeSeconds(s1), FinishTimeSeconds(s2), FinishTimeSeconds(d)
	if f1 >= fd || f2 >= fd {
		t.Fatalf("sublinks (%.2f, %.2f) should finish before direct (%.2f)", f1, f2, fd)
	}
	// Sublink 2 trails sublink 1 but only slightly (cascade conservation).
	if f2 < f1 {
		t.Fatalf("sublink2 (%.2f) cannot finish before sublink1 (%.2f)", f2, f1)
	}
	// Loss-case ordering is consistent.
	counts := res.Direct.RetxCounts()
	min, med, max := counts[res.Direct.MinLossRun()], counts[res.Direct.MedianLossRun()], counts[res.Direct.MaxLossRun()]
	if min > med || med > max {
		t.Fatalf("loss ordering broken: %v %v %v", min, med, max)
	}
}

func TestFigureRegistryComplete(t *testing.T) {
	figs := AllFigures()
	if len(figs) != 27 {
		t.Fatalf("want 27 data figures (3-29), got %d", len(figs))
	}
	seen := map[int]bool{}
	for _, f := range figs {
		if f.Num < 3 || f.Num > 29 {
			t.Fatalf("figure number %d out of range", f.Num)
		}
		if seen[f.Num] {
			t.Fatalf("duplicate figure %d", f.Num)
		}
		seen[f.Num] = true
		if f.Title == "" || f.Expect == "" || f.Kind == "" {
			t.Fatalf("figure %d incomplete: %+v", f.Num, f)
		}
		if _, err := ScenarioByName(f.Scenario); err != nil {
			t.Fatalf("figure %d references bad scenario: %v", f.Num, err)
		}
		if f.Kind == "sweep" && len(f.Sizes) == 0 {
			t.Fatalf("sweep figure %d has no sizes", f.Num)
		}
		if (f.Kind == "rtt" || f.Kind == "seq") && f.Size == 0 {
			t.Fatalf("figure %d has no size", f.Num)
		}
	}
	for n := 3; n <= 29; n++ {
		if !seen[n] {
			t.Fatalf("figure %d missing", n)
		}
	}
}

func TestFigureByID(t *testing.T) {
	for _, id := range []string{"fig03", "fig3", "3"} {
		f, err := FigureByID(id)
		if err != nil || f.Num != 3 {
			t.Fatalf("lookup %q: %v %+v", id, err, f)
		}
	}
	if _, err := FigureByID("fig99"); err == nil {
		t.Fatal("unknown figure should error")
	}
}

func TestRunFigureRTT(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	spec, _ := FigureByID("fig03")
	spec.Size = 1 << 20 // cheap override for the test
	data, err := RunFigure(spec, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Rows) != 4 {
		t.Fatalf("rtt rows=%d", len(data.Rows))
	}
	if data.Rows[0][0] != "sublink 1" {
		t.Fatalf("unexpected row: %v", data.Rows[0])
	}
}

func TestRunFigureSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	spec, _ := FigureByID("fig05")
	spec.Sizes = []int64{32 << 10, 64 << 10}
	data, err := RunFigure(spec, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Rows) != 2 {
		t.Fatalf("rows=%d", len(data.Rows))
	}
	if len(data.Series["direct"]) != 2 || len(data.Series["lsl"]) != 2 {
		t.Fatal("missing sweep series")
	}
	if !strings.HasSuffix(data.Rows[0][0], "K") {
		t.Fatalf("size label: %v", data.Rows[0][0])
	}
}

func TestRunFigureSeq(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	spec, _ := FigureByID("fig15")
	spec.Size = 1 << 20
	data, err := RunFigure(spec, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"sublink1", "sublink2", "direct"} {
		if len(data.Series[k]) == 0 {
			t.Fatalf("missing %s series", k)
		}
	}
}

func TestRunFigureIndividual(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	spec, _ := FigureByID("fig11")
	spec.Size = 1 << 20
	data, err := RunFigure(spec, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Series) != 4 { // 3 runs + average
		t.Fatalf("series=%d", len(data.Series))
	}
	if _, ok := data.Series["average"]; !ok {
		t.Fatal("missing average")
	}
}

func TestSizeLabel(t *testing.T) {
	if got := sizeLabel(32 << 10); got != "32K" {
		t.Fatal(got)
	}
	if got := sizeLabel(64 << 20); got != "64M" {
		t.Fatal(got)
	}
	if got := sizeLabel(100); got != "100B" {
		t.Fatal(got)
	}
	if got := sizeLabel(1536 << 10); got != "1536K" {
		t.Fatal(got)
	}
}

// Regression: a long wireless cascade must not exhibit multi-second send
// stalls (the exponential-RTO-ladder pathology fixed in tcpsim: after a
// timeout with SACKed data outstanding, holes are repaired ACK-clocked and
// forward progress resets the backoff).
func TestWirelessCascadeNoLongStalls(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	tp := Case3().Build(0)
	res := lslsim.RunCascade(tp.E, tp.Hops, tp.Sess, 64<<20)
	if res.Bytes != 64<<20 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
	for i, tr := range res.Traces {
		if gap := tr.MaxSendGapSeconds(); gap > 3.0 {
			t.Fatalf("sublink%d stalled for %.1fs", i+1, gap)
		}
	}
}

package experiments

import (
	"fmt"
	"io"
	"sort"

	"lsl/internal/stats"
)

// HeadlinePoint is one (scenario, size) cell of the headline aggregate.
type HeadlinePoint struct {
	Scenario    string
	Size        int64
	Direct      float64
	LSL         float64
	Improvement float64
}

// HeadlineResult aggregates LSL's improvement over direct TCP across the
// evaluation, the quantity behind the abstract's "increase end-to-end
// throughput by an average of 40% and as much as 75% in a variety of
// network settings".
type HeadlineResult struct {
	Points []HeadlinePoint
	Avg    float64
	Max    float64
}

// headlineSizes picks the amortized-transfer sizes per scenario: the
// regime over which the paper states its claim (small transfers, where
// LSL loses by design, are not part of the headline).
var headlineSizes = map[string][]int64{
	"case1": {4 << 20, 16 << 20, 64 << 20},
	"case2": {16 << 20, 64 << 20, 128 << 20},
	"case3": {8 << 20, 32 << 20},
	"osu":   {16 << 20, 64 << 20},
}

// RunHeadline measures the aggregate claim at the given per-point
// iteration count.
func RunHeadline(iters int, seed int64) HeadlineResult {
	var res HeadlineResult
	names := make([]string, 0, len(headlineSizes))
	for name := range headlineSizes {
		names = append(names, name)
	}
	sort.Strings(names)
	var improvements []float64
	for _, name := range names {
		sc, err := ScenarioByName(name)
		if err != nil {
			continue
		}
		pts := RunSweep(sc, headlineSizes[name], iters, seed)
		for _, p := range pts {
			hp := HeadlinePoint{
				Scenario:    name,
				Size:        p.Size,
				Direct:      p.DirectMbps,
				LSL:         p.LSLMbps,
				Improvement: p.Improvement(),
			}
			res.Points = append(res.Points, hp)
			improvements = append(improvements, hp.Improvement)
		}
	}
	res.Avg = stats.Mean(improvements)
	res.Max = stats.Max(improvements)
	return res
}

// WriteTo renders the headline as a text table.
func (h HeadlineResult) WriteTo(w io.Writer) (int64, error) {
	var n int64
	p := func(format string, args ...interface{}) error {
		m, err := fmt.Fprintf(w, format, args...)
		n += int64(m)
		return err
	}
	if err := p("scenario  size      direct    lsl       improvement\n"); err != nil {
		return n, err
	}
	for _, pt := range h.Points {
		if err := p("%-8s  %-8s  %6.2f    %6.2f    %+6.0f%%\n",
			pt.Scenario, sizeLabel(pt.Size), pt.Direct, pt.LSL, pt.Improvement*100); err != nil {
			return n, err
		}
	}
	err := p("headline: average %+.0f%%, maximum %+.0f%% (paper: average ~40%%, up to 75%%)\n",
		h.Avg*100, h.Max*100)
	return n, err
}

package experiments

import (
	"fmt"
	"sort"

	"lsl/internal/sizeparse"

	"lsl/internal/stats"
)

// FigureSpec identifies one data figure of the paper's evaluation and how
// to regenerate it.
type FigureSpec struct {
	ID       string // "fig03" ... "fig29"
	Num      int
	Title    string // paper caption, abbreviated
	Scenario string // case1, case2, case3, osu
	Kind     string // "rtt", "sweep", "seq"
	Sizes    []int64
	Size     int64
	Sel      string // seq figures: "min", "median", "max", "avg", "individual"
	// Iters is the default iteration count used by the harness; PaperIters
	// is what the paper ran (10 for cases 1-3, 120 for the OSU study).
	Iters      int
	PaperIters int
	Expect     string // the paper's qualitative result, for EXPERIMENTS.md
}

// FigureData is the regenerated content of one figure: a printable table
// and, for sequence figures, the raw curves.
type FigureData struct {
	Spec   FigureSpec
	Header []string
	Rows   [][]string
	Series map[string]stats.Series
}

func kb(n int64) int64 { return n << 10 }
func mb(n int64) int64 { return n << 20 }

func sizesMB(ns ...int64) []int64 {
	out := make([]int64, len(ns))
	for i, n := range ns {
		out[i] = mb(n)
	}
	return out
}

func sizesKB(ns ...int64) []int64 {
	out := make([]int64, len(ns))
	for i, n := range ns {
		out[i] = kb(n)
	}
	return out
}

// AllFigures enumerates every data figure in the paper (Figures 1 and 2
// are architecture diagrams).
func AllFigures() []FigureSpec {
	seq := func(num int, title, scen, sel string, size int64, iters int) FigureSpec {
		return FigureSpec{
			ID: fmt.Sprintf("fig%02d", num), Num: num, Title: title,
			Scenario: scen, Kind: "seq", Size: size, Sel: sel,
			Iters: iters, PaperIters: 10 + 1,
		}
	}
	figs := []FigureSpec{
		{ID: "fig03", Num: 3, Title: "Average observed TCP RTT, Case 1", Scenario: "case1",
			Kind: "rtt", Size: mb(8), Iters: 5, PaperIters: 10,
			Expect: "sum of sublink RTTs exceeds end-to-end by only ~6ms (Denver detour is cheap)"},
		{ID: "fig04", Num: 4, Title: "Average observed TCP RTT, Case 2", Scenario: "case2",
			Kind: "rtt", Size: mb(8), Iters: 5, PaperIters: 10,
			Expect: "~20ms average inflation, mostly load-induced at the depot host"},
		{ID: "fig05", Num: 5, Title: "Bandwidth 32K-256K, UCSB->UIUC", Scenario: "case1",
			Kind: "sweep", Sizes: sizesKB(32, 64, 96, 128, 160, 192, 224, 256), Iters: 10, PaperIters: 10,
			Expect: "LSL below direct at 32K (dual setup), ~60% above by 256K"},
		{ID: "fig06", Num: 6, Title: "Bandwidth 1M-64M, UCSB->UIUC", Scenario: "case1",
			Kind: "sweep", Sizes: sizesMB(1, 2, 4, 8, 16, 32, 64), Iters: 5, PaperIters: 10,
			Expect: "LSL sustains ~60% improvement for large transfers"},
		{ID: "fig07", Num: 7, Title: "Bandwidth 32K-256K, UCSB->UF", Scenario: "case2",
			Kind: "sweep", Sizes: sizesKB(32, 64, 96, 128, 160, 192, 224, 256), Iters: 10, PaperIters: 10,
			Expect: "roughly equivalent performance for small transfers"},
		{ID: "fig08", Num: 8, Title: "Bandwidth 1M-128M, UCSB->UF", Scenario: "case2",
			Kind: "sweep", Sizes: sizesMB(1, 2, 4, 8, 16, 32, 64, 128), Iters: 4, PaperIters: 10,
			Expect: "LSL significantly higher once setup cost is amortized"},
		{ID: "fig09", Num: 9, Title: "Average observed TCP RTT, Case 3 (wireless)", Scenario: "case3",
			Kind: "rtt", Size: mb(8), Iters: 5, PaperIters: 10,
			Expect: "sublink 1 (the wired WAN sublink) carries nearly all of the RTT"},
		{ID: "fig10", Num: 10, Title: "Bandwidth 1M-256M, UTK->UCSB wireless", Scenario: "case3",
			Kind: "sweep", Sizes: sizesMB(1, 2, 4, 8, 16, 32, 64, 128, 256), Iters: 3, PaperIters: 10,
			Expect: "~13% average LSL improvement despite the wireless bottleneck"},

		seq(11, "Direct TCP seq growth, 64M individual+average", "case1", "individual-direct", mb(64), 10),
		seq(12, "Sublink 1 seq growth, 64M individual+average", "case1", "individual-sub1", mb(64), 10),
		seq(13, "Sublink 2 seq growth, 64M individual+average", "case1", "individual-sub2", mb(64), 10),
		seq(14, "Average seq growth, 64M: sublinks vs direct", "case1", "avg", mb(64), 10),
		seq(15, "4M transfer, no packet loss", "case1", "min", mb(4), 10),
		seq(16, "4M transfer, median loss", "case1", "median", mb(4), 10),
		seq(17, "4M transfer, max loss", "case1", "max", mb(4), 10),
		seq(18, "4M transfer, average", "case1", "avg", mb(4), 10),
		seq(19, "16M transfer, min loss", "case1", "min", mb(16), 10),
		seq(20, "16M transfer, median loss", "case1", "median", mb(16), 10),
		seq(21, "16M transfer, max loss", "case1", "max", mb(16), 10),
		seq(22, "16M transfer, average", "case1", "avg", mb(16), 10),
		seq(23, "64M transfer, min loss", "case1", "min", mb(64), 10),
		seq(24, "64M transfer, median loss", "case1", "median", mb(64), 10),
		seq(25, "64M transfer, max loss", "case1", "max", mb(64), 10),
		seq(26, "32M UCSB->UF seq growth", "case2", "avg", mb(32), 5),
		seq(27, "256M wireless seq growth", "case3", "median", mb(256), 3),

		{ID: "fig28", Num: 28, Title: "UCSB->OSU 1M-512M (steady state)", Scenario: "osu",
			Kind: "sweep", Sizes: sizesMB(1, 2, 4, 8, 16, 32, 64, 128, 256, 512), Iters: 3, PaperIters: 120,
			Expect: "LSL advantage persists at 512M; no sign of convergence"},
		{ID: "fig29", Num: 29, Title: "UCSB->OSU 32K-1024K", Scenario: "osu",
			Kind: "sweep", Sizes: sizesKB(32, 64, 128, 192, 256, 384, 512, 768, 1024), Iters: 10, PaperIters: 120,
			Expect: "crossover from direct-favored to LSL-favored in the hundreds of KB"},
	}
	// Fill in seq expectations.
	for i := range figs {
		if figs[i].Kind == "seq" && figs[i].Expect == "" {
			figs[i].Expect = "sublinks climb faster than direct; gap widens with loss"
		}
	}
	sort.Slice(figs, func(i, j int) bool { return figs[i].Num < figs[j].Num })
	return figs
}

// FigureByID finds one figure spec.
func FigureByID(id string) (FigureSpec, error) {
	for _, f := range AllFigures() {
		if f.ID == id || fmt.Sprintf("fig%d", f.Num) == id || fmt.Sprintf("%d", f.Num) == id {
			return f, nil
		}
	}
	return FigureSpec{}, fmt.Errorf("experiments: unknown figure %q", id)
}

// RunFigure regenerates one figure. iters overrides the spec default when
// positive. The result is deterministic for a given seed.
func RunFigure(spec FigureSpec, iters int, seed int64) (FigureData, error) {
	sc, err := ScenarioByName(spec.Scenario)
	if err != nil {
		return FigureData{}, err
	}
	if iters <= 0 {
		iters = spec.Iters
	}
	data := FigureData{Spec: spec, Series: map[string]stats.Series{}}
	switch spec.Kind {
	case "rtt":
		r := RunRTT(sc, spec.Size, iters, seed)
		data.Header = []string{"subpath", "avg RTT (ms)"}
		data.Rows = [][]string{
			{"sublink 1", fmt.Sprintf("%.1f", r.Sub1Ms)},
			{"sublink 2", fmt.Sprintf("%.1f", r.Sub2Ms)},
			{"end-to-end", fmt.Sprintf("%.1f", r.E2EMs)},
			{"sum of sublinks", fmt.Sprintf("%.1f", r.SumMs)},
		}
	case "sweep":
		pts := RunSweep(sc, spec.Sizes, iters, seed)
		data.Header = []string{"xfer size", "direct Mbit/s", "±95%", "LSL Mbit/s", "±95%", "improvement"}
		var dSer, lSer stats.Series
		for _, p := range pts {
			data.Rows = append(data.Rows, []string{
				sizeLabel(p.Size),
				fmt.Sprintf("%.2f", p.DirectMbps), fmt.Sprintf("%.2f", p.DirectCI),
				fmt.Sprintf("%.2f", p.LSLMbps), fmt.Sprintf("%.2f", p.LSLCI),
				fmt.Sprintf("%+.0f%%", p.Improvement()*100),
			})
			dSer = append(dSer, stats.Point{X: float64(p.Size), Y: p.DirectMbps})
			lSer = append(lSer, stats.Point{X: float64(p.Size), Y: p.LSLMbps})
		}
		data.Series["direct"] = dSer
		data.Series["lsl"] = lSer
	case "seq":
		res := RunSeqTraces(sc, spec.Size, iters, seed)
		sel := spec.Sel
		switch sel {
		case "individual-direct", "individual-sub1", "individual-sub2":
			var set = res.Direct
			if sel == "individual-sub1" {
				set = res.Sub1
			} else if sel == "individual-sub2" {
				set = res.Sub2
			}
			for i, run := range set.Runs {
				data.Series[fmt.Sprintf("test%02d", i+1)] = run.SeqSeriesAt(set.Origins[i])
			}
			data.Series["average"] = set.AverageCurve(200)
			data.Header = []string{"run", "duration (s)", "retransmissions"}
			for i, run := range set.Runs {
				s := run.SeqSeriesAt(set.Origins[i])
				data.Rows = append(data.Rows, []string{
					fmt.Sprintf("test%02d", i+1),
					fmt.Sprintf("%.2f", s.MaxX()),
					fmt.Sprintf("%d", run.Retransmissions()),
				})
			}
		default:
			s1, s2, d := res.CaseCurves(sel, 200)
			data.Series["sublink1"] = s1
			data.Series["sublink2"] = s2
			data.Series["direct"] = d
			data.Header = []string{"curve", "finish (s)", "final bytes"}
			for _, row := range []struct {
				name string
				s    stats.Series
			}{{"sublink1", s1}, {"sublink2", s2}, {"direct", d}} {
				final := 0.0
				if len(row.s) > 0 {
					final = row.s[len(row.s)-1].Y
				}
				data.Rows = append(data.Rows, []string{
					row.name,
					fmt.Sprintf("%.2f", FinishTimeSeconds(row.s)),
					fmt.Sprintf("%.0f", final),
				})
			}
		}
	default:
		return FigureData{}, fmt.Errorf("experiments: unknown figure kind %q", spec.Kind)
	}
	return data, nil
}

func sizeLabel(n int64) string { return sizeparse.Format(n) }

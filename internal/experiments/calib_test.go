package experiments

import (
	"testing"
)

// TestCalibrationPrint is a scratch harness used while tuning topologies.
func TestCalibrationPrint(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration print")
	}
	for _, sc := range []Scenario{Case1(), Case2(), Case3(), CaseOSU()} {
		r := RunRTT(sc, 4<<20, 3, 42)
		t.Logf("%s RTT: sub1=%.1f sub2=%.1f e2e=%.1f sum=%.1f (delta %.1f)",
			sc.Name, r.Sub1Ms, r.Sub2Ms, r.E2EMs, r.SumMs, r.SumMs-r.E2EMs)
	}
	sizes := []int64{32 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
	for _, sc := range []Scenario{Case1(), Case2(), Case3(), CaseOSU()} {
		pts := RunSweep(sc, sizes, 3, 42)
		for _, p := range pts {
			t.Logf("%s size=%8d direct=%6.2f lsl=%6.2f improv=%+.0f%%",
				sc.Name, p.Size, p.DirectMbps, p.LSLMbps, p.Improvement()*100)
		}
	}
}

package experiments

import (
	"strings"
	"testing"
)

func TestHeadlineSizesCoverAllScenarios(t *testing.T) {
	for name := range Scenarios() {
		if _, ok := headlineSizes[name]; !ok {
			t.Fatalf("scenario %s missing from headline", name)
		}
	}
	for name := range headlineSizes {
		if _, err := ScenarioByName(name); err != nil {
			t.Fatalf("headline references unknown scenario %s", name)
		}
	}
}

func TestHeadlineAggregate(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res := RunHeadline(2, 23)
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	// The paper's claim band, loosely: clearly positive on average, with a
	// strong maximum. (2 iterations is noisy; assert direction, not value.)
	if res.Avg <= 0.05 {
		t.Fatalf("average improvement %+.2f, want clearly positive", res.Avg)
	}
	if res.Max < res.Avg {
		t.Fatal("max below average")
	}
	var sb strings.Builder
	if _, err := res.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "headline:") || !strings.Contains(out, "case1") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

func TestFigureWriteTSV(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	spec, _ := FigureByID("fig15")
	spec.Size = 1 << 20
	data, err := RunFigure(spec, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := data.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# fig15", "# series: direct", "# series: sublink1", "# series: sublink2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("TSV missing %q", want)
		}
	}
	if len(strings.Split(out, "\n")) < 20 {
		t.Fatal("TSV suspiciously short")
	}
}

// Package experiments defines the paper's four testbed configurations as
// simulator topologies and the runners that regenerate every evaluation
// figure (Figures 3-29).
//
// Topology pattern (matching the paper's §IV methodology): the direct TCP
// path and the LSL sublinks traverse the *same* access and backbone links —
// the only change is that the LSL route additionally crosses a short
// depot-access link near the intermediate POP ("chosen to minimize the
// divergence of the LSL path from the default TCP path"). Loss and
// queueing therefore affect both systems identically; what differs is
// where TCP terminates.
//
// Calibration: link rates, delays and loss probabilities per case are set
// so the direct connection's steady state matches the paper's observed
// baselines via the Mathis bound (internal/tcpmodel), with sublink RTTs
// matching the paper's Figures 3/4/9 bar charts. Absolute agreement with
// Abilene-era numbers is not the goal; the mechanism and the relative
// shapes are.
package experiments

import (
	"fmt"

	"lsl/internal/lslsim"
	"lsl/internal/netsim"
	"lsl/internal/tcpsim"
)

// Topology is one fully built simulation instance: a fresh engine, the
// direct end-to-end paths, and the LSL hops over the same links.
type Topology struct {
	E         *netsim.Engine
	DirectFwd *netsim.Path
	DirectRev *netsim.Path
	Hops      []lslsim.Hop
	TCP       tcpsim.Config
	Sess      lslsim.SessionConfig
}

// Scenario names a testbed case and builds fresh topologies for it.
type Scenario struct {
	Name  string // short id: case1, case2, case3, osu
	Label string // paper description, e.g. "UCSB->UIUC via Denver"
	Build func(seed int64) *Topology
}

// linkSpec simplifies symmetric link construction.
type linkSpec struct {
	name  string
	rate  float64     // forward serialization rate (bps); reverse is uncapped
	delay netsim.Time // one-way propagation
	queue int         // forward drop-tail queue bytes
	loss  float64     // per-packet loss probability, both directions
}

// buildChain constructs forward/reverse links for a source->depot->sink
// chain, returning the direct paths (all links, skipping the depot access
// stub) and two hops (source->depot, depot->sink).
//
// Layout: src -[acc1]- POP -[bb1]- depotPOP -[bb2]- POP -[acc2]- dst,
// with the depot hanging off depotPOP via [dacc].
func buildChain(e *netsim.Engine, acc1, bb1, dacc, bb2, acc2 linkSpec,
	tcp tcpsim.Config, depotTCP func(in, out tcpsim.Config) (tcpsim.Config, tcpsim.Config)) (directF, directR *netsim.Path, hops []lslsim.Hop) {

	mk := func(s linkSpec) (f, r *netsim.Link) {
		f = netsim.NewLink(e, s.name+".f", s.rate, s.delay, s.queue, s.loss)
		r = netsim.NewLink(e, s.name+".r", 0, s.delay, 0, s.loss)
		return
	}
	a1f, a1r := mk(acc1)
	b1f, b1r := mk(bb1)
	df, dr := mk(dacc)
	b2f, b2r := mk(bb2)
	a2f, a2r := mk(acc2)

	directF = netsim.NewPath(e, a1f, b1f, b2f, a2f)
	directR = netsim.NewPath(e, a2r, b2r, b1r, a1r)

	sub1TCP, sub2TCP := tcp, tcp
	if depotTCP != nil {
		sub1TCP, sub2TCP = depotTCP(tcp, tcp)
	}
	hops = []lslsim.Hop{
		{
			Name: "sub1",
			Fwd:  netsim.NewPath(e, a1f, b1f, df),
			Rev:  netsim.NewPath(e, dr, b1r, a1r),
			TCP:  sub1TCP,
		},
		{
			Name: "sub2",
			Fwd:  netsim.NewPath(e, df, b2f, a2f),
			Rev:  netsim.NewPath(e, a2r, b2r, dr),
			TCP:  sub2TCP,
		},
	}
	return
}

const (
	mbit = 1e6
	ms   = netsim.Millisecond
)

// Case1 is UCSB -> UIUC with the depot near the Denver POP (Figures 3, 5,
// 6, 11-25). Direct RTT ≈ 60 ms; sublinks ≈ 31/35 ms (sum ≈ e2e + 6 ms).
// Backbone loss calibrated for a ~11 Mbit/s direct Mathis bound, ~30
// Mbit/s sublink bounds below the 45 Mbit/s backbone rate — the paper's
// ~60% LSL advantage regime.
func Case1() Scenario {
	return Scenario{
		Name:  "case1",
		Label: "UCSB->UIUC via Denver",
		Build: func(seed int64) *Topology {
			e := netsim.NewEngine(seed)
			tcp := tcpsim.DefaultConfig()
			tcp.InitialSSThresh = 128 << 10 // route-cache ssthresh reuse
			// Loss: calibrated so the direct connection's equilibrium is
			// ~12 Mbit/s at its 61 ms RTT and each sublink's ~19-20 Mbit/s
			// at ~33 ms — the paper's ~60% regime. The depot access path
			// carries extra loss (shared campus egress of a user-level
			// forwarding host), which only the sublinks see.
			df, dr, hops := buildChain(e,
				linkSpec{"ucsb", 100 * mbit, 1 * ms, 256 << 10, 0},
				linkSpec{"bb-denver", 622 * mbit, 13 * ms, 4 << 20, 1.1e-4},
				linkSpec{"depot-acc", 100 * mbit, 1500 * netsim.Microsecond, 256 << 10, 1.4e-4},
				linkSpec{"bb-uiuc", 622 * mbit, 15 * ms, 4 << 20, 1.1e-4},
				linkSpec{"uiuc", 100 * mbit, 1 * ms, 256 << 10, 0},
				tcp, nil)
			return &Topology{E: e, DirectFwd: df, DirectRev: dr, Hops: hops,
				TCP: tcp, Sess: lslsim.DefaultSessionConfig()}
		},
	}
}

// Case2 is UCSB -> UF with the depot near the Houston POP (Figures 4, 7,
// 8, 26). Higher-capacity path (80 Mbit/s backbone, light loss) and a
// *loaded* depot host whose ACK-generation delay inflates sublink 1's
// measured RTT — reproducing Figure 4's ~20 ms "load induced" RTT
// inflation that ping (propagation alone, <2 ms detour) does not show.
func Case2() Scenario {
	return Scenario{
		Name:  "case2",
		Label: "UCSB->UF via Houston",
		Build: func(seed int64) *Topology {
			e := netsim.NewEngine(seed)
			tcp := tcpsim.DefaultConfig()
			tcp.InitialSSThresh = 256 << 10
			loaded := func(in, out tcpsim.Config) (tcpsim.Config, tcpsim.Config) {
				rng := e.Rand()
				// Depot host under load: ~12 ms mean service delay before
				// ACK emission upstream; ~1 ms forwarding jitter downstream.
				in.ReceiverHostDelay = func() netsim.Time {
					return netsim.Time((4 + rng.Float64()*10) * float64(ms))
				}
				out.SenderHostDelay = func() netsim.Time {
					return netsim.Time(rng.Float64() * 2 * float64(ms))
				}
				return in, out
			}
			// Light loss (well-provisioned path): direct equilibrium
			// ~35 Mbit/s; sublinks reach ~50 despite the loaded depot.
			df, dr, hops := buildChain(e,
				linkSpec{"ucsb", 100 * mbit, 1 * ms, 512 << 10, 0},
				linkSpec{"bb-houston", 622 * mbit, 17 * ms, 4 << 20, 1e-5},
				linkSpec{"depot-acc", 100 * mbit, 500 * netsim.Microsecond, 512 << 10, 1.2e-5},
				linkSpec{"bb-uf", 622 * mbit, 17 * ms, 4 << 20, 1e-5},
				linkSpec{"uf", 100 * mbit, 1 * ms, 512 << 10, 0},
				tcp, loaded)
			return &Topology{E: e, DirectFwd: df, DirectRev: dr, Hops: hops,
				TCP: tcp, Sess: lslsim.DefaultSessionConfig()}
		},
	}
}

// Case3 is UTK -> UCSB where the receiver sits behind an 802.11b wireless
// access link and the depot is placed at the UCSB wired edge, modeling "a
// wireless provider with infrastructure willing to gateway LSL into TCP"
// (Figures 9, 10, 27). Sublink 1 (the wide-area wired path) carries almost
// all of the RTT; the wireless hop is short but slow and lossy.
func Case3() Scenario {
	return Scenario{
		Name:  "case3",
		Label: "UTK->UCSB (802.11b edge)",
		Build: func(seed int64) *Topology {
			e := netsim.NewEngine(seed)
			tcp := tcpsim.DefaultConfig()
			tcp.InitialSSThresh = 64 << 10
			df, dr, hops := buildChain(e,
				linkSpec{"utk", 100 * mbit, 1 * ms, 512 << 10, 0},
				linkSpec{"bb-wan", 622 * mbit, 45 * ms, 4 << 20, 1e-4},
				linkSpec{"ucsb-edge", 100 * mbit, 1 * ms, 512 << 10, 0},
				linkSpec{"wlan", 5 * mbit, 2 * ms, 24 << 10, 5e-4},
				linkSpec{"mobile", 10 * mbit, 500 * netsim.Microsecond, 64 << 10, 0},
				tcp, nil)
			return &Topology{E: e, DirectFwd: df, DirectRev: dr, Hops: hops,
				TCP: tcp, Sess: lslsim.DefaultSessionConfig()}
		},
	}
}

// CaseOSU is UCSB -> OSU via Denver, the steady-state study (Figures 28,
// 29): large transfers, many iterations, showing the LSL advantage does
// not converge away even at 512 MB because loss-recovery speed remains
// RTT-bound for the life of the connection (paper §VI).
func CaseOSU() Scenario {
	return Scenario{
		Name:  "osu",
		Label: "UCSB->OSU via Denver",
		Build: func(seed int64) *Topology {
			e := netsim.NewEngine(seed)
			tcp := tcpsim.DefaultConfig()
			tcp.InitialSSThresh = 160 << 10
			df, dr, hops := buildChain(e,
				linkSpec{"ucsb", 100 * mbit, 1 * ms, 256 << 10, 0},
				linkSpec{"bb-denver", 622 * mbit, 13 * ms, 4 << 20, 7e-5},
				linkSpec{"depot-acc", 100 * mbit, 1 * ms, 256 << 10, 1e-4},
				linkSpec{"bb-osu", 622 * mbit, 14 * ms, 4 << 20, 7e-5},
				linkSpec{"osu", 100 * mbit, 1 * ms, 256 << 10, 0},
				tcp, nil)
			return &Topology{E: e, DirectFwd: df, DirectRev: dr, Hops: hops,
				TCP: tcp, Sess: lslsim.DefaultSessionConfig()}
		},
	}
}

// Scenarios returns all four cases keyed by name.
func Scenarios() map[string]Scenario {
	out := map[string]Scenario{}
	for _, s := range []Scenario{Case1(), Case2(), Case3(), CaseOSU()} {
		out[s.Name] = s
	}
	return out
}

// ScenarioByName looks up a scenario, with a helpful error.
func ScenarioByName(name string) (Scenario, error) {
	s, ok := Scenarios()[name]
	if !ok {
		return Scenario{}, fmt.Errorf("experiments: unknown scenario %q (want case1, case2, case3, osu)", name)
	}
	return s, nil
}

package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteTSV renders the figure's table as tab-separated values with a
// commented preamble, followed by one block per curve for sequence/sweep
// figures — a format gnuplot and spreadsheets both accept, replacing the
// paper's raw tcpdump-derived data files.
func (d FigureData) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n# scenario=%s kind=%s\n# paper: %s\n",
		d.Spec.ID, d.Spec.Title, d.Spec.Scenario, d.Spec.Kind, d.Spec.Expect); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Join(d.Header, "\t")); err != nil {
		return err
	}
	for _, row := range d.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	if len(d.Series) == 0 {
		return nil
	}
	names := make([]string, 0, len(d.Series))
	for name := range d.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "\n# series: %s\n# x\ty\n", name); err != nil {
			return err
		}
		for _, p := range d.Series[name] {
			if _, err := fmt.Fprintf(w, "%g\t%g\n", p.X, p.Y); err != nil {
				return err
			}
		}
	}
	return nil
}

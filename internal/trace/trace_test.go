package trace

import (
	"math"
	"strings"
	"testing"

	"lsl/internal/netsim"
	"lsl/internal/stats"
)

const ms = netsim.Millisecond

func rec(t netsim.Time, k Kind, seq int64, n int, ack int64) Record {
	return Record{T: t, Kind: k, Seq: seq, Len: n, Ack: ack}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Add(rec(0, Send, 0, 10, 0))
	if r.Len() != 0 || r.Retransmissions() != 0 || r.SeqSeries() != nil {
		t.Fatal("nil recorder should be inert")
	}
	if r.AvgRTTSeconds() != 0 || r.TotalBytes() != 0 {
		t.Fatal("nil recorder analysis should be zero")
	}
}

func TestKindString(t *testing.T) {
	if Send.String() != "send" || Retx.String() != "retx" || AckRx.String() != "ack" {
		t.Fatal("kind strings wrong")
	}
	if Kind(9).String() != "?" {
		t.Fatal("unknown kind")
	}
}

func TestRetransmissionCount(t *testing.T) {
	r := New("c")
	r.Add(rec(0, Send, 0, 100, 0))
	r.Add(rec(1*ms, Retx, 0, 100, 0))
	r.Add(rec(2*ms, Send, 100, 100, 0))
	r.Add(rec(3*ms, Retx, 0, 100, 0))
	if got := r.Retransmissions(); got != 2 {
		t.Fatalf("retx=%d", got)
	}
}

func TestSeqSeriesNormalization(t *testing.T) {
	r := New("c")
	r.Add(rec(10*ms, Send, 5000, 100, 0))
	r.Add(rec(20*ms, Send, 5100, 100, 0))
	s := r.SeqSeries()
	if len(s) != 2 {
		t.Fatalf("len=%d", len(s))
	}
	if s[0].X != 0 || s[0].Y != 100 {
		t.Fatalf("first point %+v", s[0])
	}
	if math.Abs(s[1].X-0.01) > 1e-9 || s[1].Y != 200 {
		t.Fatalf("second point %+v", s[1])
	}
}

func TestSeqSeriesMonotoneUnderRetx(t *testing.T) {
	r := New("c")
	r.Add(rec(0, Send, 0, 100, 0))
	r.Add(rec(1*ms, Send, 100, 100, 0))
	r.Add(rec(5*ms, Retx, 0, 100, 0)) // retransmit older data
	r.Add(rec(6*ms, Send, 200, 100, 0))
	s := r.SeqSeries()
	for i := 1; i < len(s); i++ {
		if s[i].Y < s[i-1].Y {
			t.Fatalf("series not monotone: %+v", s)
		}
	}
	// Retx at 5ms holds the curve at 200, visible as a flat span.
	if s[2].Y != 200 {
		t.Fatalf("retx point y=%v", s[2].Y)
	}
}

func TestSeqSeriesAtExternalOrigin(t *testing.T) {
	r := New("c")
	r.Add(rec(50*ms, Send, 0, 100, 0))
	s := r.SeqSeriesAt(30 * ms)
	if math.Abs(s[0].X-0.02) > 1e-9 {
		t.Fatalf("x=%v want 0.02", s[0].X)
	}
	// Origin after first send clamps at 0 rather than going negative.
	s2 := r.SeqSeriesAt(60 * ms)
	if s2[0].X != 0 {
		t.Fatalf("clamped x=%v", s2[0].X)
	}
}

func TestAvgRTTSimple(t *testing.T) {
	r := New("c")
	r.Add(rec(0, Send, 0, 100, 0))
	r.Add(rec(40*ms, AckRx, 0, 0, 100))
	r.Add(rec(40*ms, Send, 100, 100, 0))
	r.Add(rec(100*ms, AckRx, 0, 0, 200))
	got := r.AvgRTTSeconds()
	want := (0.040 + 0.060) / 2
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("rtt=%v want %v", got, want)
	}
}

func TestAvgRTTKarnExcludesRetx(t *testing.T) {
	r := New("c")
	r.Add(rec(0, Send, 0, 100, 0))
	r.Add(rec(200*ms, Retx, 0, 100, 0))
	r.Add(rec(240*ms, AckRx, 0, 0, 100)) // ambiguous: excluded
	r.Add(rec(240*ms, Send, 100, 100, 0))
	r.Add(rec(280*ms, AckRx, 0, 0, 200))
	got := r.AvgRTTSeconds()
	if math.Abs(got-0.040) > 1e-9 {
		t.Fatalf("rtt=%v want 0.040 (Karn)", got)
	}
}

func TestAvgRTTCumulativeAckCoversMultiple(t *testing.T) {
	r := New("c")
	r.Add(rec(0, Send, 0, 100, 0))
	r.Add(rec(5*ms, Send, 100, 100, 0))
	r.Add(rec(50*ms, AckRx, 0, 0, 200))
	samples := r.RTTSamplesSeconds()
	if len(samples) != 2 {
		t.Fatalf("samples=%v", samples)
	}
	if math.Abs(samples[0]-0.050) > 1e-9 || math.Abs(samples[1]-0.045) > 1e-9 {
		t.Fatalf("samples=%v", samples)
	}
}

func TestAvgRTTNoSamples(t *testing.T) {
	r := New("c")
	r.Add(rec(0, Send, 0, 100, 0))
	if r.AvgRTTSeconds() != 0 {
		t.Fatal("no acks -> 0")
	}
}

func TestTotalBytes(t *testing.T) {
	r := New("c")
	r.Add(rec(0, Send, 1000, 100, 0))
	r.Add(rec(1*ms, Send, 1100, 100, 0))
	r.Add(rec(2*ms, Retx, 1000, 100, 0))
	if got := r.TotalBytes(); got != 200 {
		t.Fatalf("total=%d", got)
	}
}

func makeRunWithRetx(nretx int) *Recorder {
	r := New("run")
	r.Add(rec(0, Send, 0, 100, 0))
	for i := 0; i < nretx; i++ {
		r.Add(rec(netsim.Time(i+1)*ms, Retx, 0, 100, 0))
	}
	r.Add(rec(100*ms, Send, 100, 100, 0))
	return r
}

func TestSetLossCaseSelection(t *testing.T) {
	s := &Set{Runs: []*Recorder{
		makeRunWithRetx(5),
		makeRunWithRetx(0),
		makeRunWithRetx(9),
		makeRunWithRetx(2),
		makeRunWithRetx(7),
	}}
	if got := s.MinLossRun(); got != 1 {
		t.Fatalf("min=%d", got)
	}
	if got := s.MaxLossRun(); got != 2 {
		t.Fatalf("max=%d", got)
	}
	if got := s.MedianLossRun(); got != 0 { // median of {0,2,5,7,9} is 5
		t.Fatalf("median=%d", got)
	}
}

func TestSetAverageCurve(t *testing.T) {
	mk := func(scale float64) *Recorder {
		r := New("r")
		for i := 0; i < 10; i++ {
			r.Add(rec(netsim.Time(float64(i)*scale)*ms, Send, int64(i*100), 100, 0))
		}
		return r
	}
	s := &Set{Runs: []*Recorder{mk(1), mk(2)}}
	avg := s.AverageCurve(20)
	if len(avg) != 20 {
		t.Fatalf("grid=%d", len(avg))
	}
	last := avg[len(avg)-1].Y
	if math.Abs(last-1000) > 1e-6 {
		t.Fatalf("final avg=%v want 1000", last)
	}
	for i := 1; i < len(avg); i++ {
		if avg[i].Y < avg[i-1].Y-1e-9 {
			t.Fatal("average curve not monotone")
		}
	}
}

func TestSetAvgRTT(t *testing.T) {
	r1 := New("a")
	r1.Add(rec(0, Send, 0, 100, 0))
	r1.Add(rec(40*ms, AckRx, 0, 0, 100))
	r2 := New("b")
	r2.Add(rec(0, Send, 0, 100, 0))
	r2.Add(rec(80*ms, AckRx, 0, 0, 100))
	s := &Set{Runs: []*Recorder{r1, r2}}
	if got := s.AvgRTTSeconds(); math.Abs(got-0.060) > 1e-9 {
		t.Fatalf("avg rtt=%v", got)
	}
}

func TestSetOrigins(t *testing.T) {
	r := New("a")
	r.Add(rec(100*ms, Send, 0, 100, 0))
	s := &Set{Runs: []*Recorder{r}, Origins: []netsim.Time{0}}
	curves := s.SeqCurves()
	if math.Abs(curves[0][0].X-0.1) > 1e-9 {
		t.Fatalf("x=%v", curves[0][0].X)
	}
}

func TestPlotASCIIRenders(t *testing.T) {
	s := stats.Series{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 4}}
	out := PlotASCII("title", 40, 10, map[string]stats.Series{"a": s, "b": s})
	if !strings.Contains(out, "title") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "= a") || !strings.Contains(out, "= b") {
		t.Fatal("missing legend")
	}
	if len(strings.Split(out, "\n")) < 12 {
		t.Fatal("plot too short")
	}
}

func TestPlotASCIIEmptySeries(t *testing.T) {
	out := PlotASCII("empty", 20, 5, map[string]stats.Series{"a": nil})
	if out == "" {
		t.Fatal("should still render frame")
	}
}

func TestMaxSendGap(t *testing.T) {
	r := New("c")
	r.Add(rec(0, Send, 0, 100, 0))
	r.Add(rec(10*ms, Send, 100, 100, 0))
	r.Add(rec(500*ms, Retx, 0, 100, 0))
	r.Add(rec(510*ms, AckRx, 0, 0, 200)) // acks don't count
	if got := r.MaxSendGapSeconds(); got != 0.49 {
		t.Fatalf("gap=%v", got)
	}
	var nilRec *Recorder
	if nilRec.MaxSendGapSeconds() != 0 {
		t.Fatal("nil should be 0")
	}
}

package trace

import (
	"fmt"
	"sort"
	"strings"

	"lsl/internal/netsim"
	"lsl/internal/stats"
)

// Set is a collection of per-iteration recorders for the same experiment
// configuration (e.g. ten 64 MB direct-TCP transfers), from which the
// paper-style aggregate curves and case selections are computed.
type Set struct {
	Name string
	Runs []*Recorder
	// Origins optionally supplies a per-run normalization time (session
	// start). When nil, each run is normalized to its own first send.
	Origins []netsim.Time
}

// SeqCurves returns the per-run normalized sequence growth series.
func (s *Set) SeqCurves() []stats.Series {
	out := make([]stats.Series, 0, len(s.Runs))
	for i, r := range s.Runs {
		var ser stats.Series
		if s.Origins != nil && i < len(s.Origins) {
			ser = r.SeqSeriesAt(s.Origins[i])
		} else {
			ser = r.SeqSeries()
		}
		if ser != nil {
			out = append(out, ser)
		}
	}
	return out
}

// AverageCurve returns the pointwise mean of the per-run sequence curves on
// a gridN-point grid — the "Average" lines of Figures 11-14 and 18/22.
func (s *Set) AverageCurve(gridN int) stats.Series {
	return stats.AverageSeries(s.SeqCurves(), gridN)
}

// RetxCounts returns the retransmission count of every run.
func (s *Set) RetxCounts() []float64 {
	out := make([]float64, len(s.Runs))
	for i, r := range s.Runs {
		out[i] = float64(r.Retransmissions())
	}
	return out
}

// MinLossRun returns the index of the run with the fewest retransmissions
// (the paper's "minimum observed number of retransmissions" case; when a
// zero-retransmission run exists this is the "no packet loss" case of
// Figure 15).
func (s *Set) MinLossRun() int { return stats.ArgMin(s.RetxCounts()) }

// MedianLossRun returns the index of the run with the median
// retransmission count (an actual run, not an interpolation).
func (s *Set) MedianLossRun() int { return stats.ArgMedian(s.RetxCounts()) }

// MaxLossRun returns the index of the run with the most retransmissions.
func (s *Set) MaxLossRun() int { return stats.ArgMax(s.RetxCounts()) }

// AvgRTTSeconds averages the per-run mean RTTs, weighting runs equally as
// the paper's bar charts do.
func (s *Set) AvgRTTSeconds() float64 {
	var vals []float64
	for _, r := range s.Runs {
		if v := r.AvgRTTSeconds(); v > 0 {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 0
	}
	return stats.Mean(vals)
}

// PlotASCII renders one or more named series as a crude fixed-size ASCII
// chart, good enough to eyeball curve shapes from cmd/lslbench output.
func PlotASCII(title string, width, height int, series map[string]stats.Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	var xmax, ymax float64
	for _, s := range series {
		for _, p := range s {
			if p.X > xmax {
				xmax = p.X
			}
			if p.Y > ymax {
				ymax = p.Y
			}
		}
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	marks := "*+ox#@"
	for mi, name := range names {
		mark := marks[mi%len(marks)]
		for _, p := range series[name] {
			if xmax <= 0 || ymax <= 0 {
				continue
			}
			x := int(p.X / xmax * float64(width-1))
			y := height - 1 - int(p.Y/ymax*float64(height-1))
			if x >= 0 && x < width && y >= 0 && y < height {
				grid[y][x] = mark
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (x: 0..%.3g, y: 0..%.3g)\n", title, xmax, ymax)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	for mi, name := range names {
		fmt.Fprintf(&b, "  %c = %s\n", marks[mi%len(marks)], name)
	}
	return b.String()
}

// Package trace captures and analyzes per-connection packet traces the way
// the paper uses tcpdump captures at the sender: it records every data
// segment transmission (distinguishing retransmissions) and every
// acknowledgment arrival, then derives the paper's analysis artifacts —
// average RTT from ACK timing (Figures 3, 4, 9), normalized
// sequence-number growth curves (Figures 11-27), and retransmission counts
// used to classify runs into minimum / median / maximum loss cases.
package trace

import (
	"lsl/internal/netsim"
	"lsl/internal/stats"
)

// Kind labels a trace record.
type Kind uint8

const (
	// Send is an original transmission of a data segment.
	Send Kind = iota
	// Retx is a retransmission of a previously sent segment.
	Retx
	// AckRx is the arrival of an acknowledgment at the sender.
	AckRx
)

func (k Kind) String() string {
	switch k {
	case Send:
		return "send"
	case Retx:
		return "retx"
	case AckRx:
		return "ack"
	default:
		return "?"
	}
}

// Record is one traced event. Seq and Len describe data segments; Ack is
// the cumulative acknowledgment number carried by an AckRx record.
type Record struct {
	T    netsim.Time
	Kind Kind
	Seq  int64
	Len  int
	Ack  int64
}

// Recorder accumulates records for a single connection. A nil Recorder is
// valid and records nothing, so connections can be traced selectively.
type Recorder struct {
	Name    string
	Records []Record
}

// New returns an empty recorder with the given name.
func New(name string) *Recorder { return &Recorder{Name: name} }

// Add appends a record. Safe to call on nil.
func (r *Recorder) Add(rec Record) {
	if r == nil {
		return
	}
	r.Records = append(r.Records, rec)
}

// Len returns the number of records (0 for nil).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.Records)
}

// Retransmissions counts Retx records — the per-run loss proxy the paper
// uses to pick its min/median/max loss example traces.
func (r *Recorder) Retransmissions() int {
	if r == nil {
		return 0
	}
	n := 0
	for _, rec := range r.Records {
		if rec.Kind == Retx {
			n++
		}
	}
	return n
}

// firstSendTime returns the time of the first data transmission, or -1.
func (r *Recorder) firstSendTime() netsim.Time {
	for _, rec := range r.Records {
		if rec.Kind == Send || rec.Kind == Retx {
			return rec.T
		}
	}
	return -1
}

// SeqSeries returns the normalized sequence-number growth curve: for each
// original transmission, the point (seconds since the connection's first
// send, Seq+Len relative to the first sent byte). Retransmissions do not
// advance the curve (matching how the paper plots normalized sequence
// progress), but they do appear in time, so stalls are visible as flat
// spans. The curve is made monotone nondecreasing.
func (r *Recorder) SeqSeries() stats.Series {
	if r == nil || len(r.Records) == 0 {
		return nil
	}
	t0 := r.firstSendTime()
	if t0 < 0 {
		return nil
	}
	var base int64 = -1
	var out stats.Series
	var high int64
	for _, rec := range r.Records {
		if rec.Kind != Send && rec.Kind != Retx {
			continue
		}
		if base < 0 {
			base = rec.Seq
		}
		end := rec.Seq + int64(rec.Len) - base
		if end < high {
			end = high
		}
		high = end
		out = append(out, stats.Point{X: (rec.T - t0).Seconds(), Y: float64(end)})
	}
	return out
}

// SeqSeriesAt is SeqSeries but normalized against an externally supplied
// origin time (e.g. the session start, or sublink 1's first send so that
// sublink 2 is plotted "normalized with respect to subpath 1" as in the
// paper's Figure 13).
func (r *Recorder) SeqSeriesAt(t0 netsim.Time) stats.Series {
	if r == nil || len(r.Records) == 0 {
		return nil
	}
	var base int64 = -1
	var out stats.Series
	var high int64
	for _, rec := range r.Records {
		if rec.Kind != Send && rec.Kind != Retx {
			continue
		}
		if base < 0 {
			base = rec.Seq
		}
		end := rec.Seq + int64(rec.Len) - base
		if end < high {
			end = high
		}
		high = end
		x := (rec.T - t0).Seconds()
		if x < 0 {
			x = 0
		}
		out = append(out, stats.Point{X: x, Y: float64(end)})
	}
	return out
}

// AvgRTTSeconds estimates the connection's average round-trip time the way
// the paper does from tcpdump captures at the sender: each original (never
// retransmitted) data segment is matched with the first cumulative ACK
// covering it, following Karn's rule of excluding retransmitted segments
// from timing. It returns 0 if no samples exist.
func (r *Recorder) AvgRTTSeconds() float64 {
	samples := r.RTTSamplesSeconds()
	if len(samples) == 0 {
		return 0
	}
	return stats.Mean(samples)
}

// RTTSamplesSeconds returns the per-segment RTT samples described in
// AvgRTTSeconds.
func (r *Recorder) RTTSamplesSeconds() []float64 {
	if r == nil {
		return nil
	}
	// Collect segments retransmitted at least once (excluded per Karn).
	retx := make(map[int64]bool)
	for _, rec := range r.Records {
		if rec.Kind == Retx {
			retx[rec.Seq] = true
		}
	}
	type pending struct {
		end int64
		t   netsim.Time
	}
	var pend []pending
	var samples []float64
	for _, rec := range r.Records {
		switch rec.Kind {
		case Send:
			if !retx[rec.Seq] {
				pend = append(pend, pending{end: rec.Seq + int64(rec.Len), t: rec.T})
			}
		case AckRx:
			i := 0
			for ; i < len(pend); i++ {
				if pend[i].end > rec.Ack {
					break
				}
				samples = append(samples, (rec.T - pend[i].t).Seconds())
			}
			pend = pend[i:]
		}
	}
	return samples
}

// MaxSendGapSeconds returns the longest silence between consecutive data
// transmissions (originals or retransmissions) — the stall detector used
// to catch pathological loss-recovery behavior such as exponential RTO
// ladders.
func (r *Recorder) MaxSendGapSeconds() float64 {
	if r == nil {
		return 0
	}
	var prev netsim.Time = -1
	var max netsim.Time
	for _, rec := range r.Records {
		if rec.Kind != Send && rec.Kind != Retx {
			continue
		}
		if prev >= 0 && rec.T-prev > max {
			max = rec.T - prev
		}
		prev = rec.T
	}
	return max.Seconds()
}

// TotalBytes returns the number of distinct payload bytes whose original
// transmission appears in the trace (highest Seq+Len minus lowest Seq).
func (r *Recorder) TotalBytes() int64 {
	if r == nil {
		return 0
	}
	var lo int64 = -1
	var hi int64
	for _, rec := range r.Records {
		if rec.Kind != Send && rec.Kind != Retx {
			continue
		}
		if lo < 0 || rec.Seq < lo {
			lo = rec.Seq
		}
		if end := rec.Seq + int64(rec.Len); end > hi {
			hi = end
		}
	}
	if lo < 0 {
		return 0
	}
	return hi - lo
}

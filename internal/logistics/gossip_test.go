package logistics

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"lsl/internal/route"
)

// testOverlay builds the shared planning graph every gossip test uses:
// client -> {depA, depB} -> server, plus a direct client -> server edge.
func testOverlay() *route.Graph {
	g := route.NewGraph()
	g.AddNode(route.Node{ID: "client"})
	g.AddNode(route.Node{ID: "depA", Depot: true, Addr: "depa:1"})
	g.AddNode(route.Node{ID: "depB", Depot: true, Addr: "depb:1"})
	g.AddNode(route.Node{ID: "server", Addr: "server:1"})
	fast := route.Metrics{RTTSeconds: 0.005, BandwidthBps: 100e6, LossProb: 2.5e-4}
	slow := route.Metrics{RTTSeconds: 0.040, BandwidthBps: 50e6, LossProb: 2.5e-4}
	g.AddDuplex("client", "depA", fast)
	g.AddDuplex("depA", "server", fast)
	g.AddDuplex("client", "depB", slow)
	g.AddDuplex("depB", "server", slow)
	g.AddDuplex("client", "server", route.Metrics{RTTSeconds: 0.050, BandwidthBps: 10e6, LossProb: 2.5e-4})
	return g
}

func testPlanner(t *testing.T, self route.NodeID, clk *time.Time) *Planner {
	t.Helper()
	p, err := New(testOverlay(), self)
	if err != nil {
		t.Fatal(err)
	}
	p.now = func() time.Time { return *clk }
	return p
}

// edgeMetrics snapshots every edge's planning metrics for exact
// comparison.
func edgeMetrics(p *Planner) map[string]route.Metrics {
	out := make(map[string]route.Metrics)
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.graph.Edges() {
		out[fmt.Sprintf("%s->%s", e.From, e.To)] = e.M
	}
	return out
}

func TestExportCarriesProvenance(t *testing.T) {
	clk := time.Unix(1700000000, 0)
	p := testPlanner(t, "depA", &clk)
	p.ObserveRTT("depA", "server", 0.008)
	clk = clk.Add(time.Second)
	p.ObserveBandwidth("depA", "server", 90e6)

	obs := p.ExportObservations(0)
	if len(obs) != 2 {
		t.Fatalf("exported %d observations, want 2: %+v", len(obs), obs)
	}
	// Newest first.
	if obs[0].Metric != ObsBandwidth || obs[1].Metric != ObsRTT {
		t.Fatalf("export order wrong: %+v", obs)
	}
	for _, o := range obs {
		if o.Origin != "depA" || o.Hops != 0 || o.From != "depA" || o.To != "server" {
			t.Fatalf("bad provenance: %+v", o)
		}
		if o.Time.IsZero() {
			t.Fatalf("missing timestamp: %+v", o)
		}
	}
	// The cap truncates to the newest entries.
	if capped := p.ExportObservations(1); len(capped) != 1 || capped[0].Metric != ObsBandwidth {
		t.Fatalf("cap kept %+v, want the newest entry", capped)
	}
}

// A remote loss poison on an edge the local planner has never measured
// governs that edge's planning metrics outright, and a newer clean
// observation from the same origin decays it back.
func TestMergeRemotePoisonGovernsUnmeasuredEdge(t *testing.T) {
	clk := time.Unix(1700000000, 0)
	pA := testPlanner(t, "depA", &clk)
	pB := testPlanner(t, "depB", &clk)

	// depA watches its edge to the server die.
	pA.ObserveLoss("depA", "server", DeadEdgeLoss)
	clk = clk.Add(100 * time.Millisecond)

	if n := pB.MergeRemote(pA.ExportObservations(0)); n != 1 {
		t.Fatalf("merged %d, want 1", n)
	}
	m := edgeMetrics(pB)["depA->server"]
	if m.LossProb < 0.4 {
		t.Fatalf("depA->server loss at depB = %v, want >= 0.4 (remote poison must govern)", m.LossProb)
	}

	// The origin sees recovery; a newer export decays the remote word.
	clk = clk.Add(time.Second)
	for i := 0; i < 6; i++ {
		pA.ObserveLoss("depA", "server", 0)
		clk = clk.Add(10 * time.Millisecond)
	}
	if n := pB.MergeRemote(pA.ExportObservations(0)); n != 1 {
		t.Fatalf("recovery merge count %d, want 1", n)
	}
	if m := edgeMetrics(pB)["depA->server"]; m.LossProb > 0.2 {
		t.Fatalf("loss stayed poisoned after remote recovery: %v", m.LossProb)
	}
}

// Local measurement must dominate remote word on an edge both know.
func TestMergeRemoteLocalMeasurementDominates(t *testing.T) {
	clk := time.Unix(1700000000, 0)
	pA := testPlanner(t, "depA", &clk)
	pB := testPlanner(t, "depB", &clk)

	// Both observe client->server bandwidth: B locally at 80 Mbit/s, A
	// (remotely, via gossip) at 10 Mbit/s.
	for i := 0; i < 4; i++ {
		pB.ObserveBandwidth("client", "server", 80e6)
		pA.ObserveBandwidth("client", "server", 10e6)
		clk = clk.Add(10 * time.Millisecond)
	}
	if n := pB.MergeRemote(pA.ExportObservations(0)); n == 0 {
		t.Fatal("nothing merged")
	}
	m := edgeMetrics(pB)["client->server"]
	// local weight 2.0 vs fresh 1-hop remote 0.5 => blended well above the
	// midpoint, close to the local value.
	if m.BandwidthBps < 60e6 {
		t.Fatalf("blended bandwidth %v: remote word overpowered local measurement", m.BandwidthBps)
	}
	if m.BandwidthBps >= 80e6 {
		t.Fatalf("blended bandwidth %v: remote word ignored entirely", m.BandwidthBps)
	}
}

func TestMergeRemoteRejectsGarbage(t *testing.T) {
	clk := time.Unix(1700000000, 0)
	p := testPlanner(t, "depB", &clk)
	now := clk
	cases := []struct {
		name string
		obs  EdgeObservation
	}{
		{"self origin", EdgeObservation{From: "depA", To: "server", Metric: ObsLoss, Value: 0.5, Origin: "depB", Time: now}},
		{"unknown edge", EdgeObservation{From: "nowhere", To: "server", Metric: ObsLoss, Value: 0.5, Origin: "depA", Time: now}},
		{"stale", EdgeObservation{From: "depA", To: "server", Metric: ObsLoss, Value: 0.5, Origin: "depA", Time: now.Add(-MaxRemoteAge - time.Second)}},
		{"future", EdgeObservation{From: "depA", To: "server", Metric: ObsLoss, Value: 0.5, Origin: "depA", Time: now.Add(MaxClockSkew + time.Minute)}},
		{"zero time", EdgeObservation{From: "depA", To: "server", Metric: ObsLoss, Value: 0.5, Origin: "depA"}},
		{"hop ceiling", EdgeObservation{From: "depA", To: "server", Metric: ObsLoss, Value: 0.5, Origin: "depA", Hops: MaxGossipHops, Time: now}},
		{"negative rtt", EdgeObservation{From: "depA", To: "server", Metric: ObsRTT, Value: -1, Origin: "depA", Time: now}},
		{"loss above one", EdgeObservation{From: "depA", To: "server", Metric: ObsLoss, Value: 1.5, Origin: "depA", Time: now}},
	}
	for _, c := range cases {
		if n := p.MergeRemote([]EdgeObservation{c.obs}); n != 0 {
			t.Errorf("%s: merged %d, want 0", c.name, n)
		}
	}
	if got := p.RemoteObsCount(); got != 0 {
		t.Fatalf("remote overlay holds %d entries, want 0", got)
	}
}

// randomBatch fabricates a plausible gossip batch over the test overlay
// from several origins, with duplicated keys at different timestamps.
func randomBatch(rng *rand.Rand, base time.Time, n int) []EdgeObservation {
	edges := [][2]string{
		{"client", "depA"}, {"depA", "server"},
		{"client", "depB"}, {"depB", "server"},
		{"client", "server"}, {"server", "depA"},
	}
	origins := []string{"depA", "client", "server", "utk"}
	out := make([]EdgeObservation, 0, n)
	for i := 0; i < n; i++ {
		e := edges[rng.Intn(len(edges))]
		m := ObsMetric(rng.Intn(3))
		v := rng.Float64()
		switch m {
		case ObsRTT:
			v = 0.001 + v*0.2
		case ObsBandwidth:
			v = 1e6 + v*1e8
		case ObsLoss: // already in [0,1)
		}
		out = append(out, EdgeObservation{
			From: e[0], To: e[1], Metric: m, Value: v,
			Count:  uint32(rng.Intn(50) + 1),
			Origin: origins[rng.Intn(len(origins))],
			Hops:   uint8(rng.Intn(MaxGossipHops + 1)),
			Time:   base.Add(-time.Duration(rng.Int63n(int64(MaxRemoteAge)))),
		})
	}
	return out
}

// The anti-entropy property: merging the same remote digest twice, or
// two digests in either peer order, yields bit-identical forecasts and
// identical re-exports.
func TestMergeRemoteIdempotentAndOrderIndependent(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		clk := time.Unix(1700000000, 0)
		batchX := randomBatch(rng, clk, 40)
		batchY := randomBatch(rng, clk, 40)

		mk := func() *Planner {
			p := testPlanner(t, "depB", &clk)
			// Some local state too, so the blend path is exercised.
			p.ObserveBandwidth("client", "server", 42e6)
			p.ObserveLoss("depB", "server", 0.001)
			return p
		}

		// Idempotence: X twice == X once.
		once, twice := mk(), mk()
		once.MergeRemote(batchX)
		twice.MergeRemote(batchX)
		twice.MergeRemote(batchX)
		if !reflect.DeepEqual(edgeMetrics(once), edgeMetrics(twice)) {
			t.Fatalf("seed %d: double merge changed forecasts", seed)
		}
		if !reflect.DeepEqual(once.ExportObservations(0), twice.ExportObservations(0)) {
			t.Fatalf("seed %d: double merge changed exports", seed)
		}

		// Peer-order independence: X then Y == Y then X.
		xy, yx := mk(), mk()
		xy.MergeRemote(batchX)
		xy.MergeRemote(batchY)
		yx.MergeRemote(batchY)
		yx.MergeRemote(batchX)
		if !reflect.DeepEqual(edgeMetrics(xy), edgeMetrics(yx)) {
			t.Fatalf("seed %d: merge order changed forecasts", seed)
		}
		if !reflect.DeepEqual(xy.ExportObservations(0), yx.ExportObservations(0)) {
			t.Fatalf("seed %d: merge order changed exports", seed)
		}
	}
}

// Relayed knowledge propagates transitively (A -> B -> C) with the hop
// count growing per transfer, and dies at the hop ceiling.
func TestMergeRemoteHopPropagation(t *testing.T) {
	clk := time.Unix(1700000000, 0)
	planners := []*Planner{
		testPlanner(t, "depA", &clk),
		testPlanner(t, "depB", &clk),
		testPlanner(t, "client", &clk),
		testPlanner(t, "server", &clk),
	}
	planners[0].ObserveLoss("depA", "server", DeadEdgeLoss)
	clk = clk.Add(10 * time.Millisecond)

	// Chain: 0 -> 1 -> 2 -> 3. Hops grows 1, 2, 3.
	for i := 1; i < len(planners); i++ {
		if n := planners[i].MergeRemote(planners[i-1].ExportObservations(0)); n == 0 {
			t.Fatalf("hop %d: nothing merged", i)
		}
		if m := edgeMetrics(planners[i])["depA->server"]; m.LossProb < 0.4 {
			t.Fatalf("hop %d: poison did not propagate (loss %v)", i, m.LossProb)
		}
	}
	// The final holder is at the ceiling; its re-export withholds it.
	last := planners[len(planners)-1]
	for _, o := range last.ExportObservations(0) {
		if o.Origin == "depA" && o.Hops >= MaxGossipHops {
			t.Fatalf("hop-ceiling entry still exported: %+v", o)
		}
	}
}

// The snapshot round-trip must preserve observation timestamps:
// pre-restart observations may not look freshly measured after a
// restore, or a rebooted depot would gossip stale knowledge as new.
func TestSnapshotPreservesObservationTimes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "planner.json")

	obsTime := time.Unix(1700000000, 0)
	clk := obsTime
	p := testPlanner(t, "depA", &clk)
	p.ObserveRTT("depA", "server", 0.008)
	p.ObserveBandwidth("depA", "server", 90e6)
	p.ObserveLoss("depA", "server", 0.001)
	if err := p.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	// Restart five minutes later — inside the staleness window, so the
	// restored observations are still exportable but must carry their
	// original measurement times.
	clk2 := obsTime.Add(5 * time.Minute)
	p2 := testPlanner(t, "depA", &clk2)
	if err := p2.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	obs := p2.ExportObservations(0)
	if len(obs) != 3 {
		t.Fatalf("exported %d observations after restore, want 3: %+v", len(obs), obs)
	}
	for _, o := range obs {
		if !o.Time.Equal(obsTime) {
			t.Fatalf("restored observation time %v, want the original %v", o.Time, obsTime)
		}
	}
}

// An hour-old snapshot restores forecasts for local planning but exports
// nothing: the knowledge is too old to gossip (the bug this guards
// against: replaying with restore wall-clock time made it look fresh).
func TestSnapshotStaleObservationsNotExported(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "planner.json")

	obsTime := time.Unix(1700000000, 0)
	clk := obsTime
	p := testPlanner(t, "depA", &clk)
	p.ObserveLoss("depA", "server", DeadEdgeLoss)
	if err := p.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	clk2 := obsTime.Add(2 * MaxRemoteAge)
	p2 := testPlanner(t, "depA", &clk2)
	if err := p2.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	// The forecast itself is warm-started...
	if m := edgeMetrics(p2)["depA->server"]; m.LossProb < 0.4 {
		t.Fatalf("warm-started loss %v, want >= 0.4", m.LossProb)
	}
	// ...but it is not gossiped as current knowledge.
	if obs := p2.ExportObservations(0); len(obs) != 0 {
		t.Fatalf("stale restored observations exported: %+v", obs)
	}
}

package logistics

import (
	"math"
	"sort"
	"time"

	"lsl/internal/route"
)

// Forecast gossip: the planner's observation export/merge surface, used
// by internal/gossip to share edge knowledge between depots. A depot
// only learns first-hand from sessions it relays itself; gossip lets it
// also plan with what the rest of the fleet has measured.
//
// The unit of exchange is the EdgeObservation: a per-(edge, metric)
// forecast summary with provenance — which node measured it (Origin),
// how many depot-to-depot transfers it has undergone (Hops), and when
// the newest underlying measurement happened (Time). Remote summaries
// never enter the local NWS series; they live in a per-edge overlay
// keyed by (origin, metric) with last-writer-wins timestamps, which
// makes MergeRemote idempotent and peer-order-independent — the
// anti-entropy requirement. The planning metrics blend the local
// forecast with the remote overlay, remote contributions weighted down
// by age and hop count so local measurement always dominates where it
// exists, while an edge this node has never measured is governed by the
// freshest remote word — including failure-poisoned loss forecasts, so
// the whole fleet routes around a dead edge within a few rounds and
// decays back when the origin observes successes again.

// ObsMetric identifies which metric an exported observation summarizes.
// Values match the wire encoding (wire.GossipObs.Metric).
type ObsMetric uint8

// Observation metrics.
const (
	ObsRTT ObsMetric = iota
	ObsBandwidth
	ObsLoss
)

// Gossip aging and weighting parameters.
const (
	// MaxGossipHops bounds how many depot-to-depot transfers an
	// observation survives; beyond it the summary is too diluted (and too
	// easily looped) to act on.
	MaxGossipHops = 4
	// MaxRemoteAge is the staleness clamp: summaries older than this are
	// neither merged, blended, nor re-exported.
	MaxRemoteAge = 10 * time.Minute
	// MaxClockSkew bounds how far in the future a remote observation's
	// timestamp may sit before it is rejected (a peer with a broken clock
	// must not permanently win last-writer-wins merges).
	MaxClockSkew = 30 * time.Second
	// remoteHalfLife halves a remote summary's blend weight for every
	// interval of age.
	remoteHalfLife = time.Minute
	// localObsWeight vs remoteBaseWeight fix the local:remote ratio for a
	// fresh one-hop summary at 8:1 — remote knowledge nudges, local
	// measurement governs.
	localObsWeight   = 2.0
	remoteBaseWeight = 0.5
)

// EdgeObservation is one per-(edge, metric) forecast summary with
// provenance, the unit the gossip layer exchanges.
type EdgeObservation struct {
	From, To string
	Metric   ObsMetric
	// Value is the forecast at export time (seconds, bits/sec, or
	// probability, by Metric).
	Value float64
	// Count is the observation count behind the summary at its origin.
	Count uint32
	// Origin is the node that measured it; Hops counts the
	// depot-to-depot transfers since (0 = exported by the origin itself).
	Origin string
	Hops   uint8
	// Time is the newest underlying observation's wall-clock time.
	Time time.Time
}

// ExportObservations returns the planner's shareable edge knowledge:
// one summary per locally-measured (edge, metric) pair, plus the
// still-fresh remote summaries it holds (so knowledge propagates
// transitively). Entries are newest-first and capped at max (<=0 means
// no cap). Summaries older than MaxRemoteAge or at the hop ceiling are
// withheld.
func (p *Planner) ExportObservations(max int) []EdgeObservation {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	self := string(p.self)
	var out []EdgeObservation
	local := func(key edgeKey, m ObsMetric, s interface {
		Len() int
		Forecast() float64
	}, t time.Time) {
		if s.Len() == 0 || t.IsZero() || now.Sub(t) > MaxRemoteAge {
			return
		}
		v := s.Forecast()
		if !finiteObs(m, v) {
			return
		}
		out = append(out, EdgeObservation{
			From: string(key.from), To: string(key.to), Metric: m,
			Value: v, Count: uint32(s.Len()), Origin: self, Time: t,
		})
	}
	for key, es := range p.series {
		local(key, ObsRTT, es.rtt, es.rttTime)
		local(key, ObsBandwidth, es.bw, es.bwTime)
		local(key, ObsLoss, es.loss, es.lossTime)
		for rk, r := range es.remote {
			if now.Sub(r.t) > MaxRemoteAge || r.hops >= MaxGossipHops {
				continue
			}
			out = append(out, EdgeObservation{
				From: string(key.from), To: string(key.to), Metric: rk.metric,
				Value: r.value, Count: r.count, Origin: rk.origin, Hops: r.hops, Time: r.t,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Time.Equal(out[j].Time) {
			return out[i].Time.After(out[j].Time)
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		if out[i].Origin != out[j].Origin {
			return out[i].Origin < out[j].Origin
		}
		return out[i].Metric < out[j].Metric
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// MergeRemote folds a batch of remote observations into the planner's
// remote overlay and refreshes the planning metrics of every touched
// edge. It returns how many entries were newly stored or updated.
//
// The merge is an anti-entropy join: entries are keyed by (edge, metric,
// origin) and resolved last-writer-wins on the observation timestamp,
// with min-hops as the deterministic tiebreak — so merging the same
// batch twice, or two batches in either order, leaves identical state.
// Self-originated entries (our own observations echoed back), unknown
// edges, stale or future-dated timestamps, hop-ceiling overflows, and
// non-finite values are all skipped.
func (p *Planner) MergeRemote(obs []EdgeObservation) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	self := string(p.self)
	merged := 0
	touched := make(map[edgeKey]*edgeSeries)
	for _, o := range obs {
		if o.Origin == "" || o.Origin == self {
			continue
		}
		hops := int(o.Hops) + 1 // one more depot-to-depot transfer landed it here
		if hops > MaxGossipHops {
			continue
		}
		key := edgeKey{route.NodeID(o.From), route.NodeID(o.To)}
		es, ok := p.series[key]
		if !ok {
			// The planner never invents topology from gossip, exactly as
			// it never invents it from local measurements.
			continue
		}
		if o.Time.IsZero() || now.Sub(o.Time) > MaxRemoteAge || o.Time.After(now.Add(MaxClockSkew)) {
			continue
		}
		if !finiteObs(o.Metric, o.Value) {
			continue
		}
		rk := remoteKey{origin: o.Origin, metric: o.Metric}
		if cur, exists := es.remote[rk]; exists {
			if cur.t.After(o.Time) || (cur.t.Equal(o.Time) && int(cur.hops) <= hops) {
				continue
			}
		}
		v := o.Value
		if o.Metric == ObsLoss {
			v = clamp(v, 0, maxLossProb)
		}
		es.remote[rk] = remoteObs{value: v, count: o.Count, hops: uint8(hops), t: o.Time}
		touched[key] = es
		merged++
	}
	for key, es := range touched {
		p.refreshEdgeLocked(key.from, key.to, es)
	}
	return merged
}

// RemoteObsCount reports how many gossip-learned summaries the planner
// currently holds (tests, /plan diagnostics).
func (p *Planner) RemoteObsCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, es := range p.series {
		n += len(es.remote)
	}
	return n
}

// blendRemote combines the local planning value of one metric with the
// edge's remote summaries. Remote weight decays by half per
// remoteHalfLife of age and per gossip hop; entries past MaxRemoteAge
// contribute nothing. With no usable contribution the local value (or
// static fallback) stands.
func blendRemote(es *edgeSeries, m ObsMetric, localVal float64, haveLocal bool, now time.Time) float64 {
	// Gather contributors in a deterministic (origin-sorted) order:
	// float summation is not associative, and planners that merged the
	// same knowledge in different peer orders must still compute
	// bit-identical forecasts (the anti-entropy property tests rely on
	// it).
	origins := make([]string, 0, len(es.remote))
	for rk := range es.remote {
		if rk.metric == m {
			origins = append(origins, rk.origin)
		}
	}
	sort.Strings(origins)
	wsum, vsum := 0.0, 0.0
	if haveLocal {
		wsum = localObsWeight
		vsum = localObsWeight * localVal
	}
	for _, origin := range origins {
		r := es.remote[remoteKey{origin: origin, metric: m}]
		age := now.Sub(r.t)
		if age > MaxRemoteAge {
			continue
		}
		if age < 0 {
			age = 0
		}
		w := remoteBaseWeight *
			exp2Neg(float64(age)/float64(remoteHalfLife)) *
			exp2Neg(float64(r.hops)-1)
		wsum += w
		vsum += w * r.value
	}
	if wsum == 0 {
		return localVal
	}
	return vsum / wsum
}

// exp2Neg returns 2^-x for x >= 0 (x < 0 is clamped to 1).
func exp2Neg(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Exp2(-x)
}

func finiteObs(m ObsMetric, v float64) bool {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return false
	}
	switch m {
	case ObsRTT, ObsBandwidth:
		return v > 0
	case ObsLoss:
		return v >= 0 && v <= 1
	default:
		return false
	}
}

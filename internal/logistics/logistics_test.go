package logistics

import (
	"encoding/json"
	"strings"
	"testing"

	"lsl/internal/core"
	"lsl/internal/depot"
	"lsl/internal/metrics"
	"lsl/internal/route"
)

// testGraph is a diamond: client reaches server through a fast depot A
// and a slow depot B.
//
//	client --5ms/100M-- A --5ms/100M-- server
//	client --40ms/50M-- B --40ms/50M-- server
func testGraph() *route.Graph {
	g := route.NewGraph()
	g.AddNode(route.Node{ID: "client"})
	g.AddNode(route.Node{ID: "A", Depot: true, Addr: "a:5000"})
	g.AddNode(route.Node{ID: "B", Depot: true, Addr: "b:5000"})
	g.AddNode(route.Node{ID: "server", Addr: "srv:7000"})
	fast := route.Metrics{RTTSeconds: 0.005, BandwidthBps: 100e6, LossProb: 2.5e-4}
	slow := route.Metrics{RTTSeconds: 0.040, BandwidthBps: 50e6, LossProb: 2.5e-4}
	g.AddDuplex("client", "A", fast)
	g.AddDuplex("A", "server", fast)
	g.AddDuplex("client", "B", slow)
	g.AddDuplex("B", "server", slow)
	return g
}

func newTestPlanner(t *testing.T) *Planner {
	t.Helper()
	p, err := New(testGraph(), "client")
	if err != nil {
		t.Fatal(err)
	}
	p.SetMetrics(NewMetrics(metrics.NewRegistry()))
	return p
}

func TestNewRejectsUnknownSelf(t *testing.T) {
	if _, err := New(testGraph(), "nobody"); err == nil {
		t.Fatal("unknown self accepted")
	}
}

func TestPlanRoutesRanksFastDepotFirst(t *testing.T) {
	p := newTestPlanner(t)
	routes, err := p.PlanRoutes("srv:7000", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) < 2 {
		t.Fatalf("routes=%d, want >= 2", len(routes))
	}
	best := routes[0]
	if len(best.Via) != 1 || best.Via[0] != "a:5000" {
		t.Fatalf("best route via %v, want [a:5000]", best.Via)
	}
	if best.Target != "srv:7000" {
		t.Fatalf("target %q", best.Target)
	}
}

func TestPlanRoutesUnknownTarget(t *testing.T) {
	p := newTestPlanner(t)
	if _, err := p.PlanRoutes("elsewhere:1", 1<<20); err == nil {
		t.Fatal("unknown target accepted")
	}
}

// A failure on the fast route poisons its edges; the next plan prefers
// the alternate, and subsequent successes decay the loss forecast back.
func TestFailurePoisonsThenSuccessDecays(t *testing.T) {
	p := newTestPlanner(t)
	viaA := core.Route{Via: []string{"a:5000"}, Target: "srv:7000"}

	p.ObserveFailure(viaA, "a:5000") // dial failure at the first hop
	m, lossFc, ok := p.EdgeState("client", "A")
	if !ok {
		t.Fatal("edge client->A missing")
	}
	if m.LossProb < 0.4 || lossFc < 0.4 {
		t.Fatalf("loss after poison: metrics=%v forecast=%v, want >= 0.4", m.LossProb, lossFc)
	}
	// Only the leg up to the failed hop is poisoned.
	if m2, _, _ := p.EdgeState("A", "server"); m2.LossProb >= 0.4 {
		t.Fatalf("A->server poisoned by first-hop dial failure: %v", m2.LossProb)
	}

	routes, err := p.PlanRoutes("srv:7000", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes[0].Via) != 1 || routes[0].Via[0] != "b:5000" {
		t.Fatalf("post-failure best route via %v, want [b:5000]", routes[0].Via)
	}

	// Recovery: successes on the A route decay the loss forecast.
	for i := 0; i < 6; i++ {
		p.ObserveSuccess(viaA, 8<<20, 1.0, 0.005)
	}
	if _, lossAfter, _ := p.EdgeState("client", "A"); lossAfter >= lossFc {
		t.Fatalf("loss forecast did not decay: %v -> %v", lossFc, lossAfter)
	}
}

// An in-session failure (unknown hop) poisons every leg of the route.
func TestUnattributedFailurePoisonsWholeRoute(t *testing.T) {
	p := newTestPlanner(t)
	p.ObserveFailure(core.Route{Via: []string{"a:5000"}, Target: "srv:7000"}, "")
	for _, e := range [][2]route.NodeID{{"client", "A"}, {"A", "server"}} {
		if m, _, _ := p.EdgeState(e[0], e[1]); m.LossProb < 0.4 {
			t.Fatalf("edge %s->%s not poisoned: %v", e[0], e[1], m.LossProb)
		}
	}
	if m, _, _ := p.EdgeState("client", "B"); m.LossProb >= 0.4 {
		t.Fatalf("uninvolved edge poisoned: %v", m.LossProb)
	}
}

func TestObserveSuccessUpdatesBandwidthAndRTT(t *testing.T) {
	p := newTestPlanner(t)
	viaA := core.Route{Via: []string{"a:5000"}, Target: "srv:7000"}
	// 8 MiB in 4s ~= 16.8 Mbps achieved — well under the declared 100 Mbps.
	p.ObserveSuccess(viaA, 8<<20, 4.0, 0.009)
	m, _, _ := p.EdgeState("client", "A")
	if m.BandwidthBps >= 100e6 {
		t.Fatalf("bandwidth forecast not folded in: %v", m.BandwidthBps)
	}
	if m.RTTSeconds != 0.009 {
		t.Fatalf("rtt forecast %v, want 0.009", m.RTTSeconds)
	}
}

func TestMetricsCount(t *testing.T) {
	reg := metrics.NewRegistry()
	met := NewMetrics(reg)
	p, err := New(testGraph(), "client")
	if err != nil {
		t.Fatal(err)
	}
	p.SetMetrics(met)
	p.ObserveRTT("client", "A", 0.005)
	p.ObserveRTT("client", "A", 0.006)
	p.RecordReplan()
	if v := met.Observations.Value(); v != 2 {
		t.Fatalf("observations %d", v)
	}
	if v := met.Replans.Value(); v != 1 {
		t.Fatalf("replans %d", v)
	}
	// Two observations on one series: the second is scored, MSE exists.
	if v := met.ForecastMSE.Value(); v < 0 {
		t.Fatalf("forecast mse %v", v)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"lsl_logistics_observations_total 2",
		"lsl_logistics_replans_total 1",
		"lsl_logistics_forecast_mse",
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

func TestSnapshotIsJSONSafe(t *testing.T) {
	p := newTestPlanner(t)
	p.ObserveFailure(core.Route{Via: []string{"a:5000"}, Target: "srv:7000"}, "a:5000")
	v := p.Snapshot()
	if v.Self != "client" || len(v.Nodes) != 4 || len(v.Edges) != 8 {
		t.Fatalf("snapshot shape: self=%q nodes=%d edges=%d", v.Self, len(v.Nodes), len(v.Edges))
	}
	out, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
	if !strings.Contains(string(out), `"loss_predictor"`) {
		t.Fatalf("snapshot missing predictor provenance:\n%s", out)
	}
}

func TestDepotHookFeedsNextHopEdge(t *testing.T) {
	g := testGraph()
	p, err := New(g, "A") // planner runs on depot A
	if err != nil {
		t.Fatal(err)
	}
	p.SetMetrics(NewMetrics(metrics.NewRegistry()))
	hook := p.DepotHook()

	hook(depot.SessionInfo{
		Kind: depot.KindRelay, NextHop: "srv:7000",
		Outcome: depot.OutcomeCompleted, BytesForward: 4 << 20, DurationSeconds: 2,
	})
	m, _, _ := p.EdgeState("A", "server")
	if m.BandwidthBps >= 100e6 {
		t.Fatalf("relay throughput not folded in: %v", m.BandwidthBps)
	}

	hook(depot.SessionInfo{
		Kind: depot.KindRelay, NextHop: "srv:7000", Outcome: depot.OutcomeDialFailed,
	})
	if m, _, _ = p.EdgeState("A", "server"); m.LossProb < 0.2 {
		t.Fatalf("dial failure not folded in: %v", m.LossProb)
	}

	// Unknown next hops and outcomes are ignored, not fatal.
	hook(depot.SessionInfo{NextHop: "unknown:1", Outcome: depot.OutcomeCompleted})
	hook(depot.SessionInfo{NextHop: "srv:7000", Outcome: depot.OutcomeCanceled})
}

func TestFromOverlay(t *testing.T) {
	text := `
node client
node A depot addr a:5000
node server addr srv:7000
edge client A 5 100 0.00025
edge A server 5 100 0.00025
`
	p, err := FromOverlay(strings.NewReader(text), "client")
	if err != nil {
		t.Fatal(err)
	}
	routes, err := p.PlanRoutes("srv:7000", 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) == 0 {
		t.Fatal("no routes")
	}
	if _, err := FromOverlay(strings.NewReader(text), "ghost"); err == nil {
		t.Fatal("unknown self accepted")
	}
	if _, err := FromOverlay(strings.NewReader("garbage"), "client"); err == nil {
		t.Fatal("bad overlay accepted")
	}
}

func TestPlanStripesDisjointWeighted(t *testing.T) {
	p := newTestPlanner(t)
	routes, weights, err := p.PlanStripes("srv:7000", 64<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 2 || len(weights) != 2 {
		t.Fatalf("got %d routes / %d weights, want 2 disjoint cascades", len(routes), len(weights))
	}
	if len(routes[0].Via) != 1 || routes[0].Via[0] != "a:5000" {
		t.Fatalf("fastest stripe route via %v, want [a:5000]", routes[0].Via)
	}
	if len(routes[1].Via) != 1 || routes[1].Via[0] != "b:5000" {
		t.Fatalf("second stripe route via %v, want [b:5000]", routes[1].Via)
	}
	if weights[0] <= weights[1] || weights[1] <= 0 {
		t.Fatalf("weights %v not ordered with the ranking", weights)
	}

	capped, cw, err := p.PlanStripes("srv:7000", 64<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 1 || len(cw) != 1 {
		t.Fatalf("k=1 returned %d routes", len(capped))
	}
	if _, _, err := p.PlanStripes("elsewhere:1", 1<<20, 0); err == nil {
		t.Fatal("unknown target accepted")
	}
}

// Steal-skewed success feedback must reorder the next stripe plan: when
// tail reclamation keeps migrating a slow stripe's frames onto the B
// route, the per-stripe byte attribution fed back through ObserveSuccess
// shows A achieving a fraction of its declared bandwidth — so the next
// plan ranks and weights B ahead of A.
func TestPlanStripesLearnsFromStealSkew(t *testing.T) {
	p := newTestPlanner(t)
	routes, _, err := p.PlanStripes("srv:7000", 64<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if routes[0].Via[0] != "a:5000" {
		t.Fatalf("precondition: fastest via %v", routes[0].Via)
	}
	viaA := core.Route{Via: []string{"a:5000"}, Target: "srv:7000"}
	viaB := core.Route{Via: []string{"b:5000"}, Target: "srv:7000"}
	// Five striped transfers where stealing left A with ~7% of the bytes:
	// both stripes ran the same wall clock, so achieved bandwidth is the
	// attribution ratio.
	for i := 0; i < 5; i++ {
		p.ObserveSuccess(viaA, 1<<20, 1.0, 0.005)
		p.ObserveSuccess(viaB, 14<<20, 1.0, 0.020)
	}
	replanned, weights, err := p.PlanStripes("srv:7000", 64<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if replanned[0].Via[0] != "b:5000" {
		t.Fatalf("after steal-skewed attribution fastest via %v, want [b:5000] (weights %v)",
			replanned[0].Via, weights)
	}
	if weights[0] <= weights[1] {
		t.Fatalf("weights %v not reordered with the attribution", weights)
	}
}

// Per-stripe failure feedback must reorder the next stripe plan: after a
// stripe on the A route dies, B becomes the predicted-fastest route.
func TestPlanStripesLearnsFromStripeFailure(t *testing.T) {
	p := newTestPlanner(t)
	routes, _, err := p.PlanStripes("srv:7000", 64<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if routes[0].Via[0] != "a:5000" {
		t.Fatalf("precondition: fastest via %v", routes[0].Via)
	}
	for i := 0; i < 3; i++ {
		p.ObserveFailure(routes[0], "")
	}
	replanned, weights, err := p.PlanStripes("srv:7000", 64<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if replanned[0].Via[0] != "b:5000" {
		t.Fatalf("after stripe failures fastest via %v, want [b:5000]", replanned[0].Via)
	}
	if weights[0] <= 0 {
		t.Fatalf("weights %v", weights)
	}
}

package logistics

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"lsl/internal/route"
)

// Forecast persistence: SaveSnapshot serialises the planner's learned
// edge metrics (the Snapshot View, which is already the stable JSON the
// admin /plan endpoint serves) and LoadSnapshot warm-starts a freshly
// built planner from it, so a depot does not relearn the overlay from
// scratch after a restart or deploy.
//
// The NWS predictor banks themselves are not serialised — they are
// cheap to regrow and their internals are not a stable format. Instead
// each edge's last forecast is replayed as a single observation, which
// seeds every predictor in the bank with the learned value and folds it
// into the planning graph immediately. One real observation after
// restart and the bank is competitive again.

// SaveSnapshot atomically writes the planner's current Snapshot as JSON
// to path (tmp file + rename, fsynced, so a crash mid-save leaves either
// the old snapshot or the new one, never a torn file).
func (p *Planner) SaveSnapshot(path string) error {
	data, err := json.MarshalIndent(p.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("logistics: encode snapshot: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".planner-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadSnapshot reads a SaveSnapshot file and seeds the planner's
// forecast series from it. Edges present in the snapshot but absent
// from the planner's graph are skipped (the overlay may have changed
// between runs); edges with no recorded observations are left untouched
// so the overlay's static metrics keep governing them. A missing file
// is returned as-is — callers gate on os.IsNotExist for first boot.
//
// Each replayed forecast keeps the snapshot's recorded observation
// timestamp, NOT the restore wall-clock time: the planner itself is
// happy to plan on a warm-started forecast, but the gossip layer ages
// and exports observations by measurement time, and replaying a
// pre-restart observation as fresh would make a rebooted depot
// re-broadcast stale knowledge as the newest word on an edge. Snapshots
// from before timestamps were recorded load with a zero time, which the
// gossip export treats as too stale to share — conservative, and healed
// by the first real post-restart measurement.
func (p *Planner) LoadSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var v View
	if err := json.Unmarshal(data, &v); err != nil {
		return fmt.Errorf("logistics: decode snapshot %s: %w", path, err)
	}
	if v.Self != "" && v.Self != string(p.self) {
		return fmt.Errorf("logistics: snapshot %s was taken on node %s, planner is %s", path, v.Self, p.self)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ev := range v.Edges {
		key := edgeKey{route.NodeID(ev.From), route.NodeID(ev.To)}
		es, ok := p.series[key]
		if !ok {
			continue
		}
		if ev.RTTObs > 0 && ev.RTTSeconds > 0 {
			es.rtt.Observe(ev.RTTSeconds)
			es.rttTime = fromUnixNano(ev.RTTUpdatedUnixNano)
		}
		if ev.BandwidthObs > 0 && ev.BandwidthBps > 0 {
			es.bw.Observe(ev.BandwidthBps)
			es.bwTime = fromUnixNano(ev.BWUpdatedUnixNano)
		}
		if ev.LossObs > 0 {
			es.loss.Observe(clamp(ev.LossProb, 0, maxLossProb))
			es.lossTime = fromUnixNano(ev.LossUpdatedUnixNano)
		}
		p.refreshEdgeLocked(key.from, key.to, es)
	}
	return nil
}

// fromUnixNano maps the snapshot encoding back to a time (0 = zero time,
// i.e. "age unknown, treat as stale").
func fromUnixNano(n int64) time.Time {
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

package logistics

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"lsl/internal/route"
)

// Forecast persistence: SaveSnapshot serialises the planner's learned
// edge metrics (the Snapshot View, which is already the stable JSON the
// admin /plan endpoint serves) and LoadSnapshot warm-starts a freshly
// built planner from it, so a depot does not relearn the overlay from
// scratch after a restart or deploy.
//
// The NWS predictor banks themselves are not serialised — they are
// cheap to regrow and their internals are not a stable format. Instead
// each edge's last forecast is replayed as a single observation, which
// seeds every predictor in the bank with the learned value and folds it
// into the planning graph immediately. One real observation after
// restart and the bank is competitive again.

// SaveSnapshot atomically writes the planner's current Snapshot as JSON
// to path (tmp file + rename, fsynced, so a crash mid-save leaves either
// the old snapshot or the new one, never a torn file).
func (p *Planner) SaveSnapshot(path string) error {
	data, err := json.MarshalIndent(p.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("logistics: encode snapshot: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".planner-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadSnapshot reads a SaveSnapshot file and seeds the planner's
// forecast series from it. Edges present in the snapshot but absent
// from the planner's graph are skipped (the overlay may have changed
// between runs); edges with no recorded observations are left untouched
// so the overlay's static metrics keep governing them. A missing file
// is returned as-is — callers gate on os.IsNotExist for first boot.
func (p *Planner) LoadSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var v View
	if err := json.Unmarshal(data, &v); err != nil {
		return fmt.Errorf("logistics: decode snapshot %s: %w", path, err)
	}
	if v.Self != "" && v.Self != string(p.self) {
		return fmt.Errorf("logistics: snapshot %s was taken on node %s, planner is %s", path, v.Self, p.self)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ev := range v.Edges {
		key := edgeKey{route.NodeID(ev.From), route.NodeID(ev.To)}
		es, ok := p.series[key]
		if !ok {
			continue
		}
		if ev.RTTObs > 0 && ev.RTTSeconds > 0 {
			es.rtt.Observe(ev.RTTSeconds)
		}
		if ev.BandwidthObs > 0 && ev.BandwidthBps > 0 {
			es.bw.Observe(ev.BandwidthBps)
		}
		if ev.LossObs > 0 {
			es.loss.Observe(clamp(ev.LossProb, 0, maxLossProb))
		}
		p.refreshEdgeLocked(key.from, key.to, es)
	}
	return nil
}

package logistics

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lsl/internal/route"
)

func TestSnapshotRoundTripRestoresLearnedEdges(t *testing.T) {
	p := newTestPlanner(t)
	// Teach the planner the fast path has degraded badly.
	for i := 0; i < 5; i++ {
		p.ObserveRTT("client", "A", 0.200)
		p.ObserveBandwidth("client", "A", 1e6)
		p.ObserveLoss("client", "A", 0.05)
	}
	wantM, wantLoss, ok := p.EdgeState("client", "A")
	if !ok {
		t.Fatal("edge client->A missing")
	}

	path := filepath.Join(t.TempDir(), "planner.json")
	if err := p.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	// A fresh planner over the same overlay starts from the static edge
	// metrics; loading the snapshot must bring back the learned ones.
	p2 := newTestPlanner(t)
	if m, _, _ := p2.EdgeState("client", "A"); m.RTTSeconds == wantM.RTTSeconds {
		t.Fatal("fresh planner already has learned RTT — test is vacuous")
	}
	if err := p2.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	gotM, gotLoss, ok := p2.EdgeState("client", "A")
	if !ok {
		t.Fatal("edge client->A missing after load")
	}
	if ratio := gotM.RTTSeconds / wantM.RTTSeconds; ratio < 0.5 || ratio > 2 {
		t.Fatalf("restored RTT %.4fs not near saved %.4fs", gotM.RTTSeconds, wantM.RTTSeconds)
	}
	if ratio := gotM.BandwidthBps / wantM.BandwidthBps; ratio < 0.5 || ratio > 2 {
		t.Fatalf("restored bandwidth %.0f not near saved %.0f", gotM.BandwidthBps, wantM.BandwidthBps)
	}
	if gotLoss <= 0 || gotLoss > 2*wantLoss+0.01 {
		t.Fatalf("restored loss %.4f not near saved %.4f", gotLoss, wantLoss)
	}

	// Untouched edges keep their overlay statics.
	m, _, _ := p2.EdgeState("client", "B")
	if m.RTTSeconds != 0.040 {
		t.Fatalf("unobserved edge mutated: RTT %.4fs", m.RTTSeconds)
	}
}

func TestLoadSnapshotMissingFile(t *testing.T) {
	p := newTestPlanner(t)
	err := p.LoadSnapshot(filepath.Join(t.TempDir(), "nope.json"))
	if !os.IsNotExist(err) {
		t.Fatalf("want IsNotExist, got %v", err)
	}
}

func TestLoadSnapshotRejectsWrongSelf(t *testing.T) {
	p, err := New(testGraph(), "A")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "planner.json")
	if err := p.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	p2 := newTestPlanner(t) // self = client
	err = p2.LoadSnapshot(path)
	if err == nil || !strings.Contains(err.Error(), "taken on node A") {
		t.Fatalf("wrong-self snapshot accepted: %v", err)
	}
}

func TestLoadSnapshotRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "planner.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := newTestPlanner(t).LoadSnapshot(path); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestLoadSnapshotSkipsUnknownEdges(t *testing.T) {
	p := newTestPlanner(t)
	p.ObserveRTT("client", "A", 0.100)
	path := filepath.Join(t.TempDir(), "planner.json")
	if err := p.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	// Load into a planner whose overlay lost depot A entirely.
	g := route.NewGraph()
	g.AddNode(route.Node{ID: "client"})
	g.AddNode(route.Node{ID: "B", Depot: true, Addr: "b:5000"})
	g.AddNode(route.Node{ID: "server", Addr: "srv:7000"})
	slow := route.Metrics{RTTSeconds: 0.040, BandwidthBps: 50e6, LossProb: 2.5e-4}
	g.AddDuplex("client", "B", slow)
	g.AddDuplex("B", "server", slow)
	p2, err := New(g, "client")
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.LoadSnapshot(path); err != nil {
		t.Fatalf("snapshot with stale edges refused: %v", err)
	}
}

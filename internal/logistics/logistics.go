// Package logistics closes the paper's measure->forecast->plan->transfer
// loop: it owns a planning route.Graph, keeps one NWS forecast series per
// (directed edge, metric) pair, ingests measurements from real transfers
// — client-side dial RTT and achieved throughput (internal/core,
// internal/resilience) and per-next-hop relay statistics (internal/depot)
// — and re-ranks candidate session routes by the analytic TCP model over
// the forecast-updated graph. This is the "network logistics" decision
// surface of the paper made live: the session layer no longer merely
// cascades a given route, it chooses the route, and keeps choosing as
// conditions change.
//
// The Planner satisfies resilience.Planner, so a resilient transfer with
// resilience.WithPlanner starts on the predicted-fastest route, fails
// over to the next-best predicted route on transient failure, and feeds
// every attempt's measurements back into the forecasters. Dead links are
// not tombstoned: a failure is recorded as a loss observation, which the
// TCP model punishes heavily (Mathis: throughput ~ 1/sqrt(p)), and later
// successes decay the loss forecast back down — a recovered depot regains
// traffic without operator action.
package logistics

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"lsl/internal/core"
	"lsl/internal/depot"
	"lsl/internal/metrics"
	"lsl/internal/nws"
	"lsl/internal/overlay"
	"lsl/internal/route"
)

// DeadEdgeLoss is the loss probability observed on an edge implicated in
// a transfer failure. Folded through the Mathis bound it makes the edge
// rank far behind any healthy alternative, while remaining a legitimate
// probability the forecasters can decay when successes return.
const DeadEdgeLoss = 0.5

// maxLossProb caps the loss forecast folded into the planning graph so
// the TCP model never sees a certain-loss edge (which would predict zero
// throughput and defeat decay).
const maxLossProb = 0.99

// Metrics is the planner's counter set (see NewMetrics).
type Metrics struct {
	// Observations is lsl_logistics_observations_total.
	Observations *metrics.Counter
	// Replans is lsl_logistics_replans_total.
	Replans *metrics.Counter
	// ForecastMSE is lsl_logistics_forecast_mse.
	ForecastMSE *metrics.FloatGauge
}

// NewMetrics registers the lsl_logistics_* families on reg.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		Observations: reg.Counter("lsl_logistics_observations_total",
			"Link measurements fed into the NWS forecast banks."),
		Replans: reg.Counter("lsl_logistics_replans_total",
			"Transfers re-routed onto the next-best predicted route after a failure."),
		ForecastMSE: reg.FloatGauge("lsl_logistics_forecast_mse",
			"Mean squared error of the winning NWS predictors, averaged over all live series."),
	}
}

var (
	defaultOnce sync.Once
	defaultReg  *metrics.Registry
	defaultMet  *Metrics
)

// DefaultRegistry returns the process-wide registry holding the
// lsl_logistics_* metrics of planners that did not supply their own sink.
func DefaultRegistry() *metrics.Registry {
	defaultOnce.Do(func() {
		defaultReg = metrics.NewRegistry()
		defaultMet = NewMetrics(defaultReg)
	})
	return defaultReg
}

func defaultMetrics() *Metrics {
	DefaultRegistry()
	return defaultMet
}

// edgeKey names one directed edge.
type edgeKey struct{ from, to route.NodeID }

// edgeSeries is the forecast state of one directed edge: one NWS series
// per metric, plus the static metrics the overlay declared (used until a
// series has data, and as the fallback when a forecast is unusable).
// Local series are annotated with the newest underlying observation's
// wall-clock time — the freshness the gossip layer advertises — and
// remote holds forecast summaries learned from other depots via gossip,
// keyed by (origin, metric) with last-writer-wins timestamps so merges
// are idempotent and order-independent.
type edgeSeries struct {
	base route.Metrics
	rtt  *nws.Series
	bw   *nws.Series
	loss *nws.Series
	// Newest local observation per metric (zero = never observed here).
	rttTime  time.Time
	bwTime   time.Time
	lossTime time.Time
	// Gossip-learned summaries from other depots.
	remote map[remoteKey]remoteObs
}

// remoteKey identifies one remote contributor's summary of one metric.
type remoteKey struct {
	origin string
	metric ObsMetric
}

// remoteObs is one gossip-learned forecast summary.
type remoteObs struct {
	value float64
	count uint32
	hops  uint8
	t     time.Time
}

// Planner is the live logistics control plane. All methods are safe for
// concurrent use; the planning graph is only ever read or mutated under
// the planner's lock.
type Planner struct {
	mu     sync.Mutex
	graph  *route.Graph
	self   route.NodeID
	series map[edgeKey]*edgeSeries
	byAddr map[string]route.NodeID
	met    *Metrics
	// now is the planner's clock (observation timestamps, remote-summary
	// aging). Overridden in tests for deterministic gossip merges.
	now func() time.Time
}

// New builds a planner over g, planning from the named local node. The
// graph is owned by the planner from here on: forecasts are folded into
// its edge metrics in place.
func New(g *route.Graph, self route.NodeID) (*Planner, error) {
	if _, ok := g.Node(self); !ok {
		return nil, fmt.Errorf("logistics: unknown self node %s", self)
	}
	p := &Planner{
		graph:  g,
		self:   self,
		series: make(map[edgeKey]*edgeSeries),
		byAddr: make(map[string]route.NodeID),
		now:    time.Now,
	}
	for _, id := range g.Nodes() {
		n, _ := g.Node(id)
		if n.Addr != "" {
			p.byAddr[n.Addr] = id
		}
	}
	for _, e := range g.Edges() {
		p.series[edgeKey{e.From, e.To}] = &edgeSeries{
			base:   e.M,
			rtt:    nws.NewSeries(fmt.Sprintf("%s->%s/rtt", e.From, e.To)),
			bw:     nws.NewSeries(fmt.Sprintf("%s->%s/bandwidth", e.From, e.To)),
			loss:   nws.NewSeries(fmt.Sprintf("%s->%s/loss", e.From, e.To)),
			remote: make(map[remoteKey]remoteObs),
		}
	}
	return p, nil
}

// FromOverlay parses an overlay description (internal/overlay format) and
// builds a planner planning from self.
func FromOverlay(r io.Reader, self route.NodeID) (*Planner, error) {
	g, err := overlay.Parse(r)
	if err != nil {
		return nil, err
	}
	return New(g, self)
}

// SetMetrics directs the planner's counters at m instead of the package
// default registry.
func (p *Planner) SetMetrics(m *Metrics) {
	p.mu.Lock()
	p.met = m
	p.mu.Unlock()
}

func (p *Planner) metricsLocked() *Metrics {
	if p.met == nil {
		p.met = defaultMetrics()
	}
	return p.met
}

// Self returns the node the planner plans from.
func (p *Planner) Self() route.NodeID { return p.self }

// ---- observation ingestion ----

// ObserveRTT feeds one round-trip-time measurement (seconds) for the
// directed edge and refreshes the planning graph with the new forecast.
func (p *Planner) ObserveRTT(from, to route.NodeID, seconds float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.observeLocked(from, to, func(es *edgeSeries) { es.rtt.Observe(seconds) })
}

// ObserveBandwidth feeds one achieved-throughput measurement (bytes/sec
// converted to bits/sec by the caller is NOT expected — pass bits/sec).
func (p *Planner) ObserveBandwidth(from, to route.NodeID, bps float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.observeLocked(from, to, func(es *edgeSeries) { es.bw.Observe(bps) })
}

// ObserveLoss feeds one loss-probability observation.
func (p *Planner) ObserveLoss(from, to route.NodeID, prob float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.observeLocked(from, to, func(es *edgeSeries) { es.loss.Observe(clamp(prob, 0, maxLossProb)) })
}

// observeLocked runs one observation against the edge's series, then
// folds the refreshed forecasts into the planning graph. Unknown edges
// (not declared in the overlay) are ignored: the planner never invents
// topology from measurements, it only re-weights declared links.
func (p *Planner) observeLocked(from, to route.NodeID, obs func(*edgeSeries)) {
	es, ok := p.series[edgeKey{from, to}]
	if !ok {
		return
	}
	rttN, bwN, lossN := es.rtt.Len(), es.bw.Len(), es.loss.Len()
	obs(es)
	// Stamp whichever metric streams grew, so gossip can advertise (and
	// age) each summary by the real measurement time.
	now := p.now()
	if es.rtt.Len() > rttN {
		es.rttTime = now
	}
	if es.bw.Len() > bwN {
		es.bwTime = now
	}
	if es.loss.Len() > lossN {
		es.lossTime = now
	}
	p.refreshEdgeLocked(from, to, es)
	met := p.metricsLocked()
	met.Observations.Inc()
	met.ForecastMSE.Set(p.meanMSELocked())
}

// refreshEdgeLocked rebuilds the edge's planning metrics: each component
// uses its forecast when the series has data and the forecast is usable,
// and falls back to the overlay's static value otherwise. Gossip-learned
// remote summaries are then blended in, weighted down by age and hop
// count so local measurement always dominates — but on an edge this node
// has never measured, fresh remote observations govern outright.
func (p *Planner) refreshEdgeLocked(from, to route.NodeID, es *edgeSeries) {
	m := es.base
	now := p.now()
	if v := es.rtt.Forecast(); es.rtt.Len() > 0 && !math.IsNaN(v) && v > 0 {
		m.RTTSeconds = v
	}
	if v := es.bw.Forecast(); es.bw.Len() > 0 && !math.IsNaN(v) && v > 0 {
		m.BandwidthBps = v
	}
	if v := es.loss.Forecast(); es.loss.Len() > 0 && !math.IsNaN(v) {
		m.LossProb = clamp(v, 0, maxLossProb)
	}
	if len(es.remote) > 0 {
		m.RTTSeconds = blendRemote(es, ObsRTT, m.RTTSeconds, es.rtt.Len() > 0, now)
		m.BandwidthBps = blendRemote(es, ObsBandwidth, m.BandwidthBps, es.bw.Len() > 0, now)
		m.LossProb = clamp(blendRemote(es, ObsLoss, m.LossProb, es.loss.Len() > 0, now), 0, maxLossProb)
	}
	// Both nodes exist by construction; SetEdge cannot fail here.
	p.graph.SetEdge(from, to, m)
}

// meanMSELocked averages the winning predictor's MSE across every series
// with enough history to have been scored.
func (p *Planner) meanMSELocked() float64 {
	var sum float64
	var n int
	for _, es := range p.series {
		for _, s := range []*nws.Series{es.rtt, es.bw, es.loss} {
			if s.Len() < 2 {
				continue // first observation is never scored against a forecast
			}
			if v := s.Selector.MSE(); !math.IsNaN(v) {
				sum += v
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ---- planning (resilience.Planner) ----

// PlanRoutes ranks candidate session routes from the planner's node to
// the target address, best predicted completion time first. Plans whose
// hops lack dialable addresses are skipped.
func (p *Planner) PlanRoutes(target string, size int64) ([]core.Route, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	dst, ok := p.byAddr[target]
	if !ok {
		return nil, fmt.Errorf("logistics: target %s not in planning graph", target)
	}
	plans, err := p.graph.RankCandidates(p.self, dst, size)
	if err != nil {
		return nil, err
	}
	var routes []core.Route
	for _, pl := range plans {
		via, tgt, err := pl.Addrs(p.graph)
		if err != nil {
			continue
		}
		routes = append(routes, core.Route{Via: via, Target: tgt})
	}
	if len(routes) == 0 {
		return nil, fmt.Errorf("logistics: no dialable route to %s", target)
	}
	return routes, nil
}

// PlanStripes returns up to k edge-disjoint session routes to the target
// plus a predicted-throughput weight (bits/sec over the forecast graph)
// for each — the initial dispatch weights of a striped transfer. The
// fastest route is always included; fewer than k routes come back when
// the overlay cannot support more disjoint paths. Per-stripe feedback
// flows through the same ObserveSuccess/ObserveFailure used for
// single-path transfers, so each stripe's fate re-weights exactly the
// edges it crossed.
func (p *Planner) PlanStripes(target string, size int64, k int) ([]core.Route, []float64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	dst, ok := p.byAddr[target]
	if !ok {
		return nil, nil, fmt.Errorf("logistics: target %s not in planning graph", target)
	}
	plans, err := p.graph.DisjointRoutes(p.self, dst, size, k)
	if err != nil {
		return nil, nil, err
	}
	var routes []core.Route
	var weights []float64
	for _, pl := range plans {
		via, tgt, err := pl.Addrs(p.graph)
		if err != nil {
			continue
		}
		w := 1.0
		if pl.PredictedSeconds > 0 && size > 0 {
			w = float64(size) * 8 / pl.PredictedSeconds
		}
		routes = append(routes, core.Route{Via: via, Target: tgt})
		weights = append(weights, w)
	}
	if len(routes) == 0 {
		return nil, nil, fmt.Errorf("logistics: no dialable disjoint route to %s", target)
	}
	return routes, weights, nil
}

// ObserveSuccess feeds back a delivered attempt: achieved throughput and
// a zero-loss observation on every underlying edge the session route
// crossed, plus the first-hop dial RTT when the first leg is a single
// edge.
func (p *Planner) ObserveSuccess(r core.Route, bytes int64, seconds, dialSeconds float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	legs := p.routeLegsLocked(r)
	for i, leg := range legs {
		for j := 0; j+1 < len(leg); j++ {
			from, to := leg[j], leg[j+1]
			p.observeLocked(from, to, func(es *edgeSeries) {
				if seconds > 0 && bytes > 0 {
					es.bw.Observe(float64(bytes) * 8 / seconds)
				}
				es.loss.Observe(0)
			})
			if i == 0 && len(leg) == 2 && dialSeconds > 0 {
				p.observeLocked(from, to, func(es *edgeSeries) { es.rtt.Observe(dialSeconds) })
			}
		}
	}
}

// ObserveFailure records a failed attempt as loss observations. When the
// failed hop is known (a first-hop dial error), only the legs up to and
// including that hop are poisoned; otherwise the failure cannot be
// attributed and every edge the route crossed takes the hit — later
// successes on the healthy edges decay them back immediately.
func (p *Planner) ObserveFailure(r core.Route, hop string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	legs := p.routeLegsLocked(r)
	limit := len(legs)
	if hop != "" {
		if id, ok := p.byAddr[hop]; ok {
			for i, leg := range legs {
				if len(leg) > 0 && leg[len(leg)-1] == id {
					limit = i + 1
					break
				}
			}
		}
	}
	for i := 0; i < limit && i < len(legs); i++ {
		leg := legs[i]
		for j := 0; j+1 < len(leg); j++ {
			p.observeLocked(leg[j], leg[j+1], func(es *edgeSeries) { es.loss.Observe(DeadEdgeLoss) })
		}
	}
}

// RecordReplan counts one failover onto the next-best predicted route.
func (p *Planner) RecordReplan() {
	p.mu.Lock()
	p.metricsLocked().Replans.Inc()
	p.mu.Unlock()
}

// routeLegsLocked resolves a session route's hop addresses back to graph
// nodes and expands each session leg into its underlying min-latency
// router path, so observations land on the real edges that carried the
// bytes. Routes naming unknown addresses resolve to nil (nothing to
// attribute).
func (p *Planner) routeLegsLocked(r core.Route) [][]route.NodeID {
	ids := []route.NodeID{p.self}
	for _, a := range r.Hops() {
		id, ok := p.byAddr[a]
		if !ok {
			return nil
		}
		ids = append(ids, id)
	}
	var legs [][]route.NodeID
	for i := 0; i+1 < len(ids); i++ {
		path, _, err := p.graph.MinLatencyPath(ids[i], ids[i+1])
		if err != nil {
			continue
		}
		legs = append(legs, path)
	}
	return legs
}

// ---- depot-side ingestion ----

// DepotHook returns a depot.Config.OnSessionEnd callback feeding the
// depot's per-session relay statistics into the planner: completed relay
// sessions observe achieved forward throughput (and zero loss) on the
// edge toward their next hop; next-hop dial failures poison it.
func (p *Planner) DepotHook() func(depot.SessionInfo) {
	return func(info depot.SessionInfo) {
		if info.NextHop == "" {
			return
		}
		p.mu.Lock()
		defer p.mu.Unlock()
		to, ok := p.byAddr[info.NextHop]
		if !ok {
			return
		}
		switch info.Outcome {
		case depot.OutcomeCompleted, depot.OutcomeStagedDeliver:
			p.observeLocked(p.self, to, func(es *edgeSeries) {
				if info.DurationSeconds > 0 && info.BytesForward > 0 {
					es.bw.Observe(float64(info.BytesForward) * 8 / info.DurationSeconds)
				}
				es.loss.Observe(0)
			})
		case depot.OutcomeDialFailed:
			p.observeLocked(p.self, to, func(es *edgeSeries) { es.loss.Observe(DeadEdgeLoss) })
		}
	}
}

// ---- snapshot (admin /plan) ----

// EdgeView is one directed edge's live planning state.
type EdgeView struct {
	From string `json:"from"`
	To   string `json:"to"`
	// Current metrics as the planner will feed them to the TCP model.
	RTTSeconds   float64 `json:"rtt_seconds"`
	BandwidthBps float64 `json:"bandwidth_bps"`
	LossProb     float64 `json:"loss_prob"`
	// Per-metric observation counts and winning predictors.
	RTTObs        int    `json:"rtt_observations"`
	BandwidthObs  int    `json:"bandwidth_observations"`
	LossObs       int    `json:"loss_observations"`
	RTTPredictor  string `json:"rtt_predictor,omitempty"`
	BWPredictor   string `json:"bandwidth_predictor,omitempty"`
	LossPredictor string `json:"loss_predictor,omitempty"`
	// Newest local observation per metric, unix nanoseconds (0 = never
	// observed locally). Carried through snapshot save/load so restored
	// forecasts keep their real measurement age — gossip must not re-share
	// pre-restart observations as fresh.
	RTTUpdatedUnixNano  int64 `json:"rtt_updated_unix_nano,omitempty"`
	BWUpdatedUnixNano   int64 `json:"bandwidth_updated_unix_nano,omitempty"`
	LossUpdatedUnixNano int64 `json:"loss_updated_unix_nano,omitempty"`
	// RemoteObs counts gossip-learned summaries currently blended into
	// this edge's planning metrics.
	RemoteObs int `json:"remote_observations,omitempty"`
}

// NodeView is one graph vertex.
type NodeView struct {
	ID    string `json:"id"`
	Depot bool   `json:"depot,omitempty"`
	Addr  string `json:"addr,omitempty"`
}

// View is the planner's observable state, served as JSON on the depot
// admin /plan endpoint.
type View struct {
	Self  string     `json:"self"`
	Nodes []NodeView `json:"nodes"`
	Edges []EdgeView `json:"edges"`
	// Totals from the planner's metric sink.
	Observations uint64  `json:"observations"`
	Replans      uint64  `json:"replans"`
	ForecastMSE  float64 `json:"forecast_mse"`
}

// Snapshot captures the planner's current graph, forecasts and counters.
// All values are JSON-safe (no NaN/Inf).
func (p *Planner) Snapshot() View {
	p.mu.Lock()
	defer p.mu.Unlock()
	met := p.metricsLocked()
	v := View{
		Self:         string(p.self),
		Observations: met.Observations.Value(),
		Replans:      met.Replans.Value(),
		ForecastMSE:  jsonSafe(met.ForecastMSE.Value()),
	}
	for _, id := range p.graph.Nodes() {
		n, _ := p.graph.Node(id)
		v.Nodes = append(v.Nodes, NodeView{ID: string(n.ID), Depot: n.Depot, Addr: n.Addr})
	}
	for _, e := range p.graph.Edges() {
		ev := EdgeView{
			From:         string(e.From),
			To:           string(e.To),
			RTTSeconds:   jsonSafe(e.M.RTTSeconds),
			BandwidthBps: jsonSafe(e.M.BandwidthBps),
			LossProb:     jsonSafe(e.M.LossProb),
		}
		if es, ok := p.series[edgeKey{e.From, e.To}]; ok {
			ev.RTTObs = es.rtt.Len()
			ev.BandwidthObs = es.bw.Len()
			ev.LossObs = es.loss.Len()
			ev.RemoteObs = len(es.remote)
			if es.rtt.Len() > 0 {
				ev.RTTPredictor = es.rtt.Selector.BestName()
				ev.RTTUpdatedUnixNano = unixNano(es.rttTime)
			}
			if es.bw.Len() > 0 {
				ev.BWPredictor = es.bw.Selector.BestName()
				ev.BWUpdatedUnixNano = unixNano(es.bwTime)
			}
			if es.loss.Len() > 0 {
				ev.LossPredictor = es.loss.Selector.BestName()
				ev.LossUpdatedUnixNano = unixNano(es.lossTime)
			}
		}
		v.Edges = append(v.Edges, ev)
	}
	return v
}

// PlanView adapts Snapshot to the opaque closure depot.Config.PlanView
// expects.
func (p *Planner) PlanView() func() interface{} {
	return func() interface{} { return p.Snapshot() }
}

// EdgeState returns the live metrics and loss forecast of one directed
// edge (tests, diagnostics).
func (p *Planner) EdgeState(from, to route.NodeID) (m route.Metrics, lossForecast float64, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	es, found := p.series[edgeKey{from, to}]
	if !found {
		return route.Metrics{}, 0, false
	}
	m = es.base
	for _, e := range p.graph.Edges() {
		if e.From == from && e.To == to {
			m = e.M
			break
		}
	}
	lf := es.loss.Forecast()
	if math.IsNaN(lf) {
		lf = 0
	}
	return m, lf, true
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func jsonSafe(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

func unixNano(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// Package xfer is the shared session data plane: the one place bytes are
// moved between transport connections on behalf of a session. The depot's
// relay loop, its staged (custody) delivery path, and the initiator's
// SendReader all drain through CopyCounted, so buffer pooling, byte
// accounting, high-water tracking, and cancellation behave identically at
// every layer — the paper's depot is "a transport to transport binding"
// (§IV-A), and this package is that binding as a reusable engine.
//
// Buffers come from size-classed sync.Pool-backed pools (PoolFor), so a
// depot moving millions of sessions performs no per-session buffer
// allocation: a session borrows a buffer for exactly as long as bytes are
// moving and returns it on the way out.
package xfer

import (
	"context"
	"io"
	"sync"
	"sync/atomic"
)

// Pool hands out fixed-size copy buffers backed by a sync.Pool. All
// buffers from one Pool have the same length (its size class).
type Pool struct {
	size int
	p    sync.Pool
}

// NewPool builds a pool whose buffers are size bytes long. Sizes must be
// positive; a non-positive size falls back to 256 KiB (the default relay
// buffer).
func NewPool(size int) *Pool {
	if size <= 0 {
		size = 256 << 10
	}
	p := &Pool{size: size}
	p.p.New = func() interface{} {
		b := make([]byte, p.size)
		return &b
	}
	return p
}

// Size returns the pool's buffer length.
func (p *Pool) Size() int { return p.size }

// Get borrows a buffer of exactly Size bytes.
func (p *Pool) Get() *[]byte { return p.p.Get().(*[]byte) }

// Put returns a buffer to the pool. Buffers of the wrong size class are
// dropped rather than poisoning the pool.
func (p *Pool) Put(b *[]byte) {
	if b == nil || len(*b) != p.size {
		return
	}
	p.p.Put(b)
}

// pools is the process-wide size-class registry behind PoolFor.
var (
	poolsMu sync.Mutex
	pools   = map[int]*Pool{}
)

// PoolFor returns the process-wide pool for one buffer size class,
// creating it on first use. Layers configured with the same buffer size
// (e.g. every depot plus the initiator's send path) share one pool.
func PoolFor(size int) *Pool {
	if size <= 0 {
		size = 256 << 10
	}
	poolsMu.Lock()
	defer poolsMu.Unlock()
	if p, ok := pools[size]; ok {
		return p
	}
	p := NewPool(size)
	pools[size] = p
	return p
}

// Adder receives byte credits as data moves. *metrics.Counter satisfies
// it directly; wrap an atomic counter with AtomicAdder.
type Adder interface{ Add(n uint64) }

// AtomicAdder adapts a per-session *atomic.Uint64 live counter to Adder.
type AtomicAdder struct{ U *atomic.Uint64 }

// Add credits the underlying atomic counter.
func (a AtomicAdder) Add(n uint64) { a.U.Add(n) }

// MaxSetter tracks a high-water mark. *metrics.Gauge satisfies it.
type MaxSetter interface{ SetMax(v int64) }

// CopyConfig threads per-session observability and lifecycle into one
// counted copy. The zero value is a plain pooled copy.
type CopyConfig struct {
	// Counters are credited with each chunk after it is written (the
	// session's live byte counter, the depot-wide direction total, ...).
	Counters []Adder
	// HighWater, when set, records the largest single read — the relay
	// buffer fill level.
	HighWater MaxSetter
	// Progress, when set, is called with each chunk's size after it is
	// written (rate estimation, per-transfer progress).
	Progress func(n int)
	// Ctx, when set, cancels the copy between chunks. A read or write
	// blocked on a dead peer does not observe Ctx on its own — the owner
	// of the transport must close it on cancellation (the depot's session
	// watchdog does exactly that); the next Read/Write then fails and the
	// copy unwinds.
	Ctx context.Context
}

// CopyCounted moves bytes from src to dst through a buffer borrowed from
// pool, returning the byte count and the first error. A clean EOF from
// src is not an error. Each chunk is credited to every configured counter
// only after it has been written downstream, so counters never run ahead
// of the receiver.
func CopyCounted(dst io.Writer, src io.Reader, pool *Pool, cfg CopyConfig) (int64, error) {
	bp := pool.Get()
	defer pool.Put(bp)
	buf := *bp
	var moved int64
	for {
		if cfg.Ctx != nil {
			select {
			case <-cfg.Ctx.Done():
				return moved, cfg.Ctx.Err()
			default:
			}
		}
		n, rerr := src.Read(buf)
		if n > 0 {
			if cfg.HighWater != nil {
				cfg.HighWater.SetMax(int64(n))
			}
			nw, werr := dst.Write(buf[:n])
			if nw > 0 {
				moved += int64(nw)
				for _, c := range cfg.Counters {
					c.Add(uint64(nw))
				}
				if cfg.Progress != nil {
					cfg.Progress(nw)
				}
			}
			if werr != nil {
				return moved, werr
			}
			if nw < n {
				return moved, io.ErrShortWrite
			}
		}
		if rerr != nil {
			if rerr == io.EOF {
				return moved, nil
			}
			return moved, rerr
		}
	}
}

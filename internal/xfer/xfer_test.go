package xfer

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"sync/atomic"
	"testing"
)

func TestPoolSizeClass(t *testing.T) {
	p := NewPool(1024)
	b := p.Get()
	if len(*b) != 1024 {
		t.Fatalf("len=%d", len(*b))
	}
	p.Put(b)
	// Wrong-size buffers must not poison the pool.
	bad := make([]byte, 10)
	p.Put(&bad)
	again := p.Get()
	if len(*again) != 1024 {
		t.Fatalf("pool poisoned: len=%d", len(*again))
	}
	if NewPool(0).Size() != 256<<10 {
		t.Fatal("zero size did not default")
	}
}

func TestPoolForSharesByClass(t *testing.T) {
	if PoolFor(2048) != PoolFor(2048) {
		t.Fatal("same size class returned distinct pools")
	}
	if PoolFor(2048) == PoolFor(4096) {
		t.Fatal("distinct size classes share a pool")
	}
	if PoolFor(0) != PoolFor(256<<10) {
		t.Fatal("zero size did not alias the default class")
	}
}

func TestCopyCountedCounts(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 10000)
	var dst bytes.Buffer
	var live atomic.Uint64
	var total counter
	var high maxGauge
	var progress int
	n, err := CopyCounted(&dst, bytes.NewReader(payload), NewPool(512), CopyConfig{
		Counters:  []Adder{AtomicAdder{U: &live}, &total},
		HighWater: &high,
		Progress:  func(n int) { progress += n },
	})
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if !bytes.Equal(dst.Bytes(), payload) {
		t.Fatal("payload corrupted")
	}
	if live.Load() != uint64(len(payload)) || total.v != uint64(len(payload)) || progress != len(payload) {
		t.Fatalf("counters: live=%d total=%d progress=%d", live.Load(), total.v, progress)
	}
	if high.v != 512 {
		t.Fatalf("high water %d, want full buffer fills of 512", high.v)
	}
}

func TestCopyCountedReadError(t *testing.T) {
	boom := errors.New("boom")
	src := io.MultiReader(strings.NewReader("abcd"), errReader{boom})
	var dst bytes.Buffer
	n, err := CopyCounted(&dst, src, NewPool(2), CopyConfig{})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v", err)
	}
	if n != 4 {
		t.Fatalf("n=%d", n)
	}
}

func TestCopyCountedWriteError(t *testing.T) {
	boom := errors.New("full")
	var total counter
	n, err := CopyCounted(failWriter{2, boom}, strings.NewReader("abcdef"), NewPool(4), CopyConfig{
		Counters: []Adder{&total},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v", err)
	}
	// Only the bytes actually written downstream are credited.
	if n != 2 || total.v != 2 {
		t.Fatalf("n=%d total=%d", n, total.v)
	}
}

func TestCopyCountedShortWrite(t *testing.T) {
	_, err := CopyCounted(failWriter{1, nil}, strings.NewReader("abcd"), NewPool(4), CopyConfig{})
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err=%v", err)
	}
}

func TestCopyCountedCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var dst bytes.Buffer
	n, err := CopyCounted(&dst, strings.NewReader("abcd"), NewPool(4), CopyConfig{Ctx: ctx})
	if !errors.Is(err, context.Canceled) || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func BenchmarkCopyCounted(b *testing.B) {
	payload := bytes.Repeat([]byte("y"), 1<<20)
	pool := PoolFor(256 << 10)
	var live atomic.Uint64
	cfg := CopyConfig{Counters: []Adder{AtomicAdder{U: &live}}}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CopyCounted(io.Discard, bytes.NewReader(payload), pool, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

type counter struct{ v uint64 }

func (c *counter) Add(n uint64) { c.v += n }

type maxGauge struct{ v int64 }

func (g *maxGauge) SetMax(v int64) {
	if v > g.v {
		g.v = v
	}
}

type errReader struct{ err error }

func (r errReader) Read([]byte) (int, error) { return 0, r.err }

// failWriter accepts n bytes of the first chunk, then fails with err
// (nil err models a silent short write).
type failWriter struct {
	n   int
	err error
}

func (w failWriter) Write(p []byte) (int, error) {
	if len(p) <= w.n {
		return len(p), nil
	}
	return w.n, w.err
}

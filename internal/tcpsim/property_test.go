package tcpsim

import (
	"math"
	"testing"
	"testing/quick"

	"lsl/internal/netsim"
	"lsl/internal/trace"
)

// Property: every transfer completes exactly, with a monotone trace and
// consistent retransmission accounting, across random network conditions.
func TestTransferConservationProperty(t *testing.T) {
	f := func(seed int64, rateRaw, delayRaw, lossRaw, sizeRaw uint16, sack bool) bool {
		rate := float64(rateRaw%500+10) * 1e5    // 1..51 Mbps
		delay := netsim.Time(delayRaw%60+1) * ms // 1..60ms one-way
		loss := float64(lossRaw%50) / 10000      // 0..0.5%
		size := int64(sizeRaw%900+1) << 10       // 1K..900K
		e := netsim.NewEngine(seed)
		fl := netsim.NewLink(e, "f", rate, delay, 256<<10, loss)
		rl := netsim.NewLink(e, "r", 0, delay, 0, loss/2)
		cfg := DefaultConfig()
		cfg.DisableSACK = !sack
		res := Transfer(e, netsim.NewPath(e, fl), netsim.NewPath(e, rl), cfg, size, nil)
		if res.Bytes != size {
			return false
		}
		if res.Seconds() <= 0 {
			return false
		}
		// Sanity on the floor: can't beat propagation + handshake.
		if res.Seconds() < 2*delay.Seconds() {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: sequence numbers in traces are monotone (original
// transmissions) and the trace covers exactly the stream.
func TestTraceCoverageProperty(t *testing.T) {
	f := func(seed int64, lossRaw uint8, sizeRaw uint16) bool {
		loss := float64(lossRaw%30) / 10000
		size := int64(sizeRaw%500+1) << 10
		e := netsim.NewEngine(seed)
		fl := netsim.NewLink(e, "f", 2e7, 10*ms, 0, loss)
		rl := netsim.NewLink(e, "r", 0, 10*ms, 0, 0)
		rec := trace.New("t")
		res := Transfer(e, netsim.NewPath(e, fl), netsim.NewPath(e, rl), DefaultConfig(), size, rec)
		if res.Bytes != size {
			return false
		}
		if rec.TotalBytes() != size+1 { // + fin unit
			return false
		}
		if rec.Retransmissions() != int(res.Conn.Stats.Retransmits) {
			return false
		}
		ser := rec.SeqSeries()
		for i := 1; i < len(ser); i++ {
			if ser[i].Y < ser[i-1].Y || ser[i].X < ser[i-1].X {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: throughput on a loss-dominated path stays within a broad
// factor band of the Mathis bound (the simulator's congestion avoidance
// and the analytic model must agree on scaling).
func TestMathisBandProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	type tc struct {
		delay netsim.Time
		loss  float64
	}
	for _, c := range []tc{
		{15 * ms, 3e-4},
		{30 * ms, 3e-4},
		{30 * ms, 1e-3},
		{50 * ms, 5e-4},
	} {
		e := netsim.NewEngine(99)
		fl := netsim.NewLink(e, "f", 1e9, c.delay, 0, c.loss)
		rl := netsim.NewLink(e, "r", 0, c.delay, 0, 0)
		cfg := DefaultConfig()
		cfg.InitialSSThresh = 64 << 10 // skip the slow-start burst
		res := Transfer(e, netsim.NewPath(e, fl), netsim.NewPath(e, rl), cfg, 32<<20, nil)
		rtt := 2 * c.delay.Seconds()
		mathis := 1.22 * float64(cfg.MSS*8) / (rtt * math.Sqrt(c.loss))
		got := res.Mbps() * 1e6
		// Delayed ACKs, recovery overhead and finite length put the
		// simulator below the bound; a factor-4 band catches scaling bugs
		// without overfitting.
		if got > mathis*1.5 || got < mathis/4 {
			t.Fatalf("delay=%v loss=%v: got %.1f Mbps, Mathis %.1f Mbps",
				c.delay, c.loss, got/1e6, mathis/1e6)
		}
	}
}

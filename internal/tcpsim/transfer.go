package tcpsim

import (
	"lsl/internal/netsim"
	"lsl/internal/trace"
)

// TransferResult summarizes one simulated bulk transfer.
type TransferResult struct {
	Bytes int64
	Start netsim.Time // when the transfer was initiated (connect time)
	Done  netsim.Time // when the sink had consumed the whole stream
	Conn  *Conn
	Trace *trace.Recorder
}

// Seconds returns the wall-clock duration of the transfer, connect to EOF —
// the paper's methodology ("we observed the host to host throughput
// empirically so as to include all additional overheads").
func (r TransferResult) Seconds() float64 { return (r.Done - r.Start).Seconds() }

// Mbps returns the achieved goodput in megabits per second.
func (r TransferResult) Mbps() float64 {
	s := r.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / s / 1e6
}

// Transfer runs a complete size-byte transfer over fwd/rev on engine e:
// connect, stream, close, and consume at the sink as fast as data arrives.
// It drives the engine until the sink reaches EOF (or the event heap
// drains, which would indicate a protocol deadlock and is reported by the
// Done timestamp remaining zero with Bytes short). A trace recorder is
// attached when rec is non-nil.
func Transfer(e *netsim.Engine, fwd, rev *netsim.Path, cfg Config, size int64, rec *trace.Recorder) TransferResult {
	start := e.Now()
	c := Connect(e, fwd, rev, cfg)
	c.Trace = rec

	var pushed int64
	push := func() {
		for pushed < size {
			n := c.AppWrite(size - pushed)
			if n == 0 {
				break
			}
			pushed += n
		}
		if pushed == size {
			c.CloseWrite()
		}
	}
	c.OnEstablished(push)
	c.OnSendSpace(push)

	var done netsim.Time
	finished := false
	c.OnDeliver(func() {
		if n := c.Available(); n > 0 {
			c.AppRead(n)
		}
		if !finished && c.EOF() {
			finished = true
			done = e.Now()
		}
	})

	e.RunWhile(func() bool { return !finished })

	return TransferResult{
		Bytes: c.BytesReceived(),
		Start: start,
		Done:  done,
		Conn:  c,
		Trace: rec,
	}
}

package tcpsim

import (
	"testing"

	"lsl/internal/netsim"
)

// runBurstLossCase exercises burst loss via a tiny drop-tail router
// buffer, which slow-start overshoot overflows — the worst case for Reno
// (one recovered hole per RTT), routine for SACK.
func runBurstLossCase(disableSACK bool) TransferResult {
	e := netsim.NewEngine(7)
	f := netsim.NewLink(e, "f", 2e7, 20*ms, 48*1024, 0) // small router buffer
	r := netsim.NewLink(e, "r", 0, 20*ms, 0, 0)
	cfg := DefaultConfig()
	cfg.DisableSACK = disableSACK
	return Transfer(e, netsim.NewPath(e, f), netsim.NewPath(e, r), cfg, 8<<20, nil)
}

func TestSACKRecoversBurstFasterThanReno(t *testing.T) {
	withSACK := runBurstLossCase(false)
	reno := runBurstLossCase(true)
	if withSACK.Bytes != 8<<20 || reno.Bytes != 8<<20 {
		t.Fatalf("incomplete: %d / %d", withSACK.Bytes, reno.Bytes)
	}
	// SACK repairs a multi-segment burst in ~1 RTT; Reno needs a round
	// trip (or an RTO) per hole. The completion gap should be material.
	if withSACK.Seconds() >= reno.Seconds() {
		t.Fatalf("SACK (%.2fs) should beat Reno (%.2fs) under burst loss",
			withSACK.Seconds(), reno.Seconds())
	}
}

func TestSACKScoreboardMerge(t *testing.T) {
	e := netsim.NewEngine(1)
	fwd, rev := symPath(e, 0, 0, 0, 0)
	c := Connect(e, fwd, rev, DefaultConfig())
	e.Run()
	c.addSack(1000, 2000)
	c.addSack(3000, 4000)
	if len(c.sacked) != 2 {
		t.Fatalf("sacked=%v", c.sacked)
	}
	c.addSack(1500, 3500) // bridges both
	if len(c.sacked) != 1 || c.sacked[0].start != 1000 || c.sacked[0].end != 4000 {
		t.Fatalf("merge failed: %v", c.sacked)
	}
	if c.fack() != 4000 {
		t.Fatalf("fack=%d", c.fack())
	}
}

func TestSACKScoreboardClipsBelowUna(t *testing.T) {
	e := netsim.NewEngine(1)
	fwd, rev := symPath(e, 0, 0, 0, 0)
	c := Connect(e, fwd, rev, DefaultConfig())
	e.Run()
	c.sndUna = 5000
	c.addSack(1000, 2000) // entirely below una: ignored
	if len(c.sacked) != 0 {
		t.Fatalf("sacked=%v", c.sacked)
	}
	c.addSack(4000, 6000) // straddles: clipped
	if len(c.sacked) != 1 || c.sacked[0].start != 5000 {
		t.Fatalf("clip failed: %v", c.sacked)
	}
}

func TestSACKPruneOnCumulativeAck(t *testing.T) {
	e := netsim.NewEngine(1)
	fwd, rev := symPath(e, 0, 0, 0, 0)
	c := Connect(e, fwd, rev, DefaultConfig())
	e.Run()
	c.addSack(1000, 2000)
	c.addSack(3000, 4000)
	c.sndUna = 3500
	c.pruneSacked()
	if len(c.sacked) != 1 || c.sacked[0].start != 3500 || c.sacked[0].end != 4000 {
		t.Fatalf("prune failed: %v", c.sacked)
	}
}

func TestNextHoleWalksGaps(t *testing.T) {
	e := netsim.NewEngine(1)
	fwd, rev := symPath(e, 0, 0, 0, 0)
	c := Connect(e, fwd, rev, DefaultConfig())
	e.Run()
	c.sndUna = 0
	c.holePtr = 0
	c.addSack(1000, 2000)
	c.addSack(3000, 4000)
	s, en, ok := c.nextHole()
	if !ok || s != 0 || en != 1000 {
		t.Fatalf("first hole: %d-%d %v", s, en, ok)
	}
	c.holePtr = 1000 // consumed first hole
	s, en, ok = c.nextHole()
	if !ok || s != 2000 || en != 3000 {
		t.Fatalf("second hole: %d-%d %v", s, en, ok)
	}
	c.holePtr = 3000
	if _, _, ok := c.nextHole(); ok {
		t.Fatal("no hole beyond fack")
	}
}

func TestDisableSACKOmitsBlocks(t *testing.T) {
	e := netsim.NewEngine(13)
	f := netsim.NewLink(e, "f", 1e8, 5*ms, 0, 0.01)
	r := netsim.NewLink(e, "r", 0, 5*ms, 0, 0)
	cfg := DefaultConfig()
	cfg.DisableSACK = true
	res := Transfer(e, netsim.NewPath(e, f), netsim.NewPath(e, r), cfg, 1<<20, nil)
	if res.Bytes != 1<<20 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
	if len(res.Conn.sacked) != 0 {
		t.Fatal("scoreboard populated with SACK disabled")
	}
}

func TestRenoStillCompletesRandomLoss(t *testing.T) {
	e := netsim.NewEngine(21)
	f := netsim.NewLink(e, "f", 5e7, 10*ms, 0, 0.003)
	r := netsim.NewLink(e, "r", 0, 10*ms, 0, 0)
	cfg := DefaultConfig()
	cfg.DisableSACK = true
	res := Transfer(e, netsim.NewPath(e, f), netsim.NewPath(e, r), cfg, 4<<20, nil)
	if res.Bytes != 4<<20 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
}

package tcpsim

import (
	"math"
	"testing"

	"lsl/internal/netsim"
	"lsl/internal/trace"
)

const ms = netsim.Millisecond

// symPath builds a forward and reverse path over a single fresh link each,
// with the given rate, one-way delay and loss.
func symPath(e *netsim.Engine, rateBps float64, oneWay netsim.Time, queueCap int, loss float64) (fwd, rev *netsim.Path) {
	f := netsim.NewLink(e, "fwd", rateBps, oneWay, queueCap, loss)
	r := netsim.NewLink(e, "rev", 0, oneWay, 0, 0)
	return netsim.NewPath(e, f), netsim.NewPath(e, r)
}

func cleanCfg() Config {
	cfg := DefaultConfig()
	return cfg
}

func TestHandshakeTakesOneRTT(t *testing.T) {
	e := netsim.NewEngine(1)
	fwd, rev := symPath(e, 0, 10*ms, 0, 0)
	c := Connect(e, fwd, rev, cleanCfg())
	var at netsim.Time = -1
	c.OnEstablished(func() { at = e.Now() })
	e.Run()
	if at != 20*ms {
		t.Fatalf("established at %v, want 20ms", at)
	}
}

func TestOnEstablishedAfterTheFact(t *testing.T) {
	e := netsim.NewEngine(1)
	fwd, rev := symPath(e, 0, ms, 0, 0)
	c := Connect(e, fwd, rev, cleanCfg())
	e.Run()
	called := false
	c.OnEstablished(func() { called = true })
	if !called {
		t.Fatal("late OnEstablished should fire immediately")
	}
}

func TestSmallTransferDelivers(t *testing.T) {
	e := netsim.NewEngine(1)
	fwd, rev := symPath(e, 1e8, 5*ms, 0, 0)
	res := Transfer(e, fwd, rev, cleanCfg(), 10000, nil)
	if res.Bytes != 10000 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
	if res.Seconds() <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestZeroLossNoRetransmits(t *testing.T) {
	e := netsim.NewEngine(1)
	fwd, rev := symPath(e, 1e8, 5*ms, 0, 0)
	res := Transfer(e, fwd, rev, cleanCfg(), 1<<20, nil)
	if res.Conn.Stats.Retransmits != 0 {
		t.Fatalf("retransmits=%d on lossless path", res.Conn.Stats.Retransmits)
	}
	if res.Conn.Stats.Timeouts != 0 {
		t.Fatalf("timeouts=%d", res.Conn.Stats.Timeouts)
	}
}

func TestTransferWithLossCompletes(t *testing.T) {
	e := netsim.NewEngine(7)
	fwd, rev := symPath(e, 1e8, 5*ms, 0, 0.01)
	res := Transfer(e, fwd, rev, cleanCfg(), 1<<20, nil)
	if res.Bytes != 1<<20 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
	if res.Conn.Stats.Retransmits == 0 {
		t.Fatal("expected retransmissions at 1% loss")
	}
}

func TestHeavyLossCompletes(t *testing.T) {
	e := netsim.NewEngine(3)
	fwd, rev := symPath(e, 1e8, 2*ms, 0, 0.10)
	res := Transfer(e, fwd, rev, cleanCfg(), 200000, nil)
	if res.Bytes != 200000 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
}

func TestAckPathLossCompletes(t *testing.T) {
	e := netsim.NewEngine(5)
	f := netsim.NewLink(e, "fwd", 1e8, 3*ms, 0, 0.01)
	r := netsim.NewLink(e, "rev", 0, 3*ms, 0, 0.05) // lossy ACK channel
	res := Transfer(e, netsim.NewPath(e, f), netsim.NewPath(e, r), cleanCfg(), 500000, nil)
	if res.Bytes != 500000 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
}

func TestSlowStartGrowthRate(t *testing.T) {
	// With delayed ACKs, slow start grows the window ~1.5x per RTT, so a
	// transfer of S bytes over an uncongested path should take roughly
	// log_1.5(S/(IW*MSS)) RTTs plus handshake.
	e := netsim.NewEngine(1)
	fwd, rev := symPath(e, 1e9, 20*ms, 0, 0) // RTT 40ms
	res := Transfer(e, fwd, rev, cleanCfg(), 1<<20, nil)
	rtts := res.Seconds() / 0.040
	// Analytic estimate: sum of IW*1.5^k >= S/MSS -> about 13-17 rounds
	// including handshake and drain.
	if rtts < 8 || rtts > 22 {
		t.Fatalf("transfer took %.1f RTTs, outside slow-start band", rtts)
	}
}

func TestRTTHalvingSpeedsSlowStart(t *testing.T) {
	run := func(oneWay netsim.Time) float64 {
		e := netsim.NewEngine(1)
		fwd, rev := symPath(e, 1e9, oneWay, 0, 0)
		return Transfer(e, fwd, rev, cleanCfg(), 4<<20, nil).Seconds()
	}
	long := run(32 * ms)
	short := run(16 * ms)
	ratio := long / short
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("halving RTT should ~halve slow-start-dominated time; ratio=%v", ratio)
	}
}

func TestFastRetransmitOnLoss(t *testing.T) {
	e := netsim.NewEngine(11)
	fwd, rev := symPath(e, 1e8, 10*ms, 0, 0.002)
	res := Transfer(e, fwd, rev, cleanCfg(), 8<<20, nil)
	if res.Conn.Stats.FastRecoveries == 0 {
		t.Fatal("expected at least one fast recovery")
	}
	// Fast retransmit should handle most losses without RTO at this rate.
	if res.Conn.Stats.Timeouts > res.Conn.Stats.FastRecoveries {
		t.Fatalf("timeouts (%d) dominate fast recoveries (%d)",
			res.Conn.Stats.Timeouts, res.Conn.Stats.FastRecoveries)
	}
}

func TestDropTailQueueLossRecovery(t *testing.T) {
	e := netsim.NewEngine(2)
	// Small router buffer: slow-start overshoot must cause drops, and the
	// transfer must still complete.
	f := netsim.NewLink(e, "fwd", 2e7, 20*ms, 64*1024, 0)
	r := netsim.NewLink(e, "rev", 0, 20*ms, 0, 0)
	res := Transfer(e, netsim.NewPath(e, f), netsim.NewPath(e, r), cleanCfg(), 4<<20, nil)
	if res.Bytes != 4<<20 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
	if f.Stats.QueueDrops == 0 {
		t.Fatal("expected queue drops from slow-start overshoot")
	}
}

func TestThroughputApproachesBottleneck(t *testing.T) {
	e := netsim.NewEngine(1)
	fwd, rev := symPath(e, 1e7, 5*ms, 0, 0) // 10 Mbps bottleneck
	res := Transfer(e, fwd, rev, cleanCfg(), 16<<20, nil)
	mbps := res.Mbps()
	if mbps < 7.5 || mbps > 10.1 {
		t.Fatalf("throughput %.2f Mbps, want near 10", mbps)
	}
}

func TestFlowControlBackpressure(t *testing.T) {
	// A sink that never reads must stall the sender at ~RecvBuf bytes.
	e := netsim.NewEngine(1)
	fwd, rev := symPath(e, 1e9, ms, 0, 0)
	cfg := cleanCfg()
	cfg.RecvBuf = 64 * 1024
	c := Connect(e, fwd, rev, cfg)
	c.OnEstablished(func() { c.AppWrite(1 << 20) })
	e.RunUntil(2 * netsim.Second)
	if c.BytesReceived() > 64*1024 {
		t.Fatalf("receiver buffered %d > RecvBuf", c.BytesReceived())
	}
	if c.BytesReceived() < 32*1024 {
		t.Fatalf("receiver got only %d; window not used", c.BytesReceived())
	}
	// Now drain the sink; the transfer must resume via window updates.
	total := int64(0)
	c.OnDeliver(func() { total += c.AppRead(c.Available()) })
	total += c.AppRead(c.Available())
	e.RunUntil(10 * netsim.Second)
	if got := c.BytesReceived(); got != 1<<20 {
		t.Fatalf("after drain, received %d want %d", got, 1<<20)
	}
}

func TestZeroWindowPersistSurvivesLostUpdate(t *testing.T) {
	// Force a zero-window stall on a path whose reverse direction loses
	// packets; the persist probe must eventually recover the window.
	e := netsim.NewEngine(9)
	f := netsim.NewLink(e, "fwd", 1e9, ms, 0, 0)
	r := netsim.NewLink(e, "rev", 0, ms, 0, 0.3)
	cfg := cleanCfg()
	cfg.RecvBuf = 32 * 1024
	c := Connect(e, netsim.NewPath(e, f), netsim.NewPath(e, r), cfg)
	c.OnEstablished(func() { c.AppWrite(256 * 1024); c.CloseWrite() })
	// Reader that drains in bursts only every 500ms.
	var drain func()
	drain = func() {
		c.AppRead(c.Available())
		if !c.EOF() {
			e.Schedule(500*ms, drain)
		}
	}
	e.Schedule(500*ms, drain)
	e.RunUntil(120 * netsim.Second)
	if !c.EOF() {
		t.Fatalf("stalled: received %d of %d", c.BytesReceived(), 256*1024)
	}
}

func TestEOFOnlyAfterAllDataRead(t *testing.T) {
	e := netsim.NewEngine(1)
	fwd, rev := symPath(e, 1e8, ms, 0, 0)
	c := Connect(e, fwd, rev, cleanCfg())
	c.OnEstablished(func() { c.AppWrite(5000); c.CloseWrite() })
	e.RunUntil(netsim.Second)
	if c.EOF() {
		t.Fatal("EOF before app read")
	}
	if !c.FinReceived() {
		t.Fatal("fin should have arrived")
	}
	if got := c.AppRead(100000); got != 5000 {
		t.Fatalf("read %d", got)
	}
	if !c.EOF() {
		t.Fatal("EOF after full read")
	}
}

func TestDoneFiresWhenAllAcked(t *testing.T) {
	e := netsim.NewEngine(1)
	fwd, rev := symPath(e, 1e8, ms, 0, 0)
	c := Connect(e, fwd, rev, cleanCfg())
	c.OnEstablished(func() { c.AppWrite(5000); c.CloseWrite() })
	c.OnDeliver(func() { c.AppRead(c.Available()) })
	fired := false
	c.OnDone(func() { fired = true })
	e.Run()
	if !fired || !c.Done() {
		t.Fatalf("done=%v fired=%v", c.Done(), fired)
	}
}

func TestSendSpaceBounded(t *testing.T) {
	e := netsim.NewEngine(1)
	fwd, rev := symPath(e, 1e6, 50*ms, 0, 0)
	cfg := cleanCfg()
	cfg.SendBuf = 100 * 1024
	c := Connect(e, fwd, rev, cfg)
	accepted := c.AppWrite(1 << 20)
	if accepted != 100*1024 {
		t.Fatalf("accepted %d, want SendBuf", accepted)
	}
	if c.SendSpace() != 0 {
		t.Fatalf("space=%d", c.SendSpace())
	}
	if c.AppWrite(1) != 0 {
		t.Fatal("write into full buffer should accept 0")
	}
}

func TestWriteAfterCloseRejected(t *testing.T) {
	e := netsim.NewEngine(1)
	fwd, rev := symPath(e, 1e8, ms, 0, 0)
	c := Connect(e, fwd, rev, cleanCfg())
	c.AppWrite(100)
	c.CloseWrite()
	if c.AppWrite(100) != 0 {
		t.Fatal("write after close should be rejected")
	}
}

func TestSequenceMonotoneAndComplete(t *testing.T) {
	e := netsim.NewEngine(13)
	fwd, rev := symPath(e, 5e7, 8*ms, 0, 0.005)
	rec := trace.New("c")
	size := int64(2 << 20)
	res := Transfer(e, fwd, rev, cleanCfg(), size, rec)
	if res.Bytes != size {
		t.Fatalf("bytes=%d", res.Bytes)
	}
	// The trace must cover exactly [0, size+1) (including the fin unit).
	if got := rec.TotalBytes(); got != size+1 {
		t.Fatalf("trace bytes=%d want %d", got, size+1)
	}
	// Retransmit records must match the connection stats.
	if got := rec.Retransmissions(); got != int(res.Conn.Stats.Retransmits) {
		t.Fatalf("trace retx=%d stats=%d", got, res.Conn.Stats.Retransmits)
	}
}

func TestTraceRTTMatchesPath(t *testing.T) {
	e := netsim.NewEngine(1)
	fwd, rev := symPath(e, 1e8, 25*ms, 0, 0)
	rec := trace.New("c")
	Transfer(e, fwd, rev, cleanCfg(), 1<<20, rec)
	rtt := rec.AvgRTTSeconds()
	// RTT must be at least the propagation RTT and not wildly above it
	// (delayed ACKs and queueing add some).
	if rtt < 0.050 || rtt > 0.110 {
		t.Fatalf("avg rtt=%v, want ~0.05-0.11", rtt)
	}
}

func TestDelayedAckReducesAckCount(t *testing.T) {
	run := func(delayed bool) uint64 {
		e := netsim.NewEngine(1)
		fwd, rev := symPath(e, 1e8, 5*ms, 0, 0)
		cfg := cleanCfg()
		cfg.DelayedAcks = delayed
		res := Transfer(e, fwd, rev, cfg, 1<<20, nil)
		return res.Conn.Stats.AcksReceived
	}
	withDel := run(true)
	without := run(false)
	if withDel >= without {
		t.Fatalf("delayed acks should reduce ACK count: %d vs %d", withDel, without)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (float64, uint64) {
		e := netsim.NewEngine(99)
		fwd, rev := symPath(e, 3e7, 15*ms, 128*1024, 0.001)
		res := Transfer(e, fwd, rev, cleanCfg(), 4<<20, nil)
		return res.Seconds(), res.Conn.Stats.Retransmits
	}
	s1, r1 := run()
	s2, r2 := run()
	if s1 != s2 || r1 != r2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", s1, r1, s2, r2)
	}
}

func TestRTOBackoffUnderBlackout(t *testing.T) {
	// 100% forward loss after connection: the sender must back off its RTO
	// exponentially rather than flooding.
	e := netsim.NewEngine(1)
	f := netsim.NewLink(e, "fwd", 1e8, ms, 0, 0)
	r := netsim.NewLink(e, "rev", 0, ms, 0, 0)
	c := Connect(e, netsim.NewPath(e, f), netsim.NewPath(e, r), cleanCfg())
	c.OnEstablished(func() {
		f.LossProb = 1.0 // blackout after handshake
		c.AppWrite(100000)
	})
	e.RunUntil(30 * netsim.Second)
	if c.Stats.Timeouts < 3 {
		t.Fatalf("timeouts=%d, want several", c.Stats.Timeouts)
	}
	if c.Stats.Retransmits > 20 {
		t.Fatalf("retransmits=%d, backoff not applied", c.Stats.Retransmits)
	}
	if c.RTO() <= cleanCfg().MinRTO {
		t.Fatalf("rto=%v did not back off", c.RTO())
	}
}

func TestSynLossEventuallyConnects(t *testing.T) {
	e := netsim.NewEngine(1)
	f := netsim.NewLink(e, "fwd", 1e8, ms, 0, 1.0)
	r := netsim.NewLink(e, "rev", 0, ms, 0, 0)
	c := Connect(e, netsim.NewPath(e, f), netsim.NewPath(e, r), cleanCfg())
	e.Schedule(2500*ms, func() { f.LossProb = 0 }) // network heals
	e.RunUntil(20 * netsim.Second)
	if !c.Established() {
		t.Fatal("connection should establish after SYN retries")
	}
}

func TestCwndNeverExceedsBuffers(t *testing.T) {
	e := netsim.NewEngine(17)
	fwd, rev := symPath(e, 1e9, ms, 0, 0.0005)
	cfg := cleanCfg()
	cfg.SendBuf = 256 * 1024
	c := Connect(e, fwd, rev, cfg)
	c.OnEstablished(func() { c.AppWrite(int64(cfg.SendBuf)) })
	c.OnDeliver(func() { c.AppRead(c.Available()) })
	maxSeen := 0.0
	var tick func()
	tick = func() {
		if c.Cwnd() > maxSeen {
			maxSeen = c.Cwnd()
		}
		if e.Pending() > 0 {
			e.Schedule(10*ms, tick)
		}
	}
	e.Schedule(10*ms, tick)
	e.RunUntil(5 * netsim.Second)
	if maxSeen > float64(cfg.SendBuf)+1 {
		t.Fatalf("cwnd %v exceeded send buffer %d", maxSeen, cfg.SendBuf)
	}
}

func TestRTTEstimatorConverges(t *testing.T) {
	e := netsim.NewEngine(1)
	fwd, rev := symPath(e, 1e8, 30*ms, 0, 0)
	res := Transfer(e, fwd, rev, cleanCfg(), 2<<20, nil)
	srtt := res.Conn.SRTTSeconds()
	if math.Abs(srtt-0.060) > 0.030 {
		t.Fatalf("srtt=%v want ~0.060", srtt)
	}
	if res.Conn.Stats.RTTSamples == 0 {
		t.Fatal("no RTT samples")
	}
}

func TestOOOIntervalMergeExact(t *testing.T) {
	e := netsim.NewEngine(1)
	fwd, rev := symPath(e, 0, 0, 0, 0)
	c := Connect(e, fwd, rev, cleanCfg())
	e.Run()
	// Inject out-of-order segments directly.
	c.segmentArrive(2000, 1000, false)
	c.segmentArrive(4000, 1000, false)
	if c.OOOBytes() != 2000 {
		t.Fatalf("ooo=%d", c.OOOBytes())
	}
	c.segmentArrive(3000, 1000, false) // bridges the two intervals
	if c.OOOBytes() != 3000 {
		t.Fatalf("ooo=%d after bridge", c.OOOBytes())
	}
	c.segmentArrive(0, 2000, false) // fills the head: everything merges
	e.Run()
	if c.RcvNxt() != 5000 || c.OOOBytes() != 0 {
		t.Fatalf("rcvNxt=%d ooo=%d", c.RcvNxt(), c.OOOBytes())
	}
}

func TestOverlappingSegmentsIdempotent(t *testing.T) {
	e := netsim.NewEngine(1)
	fwd, rev := symPath(e, 0, 0, 0, 0)
	c := Connect(e, fwd, rev, cleanCfg())
	e.Run()
	c.segmentArrive(1000, 2000, false)
	c.segmentArrive(1500, 2000, false) // overlaps previous
	if c.OOOBytes() != 2500 {
		t.Fatalf("ooo=%d want 2500", c.OOOBytes())
	}
	c.segmentArrive(0, 1000, false)
	e.Run()
	if c.RcvNxt() != 3500 {
		t.Fatalf("rcvNxt=%d", c.RcvNxt())
	}
}

func TestDuplicateSegmentTriggersAck(t *testing.T) {
	e := netsim.NewEngine(1)
	fwd, rev := symPath(e, 0, 0, 0, 0)
	c := Connect(e, fwd, rev, cleanCfg())
	e.Run()
	c.segmentArrive(0, 1000, false)
	e.Run()
	before := c.Stats.AcksReceived
	c.segmentArrive(0, 1000, false) // pure duplicate
	e.Run()
	if c.Stats.AcksReceived <= before {
		t.Fatal("duplicate segment should elicit an immediate ACK")
	}
}

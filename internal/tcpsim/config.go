// Package tcpsim models a TCP Reno/NewReno connection on top of the
// discrete-event substrate in internal/netsim. It reproduces the
// mechanisms the paper's analysis hinges on:
//
//   - RTT-clocked congestion window growth: slow start doubles (or grows
//     1.5x with delayed ACKs) per round trip, congestion avoidance adds one
//     segment per round trip — so halving the RTT of a hop doubles how fast
//     the window opens and recovers (paper §V, §VI).
//   - Loss response: fast retransmit/fast recovery on triple duplicate
//     ACKs with NewReno partial-ACK handling, and RFC 6298 retransmission
//     timeouts with exponential backoff.
//   - Flow control: the receiver advertises its remaining buffer; a sink
//     application that stops reading (an LSL depot with a full forwarding
//     buffer) throttles the sender — the backpressure that keeps depot
//     buffers "small and short-lived".
//   - Connection setup: a SYN/SYN-ACK round trip precedes data, so the
//     cost of cascaded connection establishment that hurts small LSL
//     transfers (paper Figure 5) is captured.
//
// The model is byte-stream-accurate in sequence space but carries no
// payload bytes: applications write and read counts. That keeps 512 MB
// transfers (Figure 28) cheap to simulate while preserving every timing
// and windowing behavior of interest.
package tcpsim

import "lsl/internal/netsim"

// Config carries the tunables of a simulated connection. The zero value is
// not useful; call DefaultConfig and adjust.
type Config struct {
	// MSS is the maximum segment payload in bytes.
	MSS int
	// HeaderBytes is the TCP/IP header overhead added to each segment and
	// carried by pure ACKs.
	HeaderBytes int
	// SendBuf and RecvBuf are the socket buffer sizes in bytes. The paper's
	// hosts used 8 MB buffers with window scaling.
	SendBuf int
	RecvBuf int
	// InitialCwndSegments is the initial congestion window (RFC 2581-era
	// Linux used 2 segments).
	InitialCwndSegments int
	// InitialSSThresh is the initial slow-start threshold in bytes; zero
	// means "no threshold" (slow start until the first loss). Linux caches
	// ssthresh in the route metrics, so repeated transfers between the
	// same hosts — the paper ran 10-120 iterations per configuration —
	// start with a realistic threshold instead of probing from scratch.
	InitialSSThresh int
	// DelayedAcks enables ACK-every-other-segment with a timeout.
	DelayedAcks bool
	// DelAckTimeout is the delayed-ACK timer (Linux ~40ms minimum).
	DelAckTimeout netsim.Time
	// MinRTO clamps the retransmission timer (Linux uses 200ms).
	MinRTO netsim.Time
	// MaxRTO caps exponential backoff.
	MaxRTO netsim.Time
	// InitialRTO applies before any RTT sample exists (RFC 6298: 1s,
	// classic Linux: 3s for SYN).
	InitialRTO netsim.Time
	// SenderHostDelay, when non-nil, returns an extra processing delay the
	// sending host imposes before each data segment emission. It delays
	// delivery without inflating the connection's trace-measured RTT
	// (emission is recorded after the delay), modeling copy/processing
	// overhead at a depot forwarding onto its downstream sublink.
	SenderHostDelay func() netsim.Time
	// ReceiverHostDelay, when non-nil, returns an extra delay the receiving
	// host imposes before each ACK emission. It inflates the sublink's
	// trace-measured RTT, modeling the loaded depot host behind the
	// paper's Figure 4 (+20 ms "load induced" RTT inflation).
	ReceiverHostDelay func() netsim.Time
	// PersistInterval is the zero-window probe interval.
	PersistInterval netsim.Time
	// DisableSACK turns off selective acknowledgments, falling back to
	// NewReno-only recovery. The paper's Linux 2.4 hosts had SACK enabled
	// by default; disabling it is exposed for the ablation benchmarks
	// (burst loss then costs one round trip per lost segment).
	DisableSACK bool
}

// DefaultConfig mirrors the paper's experimental hosts: Linux 2.4-era TCP
// with large (8 MB) windows, 1460-byte MSS, delayed ACKs.
func DefaultConfig() Config {
	return Config{
		MSS:                 1460,
		HeaderBytes:         40,
		SendBuf:             8 << 20,
		RecvBuf:             8 << 20,
		InitialCwndSegments: 2,
		DelayedAcks:         true,
		DelAckTimeout:       40 * netsim.Millisecond,
		MinRTO:              200 * netsim.Millisecond,
		MaxRTO:              60 * netsim.Second,
		InitialRTO:          1 * netsim.Second,
		PersistInterval:     200 * netsim.Millisecond,
	}
}

// withDefaults fills in zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MSS == 0 {
		c.MSS = d.MSS
	}
	if c.HeaderBytes == 0 {
		c.HeaderBytes = d.HeaderBytes
	}
	if c.SendBuf == 0 {
		c.SendBuf = d.SendBuf
	}
	if c.RecvBuf == 0 {
		c.RecvBuf = d.RecvBuf
	}
	if c.InitialCwndSegments == 0 {
		c.InitialCwndSegments = d.InitialCwndSegments
	}
	if c.DelAckTimeout == 0 {
		c.DelAckTimeout = d.DelAckTimeout
	}
	if c.MinRTO == 0 {
		c.MinRTO = d.MinRTO
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = d.MaxRTO
	}
	if c.InitialRTO == 0 {
		c.InitialRTO = d.InitialRTO
	}
	if c.PersistInterval == 0 {
		c.PersistInterval = d.PersistInterval
	}
	return c
}

// Stats aggregates counters the analysis and tests assert on.
type Stats struct {
	SegmentsSent    uint64
	Retransmits     uint64
	Timeouts        uint64
	FastRecoveries  uint64
	AcksReceived    uint64
	DupAcksReceived uint64
	BytesAcked      int64
	RTTSamples      int
}

package tcpsim

import (
	"math"

	"lsl/internal/netsim"
	"lsl/internal/trace"
)

// Conn is one simulated unidirectional TCP byte stream: a sender endpoint,
// a receiver endpoint, a forward path for data segments and a reverse path
// for ACKs. Both endpoints live in the same struct because the simulation
// is single-threaded; the sender-side API (AppWrite, CloseWrite, ...) is
// used by the source application, the receiver-side API (Available,
// AppRead, ...) by the sink. An LSL depot holds the receiver side of one
// Conn and the sender side of the next.
type Conn struct {
	Name  string
	Trace *trace.Recorder
	Stats Stats

	e   *netsim.Engine
	cfg Config
	fwd *netsim.Path
	rev *netsim.Path

	// --- connection state ---
	established   bool
	synRetries    int
	onEstablished func()

	// --- sender state (all byte offsets are absolute stream offsets) ---
	appWritten int64 // bytes committed by the source application
	appClosed  bool  // CloseWrite called; fin occupies offset appWritten
	sndUna     int64 // oldest unacknowledged offset
	sndNxt     int64 // next offset to transmit
	maxSent    int64 // high-water mark of transmitted offsets (go-back-N marking)
	cwnd       float64
	ssthresh   float64
	rightEdge  int64 // flow-control limit: highest offset receiver permits
	dupAcks    int
	inRecovery bool
	recover    int64
	sacked     []ival // receiver-reported out-of-order intervals (SACK scoreboard)
	retxOut    int64  // retransmitted-and-unacked estimate (FACK pipe term)
	holePtr    int64  // next hole offset to consider retransmitting this recovery

	srtt, rttvar float64 // seconds
	rto          netsim.Time
	hasRTT       bool
	rttTiming    bool
	rttSeq       int64
	rttSentAt    netsim.Time

	timerGen     int
	timerArmed   bool
	persistGen   int
	persistArmed bool
	emitHorizon  netsim.Time // FIFO floor for host-delayed segment emission

	onSendSpace func()
	onDone      func()
	doneFired   bool

	// --- receiver state ---
	rcvNxt         int64
	ooo            []ival // disjoint, sorted out-of-order intervals beyond rcvNxt
	oooBytes       int64
	appRead        int64
	finAt          int64 // offset just past the fin byte; 0 = fin not seen
	delAcks        int
	delAckGen      int
	delArmed       bool
	onDeliver      func()
	eofFired       bool
	ackEmitHorizon netsim.Time // FIFO floor for host-delayed ACK emission
}

type ival struct {
	start int64
	end   int64
}

// Connect creates a connection over fwd (data) / rev (ACKs) and begins the
// SYN handshake immediately. Data written before establishment is buffered
// and flows once the handshake completes (one forward+reverse traversal).
func Connect(e *netsim.Engine, fwd, rev *netsim.Path, cfg Config) *Conn {
	cfg = cfg.withDefaults()
	c := &Conn{
		e:   e,
		cfg: cfg,
		fwd: fwd,
		rev: rev,
		rto: cfg.InitialRTO,
	}
	c.cwnd = float64(cfg.InitialCwndSegments * cfg.MSS)
	if cfg.InitialSSThresh > 0 {
		c.ssthresh = float64(cfg.InitialSSThresh)
	} else {
		c.ssthresh = float64(cfg.RecvBuf) // effectively unbounded until first loss
	}
	c.sendSYN()
	return c
}

// OnEstablished registers fn to run once the handshake completes.
func (c *Conn) OnEstablished(fn func()) {
	if c.established {
		fn()
		return
	}
	prev := c.onEstablished
	c.onEstablished = func() {
		if prev != nil {
			prev()
		}
		fn()
	}
}

// Established reports whether the handshake has completed.
func (c *Conn) Established() bool { return c.established }

// Config returns the connection's effective configuration.
func (c *Conn) Config() Config { return c.cfg }

// Cwnd returns the current congestion window in bytes (for tests and
// instrumentation).
func (c *Conn) Cwnd() float64 { return c.cwnd }

// SRTTSeconds returns the smoothed RTT estimate, 0 before the first sample.
func (c *Conn) SRTTSeconds() float64 { return c.srtt }

// RTO returns the current retransmission timeout.
func (c *Conn) RTO() netsim.Time { return c.rto }

func (c *Conn) sendSYN() {
	gen := c.timerGen
	// SYN consumes no sequence space in this model; establishment delay is
	// one forward + one reverse traversal (SYN, SYN-ACK).
	c.fwd.Send(c.cfg.HeaderBytes, func() {
		// Receiver replies SYN-ACK carrying its initial window.
		wnd := c.advertisedWindow()
		c.rev.Send(c.cfg.HeaderBytes, func() {
			if c.established {
				return
			}
			c.established = true
			c.timerGen++ // cancel SYN retransmission timer
			c.rightEdge = wnd
			if c.onEstablished != nil {
				c.onEstablished()
			}
			c.trySend()
		})
	})
	// SYN retransmission with exponential backoff.
	timeout := c.cfg.InitialRTO << uint(c.synRetries)
	if timeout > c.cfg.MaxRTO {
		timeout = c.cfg.MaxRTO
	}
	c.e.Schedule(timeout, func() {
		if !c.established && gen == c.timerGen {
			c.synRetries++
			c.Stats.Timeouts++
			c.sendSYN()
		}
	})
}

// ---------- sender-side application interface ----------

// AppWrite commits n more bytes to the stream, bounded by available send
// buffer space. It returns the number of bytes accepted.
func (c *Conn) AppWrite(n int64) int64 {
	if c.appClosed || n <= 0 {
		return 0
	}
	space := int64(c.cfg.SendBuf) - (c.appWritten - c.sndUna)
	if space <= 0 {
		return 0
	}
	if n > space {
		n = space
	}
	c.appWritten += n
	c.trySend()
	return n
}

// SendSpace returns the free send-buffer space in bytes.
func (c *Conn) SendSpace() int64 {
	s := int64(c.cfg.SendBuf) - (c.appWritten - c.sndUna)
	if s < 0 {
		return 0
	}
	return s
}

// OnSendSpace registers fn to run whenever acknowledged data frees send
// buffer space.
func (c *Conn) OnSendSpace(fn func()) { c.onSendSpace = fn }

// CloseWrite marks the end of the stream. The fin marker occupies one
// sequence unit after the last data byte, so its delivery (and therefore
// end-of-stream at the receiver) is reliable and ordered.
func (c *Conn) CloseWrite() {
	if c.appClosed {
		return
	}
	c.appClosed = true
	c.trySend()
}

// Done reports whether all written data and the fin marker have been
// acknowledged.
func (c *Conn) Done() bool {
	return c.appClosed && c.sndUna >= c.appWritten+1
}

// OnDone registers fn to run once Done becomes true.
func (c *Conn) OnDone(fn func()) {
	if c.Done() {
		fn()
		return
	}
	prev := c.onDone
	c.onDone = func() {
		if prev != nil {
			prev()
		}
		fn()
	}
}

// sndLimit is the last sendable offset: written data plus the fin marker.
func (c *Conn) sndLimit() int64 {
	if c.appClosed {
		return c.appWritten + 1
	}
	return c.appWritten
}

// trySend transmits as much new data as the congestion and flow-control
// windows permit. During SACK recovery, transmission is pipe-governed and
// prefers filling holes (sendRecovery).
func (c *Conn) trySend() {
	if !c.established {
		return
	}
	if c.inRecovery && !c.cfg.DisableSACK {
		c.sendRecovery()
		return
	}
	for {
		if !c.sendNewSegment(int64(c.cwnd)) {
			return
		}
	}
}

// sendNewSegment transmits one segment of new data if the window wnd (from
// sndUna) and flow control allow, reporting whether it sent anything.
func (c *Conn) sendNewSegment(wnd int64) bool {
	limit := c.sndLimit()
	if c.sndNxt >= limit {
		return false
	}
	if fc := c.rightEdge - c.sndUna; fc < wnd {
		wnd = fc
	}
	usable := c.sndUna + wnd - c.sndNxt
	if usable <= 0 {
		// Window exhausted. If nothing is in flight we are stalled on a
		// zero (or lost) window advertisement: run the persist timer.
		if c.sndNxt == c.sndUna {
			c.armPersist()
		}
		return false
	}
	n := int64(c.cfg.MSS)
	if limit-c.sndNxt < n {
		n = limit - c.sndNxt
	}
	if n > usable {
		n = usable
	}
	if n <= 0 {
		return false
	}
	seq := c.sndNxt
	c.sndNxt += n
	// After a go-back-N rewind, "new" sends below the high-water mark are
	// retransmissions.
	c.sendSegment(seq, int(n), seq+n <= c.maxSent)
	return true
}

// ---------- SACK scoreboard (sender side) ----------

// fack returns the forward-most acknowledged offset: the highest SACKed
// end, or sndUna when nothing is SACKed.
func (c *Conn) fack() int64 {
	if n := len(c.sacked); n > 0 {
		return c.sacked[n-1].end
	}
	return c.sndUna
}

// addSack merges a receiver-reported interval into the scoreboard.
func (c *Conn) addSack(start, end int64) {
	if start < c.sndUna {
		start = c.sndUna
	}
	if end <= start {
		return
	}
	merged := ival{start, end}
	out := c.sacked[:0]
	insertAt := -1
	for _, iv := range c.sacked {
		if iv.end < merged.start || iv.start > merged.end {
			out = append(out, iv)
			continue
		}
		if iv.start < merged.start {
			merged.start = iv.start
		}
		if iv.end > merged.end {
			merged.end = iv.end
		}
	}
	for i, iv := range out {
		if iv.start > merged.start {
			insertAt = i
			break
		}
	}
	if insertAt < 0 {
		c.sacked = append(out, merged)
		return
	}
	out = append(out, ival{})
	copy(out[insertAt+1:], out[insertAt:])
	out[insertAt] = merged
	c.sacked = out
}

// pruneSacked drops scoreboard entries at or below the cumulative ACK.
func (c *Conn) pruneSacked() {
	i := 0
	for i < len(c.sacked) && c.sacked[i].end <= c.sndUna {
		i++
	}
	c.sacked = c.sacked[i:]
	if len(c.sacked) > 0 && c.sacked[0].start < c.sndUna {
		c.sacked[0].start = c.sndUna
	}
}

// nextHole finds the first un-SACKed gap at or beyond holePtr and below
// fack. Each hole is retransmitted at most once per recovery episode
// (holePtr advances past it); a re-lost retransmission is caught by RTO.
func (c *Conn) nextHole() (start, end int64, ok bool) {
	p := c.holePtr
	if p < c.sndUna {
		p = c.sndUna
	}
	f := c.fack()
	for _, iv := range c.sacked {
		if p < iv.start {
			return p, iv.start, true
		}
		if p < iv.end {
			p = iv.end
		}
	}
	if p < f {
		return p, f, true // cannot happen with consistent state, but be safe
	}
	return 0, 0, false
}

// sendRecovery is the FACK-style recovery transmission loop: while the
// estimated pipe is below cwnd, retransmit the next hole below fack, or
// send new data when no holes remain.
func (c *Conn) sendRecovery() {
	for {
		pipe := (c.sndNxt - c.fack()) + c.retxOut
		if pipe >= int64(c.cwnd) {
			return
		}
		if s, e, ok := c.nextHole(); ok {
			n := int64(c.cfg.MSS)
			if e-s < n {
				n = e - s
			}
			c.holePtr = s + n
			c.retxOut += n
			c.sendSegment(s, int(n), true)
			continue
		}
		if !c.sendNewSegment(int64(c.cwnd) + (c.fack() - c.sndUna) - c.retxOut) {
			return
		}
	}
}

// sendSegment emits the segment [seq, seq+n). The fin marker is the final
// sequence unit when the stream is closed; it is header-only on the wire.
func (c *Conn) sendSegment(seq int64, n int, retx bool) {
	kind := trace.Send
	if retx {
		kind = trace.Retx
		c.Stats.Retransmits++
	} else {
		c.Stats.SegmentsSent++
	}
	if end := seq + int64(n); end > c.maxSent {
		c.maxSent = end
	}
	emit := func() {
		now := c.e.Now()
		c.Trace.Add(trace.Record{T: now, Kind: kind, Seq: seq, Len: n})
		if !retx && !c.rttTiming {
			c.rttTiming = true
			c.rttSeq = seq + int64(n)
			c.rttSentAt = now
		}
		payload := n
		if c.appClosed && seq+int64(n) == c.appWritten+1 {
			payload-- // the fin unit carries no wire payload
		}
		fin := c.appClosed && seq+int64(n) == c.appWritten+1
		c.fwd.Send(payload+c.cfg.HeaderBytes, func() {
			c.segmentArrive(seq, int64(n), fin)
		})
		c.armTimer()
	}
	if c.cfg.SenderHostDelay != nil {
		at := c.e.Now() + c.cfg.SenderHostDelay()
		if at < c.emitHorizon { // keep emissions FIFO under random delays
			at = c.emitHorizon
		}
		c.emitHorizon = at
		c.e.At(at, emit)
	} else {
		emit()
	}
}

// ---------- retransmission timer ----------

func (c *Conn) armTimer() {
	if c.timerArmed {
		return
	}
	c.timerArmed = true
	c.timerGen++
	gen := c.timerGen
	c.e.Schedule(c.rto, func() {
		if gen != c.timerGen {
			return
		}
		c.timerArmed = false
		c.onTimeout()
	})
}

func (c *Conn) resetTimer() {
	c.timerGen++ // cancels any pending timer event
	c.timerArmed = false
	if c.sndUna < c.sndNxt {
		c.armTimer()
	}
}

func (c *Conn) onTimeout() {
	if c.sndUna >= c.sndLimit() || c.sndUna >= c.sndNxt {
		return
	}
	c.Stats.Timeouts++
	if debugTimeouts {
		println("TIMEOUT", c.Name, "t(ms)=", int64(c.e.Now().Millis()), "rto(ms)=", int64(c.rto.Millis()),
			"una=", c.sndUna, "nxt=", c.sndNxt, "sacked=", len(c.sacked), "fack=", c.fack(), "rightEdge=", c.rightEdge)
	}
	flight := float64(c.sndNxt - c.sndUna)
	c.ssthresh = math.Max(flight/2, float64(2*c.cfg.MSS))
	c.cwnd = float64(c.cfg.MSS)
	c.inRecovery = false
	c.dupAcks = 0
	c.retxOut = 0
	c.holePtr = c.sndUna
	c.rttTiming = false // Karn: do not time retransmitted data
	c.rto *= 2
	if c.rto > c.cfg.MaxRTO {
		c.rto = c.cfg.MaxRTO
	}
	if c.cfg.DisableSACK {
		// Classic Reno loss behavior: go-back-N. Rewind the send horizon so
		// slow start retransmits the whole outstanding window ACK-clocked;
		// the receiver discards duplicates and cumulative ACKs leap across
		// already-received runs.
		c.sndNxt = c.sndUna
		c.trySend()
		return
	}
	// SACK loss recovery (CA_Loss): retransmit the front hole immediately
	// (guaranteeing the timer re-arms and progress resumes), then repair
	// the remaining holes ACK-clocked via the recovery machinery. Without
	// this, multiple holes above sndUna would each cost one full — and
	// exponentially backed-off — RTO.
	if len(c.sacked) > 0 {
		c.inRecovery = true
		c.recover = c.sndNxt
		c.retxOut = 0
		c.holePtr = c.sndUna
		if s, e, ok := c.nextHole(); ok {
			n := int64(c.cfg.MSS)
			if e-s < n {
				n = e - s
			}
			c.holePtr = s + n
			c.retxOut += n
			c.sendSegment(s, int(n), true)
			return
		}
	}
	c.retransmitFront()
}

// ---------- persist (zero-window probe) timer ----------

func (c *Conn) armPersist() {
	if c.persistArmed {
		return
	}
	c.persistArmed = true
	c.persistGen++
	gen := c.persistGen
	c.e.Schedule(c.cfg.PersistInterval, func() {
		if gen != c.persistGen {
			return
		}
		c.persistArmed = false
		// Still stalled with pending data? Probe: a header-only segment
		// that elicits a fresh ACK carrying the current window.
		if c.established && c.sndNxt == c.sndUna && c.sndNxt < c.sndLimit() &&
			c.rightEdge-c.sndUna <= 0 {
			c.fwd.Send(c.cfg.HeaderBytes, func() {
				c.segmentArrive(c.rcvNxt, 0, false)
			})
			c.armPersist()
		}
	})
}

// ---------- ACK processing (sender side) ----------

func (c *Conn) ackArrive(ack int64, wnd int64, sacks []ival) {
	c.Stats.AcksReceived++
	c.Trace.Add(trace.Record{T: c.e.Now(), Kind: trace.AckRx, Ack: ack})
	if edge := ack + wnd; edge > c.rightEdge {
		c.rightEdge = edge
	}
	if !c.cfg.DisableSACK {
		for _, b := range sacks {
			c.addSack(b.start, b.end)
		}
	}
	switch {
	case ack > c.sndUna:
		c.newAck(ack)
	case ack == c.sndUna && c.sndNxt > c.sndUna:
		c.dupAck()
	default:
		// Pure window update (or stale ACK): just try to send.
	}
	c.trySend()
	if c.Done() && !c.doneFired {
		c.doneFired = true
		if c.onDone != nil {
			c.onDone()
		}
	}
}

func (c *Conn) newAck(ack int64) {
	acked := ack - c.sndUna
	c.Stats.BytesAcked += acked
	mss := float64(c.cfg.MSS)

	// RTT sampling (Karn-compliant: timing flag cleared on retransmit).
	if c.rttTiming && ack >= c.rttSeq {
		sample := (c.e.Now() - c.rttSentAt).Seconds()
		c.rttTiming = false
		c.updateRTT(sample)
	} else if c.hasRTT {
		// Forward progress collapses any exponential RTO backoff back to
		// the estimator-derived value (Linux resets icsk_backoff on new
		// ACKs); without this a backed-off RTO poisons later losses.
		c.refreshRTO()
	}

	if c.inRecovery {
		if ack >= c.recover {
			// Full acknowledgment: leave recovery, deflate to ssthresh.
			c.inRecovery = false
			c.dupAcks = 0
			c.retxOut = 0
			c.cwnd = math.Max(c.ssthresh, mss)
			c.sndUna = ack
			c.pruneSacked()
			c.resetTimer()
			if c.onSendSpace != nil {
				c.onSendSpace()
			}
			return
		}
		// Partial ACK: stay in recovery.
		c.sndUna = ack
		c.pruneSacked()
		if c.retxOut -= acked; c.retxOut < 0 {
			c.retxOut = 0
		}
		if c.holePtr < c.sndUna {
			c.holePtr = c.sndUna
		}
		if !c.cfg.DisableSACK && c.cwnd < c.ssthresh {
			// Slow-start regrowth inside timeout-initiated loss recovery,
			// so multiple holes repair in parallel once ACKs flow again.
			c.cwnd = math.Min(c.cwnd+mss, c.ssthresh)
		}
		if c.cfg.DisableSACK {
			// NewReno: retransmit the next hole, deflate by the amount
			// acked, inflate by one MSS.
			c.cwnd = math.Max(c.cwnd-float64(acked)+mss, mss)
			c.retransmitFront()
		}
		c.resetTimer()
		if c.onSendSpace != nil {
			c.onSendSpace()
		}
		return
	}
	{
		c.dupAcks = 0
		if c.cwnd < c.ssthresh {
			c.cwnd += mss // slow start: one MSS per ACK
		} else {
			c.cwnd += mss * mss / c.cwnd // congestion avoidance
		}
		if max := float64(c.cfg.SendBuf); c.cwnd > max {
			c.cwnd = max
		}
	}
	c.sndUna = ack
	c.pruneSacked()
	if c.holePtr < c.sndUna {
		c.holePtr = c.sndUna
	}
	c.resetTimer()
	if c.onSendSpace != nil {
		c.onSendSpace()
	}
}

func (c *Conn) dupAck() {
	c.Stats.DupAcksReceived++
	if c.inRecovery {
		if c.cfg.DisableSACK {
			c.cwnd += float64(c.cfg.MSS) // Reno inflation
		}
		return
	}
	c.dupAcks++
	// Enter recovery on the classic triple duplicate ACK, or (with SACK)
	// as soon as the scoreboard shows more than a reordering window of
	// data above the hole (FACK threshold).
	if c.dupAcks >= 3 ||
		(!c.cfg.DisableSACK && c.fack()-c.sndUna > int64(3*c.cfg.MSS)) {
		c.fastRetransmit()
	}
}

func (c *Conn) fastRetransmit() {
	c.Stats.FastRecoveries++
	mss := float64(c.cfg.MSS)
	flight := float64(c.sndNxt - c.sndUna)
	c.ssthresh = math.Max(flight/2, 2*mss)
	c.inRecovery = true
	c.recover = c.sndNxt
	c.rttTiming = false
	if c.cfg.DisableSACK {
		// Reno: retransmit the front segment, inflate by the three dups.
		c.cwnd = c.ssthresh + 3*mss
		c.retransmitFront()
	} else {
		// SACK/FACK: pipe-governed hole filling from holePtr.
		c.cwnd = c.ssthresh
		c.retxOut = 0
		c.holePtr = c.sndUna
		c.sendRecovery()
	}
	c.resetTimer()
}

// retransmitFront resends one MSS starting at sndUna.
func (c *Conn) retransmitFront() {
	n := int64(c.cfg.MSS)
	if lim := c.sndLimit(); c.sndUna+n > lim {
		n = lim - c.sndUna
	}
	if n <= 0 {
		return
	}
	c.sendSegment(c.sndUna, int(n), true)
}

func (c *Conn) updateRTT(sample float64) {
	c.Stats.RTTSamples++
	if !c.hasRTT {
		c.hasRTT = true
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		const alpha, beta = 1.0 / 8, 1.0 / 4
		d := math.Abs(c.srtt - sample)
		c.rttvar = (1-beta)*c.rttvar + beta*d
		c.srtt = (1-alpha)*c.srtt + alpha*sample
	}
	c.refreshRTO()
}

// refreshRTO recomputes the timer from the current estimator state,
// clamped to [MinRTO, MaxRTO].
func (c *Conn) refreshRTO() {
	rto := netsim.FromSeconds(c.srtt + 4*c.rttvar)
	if rto < c.cfg.MinRTO {
		rto = c.cfg.MinRTO
	}
	if rto > c.cfg.MaxRTO {
		rto = c.cfg.MaxRTO
	}
	c.rto = rto
}

// debugTimeouts enables timeout tracing on stderr — a diagnostic facility
// for investigating loss-recovery pathologies (see SetDebugTimeouts).
var debugTimeouts = false

// SetDebugTimeouts toggles per-timeout stderr tracing (time, RTO, send
// state, scoreboard size). Diagnostics only; not safe to toggle while a
// simulation runs on another goroutine.
func SetDebugTimeouts(v bool) { debugTimeouts = v }

package tcpsim

// ---------- receiver-side application interface ----------

// Available returns the number of in-order data bytes the sink application
// has not yet consumed.
func (c *Conn) Available() int64 {
	return c.dataEnd() - c.appRead
}

// dataEnd is the highest contiguous data offset received, excluding the
// fin marker's sequence unit.
func (c *Conn) dataEnd() int64 {
	if c.finAt > 0 && c.rcvNxt >= c.finAt {
		return c.finAt - 1
	}
	return c.rcvNxt
}

// AppRead consumes up to n in-order bytes, returning the number consumed.
// Freeing receive buffer space may trigger a window-update ACK so a sender
// stalled on a zero window resumes promptly.
func (c *Conn) AppRead(n int64) int64 {
	if n <= 0 {
		return 0
	}
	avail := c.Available()
	if avail <= 0 {
		return 0
	}
	if n > avail {
		n = avail
	}
	wasZero := c.advertisedWindow() == 0
	c.appRead += n
	if wasZero && c.advertisedWindow() > 0 {
		c.emitAck() // window update
	}
	return n
}

// OnDeliver registers fn to run whenever new in-order data (or the end of
// stream) becomes visible to the sink application.
func (c *Conn) OnDeliver(fn func()) { c.onDeliver = fn }

// EOF reports whether the whole stream (data + fin) has arrived and all
// data has been consumed by the sink application.
func (c *Conn) EOF() bool {
	return c.finAt > 0 && c.rcvNxt >= c.finAt && c.appRead >= c.finAt-1
}

// FinReceived reports whether the fin marker has arrived in order (the
// stream length is known and fully received).
func (c *Conn) FinReceived() bool {
	return c.finAt > 0 && c.rcvNxt >= c.finAt
}

// BytesReceived returns the total in-order data bytes received so far.
func (c *Conn) BytesReceived() int64 { return c.dataEnd() }

// advertisedWindow is the receive buffer space not occupied by undelivered
// in-order or out-of-order data.
func (c *Conn) advertisedWindow() int64 {
	used := (c.dataEnd() - c.appRead) + c.oooBytes
	w := int64(c.cfg.RecvBuf) - used
	if w < 0 {
		return 0
	}
	return w
}

// ---------- segment arrival ----------

// segmentArrive processes the segment [seq, seq+n) at the receiver. n==0
// is a window probe and elicits an immediate ACK.
func (c *Conn) segmentArrive(seq, n int64, fin bool) {
	if n == 0 {
		c.emitAck()
		return
	}
	if fin {
		c.finAt = seq + n
	}
	end := seq + n
	switch {
	case end <= c.rcvNxt:
		// Entirely duplicate data: immediate ACK so the sender's dupack
		// machinery sees it.
		c.emitAck()
		return
	case seq <= c.rcvNxt:
		// In-order (possibly with a duplicate prefix).
		c.rcvNxt = end
		c.mergeOOO()
		c.deliver()
		c.ackInOrder()
	default:
		// Out of order: buffer the interval, send an immediate duplicate ACK.
		c.insertOOO(seq, end)
		c.emitAck()
	}
}

// deliver notifies the sink application of newly visible data or EOF.
func (c *Conn) deliver() {
	if c.onDeliver != nil {
		c.onDeliver()
	}
}

// ackInOrder implements delayed ACKs: every second in-order segment (or the
// delayed-ACK timer, or stream end) forces an ACK.
func (c *Conn) ackInOrder() {
	c.delAcks++
	if !c.cfg.DelayedAcks || c.delAcks >= 2 || c.FinReceived() {
		c.emitAck()
		return
	}
	if !c.delArmed {
		c.delArmed = true
		c.delAckGen++
		gen := c.delAckGen
		c.e.Schedule(c.cfg.DelAckTimeout, func() {
			if gen != c.delAckGen {
				return
			}
			c.delArmed = false
			if c.delAcks > 0 {
				c.emitAck()
			}
		})
	}
}

// emitAck sends a cumulative ACK carrying the current window, after any
// configured receiver host delay (the loaded-depot model of Figure 4).
func (c *Conn) emitAck() {
	c.delAcks = 0
	c.delAckGen++ // cancel pending delayed-ack timer
	c.delArmed = false
	ack := c.rcvNxt
	wnd := c.advertisedWindow()
	// SACK option: up to three blocks. Send the earliest intervals (they
	// describe the oldest holes) plus the highest one so the sender's
	// forward-most-acknowledged point is accurate.
	var sacks []ival
	if !c.cfg.DisableSACK && len(c.ooo) > 0 {
		n := len(c.ooo)
		if n <= 3 {
			sacks = append(sacks, c.ooo...)
		} else {
			sacks = append(sacks, c.ooo[0], c.ooo[1], c.ooo[n-1])
		}
	}
	send := func() {
		c.rev.Send(c.cfg.HeaderBytes, func() {
			c.ackArrive(ack, wnd, sacks)
		})
	}
	if c.cfg.ReceiverHostDelay != nil {
		at := c.e.Now() + c.cfg.ReceiverHostDelay()
		if at < c.ackEmitHorizon { // keep ACKs FIFO under random delays
			at = c.ackEmitHorizon
		}
		c.ackEmitHorizon = at
		c.e.At(at, send)
	} else {
		send()
	}
}

// ---------- out-of-order interval bookkeeping ----------

// insertOOO records [start, end) as received out of order, merging with
// existing intervals and clipping against already-delivered data.
func (c *Conn) insertOOO(start, end int64) {
	if start < c.rcvNxt {
		start = c.rcvNxt
	}
	if end <= start {
		return
	}
	merged := ival{start, end}
	out := c.ooo[:0]
	for _, iv := range c.ooo {
		if iv.end < merged.start || iv.start > merged.end {
			out = append(out, iv)
			continue
		}
		if iv.start < merged.start {
			merged.start = iv.start
		}
		if iv.end > merged.end {
			merged.end = iv.end
		}
	}
	// Insert keeping the slice sorted by start.
	pos := len(out)
	for i, iv := range out {
		if iv.start > merged.start {
			pos = i
			break
		}
	}
	out = append(out, ival{})
	copy(out[pos+1:], out[pos:])
	out[pos] = merged
	c.ooo = out
	c.recountOOO()
}

// mergeOOO absorbs intervals now contiguous with rcvNxt.
func (c *Conn) mergeOOO() {
	for len(c.ooo) > 0 {
		iv := c.ooo[0]
		if iv.start > c.rcvNxt {
			break
		}
		if iv.end > c.rcvNxt {
			c.rcvNxt = iv.end
		}
		c.ooo = c.ooo[1:]
	}
	c.recountOOO()
}

func (c *Conn) recountOOO() {
	var total int64
	for _, iv := range c.ooo {
		total += iv.end - iv.start
	}
	c.oooBytes = total
}

// OOOBytes returns the bytes currently buffered out of order (for tests).
func (c *Conn) OOOBytes() int64 { return c.oooBytes }

// RcvNxt returns the receiver's next expected offset (for tests).
func (c *Conn) RcvNxt() int64 { return c.rcvNxt }

package lslsim

import (
	"fmt"

	"lsl/internal/netsim"
	"lsl/internal/tcpsim"
	"lsl/internal/trace"
)

// RunCascade executes one synchronous LSL session transferring size payload
// bytes across the given hops (1 hop = no depots, N hops = N-1 depots),
// driving the engine until the sink has consumed the entire stream. The
// returned Result carries per-sublink traces (named "sublink1", ...) for
// the paper's sequence-growth analysis.
func RunCascade(e *netsim.Engine, hops []Hop, sess SessionConfig, size int64) Result {
	if len(hops) == 0 {
		panic("lslsim: cascade needs at least one hop")
	}
	sess = sess.withDefaults()
	start := e.Now()
	n := len(hops)

	res := Result{
		Start:  start,
		Conns:  make([]*tcpsim.Conn, n),
		Traces: make([]*trace.Recorder, n),
		Depots: make([]*Depot, 0, n-1),
	}

	// ---- sink (receiver side of the last hop) ----
	sinkHeader := sess.HeaderBytes
	expected := size + sess.TrailerBytes
	var sinkRead int64
	finished := false
	sourceStart := func() {} // replaced below; invoked on session accept

	sinkDeliver := func(c *tcpsim.Conn) {
		for sinkHeader > 0 {
			got := c.AppRead(sinkHeader)
			if got == 0 {
				return
			}
			sinkHeader -= got
			if sinkHeader == 0 && sess.ConfirmedSetup {
				// Session accept: control message returning to the source
				// across every sublink's reverse direction.
				var back netsim.Time
				for _, h := range hops {
					back += h.Rev.PropDelay()
				}
				at := e.Now() + back
				e.At(at, func() {
					res.AcceptAt = at
					sourceStart()
				})
			}
		}
		sinkRead += c.AppRead(expected - sinkRead)
		if !finished && sinkRead == expected && c.FinReceived() {
			finished = true
			res.Done = e.Now()
		}
	}

	// ---- per-hop connection construction, serialized via depots ----
	var buildHop func(i int) *tcpsim.Conn
	buildHop = func(i int) *tcpsim.Conn {
		rec := trace.New(fmt.Sprintf("sublink%d", i+1))
		c := tcpsim.Connect(e, hops[i].Fwd, hops[i].Rev, hops[i].TCP)
		c.Name = rec.Name
		c.Trace = rec
		res.Conns[i] = c
		res.Traces[i] = rec
		if i == n-1 {
			c.OnDeliver(func() { sinkDeliver(c) })
		}
		return c
	}

	// Depots between hop i and hop i+1, created as headers arrive.
	var makeDepot func(i int, in *tcpsim.Conn) *Depot
	makeDepot = func(i int, in *tcpsim.Conn) *Depot {
		d := &Depot{
			Name:          fmt.Sprintf("depot%d", i+1),
			e:             e,
			cfg:           sess.Depot,
			sess:          sess,
			in:            in,
			headerPending: sess.HeaderBytes,
			headerToSend:  sess.HeaderBytes,
		}
		d.dialNext = func() {
			out := buildHop(i + 1)
			d.out = out
			out.OnEstablished(func() { d.flush() })
			out.OnSendSpace(func() { d.flush() })
			if i+1 < n-1 {
				nd := makeDepot(i+1, out)
				out.OnDeliver(func() { nd.pump() })
			}
		}
		in.OnDeliver(func() { d.pump() })
		res.Depots = append(res.Depots, d)
		return d
	}

	// ---- source ----
	first := buildHop(0)
	if n > 1 {
		makeDepot(0, first)
	} else {
		sinkHeader = sess.HeaderBytes // header still flows end to end
	}

	var pushedHeader, pushedPayload int64
	payloadAllowed := !sess.ConfirmedSetup
	push := func() {
		if !first.Established() {
			return
		}
		for pushedHeader < sess.HeaderBytes {
			got := first.AppWrite(sess.HeaderBytes - pushedHeader)
			if got == 0 {
				return
			}
			pushedHeader += got
		}
		if !payloadAllowed {
			return
		}
		for pushedPayload < expected {
			got := first.AppWrite(expected - pushedPayload)
			if got == 0 {
				return
			}
			pushedPayload += got
		}
		first.CloseWrite()
	}
	sourceStart = func() {
		payloadAllowed = true
		push()
	}
	first.OnEstablished(push)
	first.OnSendSpace(push)

	e.RunWhile(func() bool { return !finished })

	res.Bytes = size
	if !finished {
		res.Bytes = sinkRead // deadlock diagnostics: short count, Done zero
	}
	return res
}

// RunDirect executes a plain end-to-end TCP transfer (the paper's baseline)
// of size bytes over fwd/rev and returns the same Result shape, with a
// single trace named "direct".
func RunDirect(e *netsim.Engine, fwd, rev *netsim.Path, cfg tcpsim.Config, size int64) Result {
	rec := trace.New("direct")
	tr := tcpsim.Transfer(e, fwd, rev, cfg, size, rec)
	return Result{
		Bytes:  tr.Bytes,
		Start:  tr.Start,
		Done:   tr.Done,
		Conns:  []*tcpsim.Conn{tr.Conn},
		Traces: []*trace.Recorder{rec},
	}
}

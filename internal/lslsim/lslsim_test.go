package lslsim

import (
	"testing"

	"lsl/internal/netsim"
	"lsl/internal/tcpsim"
)

const ms = netsim.Millisecond

// twoHopTopo builds a symmetric two-hop cascade topology and the matching
// direct end-to-end paths over the same links.
type topo struct {
	e *netsim.Engine
	// backbone links shared by direct path and sublinks
	b1f, b1r, b2f, b2r   *netsim.Link
	directFwd, directRev *netsim.Path
	hop1, hop2           Hop
}

func makeTopo(seed int64, rate float64, d1, d2 netsim.Time, loss float64) *topo {
	e := netsim.NewEngine(seed)
	t := &topo{e: e}
	t.b1f = netsim.NewLink(e, "b1f", rate, d1, 256<<10, loss)
	t.b1r = netsim.NewLink(e, "b1r", 0, d1, 0, 0)
	t.b2f = netsim.NewLink(e, "b2f", rate, d2, 256<<10, loss)
	t.b2r = netsim.NewLink(e, "b2r", 0, d2, 0, 0)
	t.directFwd = netsim.NewPath(e, t.b1f, t.b2f)
	t.directRev = netsim.NewPath(e, t.b2r, t.b1r)
	cfg := tcpsim.DefaultConfig()
	t.hop1 = Hop{Name: "sub1", Fwd: netsim.NewPath(e, t.b1f), Rev: netsim.NewPath(e, t.b1r), TCP: cfg}
	t.hop2 = Hop{Name: "sub2", Fwd: netsim.NewPath(e, t.b2f), Rev: netsim.NewPath(e, t.b2r), TCP: cfg}
	return t
}

func TestCascadeDeliversExactPayload(t *testing.T) {
	tp := makeTopo(1, 5e7, 10*ms, 12*ms, 0)
	res := RunCascade(tp.e, []Hop{tp.hop1, tp.hop2}, DefaultSessionConfig(), 1<<20)
	if res.Bytes != 1<<20 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
	if res.Done <= res.Start {
		t.Fatal("no completion time")
	}
}

func TestCascadeConservation(t *testing.T) {
	tp := makeTopo(2, 5e7, 10*ms, 12*ms, 0.001)
	size := int64(4 << 20)
	sess := DefaultSessionConfig()
	res := RunCascade(tp.e, []Hop{tp.hop1, tp.hop2}, sess, size)
	if len(res.Depots) != 1 {
		t.Fatalf("depots=%d", len(res.Depots))
	}
	d := res.Depots[0]
	want := size + sess.TrailerBytes
	if d.BytesIn != want || d.BytesOut != want {
		t.Fatalf("conservation violated: in=%d out=%d want %d", d.BytesIn, d.BytesOut, want)
	}
	if d.Buffered() != 0 {
		t.Fatalf("depot retains %d bytes after completion", d.Buffered())
	}
}

func TestCascadeDepotBufferBounded(t *testing.T) {
	tp := makeTopo(3, 5e7, 5*ms, 5*ms, 0)
	sess := DefaultSessionConfig()
	sess.Depot.BufferCap = 256 << 10
	res := RunCascade(tp.e, []Hop{tp.hop1, tp.hop2}, sess, 8<<20)
	if res.Bytes != 8<<20 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
	if res.Depots[0].MaxBuffered > 256<<10 {
		t.Fatalf("buffer exceeded cap: %d", res.Depots[0].MaxBuffered)
	}
}

// The depot buffer must throttle a fast first hop feeding a slow second
// hop via TCP flow control, not grow without bound.
func TestCascadeBackpressureFastIntoSlow(t *testing.T) {
	e := netsim.NewEngine(4)
	cfg := tcpsim.DefaultConfig()
	f1 := netsim.NewLink(e, "f1", 1e9, 2*ms, 0, 0) // 1 Gbps feeder
	r1 := netsim.NewLink(e, "r1", 0, 2*ms, 0, 0)
	f2 := netsim.NewLink(e, "f2", 5e6, 2*ms, 0, 0) // 5 Mbps drain
	r2 := netsim.NewLink(e, "r2", 0, 2*ms, 0, 0)
	hops := []Hop{
		{Fwd: netsim.NewPath(e, f1), Rev: netsim.NewPath(e, r1), TCP: cfg},
		{Fwd: netsim.NewPath(e, f2), Rev: netsim.NewPath(e, r2), TCP: cfg},
	}
	sess := DefaultSessionConfig()
	sess.Depot.BufferCap = 512 << 10
	res := RunCascade(e, hops, sess, 4<<20)
	if res.Bytes != 4<<20 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
	if res.Depots[0].MaxBuffered > 512<<10 {
		t.Fatalf("backpressure failed: max buffered %d", res.Depots[0].MaxBuffered)
	}
	// Throughput must be set by the slow hop.
	if got := res.Mbps(); got > 5.1 {
		t.Fatalf("throughput %v above drain rate", got)
	}
}

func TestThreeDepotCascade(t *testing.T) {
	e := netsim.NewEngine(5)
	cfg := tcpsim.DefaultConfig()
	var hops []Hop
	for i := 0; i < 4; i++ {
		f := netsim.NewLink(e, "f", 1e8, 5*ms, 0, 0)
		r := netsim.NewLink(e, "r", 0, 5*ms, 0, 0)
		hops = append(hops, Hop{Fwd: netsim.NewPath(e, f), Rev: netsim.NewPath(e, r), TCP: cfg})
	}
	res := RunCascade(e, hops, DefaultSessionConfig(), 2<<20)
	if res.Bytes != 2<<20 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
	if len(res.Depots) != 3 {
		t.Fatalf("depots=%d", len(res.Depots))
	}
	for _, d := range res.Depots {
		if d.BytesIn != d.BytesOut {
			t.Fatalf("%s: in=%d out=%d", d.Name, d.BytesIn, d.BytesOut)
		}
	}
}

func TestSingleHopSession(t *testing.T) {
	e := netsim.NewEngine(6)
	cfg := tcpsim.DefaultConfig()
	f := netsim.NewLink(e, "f", 1e8, 5*ms, 0, 0)
	r := netsim.NewLink(e, "r", 0, 5*ms, 0, 0)
	hop := Hop{Fwd: netsim.NewPath(e, f), Rev: netsim.NewPath(e, r), TCP: cfg}
	res := RunCascade(e, []Hop{hop}, DefaultSessionConfig(), 100000)
	if res.Bytes != 100000 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
	if len(res.Depots) != 0 {
		t.Fatal("single hop should have no depot")
	}
}

func TestConfirmedSetupSlowerThanEagerSmall(t *testing.T) {
	run := func(confirmed bool) float64 {
		tp := makeTopo(7, 1e8, 15*ms, 15*ms, 0)
		sess := DefaultSessionConfig()
		sess.ConfirmedSetup = confirmed
		return RunCascade(tp.e, []Hop{tp.hop1, tp.hop2}, sess, 32<<10).Seconds()
	}
	c := run(true)
	eager := run(false)
	if eager >= c {
		t.Fatalf("eager (%v) should beat confirmed (%v) on small transfers", eager, c)
	}
}

func TestAcceptRecorded(t *testing.T) {
	tp := makeTopo(8, 1e8, 10*ms, 10*ms, 0)
	res := RunCascade(tp.e, []Hop{tp.hop1, tp.hop2}, DefaultSessionConfig(), 1000)
	if res.AcceptAt <= res.Start {
		t.Fatal("accept time not recorded")
	}
	// Accept needs two serialized handshake+header exchanges (1.5 RTT per
	// 20ms-RTT hop) plus the half-RTT-per-hop return: >= ~80ms.
	if (res.AcceptAt - res.Start) < 75*ms {
		t.Fatalf("accept too early: %v", res.AcceptAt-res.Start)
	}
}

func TestCascadeWithLossCompletes(t *testing.T) {
	tp := makeTopo(9, 3e7, 15*ms, 17*ms, 0.003)
	res := RunCascade(tp.e, []Hop{tp.hop1, tp.hop2}, DefaultSessionConfig(), 4<<20)
	if res.Bytes != 4<<20 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
	retx := res.Conns[0].Stats.Retransmits + res.Conns[1].Stats.Retransmits
	if retx == 0 {
		t.Fatal("expected some retransmissions")
	}
}

func TestSublinkTracesRecorded(t *testing.T) {
	tp := makeTopo(10, 5e7, 10*ms, 10*ms, 0)
	sess := DefaultSessionConfig()
	size := int64(1 << 20)
	res := RunCascade(tp.e, []Hop{tp.hop1, tp.hop2}, sess, size)
	if len(res.Traces) != 2 {
		t.Fatalf("traces=%d", len(res.Traces))
	}
	want := sess.HeaderBytes + size + sess.TrailerBytes + 1 // +1 fin unit
	for i, tr := range res.Traces {
		if got := tr.TotalBytes(); got != want {
			t.Fatalf("sublink%d trace bytes=%d want %d", i+1, got, want)
		}
	}
	// Sublink 2 must start after sublink 1 (serialized setup).
	s1 := res.Traces[0].SeqSeriesAt(res.Start)
	s2 := res.Traces[1].SeqSeriesAt(res.Start)
	if s2[0].X <= s1[0].X {
		t.Fatalf("sublink2 started at %v, before sublink1 %v", s2[0].X, s1[0].X)
	}
}

// The headline mechanism: on a lossy long-RTT path, the cascade beats the
// direct connection for large transfers (paper Figures 6/8/28)...
func TestCascadeBeatsDirectLargeTransfer(t *testing.T) {
	direct := func() float64 {
		tp := makeTopo(11, 3e7, 16*ms, 16*ms, 5e-4)
		res := RunDirect(tp.e, tp.directFwd, tp.directRev, tcpsim.DefaultConfig(), 16<<20)
		return res.Mbps()
	}()
	lsl := func() float64 {
		tp := makeTopo(11, 3e7, 16*ms, 16*ms, 5e-4)
		res := RunCascade(tp.e, []Hop{tp.hop1, tp.hop2}, DefaultSessionConfig(), 16<<20)
		return res.Mbps()
	}()
	if lsl <= direct {
		t.Fatalf("LSL (%v Mbps) should beat direct (%v Mbps)", lsl, direct)
	}
}

// ...and loses for tiny transfers because of serialized connection setup
// (paper Figure 5's 32K point).
func TestCascadeLosesTinyTransfer(t *testing.T) {
	direct := func() float64 {
		tp := makeTopo(12, 3e7, 16*ms, 16*ms, 0)
		return RunDirect(tp.e, tp.directFwd, tp.directRev, tcpsim.DefaultConfig(), 16<<10).Seconds()
	}()
	lsl := func() float64 {
		tp := makeTopo(12, 3e7, 16*ms, 16*ms, 0)
		return RunCascade(tp.e, []Hop{tp.hop1, tp.hop2}, DefaultSessionConfig(), 16<<10).Seconds()
	}()
	if lsl <= direct {
		t.Fatalf("tiny transfer: LSL (%v s) should be slower than direct (%v s)", lsl, direct)
	}
}

func TestDeterministicCascade(t *testing.T) {
	run := func() float64 {
		tp := makeTopo(13, 3e7, 15*ms, 15*ms, 0.001)
		return RunCascade(tp.e, []Hop{tp.hop1, tp.hop2}, DefaultSessionConfig(), 2<<20).Seconds()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestDepotChunkGranularity(t *testing.T) {
	tp := makeTopo(14, 5e7, 5*ms, 5*ms, 0)
	sess := DefaultSessionConfig()
	sess.Depot.ChunkSize = 8 << 10
	res := RunCascade(tp.e, []Hop{tp.hop1, tp.hop2}, sess, 1<<20)
	if res.Bytes != 1<<20 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
}

func TestEagerModeDeliversExactly(t *testing.T) {
	tp := makeTopo(21, 5e7, 10*ms, 10*ms, 0.001)
	sess := DefaultSessionConfig()
	sess.ConfirmedSetup = false
	res := RunCascade(tp.e, []Hop{tp.hop1, tp.hop2}, sess, 2<<20)
	if res.Bytes != 2<<20 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
	if res.AcceptAt != 0 {
		t.Fatal("eager mode should not record an accept")
	}
	d := res.Depots[0]
	if d.BytesIn != d.BytesOut {
		t.Fatalf("conservation: %d vs %d", d.BytesIn, d.BytesOut)
	}
}

func TestDepotForwardDelaySlowsSmallTransfers(t *testing.T) {
	run := func(delay netsim.Time) float64 {
		tp := makeTopo(22, 1e8, 10*ms, 10*ms, 0)
		sess := DefaultSessionConfig()
		sess.Depot.ForwardDelay = func() netsim.Time { return delay }
		return RunCascade(tp.e, []Hop{tp.hop1, tp.hop2}, sess, 128<<10).Seconds()
	}
	fast := run(100 * netsim.Microsecond)
	slow := run(20 * ms)
	if slow <= fast {
		t.Fatalf("forward delay should cost time: %v vs %v", slow, fast)
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{Bytes: 1 << 20, Start: 0, Done: netsim.Second}
	if r.Seconds() != 1 {
		t.Fatalf("seconds=%v", r.Seconds())
	}
	if mbps := r.Mbps(); mbps < 8.38 || mbps > 8.39 {
		t.Fatalf("mbps=%v", mbps)
	}
	empty := Result{}
	if empty.Mbps() != 0 {
		t.Fatal("degenerate result should be 0")
	}
}

func TestCascadeSmallEndBuffersStillComplete(t *testing.T) {
	// The paper notes gains are larger with limited end-host buffers; at
	// minimum the cascade must function with tiny windows.
	e := netsim.NewEngine(23)
	cfg := tcpsim.DefaultConfig()
	cfg.SendBuf = 32 << 10
	cfg.RecvBuf = 32 << 10
	f1 := netsim.NewLink(e, "f1", 1e8, 10*ms, 0, 0)
	r1 := netsim.NewLink(e, "r1", 0, 10*ms, 0, 0)
	f2 := netsim.NewLink(e, "f2", 1e8, 10*ms, 0, 0)
	r2 := netsim.NewLink(e, "r2", 0, 10*ms, 0, 0)
	hops := []Hop{
		{Fwd: netsim.NewPath(e, f1), Rev: netsim.NewPath(e, r1), TCP: cfg},
		{Fwd: netsim.NewPath(e, f2), Rev: netsim.NewPath(e, r2), TCP: cfg},
	}
	res := RunCascade(e, hops, DefaultSessionConfig(), 1<<20)
	if res.Bytes != 1<<20 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
}

// The paper's §IV-A remark quantified: with small end-host buffers the
// direct connection is BDP-starved while each (shorter) sublink needs only
// half the window, so LSL's advantage grows.
func TestSmallBuffersAmplifyLSLGain(t *testing.T) {
	run := func(buf int) (direct, cascade float64) {
		tp := makeTopo(24, 1e8, 20*ms, 20*ms, 0)
		cfg := tcpsim.DefaultConfig()
		cfg.SendBuf, cfg.RecvBuf = buf, buf
		dres := RunDirect(tp.e, tp.directFwd, tp.directRev, cfg, 8<<20)

		tp2 := makeTopo(24, 1e8, 20*ms, 20*ms, 0)
		h1, h2 := tp2.hop1, tp2.hop2
		h1.TCP, h2.TCP = cfg, cfg
		lres := RunCascade(tp2.e, []Hop{h1, h2}, DefaultSessionConfig(), 8<<20)
		return dres.Mbps(), lres.Mbps()
	}
	dSmall, lSmall := run(128 << 10)
	dBig, lBig := run(8 << 20)
	gainSmall := lSmall / dSmall
	gainBig := lBig / dBig
	if gainSmall <= gainBig {
		t.Fatalf("small-buffer gain (%.2f) should exceed big-buffer gain (%.2f)", gainSmall, gainBig)
	}
	// With 128K windows over a 40ms+40ms path, direct is window-limited to
	// ~128K/80ms ≈ 13 Mbit/s while each sublink sustains ~26.
	if dSmall > 15 {
		t.Fatalf("direct with small buffers should be window-limited, got %.1f", dSmall)
	}
}

// Package lslsim models a Logistical Session Layer session over the
// simulated TCP of internal/tcpsim: a source, a sink, and zero or more
// intermediate depots, each coupling the receiver side of one TCP
// connection to the sender side of the next through a small bounded
// forwarding buffer (the paper's "small, short-lived intermediate
// buffers").
//
// The protocol costs the paper identifies are modeled explicitly:
//
//   - serialized connection establishment: the initiator dials depot 1;
//     only after the session header arrives does depot 1 dial the next
//     hop, and so on (why small transfers lose, Figure 5);
//   - a session header consuming real bytes on every sublink, and an MD5
//     trailer between the end systems;
//   - per-chunk depot forwarding latency (the "additional transport level
//     processing and buffer-copying overhead at each depot");
//   - bounded depot buffers imposing backpressure through ordinary TCP
//     flow control, which keeps the cascade "TCP friendly";
//   - optionally a confirmed end-to-end session accept before payload
//     flows (the synchronous connection case of §IV).
package lslsim

import (
	"lsl/internal/netsim"
	"lsl/internal/tcpsim"
	"lsl/internal/trace"
)

// DepotConfig tunes one depot's forwarding engine.
type DepotConfig struct {
	// BufferCap bounds the bytes a depot holds for a session (default 4 MB).
	BufferCap int64
	// ChunkSize is the read/forward granularity (default 64 KB).
	ChunkSize int64
	// ForwardDelay returns the per-chunk processing latency (buffer copy,
	// context switches). Nil means 200µs per chunk.
	ForwardDelay func() netsim.Time
	// SetupDelay is the per-session initialization cost before the depot
	// dials the next hop (buffer allocation, route parsing).
	SetupDelay netsim.Time
}

func (d DepotConfig) withDefaults() DepotConfig {
	if d.BufferCap == 0 {
		d.BufferCap = 4 << 20
	}
	if d.ChunkSize == 0 {
		d.ChunkSize = 64 << 10
	}
	if d.ForwardDelay == nil {
		d.ForwardDelay = func() netsim.Time { return 200 * netsim.Microsecond }
	}
	if d.SetupDelay == 0 {
		d.SetupDelay = 1 * netsim.Millisecond
	}
	return d
}

// Hop describes one sublink of the cascade: the network paths and the TCP
// configuration of the connection that will run over them.
type Hop struct {
	Name string
	Fwd  *netsim.Path
	Rev  *netsim.Path
	TCP  tcpsim.Config
}

// SessionConfig tunes the session-layer protocol behavior.
type SessionConfig struct {
	// HeaderBytes is the LSL session header size sent at the front of
	// every sublink stream (default 64: magic, version, session ID, route).
	HeaderBytes int64
	// TrailerBytes is the end-to-end integrity trailer (default 16: MD5).
	TrailerBytes int64
	// ConfirmedSetup makes the source wait for an end-to-end session
	// accept before sending payload (default behavior of the prototype's
	// synchronous mode). When false the source streams eagerly and depot
	// buffers absorb data while the tail of the cascade is still dialing.
	ConfirmedSetup bool
	// Depot configures every intermediate depot.
	Depot DepotConfig
}

// DefaultSessionConfig returns the prototype's synchronous-session settings.
func DefaultSessionConfig() SessionConfig {
	return SessionConfig{
		HeaderBytes:    64,
		TrailerBytes:   16,
		ConfirmedSetup: true,
		Depot:          DepotConfig{}.withDefaults(),
	}
}

func (s SessionConfig) withDefaults() SessionConfig {
	if s.HeaderBytes == 0 {
		s.HeaderBytes = 64
	}
	if s.TrailerBytes == 0 {
		s.TrailerBytes = 16
	}
	s.Depot = s.Depot.withDefaults()
	return s
}

// Result summarizes one cascaded transfer.
type Result struct {
	Bytes  int64
	Start  netsim.Time
	Done   netsim.Time
	Conns  []*tcpsim.Conn
	Traces []*trace.Recorder
	Depots []*Depot
	// AcceptAt is when the end-to-end session accept reached the source
	// (zero when ConfirmedSetup is off).
	AcceptAt netsim.Time
}

// Seconds returns the wall-clock duration, session initiation to sink EOF.
func (r Result) Seconds() float64 { return (r.Done - r.Start).Seconds() }

// Mbps returns payload goodput in megabits per second.
func (r Result) Mbps() float64 {
	s := r.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / s / 1e6
}

// Depot is the simulated forwarding engine between two sublinks.
type Depot struct {
	Name string

	e    *netsim.Engine
	cfg  DepotConfig
	sess SessionConfig
	in   *tcpsim.Conn
	out  *tcpsim.Conn

	headerPending int64 // inbound session header bytes still to strip
	headerToSend  int64 // outbound header bytes still to write
	buffered      int64 // bytes held: current chunk + processing + ready
	chunkFill     int64 // bytes accumulated in the current chunk
	ready         int64 // processed bytes eligible to write downstream
	closedOut     bool
	dialNext      func() // supplied by the session builder

	// MaxBuffered is the high-water mark of the depot's buffer occupancy —
	// evidence that LSL needs only small, short-lived allocations.
	MaxBuffered int64
	// BytesIn and BytesOut count payload traversals for the conservation
	// invariant (in == out == size at completion).
	BytesIn  int64
	BytesOut int64
}

// Buffered returns the depot's current buffer occupancy.
func (d *Depot) Buffered() int64 { return d.buffered }

// pump moves bytes from the upstream connection into the depot buffer.
func (d *Depot) pump() {
	// Strip the inbound session header first.
	for d.headerPending > 0 {
		n := d.in.AppRead(d.headerPending)
		if n == 0 {
			return
		}
		d.headerPending -= n
		if d.headerPending == 0 && d.dialNext != nil {
			dial := d.dialNext
			d.dialNext = nil
			d.e.Schedule(d.cfg.SetupDelay, dial)
		}
	}
	// Accumulate into the current store-and-forward chunk. A chunk is not
	// eligible for downstream transmission until it is complete (or the
	// stream ends), matching the prototype's user-level read/forward loop.
	// This granularity is why very small transfers see no pipelining and
	// lose to direct TCP (paper Figure 5's 32K point).
	for d.in.Available() > 0 && d.buffered < d.cfg.BufferCap {
		n := d.cfg.ChunkSize - d.chunkFill
		if a := d.in.Available(); a < n {
			n = a
		}
		if room := d.cfg.BufferCap - d.buffered; room < n {
			n = room
		}
		n = d.in.AppRead(n)
		if n == 0 {
			return
		}
		d.buffered += n
		d.chunkFill += n
		d.BytesIn += n
		if d.buffered > d.MaxBuffered {
			d.MaxBuffered = d.buffered
		}
		if d.chunkFill == d.cfg.ChunkSize {
			d.sealChunk()
		}
	}
	// End of stream flushes a partial final chunk.
	if d.chunkFill > 0 && d.in.FinReceived() && d.in.Available() == 0 {
		d.sealChunk()
	}
	d.maybeClose()
}

// sealChunk hands the accumulated chunk to the forwarding stage; after the
// processing delay it becomes writable downstream.
func (d *Depot) sealChunk() {
	chunk := d.chunkFill
	d.chunkFill = 0
	d.e.Schedule(d.cfg.ForwardDelay(), func() {
		d.ready += chunk
		d.flush()
	})
}

// flush writes processed bytes into the downstream connection.
func (d *Depot) flush() {
	if d.out == nil || !d.out.Established() {
		return
	}
	for d.headerToSend > 0 {
		n := d.out.AppWrite(d.headerToSend)
		if n == 0 {
			return
		}
		d.headerToSend -= n
	}
	for d.ready > 0 {
		n := d.out.AppWrite(d.ready)
		if n == 0 {
			break
		}
		d.ready -= n
		d.buffered -= n
		d.BytesOut += n
	}
	// Freed buffer space may unblock upstream reads (and through TCP flow
	// control, the upstream sender).
	d.pump()
	d.maybeClose()
}

// maybeClose propagates end-of-stream once upstream is exhausted and the
// buffer has fully drained downstream.
func (d *Depot) maybeClose() {
	if d.closedOut || d.out == nil {
		return
	}
	if d.in.FinReceived() && d.in.Available() == 0 && d.buffered == 0 && d.chunkFill == 0 && d.ready == 0 && d.headerToSend == 0 {
		d.closedOut = true
		d.out.CloseWrite()
	}
}

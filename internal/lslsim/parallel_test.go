package lslsim

import (
	"testing"

	"lsl/internal/netsim"
	"lsl/internal/tcpsim"
)

func TestParallelDirectDeliversAll(t *testing.T) {
	e := netsim.NewEngine(1)
	f := netsim.NewLink(e, "f", 1e8, 10*ms, 0, 0)
	r := netsim.NewLink(e, "r", 0, 10*ms, 0, 0)
	res := RunParallelDirect(e, netsim.NewPath(e, f), netsim.NewPath(e, r),
		tcpsim.DefaultConfig(), 4, 4<<20)
	if res.Bytes != 4<<20 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
	if len(res.Conns) != 4 {
		t.Fatalf("conns=%d", len(res.Conns))
	}
}

func TestParallelDirectUnevenSplit(t *testing.T) {
	e := netsim.NewEngine(2)
	f := netsim.NewLink(e, "f", 1e8, 5*ms, 0, 0)
	r := netsim.NewLink(e, "r", 0, 5*ms, 0, 0)
	size := int64(1<<20 + 7) // not divisible by 3
	res := RunParallelDirect(e, netsim.NewPath(e, f), netsim.NewPath(e, r),
		tcpsim.DefaultConfig(), 3, size)
	if res.Bytes != size {
		t.Fatalf("bytes=%d want %d", res.Bytes, size)
	}
}

func TestParallelDirectSingleEqualsDirect(t *testing.T) {
	run := func(parallel bool) float64 {
		e := netsim.NewEngine(3)
		f := netsim.NewLink(e, "f", 5e7, 15*ms, 0, 0.001)
		r := netsim.NewLink(e, "r", 0, 15*ms, 0, 0)
		if parallel {
			return RunParallelDirect(e, netsim.NewPath(e, f), netsim.NewPath(e, r),
				tcpsim.DefaultConfig(), 1, 4<<20).Seconds()
		}
		return RunDirect(e, netsim.NewPath(e, f), netsim.NewPath(e, r),
			tcpsim.DefaultConfig(), 4<<20).Seconds()
	}
	p, d := run(true), run(false)
	// Same machinery, same seed: identical dynamics.
	if p != d {
		t.Fatalf("1-stream parallel %v != direct %v", p, d)
	}
}

// The PSockets effect: on a lossy long path, parallel streams beat a
// single connection because each stream's loss penalty is independent and
// the aggregate window recovers n times faster.
func TestParallelBeatsSingleUnderLoss(t *testing.T) {
	run := func(n int) float64 {
		e := netsim.NewEngine(4)
		f := netsim.NewLink(e, "f", 1e8, 30*ms, 0, 5e-4)
		r := netsim.NewLink(e, "r", 0, 30*ms, 0, 0)
		cfg := tcpsim.DefaultConfig()
		cfg.InitialSSThresh = 128 << 10
		return RunParallelDirect(e, netsim.NewPath(e, f), netsim.NewPath(e, r), cfg, n, 32<<20).Mbps()
	}
	one := run(1)
	four := run(4)
	if four <= one*1.2 {
		t.Fatalf("4 streams (%v) should clearly beat 1 (%v)", four, one)
	}
}

func TestParallelTracesRecorded(t *testing.T) {
	e := netsim.NewEngine(5)
	f := netsim.NewLink(e, "f", 1e8, 5*ms, 0, 0)
	r := netsim.NewLink(e, "r", 0, 5*ms, 0, 0)
	res := RunParallelDirect(e, netsim.NewPath(e, f), netsim.NewPath(e, r),
		tcpsim.DefaultConfig(), 2, 1<<20)
	if len(res.Traces) != 2 {
		t.Fatalf("traces=%d", len(res.Traces))
	}
	var total int64
	for _, tr := range res.Traces {
		total += tr.TotalBytes() - 1 // minus fin unit
	}
	if total != 1<<20 {
		t.Fatalf("trace bytes=%d", total)
	}
}

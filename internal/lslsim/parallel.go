package lslsim

import (
	"fmt"

	"lsl/internal/netsim"
	"lsl/internal/tcpsim"
	"lsl/internal/trace"
)

// RunParallelDirect is the PSockets-style baseline the paper's related
// work discusses (citation [22]): n concurrent end-to-end TCP connections
// over the same paths, each carrying an equal share of the payload. It
// captures aggregate bandwidth through parallelism at the *application*
// level, against which LSL's in-network cascading can be compared (the
// two are complementary: parallel streams divide the loss penalty across
// sockets, cascading divides the RTT across hops).
func RunParallelDirect(e *netsim.Engine, fwd, rev *netsim.Path, cfg tcpsim.Config, n int, size int64) Result {
	if n <= 0 {
		panic("lslsim: parallel stream count must be positive")
	}
	start := e.Now()
	res := Result{Start: start}

	remaining := size
	share := size / int64(n)
	finished := 0
	for i := 0; i < n; i++ {
		sz := share
		if i == n-1 {
			sz = remaining
		}
		remaining -= sz
		rec := trace.New(fmt.Sprintf("stream%d", i+1))
		c := tcpsim.Connect(e, fwd, rev, cfg)
		c.Name = rec.Name
		c.Trace = rec
		res.Conns = append(res.Conns, c)
		res.Traces = append(res.Traces, rec)

		want := sz
		var pushed int64
		push := func() {
			for pushed < want {
				got := c.AppWrite(want - pushed)
				if got == 0 {
					return
				}
				pushed += got
			}
			c.CloseWrite()
		}
		c.OnEstablished(push)
		c.OnSendSpace(push)
		conn := c
		eofSeen := false
		c.OnDeliver(func() {
			conn.AppRead(conn.Available())
			if !eofSeen && conn.EOF() {
				eofSeen = true
				finished++
				if finished == n {
					res.Done = e.Now()
				}
			}
		})
	}

	e.RunWhile(func() bool { return finished < n })
	res.Bytes = 0
	for _, c := range res.Conns {
		res.Bytes += c.BytesReceived()
	}
	return res
}

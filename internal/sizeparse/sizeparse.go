// Package sizeparse parses and formats byte sizes with the binary suffixes
// (K, M, G) used throughout the tools and experiment tables.
package sizeparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse converts "64M", "32k", "1073741824" into bytes.
func Parse(s string) (int64, error) {
	if s == "" {
		return 0, fmt.Errorf("sizeparse: empty size")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'K', 'k':
		mult, s = 1<<10, s[:len(s)-1]
	case 'M', 'm':
		mult, s = 1<<20, s[:len(s)-1]
	case 'G', 'g':
		mult, s = 1<<30, s[:len(s)-1]
	case 'B', 'b':
		s = s[:len(s)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sizeparse: %q: %v", s, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("sizeparse: negative size %d", n)
	}
	v := n * mult
	if mult > 1 && v/mult != n {
		return 0, fmt.Errorf("sizeparse: overflow")
	}
	return v, nil
}

// Format renders bytes with the largest exact binary suffix, matching the
// paper's axis labels (e.g. 256K, 64M).
func Format(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dG", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

package sizeparse

import (
	"testing"
	"testing/quick"
)

func TestParseValid(t *testing.T) {
	cases := map[string]int64{
		"0":    0,
		"1024": 1024,
		"32K":  32 << 10,
		"32k":  32 << 10,
		"64M":  64 << 20,
		"64m":  64 << 20,
		"2G":   2 << 30,
		"2g":   2 << 30,
	}
	for in, want := range cases {
		got, err := Parse(in)
		if err != nil || got != want {
			t.Fatalf("Parse(%q)=%d,%v want %d", in, got, err, want)
		}
	}
}

func TestParseInvalid(t *testing.T) {
	for _, in := range []string{"", "M", "12Q", "abc", "-5", "-1K", "99999999999G"} {
		if _, err := Parse(in); err == nil {
			t.Fatalf("Parse(%q) accepted", in)
		}
	}
}

func TestFormat(t *testing.T) {
	cases := map[int64]string{
		0:          "0B",
		100:        "100B",
		32 << 10:   "32K",
		1536 << 10: "1536K",
		64 << 20:   "64M",
		2 << 30:    "2G",
	}
	for in, want := range cases {
		if got := Format(in); got != want {
			t.Fatalf("Format(%d)=%q want %q", in, got, want)
		}
	}
}

// Property: Parse(Format(n)) == n.
func TestRoundTripProperty(t *testing.T) {
	f := func(raw uint16, k uint8) bool {
		n := int64(raw) << (10 * (k % 3)) // bytes, K-aligned, M-aligned
		got, err := Parse(Format(n))
		return err == nil && got == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatNonAligned(t *testing.T) {
	if got := Format(1500); got != "1500B" {
		t.Fatalf("Format(1500)=%q", got)
	}
}

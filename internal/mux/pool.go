// The link pool: warm trunks per destination, with transparent fallback
// to one-connection-per-session for peers that do not speak the trunk
// protocol, so mixed fleets interoperate.
package mux

import (
	"context"
	"errors"
	"net"
	"sync"
	"time"

	"lsl/internal/metrics"
	"lsl/internal/sockopt"
)

// ErrPoolClosed reports a dial on a closed pool.
var ErrPoolClosed = errors.New("mux: pool closed")

// Dialer matches net.Dialer.DialContext (and core.Dialer).
type Dialer func(ctx context.Context, network, addr string) (net.Conn, error)

// PoolMetrics observes a pool (and, on a depot, its accept-side links):
// the lsl_link_* counter family plus stream gauges. Any field may be nil.
type PoolMetrics struct {
	// LinkOpened counts trunks established (hello exchange completed).
	LinkOpened *metrics.Counter
	// LinkReused counts sessions that rode an already-open trunk instead
	// of paying a TCP handshake.
	LinkReused *metrics.Counter
	// LinkClosed counts trunks torn down (idle timeout, error, close).
	LinkClosed *metrics.Counter
	// Streams gauges live multiplexed streams.
	Streams *metrics.Gauge
	// StreamHighWater records the most concurrent streams observed on any
	// one link.
	StreamHighWater *metrics.Gauge
}

func (m *PoolMetrics) opened() {
	if m != nil && m.LinkOpened != nil {
		m.LinkOpened.Inc()
	}
}

func (m *PoolMetrics) reused() {
	if m != nil && m.LinkReused != nil {
		m.LinkReused.Inc()
	}
}

func (m *PoolMetrics) closed() {
	if m != nil && m.LinkClosed != nil {
		m.LinkClosed.Inc()
	}
}

// StreamDelta adjusts the live-stream gauge (exported for accept-side
// accounting in the depot).
func (m *PoolMetrics) StreamDelta(d int64) {
	if m != nil && m.Streams != nil {
		m.Streams.Add(d)
	}
}

// StreamHigh raises the high-water gauge.
func (m *PoolMetrics) StreamHigh(n int64) {
	if m != nil && m.StreamHighWater != nil {
		m.StreamHighWater.SetMax(n)
	}
}

// PoolConfig tunes a link pool.
type PoolConfig struct {
	// Dial establishes trunk (and fallback) transport connections
	// (default net.Dialer).
	Dial Dialer
	// Window is the per-stream receive window granted on each trunk.
	Window int
	// MaxStreamsPerLink opens a second trunk to the same address once a
	// link carries this many live streams (default 64).
	MaxStreamsPerLink int
	// IdleTimeout closes a trunk that has carried no streams for this
	// long (default 60s; negative keeps idle trunks forever).
	IdleTimeout time.Duration
	// ProbeTimeout bounds the hello exchange that detects whether a peer
	// speaks the trunk protocol (default 5s).
	ProbeTimeout time.Duration
	// NegativeTTL is how long a peer that failed the probe is remembered
	// as mux-incapable and dialed classically without re-probing
	// (default 60s).
	NegativeTTL time.Duration
	// SockSndBuf/SockRcvBuf tune every pool-dialed conn (trunks and
	// classic fallbacks); zero leaves kernel defaults.
	SockSndBuf int
	SockRcvBuf int
	// WriteTimeout bounds one frame write per trunk (see
	// LinkConfig.WriteTimeout).
	WriteTimeout time.Duration
	// Metrics observes the pool.
	Metrics *PoolMetrics
	// Logf, when set, receives one line per pool event.
	Logf func(format string, args ...interface{})
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.Dial == nil {
		var d net.Dialer
		c.Dial = d.DialContext
	}
	if c.MaxStreamsPerLink <= 0 {
		c.MaxStreamsPerLink = 64
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 60 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 5 * time.Second
	}
	if c.NegativeTTL <= 0 {
		c.NegativeTTL = 60 * time.Second
	}
	return c
}

// Pool keeps warm trunks per destination address. DialContext matches
// core.Dialer, so a pool drops in anywhere a transport dialer goes: it
// returns a multiplexed stream when the peer speaks the trunk protocol
// and a classic per-session connection when it does not.
type Pool struct {
	cfg PoolConfig

	mu     sync.Mutex
	links  map[string][]*pooledLink
	nonMux map[string]time.Time // address → probe-again-after
	closed bool
}

type pooledLink struct {
	link *Link
	mu   sync.Mutex
	idle *time.Timer
}

// NewPool builds a link pool.
func NewPool(cfg PoolConfig) *Pool {
	return &Pool{
		cfg:    cfg.withDefaults(),
		links:  make(map[string][]*pooledLink),
		nonMux: make(map[string]time.Time),
	}
}

func (p *Pool) logf(format string, args ...interface{}) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// DialContext opens a session transport to addr: a stream on a warm
// trunk when one has capacity, a stream on a freshly probed trunk when
// the peer speaks mux, or a classic connection otherwise. The returned
// conn is always usable exactly like a per-session TCP connection.
func (p *Pool) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if until, bad := p.nonMux[addr]; bad {
		if time.Now().Before(until) {
			p.mu.Unlock()
			return p.dialClassic(ctx, network, addr)
		}
		delete(p.nonMux, addr) // TTL expired: probe again
	}
	pl := p.pickLocked(addr)
	p.mu.Unlock()

	if pl != nil {
		if st, err := p.openOn(pl); err == nil {
			return st, nil
		}
		// The warm link died under us (or filled up in a race); fall
		// through and dial fresh.
	}
	return p.dialTrunk(ctx, network, addr)
}

// pickLocked returns a live link to addr with stream capacity, pruning
// dead ones.
func (p *Pool) pickLocked(addr string) *pooledLink {
	live := p.links[addr][:0]
	var pick *pooledLink
	for _, pl := range p.links[addr] {
		if pl.link.Closed() {
			continue
		}
		live = append(live, pl)
		if pick == nil && pl.link.NumStreams() < p.cfg.MaxStreamsPerLink {
			pick = pl
		}
	}
	if len(live) == 0 {
		delete(p.links, addr)
	} else {
		p.links[addr] = live
	}
	return pick
}

func (p *Pool) openOn(pl *pooledLink) (*Stream, error) {
	st, err := pl.link.OpenStream()
	if err != nil {
		return nil, err
	}
	p.cfg.Metrics.reused()
	return st, nil
}

// dialTrunk probes addr for trunk support: connect, hello, and either a
// multiplexed stream or — when the peer answers with anything but a
// trunk hello — a classic fallback connection plus a negative-cache
// entry so later dials skip straight to classic until the TTL expires.
func (p *Pool) dialTrunk(ctx context.Context, network, addr string) (net.Conn, error) {
	nc, err := p.cfg.Dial(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	sockopt.Tune(nc, p.cfg.SockSndBuf, p.cfg.SockRcvBuf)
	deadline := time.Now().Add(p.cfg.ProbeTimeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	nc.SetDeadline(deadline)
	pl := &pooledLink{}
	link, err := Client(nc, LinkConfig{
		Window:       p.cfg.Window,
		WriteTimeout: p.cfg.WriteTimeout,
		Logf:         p.cfg.Logf,
		StreamCount:  func(n int) { p.streamCountChanged(pl, n) },
	})
	if err != nil {
		nc.Close()
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// The peer is reachable but does not speak the trunk protocol
		// (classic depots close the conn on the bad magic, old targets
		// likewise). Remember that and fall back to a per-session
		// connection.
		p.mu.Lock()
		p.nonMux[addr] = time.Now().Add(p.cfg.NegativeTTL)
		p.mu.Unlock()
		p.logf("mux: %s is not trunk-capable (%v), falling back to per-session dialing", addr, err)
		return p.dialClassic(ctx, network, addr)
	}
	pl.link = link
	p.cfg.Metrics.opened()
	p.logf("mux: trunk to %s established", addr)

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		link.Close()
		return nil, ErrPoolClosed
	}
	p.links[addr] = append(p.links[addr], pl)
	p.mu.Unlock()
	go func() {
		<-link.Done()
		p.cfg.Metrics.closed()
		p.remove(addr, pl)
	}()
	st, err := link.OpenStream()
	if err != nil {
		return nil, err
	}
	return st, nil
}

func (p *Pool) dialClassic(ctx context.Context, network, addr string) (net.Conn, error) {
	nc, err := p.cfg.Dial(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	sockopt.Tune(nc, p.cfg.SockSndBuf, p.cfg.SockRcvBuf)
	return nc, nil
}

// streamCountChanged runs the idle timer: a trunk that hits zero streams
// gets IdleTimeout to pick up a new session before it is closed; any new
// stream cancels the countdown. It also keeps the stream gauges.
func (p *Pool) streamCountChanged(pl *pooledLink, n int) {
	p.cfg.Metrics.StreamHigh(int64(pl.link.HighWater()))
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if n > 0 {
		if pl.idle != nil {
			pl.idle.Stop()
			pl.idle = nil
		}
		return
	}
	if p.cfg.IdleTimeout < 0 || pl.link.Closed() {
		return
	}
	if pl.idle != nil {
		pl.idle.Stop()
	}
	pl.idle = time.AfterFunc(p.cfg.IdleTimeout, func() {
		if pl.link.NumStreams() == 0 {
			p.logf("mux: closing trunk to %v after %v idle", pl.link.RemoteAddr(), p.cfg.IdleTimeout)
			pl.link.Drain()
		}
	})
}

func (p *Pool) remove(addr string, dead *pooledLink) {
	p.mu.Lock()
	defer p.mu.Unlock()
	live := p.links[addr][:0]
	for _, pl := range p.links[addr] {
		if pl != dead {
			live = append(live, pl)
		}
	}
	if len(live) == 0 {
		delete(p.links, addr)
	} else {
		p.links[addr] = live
	}
}

// Links reports the live trunk count (observability and tests).
func (p *Pool) Links() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, pls := range p.links {
		for _, pl := range pls {
			if !pl.link.Closed() {
				n++
			}
		}
	}
	return n
}

// Drain retires every trunk gracefully: live streams run to completion
// and each link closes once it empties. New dials still work (they open
// fresh trunks), so Drain is safe to call while sessions are in flight.
func (p *Pool) Drain() {
	p.mu.Lock()
	var all []*pooledLink
	for _, pls := range p.links {
		all = append(all, pls...)
	}
	p.mu.Unlock()
	for _, pl := range all {
		pl.link.Drain()
	}
}

// Close tears down every trunk; subsequent dials fail.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	var all []*pooledLink
	for _, pls := range p.links {
		all = append(all, pls...)
	}
	p.links = make(map[string][]*pooledLink)
	p.mu.Unlock()
	for _, pl := range all {
		pl.link.Close()
	}
	return nil
}

// Compile-time checks: streams satisfy net.Conn and the half-close
// interface the relay's EOF propagation relies on.
var (
	_ net.Conn                        = (*Stream)(nil)
	_ interface{ CloseWrite() error } = (*Stream)(nil)
)

package mux

import (
	"bytes"
	"crypto/md5"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// linkPair establishes a client/server link pair over loopback TCP.
func linkPair(t *testing.T, cfg LinkConfig) (*Link, *Link) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srvCh := make(chan *Link, 1)
	errCh := make(chan error, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			errCh <- err
			return
		}
		l, err := Server(nc, cfg)
		if err != nil {
			errCh <- err
			return
		}
		srvCh <- l
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	client, err := Client(nc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case srv := <-srvCh:
		t.Cleanup(func() { client.Close(); srv.Close() })
		return client, srv
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("server link never established")
	}
	return nil, nil
}

func acceptOne(t *testing.T, l *Link) *Stream {
	t.Helper()
	ch := make(chan *Stream, 1)
	go func() {
		s, err := l.AcceptStream()
		if err != nil {
			return
		}
		ch <- s
	}()
	select {
	case s := <-ch:
		return s
	case <-time.After(5 * time.Second):
		t.Fatal("AcceptStream timed out")
		return nil
	}
}

func TestStreamRoundTrip(t *testing.T) {
	client, srv := linkPair(t, LinkConfig{})
	cs, err := client.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Write([]byte("hello depot")); err != nil {
		t.Fatal(err)
	}
	ss := acceptOne(t, srv)
	buf := make([]byte, 64)
	n, err := ss.Read(buf)
	if err != nil || string(buf[:n]) != "hello depot" {
		t.Fatalf("server read %q, %v", buf[:n], err)
	}
	// Backward direction.
	if _, err := ss.Write([]byte("ack")); err != nil {
		t.Fatal(err)
	}
	n, err = cs.Read(buf)
	if err != nil || string(buf[:n]) != "ack" {
		t.Fatalf("client read %q, %v", buf[:n], err)
	}
	// Half-close propagates EOF after buffered data drains.
	if err := cs.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Read(buf); err != io.EOF {
		t.Fatalf("server expected EOF, got %v", err)
	}
	if _, err := cs.Write([]byte("x")); !errors.Is(err, ErrWriteClosed) {
		t.Fatalf("write after CloseWrite: %v", err)
	}
	ss.CloseWrite()
	if _, err := cs.Read(buf); err != io.EOF {
		t.Fatalf("client expected EOF, got %v", err)
	}
	cs.Close()
	ss.Close()
	if n := client.NumStreams(); n != 0 {
		t.Fatalf("client link still has %d streams", n)
	}
}

// TestFlowControlIntegrity pushes far more data than the stream window
// through a deliberately slow reader: the credit loop must throttle the
// writer without corrupting or deadlocking, byte-exact end to end.
func TestFlowControlIntegrity(t *testing.T) {
	client, srv := linkPair(t, LinkConfig{Window: 8 << 10})
	cs, err := client.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1<<20)
	rand.Read(payload)
	want := md5.Sum(payload)

	var wg sync.WaitGroup
	wg.Add(1)
	var got [md5.Size]byte
	var readErr error
	go func() {
		defer wg.Done()
		ss := acceptOne(t, srv)
		h := md5.New()
		buf := make([]byte, 1234) // odd size to shear chunk boundaries
		for {
			n, err := ss.Read(buf)
			h.Write(buf[:n])
			if err == io.EOF {
				break
			}
			if err != nil {
				readErr = err
				return
			}
		}
		copy(got[:], h.Sum(nil))
		ss.Close()
	}()
	if _, err := cs.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := cs.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if readErr != nil {
		t.Fatal(readErr)
	}
	if got != want {
		t.Fatal("payload corrupted across flow-controlled stream")
	}
}

// TestConcurrentStreams multiplexes many echoing sessions over one trunk.
func TestConcurrentStreams(t *testing.T) {
	client, srv := linkPair(t, LinkConfig{Window: 16 << 10})
	const streams = 20
	go func() {
		for {
			s, err := srv.AcceptStream()
			if err != nil {
				return
			}
			go func(s *Stream) {
				defer s.Close()
				io.Copy(s, s)
				s.CloseWrite()
			}(s)
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cs, err := client.OpenStream()
			if err != nil {
				errs <- err
				return
			}
			defer cs.Close()
			msg := make([]byte, 50<<10)
			rand.Read(msg)
			go func() {
				cs.Write(msg)
				cs.CloseWrite()
			}()
			echo, err := io.ReadAll(cs)
			if err != nil {
				errs <- fmt.Errorf("stream %d: %w", i, err)
				return
			}
			if !bytes.Equal(echo, msg) {
				errs <- fmt.Errorf("stream %d corrupted", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if hw := client.HighWater(); hw < 2 {
		t.Errorf("expected concurrent streams on one link, high water %d", hw)
	}
}

func TestReadDeadline(t *testing.T) {
	client, _ := linkPair(t, LinkConfig{})
	cs, err := client.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	cs.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err = cs.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("expected deadline error, got %v", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("deadline fired far too late")
	}
	// Clearing the deadline makes the stream usable again.
	cs.SetReadDeadline(time.Time{})
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("deadline error is not a net timeout: %v", err)
	}
}

// TestWriteDeadlineOnCreditStall: a reader that never drains leaves the
// writer blocked on credit; the write deadline must unblock it.
func TestWriteDeadlineOnCreditStall(t *testing.T) {
	client, srv := linkPair(t, LinkConfig{Window: 4 << 10})
	cs, err := client.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Write(make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	_ = acceptOne(t, srv) // accepted but never read: no credit comes back
	cs.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
	_, err = cs.Write(make([]byte, 64<<10))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("expected deadline error, got %v", err)
	}
}

func TestLinkCloseUnblocksStreams(t *testing.T) {
	client, srv := linkPair(t, LinkConfig{})
	cs, err := client.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	cs.Write([]byte("x"))
	_ = acceptOne(t, srv)
	done := make(chan error, 1)
	go func() {
		_, err := cs.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	srv.Close() // trunk dies under the session
	select {
	case err := <-done:
		if err == nil || err == io.EOF {
			t.Fatalf("expected link failure error, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read never unblocked after link close")
	}
}

func TestResetAbortsPeer(t *testing.T) {
	client, srv := linkPair(t, LinkConfig{})
	cs, err := client.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	cs.Write([]byte("x"))
	ss := acceptOne(t, srv)
	buf := make([]byte, 1)
	if _, err := ss.Read(buf); err != nil {
		t.Fatal(err)
	}
	cs.Close() // mid-stream close → RESET
	if _, err := ss.Read(buf); !errors.Is(err, ErrStreamReset) {
		t.Fatalf("expected stream reset, got %v", err)
	}
}

func TestDrainClosesIdleLink(t *testing.T) {
	client, srv := linkPair(t, LinkConfig{})
	srv.Drain()
	select {
	case <-srv.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("idle drain never closed the link")
	}
	// The client side observes the close too.
	select {
	case <-client.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("client link never noticed the close")
	}
	if _, err := client.OpenStream(); err == nil {
		t.Fatal("OpenStream succeeded on dead link")
	}
}

func TestDrainWaitsForLiveStream(t *testing.T) {
	client, srv := linkPair(t, LinkConfig{})
	cs, err := client.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	cs.Write([]byte("hello"))
	ss := acceptOne(t, srv)
	srv.Drain()
	select {
	case <-srv.Done():
		t.Fatal("drain closed the link under a live stream")
	case <-time.After(50 * time.Millisecond):
	}
	// The live stream still works.
	buf := make([]byte, 16)
	if n, err := ss.Read(buf); err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("read on draining link: %q, %v", buf[:n], err)
	}
	ss.Close()
	cs.Close()
	select {
	case <-srv.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("drained link never closed after last stream finished")
	}
}

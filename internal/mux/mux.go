// Package mux multiplexes many LSL sessions over one persistent TCP
// connection — a "trunk" between a fixed pair of processes. The paper
// charges every session a fresh TCP handshake and a cold congestion
// window on every sublink; a trunk pays both once per (hop-pair,
// idle-period) and every later session inherits the already-open
// connection and its warmed congestion window.
//
// A Link wraps one net.Conn after the wire.MuxHello exchange and carries
// framed streams (wire: OPEN / DATA / WINDOW / CLOSE / RESET). Each
// Stream implements net.Conn — deadlines included — so the rest of the
// session layer (core.Dial, the depot relay, resilience retries) runs
// over a stream exactly as it runs over a raw TCP connection.
//
// Flow control is per-stream credit: a sender may have at most the
// peer-advertised window of unacknowledged DATA in flight per stream, so
// one fat session backs off on its own credit instead of head-of-line
// starving the trunk, and receive-side buffering is bounded at
// window × streams. The link's read loop never blocks on application
// state (DATA lands in credit-bounded stream buffers; control frames are
// handled inline), which is what keeps the trunk deadlock-free when both
// directions are saturated.
//
// Only the dialing side of a link opens streams; the accepting side
// serves them (AcceptStream). That matches the cascade topology — trunk
// direction follows session direction — and keeps stream-ID allocation
// trivial.
package mux

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"lsl/internal/wire"
)

// Link lifecycle errors.
var (
	// ErrLinkClosed reports an operation on a closed trunk.
	ErrLinkClosed = errors.New("mux: link closed")
	// ErrLinkDraining reports an OpenStream on a draining trunk.
	ErrLinkDraining = errors.New("mux: link draining")
	// ErrStreamReset reports a stream aborted by the peer.
	ErrStreamReset = errors.New("mux: stream reset")
	// ErrWriteClosed reports a write after CloseWrite.
	ErrWriteClosed = errors.New("mux: write on closed stream direction")
)

// LinkConfig tunes one trunk.
type LinkConfig struct {
	// Window is the per-stream receive window granted to the peer
	// (default 256 KiB).
	Window int
	// AcceptBacklog bounds streams opened by the peer but not yet
	// accepted (default 128); past it new streams are reset.
	AcceptBacklog int
	// WriteTimeout bounds one frame write on the underlying conn
	// (default 30s). A trunk peer that stalls past it is declared dead
	// and the link is torn down — every stream errors and resilient
	// callers re-dial over a fresh link.
	WriteTimeout time.Duration
	// Logf, when set, receives one line per link event.
	Logf func(format string, args ...interface{})

	// StreamCount, when set, observes the live stream count after every
	// open/close (called without link locks held). Pools use it for
	// idle-timeout tracking and stream gauges.
	StreamCount func(n int)
}

func (c LinkConfig) withDefaults() LinkConfig {
	if c.Window <= 0 {
		c.Window = 256 << 10
	}
	if c.Window > wire.MaxMuxWindow {
		c.Window = wire.MaxMuxWindow
	}
	if c.AcceptBacklog <= 0 {
		c.AcceptBacklog = 128
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	return c
}

// Link is one trunk: a hello-established net.Conn carrying many streams.
type Link struct {
	nc     net.Conn
	cfg    LinkConfig
	client bool

	sendWindow uint32 // peer-granted initial per-stream credit

	wmu sync.Mutex // serializes frame writes on nc

	mu       sync.Mutex
	streams  map[uint32]*Stream
	nextID   uint32
	accepts  chan *Stream
	draining bool
	closed   bool
	err      error
	done     chan struct{}
	high     int // most concurrent streams ever on this link
}

// Client performs the dial-side hello exchange on nc and starts the link.
// The caller should bound the exchange with a deadline on nc beforehand;
// Client clears the deadline once the hello round-trip completes.
func Client(nc net.Conn, cfg LinkConfig) (*Link, error) {
	cfg = cfg.withDefaults()
	hello := wire.MuxHello{Window: uint32(cfg.Window)}
	if _, err := nc.Write(hello.Encode()); err != nil {
		return nil, fmt.Errorf("mux: send hello: %w", err)
	}
	peer, err := wire.ReadMuxHello(nc)
	if err != nil {
		return nil, fmt.Errorf("mux: read hello: %w", err)
	}
	nc.SetDeadline(time.Time{})
	l := newLink(nc, cfg, true, peer.Window)
	go l.readLoop()
	return l, nil
}

// Server performs the accept-side hello exchange on nc (reading the full
// hello, magic included — prepend any probed bytes) and starts the link.
func Server(nc net.Conn, cfg LinkConfig) (*Link, error) {
	cfg = cfg.withDefaults()
	peer, err := wire.ReadMuxHello(nc)
	if err != nil {
		return nil, fmt.Errorf("mux: read hello: %w", err)
	}
	hello := wire.MuxHello{Window: uint32(cfg.Window)}
	if _, err := nc.Write(hello.Encode()); err != nil {
		return nil, fmt.Errorf("mux: send hello: %w", err)
	}
	nc.SetDeadline(time.Time{})
	l := newLink(nc, cfg, false, peer.Window)
	go l.readLoop()
	return l, nil
}

func newLink(nc net.Conn, cfg LinkConfig, client bool, sendWindow uint32) *Link {
	return &Link{
		nc:         nc,
		cfg:        cfg,
		client:     client,
		sendWindow: sendWindow,
		streams:    make(map[uint32]*Stream),
		accepts:    make(chan *Stream, cfg.AcceptBacklog),
		done:       make(chan struct{}),
	}
}

func (l *Link) logf(format string, args ...interface{}) {
	if l.cfg.Logf != nil {
		l.cfg.Logf(format, args...)
	}
}

// OpenStream opens a new session stream on the trunk (dial side only).
func (l *Link) OpenStream() (*Stream, error) {
	if !l.client {
		return nil, errors.New("mux: OpenStream on accept-side link")
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, l.errLocked()
	}
	if l.draining {
		l.mu.Unlock()
		return nil, ErrLinkDraining
	}
	l.nextID++
	id := l.nextID
	s := newStream(l, id, l.sendWindow)
	s.openPending = true // OPEN rides in front of the stream's first frame
	l.streams[id] = s
	n := len(l.streams)
	if n > l.high {
		l.high = n
	}
	l.mu.Unlock()
	l.notifyStreamCount(n)
	return s, nil
}

// AcceptStream blocks for the next peer-opened stream (accept side).
func (l *Link) AcceptStream() (*Stream, error) {
	select {
	case s := <-l.accepts:
		return s, nil
	case <-l.done:
		// Drain streams raced in before close.
		select {
		case s := <-l.accepts:
			return s, nil
		default:
			return nil, l.Err()
		}
	}
}

// NumStreams reports the live stream count.
func (l *Link) NumStreams() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.streams)
}

// HighWater reports the most concurrent streams the link has carried.
func (l *Link) HighWater() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.high
}

// Drain stops new streams — OpenStream fails, peer OPENs are reset — and
// closes the link once the last live stream finishes (immediately when
// idle). Existing streams run to completion.
func (l *Link) Drain() {
	l.mu.Lock()
	l.draining = true
	idle := len(l.streams) == 0 && !l.closed
	l.mu.Unlock()
	if idle {
		l.closeWithError(ErrLinkClosed)
	}
}

// Close tears the trunk down: the conn closes and every live stream
// errors out.
func (l *Link) Close() error {
	l.closeWithError(ErrLinkClosed)
	return nil
}

// Done is closed when the link has fully shut down.
func (l *Link) Done() <-chan struct{} { return l.done }

// Err reports why the link shut down (nil while alive).
func (l *Link) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.errLocked()
}

func (l *Link) errLocked() error {
	if !l.closed {
		return nil
	}
	if l.err != nil {
		return l.err
	}
	return ErrLinkClosed
}

// Closed reports whether the link is no longer usable for new streams.
func (l *Link) Closed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed || l.draining
}

// RemoteAddr names the trunk peer.
func (l *Link) RemoteAddr() net.Addr { return l.nc.RemoteAddr() }

// LocalAddr names the trunk's local end.
func (l *Link) LocalAddr() net.Addr { return l.nc.LocalAddr() }

func (l *Link) notifyStreamCount(n int) {
	if l.cfg.StreamCount != nil {
		l.cfg.StreamCount(n)
	}
}

func (l *Link) closeWithError(err error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.err = err
	streams := make([]*Stream, 0, len(l.streams))
	for _, s := range l.streams {
		streams = append(streams, s)
	}
	l.streams = make(map[uint32]*Stream)
	l.mu.Unlock()
	l.nc.Close()
	for _, s := range streams {
		s.deliverReset(err)
	}
	close(l.done)
	if len(streams) > 0 {
		l.notifyStreamCount(0)
	}
}

// removeStream retires a stream after its local Close and closes a
// draining link once the count hits zero.
func (l *Link) removeStream(id uint32) {
	l.mu.Lock()
	if _, ok := l.streams[id]; !ok {
		l.mu.Unlock()
		return
	}
	delete(l.streams, id)
	n := len(l.streams)
	drainedOut := l.draining && n == 0 && !l.closed
	l.mu.Unlock()
	l.notifyStreamCount(n)
	if drainedOut {
		l.closeWithError(ErrLinkClosed)
	}
}

func (l *Link) lookup(id uint32) *Stream {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.streams[id]
}

// readLoop dispatches inbound frames until the conn dies. It must never
// block on application state: DATA lands in credit-bounded buffers,
// control frames are handled inline, and a full accept backlog resets the
// excess stream instead of waiting.
func (l *Link) readLoop() {
	for {
		f, err := wire.ReadMuxFrame(l.nc)
		if err != nil {
			l.closeWithError(fmt.Errorf("mux: link read: %w", err))
			return
		}
		switch f.Type {
		case wire.MuxOpen:
			l.handleOpen(f.Stream)
		case wire.MuxData:
			if s := l.lookup(f.Stream); s != nil {
				if err := s.deliverData(f.Payload); err != nil {
					l.closeWithError(err)
					return
				}
			}
			// Unknown stream: recently closed locally; drop quietly.
		case wire.MuxWindow:
			if s := l.lookup(f.Stream); s != nil {
				s.addCredit(f.Credit)
			}
		case wire.MuxClose:
			if s := l.lookup(f.Stream); s != nil {
				s.deliverEOF()
			}
		case wire.MuxReset:
			if s := l.lookup(f.Stream); s != nil {
				s.deliverReset(ErrStreamReset)
				l.removeStream(f.Stream)
			}
		}
	}
}

func (l *Link) handleOpen(id uint32) {
	if l.client {
		l.closeWithError(errors.New("mux: peer opened stream on dial-side link"))
		return
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	if _, dup := l.streams[id]; dup {
		l.mu.Unlock()
		l.closeWithError(fmt.Errorf("mux: duplicate OPEN for stream %d", id))
		return
	}
	if l.draining {
		l.mu.Unlock()
		l.writeFrame(wire.MuxReset, id, nil)
		return
	}
	s := newStream(l, id, l.sendWindow)
	l.streams[id] = s
	n := len(l.streams)
	if n > l.high {
		l.high = n
	}
	l.mu.Unlock()
	select {
	case l.accepts <- s:
		l.notifyStreamCount(n)
	default:
		// Accept backlog full: refuse rather than block the read loop.
		l.logf("mux: accept backlog full, resetting stream %d", id)
		s.deliverReset(ErrStreamReset)
		l.removeStream(id)
		l.writeFrame(wire.MuxReset, id, nil)
	}
}

// writeFrame sends one control or data frame under the link write lock
// and the frame write timeout. A write failure kills the link.
func (l *Link) writeFrame(typ uint8, stream uint32, payload []byte) error {
	buf := wire.AppendMuxFrame(nil, typ, stream, payload)
	return l.writeRaw(buf)
}

func (l *Link) writeRaw(buf []byte) error {
	l.wmu.Lock()
	l.nc.SetWriteDeadline(time.Now().Add(l.cfg.WriteTimeout))
	_, err := l.nc.Write(buf)
	l.nc.SetWriteDeadline(time.Time{})
	l.wmu.Unlock()
	if err != nil {
		l.closeWithError(fmt.Errorf("mux: link write: %w", err))
	}
	return err
}

// writeData sends [OPEN]+DATA for one credit-reserved chunk. The pending
// OPEN coalesces with the first DATA into one writev (one segment on the
// wire), so opening a session over a warm trunk costs no extra packet.
func (l *Link) writeData(stream uint32, p []byte, withOpen bool) error {
	hdr := make([]byte, 0, 2*wire.MuxFrameHeaderLen)
	if withOpen {
		hdr = wire.AppendMuxFrame(hdr, wire.MuxOpen, stream, nil)
	}
	var frame [wire.MuxFrameHeaderLen]byte
	frame[0] = wire.MuxData
	putUint32(frame[1:5], stream)
	putUint32(frame[5:9], uint32(len(p)))
	hdr = append(hdr, frame[:]...)

	l.wmu.Lock()
	l.nc.SetWriteDeadline(time.Now().Add(l.cfg.WriteTimeout))
	bufs := net.Buffers{hdr, p}
	_, err := bufs.WriteTo(l.nc)
	l.nc.SetWriteDeadline(time.Time{})
	l.wmu.Unlock()
	if err != nil {
		l.closeWithError(fmt.Errorf("mux: link write: %w", err))
	}
	return err
}

func putUint32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

// Stream is one multiplexed session sublink. It implements net.Conn:
// Read/Write with deadlines, CloseWrite half-close (CLOSE frame), and
// Close (RESET unless both directions already finished cleanly).
type Stream struct {
	link *Link
	id   uint32

	mu        sync.Mutex
	readCond  *sync.Cond
	writeCond *sync.Cond

	// Receive side. chunks is bounded by the advertised window because
	// the peer respects credit; unacked counts delivered-but-ungranted
	// bytes for window accounting and protocol enforcement.
	chunks     [][]byte
	chunkOff   int
	buffered   int
	unacked    int
	readClosed bool // peer sent CLOSE

	// Send side.
	sendCredit  uint32
	writeClosed bool
	openPending bool // OPEN not yet on the wire (dial side)

	resetErr error
	closed   bool

	rdeadline deadline
	wdeadline deadline
}

func newStream(l *Link, id uint32, credit uint32) *Stream {
	s := &Stream{link: l, id: id, sendCredit: credit}
	s.readCond = sync.NewCond(&s.mu)
	s.writeCond = sync.NewCond(&s.mu)
	s.rdeadline.cond = s.readCond
	s.wdeadline.cond = s.writeCond
	return s
}

// StreamID returns the stream's id on its link.
func (s *Stream) StreamID() uint32 { return s.id }

// Link returns the trunk carrying the stream.
func (s *Stream) Link() *Link { return s.link }

// deliverData queues inbound payload (called from the link read loop; the
// slice is owned by the stream from here on). A peer overrunning its
// credit is a protocol violation that kills the link.
func (s *Stream) deliverData(p []byte) error {
	s.mu.Lock()
	if s.closed || s.resetErr != nil || s.readClosed {
		s.mu.Unlock()
		return nil // stale data for a locally finished stream
	}
	if s.unacked+len(p) > s.link.cfg.Window {
		s.mu.Unlock()
		return fmt.Errorf("mux: stream %d overran its %d-byte receive window", s.id, s.link.cfg.Window)
	}
	s.chunks = append(s.chunks, p)
	s.buffered += len(p)
	s.unacked += len(p)
	s.mu.Unlock()
	s.readCond.Broadcast()
	return nil
}

func (s *Stream) deliverEOF() {
	s.mu.Lock()
	s.readClosed = true
	s.mu.Unlock()
	s.readCond.Broadcast()
}

func (s *Stream) deliverReset(err error) {
	s.mu.Lock()
	if s.resetErr == nil {
		s.resetErr = err
	}
	s.mu.Unlock()
	s.readCond.Broadcast()
	s.writeCond.Broadcast()
}

// addCredit applies a WINDOW grant from the peer.
func (s *Stream) addCredit(n uint32) {
	s.mu.Lock()
	s.sendCredit += n
	s.mu.Unlock()
	s.writeCond.Broadcast()
}

// Read returns stream payload; EOF after the peer's CLOSE drains.
func (s *Stream) Read(p []byte) (int, error) {
	s.mu.Lock()
	for {
		if s.buffered > 0 {
			break
		}
		if s.resetErr != nil {
			err := s.resetErr
			s.mu.Unlock()
			return 0, err
		}
		if s.readClosed {
			s.mu.Unlock()
			return 0, io.EOF
		}
		if s.closed {
			s.mu.Unlock()
			return 0, ErrLinkClosed
		}
		if s.rdeadline.expired() {
			s.mu.Unlock()
			return 0, os.ErrDeadlineExceeded
		}
		s.readCond.Wait()
	}
	n := 0
	for n < len(p) && s.buffered > 0 {
		chunk := s.chunks[0][s.chunkOff:]
		c := copy(p[n:], chunk)
		n += c
		s.buffered -= c
		if c == len(chunk) {
			s.chunks[0] = nil
			s.chunks = s.chunks[1:]
			s.chunkOff = 0
		} else {
			s.chunkOff += c
		}
	}
	// Replenish the peer's credit once we've drained a meaningful share
	// of the window, batching grants to keep frame chatter low.
	var grant int
	if consumed := s.unacked - s.buffered; consumed >= s.link.cfg.Window/4 || (s.buffered == 0 && consumed > 0) {
		grant = consumed
		s.unacked -= consumed
	}
	s.mu.Unlock()
	if grant > 0 {
		s.link.writeRaw(wire.AppendMuxWindow(nil, s.id, uint32(grant)))
	}
	return n, nil
}

// Write sends payload toward the peer, blocking on stream credit (the
// session-layer backpressure) and splitting at the frame payload cap.
func (s *Stream) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		s.mu.Lock()
		for {
			if s.resetErr != nil {
				err := s.resetErr
				s.mu.Unlock()
				return total, err
			}
			if s.writeClosed || s.closed {
				s.mu.Unlock()
				return total, ErrWriteClosed
			}
			if s.wdeadline.expired() {
				s.mu.Unlock()
				return total, os.ErrDeadlineExceeded
			}
			if s.sendCredit > 0 {
				break
			}
			s.writeCond.Wait()
		}
		k := len(p)
		if k > int(s.sendCredit) {
			k = int(s.sendCredit)
		}
		if k > wire.MaxMuxPayload {
			k = wire.MaxMuxPayload
		}
		s.sendCredit -= uint32(k)
		withOpen := s.openPending
		s.openPending = false
		s.mu.Unlock()
		if err := s.link.writeData(s.id, p[:k], withOpen); err != nil {
			return total, err
		}
		total += k
		p = p[k:]
	}
	return total, nil
}

// CloseWrite half-closes the stream: the peer reads EOF once buffered
// data drains. A never-written stream flushes its pending OPEN first so
// the peer observes an (empty) stream rather than nothing.
func (s *Stream) CloseWrite() error {
	s.mu.Lock()
	if s.writeClosed || s.closed || s.resetErr != nil {
		s.mu.Unlock()
		return nil
	}
	s.writeClosed = true
	withOpen := s.openPending
	s.openPending = false
	s.mu.Unlock()
	var buf []byte
	if withOpen {
		buf = wire.AppendMuxFrame(buf, wire.MuxOpen, s.id, nil)
	}
	buf = wire.AppendMuxFrame(buf, wire.MuxClose, s.id, nil)
	return s.link.writeRaw(buf)
}

// Close finishes the stream locally. Unless both directions already
// completed cleanly it aborts the peer with RESET; either way the stream
// leaves the link (freeing its slot for max-streams accounting).
func (s *Stream) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	clean := s.writeClosed && (s.readClosed || s.resetErr != nil)
	sendReset := !clean && s.resetErr == nil && !s.openPending
	s.chunks = nil
	s.buffered = 0
	s.mu.Unlock()
	s.readCond.Broadcast()
	s.writeCond.Broadcast()
	if sendReset {
		s.link.writeFrame(wire.MuxReset, s.id, nil)
	}
	s.link.removeStream(s.id)
	return nil
}

// LocalAddr reports the trunk's local address.
func (s *Stream) LocalAddr() net.Addr { return s.link.nc.LocalAddr() }

// RemoteAddr reports the trunk peer's address.
func (s *Stream) RemoteAddr() net.Addr { return s.link.nc.RemoteAddr() }

// SetDeadline sets both read and write deadlines.
func (s *Stream) SetDeadline(t time.Time) error {
	s.SetReadDeadline(t)
	s.SetWriteDeadline(t)
	return nil
}

// SetReadDeadline bounds blocked Reads.
func (s *Stream) SetReadDeadline(t time.Time) error {
	s.mu.Lock()
	s.rdeadline.set(t)
	s.mu.Unlock()
	return nil
}

// SetWriteDeadline bounds Writes blocked on stream credit.
func (s *Stream) SetWriteDeadline(t time.Time) error {
	s.mu.Lock()
	s.wdeadline.set(t)
	s.mu.Unlock()
	return nil
}

// deadline wakes a cond when its time passes; waiters re-check expired()
// after every wakeup. Guarded by the stream mutex.
type deadline struct {
	t     time.Time
	timer *time.Timer
	cond  *sync.Cond
}

func (d *deadline) set(t time.Time) {
	d.t = t
	if d.timer != nil {
		d.timer.Stop()
		d.timer = nil
	}
	if t.IsZero() {
		return
	}
	cond := d.cond
	if dur := time.Until(t); dur <= 0 {
		cond.Broadcast()
	} else {
		d.timer = time.AfterFunc(dur, cond.Broadcast)
	}
}

func (d *deadline) expired() bool {
	return !d.t.IsZero() && !time.Now().Before(d.t)
}

package mux

import (
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"lsl/internal/metrics"
	"lsl/internal/wire"
)

// muxEchoServer accepts trunks and echoes every stream.
func muxEchoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				l, err := Server(nc, LinkConfig{})
				if err != nil {
					nc.Close()
					return
				}
				for {
					s, err := l.AcceptStream()
					if err != nil {
						return
					}
					go func(s *Stream) {
						defer s.Close()
						io.Copy(s, s)
						s.CloseWrite()
					}(s)
				}
			}(nc)
		}
	}()
	return ln.Addr().String()
}

// classicServer accepts plain connections and echoes them — it does not
// speak the trunk protocol, so pool dials must fall back.
func classicServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				// A classic peer reads an open header, sees trunk magic,
				// and hangs up — that is the probe failure path.
				hdr := make([]byte, 4)
				if _, err := io.ReadFull(nc, hdr); err != nil {
					return
				}
				if wire.IsMuxMagic(hdr) {
					return // close: "bad magic"
				}
				rest := make([]byte, 1024)
				n, _ := nc.Read(rest)
				nc.Write(hdr)
				nc.Write(rest[:n])
				io.Copy(nc, nc)
			}(nc)
		}
	}()
	return ln.Addr().String()
}

func poolMetrics(t *testing.T) (*PoolMetrics, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	return &PoolMetrics{
		LinkOpened:      reg.Counter("lsl_link_opened_total", "t"),
		LinkReused:      reg.Counter("lsl_link_reused_total", "t"),
		LinkClosed:      reg.Counter("lsl_link_closed_total", "t"),
		Streams:         reg.Gauge("lsl_mux_streams", "t"),
		StreamHighWater: reg.Gauge("lsl_mux_stream_high_water", "t"),
	}, reg
}

func roundTrip(t *testing.T, c net.Conn, msg string) {
	t.Helper()
	if _, err := c.Write([]byte(msg)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != msg {
		t.Fatalf("echo mismatch: %q", buf)
	}
}

func TestPoolReusesTrunk(t *testing.T) {
	addr := muxEchoServer(t)
	met, _ := poolMetrics(t)
	p := NewPool(PoolConfig{Metrics: met})
	defer p.Close()
	ctx := context.Background()

	for i := 0; i < 5; i++ {
		c, err := p.DialContext(ctx, "tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		roundTrip(t, c, "ping")
		c.Close()
	}
	if got := met.LinkOpened.Value(); got != 1 {
		t.Fatalf("expected 1 trunk, opened %d", got)
	}
	if got := met.LinkReused.Value(); got != 4 {
		t.Fatalf("expected 4 reuses, got %d", got)
	}
	if p.Links() != 1 {
		t.Fatalf("expected 1 live link, got %d", p.Links())
	}
}

func TestPoolMaxStreamsOpensSecondTrunk(t *testing.T) {
	addr := muxEchoServer(t)
	met, _ := poolMetrics(t)
	p := NewPool(PoolConfig{Metrics: met, MaxStreamsPerLink: 2})
	defer p.Close()
	ctx := context.Background()

	var conns []net.Conn
	for i := 0; i < 5; i++ {
		c, err := p.DialContext(ctx, "tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	if got := met.LinkOpened.Value(); got != 3 { // ceil(5/2)
		t.Fatalf("expected 3 trunks for 5 concurrent streams at max 2, got %d", got)
	}
	for _, c := range conns {
		roundTrip(t, c, "hi")
		c.Close()
	}
}

func TestPoolFallsBackToClassic(t *testing.T) {
	addr := classicServer(t)
	met, _ := poolMetrics(t)
	p := NewPool(PoolConfig{Metrics: met, ProbeTimeout: 2 * time.Second})
	defer p.Close()
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		c, err := p.DialContext(ctx, "tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := c.(*Stream); ok {
			t.Fatal("got a mux stream from a non-mux peer")
		}
		roundTrip(t, c, "classic session")
		c.Close()
	}
	if got := met.LinkOpened.Value(); got != 0 {
		t.Fatalf("no trunks should open against a classic peer, got %d", got)
	}
	// Only the first dial pays the probe; the negative cache covers the
	// rest (observable as exactly one probe conn at the server would
	// require server-side counting; here we at least assert behavior
	// stayed classic and functional).
}

func TestPoolIdleTimeoutClosesTrunk(t *testing.T) {
	addr := muxEchoServer(t)
	met, _ := poolMetrics(t)
	p := NewPool(PoolConfig{Metrics: met, IdleTimeout: 100 * time.Millisecond})
	defer p.Close()
	ctx := context.Background()

	c, err := p.DialContext(ctx, "tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, c, "one")
	c.Close()

	deadline := time.Now().Add(5 * time.Second)
	for p.Links() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle trunk never closed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if met.LinkClosed.Value() != 1 {
		t.Fatalf("expected 1 link close, got %d", met.LinkClosed.Value())
	}

	// The next session transparently opens a fresh trunk.
	c2, err := p.DialContext(ctx, "tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, c2, "two")
	c2.Close()
	if met.LinkOpened.Value() != 2 {
		t.Fatalf("expected a second trunk after idle close, got %d opens", met.LinkOpened.Value())
	}
}

// TestPoolReplacesDeadTrunk kills the TCP conn under a warm trunk and
// checks the next dial gets a fresh working link instead of the corpse.
func TestPoolReplacesDeadTrunk(t *testing.T) {
	addr := muxEchoServer(t)
	var mu sync.Mutex
	var raw []net.Conn
	dial := func(ctx context.Context, network, a string) (net.Conn, error) {
		var d net.Dialer
		nc, err := d.DialContext(ctx, network, a)
		if err == nil {
			mu.Lock()
			raw = append(raw, nc)
			mu.Unlock()
		}
		return nc, err
	}
	met, _ := poolMetrics(t)
	p := NewPool(PoolConfig{Metrics: met, Dial: dial})
	defer p.Close()
	ctx := context.Background()

	c, err := p.DialContext(ctx, "tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, c, "before")
	c.Close()

	mu.Lock()
	raw[0].Close() // the trunk dies
	mu.Unlock()

	// The pool may hand us the dead link once before noticing; retry as
	// a resilient caller would.
	var c2 net.Conn
	deadline := time.Now().Add(5 * time.Second)
	for {
		c2, err = p.DialContext(ctx, "tcp", addr)
		if err == nil {
			if _, werr := c2.Write([]byte("after")); werr == nil {
				buf := make([]byte, 5)
				c2.SetReadDeadline(time.Now().Add(2 * time.Second))
				if _, rerr := io.ReadFull(c2, buf); rerr == nil {
					break
				}
			}
			c2.Close()
		}
		if time.Now().After(deadline) {
			t.Fatalf("never recovered a working trunk: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	c2.Close()
	if met.LinkOpened.Value() < 2 {
		t.Fatalf("expected a replacement trunk, opens=%d", met.LinkOpened.Value())
	}
}

func TestPoolCloseFailsDials(t *testing.T) {
	addr := muxEchoServer(t)
	p := NewPool(PoolConfig{})
	c, err := p.DialContext(context.Background(), "tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	p.Close()
	if _, err := p.DialContext(context.Background(), "tcp", addr); err != ErrPoolClosed {
		t.Fatalf("expected ErrPoolClosed, got %v", err)
	}
}

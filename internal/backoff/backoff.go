// Package backoff is the one retry-delay policy shared by every layer
// that re-dials a dead peer: the depot's staged redelivery loop and the
// initiator's self-healing transfer engine (internal/resilience). Both
// need the same thing — capped exponential growth so a recovering
// receiver is not hammered, plus jitter so concurrent retriers that
// failed together do not retry in lockstep (the thundering-herd failure
// mode of fixed-interval retries).
//
// Jitter is drawn from a caller-supplied *rand.Rand, so a seeded source
// makes every delay sequence deterministically reproducible in tests
// while production callers seed from the session ID and wall clock.
package backoff

import (
	"context"
	"math/rand"
	"time"
)

// Defaults used when a Policy field is zero.
const (
	DefaultBase = 100 * time.Millisecond
	DefaultMax  = 10 * time.Second
)

// Policy describes capped exponential backoff. The zero value is usable
// (DefaultBase doubling up to DefaultMax).
type Policy struct {
	// Base is the envelope of the first delay.
	Base time.Duration
	// Max caps the envelope; growth stops here.
	Max time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = DefaultBase
	}
	if p.Max <= 0 {
		p.Max = DefaultMax
	}
	if p.Max < p.Base {
		p.Max = p.Base
	}
	return p
}

// Envelope returns the un-jittered delay bound before retry attempt
// (1-based): Base<<(attempt-1), capped at Max and overflow-safe.
func (p Policy) Envelope(attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := p.Base
	for i := 1; i < attempt; i++ {
		d <<= 1
		if d >= p.Max || d <= 0 { // cap or shift overflow
			return p.Max
		}
	}
	if d > p.Max {
		return p.Max
	}
	return d
}

// Delay returns the jittered delay before retry attempt (1-based):
// uniform in [Envelope/2, Envelope] ("equal jitter" — decorrelated but
// never retrying earlier than half the envelope, so the exponential
// shape survives). A nil rng returns the envelope itself, fully
// deterministic.
func (p Policy) Delay(attempt int, rng *rand.Rand) time.Duration {
	e := p.Envelope(attempt)
	if rng == nil || e < 2 {
		return e
	}
	half := e / 2
	return half + time.Duration(rng.Int63n(int64(e-half)+1))
}

// Sleep waits for d or until ctx is cancelled, returning ctx.Err in the
// latter case. It never busy-waits and never sleeps uninterruptibly — a
// shutdown mid-backoff unblocks immediately.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

package backoff

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

func TestEnvelopeGrowsAndCaps(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: 1 * time.Second}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1 * time.Second,
		1 * time.Second,
	}
	for i, w := range want {
		if got := p.Envelope(i + 1); got != w {
			t.Errorf("Envelope(%d)=%v, want %v", i+1, got, w)
		}
	}
}

func TestEnvelopeOverflowSafe(t *testing.T) {
	p := Policy{Base: time.Hour, Max: 24 * time.Hour}
	if got := p.Envelope(500); got != 24*time.Hour {
		t.Fatalf("Envelope(500)=%v", got)
	}
}

func TestZeroPolicyUsesDefaults(t *testing.T) {
	var p Policy
	if got := p.Envelope(1); got != DefaultBase {
		t.Fatalf("Envelope(1)=%v, want %v", got, DefaultBase)
	}
	if got := p.Envelope(1000); got != DefaultMax {
		t.Fatalf("Envelope(1000)=%v, want %v", got, DefaultMax)
	}
}

func TestDelayJitterBounds(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: 5 * time.Second}
	rng := rand.New(rand.NewSource(42))
	for attempt := 1; attempt <= 8; attempt++ {
		e := p.Envelope(attempt)
		for i := 0; i < 200; i++ {
			d := p.Delay(attempt, rng)
			if d < e/2 || d > e {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, e/2, e)
			}
		}
	}
}

func TestDelayDeterministicForSeed(t *testing.T) {
	p := Policy{Base: 50 * time.Millisecond, Max: 2 * time.Second}
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for attempt := 1; attempt <= 10; attempt++ {
		if da, db := p.Delay(attempt, a), p.Delay(attempt, b); da != db {
			t.Fatalf("attempt %d: same seed gave %v vs %v", attempt, da, db)
		}
	}
}

func TestDelayNilRngIsEnvelope(t *testing.T) {
	p := Policy{Base: time.Second, Max: time.Minute}
	if got := p.Delay(3, nil); got != 4*time.Second {
		t.Fatalf("Delay(3, nil)=%v", got)
	}
}

func TestSleepRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if err := Sleep(ctx, 10*time.Second); err != context.Canceled {
		t.Fatalf("err=%v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Sleep ignored cancellation")
	}
}

func TestSleepZeroReturnsImmediately(t *testing.T) {
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
}

package lsl

import (
	"context"
	"fmt"
	"io"
	"sync"

	"lsl/internal/core"
	"lsl/internal/resilience"
	"lsl/internal/stripe"
	"lsl/internal/wire"
)

// The striped-session surface (paper §VII future work: session-layer
// framing and parallel TCP streams). A striped transfer carries one
// logical stream over several concurrent sessions, each with its own
// loose source route — parallel sockets and multi-path in one mechanism.

// StripeGroupHeader opens each stripe stream.
type StripeGroupHeader = stripe.GroupHeader

// StripeReceiver reassembles a stripe group.
type StripeReceiver = stripe.Receiver

// NewStripeReceiver builds a reassembler writing the logical stream to out.
func NewStripeReceiver(out io.Writer) *StripeReceiver { return stripe.NewReceiver(out) }

// StripedTransferResult reports how a striped transfer was achieved:
// per-stripe routes and byte counts, heals, replans, abandonments, and
// mid-flow weight rebalances.
type StripedTransferResult = resilience.StripedResult

// StripedTransferMetrics is the striped engine's counter set
// (lsl_stripe_*); register one on your own MetricsRegistry with
// NewStripedTransferMetrics, or let transfers default to
// TransferMetricsRegistry.
type StripedTransferMetrics = resilience.StripedMetrics

// NewStripedTransferMetrics registers the lsl_stripe_* counter families
// on reg.
func NewStripedTransferMetrics(reg *MetricsRegistry) *StripedTransferMetrics {
	return resilience.NewStripedMetrics(reg)
}

// Striped transfer options, re-exported (they compose with the
// WithTransfer* options in lsl.go).
var (
	// WithStripes sets the stripe fan-out (default: one per route).
	WithStripes = resilience.WithStripes
	// WithStripeFrameSize sets the striping granularity in bytes.
	WithStripeFrameSize = resilience.WithFrameSize
	// WithStripeQueueFrames bounds frames queued per stripe ahead of its
	// writer (backpressure granularity).
	WithStripeQueueFrames = resilience.WithQueueFrames
	// WithStripeRebalanceBytes recomputes stripe weights from observed
	// throughput every n bytes written (<= 0 disables).
	WithStripeRebalanceBytes = resilience.WithRebalanceBytes
	// WithStripedTransferMetrics directs the lsl_stripe_* counters at a
	// custom set.
	WithStripedTransferMetrics = resilience.WithStripedMetrics
	// WithStripeStealThreshold sets the rate ratio a fast stripe must hold
	// over a slow one before end-of-stream work stealing and speculative
	// tail replication kick in (default 1.5; negative disables tail
	// reclamation).
	WithStripeStealThreshold = resilience.WithStealThreshold
	// WithStripeInflightBytes bounds each stripe's unacknowledged bytes:
	// > 0 is a fixed per-stripe budget, 0 (default) adapts one from the
	// receiver's acked throughput, negative keeps only the frame-count
	// bound.
	WithStripeInflightBytes = resilience.WithInflightBytes
	// WithStripeSocketBuffers pins SO_SNDBUF/SO_RCVBUF (bytes) on every
	// stripe dial; 0 keeps the kernel default for that direction.
	WithStripeSocketBuffers = resilience.WithSockBuffers
)

// StripedTransfer delivers size bytes from src across concurrent stripe
// sessions on the given routes and heals individual stripes through
// transient failures: a stripe that dies mid-flow is re-dialed (replanned
// onto the next-best link-disjoint route when WithPlanner supplies a
// logistics planner) and its in-flight frames are reassigned; a stripe
// whose retry budget runs out is abandoned and its share flows through
// the survivors. With a planner, the routes argument is a fallback — the
// planner proposes up to WithStripes(n) link-disjoint routes weighted by
// predicted throughput. src must support concurrent ReadAt. Receive with
// StripedReceive (or a StripeReceiver).
func StripedTransfer(ctx context.Context, routes []Route, src io.ReaderAt, size int64, opts ...TransferOption) (*StripedTransferResult, error) {
	return resilience.StripedTransfer(ctx, routes, src, size, opts...)
}

// StripedSend opens one session per route (dialed concurrently) and
// stripes total bytes from src across them with frame granularity
// frameSize (<=0 uses the default). Integrity of the logical stream
// rides on per-frame offsets plus TCP checksums; the per-session MD5
// trailer is not used in striped mode because stripe lengths are
// data-dependent. StripedSend does not heal failures — use
// StripedTransfer for the self-healing engine.
func StripedSend(ctx context.Context, routes []Route, src io.Reader, total int64, frameSize int, opts ...Option) error {
	if len(routes) == 0 {
		return fmt.Errorf("lsl: striped send needs at least one route")
	}
	group := wire.NewSessionID()
	conns := make([]*core.Conn, len(routes))
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	var wg sync.WaitGroup
	dialErrs := make([]error, len(routes))
	for i, r := range routes {
		wg.Add(1)
		go func(i int, r Route) {
			defer wg.Done()
			c, err := core.Dial(ctx, r, opts...)
			if err != nil {
				dialErrs[i] = fmt.Errorf("lsl: stripe %d: %w", i, err)
				return
			}
			conns[i] = c
		}(i, r)
	}
	wg.Wait()
	for _, err := range dialErrs {
		if err != nil {
			return err
		}
	}
	writers := make([]io.Writer, len(conns))
	for i, c := range conns {
		writers[i] = c
	}
	if err := stripe.Send(group, writers, src, total, frameSize); err != nil {
		return err
	}
	for _, c := range conns {
		if err := c.CloseWrite(); err != nil {
			return err
		}
	}
	return nil
}

// StripedReceive accepts a stripe group's sessions from ln and
// reassembles the logical stream into out, returning the byte count. It
// keeps accepting until the stream is byte-complete, so a healed stripe's
// replacement session (which replays the dead stripe's frames; duplicates
// are dropped) joins the same group — stream errors on individual
// sessions are tolerated as long as the group completes. The stripes
// argument sizes internal buffers only; the group header carries the
// authoritative count. An accept error before completion cancels the
// group.
func StripedReceive(ln *Listener, stripes int, out io.Writer) (int64, error) {
	recv := stripe.NewReceiver(out)
	done := make(chan struct{})
	var once sync.Once
	acceptErrCh := make(chan error, 1)
	var mu sync.Mutex
	var conns []*ServerConn
	var wg sync.WaitGroup
	go func() {
		for {
			sc, err := ln.Accept()
			if err != nil {
				acceptErrCh <- err
				return
			}
			mu.Lock()
			conns = append(conns, sc)
			mu.Unlock()
			wg.Add(1)
			go func(sc *ServerConn) {
				defer wg.Done()
				// A stream error here is a dead stripe; its replacement
				// arrives as a fresh session, so only the group's
				// completeness matters. Closing unwinds the sender's
				// confirm drain.
				_ = recv.Attach(sc)
				sc.Close()
				if recv.Complete() {
					once.Do(func() { close(done) })
				}
			}(sc)
		}
	}()
	select {
	case <-done:
		// Remaining stripes drain on their own goroutines; the accept
		// loop keeps serving late replays until the caller closes ln.
		return recv.Written(), nil
	case err := <-acceptErrCh:
		// The group can never complete once accepts fail. Cancel the
		// sessions already attached and wait for their goroutines:
		// returning with them in flight would leak them and race on recv.
		mu.Lock()
		open := append([]*ServerConn(nil), conns...)
		mu.Unlock()
		for _, sc := range open {
			sc.Close()
		}
		wg.Wait()
		if recv.Complete() {
			return recv.Written(), nil
		}
		return recv.Written(), err
	}
}

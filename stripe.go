package lsl

import (
	"context"
	"fmt"
	"io"
	"sync"

	"lsl/internal/core"
	"lsl/internal/stripe"
	"lsl/internal/wire"
)

// The striped-session surface (paper §VII future work: session-layer
// framing and parallel TCP streams). A striped transfer carries one
// logical stream over several concurrent sessions, each with its own
// loose source route — parallel sockets and multi-path in one mechanism.

// StripeGroupHeader opens each stripe stream.
type StripeGroupHeader = stripe.GroupHeader

// StripeReceiver reassembles a stripe group.
type StripeReceiver = stripe.Receiver

// NewStripeReceiver builds a reassembler writing the logical stream to out.
func NewStripeReceiver(out io.Writer) *StripeReceiver { return stripe.NewReceiver(out) }

// StripedSend opens one session per route and stripes total bytes from src
// across them with frame granularity frameSize (<=0 uses the default).
// Integrity of the logical stream rides on per-frame offsets plus TCP
// checksums; the per-session MD5 trailer is not used in striped mode
// because stripe lengths are data-dependent.
func StripedSend(ctx context.Context, routes []Route, src io.Reader, total int64, frameSize int, opts ...Option) error {
	if len(routes) == 0 {
		return fmt.Errorf("lsl: striped send needs at least one route")
	}
	group := wire.NewSessionID()
	conns := make([]*core.Conn, 0, len(routes))
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	writers := make([]io.Writer, 0, len(routes))
	for i, r := range routes {
		c, err := core.Dial(ctx, r, opts...)
		if err != nil {
			return fmt.Errorf("lsl: stripe %d: %w", i, err)
		}
		conns = append(conns, c)
		writers = append(writers, c)
	}
	if err := stripe.Send(group, writers, src, total, frameSize); err != nil {
		return err
	}
	for _, c := range conns {
		if err := c.CloseWrite(); err != nil {
			return err
		}
	}
	return nil
}

// StripedReceive accepts stripes sessions from ln and reassembles the
// logical stream into out, returning the byte count.
func StripedReceive(ln *Listener, stripes int, out io.Writer) (int64, error) {
	recv := stripe.NewReceiver(out)
	var wg sync.WaitGroup
	errs := make(chan error, stripes)
	var conns []*ServerConn
	var acceptErr error
	for i := 0; i < stripes; i++ {
		sc, err := ln.Accept()
		if err != nil {
			acceptErr = err
			break
		}
		conns = append(conns, sc)
		wg.Add(1)
		go func(sc *ServerConn) {
			defer wg.Done()
			defer sc.Close()
			if err := recv.Attach(sc); err != nil {
				errs <- err
			}
		}(sc)
	}
	if acceptErr != nil {
		// A mid-group accept failure means the group can never complete.
		// Cancel the sessions already attached and wait for their
		// goroutines: returning with them in flight would leak them and
		// race on recv.
		for _, sc := range conns {
			sc.Close()
		}
		wg.Wait()
		return recv.Written(), acceptErr
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return recv.Written(), err
	}
	if !recv.Complete() {
		return recv.Written(), fmt.Errorf("lsl: striped stream incomplete: %d bytes", recv.Written())
	}
	return recv.Written(), nil
}

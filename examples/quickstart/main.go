// Quickstart: the smallest complete LSL deployment, all in one process —
// a session target, a depot, and an initiator that sends an MD5-verified
// payload through the cascade.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"time"

	"lsl"
)

func main() {
	log.SetFlags(0)

	// 1. A session target: the ultimate receiver.
	target, err := lsl.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer target.Close()
	done := make(chan int64, 1)
	go func() {
		sc, err := target.Accept()
		if err != nil {
			return
		}
		defer sc.Close()
		n, err := io.Copy(io.Discard, sc)
		if err != nil {
			log.Fatalf("target: %v", err)
		}
		if !sc.Verified() {
			log.Fatal("target: digest not verified")
		}
		fmt.Printf("target: received %d bytes on session %s (MD5 verified)\n", n, sc.SessionID())
		done <- n
	}()

	// 2. An lsd depot: the intermediate session-layer router.
	depotLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	depot := lsl.NewDepot(lsl.DepotConfig{BufferSize: 256 << 10})
	go depot.Serve(depotLn)
	defer depot.Close()
	fmt.Printf("depot:  forwarding on %s\n", depotLn.Addr())

	// 3. The initiator: open a session with a loose source route through
	//    the depot and stream a payload with end-to-end integrity.
	payload := make([]byte, 4<<20)
	rand.New(rand.NewSource(7)).Read(payload)

	start := time.Now()
	conn, err := lsl.Dial(context.Background(),
		lsl.Route{Via: []string{depotLn.Addr().String()}, Target: target.Addr().String()},
		lsl.WithDigest(),
		lsl.WithContentLength(int64(len(payload))),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	fmt.Printf("client: session %s open (route confirmed end-to-end)\n", conn.SessionID())

	if _, err := io.Copy(conn, bytes.NewReader(payload)); err != nil {
		log.Fatal(err)
	}
	if err := conn.CloseWrite(); err != nil {
		log.Fatal(err)
	}

	n := <-done
	elapsed := time.Since(start)
	fmt.Printf("client: %d bytes through 1 depot in %v (%.1f Mbit/s on loopback)\n",
		n, elapsed.Round(time.Millisecond), float64(n)*8/elapsed.Seconds()/1e6)

	// The depot finishes its bookkeeping when both relay directions close;
	// give it a beat before reading the counters.
	for i := 0; i < 100 && depot.Stats().Completed == 0; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	st := depot.Stats()
	fmt.Printf("depot:  forwarded %d bytes across %d session(s)\n", st.BytesForward, st.Accepted)
}

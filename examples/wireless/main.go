// Wireless demonstrates the paper's mobile-edge scenario (Case 3) twice:
//
//  1. On the simulator: a UTK server streams to a UCSB laptop behind an
//     802.11b access link, with an LSL depot gatewaying at the wired edge
//     (Figure 10's configuration).
//
//  2. On the real stack: the same topology built from actual TCP
//     connections on loopback, with the WAN and wireless segments
//     emulated by shaping proxies — showing the deployment pattern of "a
//     wireless provider with infrastructure willing to gateway LSL into
//     TCP for users".
//
//     go run ./examples/wireless
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"time"

	"lsl"
	"lsl/internal/emu"
)

func main() {
	log.SetFlags(0)
	simulated()
	fmt.Println()
	realStack()
}

func simulated() {
	fmt.Println("-- simulated wide-area + 802.11b (paper Case 3) --")
	spec, err := lsl.FigureByID("fig10")
	if err != nil {
		log.Fatal(err)
	}
	spec.Sizes = []int64{1 << 20, 8 << 20, 32 << 20}
	data, err := lsl.RunFigure(spec, 2, 11)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range data.Rows {
		fmt.Printf("  %6s: direct %s Mbit/s, via edge depot %s Mbit/s (%s)\n",
			row[0], row[1], row[3], row[5])
	}
}

func realStack() {
	fmt.Println("-- real sockets with emulated WAN + wireless segments --")

	// The laptop (session target) behind the "wireless" link.
	target, err := lsl.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer target.Close()
	done := make(chan float64, 1)
	go func() {
		sc, err := target.Accept()
		if err != nil {
			return
		}
		defer sc.Close()
		start := time.Now()
		n, err := io.Copy(io.Discard, sc)
		if err != nil {
			log.Fatalf("laptop: %v", err)
		}
		done <- float64(n) * 8 / time.Since(start).Seconds() / 1e6
	}()

	// The wireless segment: 5 Mbit/s, 2ms each way.
	wireless := emu.NewProxy(target.Addr().String(),
		emu.Shape{Delay: 2 * time.Millisecond, RateBps: 5e6},
		emu.Shape{Delay: 2 * time.Millisecond})
	wirelessAddr, err := wireless.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer wireless.Close()

	// The edge depot gateways LSL onto the wireless segment.
	depotLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	gateway := lsl.NewDepot(lsl.DepotConfig{})
	go gateway.Serve(depotLn)
	defer gateway.Close()

	// The wide-area segment in front of the depot: 45ms each way.
	wan := emu.NewProxy(depotLn.Addr().String(),
		emu.Shape{Delay: 45 * time.Millisecond},
		emu.Shape{Delay: 45 * time.Millisecond})
	wanAddr, err := wan.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer wan.Close()

	// The server at UTK streams a payload through WAN -> depot -> wireless.
	payload := make([]byte, 2<<20)
	rand.New(rand.NewSource(3)).Read(payload)
	conn, err := lsl.Dial(context.Background(),
		lsl.Route{Via: []string{wanAddr}, Target: wirelessAddr},
		lsl.WithDigest(), lsl.WithContentLength(int64(len(payload))))
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	fmt.Printf("  session %s: server --WAN(90ms rtt)--> edge depot --802.11b(5Mbit)--> laptop\n",
		conn.SessionID())
	if _, err := conn.Write(payload); err != nil {
		log.Fatal(err)
	}
	conn.CloseWrite()
	mbps := <-done
	fmt.Printf("  delivered %d bytes at %.2f Mbit/s (wireless-limited, MD5 verified)\n",
		len(payload), mbps)
	fmt.Println("  the laptop's address never appears in the WAN segment: roaming")
	fmt.Println("  re-dials only the depot->laptop sublink while the session persists.")
}

// Gridtransfer reproduces the paper's motivating Grid scenario on the
// simulator: bulk data movement between two computational sites (UCSB and
// UIUC) over a lossy wide-area path, comparing direct TCP with an LSL
// cascade through a depot at the Denver POP — Figures 5 and 6 in miniature.
//
//	go run ./examples/gridtransfer
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"lsl"
)

func main() {
	scen := lsl.Scenarios()["case1"]
	fmt.Printf("scenario: %s\n", scen.Label)
	fmt.Println("workload: staging simulation input/output files of increasing size")
	fmt.Println()

	spec, err := lsl.FigureByID("fig06")
	if err != nil {
		panic(err)
	}
	spec.Sizes = []int64{256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20}
	data, err := lsl.RunFigure(spec, 3, 2026)
	if err != nil {
		panic(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "FILE SIZE\tDIRECT TCP\tLSL (via Denver depot)\tGAIN")
	for _, row := range data.Rows {
		fmt.Fprintf(w, "%s\t%s Mbit/s\t%s Mbit/s\t%s\n", row[0], row[1], row[3], row[5])
	}
	w.Flush()

	fmt.Println()
	fmt.Println("reading: small files pay LSL's dual connection setup; once the")
	fmt.Println("transfer outlives slow start, per-sublink congestion control")
	fmt.Println("(half the RTT -> twice the window growth and loss-recovery rate)")
	fmt.Println("sustains the advantage — the paper's ~40-60% Grid-case gain.")
}

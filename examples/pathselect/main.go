// Pathselect shows the full logistics loop the paper sketches in §III:
// NWS-style forecasters digest noisy per-link measurements, the depot
// overlay graph is annotated with the forecasts, the planner ranks
// candidate session routes by predicted completion time, and the winning
// plan is executed over the real LSL stack.
//
//	go run ./examples/pathselect
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"strings"
	"time"

	"lsl"
)

func main() {
	log.SetFlags(0)

	// ---- 1. Measurement: feed per-link observations to NWS forecasters.
	rng := rand.New(rand.NewSource(99))
	observe := func(name string, mean, jitter float64) *lsl.ForecastSeries {
		s := lsl.NewForecastSeries(name)
		for i := 0; i < 50; i++ {
			s.Observe(mean + rng.NormFloat64()*jitter)
		}
		return s
	}
	// Two candidate depots between the sites: "denver" is on-path and
	// clean; "chicago" adds latency and loses more.
	bwSrcDen := observe("bw src-denver (Mbit/s)", 95, 6)
	bwDenDst := observe("bw denver-dst (Mbit/s)", 92, 7)
	bwSrcChi := observe("bw src-chicago (Mbit/s)", 60, 15)
	bwChiDst := observe("bw chicago-dst (Mbit/s)", 55, 18)

	fmt.Println("forecasts (NWS dynamic predictor selection):")
	for _, s := range []*lsl.ForecastSeries{bwSrcDen, bwDenDst, bwSrcChi, bwChiDst} {
		fmt.Printf("  %-26s -> %6.1f  (predictor: %s)\n",
			s.Name, s.Forecast(), s.Selector.BestName())
	}

	// ---- 2. Planning: annotate the overlay and rank routes for 64MB.
	g := lsl.NewGraph()
	g.AddNode(lsl.GraphNode{ID: "src"})
	g.AddNode(lsl.GraphNode{ID: "denver", Depot: true})
	g.AddNode(lsl.GraphNode{ID: "chicago", Depot: true})
	g.AddNode(lsl.GraphNode{ID: "dst"})
	g.AddDuplex("src", "denver", lsl.LinkMetrics{RTTSeconds: 0.031, BandwidthBps: bwSrcDen.Forecast() * 1e6, LossProb: 2.5e-4})
	g.AddDuplex("denver", "dst", lsl.LinkMetrics{RTTSeconds: 0.035, BandwidthBps: bwDenDst.Forecast() * 1e6, LossProb: 2.5e-4})
	g.AddDuplex("src", "chicago", lsl.LinkMetrics{RTTSeconds: 0.055, BandwidthBps: bwSrcChi.Forecast() * 1e6, LossProb: 8e-4})
	g.AddDuplex("chicago", "dst", lsl.LinkMetrics{RTTSeconds: 0.050, BandwidthBps: bwChiDst.Forecast() * 1e6, LossProb: 8e-4})

	const size = 64 << 20
	plans, err := g.RankCandidates("src", "dst", size)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncandidate routes for a 64M transfer:")
	for i, p := range plans {
		hops := make([]string, len(p.Hops))
		for j, h := range p.Hops {
			hops[j] = string(h)
		}
		fmt.Printf("  %d. %-28s predicted %6.1fs (%+.0f%% vs direct)\n",
			i+1, strings.Join(hops, " -> "), p.PredictedSeconds, p.Improvement()*100)
	}
	best := plans[0]
	if !best.UsesDepots() {
		fmt.Println("\nplanner chose direct TCP; nothing to cascade")
		return
	}

	// ---- 3. Execution: run the winning cascade on the real stack.
	// (Loopback stands in for the WAN; the route shape is what matters.)
	target, err := lsl.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer target.Close()
	done := make(chan int64, 1)
	go func() {
		sc, err := target.Accept()
		if err != nil {
			return
		}
		defer sc.Close()
		n, _ := io.Copy(io.Discard, sc)
		done <- n
	}()
	depotLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	dep := lsl.NewDepot(lsl.DepotConfig{})
	go dep.Serve(depotLn)
	defer dep.Close()

	// Bind the plan's abstract nodes to live addresses.
	g.AddNode(lsl.GraphNode{ID: best.Hops[1], Depot: true, Addr: depotLn.Addr().String()})
	g.AddNode(lsl.GraphNode{ID: "dst", Addr: target.Addr().String()})
	via, addr, err := best.Addrs(g)
	if err != nil {
		log.Fatal(err)
	}

	payload := make([]byte, 8<<20) // scaled down for a quick demo
	rng.Read(payload)
	start := time.Now()
	conn, err := lsl.Dial(context.Background(), lsl.Route{Via: via, Target: addr},
		lsl.WithDigest(), lsl.WithContentLength(int64(len(payload))))
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	conn.Write(payload)
	conn.CloseWrite()
	n := <-done
	fmt.Printf("\nexecuted %s via %s: %d bytes in %v\n",
		best.Hops[0], best.Hops[1], n, time.Since(start).Round(time.Millisecond))
}

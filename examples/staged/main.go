// Staged demonstrates asynchronous sessions (paper §III: "the ultimate
// sending and receiving ports need not exist at the same time"): a sender
// uploads to a depot and disconnects while the receiver does not exist
// yet; the depot takes custody and delivers — with the end-to-end MD5
// intact — once the receiver appears.
//
//	go run ./examples/staged
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"time"

	"lsl"
)

func main() {
	log.SetFlags(0)

	// A depot with custody enabled (it always is; the knobs just bound it).
	depotLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	depot := lsl.NewDepot(lsl.DepotConfig{
		MaxStageBytes:      16 << 20,
		StageRetryInterval: 200 * time.Millisecond,
		StageDeadline:      time.Minute,
	})
	go depot.Serve(depotLn)
	defer depot.Close()

	// Reserve the receiver's future address... and keep it offline.
	tmp, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	receiverAddr := tmp.Addr().String()
	tmp.Close()
	fmt.Printf("receiver %s is OFFLINE\n", receiverAddr)

	// The sender uploads into depot custody and leaves.
	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(payload)
	conn, err := lsl.Dial(context.Background(),
		lsl.Route{Via: []string{depotLn.Addr().String()}, Target: receiverAddr},
		lsl.WithStaged(), lsl.WithDigest(), lsl.WithContentLength(int64(len(payload))))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := conn.Write(payload); err != nil {
		log.Fatal(err)
	}
	conn.CloseWrite()
	conn.Close()
	fmt.Printf("sender: uploaded %d bytes into depot custody and disconnected\n", len(payload))

	// Time passes; the depot's first delivery attempts fail.
	time.Sleep(600 * time.Millisecond)
	st := depot.Stats()
	fmt.Printf("depot:  holding %d staged byte(s); receiver still offline\n", st.StagedBytes)

	// The receiver finally appears at its address.
	ln, err := net.Listen("tcp", receiverAddr)
	if err != nil {
		log.Fatalf("rebind: %v", err)
	}
	target := lslListen(ln)
	defer target.Close()
	fmt.Printf("receiver %s comes ONLINE\n", receiverAddr)

	sc, err := target.Accept()
	if err != nil {
		log.Fatal(err)
	}
	defer sc.Close()
	data, err := io.ReadAll(sc)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(data, payload) || !sc.Verified() {
		log.Fatal("delivered payload corrupt")
	}
	fmt.Printf("receiver: got %d bytes on session %s, MD5 verified — sender was long gone\n",
		len(data), sc.SessionID())
}

// lslListen adapts a pre-bound net.Listener into a session listener.
func lslListen(ln net.Listener) *lsl.Listener { return lsl.NewListener(ln) }

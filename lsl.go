// Package lsl is the public API of the Logistical Session Layer
// reproduction: a session layer that carries one conversation over
// multiple cascaded TCP connections through intermediate depots, after
// Swany & Wolski, "Improving Throughput with Cascaded TCP Connections:
// the Logistical Session Layer".
//
// The package re-exports three coherent surfaces:
//
//   - The session layer itself (this file): Dial, Listen, Route, the depot
//     daemon — real cascaded TCP over the net package.
//   - Path planning (route.go): depot graphs, NWS-style forecasting, and
//     the transfer-time objective that decides when a cascade helps.
//   - The evaluation substrate (sim.go): the deterministic network + TCP
//     simulator and the runners that regenerate every figure of the
//     paper's evaluation.
//
// Quickstart:
//
//	ln, _ := lsl.Listen(":7000")                        // target
//	d := lsl.NewDepot(lsl.DepotConfig{})                // depot
//	go d.ListenAndServe(":5000")
//	c, _ := lsl.Dial(ctx, lsl.Route{                    // initiator
//	        Via:    []string{"depot:5000"},
//	        Target: "server:7000",
//	}, lsl.WithDigest(), lsl.WithContentLength(size))
//	io.Copy(c, data)
//	c.CloseWrite()
package lsl

import (
	"context"
	"io"
	"net"
	"net/http"

	"lsl/internal/backoff"
	"lsl/internal/core"
	"lsl/internal/custody"
	"lsl/internal/depot"
	"lsl/internal/metrics"
	"lsl/internal/mux"
	"lsl/internal/resilience"
	"lsl/internal/wire"
)

// Route is a loose source route: depots to traverse, then the target.
type Route = core.Route

// Conn is the initiator's end of a session (see core.Conn).
type Conn = core.Conn

// ServerConn is the target's end of a session sublink.
type ServerConn = core.ServerConn

// Listener accepts sessions at a target.
type Listener = core.Listener

// SessionID is the 128-bit session identifier.
type SessionID = wire.SessionID

// Option tunes Dial.
type Option = core.Option

// Dialer lets tests and emulators replace the transport dialer.
type Dialer = core.Dialer

// Depot is the lsd forwarding daemon.
type Depot = depot.Depot

// DepotConfig tunes a depot.
type DepotConfig = depot.Config

// DepotStats is a depot counter snapshot.
type DepotStats = depot.Stats

// DepotSessionInfo describes one live or recently finished depot session
// (ID, route position, peers, byte counts, outcome).
type DepotSessionInfo = depot.SessionInfo

// DepotSessions is the full observable session state of a depot: live
// sessions plus a ring of recently finished ones (see Depot.Sessions).
type DepotSessions = depot.Snapshot

// MetricsRegistry is the depot's counter/gauge/histogram registry; it
// renders Prometheus text exposition format (see Depot.Metrics).
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry builds an empty registry (e.g. to host transfer
// metrics via NewTransferMetrics next to your own instrumentation).
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// Depot session outcome labels, as recorded in the recent-session ring
// (Depot.Sessions) and on the per-outcome metrics. "canceled" marks
// sessions cut short when Close's drain timeout (DepotConfig.DrainTimeout)
// expired before they finished.
const (
	DepotOutcomeCompleted      = depot.OutcomeCompleted
	DepotOutcomeCanceled       = depot.OutcomeCanceled
	DepotOutcomeRejectedBusy   = depot.OutcomeRejectedBusy
	DepotOutcomeRejectedRoute  = depot.OutcomeRejectedRoute
	DepotOutcomeRejectedProto  = depot.OutcomeRejectedProto
	DepotOutcomeStagedDeliver  = depot.OutcomeStagedDeliver
	DepotOutcomeStagedAborted  = depot.OutcomeStagedAborted
	DepotOutcomeStagedUpFailed = depot.OutcomeStagedUpFailed
	DepotOutcomeStagedShed     = depot.OutcomeStagedShed
	DepotOutcomeDialFailed     = depot.OutcomeDialFailed
)

// --- durable custody (internal/custody) ---

// CustodyJournal is a depot's write-ahead custody journal: staged
// payloads spill to per-session files under a state directory and an
// append-only record log makes the depot's custody promise survive a
// crash. Open one with OpenCustody, pass it as DepotConfig.Custody, and
// close it after the depot (the depot never closes a journal it was
// lent).
type CustodyJournal = custody.Journal

// CustodyConfig tunes a journal: fsync policy, compaction cadence,
// logging.
type CustodyConfig = custody.Config

// CustodyEntry describes one session the journal holds custody of
// (see CustodyJournal.Recovered).
type CustodyEntry = custody.Entry

// FsyncPolicy selects when the journal calls fsync.
type FsyncPolicy = custody.FsyncPolicy

// Fsync policies: FsyncAlways syncs payload and journal before the
// depot acknowledges custody (the durable default); FsyncNever leaves
// flushing to the OS — faster, but a host crash may lose acknowledged
// custody (a depot process crash alone does not).
const (
	FsyncAlways = custody.FsyncAlways
	FsyncNever  = custody.FsyncNever
)

// ParseFsync maps the operator spellings ("always", "never"/"none",
// "" = always) to a policy.
func ParseFsync(s string) (FsyncPolicy, error) { return custody.ParseFsync(s) }

// OpenCustody opens (or creates) the custody journal under dir,
// recovering surviving sessions and discarding torn tail records and
// orphaned payload files from a previous crash.
func OpenCustody(dir string, cfg CustodyConfig) (*CustodyJournal, error) {
	return custody.Open(dir, cfg)
}

// Re-exported errors.
var (
	// ErrRejected reports a depot or target refusing the session.
	ErrRejected = core.ErrRejected
	// ErrDigestMismatch reports end-to-end corruption caught by the MD5
	// trailer.
	ErrDigestMismatch = core.ErrDigestMismatch
)

// Dial opens a session along route (see core.Dial for the protocol).
func Dial(ctx context.Context, route Route, opts ...Option) (*Conn, error) {
	return core.Dial(ctx, route, opts...)
}

// Listen starts a session target on addr.
func Listen(addr string) (*Listener, error) { return core.Listen(addr) }

// NewListener wraps an existing net.Listener as a session target.
func NewListener(ln net.Listener) *Listener { return core.NewListener(ln) }

// NewDepot builds an lsd daemon instance. Its Close drains in-flight
// sessions for DepotConfig.DrainTimeout and then cancels the remainder,
// so shutdown is bounded even with relays mid-stream and staged
// deliveries mid-retry.
func NewDepot(cfg DepotConfig) *Depot { return depot.New(cfg) }

// DepotAdminHandler serves a depot's admin surface: /metrics (Prometheus
// text format), /healthz, /sessions (JSON of live + recent sessions),
// /plan (the logistics planner's forecast snapshot, when configured),
// and /debug/pprof.
func DepotAdminHandler(d *Depot) http.Handler { return depot.AdminHandler(d) }

// NewSessionID draws a fresh random session identifier.
func NewSessionID() SessionID { return wire.NewSessionID() }

// Dial options, re-exported.
var (
	// WithDigest enables the end-to-end MD5 trailer.
	WithDigest = core.WithDigest
	// WithContentLength declares the payload size (required for digest).
	WithContentLength = core.WithContentLength
	// WithEager streams without waiting for the end-to-end accept.
	WithEager = core.WithEager
	// WithSession pins the session ID (for resumption).
	WithSession = core.WithSession
	// WithResume continues an interrupted session from the target's
	// confirmed offset.
	WithResume = core.WithResume
	// WithStaged requests depot custody with asynchronous delivery: the
	// receiver need not be reachable while the initiator uploads.
	WithStaged = core.WithStaged
	// WithDialer injects a transport dialer.
	WithDialer = core.WithDialer
	// WithHandshakeTimeout bounds the session handshake.
	WithHandshakeTimeout = core.WithHandshakeTimeout
	// WithMux dials the first hop through a LinkPool: the session rides a
	// multiplexed stream on a warm persistent trunk when the peer supports
	// it, and a classic per-session connection otherwise.
	WithMux = core.WithMux
	// WithSocketBuffers overrides SO_SNDBUF/SO_RCVBUF on the session's
	// first sublink (zero keeps the kernel default; TCP_NODELAY is always
	// set).
	WithSocketBuffers = core.WithSocketBuffers
)

// --- persistent trunks (internal/mux) ---

// LinkPool keeps warm multiplexed trunks per destination. Its DialContext
// is a drop-in Dialer: sessions to trunk-capable peers share pooled TCP
// links (no per-session connect), everything else falls back to classic
// dialing transparently. Use one pool per process and pass it to Dial
// with WithMux.
type LinkPool = mux.Pool

// LinkPoolConfig tunes a LinkPool: per-stream window, streams per link,
// idle timeout, probe/negative-cache behavior, socket buffers.
type LinkPoolConfig = mux.PoolConfig

// LinkPoolMetrics observes a pool's trunks (lsl_link_* counter family
// plus stream gauges); any field may be nil.
type LinkPoolMetrics = mux.PoolMetrics

// NewLinkPool builds a trunk pool (see LinkPool).
func NewLinkPool(cfg LinkPoolConfig) *LinkPool { return mux.NewPool(cfg) }

// --- self-healing transfers (internal/resilience) ---

// TransferResult reports how a resilient transfer was achieved: attempts,
// retries, failovers, and the route that carried the final sublink.
type TransferResult = resilience.Result

// TransferPolicy tunes the retry/failover loop (zero value = defaults:
// 8 attempts, 100ms..5s backoff, failover after 2 dead first-hop dials).
type TransferPolicy = resilience.Policy

// BackoffPolicy shapes retry delays: capped exponential with equal jitter
// (used by TransferPolicy.Backoff and the depot's staged redelivery).
type BackoffPolicy = backoff.Policy

// TransferOption tunes one Transfer call.
type TransferOption = resilience.Option

// TransferMetrics is the engine's counter set (lsl_transfer_*); register
// one on your own MetricsRegistry with NewTransferMetrics, or let
// transfers default to TransferMetricsRegistry.
type TransferMetrics = resilience.Metrics

// ErrTransferExhausted wraps the last transient error once a transfer's
// attempt budget is spent.
var ErrTransferExhausted = resilience.ErrExhausted

// Transfer delivers size bytes from src to route's target, healing
// transient failures automatically: re-dial with resume, capped
// exponential backoff with jitter, and failover around a dead first-hop
// depot. A negative size is measured by seeking src to its end. See
// internal/resilience for the full failure model.
func Transfer(ctx context.Context, route Route, src io.ReadSeeker, size int64, opts ...TransferOption) (*TransferResult, error) {
	return resilience.Transfer(ctx, route, src, size, opts...)
}

// TransferPermanent reports whether err can never be fixed by retrying
// (rejection, digest mismatch, malformed request, canceled context).
func TransferPermanent(err error) bool { return resilience.Permanent(err) }

// NewTransferMetrics registers the lsl_transfer_* counter families on reg.
func NewTransferMetrics(reg *MetricsRegistry) *TransferMetrics { return resilience.NewMetrics(reg) }

// TransferMetricsRegistry returns the process-wide registry behind
// transfers that did not supply their own metrics (render it with
// WritePrometheus, like a depot's /metrics).
func TransferMetricsRegistry() *MetricsRegistry { return resilience.DefaultRegistry() }

// Transfer options, re-exported.
var (
	// WithTransferPolicy sets the retry/failover policy.
	WithTransferPolicy = resilience.WithPolicy
	// WithTransferDialer injects the transport dialer (tests, fault
	// injection, emulation).
	WithTransferDialer = resilience.WithDialer
	// WithoutTransferDigest disables the end-to-end MD5 trailer.
	WithoutTransferDigest = resilience.WithoutDigest
	// WithTransferSession pins the session ID.
	WithTransferSession = resilience.WithSession
	// WithTransferMetrics directs the engine's counters at a custom set.
	WithTransferMetrics = resilience.WithMetrics
	// WithTransferLogf receives one line per recovery event.
	WithTransferLogf = resilience.WithLogf
	// WithTransferHandshakeTimeout bounds each attempt's handshake.
	WithTransferHandshakeTimeout = resilience.WithHandshakeTimeout
	// WithTransferConfirmTimeout bounds the post-payload confirm drain.
	WithTransferConfirmTimeout = resilience.WithConfirmTimeout
	// WithPlanner drives route selection by a live logistics Planner: the
	// transfer starts on the predicted-fastest route, fails over to the
	// next-best predicted route on transient failure, and feeds every
	// attempt's measurements back into the planner's forecasts (see
	// NewPlanner / PlannerFromOverlay in route.go).
	WithPlanner = resilience.WithPlanner
)
